package htlvideo

import (
	"fmt"

	"htlvideo/internal/ring"
)

// SplitDoc partitions a store document into n shard documents by consistent
// hashing on video id, using the canonical shard names "shard-0" ...
// "shard-<n-1>" (ring.MemberNames). Every video lands in exactly one shard
// document; the taxonomy is replicated into each, because subtype matching
// (§3.2) is evaluated independently on every shard.
//
// The split is deterministic — a pure function of the video ids and n — and
// agrees with a coordinator ring built over the same member names, so a
// store.json split for an N-shard deployment routes exactly the way the
// coordinator expects. Within each shard, videos keep their original
// document order.
func SplitDoc(doc StoreDoc, n int) ([]StoreDoc, error) {
	if n < 1 {
		return nil, fmt.Errorf("htlvideo: SplitDoc: shard count %d < 1", n)
	}
	if err := doc.Validate(); err != nil {
		return nil, err
	}
	names := ring.MemberNames(n)
	r := ring.New(names, 0)
	index := make(map[string]int, n)
	for i, name := range names {
		index[name] = i
	}
	out := make([]StoreDoc, n)
	for i := range out {
		// Replicate the taxonomy: shards evaluate queries in isolation and
		// each needs the full subtype graph.
		out[i].Taxonomy = append([]TaxEdgeDoc(nil), doc.Taxonomy...)
	}
	for _, vd := range doc.Videos {
		i := index[r.OwnerOfVideo(vd.ID)]
		out[i].Videos = append(out[i].Videos, vd)
	}
	return out, nil
}
