package htlvideo_test

// Metric-conventions lint, wired into `make check`: every registry in the
// repo — the store's, the serving layer's, the shard coordinator's — must
// render a Prometheus exposition where counters end in _total and histograms
// are seconds-based with cumulative le buckets ending in +Inf. A metric added
// anywhere that would scrape wrong fails here, not on a dashboard.

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"htlvideo"
	"htlvideo/internal/obs"
	"htlvideo/internal/server"
	"htlvideo/internal/shard"
)

// lintedStore builds a small store and exercises enough of the query path
// that the registry holds counters, gauges, labeled per-class counters, and
// histograms with observations.
func lintedStore(t *testing.T) *htlvideo.Store {
	t.Helper()
	store := htlvideo.NewStore(nil, htlvideo.DefaultWeights())
	v := htlvideo.NewVideo(1, "clip", map[string]int{"shot": 2})
	v.Root.AppendChild(htlvideo.Seg().Obj(1, "man").Prop("holds_gun").Build())
	v.Root.AppendChild(htlvideo.Seg().Obj(2, "train").Prop("moving").Build())
	if err := store.Add(v); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query("exists x . present(x) and holds_gun(x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query("exists x . and and"); err == nil {
		t.Fatal("expected a parse error to exercise the error counters")
	}
	return store
}

func lintText(t *testing.T, scope, text string) {
	t.Helper()
	problems := obs.LintExposition(text)
	for _, p := range problems {
		t.Errorf("%s: %s", scope, p)
	}
	if len(problems) > 0 {
		t.Logf("%s exposition:\n%s", scope, text)
	}
}

func TestMetricsConventions(t *testing.T) {
	store := lintedStore(t)
	htlvideo.RegisterProcessMetrics(store.Metrics())

	var buf bytes.Buffer
	obs.WritePrometheus(&buf, store.Metrics().Snapshot())
	lintText(t, "store", buf.String())

	srv := server.New(lintedStore(t))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	lintText(t, "server", rec.Body.String())

	coord := shard.New(nil)
	defer coord.Close()
	rec = httptest.NewRecorder()
	coord.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	lintText(t, "coordinator", rec.Body.String())
}
