package htlvideo

// Store-level resilience tests: cancellation latency bounds, panic
// containment, error aggregation, and partial-result semantics, proven
// against real failure modes via internal/faultinject. These tests exercise
// the bounded worker pool and must stay clean under `go test -race` (the
// Makefile's check target runs them so).

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"htlvideo/internal/faultinject"
)

// resilienceStore builds n small videos, each with three tagged shots at
// level 2, so M1/M2 queries have non-trivial answers on every video.
func resilienceStore(t testing.TB, n int) *Store {
	t.Helper()
	s := NewStore(nil, DefaultWeights())
	for id := 1; id <= n; id++ {
		v := NewVideo(id, fmt.Sprintf("clip %d", id), map[string]int{"shot": 2})
		v.Root.AppendChild(Seg().Attr("M1", Int(1)).Obj(ObjectID(100*id+1), "man").Prop("holds_gun").Build())
		v.Root.AppendChild(Seg().Attr("M1", Int(1)).Attr("M2", Int(1)).Obj(ObjectID(100*id+2), "man").Build())
		v.Root.AppendChild(Seg().Attr("M2", Int(1)).Build())
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func armPlan(t *testing.T, p *faultinject.Plan) *faultinject.Plan {
	t.Helper()
	faultinject.Arm(p)
	t.Cleanup(faultinject.Disarm)
	return p
}

// TestQueryDeadlineAgainstStalledVideo: a query with a 50ms deadline against
// a video whose picture-system build stalls indefinitely must return close
// to the deadline with context.DeadlineExceeded — acceptance criterion (a).
func TestQueryDeadlineAgainstStalledVideo(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  2,
		Kind: faultinject.KindStall, // zero Stall: block until cancellation
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.QueryCtx(ctx, "M1")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// ~100ms bound from the issue; allow slack for loaded CI machines.
	if elapsed > 250*time.Millisecond {
		t.Fatalf("query returned after %v; want within ~100ms of the 50ms deadline", elapsed)
	}
}

// TestPanicIsolation: a panicking video surfaces as an error naming that
// video; under WithPartialResults the other videos' results survive —
// acceptance criterion (b).
func TestPanicIsolation(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  2,
		Kind: faultinject.KindPanic,
	}))

	res, err := s.Query("M1", WithPartialResults())
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	if len(res.PerVideo) != 2 || res.PerVideo[1].IsEmpty() || res.PerVideo[3].IsEmpty() {
		t.Fatalf("surviving results = %v, want videos 1 and 3", res.PerVideo)
	}
	if _, ok := res.PerVideo[2]; ok {
		t.Fatal("panicked video 2 produced a result")
	}
	if len(res.Errors) != 1 {
		t.Fatalf("Errors = %v, want exactly one", res.Errors)
	}
	var ve *VideoError
	if !errors.As(res.Errors[0], &ve) || ve.VideoID != 2 {
		t.Fatalf("Errors[0] = %v, want *VideoError for video 2", res.Errors[0])
	}
	if msg := res.Errors[0].Error(); !strings.Contains(msg, "video 2") || !strings.Contains(msg, "injected panic") {
		t.Fatalf("error does not name the panicking video: %q", msg)
	}

	// Without WithPartialResults the same panic fails the whole query, still
	// naming the video.
	if _, err := s.Query("M1"); err == nil || !strings.Contains(err.Error(), "video 2") {
		t.Fatalf("all-or-nothing query: err = %v, want failure naming video 2", err)
	}
}

// TestErrorAggregation: two injected failures on different videos both
// appear in the joined error — acceptance criterion (c).
func TestErrorAggregation(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1,
		faultinject.Rule{Site: faultinject.SitePictureNewSystem, Key: 1, Kind: faultinject.KindError},
		faultinject.Rule{Site: faultinject.SitePictureNewSystem, Key: 3, Kind: faultinject.KindError},
	))
	_, err := s.Query("M1")
	if err == nil {
		t.Fatal("query succeeded despite two injected failures")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in the chain", err)
	}
	for _, want := range []string{"video 1:", "video 3:"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error misses %q: %q", want, err)
		}
	}

	// The same two failures reported per video under WithPartialResults,
	// ordered by video id.
	res, err := s.Query("M1", WithPartialResults())
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("Errors = %v, want two", res.Errors)
	}
	var first, second *VideoError
	errors.As(res.Errors[0], &first)
	errors.As(res.Errors[1], &second)
	if first == nil || second == nil || first.VideoID != 1 || second.VideoID != 3 {
		t.Fatalf("Errors = [%v, %v], want videos 1 and 3 in order", res.Errors[0], res.Errors[1])
	}
	if len(res.PerVideo) != 1 || res.PerVideo[2].IsEmpty() {
		t.Fatalf("PerVideo = %v, want only video 2", res.PerVideo)
	}
}

// TestCancellationStopsMidEvaluation: a context-free stall inside atomic
// evaluation delays work past the deadline; the engine's checkpoint between
// atomic units must notice and abort, proving cancellation reaches inside a
// video's evaluation rather than only between videos.
func TestCancellationStopsMidEvaluation(t *testing.T) {
	s := resilienceStore(t, 1)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site:  faultinject.SiteAtomicEval,
		Key:   faultinject.KeyAny,
		Kind:  faultinject.KindStall,
		Stall: 30 * time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.QueryCtx(ctx, "M1 and M2", WithEngine(EngineDirect))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("query returned after %v", elapsed)
	}
}

// TestRelationalEngineFault: an injected failure inside the relational
// engine surfaces through the SQL baseline as a per-video error.
func TestRelationalEngineFault(t *testing.T) {
	s := resilienceStore(t, 1)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteRelationalExec,
		Key:  faultinject.KeyAny,
		Kind: faultinject.KindError,
	}))
	_, err := s.Query("M1 until M2", WithEngine(EngineSQL))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var ve *VideoError
	if !errors.As(err, &ve) || ve.VideoID != 1 {
		t.Fatalf("err = %v, want *VideoError for video 1", err)
	}
}

// TestSystemBuildDeduplication: concurrent queries on the same (video,
// level) share one picture-system build (singleflight), observed through the
// fault-injection call counter at the build site.
func TestSystemBuildDeduplication(t *testing.T) {
	const videos, queries = 4, 8
	s := resilienceStore(t, videos)
	// A small stall widens the window in which concurrent queries would
	// race to build duplicate systems.
	p := armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site:  faultinject.SitePictureNewSystem,
		Key:   faultinject.KeyAny,
		Kind:  faultinject.KindStall,
		Stall: 5 * time.Millisecond,
	}))
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Query("M1"); err != nil {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := p.Calls(faultinject.SitePictureNewSystem); got != videos {
		t.Fatalf("%d concurrent queries built %d systems, want %d (one per video)", queries, got, videos)
	}
}

// TestFailedBuildsAreRetried: a build failure must not poison the cache —
// the next query rebuilds and succeeds.
func TestFailedBuildsAreRetried(t *testing.T) {
	s := resilienceStore(t, 1)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  1,
		Kind: faultinject.KindError,
	}))
	if _, err := s.Query("M1"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	faultinject.Disarm()
	res, err := s.Query("M1")
	if err != nil {
		t.Fatalf("query after injected build failure: %v", err)
	}
	if res.PerVideo[1].IsEmpty() {
		t.Fatal("retried build produced an empty result")
	}
}

// TestWithParallelismOne: a sequential pool is still correct and honors
// cancellation between videos.
func TestWithParallelismOne(t *testing.T) {
	s := resilienceStore(t, 4)
	res, err := s.Query("M1", WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVideo) != 4 {
		t.Fatalf("PerVideo = %d videos, want 4", len(res.PerVideo))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryCtx(ctx, "M1", WithParallelism(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query: err = %v, want Canceled", err)
	}
}

// TestPartialResultsCleanQuery: WithPartialResults on a healthy store leaves
// Errors empty and results complete.
func TestPartialResultsCleanQuery(t *testing.T) {
	s := resilienceStore(t, 3)
	res, err := s.Query("M1", WithPartialResults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("Errors = %v on a healthy store", res.Errors)
	}
	if len(res.PerVideo) != 3 {
		t.Fatalf("PerVideo = %d videos, want 3", len(res.PerVideo))
	}
}

// TestConcurrentQueriesAreRaceFree hammers one store from many goroutines;
// meaningful under -race (the Makefile's check target), harmless otherwise.
func TestConcurrentQueriesAreRaceFree(t *testing.T) {
	s := resilienceStore(t, 6)
	queries := []string{"M1", "M2", "M1 until M2", "eventually M2"}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Query(q, WithParallelism(2))
			if err != nil {
				t.Errorf("query %q: %v", q, err)
				return
			}
			if len(res.PerVideo) != 6 {
				t.Errorf("query %q: %d videos, want 6", q, len(res.PerVideo))
			}
		}()
	}
	wg.Wait()
}
