package htlvideo

// Store-level observability: the metrics the query path maintains, the typed
// Stats() snapshot, the per-query trace plumbing (WithTrace, SetTraceSink),
// and the slow-query log. The primitives live in internal/obs; this file owns
// the metric names and the mapping from engines and formula classes to them.

import (
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"htlvideo/internal/core"
	"htlvideo/internal/faultinject"
	"htlvideo/internal/htl"
	"htlvideo/internal/obs"
	"htlvideo/internal/obs/dash"
	"htlvideo/internal/obs/querystats"
	"htlvideo/internal/obs/timeseries"
)

// storeObs bundles one store's instrumentation. Hot-path counters are cached
// as fields so queries never take the registry lock; per-engine and per-class
// metrics go through registry lookups only once per query.
type storeObs struct {
	reg  *obs.Registry
	slow *obs.SlowLog
	ring *obs.TraceRing

	// qstats aggregates per-plan-key workload statistics (the /debug/queries
	// document); sampler keeps the registry's recent history for windowed
	// rates and the dashboard (started on demand, stopped by Store.Close).
	qstats  *querystats.Stats
	sampler *timeseries.Sampler

	mu   sync.Mutex
	sink obs.TraceSink // store-wide sink, nil when unset

	// coreM and refM are handed to the similarity-list and reference engines
	// through core.Options.
	coreM obs.EngineMetrics
	refM  obs.EngineMetrics

	queries     *obs.Counter
	queryErrors *obs.Counter
	fallbacks   *obs.Counter
	queryLat    *obs.Histogram
	videoLat    *obs.Histogram

	// errClass holds one counter per error classification (see errorClass),
	// cached so the settle path never takes the registry lock.
	errClass map[string]*obs.Counter

	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheDeduped *obs.Counter
	cacheEvicted *obs.Counter
	cacheSize    *obs.Gauge

	planHits     *obs.Counter
	planMisses   *obs.Counter
	planSize     *obs.Gauge
	planMemoHits *obs.Counter
	planReorders *obs.Counter

	topkEarlyTerm *obs.Counter
	topkSkipped   *obs.Counter

	resHits    *obs.Counter
	resMisses  *obs.Counter
	resDeduped *obs.Counter
	resEvicted *obs.Counter
	resSize    *obs.Gauge

	poolInFlight    *obs.Gauge
	poolQueued      *obs.Gauge
	panicsRecovered *obs.Counter
	videosEvaluated *obs.Counter
	videosFailed    *obs.Counter
	videosSkipped   *obs.Counter

	sqlStmts   *obs.Counter
	sqlRows    *obs.Counter
	sqlStmtLat *obs.Histogram

	// Durable-mode instrumentation (all zero on in-memory stores): the
	// write-ahead log's appends and fsyncs, recovery's replay accounting,
	// and the checkpointer.
	walAppends       *obs.Counter
	walAppendErrors  *obs.Counter
	walBytes         *obs.Counter
	walSyncs         *obs.Counter
	walSyncErrors    *obs.Counter
	walReplayed      *obs.Counter
	walTornTruncated *obs.Counter
	walSize          *obs.Gauge
	walSeq           *obs.Gauge
	checkpoints      *obs.Counter
	checkpointErrors *obs.Counter
	checkpointSeq    *obs.Gauge
	checkpointLat    *obs.Histogram
}

// errorClasses are the buckets errorClass sorts failed queries into, each
// with a query.errors.<class> counter: cancelled contexts, deterministic
// validation/parse/capability errors, picture-system build failures,
// contained evaluation panics, and injected transient faults.
var errorClasses = []string{"context", "validation", "picture-build", "panic", "transient"}

// errorClass classifies a failed query for the error-class counters and the
// per-plan-key statistics (""" for success). Build failures are checked
// before injected faults because a fault injected into the build stage wraps
// both markers — the build classification is the more specific one.
func errorClass(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	switch {
	case ctxErr(err):
		return "context"
	case errors.Is(err, ErrPictureBuild):
		return "picture-build"
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, faultinject.ErrInjected):
		return "transient"
	default:
		return "validation"
	}
}

func newStoreObs() *storeObs {
	reg := obs.NewRegistry()
	errClass := make(map[string]*obs.Counter, len(errorClasses))
	for _, c := range errorClasses {
		errClass[c] = reg.Counter("query.errors." + c)
	}
	reg.DescribeAll(map[string]string{
		"query.total":                   "Queries issued, including failed ones.",
		"query.errors":                  "Failed queries (see query.errors.<class> for the breakdown).",
		"query.errors.context":          "Queries failed by context cancellation or deadline.",
		"query.errors.validation":       "Queries failed by deterministic parse/validation/capability errors.",
		"query.errors.picture-build":    "Queries failed in the picture-system build stage.",
		"query.errors.panic":            "Queries failed by a contained evaluation panic.",
		"query.errors.transient":        "Queries failed by an injected transient fault.",
		"query.fallbacks":               "Auto-engine queries that fell back to the reference evaluator.",
		"query.latency":                 "Whole-query latency.",
		"video.latency":                 "Per-video evaluation latency.",
		"cache.hits":                    "Picture-system cache hits.",
		"cache.misses":                  "Picture-system cache misses (first builds).",
		"cache.deduped":                 "Picture-system lookups that joined an in-flight build.",
		"cache.evicted":                 "Failed picture-system builds evicted for retry.",
		"cache.size":                    "Cached (video, level) picture systems.",
		"query.plan_cache.hits":         "Queries answered from the compiled-plan cache.",
		"query.plan_cache.misses":       "Queries compiled fresh.",
		"query.plan_cache.size":         "Cached compiled plans.",
		"query.plan.memo_hits":          "Plan-node evaluations answered from the per-video memo.",
		"query.plan.reorders":           "Cost-model reoptimizations that changed a plan's child order.",
		"query.topk.early_terminations": "Pruned top-k scans that stopped before consuming every entry.",
		"query.topk.entries_skipped":    "Similarity-list entries top-k pruning proved irrelevant unread.",
		"query.cache.hits":              "Result-cache hits.",
		"query.cache.misses":            "Result-cache misses.",
		"query.cache.deduped":           "Queries that joined a concurrent identical evaluation.",
		"query.cache.evicted":           "Results evicted by capacity or TTL.",
		"query.cache.size":              "Cached whole-query results.",
		"pool.in_flight":                "Videos evaluating right now.",
		"pool.queued":                   "Videos waiting for a worker.",
		"pool.panics_recovered":         "Panics contained during per-video evaluation.",
		"pool.videos_evaluated":         "Videos evaluated successfully.",
		"pool.videos_failed":            "Videos whose evaluation failed.",
		"pool.videos_skipped":           "Videos skipped for lacking the queried level.",
		"sql.statements":                "SQL-baseline statements executed.",
		"sql.rows":                      "Rows produced by SQL-baseline statements.",
		"sql.stmt.latency":              "Per-statement SQL-baseline latency.",
		"wal.appends":                   "WAL records appended.",
		"wal.append_errors":             "WAL append failures.",
		"wal.bytes":                     "Bytes appended to the WAL.",
		"wal.syncs":                     "WAL fsyncs completed.",
		"wal.sync_errors":               "WAL fsync failures.",
		"wal.replayed_records":          "WAL records replayed during recovery.",
		"wal.torn_truncations":          "Torn final WAL records truncated during recovery.",
		"wal.size":                      "Current WAL length in bytes.",
		"wal.seq":                       "Last committed WAL sequence number.",
		"checkpoint.total":              "Checkpoints completed.",
		"checkpoint.errors":             "Checkpoints that failed.",
		"checkpoint.seq":                "Sequence number the latest checkpoint covers.",
		"checkpoint.latency":            "Checkpoint duration.",
	})
	o := &storeObs{
		reg:      reg,
		slow:     obs.NewSlowLog(obs.DefaultSlowLogSize),
		ring:     obs.NewTraceRing(obs.DefaultTraceRingSize),
		qstats:   querystats.New(querystats.DefaultCapacity),
		errClass: errClass,

		queries:     reg.Counter("query.total"),
		queryErrors: reg.Counter("query.errors"),
		fallbacks:   reg.Counter("query.fallbacks"),
		queryLat:    reg.Histogram("query.latency", nil),
		videoLat:    reg.Histogram("video.latency", nil),

		cacheHits:    reg.Counter("cache.hits"),
		cacheMisses:  reg.Counter("cache.misses"),
		cacheDeduped: reg.Counter("cache.deduped"),
		cacheEvicted: reg.Counter("cache.evicted"),
		cacheSize:    reg.Gauge("cache.size"),

		planHits:     reg.Counter("query.plan_cache.hits"),
		planMisses:   reg.Counter("query.plan_cache.misses"),
		planSize:     reg.Gauge("query.plan_cache.size"),
		planMemoHits: reg.Counter("query.plan.memo_hits"),
		planReorders: reg.Counter("query.plan.reorders"),

		topkEarlyTerm: reg.Counter("query.topk.early_terminations"),
		topkSkipped:   reg.Counter("query.topk.entries_skipped"),

		resHits:    reg.Counter("query.cache.hits"),
		resMisses:  reg.Counter("query.cache.misses"),
		resDeduped: reg.Counter("query.cache.deduped"),
		resEvicted: reg.Counter("query.cache.evicted"),
		resSize:    reg.Gauge("query.cache.size"),

		poolInFlight:    reg.Gauge("pool.in_flight"),
		poolQueued:      reg.Gauge("pool.queued"),
		panicsRecovered: reg.Counter("pool.panics_recovered"),
		videosEvaluated: reg.Counter("pool.videos_evaluated"),
		videosFailed:    reg.Counter("pool.videos_failed"),
		videosSkipped:   reg.Counter("pool.videos_skipped"),

		sqlStmts:   reg.Counter("sql.statements"),
		sqlRows:    reg.Counter("sql.rows"),
		sqlStmtLat: reg.Histogram("sql.stmt.latency", nil),

		walAppends:       reg.Counter("wal.appends"),
		walAppendErrors:  reg.Counter("wal.append_errors"),
		walBytes:         reg.Counter("wal.bytes"),
		walSyncs:         reg.Counter("wal.syncs"),
		walSyncErrors:    reg.Counter("wal.sync_errors"),
		walReplayed:      reg.Counter("wal.replayed_records"),
		walTornTruncated: reg.Counter("wal.torn_truncations"),
		walSize:          reg.Gauge("wal.size"),
		walSeq:           reg.Gauge("wal.seq"),
		checkpoints:      reg.Counter("checkpoint.total"),
		checkpointErrors: reg.Counter("checkpoint.errors"),
		checkpointSeq:    reg.Gauge("checkpoint.seq"),
		checkpointLat:    reg.Histogram("checkpoint.latency", nil),
	}
	o.sampler = timeseries.New(reg.Snapshot)
	return o
}

// observeTopK settles one pruned top-k scan's accounting, attributing the
// skipped entries to the plan key that produced the results (empty for
// results built outside a query, e.g. the coordinator's merged lists).
func (o *storeObs) observeTopK(st core.PruneStats, planKey string) {
	if st.EarlyTerminated {
		o.topkEarlyTerm.Inc()
	}
	if st.EntriesSkipped > 0 {
		o.topkSkipped.Add(st.EntriesSkipped)
		o.qstats.ObserveTopK(planKey, st.EntriesSkipped)
	}
}

// traceSink returns the store-wide sink, or nil.
func (o *storeObs) traceSink() obs.TraceSink {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.sink
}

// endQuery finishes a query's trace and settles its per-query accounting:
// totals, error classification, per-engine and per-formula-class counters and
// latency histograms, the per-plan-key workload statistics, the slow log, and
// every attached sink. engine/class may be empty (parse failures) to skip the
// breakdowns; rec may be nil (nothing was compiled, so there is no plan key
// to aggregate under).
func (o *storeObs) endQuery(tr *obs.Trace, engine, class string, err error, sink obs.TraceSink, rec *querystats.Record) {
	d := tr.Finish()
	o.queries.Inc()
	ec := errorClass(err)
	if err != nil {
		o.queryErrors.Inc()
		if c := o.errClass[ec]; c != nil {
			c.Inc()
		}
		tr.SetTag("error", truncateErr(err))
		tr.SetTag("error_class", ec)
	}
	o.qstats.Observe(rec, d, ec)
	o.queryLat.Observe(d)
	if engine != "" {
		o.reg.Counter("query.count.engine." + engine).Inc()
		o.reg.Histogram("query.latency.engine."+engine, nil).Observe(d)
	}
	if class != "" {
		o.reg.Counter("query.count.class." + class).Inc()
		o.reg.Histogram("query.latency.class."+class, nil).Observe(d)
	}
	o.slow.ObserveTrace(tr)
	o.ring.ObserveTrace(tr)
	if gs := o.traceSink(); gs != nil {
		gs.ObserveTrace(tr)
	}
	if sink != nil {
		sink.ObserveTrace(tr)
	}
}

func truncateErr(err error) string {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	if len(msg) > 160 {
		msg = msg[:160] + "…"
	}
	return msg
}

// engineKey maps an engine selector to its metric/tag name: the §4
// comparison's vocabulary (core = direct similarity-list algorithms, sqlgen =
// SQL baseline, refeval = brute-force reference).
func engineKey(e Engine) string {
	switch e {
	case EngineDirect:
		return "core"
	case EngineSQL:
		return "sqlgen"
	case EngineReference:
		return "refeval"
	default:
		return "auto"
	}
}

// classKey maps a formula class to its metric/tag name.
func classKey(c Class) string {
	switch c {
	case htl.ClassType1:
		return "type1"
	case htl.ClassType2:
		return "type2"
	case htl.ClassConjunctive:
		return "conjunctive"
	case htl.ClassExtendedConjunctive:
		return "extended"
	default:
		return "general"
	}
}

// Stats is a typed point-in-time snapshot of a store's instrumentation.
type Stats struct {
	Queries     QueryStats       `json:"queries"`
	Cache       CacheStats       `json:"cache"`
	PlanCache   PlanCacheStats   `json:"plan_cache"`
	ResultCache ResultCacheStats `json:"result_cache"`
	Pool        PoolStats        `json:"pool"`
	TopK        TopKStats        `json:"topk"`
	SQL         SQLStats         `json:"sql"`
	Engines     EngineStats      `json:"engines"`
}

// TopKStats describes the threshold-style pruned top-k scans (Results.TopK).
type TopKStats struct {
	// EarlyTerminations counts scans that stopped before consuming every
	// entry; EntriesSkipped the similarity-list entries those scans proved
	// irrelevant without reading.
	EarlyTerminations int64 `json:"early_terminations"`
	EntriesSkipped    int64 `json:"entries_skipped"`
}

// QueryStats aggregates whole-query accounting.
type QueryStats struct {
	// Total counts every query issued (including failed ones); Errors the
	// failed subset; Fallbacks the auto-engine falls to the reference
	// evaluator.
	Total     int64 `json:"total"`
	Errors    int64 `json:"errors"`
	Fallbacks int64 `json:"fallbacks"`
	// ByEngine and ByClass break Total down by requested engine (core,
	// sqlgen, refeval, auto) and by formula class (type1, type2, conjunctive,
	// extended, general) — the per-formula-class cost accounting of §4.
	ByEngine map[string]int64 `json:"by_engine,omitempty"`
	ByClass  map[string]int64 `json:"by_class,omitempty"`
	// Latency is the whole-query latency distribution.
	Latency obs.HistogramSnapshot `json:"latency"`
}

// CacheStats describes the picture-system cache.
type CacheStats struct {
	// Hits are lookups of a completed build; Misses first builds; Deduped
	// concurrent lookups that joined an in-flight build (singleflight);
	// Evicted failed builds removed so later queries retry.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deduped int64 `json:"deduped"`
	Evicted int64 `json:"evicted"`
	// Size is the current number of cached (video, level) systems.
	Size int64 `json:"size"`
}

// PlanCacheStats describes the compiled-query (plan) cache.
type PlanCacheStats struct {
	// Hits are queries that skipped parse/classify/plan entirely; Misses
	// compiled fresh (parse failures are not counted — nothing is cached for
	// them).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Size is the current number of cached entries (textual aliases of one
	// formula each count).
	Size int64 `json:"size"`
	// MemoHits counts plan-node evaluations answered from the per-video memo
	// across all queries — the evaluation-time payoff of subformula interning
	// (explain output shows the per-node breakdown).
	MemoHits int64 `json:"memo_hits"`
	// Reorders counts physical-plan installs that changed a cached plan's
	// child evaluation order — the cost model overriding syntactic order
	// after observing enough evaluations.
	Reorders int64 `json:"reorders"`
}

// ResultCacheStats describes the opt-in whole-result cache (all zero until
// EnableResultCache).
type ResultCacheStats struct {
	// Hits served a cached result; Misses evaluated and (if fully
	// successful) cached; Deduped joined a concurrent identical evaluation
	// (singleflight); Evicted left by capacity or TTL.
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deduped int64 `json:"deduped"`
	Evicted int64 `json:"evicted"`
	// Size is the current number of cached results.
	Size int64 `json:"size"`
}

// PoolStats describes the per-query bounded worker pool (gauges aggregate
// across concurrent queries).
type PoolStats struct {
	InFlight        int64 `json:"in_flight"`
	Queued          int64 `json:"queued"`
	PanicsRecovered int64 `json:"panics_recovered"`
	VideosEvaluated int64 `json:"videos_evaluated"`
	VideosFailed    int64 `json:"videos_failed"`
	VideosSkipped   int64 `json:"videos_skipped"`
}

// SQLStats describes the relational engine's work under the SQL baseline.
type SQLStats struct {
	Statements  int64                 `json:"statements"`
	Rows        int64                 `json:"rows"`
	StmtLatency obs.HistogramSnapshot `json:"stmt_latency"`
}

// EngineStats carries the evaluation engines' work counters.
type EngineStats struct {
	Core      obs.EngineSnapshot `json:"core"`
	Reference obs.EngineSnapshot `json:"reference"`
}

// Stats snapshots the store's instrumentation. Safe to call concurrently
// with queries; counters settle per query, so a snapshot taken mid-query may
// not include that query yet.
func (s *Store) Stats() Stats {
	o := s.obs
	snap := o.reg.Snapshot()
	st := Stats{
		Queries: QueryStats{
			Total:     o.queries.Value(),
			Errors:    o.queryErrors.Value(),
			Fallbacks: o.fallbacks.Value(),
			ByEngine:  map[string]int64{},
			ByClass:   map[string]int64{},
			Latency:   o.queryLat.Snapshot(),
		},
		Cache: CacheStats{
			Hits:    o.cacheHits.Value(),
			Misses:  o.cacheMisses.Value(),
			Deduped: o.cacheDeduped.Value(),
			Evicted: o.cacheEvicted.Value(),
			Size:    o.cacheSize.Value(),
		},
		PlanCache: PlanCacheStats{
			Hits:     o.planHits.Value(),
			Misses:   o.planMisses.Value(),
			Size:     o.planSize.Value(),
			MemoHits: o.planMemoHits.Value(),
			Reorders: o.planReorders.Value(),
		},
		ResultCache: ResultCacheStats{
			Hits:    o.resHits.Value(),
			Misses:  o.resMisses.Value(),
			Deduped: o.resDeduped.Value(),
			Evicted: o.resEvicted.Value(),
			Size:    o.resSize.Value(),
		},
		Pool: PoolStats{
			InFlight:        o.poolInFlight.Value(),
			Queued:          o.poolQueued.Value(),
			PanicsRecovered: o.panicsRecovered.Value(),
			VideosEvaluated: o.videosEvaluated.Value(),
			VideosFailed:    o.videosFailed.Value(),
			VideosSkipped:   o.videosSkipped.Value(),
		},
		TopK: TopKStats{
			EarlyTerminations: o.topkEarlyTerm.Value(),
			EntriesSkipped:    o.topkSkipped.Value(),
		},
		SQL: SQLStats{
			Statements:  o.sqlStmts.Value(),
			Rows:        o.sqlRows.Value(),
			StmtLatency: o.sqlStmtLat.Snapshot(),
		},
		Engines: EngineStats{Core: o.coreM.Snapshot(), Reference: o.refM.Snapshot()},
	}
	for name, v := range snap.Counters {
		if key, ok := strings.CutPrefix(name, "query.count.engine."); ok {
			st.Queries.ByEngine[key] = v
		}
		if key, ok := strings.CutPrefix(name, "query.count.class."); ok {
			st.Queries.ByClass[key] = v
		}
	}
	return st
}

// Metrics exposes the store's metric registry (the /metrics backing store):
// every counter, gauge and latency histogram the query path maintains.
func (s *Store) Metrics() *obs.Registry { return s.obs.reg }

// SlowLog exposes the store's slow-query log: the N slowest queries seen,
// with their full traces. Attach a logger via SlowLog().SetLogger to emit a
// line per over-threshold query.
func (s *Store) SlowLog() *obs.SlowLog { return s.obs.slow }

// TraceRing exposes the store's bounded ring of recent query traces (the
// /debug/traces backing store). Slow-log entries link into it by trace id.
func (s *Store) TraceRing() *obs.TraceRing { return s.obs.ring }

// SetTraceSink installs a store-wide trace sink receiving every query's
// finished trace (nil removes it). Per-query sinks attach with WithTrace.
func (s *Store) SetTraceSink(sink obs.TraceSink) {
	s.obs.mu.Lock()
	s.obs.sink = sink
	s.obs.mu.Unlock()
}

// QueryStats exposes the store's per-plan-key workload statistics — the
// pg_stat_statements analogue behind GET /debug/queries. Always on; bound its
// memory with SetQueryStatsCapacity.
func (s *Store) QueryStats() *querystats.Stats { return s.obs.qstats }

// SetQueryStatsCapacity rebounds the per-plan-key statistics LRU (capacity
// < 1 selects querystats.DefaultCapacity). All-time totals survive eviction.
func (s *Store) SetQueryStatsCapacity(capacity int) { s.obs.qstats.SetCapacity(capacity) }

// Sampler exposes the store's timeseries sampler (the /debug/timeseries
// backing store). It holds no history until StartSampling.
func (s *Store) Sampler() *timeseries.Sampler { return s.obs.sampler }

// StartSampling launches the background metrics sampler: the registry is
// snapshotted every interval (timeseries.DefaultInterval when non-positive)
// into a bounded ring, feeding windowed rates and the dashboard's
// sparklines. Idempotent; Store.Close stops it.
func (s *Store) StartSampling(interval time.Duration) { s.obs.sampler.Start(interval) }

// DebugHandler serves the store's observability over HTTP: /metrics
// (expvar-style JSON of the registry plus the Stats snapshot),
// /debug/slowlog, /debug/traces, /debug/pprof, and the workload-analytics
// surface — /debug/queries (per-plan-key statistics), /debug/timeseries
// (windowed rates and quantile trends), /debug/health (the component
// rollup), and /debug/dash (the self-contained HTML dashboard).
// cmd/htlquery mounts it behind -metrics-addr.
func (s *Store) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(s.obs.reg, s.obs.slow, s.obs.ring, func() any { return s.Stats() }))
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		querystats.ServeSnapshot(w, r, s.obs.qstats.Snapshot())
	})
	mux.Handle("/debug/timeseries", s.obs.sampler)
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteHealth(w, s.Health())
	})
	mux.Handle("/debug/dash", dash.Handler(dash.Sources{
		Title:   "htlvideo store",
		Health:  s.Health,
		Queries: s.obs.qstats.Snapshot,
		Sampler: s.obs.sampler,
		Sparks:  []string{"query.total", "query.latency", "pool.videos_evaluated", "pool.in_flight"},
	}))
	return mux
}

// WithTrace attaches a per-query trace sink: the query records a span per
// pipeline stage (parse → picture-system build/cache lookup → per-video eval
// → merge), tagged with engine, formula class, level and video count, and
// hands the finished trace to sink alongside the returned Results.
func WithTrace(sink obs.TraceSink) QueryOption {
	return func(c *queryConfig) { c.sink = sink }
}

// WithTraceID joins this query's trace into a distributed trace minted
// elsewhere: the trace adopts id instead of allocating its own, so slow-log
// and trace-ring entries on this process correlate with the coordinator's
// stitched trace. Empty ids are ignored.
func WithTraceID(id string) QueryOption {
	return func(c *queryConfig) { c.traceID = id }
}
