package htlvideo

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"htlvideo/internal/faultinject"
	"htlvideo/internal/wal"
)

// durableTestQuery is the fixed probe every crash test ranks recovered
// stores with; its results depend on every video's objects and certainties,
// so byte-identical rankings mean byte-identical recovered state.
const durableTestQuery = "exists x . present(x) and type(x) = 'man'"

// durableTestVideo builds the i-th deterministic test video (ids 1-based):
// small, distinct certainties and segment counts, so each one shifts the
// ranking of durableTestQuery.
func durableTestVideo(i int) *Video {
	v := NewVideo(i, fmt.Sprintf("clip-%d", i), map[string]int{"shot": 2})
	for s := 0; s <= i%3; s++ {
		v.Root.AppendChild(Seg().
			ObjC(ObjectID(i*10+s), "man", 0.5+float64((i+s)%5)*0.1).
			Prop("holds_gun").
			Build())
	}
	return v
}

// referenceRanked evaluates durableTestQuery over an in-memory store holding
// the first n test videos — the oracle every recovered store must match.
func referenceRanked(t *testing.T, n int) []Ranked {
	t.Helper()
	s := NewStore(nil, DefaultWeights())
	for i := 1; i <= n; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	return rankedOf(t, s)
}

// rankedOf runs the probe query and returns its full ranking (nil on an
// empty store — querying nothing is an error, and recovery to empty is a
// legitimate outcome of crashing before the first commit).
func rankedOf(t *testing.T, s *Store) []Ranked {
	t.Helper()
	if len(s.Videos()) == 0 {
		return nil
	}
	res, err := s.Query(durableTestQuery)
	if err != nil {
		t.Fatalf("probe query: %v", err)
	}
	return res.Ranked()
}

func TestDurableOpenAddReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Durable() || s.DurableDir() != dir {
		t.Fatalf("Durable()=%v dir=%q", s.Durable(), s.DurableDir())
	}
	for i := 1; i <= 4; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	// Duplicate and invalid adds must be rejected before they reach the log.
	if err := s.Add(durableTestVideo(2)); err == nil {
		t.Fatal("duplicate video id accepted")
	}
	want := rankedOf(t, s)
	st := s.DurableStats()
	if st.Seq != 4 || st.SnapshotSeq != 0 || st.WALSize <= int64(wal.HeaderSize()) {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(durableTestVideo(9)); err == nil {
		t.Fatal("Add accepted after Close")
	}

	r, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if got := rankedOf(t, r); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered ranking differs:\n got %v\nwant %v", got, want)
	}
	if st := r.DurableStats(); st.Seq != 4 {
		t.Fatalf("recovered seq = %d", st.Seq)
	}
	if !reflect.DeepEqual(rankedOf(t, r), referenceRanked(t, 4)) {
		t.Fatal("recovered ranking differs from the in-memory reference")
	}
}

// TestDurableCrashEveryBytePrefix is the tentpole property: recovery from
// the WAL truncated at EVERY byte offset yields exactly the longest
// committed prefix of adds — query results byte-identical to an in-memory
// store holding the same prefix — and never panics, never surfaces a
// half-applied video, never leaks a goroutine.
func TestDurableCrashEveryBytePrefix(t *testing.T) {
	const nVideos = 5
	srcDir := t.TempDir()
	s, err := OpenDurable(srcDir, WithCheckpointEvery(0, 0)) // checkpoints off
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= nVideos; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(srcDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: ends[n] = file size once n records are committed.
	ends := []int64{int64(wal.HeaderSize())}
	_, err = wal.Replay(filepath.Join(srcDir, "wal.log"), func(r wal.Record) error {
		ends = append(ends, ends[len(ends)-1]+int64(wal.FrameSize(len(r.Payload))))
		return nil
	})
	if err != nil || len(ends) != nVideos+1 {
		t.Fatalf("boundary scan: %d records, err %v", len(ends)-1, err)
	}
	want := make([][]Ranked, nVideos+1)
	for n := 0; n <= nVideos; n++ {
		want[n] = referenceRanked(t, n)
	}

	before := runtime.NumGoroutine()
	dir := t.TempDir()
	for cut := 0; cut <= len(logBytes); cut++ {
		committed := 0
		for n := 1; n <= nVideos; n++ {
			if ends[n] <= int64(cut) {
				committed = n
			}
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenDurable(dir, WithCheckpointEvery(0, 0))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if got := len(r.Videos()); got != committed {
			t.Fatalf("cut %d: recovered %d videos, want %d", cut, got, committed)
		}
		if got := rankedOf(t, r); !reflect.DeepEqual(got, want[committed]) {
			t.Fatalf("cut %d: ranking differs from the uncrashed store:\n got %v\nwant %v", cut, got, want[committed])
		}
		// The recovered store must accept new commits from the recovered
		// position (sequence numbers chain past the tear).
		if err := r.Add(durableTestVideo(nVideos + 10)); err != nil {
			t.Fatalf("cut %d: Add after recovery: %v", cut, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
	// Recovery opens no background goroutines under SyncAlways; give any
	// stragglers a beat, then compare.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

func TestDurableCheckpointRotatesLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, WithCheckpointEvery(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.DurableStats()
	// Adds 3 and 6 crossed the threshold: the latest checkpoint covers seq 6
	// and only record 7 remains in the log.
	if st.Seq != 7 || st.SnapshotSeq != 6 {
		t.Fatalf("stats after auto-checkpoints = %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if _, ok := parseSnapshotName(e.Name()); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots on disk, want 1 (older ones pruned)", snaps)
	}
	// Manual checkpoint folds the tail too.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.DurableStats(); st.SnapshotSeq != 7 || st.WALSize != int64(wal.HeaderSize()) {
		t.Fatalf("stats after manual checkpoint = %+v", st)
	}
	want := rankedOf(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("reopen after checkpoint: %v", err)
	}
	defer r.Close()
	if got := rankedOf(t, r); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpointed store recovered differently")
	}
	if st := r.DurableStats(); st.Seq != 7 || st.SnapshotSeq != 7 {
		t.Fatalf("recovered stats = %+v", st)
	}
	// The reopened writer resumes the sequence from the snapshot, not from
	// the truncated (empty) log: the next add must commit as record 8.
	if err := r.Add(durableTestVideo(8)); err != nil {
		t.Fatalf("add after checkpointed reopen: %v", err)
	}
	if st := r.DurableStats(); st.Seq != 8 {
		t.Fatalf("seq after post-checkpoint add = %d, want 8", st.Seq)
	}
}

func TestDurableReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := rankedOf(t, s)
	walBefore, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	// A read-only open alongside the live writer: recovers, queries, never
	// writes.
	r, err := OpenDurable(dir, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := rankedOf(t, r); !reflect.DeepEqual(got, want) {
		t.Fatal("read-only ranking differs")
	}
	if err := r.Add(durableTestVideo(4)); err == nil {
		t.Fatal("read-only store accepted an Add")
	}
	if err := r.Checkpoint(); err == nil {
		t.Fatal("read-only store accepted a Checkpoint")
	}
	if st := r.DurableStats(); !st.ReadOnly || st.Seq != 3 {
		t.Fatalf("read-only stats = %+v", st)
	}
	walAfter, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(walBefore) != string(walAfter) {
		t.Fatal("read-only open modified the log")
	}
	s.Close()
}

func TestDurableFsyncErrorFailsAddAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALSync, Key: faultinject.KeyAny, Kind: faultinject.KindError,
	}))
	err = s.Add(durableTestVideo(3))
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Add under fsync failure = %v", err)
	}
	// The video was never acknowledged: not in memory, not on disk.
	if len(s.Videos()) != 2 {
		t.Fatalf("unacknowledged video applied: %d videos", len(s.Videos()))
	}
	// The writer is poisoned (fsyncgate); later adds fail until reopen.
	if err := s.Add(durableTestVideo(4)); !errors.Is(err, wal.ErrWriterFailed) {
		t.Fatalf("Add on a poisoned store = %v", err)
	}
	s.Close()
	r, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := rankedOf(t, r); !reflect.DeepEqual(got, referenceRanked(t, 2)) {
		t.Fatal("recovery after fsync failure differs from the 2-video reference")
	}
	if err := r.Add(durableTestVideo(3)); err != nil {
		t.Fatalf("Add after reopen: %v", err)
	}
}

func TestDurableShortWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALAppend, Key: faultinject.KeyAny,
		Kind: faultinject.KindShortWrite, Bytes: 11,
	}))
	err = s.Add(durableTestVideo(3))
	faultinject.Disarm()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Add under short write = %v", err)
	}
	if len(s.Videos()) != 2 {
		t.Fatalf("torn video applied: %d videos", len(s.Videos()))
	}
	s.Close()
	// The file carries 2 committed frames plus an 11-byte tear; recovery
	// truncates the tear and serves exactly the committed prefix.
	r, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := rankedOf(t, r); !reflect.DeepEqual(got, referenceRanked(t, 2)) {
		t.Fatal("recovery after short write differs from the 2-video reference")
	}
}

// --- kill-at-offset subprocess harness (make crash) ---

const (
	killChildEnv   = "HTL_WAL_KILL_CHILD"
	killDirEnv     = "HTL_WAL_KILL_DIR"
	killOffsetEnv  = "HTL_WAL_KILL_OFFSET"
	killChildCount = 5
)

// TestWALKillChild is the harness's child half: it only runs re-executed by
// TestWALCrashKillAtOffset with the environment set. It opens the durable
// store and commits videos until the armed kill rule terminates the process
// mid-write (or it finishes, for offsets past the log's end).
func TestWALKillChild(t *testing.T) {
	if os.Getenv(killChildEnv) != "1" {
		t.Skip("harness child; run via TestWALCrashKillAtOffset")
	}
	dir := os.Getenv(killDirEnv)
	off, err := strconv.ParseInt(os.Getenv(killOffsetEnv), 10, 64)
	if err != nil {
		t.Fatalf("bad %s: %v", killOffsetEnv, err)
	}
	if off > 0 {
		faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
			Site: faultinject.SiteWALAppend, Key: faultinject.KeyAny,
			Kind: faultinject.KindKill, Offset: off,
		}))
	}
	s, err := OpenDurable(dir, WithCheckpointEvery(0, 0))
	if err != nil {
		t.Fatalf("child OpenDurable: %v", err)
	}
	for i := 1; i <= killChildCount; i++ {
		if err := s.Add(durableTestVideo(i)); err != nil {
			t.Fatalf("child Add %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("child Close: %v", err)
	}
}

// TestWALCrashKillAtOffset kills a real child process (os.Exit mid-write, no
// deferred cleanup, no fsync) at offsets throughout the WAL — every record
// boundary, its neighbors, and mid-frame points — and asserts recovery in
// the parent always lands on exactly the longest committed prefix, with
// query results identical to an uncrashed in-memory store.
func TestWALCrashKillAtOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness; skipped in -short")
	}
	// Dry run (offset 0 arms nothing): learn the log's record boundaries.
	dryDir := t.TempDir()
	runKillChild(t, dryDir, 0, 0)
	ends := []int64{int64(wal.HeaderSize())}
	_, err := wal.Replay(filepath.Join(dryDir, "wal.log"), func(r wal.Record) error {
		ends = append(ends, ends[len(ends)-1]+int64(wal.FrameSize(len(r.Payload))))
		return nil
	})
	if err != nil || len(ends) != killChildCount+1 {
		t.Fatalf("dry run produced %d records, err %v", len(ends)-1, err)
	}
	want := make([][]Ranked, killChildCount+1)
	for n := 0; n <= killChildCount; n++ {
		want[n] = referenceRanked(t, n)
	}

	// Offsets to kill at: each boundary and its neighbors, plus mid-frame.
	offsets := map[int64]bool{}
	for n := 1; n <= killChildCount; n++ {
		beg, end := ends[n-1], ends[n]
		offsets[beg] = true // kill before the frame's first byte
		offsets[beg+1] = true
		offsets[(beg+end)/2] = true
		offsets[end-1] = true // all but the last byte written
	}
	offsets[ends[killChildCount]+1000] = true // past the end: child survives

	for off := range offsets {
		dir := t.TempDir()
		killed := off <= ends[killChildCount]
		wantCode := 0
		if killed {
			wantCode = faultinject.DefaultKillExitCode
		}
		runKillChild(t, dir, off, wantCode)

		committed := 0
		for n := 1; n <= killChildCount; n++ {
			if ends[n] <= off {
				committed = n
			}
		}
		if !killed {
			committed = killChildCount
		}
		r, err := OpenDurable(dir, WithCheckpointEvery(0, 0))
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		if got := len(r.Videos()); got != committed {
			t.Fatalf("offset %d: recovered %d videos, want %d", off, got, committed)
		}
		if got := rankedOf(t, r); !reflect.DeepEqual(got, want[committed]) {
			t.Fatalf("offset %d: recovered ranking differs from the uncrashed reference", off)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("offset %d: Close: %v", off, err)
		}
	}
}

// runKillChild re-executes the test binary as the harness child and asserts
// its exit code.
func runKillChild(t *testing.T, dir string, offset int64, wantCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWALKillChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		killChildEnv+"=1",
		killDirEnv+"="+dir,
		killOffsetEnv+"="+strconv.FormatInt(offset, 10),
	)
	out, err := cmd.CombinedOutput()
	code := 0
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("child failed to run: %v\n%s", err, out)
	}
	if code != wantCode {
		t.Fatalf("child at offset %d exited %d, want %d\n%s", offset, code, wantCode, out)
	}
}
