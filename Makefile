# Development targets. `make check` is the full gate: vet, build, and the
# whole test suite under the race detector — the store-level concurrency and
# resilience tests (store_resilience_test.go) are only meaningful with -race.

GO ?= go

.PHONY: check vet build test race chaos fuzz fuzz-store bench bench-short

check: vet build race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# End-to-end server chaos test: ≥32 concurrent clients against htlserve's
# handler while faultinject injects build failures, panics and stalls.
# Run alone (not in parallel with other packages): fault plans are
# process-wide.
chaos:
	$(GO) test -race -run '^TestServerChaos$$' -count=1 -v ./internal/server/

# Short parser fuzz session (FuzzParse: parse → print → re-parse is total).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/htl/

# Short store-format fuzz session (FuzzLoadStore: load never panics and
# load → save → load round-trips byte-identically).
fuzz-store:
	$(GO) test -run '^$$' -fuzz=FuzzLoadStore -fuzztime=30s .

# Benchmarks plus BENCH_obs.json (per-engine query latency from the store's
# own metrics histograms) and BENCH_perf.json (compilation/caching ns/op,
# B/op, allocs/op, and the warm-vs-cold repeated-query speedup).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	BENCH_OBS_OUT=BENCH_obs.json $(GO) test -run '^TestWriteBenchObs$$' -count=1 -v .
	BENCH_PERF_OUT=BENCH_perf.json $(GO) test -run '^TestWriteBenchPerf$$' -count=1 -v .

# Fast allocation-aware bench smoke (CI): every benchmark once at reduced
# short-mode sizes, with allocs/op visible.
bench-short:
	$(GO) test -short -run '^$$' -bench=. -benchtime=1x -benchmem ./...
