# Development targets. `make check` is the full gate: vet, build, and the
# whole test suite under the race detector — the store-level concurrency and
# resilience tests (store_resilience_test.go) are only meaningful with -race.

GO ?= go

.PHONY: check vet build test race fuzz bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short parser fuzz session (FuzzParse: parse → print → re-parse is total).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/htl/

# Benchmarks plus BENCH_obs.json: per-engine query latency (count, mean,
# p50, p99) read from the store's own metrics histograms.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	BENCH_OBS_OUT=BENCH_obs.json $(GO) test -run '^TestWriteBenchObs$$' -count=1 -v .
