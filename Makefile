# Development targets. `make check` is the full gate: vet, build, and the
# whole test suite under the race detector — the store-level concurrency and
# resilience tests (store_resilience_test.go) are only meaningful with -race.

GO ?= go

.PHONY: check vet staticcheck build test race lint-metrics chaos chaos-shard crash explain-smoke fuzz fuzz-store fuzz-wal bench bench-short

check: vet staticcheck build race lint-metrics chaos chaos-shard crash explain-smoke

vet:
	$(GO) vet ./...

# staticcheck is optional locally (it is not vendored; CI installs it with
# `go install honnef.co/go/tools/cmd/staticcheck@latest`). The target is a
# no-op with a notice when the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Metrics-conventions lint: every Prometheus exposition the store, server and
# shard coordinator serve must pass obs.LintExposition (counter/gauge/
# histogram naming, cumulative buckets, +Inf terminators, name charset).
lint-metrics:
	$(GO) test -run '^TestMetricsConventions$$|^TestLintExposition' -count=1 ./ ./internal/obs/

# End-to-end server chaos test: ≥32 concurrent clients against htlserve's
# handler while faultinject injects build failures, panics and stalls.
# Run alone (not in parallel with other packages): fault plans are
# process-wide.
chaos:
	$(GO) test -race -run '^TestServerChaos$$' -count=1 -v ./internal/server/

# Multi-process scatter-gather chaos test: N shard server processes (one
# under fault injection, one killed outright) behind the coordinator, driven
# by 32 concurrent clients. Asserts no dropped responses, a breaker open on
# the dead shard, partials from the survivors, quorum refusal, and a merged
# ranking byte-identical to a single store while healthy.
chaos-shard:
	$(GO) test -race -run '^TestShardChaosMultiProcess$$' -count=1 -v ./internal/shard/

# Crash-injection harness for the durable store: re-execs the test binary as
# a child that kills itself (SIGKILL-equivalent exit) at chosen WAL byte
# offsets mid-commit, then recovers the directory in the parent and checks
# query results byte-for-byte against an uncrashed store. The in-process
# every-byte-prefix property test rides along.
crash:
	$(GO) test -race -run '^TestWALCrashKillAtOffset$$|^TestDurableCrashEveryBytePrefix$$' -count=1 -v .

# Explain smoke: `htlquery -explain` on the Fig. 2 until example must print a
# non-empty annotated plan tree (a panic or an empty tree fails the target).
explain-smoke:
	@out=$$($(GO) run ./cmd/htlquery -demo -explain "M1 until M2") || exit 1; \
	echo "$$out"; \
	echo "$$out" | grep -q '^until' || { echo "explain-smoke: no until node in output" >&2; exit 1; }; \
	echo "$$out" | grep -q 'visits=' || { echo "explain-smoke: no per-node stats in output" >&2; exit 1; }

# Short parser fuzz session (FuzzParse: parse → print → re-parse is total).
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/htl/

# Short store-format fuzz session (FuzzLoadStore: load never panics and
# load → save → load round-trips byte-identically).
fuzz-store:
	$(GO) test -run '^$$' -fuzz=FuzzLoadStore -fuzztime=30s .

# Short WAL-replay fuzz session (FuzzWALReplay: recovery over arbitrary log
# bytes never panics, accounts for every byte, and the committed prefix it
# reports re-replays identically).
fuzz-wal:
	$(GO) test -run '^$$' -fuzz=FuzzWALReplay -fuzztime=30s ./internal/wal/

# Benchmarks plus BENCH_obs.json (per-engine query latency from the store's
# own metrics histograms), BENCH_perf.json (compilation/caching ns/op,
# B/op, allocs/op, and the warm-vs-cold repeated-query speedup), and the
# trace-propagation gate (always-on trace context within 5% of the warm
# repeated-query path).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
	BENCH_OBS_OUT=BENCH_obs.json $(GO) test -run '^TestWriteBenchObs$$' -count=1 -v .
	BENCH_PERF_OUT=BENCH_perf.json $(GO) test -run '^TestWriteBenchPerf$$' -count=1 -v .
	BENCH_TRACE_GATE=1 $(GO) test -run '^TestTracePropagationOverhead$$' -count=1 -v .

# Fast allocation-aware bench smoke (CI): every benchmark once at reduced
# short-mode sizes, with allocs/op visible, plus the trace-propagation gate
# at a tolerance wide enough for noisy shared runners.
bench-short:
	$(GO) test -short -run '^$$' -bench=. -benchtime=1x -benchmem ./...
	BENCH_TRACE_GATE=1 BENCH_TRACE_TOLERANCE=0.5 $(GO) test -run '^TestTracePropagationOverhead$$' -count=1 -v .
