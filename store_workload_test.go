package htlvideo

// Workload-analytics tests: the per-plan-key query statistics fed from the
// settle hook (calls, error classes, cache hits, memo hits, per-video work),
// the query.errors.<class> counters, the store health rollup (including the
// durable components under injected WAL failures), and the extended debug
// HTTP surface — /debug/queries, /debug/health, /debug/timeseries,
// /debug/dash. All race-clean; the concurrency test drives queries, sampler
// scrapes and snapshots together.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"htlvideo/internal/faultinject"
	"htlvideo/internal/obs"
	"htlvideo/internal/obs/querystats"
)

// planKeyOf compiles the query the same way the store does and returns its
// canonical plan key.
func planKeyOf(t *testing.T, s *Store, q string) string {
	t.Helper()
	cq, _, err := s.compile(q, false)
	if err != nil {
		t.Fatal(err)
	}
	return cq.plan.Key
}

func statsEntry(t *testing.T, s *Store, planKey string) querystats.EntrySnapshot {
	t.Helper()
	for _, e := range s.QueryStats().Snapshot().Entries {
		if e.PlanKey == planKey {
			return e
		}
	}
	t.Fatalf("plan key %q not tracked; have %d entries", planKey, len(s.QueryStats().Snapshot().Entries))
	return querystats.EntrySnapshot{}
}

// TestQueryStatsFeed: queries aggregate under their plan key with class,
// engine, latency, and per-video work counts; a repeat of the same formula
// text lands on the same entry.
func TestQueryStatsFeed(t *testing.T) {
	s := resilienceStore(t, 3)
	for i := 0; i < 3; i++ {
		if _, err := s.Query("M1 and M2"); err != nil {
			t.Fatal(err)
		}
	}
	// Same formula, different surface text: same canonical plan key.
	if _, err := s.Query("M1  and   M2"); err != nil {
		t.Fatal(err)
	}
	key := planKeyOf(t, s, "M1 and M2")
	e := statsEntry(t, s, key)
	if e.Calls != 4 {
		t.Fatalf("calls = %d, want 4 (canonicalization should fold the variants)", e.Calls)
	}
	if e.Class == "" || e.Engine == "" {
		t.Fatalf("entry missing labels: %+v", e)
	}
	if e.VideosEvaluated != 12 {
		t.Fatalf("videos evaluated = %d, want 12 (3 videos x 4 calls)", e.VideosEvaluated)
	}
	if e.TotalSeconds <= 0 || e.MeanSeconds <= 0 {
		t.Fatalf("latency summary empty: %+v", e)
	}
	if e.ErrorCount() != 0 {
		t.Fatalf("errors = %v on clean queries", e.Errors)
	}
	snap := s.QueryStats().Snapshot()
	if snap.Totals.Calls != 4 {
		t.Fatalf("totals = %+v", snap.Totals)
	}

	// Queries lacking the requested level count skipped videos.
	if _, err := s.Query("M1", AtLevel(5)); err != nil {
		t.Fatal(err)
	}
	if e := statsEntry(t, s, planKeyOf(t, s, "M1")); e.VideosSkipped != 3 {
		t.Fatalf("videos skipped = %d, want 3", e.VideosSkipped)
	}
}

// TestQueryStatsCacheHit: result-cache hits mark the entry (and still count
// as calls).
func TestQueryStatsCacheHit(t *testing.T) {
	s := resilienceStore(t, 3)
	s.EnableResultCache(ResultCacheConfig{Capacity: 16})
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	e := statsEntry(t, s, planKeyOf(t, s, "M1"))
	if e.Calls != 2 || e.CacheHits != 1 {
		t.Fatalf("calls=%d cacheHits=%d, want 2/1", e.Calls, e.CacheHits)
	}
	if got := e.CacheHitRatio(); got != 0.5 {
		t.Fatalf("cache hit ratio = %v, want 0.5", got)
	}
}

// TestErrorClassCounters: failed queries split into query.errors.<class>
// counters and the per-plan-key error maps — picture-build faults, context
// deadlines, and validation (parse) errors each landing in their class.
func TestErrorClassCounters(t *testing.T) {
	s := resilienceStore(t, 3)

	// Injected picture-build failure.
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem, Key: 2, Kind: faultinject.KindError,
	}))
	if _, err := s.Query("M1"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	faultinject.Disarm()

	// Context deadline.
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem, Key: 2, Kind: faultinject.KindStall,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.QueryCtx(ctx, "M2"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
	faultinject.Disarm()

	// Parse failure: counted by class, not tracked per plan key (none exists).
	if _, err := s.Query("M1 and and"); err == nil {
		t.Fatal("want parse error")
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Counters["query.errors.picture-build"]; got != 1 {
		t.Fatalf("picture-build errors = %d, want 1", got)
	}
	if got := snap.Counters["query.errors.context"]; got != 1 {
		t.Fatalf("context errors = %d, want 1", got)
	}
	if got := snap.Counters["query.errors.validation"]; got != 1 {
		t.Fatalf("validation errors = %d, want 1", got)
	}

	if e := statsEntry(t, s, planKeyOf(t, s, "M1")); e.Errors["picture-build"] != 1 {
		t.Fatalf("M1 entry errors = %v", e.Errors)
	}
	if e := statsEntry(t, s, planKeyOf(t, s, "M2")); e.Errors["context"] != 1 {
		t.Fatalf("M2 entry errors = %v", e.Errors)
	}
}

// TestStoreHealth: a healthy in-memory store reports every component ok with
// informational reasons.
func TestStoreHealth(t *testing.T) {
	s := resilienceStore(t, 3)
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	d := s.Health()
	if d.Degraded() {
		t.Fatalf("healthy store degraded: %v", d.Reasons())
	}
	names := map[string]bool{}
	for _, c := range d.Components {
		names[c.Name] = true
		if c.Reason == "" {
			t.Fatalf("component %s has no reason string", c.Name)
		}
	}
	if !names["store"] || !names["picture-cache"] {
		t.Fatalf("components = %+v", d.Components)
	}
}

// TestStoreHealthWALFailures: injected WAL append failures degrade the
// wal-io component with a reason naming the failure counts.
func TestStoreHealthWALFailures(t *testing.T) {
	s, err := OpenDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v := NewVideo(1, "clip", map[string]int{"shot": 2})
	v.Root.AppendChild(Seg().Attr("M1", Int(1)).Build())
	if err := s.Add(v); err != nil {
		t.Fatal(err)
	}
	if d := s.Health(); d.Degraded() {
		t.Fatalf("fresh durable store degraded: %v", d.Reasons())
	}

	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALAppend, Key: faultinject.KeyAny, Kind: faultinject.KindError,
	}))
	v2 := NewVideo(2, "clip2", map[string]int{"shot": 2})
	v2.Root.AppendChild(Seg().Attr("M1", Int(1)).Build())
	if err := s.Add(v2); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Add err = %v, want injected", err)
	}
	faultinject.Disarm()

	d := s.Health()
	if !d.Degraded() {
		t.Fatal("store with WAL append failures not degraded")
	}
	found := false
	for _, c := range d.Components {
		if c.Name == "wal-io" && !c.OK && strings.Contains(c.Reason, "append errors") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wal-io not degraded with reason: %+v", d.Components)
	}
}

// TestDebugWorkloadEndpoints: the extended debug surface serves query stats
// (sortable), the health document, the timeseries document, and the HTML
// dashboard.
func TestDebugWorkloadEndpoints(t *testing.T) {
	s := resilienceStore(t, 3)
	for i := 0; i < 2; i++ {
		if _, err := s.Query("M1"); err != nil {
			t.Fatal(err)
		}
	}
	s.Sampler().Scrape()
	s.Sampler().Scrape()
	h := s.DebugHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries?sort=total", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/queries: %d", rec.Code)
	}
	var qs querystats.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &qs); err != nil {
		t.Fatal(err)
	}
	if qs.SortedBy != "total" || len(qs.Entries) != 1 || qs.Entries[0].Calls != 2 {
		t.Fatalf("queries doc: %+v", qs)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
	var hd obs.HealthDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &hd); err != nil {
		t.Fatal(err)
	}
	if hd.Status != obs.HealthOK || len(hd.Components) == 0 {
		t.Fatalf("health doc: %+v", hd)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeseries", nil))
	var ts struct {
		Samples int `json:"samples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Samples != 2 {
		t.Fatalf("timeseries samples = %d, want 2", ts.Samples)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dash", nil))
	body := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(body, "<html") {
		t.Fatalf("/debug/dash: %d", rec.Code)
	}
	for _, want := range []string{"Health", "Query shapes", "M1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

// TestWorkloadConcurrency drives queries, registry snapshots, sampler
// scrapes, query-stats snapshots and health rollups from many goroutines at
// once — the -race proof for the whole analytics path — then checks the
// sampler goroutine is gone after Close.
func TestWorkloadConcurrency(t *testing.T) {
	before := runtime.NumGoroutine()
	s := resilienceStore(t, 3)
	s.StartSampling(200 * time.Microsecond)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := s.Query("M1 and M2"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = s.Metrics().Snapshot()
				_ = s.QueryStats().Snapshot()
				_ = s.Health()
				_ = s.Sampler().Trends()
			}
		}()
	}
	wg.Wait()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after Close: before=%d after=%d", before, got)
	}
	if got := s.QueryStats().Snapshot().Totals.Calls; got != 100 {
		t.Fatalf("totals.calls = %d, want 100", got)
	}
}
