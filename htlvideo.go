// Package htlvideo is a similarity-based video retrieval system: a Go
// implementation of Sistla, Yu & Venkatasubrahmanian, "Similarity Based
// Retrieval of Videos" (ICDE 1997).
//
// Videos are modeled hierarchically (video → plots → scenes → shots →
// frames) with extended E-R meta-data on every segment. Queries are written
// in HTL — Hierarchical Temporal Logic — combining temporal operators
// (next, until, eventually), level-modal operators (at-shot-level, ...),
// existential quantification over objects and the freeze operator for
// comparing attribute values across segments. Retrieval is similarity-based:
// every segment receives a similarity value (actual, maximum) against the
// query and the top-k segments are returned.
//
// Quick start:
//
//	store := htlvideo.NewStore(nil, htlvideo.DefaultWeights())
//	v := htlvideo.NewVideo(1, "my video", map[string]int{"shot": 2})
//	v.Root.AppendChild(htlvideo.Seg().Obj(1, "man").Prop("holds_gun").Build())
//	_ = store.Add(v)
//	res, _ := store.Query("exists x . present(x) and holds_gun(x)")
//	for _, r := range res.TopK(5) {
//	    fmt.Println(r.VideoID, r.Iv, r.Sim.Act)
//	}
package htlvideo

import (
	"io"

	"htlvideo/internal/analyzer"
	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/obs"
	"htlvideo/internal/picture"
	"htlvideo/internal/simlist"
	"htlvideo/internal/track"
	"htlvideo/internal/videogen"
)

// Re-exported building blocks. The aliases give downstream users names for
// every type reachable through the public API.
type (
	// Video is one video's segment hierarchy plus level naming.
	Video = metadata.Video
	// Node is one video segment in the hierarchy.
	Node = metadata.Node
	// SegmentMeta is the meta-data of one segment.
	SegmentMeta = metadata.SegmentMeta
	// Object is an object occurrence in a segment.
	Object = metadata.Object
	// ObjectID identifies an object across the database.
	ObjectID = metadata.ObjectID
	// Relationship is a binary predicate between two objects in a segment.
	Relationship = metadata.Relationship
	// Value is an attribute value (integer or string).
	Value = metadata.Value
	// LeafSpan is a segment's covered range of leaf (frame) positions.
	LeafSpan = metadata.LeafSpan
	// SegBuilder assembles segment meta-data fluently.
	SegBuilder = metadata.SegBuilder

	// Taxonomy is the type hierarchy used for graded type matching.
	Taxonomy = picture.Taxonomy
	// Weights are the additive scoring weights of the picture substrate.
	Weights = picture.Weights

	// Formula is a parsed HTL query.
	Formula = htl.Formula
	// Class is the paper's formula-class hierarchy.
	Class = htl.Class

	// SimList is a similarity list: runs of segment ids with their actual
	// similarity; MaxSim is the query's maximum similarity.
	SimList = simlist.List
	// SimEntry is one run of a similarity list.
	SimEntry = simlist.Entry
	// Sim is a similarity value (actual, maximum).
	Sim = simlist.Sim
	// Ranked is one run of segments in a ranked result.
	Ranked = core.Ranked

	// Trace is one query's structured timing record: a tree of stage spans
	// plus query-level tags (see WithTrace and Store.SlowLog).
	Trace = obs.Trace
	// TraceSnapshot is the JSON-ready copy of a finished trace.
	TraceSnapshot = obs.TraceSnapshot
	// SpanSnapshot is the JSON-ready copy of one trace span.
	SpanSnapshot = obs.SpanSnapshot
	// TraceSink receives completed query traces (WithTrace, SetTraceSink).
	TraceSink = obs.TraceSink
	// TraceCollector is a TraceSink retaining every trace, for inspection.
	TraceCollector = obs.TraceCollector
	// MetricsRegistry is the store's named metric collection (Store.Metrics).
	MetricsRegistry = obs.Registry
	// SlowLog retains the slowest queries with their traces (Store.SlowLog).
	SlowLog = obs.SlowLog
	// SlowEntry is one retained query of the slow log.
	SlowEntry = obs.SlowEntry
	// TraceRing is the bounded ring of recent query traces (Store.TraceRing,
	// /debug/traces).
	TraceRing = obs.TraceRing
	// TraceSummary is one retained trace's listing entry.
	TraceSummary = obs.TraceSummary
	// HistogramSnapshot is a latency histogram's point-in-time state.
	HistogramSnapshot = obs.HistogramSnapshot
	// Logger is the pluggable logging interface of the observability layer.
	Logger = obs.Logger
	// LoggerFunc adapts a printf-style function to Logger.
	LoggerFunc = obs.LoggerFunc
	// ExplainNode is one plan node of an ExplainResult, annotated with its
	// execution statistics.
	ExplainNode = obs.ExplainNode
	// NodeStats is one plan node's execution accounting.
	NodeStats = obs.NodeStats

	// Frame is one synthetic video frame for the analyzer pipeline.
	Frame = videogen.Frame
	// ShotSpec scripts one shot of a synthetic video.
	ShotSpec = videogen.ShotSpec
	// AnalyzeOptions configure the video analyzer.
	AnalyzeOptions = analyzer.Options
	// Detection is one anonymous per-frame object observation, before the
	// tracker assigns the stable ids of §2.2.
	Detection = track.Detection
	// TrackConfig tunes the object tracker.
	TrackConfig = track.Config
)

// Formula classes (see Classify).
const (
	ClassType1               = htl.ClassType1
	ClassType2               = htl.ClassType2
	ClassConjunctive         = htl.ClassConjunctive
	ClassExtendedConjunctive = htl.ClassExtendedConjunctive
	ClassGeneral             = htl.ClassGeneral
)

// NewVideo creates an empty video hierarchy (level 1 root). levelNames maps
// symbolic level names ("scene", "shot", "frame") to level numbers for the
// at-<name>-level operators.
func NewVideo(id int, name string, levelNames map[string]int) *Video {
	return metadata.NewVideo(id, name, levelNames)
}

// Seg starts a segment meta-data builder.
func Seg() *SegBuilder { return metadata.Seg() }

// Int and Str construct attribute values.
func Int(v int64) Value  { return metadata.Int(v) }
func Str(s string) Value { return metadata.Str(s) }

// NewTaxonomy returns an empty type taxonomy.
func NewTaxonomy() *Taxonomy { return picture.NewTaxonomy() }

// DefaultWeights weights every scoring term kind equally.
func DefaultWeights() Weights { return picture.DefaultWeights() }

// RegisterProcessMetrics adds the standard process-identification gauges
// (build_info with module/go/vcs versions, start time, uptime, pid) to a
// metrics registry; long-running listeners call it once so every scrape
// identifies the serving binary.
func RegisterProcessMetrics(reg *MetricsRegistry) { obs.RegisterProcessMetrics(reg) }

// RenderTraceTree writes a trace snapshot as a box-drawing span tree, one
// span per line with duration and tags — the human-readable form of a query
// trace, including stitched cross-process traces from a coordinator.
func RenderTraceTree(w io.Writer, snap TraceSnapshot) { obs.RenderSpanTree(w, snap) }

// NewTraceID mints a globally unique (128-bit random) trace identifier, the
// form WithTraceID and the X-Htl-Trace header carry. Callers embedding the
// store behind their own RPC layer mint one per request and propagate it to
// every store call the request fans out to.
func NewTraceID() string { return obs.NewTraceID() }

// Parse parses an HTL query.
func Parse(query string) (Formula, error) { return htl.Parse(query) }

// MustParse parses an HTL query, panicking on error.
func MustParse(query string) Formula { return htl.MustParse(query) }

// Classify determines the smallest formula class containing f (the paper's
// type (1) ⊂ type (2) ⊂ conjunctive ⊂ extended conjunctive ⊂ general).
func Classify(f Formula) Class { return htl.Classify(f) }

// AnalyzeFrames runs the video-analyzer pipeline (cut detection + per-shot
// content aggregation) over a frame stream and returns the resulting video
// plus the detected cut positions.
func AnalyzeFrames(frames []Frame, opts AnalyzeOptions) (*Video, []int, error) {
	res, err := analyzer.Analyze(frames, opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Video, res.Cuts, nil
}

// AnalyzeDetections runs the detector-world pipeline: anonymous per-frame
// detections are tracked into objects with stable ids, then cut-detected and
// aggregated into a video. The frames supply histogram signatures and
// segment attributes; their ground-truth objects are ignored.
func AnalyzeDetections(frames []Frame, dets [][]Detection, tcfg TrackConfig, opts AnalyzeOptions) (*Video, []int, error) {
	res, err := analyzer.AnalyzeTracked(frames, dets, tcfg, opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Video, res.Cuts, nil
}

// AnonymizeFrames strips ground-truth object identities from a rendered
// stream, yielding the detections a (synthetic) object detector would emit.
func AnonymizeFrames(frames []Frame, featureNoise float64, seed int64) [][]Detection {
	return videogen.Anonymize(frames, featureNoise, seed)
}

// RenderFrames synthesizes the frame stream of scripted shots (noise adds
// per-frame histogram jitter; the same seed reproduces the same stream).
func RenderFrames(specs []ShotSpec, noise float64, seed int64) []Frame {
	return videogen.Render(specs, noise, seed)
}

// CutPoints returns the ground-truth shot boundaries of a script.
func CutPoints(specs []ShotSpec) []int { return videogen.CutPoints(specs) }
