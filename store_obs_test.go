package htlvideo

// Store-level observability tests: cache hit/miss accounting across warm and
// cold runs, panic-recovery and per-video failure counters, trace structure
// and timing consistency, per-engine/per-class query breakdowns, SQL
// statement stats, and the debug HTTP surface — all proven with
// internal/faultinject scenarios and kept clean under `go test -race`.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"htlvideo/internal/faultinject"
)

// TestCacheCountersWarmCold proves the picture-system cache counters across a
// cold run (every video misses), a warm run (every video hits), and a run at
// a different level (new cache keys miss again).
func TestCacheCountersWarmCold(t *testing.T) {
	s := resilienceStore(t, 3)
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	c := s.Stats().Cache
	if c.Misses != 3 || c.Hits != 0 || c.Size != 3 {
		t.Fatalf("cold run: %+v, want 3 misses, 0 hits, size 3", c)
	}
	if _, err := s.Query("M2"); err != nil {
		t.Fatal(err)
	}
	c = s.Stats().Cache
	if c.Misses != 3 || c.Hits != 3 || c.Size != 3 {
		t.Fatalf("warm run: %+v, want 3 misses, 3 hits, size 3", c)
	}
	// The root level is a different cache key per video: cold again.
	if _, err := s.Query("at-shot-level(M1)", AtRoot()); err != nil {
		t.Fatal(err)
	}
	c = s.Stats().Cache
	if c.Misses != 6 || c.Hits != 3 || c.Size != 6 {
		t.Fatalf("root-level run: %+v, want 6 misses, 3 hits, size 6", c)
	}
}

// TestCacheEvictionCounted: a failed build is evicted (counted) and the next
// query rebuilds it as a fresh miss.
func TestCacheEvictionCounted(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  2,
		Kind: faultinject.KindError,
	}))
	if _, err := s.Query("M1"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	c := s.Stats().Cache
	if c.Misses != 3 || c.Evicted != 1 || c.Size != 2 {
		t.Fatalf("after failed build: %+v, want 3 misses, 1 evicted, size 2", c)
	}
	faultinject.Disarm()
	if _, err := s.Query("M1"); err != nil {
		t.Fatalf("query after eviction: %v", err)
	}
	c = s.Stats().Cache
	if c.Misses != 4 || c.Hits != 2 || c.Size != 3 {
		t.Fatalf("after retry: %+v, want 4 misses, 2 hits, size 3", c)
	}
}

// TestPanicRecoveredCounters: a fault-injected panic increments the
// panic-recovered gauge and the failed-video counter, and the surviving
// VideoError carries a positive elapsed duration.
func TestPanicRecoveredCounters(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  2,
		Kind: faultinject.KindPanic,
	}))
	res, err := s.Query("M1", WithPartialResults())
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	p := s.Stats().Pool
	if p.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", p.PanicsRecovered)
	}
	if p.VideosFailed != 1 || p.VideosEvaluated != 2 {
		t.Fatalf("pool stats = %+v, want 1 failed, 2 evaluated", p)
	}
	if p.InFlight != 0 || p.Queued != 0 {
		t.Fatalf("pool gauges did not settle: %+v", p)
	}
	var ve *VideoError
	if len(res.Errors) != 1 || !errors.As(res.Errors[0], &ve) {
		t.Fatalf("Errors = %v, want one *VideoError", res.Errors)
	}
	if ve.Elapsed <= 0 {
		t.Fatalf("VideoError.Elapsed = %v, want > 0", ve.Elapsed)
	}
	// The partial-result query itself succeeded: no query-level error.
	if q := s.Stats().Queries; q.Total != 1 || q.Errors != 0 {
		t.Fatalf("query stats = %+v, want 1 total, 0 errors", q)
	}
}

// TestVideosSkippedCounter: videos lacking the queried level are skipped and
// counted, not errored.
func TestVideosSkippedCounter(t *testing.T) {
	s := resilienceStore(t, 3)
	res, err := s.Query("M1", AtLevel(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVideo) != 0 {
		t.Fatalf("PerVideo = %v, want empty", res.PerVideo)
	}
	if got := s.Stats().Pool.VideosSkipped; got != 3 {
		t.Fatalf("VideosSkipped = %d, want 3", got)
	}
}

// TestTraceStagesWithinWallTime is the trace acceptance criterion: a traced
// query (with fault-injected stalls making stage durations non-trivial)
// yields stages parse → eval → merge whose durations sum to within the
// measured wall time, with per-video spans nested under eval and tagged.
func TestTraceStagesWithinWallTime(t *testing.T) {
	s := resilienceStore(t, 3)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site:  faultinject.SiteAtomicEval,
		Key:   faultinject.KeyAny,
		Kind:  faultinject.KindStall,
		Stall: 2 * time.Millisecond,
	}))
	var tc TraceCollector
	start := time.Now()
	if _, err := s.QueryCtx(context.Background(), "M1 until M2", WithTrace(&tc)); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	last := tc.Last()
	if last == nil {
		t.Fatal("WithTrace delivered no trace")
	}
	snap := last.Snapshot()

	if snap.Name != "M1 until M2" {
		t.Fatalf("trace name = %q", snap.Name)
	}
	for tag, want := range map[string]string{
		"engine": "auto", "class": "type1", "level": "2", "videos": "3",
	} {
		if got := snap.Tags[tag]; got != want {
			t.Errorf("tag %s = %q, want %q", tag, got, want)
		}
	}
	if len(snap.Spans) != 3 || snap.Spans[0].Name != "parse" ||
		snap.Spans[1].Name != "eval" || snap.Spans[2].Name != "merge" {
		t.Fatalf("stages = %+v, want parse, eval, merge", snap.Spans)
	}

	// Timing consistency: stages are sequential, so their durations sum to at
	// most the trace total, which in turn fits the wall time measured around
	// the call.
	var sum time.Duration
	for _, sp := range snap.Spans {
		sum += sp.Duration
	}
	if sum > snap.Duration {
		t.Errorf("stage durations sum %v > trace total %v", sum, snap.Duration)
	}
	if snap.Duration > wall {
		t.Errorf("trace total %v > measured wall time %v", snap.Duration, wall)
	}

	// With the injected stall the eval stage did real, visible work.
	eval := snap.Spans[1]
	if eval.Duration < 2*time.Millisecond {
		t.Errorf("eval duration = %v, want at least the injected 2ms stall", eval.Duration)
	}
	if len(eval.Children) != 3 {
		t.Fatalf("eval children = %d, want one span per video", len(eval.Children))
	}
	seen := map[string]bool{}
	for _, v := range eval.Children {
		if v.Name != "video" {
			t.Fatalf("eval child = %q, want video", v.Name)
		}
		seen[v.Tags["video"]] = true
		var names []string
		for _, c := range v.Children {
			names = append(names, c.Name)
		}
		if len(names) != 2 || names[0] != "system" || names[1] != "engine" {
			t.Fatalf("video %s spans = %v, want [system engine]", v.Tags["video"], names)
		}
		if v.Children[0].Duration+v.Children[1].Duration > v.Duration {
			t.Errorf("video %s child durations exceed the video span", v.Tags["video"])
		}
	}
	if len(seen) != 3 {
		t.Fatalf("video tags = %v, want 3 distinct ids", seen)
	}
}

// TestTraceOnFailedQuery: the per-query sink still receives the trace when
// the query fails, tagged with the error.
func TestTraceOnFailedQuery(t *testing.T) {
	s := resilienceStore(t, 1)
	armPlan(t, faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SitePictureNewSystem,
		Key:  1,
		Kind: faultinject.KindError,
	}))
	var tc TraceCollector
	if _, err := s.Query("M1", WithTrace(&tc)); err == nil {
		t.Fatal("query succeeded despite injected build failure")
	}
	last := tc.Last()
	if last == nil {
		t.Fatal("failed query delivered no trace")
	}
	if tag := last.Snapshot().Tags["error"]; !strings.Contains(tag, "injected") {
		t.Fatalf("error tag = %q, want the injected failure", tag)
	}
	if q := s.Stats().Queries; q.Total != 1 || q.Errors != 1 {
		t.Fatalf("query stats = %+v, want 1 total, 1 error", q)
	}
}

// TestQueryBreakdowns: per-engine and per-class counters, parse failures, and
// the auto-engine fallback counter.
func TestQueryBreakdowns(t *testing.T) {
	s := resilienceStore(t, 2)
	if _, err := s.Query("(((M1"); err == nil {
		t.Fatal("malformed query parsed")
	}
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("M1 until M2", WithEngine(EngineDirect)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("M2", WithEngine(EngineReference)); err != nil {
		t.Fatal(err)
	}
	q := s.Stats().Queries
	if q.Total != 4 || q.Errors != 1 {
		t.Fatalf("totals = %+v, want 4 total, 1 error", q)
	}
	// The parse failure contributes no engine/class breakdown.
	wantEngine := map[string]int64{"auto": 1, "core": 1, "refeval": 1}
	for k, want := range wantEngine {
		if q.ByEngine[k] != want {
			t.Errorf("ByEngine[%s] = %d, want %d", k, q.ByEngine[k], want)
		}
	}
	var classTotal int64
	for _, v := range q.ByClass {
		classTotal += v
	}
	if classTotal != 3 {
		t.Errorf("ByClass sums to %d, want 3 (parse failure excluded): %v", classTotal, q.ByClass)
	}
	if q.Latency.Count != 4 {
		t.Errorf("latency count = %d, want 4", q.Latency.Count)
	}
}

// TestFallbackCounter: a general formula under the auto engine falls back to
// the reference evaluator and is counted.
func TestFallbackCounter(t *testing.T) {
	s := resilienceStore(t, 1)
	res, err := s.Query("not eventually M2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassGeneral {
		t.Fatalf("class = %v, want general", res.Class)
	}
	if got := s.Stats().Queries.Fallbacks; got != 1 {
		t.Fatalf("Fallbacks = %d, want 1", got)
	}
	if got := s.Stats().Engines.Reference.AtomicEvals; got == 0 {
		t.Fatal("reference engine did no atomic evaluations after fallback")
	}
}

// TestSQLStats: the SQL baseline reports per-statement counts, row totals and
// latencies.
func TestSQLStats(t *testing.T) {
	s := resilienceStore(t, 2)
	if _, err := s.Query("M1 until M2", WithEngine(EngineSQL)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats().SQL
	if st.Statements == 0 {
		t.Fatal("SQL engine recorded no statements")
	}
	if st.Rows == 0 {
		t.Fatal("SQL engine recorded no rows")
	}
	if st.StmtLatency.Count != st.Statements {
		t.Fatalf("statement latency count = %d, want %d", st.StmtLatency.Count, st.Statements)
	}
	if s.Stats().Queries.ByEngine["sqlgen"] != 1 {
		t.Fatalf("ByEngine = %v, want sqlgen: 1", s.Stats().Queries.ByEngine)
	}
}

// TestEngineWorkCounters: the direct engine's atomic-evaluation and merge
// counters move when it runs.
func TestEngineWorkCounters(t *testing.T) {
	s := resilienceStore(t, 2)
	if _, err := s.Query("M1 until M2", WithEngine(EngineDirect)); err != nil {
		t.Fatal(err)
	}
	e := s.Stats().Engines
	if e.Core.AtomicEvals == 0 || e.Core.MergeOps == 0 {
		t.Fatalf("core engine counters = %+v, want both non-zero", e.Core)
	}
	if e.Reference.AtomicEvals != 0 {
		t.Fatalf("reference engine counters moved without running: %+v", e.Reference)
	}
}

// TestSlowLogRecordsQueries: every query lands in the slow log with its full
// trace, slowest first.
func TestSlowLogRecordsQueries(t *testing.T) {
	s := resilienceStore(t, 2)
	for _, q := range []string{"M1", "M2", "M1 until M2"} {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	entries := s.SlowLog().Snapshot()
	if len(entries) != 3 {
		t.Fatalf("slow log entries = %d, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Trace.Name != e.Query {
			t.Fatalf("entry %d: trace name %q != query %q", i, e.Trace.Name, e.Query)
		}
		if i > 0 && entries[i-1].Duration < e.Duration {
			t.Fatal("slow log not ordered slowest-first")
		}
	}
}

// TestStoreTraceSink: a store-wide sink receives every query's trace, and
// removing it stops delivery.
func TestStoreTraceSink(t *testing.T) {
	s := resilienceStore(t, 1)
	var tc TraceCollector
	s.SetTraceSink(&tc)
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("M2"); err != nil {
		t.Fatal(err)
	}
	if got := len(tc.Traces()); got != 2 {
		t.Fatalf("sink received %d traces, want 2", got)
	}
	s.SetTraceSink(nil)
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	if got := len(tc.Traces()); got != 2 {
		t.Fatalf("sink received %d traces after removal, want 2", got)
	}
}

// TestDebugHandler: the /metrics and /debug/slowlog endpoints serve valid
// JSON reflecting the store's counters.
func TestDebugHandler(t *testing.T) {
	s := resilienceStore(t, 2)
	if _, err := s.Query("M1"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()

	var metrics struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
		Stats Stats `json:"stats"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Metrics.Counters["cache.misses"] != 2 {
		t.Fatalf("/metrics cache.misses = %d, want 2", metrics.Metrics.Counters["cache.misses"])
	}
	if metrics.Stats.Queries.Total != 1 {
		t.Fatalf("/metrics stats total = %d, want 1", metrics.Stats.Queries.Total)
	}

	var slow []SlowEntry
	getJSON(t, srv.URL+"/debug/slowlog", &slow)
	if len(slow) != 1 || slow[0].Query != "M1" {
		t.Fatalf("/debug/slowlog = %+v, want the one query", slow)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestStatsConcurrentWithQueries hammers queries, Stats, the slow log and the
// HTTP handler concurrently; meaningful under -race.
func TestStatsConcurrentWithQueries(t *testing.T) {
	s := resilienceStore(t, 4)
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	var tc TraceCollector
	s.SetTraceSink(&tc)
	queries := []string{"M1", "M2", "M1 until M2", "eventually M2"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Query(q, WithParallelism(2)); err != nil {
				t.Errorf("query %q: %v", q, err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Stats()
			_ = s.SlowLog().Snapshot()
			resp, err := srv.Client().Get(srv.URL + "/metrics")
			if err != nil {
				t.Errorf("GET /metrics: %v", err)
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if got := s.Stats().Queries.Total; got != 12 {
		t.Fatalf("query total = %d, want 12", got)
	}
	if got := len(tc.Traces()); got != 12 {
		t.Fatalf("sink received %d traces, want 12", got)
	}
}
