package htlvideo

// TestWriteBenchPerf is `make bench`'s caching companion: it runs the query
// compilation and caching benchmarks through testing.Benchmark and emits
// ns/op, B/op and allocs/op per benchmark — plus the warm-over-cold speedup
// for the repeated-query pair — to the JSON file named by BENCH_PERF_OUT
// (BENCH_perf.json under `make bench`). Without the env var the test skips,
// keeping plain `go test` runs quiet. The committed BENCH_perf.json is the
// reference point for the ≥5× warm-vs-cold acceptance bar.

import (
	"encoding/json"
	"os"
	"testing"
)

func TestWriteBenchPerf(t *testing.T) {
	out := os.Getenv("BENCH_PERF_OUT")
	if out == "" {
		t.Skip("BENCH_PERF_OUT not set; run via `make bench`")
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"CompileCold", BenchmarkCompileCold},
		{"PlanCacheHit", BenchmarkPlanCacheHit},
		{"RepeatedQueryCold", BenchmarkRepeatedQueryCold},
		{"RepeatedQueryWarm", BenchmarkRepeatedQueryWarm},
		{"RankedTopKColdFull", benchRankedTopKFull},
		{"RankedTopKColdPruned", benchRankedTopKPruned},
	}

	type result struct {
		NsPerOp     int64 `json:"ns_per_op"`
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	}
	report := struct {
		Query      string            `json:"query"`
		Benchmarks map[string]result `json:"benchmarks"`
		// WarmSpeedup = RepeatedQueryCold / RepeatedQueryWarm ns/op.
		WarmSpeedup float64 `json:"warm_speedup"`
		// TopKSpeedup = RankedTopKColdFull / RankedTopKColdPruned ns/op:
		// the threshold-style pruned scan against full materialization.
		TopKSpeedup float64 `json:"topk_speedup"`
	}{Query: "M1 until M2", Benchmarks: map[string]result{}}

	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", bench.name)
		}
		report.Benchmarks[bench.name] = result{
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}

	cold := report.Benchmarks["RepeatedQueryCold"].NsPerOp
	warm := report.Benchmarks["RepeatedQueryWarm"].NsPerOp
	if warm <= 0 {
		t.Fatal("warm benchmark reported non-positive ns/op")
	}
	report.WarmSpeedup = float64(cold) / float64(warm)
	if report.WarmSpeedup < 5 {
		t.Fatalf("warm repeated query only %.1fx faster than cold, want >= 5x", report.WarmSpeedup)
	}

	full := report.Benchmarks["RankedTopKColdFull"].NsPerOp
	pruned := report.Benchmarks["RankedTopKColdPruned"].NsPerOp
	if pruned <= 0 {
		t.Fatal("pruned top-k benchmark reported non-positive ns/op")
	}
	report.TopKSpeedup = float64(full) / float64(pruned)
	if report.TopKSpeedup <= 1 {
		t.Fatalf("pruned cold top-k is not faster than full materialization: %.2fx", report.TopKSpeedup)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (warm speedup %.1fx)", out, report.WarmSpeedup)
}
