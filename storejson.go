package htlvideo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"htlvideo/internal/metadata"
	"htlvideo/internal/wal"
)

// JSON persistence for video stores. The format is deliberately plain so
// that meta-data produced by external video-analysis tooling can be dropped
// in:
//
//	{
//	  "taxonomy": [{"child": "man", "parent": "person"}],
//	  "videos": [{
//	    "id": 1, "name": "clip", "levels": {"shot": 2},
//	    "segments": [{
//	      "attrs": {"genre": "western"},
//	      "objects": [{"id": 7, "type": "man", "certainty": 0.9,
//	                   "props": ["holds_gun"], "attrs": {"name": "John"}}],
//	      "rels": [{"name": "fires_at", "subject": 7, "object": 8}],
//	      "children": [ ...same shape, one level deeper... ]
//	    }]
//	  }]
//	}
//
// Attribute values are JSON strings or integers (floats with a fractional
// part are rejected: the HTL attribute algebra is over integers and
// strings, §3.3).

// StoreDoc is the serialized form of a store.
type StoreDoc struct {
	Taxonomy []TaxEdgeDoc `json:"taxonomy,omitempty"`
	Videos   []VideoDoc   `json:"videos"`
}

// TaxEdgeDoc is one subtype edge.
type TaxEdgeDoc struct {
	Child  string `json:"child"`
	Parent string `json:"parent"`
}

// VideoDoc is one serialized video.
type VideoDoc struct {
	ID       int            `json:"id"`
	Name     string         `json:"name"`
	Levels   map[string]int `json:"levels,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Segments []SegmentDoc   `json:"segments"`
}

// SegmentDoc is one serialized segment (children nest recursively).
type SegmentDoc struct {
	Attrs    map[string]any `json:"attrs,omitempty"`
	Objects  []ObjectDoc    `json:"objects,omitempty"`
	Rels     []RelDoc       `json:"rels,omitempty"`
	Children []SegmentDoc   `json:"children,omitempty"`
}

// ObjectDoc is one serialized object occurrence.
type ObjectDoc struct {
	ID        int64          `json:"id"`
	Type      string         `json:"type"`
	Certainty float64        `json:"certainty,omitempty"`
	Props     []string       `json:"props,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// RelDoc is one serialized relationship.
type RelDoc struct {
	Name    string `json:"name"`
	Subject int64  `json:"subject"`
	Object  int64  `json:"object"`
}

// LoadStore reads a JSON store document.
func LoadStore(r io.Reader) (*Store, error) {
	var doc StoreDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("htlvideo: decoding store: %w", err)
	}
	return doc.Build()
}

// LoadFile reads a JSON store document from a file.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadStore(f)
}

// SaveFile writes the store to path atomically and durably: the document
// goes to a temporary file in the same directory, is fsynced, replaces path
// with rename, and the directory itself is fsynced so the rename survives a
// crash (an unsynced rename lives only in the directory's page cache — the
// old file can reappear after power loss). A crash mid-save leaves the
// previous file intact, never a truncated document — the property both the
// serving layer's hot reload and the durable store's checkpoints depend on.
// Every failure path removes the temporary file and reports the original
// error.
func (s *Store) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("htlvideo: saving store: %w", err)
	}
	name := tmp.Name()
	// fail settles any failure path: close (unless already closed) and
	// remove the temp file, preserving the error that got us here.
	fail := func(err error) error {
		if tmp != nil {
			tmp.Close()
		}
		os.Remove(name)
		return fmt.Errorf("htlvideo: saving store: %w", err)
	}
	if err := s.Save(tmp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return fail(err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		return fail(err)
	}
	if err := wal.SyncDir(dir); err != nil {
		// The new contents are at path either way; only the rename's crash
		// durability is in doubt. Surface it — callers that checkpoint on
		// it must not trust the snapshot.
		return fmt.Errorf("htlvideo: saving store: %w", err)
	}
	return nil
}

// Validate checks document-level invariants before any store construction:
// video ids must be unique across the document and object ids unique within
// each segment. The same conditions are enforced again structurally when
// videos are added to the store; checking them here yields errors that name
// document coordinates (video ids, segment paths) instead of half-built
// state.
func (d StoreDoc) Validate() error {
	seen := make(map[int]bool, len(d.Videos))
	for _, vd := range d.Videos {
		if seen[vd.ID] {
			return fmt.Errorf("htlvideo: duplicate video id %d in store document", vd.ID)
		}
		seen[vd.ID] = true
		for i, sd := range vd.Segments {
			if err := validateSegmentDoc(sd, fmt.Sprintf("video %d: segment %d", vd.ID, i+1)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateSegmentDoc rejects duplicate object ids within one segment, then
// recurses; path names the segment in document coordinates.
func validateSegmentDoc(sd SegmentDoc, path string) error {
	seen := make(map[int64]bool, len(sd.Objects))
	for _, od := range sd.Objects {
		if seen[od.ID] {
			return fmt.Errorf("htlvideo: %s: duplicate object id %d", path, od.ID)
		}
		seen[od.ID] = true
	}
	for i, cd := range sd.Children {
		if err := validateSegmentDoc(cd, fmt.Sprintf("%s.%d", path, i+1)); err != nil {
			return err
		}
	}
	return nil
}

// Build constructs a store from the document.
func (d StoreDoc) Build() (*Store, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	tax := NewTaxonomy()
	for _, e := range d.Taxonomy {
		if err := tax.Add(e.Child, e.Parent); err != nil {
			return nil, err
		}
	}
	store := NewStore(tax, DefaultWeights())
	for _, vd := range d.Videos {
		v, err := videoFromDoc(vd)
		if err != nil {
			return nil, err
		}
		if err := store.Add(v); err != nil {
			return nil, fmt.Errorf("video %d: %w", vd.ID, err)
		}
	}
	return store, nil
}

// videoFromDoc reconstructs one video from its serialized form — the unit
// both whole-document loads and WAL add_video records replay through.
func videoFromDoc(vd VideoDoc) (*Video, error) {
	v := NewVideo(vd.ID, vd.Name, vd.Levels)
	var err error
	v.Root.Meta.Attrs, err = attrsFromDoc(vd.Attrs)
	if err != nil {
		return nil, fmt.Errorf("video %d: %w", vd.ID, err)
	}
	for _, sd := range vd.Segments {
		if err := addSegmentDoc(v.Root, sd); err != nil {
			return nil, fmt.Errorf("video %d: %w", vd.ID, err)
		}
	}
	return v, nil
}

// Save serializes the store (its taxonomy edges and videos) as JSON.
func (s *Store) Save(w io.Writer) error {
	doc := StoreDoc{}
	for _, e := range s.tax.Edges() {
		doc.Taxonomy = append(doc.Taxonomy, TaxEdgeDoc{Child: e[0], Parent: e[1]})
	}
	for _, v := range s.Videos() {
		doc.Videos = append(doc.Videos, videoToDoc(v))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// videoToDoc serializes one video — the unit WAL add_video records carry.
func videoToDoc(v *Video) VideoDoc {
	vd := VideoDoc{
		ID: v.ID, Name: v.Name, Levels: v.LevelNames,
		Attrs: attrsToDoc(v.Root.Meta.Attrs),
	}
	for _, c := range v.Root.Children {
		vd.Segments = append(vd.Segments, segmentToDoc(c))
	}
	return vd
}

func segmentToDoc(n *Node) SegmentDoc {
	sd := SegmentDoc{
		Attrs: attrsToDoc(n.Meta.Attrs),
	}
	for _, o := range n.Meta.Objects {
		od := ObjectDoc{
			ID: int64(o.ID), Type: o.Type, Certainty: o.Certainty,
			Attrs: attrsToDoc(o.Attrs),
		}
		for p := range o.Props {
			od.Props = append(od.Props, p)
		}
		sort.Strings(od.Props)
		sd.Objects = append(sd.Objects, od)
	}
	for _, r := range n.Meta.Rels {
		sd.Rels = append(sd.Rels, RelDoc{Name: r.Name, Subject: int64(r.Subject), Object: int64(r.Object)})
	}
	for _, c := range n.Children {
		sd.Children = append(sd.Children, segmentToDoc(c))
	}
	return sd
}

func addSegmentDoc(parent *Node, sd SegmentDoc) error {
	meta := SegmentMeta{}
	var err error
	meta.Attrs, err = attrsFromDoc(sd.Attrs)
	if err != nil {
		return err
	}
	for _, od := range sd.Objects {
		cert := od.Certainty
		if cert == 0 {
			cert = 1
		}
		obj := Object{ID: ObjectID(od.ID), Type: od.Type, Certainty: cert}
		if len(od.Props) > 0 {
			obj.Props = map[string]bool{}
			for _, p := range od.Props {
				obj.Props[p] = true
			}
		}
		obj.Attrs, err = attrsFromDoc(od.Attrs)
		if err != nil {
			return fmt.Errorf("object %d: %w", od.ID, err)
		}
		meta.Objects = append(meta.Objects, obj)
	}
	for _, rd := range sd.Rels {
		meta.Rels = append(meta.Rels, Relationship{
			Name: rd.Name, Subject: ObjectID(rd.Subject), Object: ObjectID(rd.Object),
		})
	}
	node := parent.AppendChild(meta)
	for _, cd := range sd.Children {
		if err := addSegmentDoc(node, cd); err != nil {
			return err
		}
	}
	return nil
}

func attrsFromDoc(raw map[string]any) (map[string]Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make(map[string]Value, len(raw))
	for name, rv := range raw {
		switch x := rv.(type) {
		case string:
			out[name] = Str(x)
		case float64:
			if x != float64(int64(x)) {
				return nil, fmt.Errorf("attribute %q: non-integer numeric value %v", name, x)
			}
			out[name] = Int(int64(x))
		case json.Number:
			i, err := x.Int64()
			if err != nil {
				return nil, fmt.Errorf("attribute %q: %w", name, err)
			}
			out[name] = Int(i)
		default:
			return nil, fmt.Errorf("attribute %q: unsupported value type %T", name, rv)
		}
	}
	return out, nil
}

func attrsToDoc(attrs map[string]Value) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for name, v := range attrs {
		if v.Kind == metadata.StrValue {
			out[name] = v.Str
		} else {
			out[name] = v.Int
		}
	}
	return out
}
