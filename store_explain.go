package htlvideo

// EXPLAIN ANALYZE: ExplainCtx evaluates a query for real (caches bypassed)
// with a per-plan-node profile attached and returns the annotated plan tree —
// where inside the formula the time, rows, similarity-list entries, memo hits
// and (SQL engine) statements went. This is the paper's §3 per-class cost
// story made inspectable on a live store: each operator's contribution is
// visible instead of folded into one whole-query span.

import (
	"context"
	"fmt"
	"io"
	"time"

	"htlvideo/internal/core"
	"htlvideo/internal/obs"
)

// ExplainResult is a profiled query evaluation: the compiled plan annotated
// with per-node execution statistics, plus the query-level identifiers that
// join it to traces, the slow log, and the metrics registry.
type ExplainResult struct {
	// Query is the submitted text; PlanKey the canonical text under which
	// the plan cache (and the slow log's plan_key) indexes it.
	Query   string `json:"query"`
	PlanKey string `json:"plan_key"`
	// TraceID joins this evaluation to its trace in the slow log and sinks.
	TraceID string `json:"trace_id"`
	// Class is the formula's class in the metrics vocabulary (type1, type2,
	// conjunctive, extended, general) — the split the paper's §3 complexity
	// analysis is organized around. Engine is the requested engine key.
	Class  string `json:"class"`
	Engine string `json:"engine"`
	Level  int    `json:"level"`
	// Exact reports exact-attribution mode (WithExactProfile).
	Exact bool `json:"exact"`
	// Nodes is the plan DAG's size; Videos the number of videos evaluated.
	Nodes  int `json:"nodes"`
	Videos int `json:"videos"`
	// EvalTime is the eval stage's span duration (all videos, wall time);
	// TotalTime the whole query including parse and merge. Per-node times in
	// Plan sum to at most EvalTime times the worker parallelism.
	EvalTime  time.Duration `json:"eval_time_ns"`
	TotalTime time.Duration `json:"total_time_ns"`
	// Plan is the annotated plan tree (shared subformulas appear under each
	// parent, flagged Shared, stats counted once).
	Plan *obs.ExplainNode `json:"plan"`
	// Results is the evaluation's full result set.
	Results *Results `json:"-"`
}

// MemoHits sums memo hits over the plan (each shared node once) — the number
// reflected into the query.plan.memo_hits counter.
func (r *ExplainResult) MemoHits() int64 { return r.Plan.MemoHitTotal() }

// Render writes the result as text: a header of query-level facts, then the
// annotated tree. showTimes=false blanks durations (stable golden output).
func (r *ExplainResult) Render(w io.Writer, showTimes bool) {
	fmt.Fprintf(w, "query: %s\n", r.Query)
	fmt.Fprintf(w, "class: %s  engine: %s  level: %d  plan nodes: %d  videos: %d\n",
		r.Class, r.Engine, r.Level, r.Nodes, r.Videos)
	if showTimes {
		fmt.Fprintf(w, "eval: %s  total: %s  trace: %s\n",
			r.EvalTime.Round(time.Microsecond), r.TotalTime.Round(time.Microsecond), r.TraceID)
	}
	obs.RenderTree(w, r.Plan, r.EvalTime, showTimes)
}

// Explain evaluates a query with per-plan-node profiling and returns the
// annotated plan (see ExplainCtx).
func (s *Store) Explain(query string, opts ...QueryOption) (*ExplainResult, error) {
	return s.ExplainCtx(context.Background(), query, opts...)
}

// ExplainCtx parses (through the plan cache), evaluates, and profiles a
// query. The result cache is bypassed — explain output describes a real
// evaluation, never a cached one — but the evaluation is otherwise the normal
// query path: same engines, same worker pool, same metrics and slow-log
// accounting. Always-on profiling attributes counts everywhere and inclusive
// wall time in the similarity-list and SQL engines; add WithExactProfile for
// per-visit timing in the reference evaluator.
func (s *Store) ExplainCtx(ctx context.Context, query string, opts ...QueryOption) (*ExplainResult, error) {
	cfg := newQueryConfig(opts)
	tr := obs.NewTrace(query)
	sp := tr.StartSpan("parse")
	cq, hit, err := s.compile(query, false)
	if hit {
		sp.SetTag("plan_cache", "hit")
	} else {
		sp.SetTag("plan_cache", "miss")
	}
	sp.End()
	if err != nil {
		s.obs.endQuery(tr, "", "", err, nil, nil)
		return nil, err
	}
	prof := core.NewPlanProfile(cq.plan, cfg.exactProf)
	cfg.prof = prof
	cfg.noCache = true // a cached result has no execution to attribute
	res, err := s.queryCompiledCtx(ctx, tr, cq, cfg)
	if err != nil {
		return nil, err
	}
	snap := tr.Snapshot()
	out := &ExplainResult{
		Query:     query,
		PlanKey:   cq.plan.Key,
		TraceID:   snap.ID,
		Class:     classKey(cq.class),
		Engine:    engineKey(cfg.engine),
		Level:     cfg.level,
		Exact:     cfg.exactProf,
		Nodes:     cq.plan.Nodes,
		Videos:    len(res.PerVideo),
		TotalTime: snap.Duration,
		Plan:      prof.Tree(),
		Results:   res,
	}
	for _, stage := range snap.Spans {
		if stage.Name == "eval" {
			out.EvalTime = stage.Duration
		}
	}
	return out, nil
}
