package htlvideo

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"htlvideo/internal/ring"
)

// splitFixtureDoc builds a document with n videos carrying distinguishable
// payloads, so the round-trip test can check content survived, not just ids.
func splitFixtureDoc(n int) StoreDoc {
	doc := StoreDoc{Taxonomy: []TaxEdgeDoc{
		{Child: "man", Parent: "person"},
		{Child: "woman", Parent: "person"},
	}}
	for id := 1; id <= n; id++ {
		doc.Videos = append(doc.Videos, VideoDoc{
			ID: id, Name: fmt.Sprintf("clip-%d", id),
			Levels: map[string]int{"shot": 2},
			Segments: []SegmentDoc{
				{Objects: []ObjectDoc{{ID: int64(id), Type: "man", Props: []string{"holds_gun"}}}},
				{Attrs: map[string]any{"idx": fmt.Sprintf("seg-%d", id)}},
			},
		})
	}
	return doc
}

func TestSplitDocRoundTrip(t *testing.T) {
	const videos = 40
	doc := splitFixtureDoc(videos)
	for _, n := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			shards, err := SplitDoc(doc, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(shards) != n {
				t.Fatalf("got %d shard docs, want %d", len(shards), n)
			}
			// Union of shard docs == original: every video appears exactly
			// once, with identical content, and every shard carries the full
			// taxonomy.
			seen := map[int]VideoDoc{}
			for i, sd := range shards {
				if !reflect.DeepEqual(sd.Taxonomy, doc.Taxonomy) {
					t.Errorf("shard %d: taxonomy not replicated: %+v", i, sd.Taxonomy)
				}
				for _, vd := range sd.Videos {
					if _, dup := seen[vd.ID]; dup {
						t.Fatalf("video id %d appears in more than one shard", vd.ID)
					}
					seen[vd.ID] = vd
				}
			}
			if len(seen) != videos {
				t.Fatalf("union holds %d videos, want %d", len(seen), videos)
			}
			for _, want := range doc.Videos {
				if got := seen[want.ID]; !reflect.DeepEqual(got, want) {
					t.Errorf("video %d changed across split:\n got %+v\nwant %+v", want.ID, got, want)
				}
			}
			// Each shard document must itself validate and build.
			for i, sd := range shards {
				if _, err := sd.Build(); err != nil {
					t.Errorf("shard %d does not build: %v", i, err)
				}
			}
		})
	}
}

func TestSplitDocAgreesWithRing(t *testing.T) {
	// The partitioner and a coordinator ring over the same member names must
	// agree on ownership — that is the whole contract.
	const n = 3
	shards, err := SplitDoc(splitFixtureDoc(30), n)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.New(ring.MemberNames(n), 0)
	for i, sd := range shards {
		want := fmt.Sprintf("shard-%d", i)
		for _, vd := range sd.Videos {
			if owner := r.OwnerOfVideo(vd.ID); owner != want {
				t.Errorf("video %d placed in %s but ring says %s", vd.ID, want, owner)
			}
		}
	}
}

func TestSplitDocDeterministic(t *testing.T) {
	doc := splitFixtureDoc(25)
	a, err := SplitDoc(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitDoc(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SplitDoc is not deterministic across calls")
	}
}

func TestSplitDocErrors(t *testing.T) {
	if _, err := SplitDoc(splitFixtureDoc(3), 0); err == nil {
		t.Error("n=0: expected error")
	}
	dup := StoreDoc{Videos: []VideoDoc{
		{ID: 1, Segments: []SegmentDoc{{}}},
		{ID: 1, Segments: []SegmentDoc{{}}},
	}}
	if _, err := SplitDoc(dup, 2); err == nil || !strings.Contains(err.Error(), "duplicate video id") {
		t.Errorf("duplicate ids: err = %v, want duplicate-video error", err)
	}
}
