// Package interval provides closed integer intervals over video-segment ids
// and small algebraic operations on them.
//
// Throughout the system a video is a temporally ordered sequence of video
// segments numbered 1, 2, 3, ... (paper §3.1). Similarity lists store runs of
// consecutive segment ids as closed intervals [Beg, End].
package interval

import (
	"fmt"
)

// I is a closed integer interval [Beg, End] of video-segment ids.
// An interval is valid when Beg <= End. The zero value is the valid
// single-point interval [0, 0], although segment ids in stores are 1-based.
type I struct {
	Beg int
	End int
}

// New returns the interval [beg, end]. It panics if beg > end; callers that
// construct intervals from untrusted input should use TryNew.
func New(beg, end int) I {
	iv, err := TryNew(beg, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// TryNew returns the interval [beg, end], or an error if beg > end.
func TryNew(beg, end int) (I, error) {
	if beg > end {
		return I{}, fmt.Errorf("interval: beg %d > end %d", beg, end)
	}
	return I{Beg: beg, End: end}, nil
}

// Point returns the single-id interval [id, id].
func Point(id int) I { return I{Beg: id, End: id} }

// Len returns the number of ids covered by v.
func (v I) Len() int { return v.End - v.Beg + 1 }

// Valid reports whether v.Beg <= v.End.
func (v I) Valid() bool { return v.Beg <= v.End }

// Contains reports whether id lies in v.
func (v I) Contains(id int) bool { return v.Beg <= id && id <= v.End }

// Intersects reports whether v and w share at least one id.
func (v I) Intersects(w I) bool { return v.Beg <= w.End && w.Beg <= v.End }

// Intersect returns the common part of v and w. ok is false when they are
// disjoint, in which case the returned interval is the zero value.
func (v I) Intersect(w I) (r I, ok bool) {
	beg := max(v.Beg, w.Beg)
	end := min(v.End, w.End)
	if beg > end {
		return I{}, false
	}
	return I{Beg: beg, End: end}, true
}

// Adjacent reports whether w begins immediately after v ends.
func (v I) Adjacent(w I) bool { return v.End+1 == w.Beg }

// Shift returns v translated by delta (negative delta moves it earlier).
func (v I) Shift(delta int) I { return I{Beg: v.Beg + delta, End: v.End + delta} }

// ClampLow returns the part of v at or above lo. ok is false if no id of v
// is >= lo.
func (v I) ClampLow(lo int) (I, bool) {
	if v.End < lo {
		return I{}, false
	}
	if v.Beg < lo {
		v.Beg = lo
	}
	return v, true
}

// ClampHigh returns the part of v at or below hi. ok is false if no id of v
// is <= hi.
func (v I) ClampHigh(hi int) (I, bool) {
	if v.Beg > hi {
		return I{}, false
	}
	if v.End > hi {
		v.End = hi
	}
	return v, true
}

// String renders v in the paper's "[beg end]" notation.
func (v I) String() string { return fmt.Sprintf("[%d %d]", v.Beg, v.End) }

// Disjoint reports whether the intervals in ivs (which must be sorted by Beg)
// are pairwise disjoint.
func Disjoint(ivs []I) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Beg <= ivs[i-1].End {
			return false
		}
	}
	return true
}

// Sorted reports whether ivs is sorted by Beg (ties allowed).
func Sorted(ivs []I) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Beg < ivs[i-1].Beg {
			return false
		}
	}
	return true
}

// Coalesce merges adjacent or overlapping intervals of a Beg-sorted slice and
// returns a minimal sorted disjoint cover of the same id set. The input slice
// is not modified.
func Coalesce(ivs []I) []I {
	if len(ivs) == 0 {
		return nil
	}
	out := make([]I, 0, len(ivs))
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.Beg <= cur.End+1 {
			if iv.End > cur.End {
				cur.End = iv.End
			}
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	return append(out, cur)
}

// CoverLen returns the total number of ids covered by a sorted disjoint slice.
func CoverLen(ivs []I) int {
	n := 0
	for _, iv := range ivs {
		n += iv.Len()
	}
	return n
}
