package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndTryNew(t *testing.T) {
	iv := New(3, 7)
	if iv.Beg != 3 || iv.End != 7 {
		t.Fatalf("New(3,7) = %v", iv)
	}
	if _, err := TryNew(7, 3); err == nil {
		t.Fatal("TryNew(7,3) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New(7,3) should panic")
		}
	}()
	New(7, 3)
}

func TestPointAndLen(t *testing.T) {
	p := Point(5)
	if p.Beg != 5 || p.End != 5 || p.Len() != 1 {
		t.Fatalf("Point(5) = %v len %d", p, p.Len())
	}
	if got := New(10, 24).Len(); got != 15 {
		t.Fatalf("Len = %d, want 15", got)
	}
}

func TestContains(t *testing.T) {
	iv := New(10, 20)
	for _, tc := range []struct {
		id   int
		want bool
	}{{9, false}, {10, true}, {15, true}, {20, true}, {21, false}} {
		if got := iv.Contains(tc.id); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.id, got, tc.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	for _, tc := range []struct {
		a, b I
		want bool
	}{
		{New(1, 5), New(5, 9), true},
		{New(1, 5), New(6, 9), false},
		{New(1, 9), New(3, 4), true},
		{New(3, 4), New(1, 9), true},
		{Point(7), Point(7), true},
		{Point(7), Point(8), false},
	} {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("Intersects not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestIntersect(t *testing.T) {
	r, ok := New(25, 100).Intersect(New(90, 110))
	if !ok || r != New(90, 100) {
		t.Fatalf("Intersect = %v, %v", r, ok)
	}
	if _, ok := New(1, 2).Intersect(New(3, 4)); ok {
		t.Fatal("disjoint intervals should not intersect")
	}
}

func TestAdjacent(t *testing.T) {
	if !New(1, 5).Adjacent(New(6, 9)) {
		t.Fatal("[1,5] should be adjacent to [6,9]")
	}
	if New(1, 5).Adjacent(New(7, 9)) {
		t.Fatal("[1,5] should not be adjacent to [7,9]")
	}
	if New(1, 5).Adjacent(New(5, 9)) {
		t.Fatal("overlap is not adjacency")
	}
}

func TestShift(t *testing.T) {
	if got := New(10, 50).Shift(-1); got != New(9, 49) {
		t.Fatalf("Shift(-1) = %v", got)
	}
}

func TestClampLow(t *testing.T) {
	if r, ok := New(5, 10).ClampLow(7); !ok || r != New(7, 10) {
		t.Fatalf("ClampLow = %v %v", r, ok)
	}
	if r, ok := New(5, 10).ClampLow(3); !ok || r != New(5, 10) {
		t.Fatalf("ClampLow below = %v %v", r, ok)
	}
	if _, ok := New(5, 10).ClampLow(11); ok {
		t.Fatal("ClampLow past end should fail")
	}
}

func TestClampHigh(t *testing.T) {
	if r, ok := New(5, 10).ClampHigh(7); !ok || r != New(5, 7) {
		t.Fatalf("ClampHigh = %v %v", r, ok)
	}
	if _, ok := New(5, 10).ClampHigh(4); ok {
		t.Fatal("ClampHigh before beg should fail")
	}
}

func TestCoalesce(t *testing.T) {
	got := Coalesce([]I{New(1, 3), New(4, 6), New(8, 9), New(8, 12), New(20, 20)})
	want := []I{New(1, 6), New(8, 12), New(20, 20)}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce = %v, want %v", got, want)
		}
	}
	if Coalesce(nil) != nil {
		t.Fatal("Coalesce(nil) should be nil")
	}
}

func TestSortedDisjoint(t *testing.T) {
	ivs := []I{New(1, 3), New(5, 7)}
	if !Sorted(ivs) || !Disjoint(ivs) {
		t.Fatal("sorted disjoint slice misreported")
	}
	if Disjoint([]I{New(1, 5), New(5, 7)}) {
		t.Fatal("overlapping slice reported disjoint")
	}
	if Sorted([]I{New(5, 7), New(1, 3)}) {
		t.Fatal("unsorted slice reported sorted")
	}
}

func TestCoverLen(t *testing.T) {
	if got := CoverLen([]I{New(1, 3), New(10, 10)}); got != 4 {
		t.Fatalf("CoverLen = %d, want 4", got)
	}
}

// Property: Coalesce preserves the covered id set and yields a sorted,
// disjoint, non-adjacent slice.
func TestCoalesceProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		ivs := make([]I, k)
		covered := map[int]bool{}
		base := 0
		for i := range ivs {
			base += rng.Intn(4) // keep Beg-sorted
			ln := rng.Intn(5)
			ivs[i] = I{Beg: base, End: base + ln}
			for id := base; id <= base+ln; id++ {
				covered[id] = true
			}
		}
		out := Coalesce(ivs)
		if !Sorted(out) || !Disjoint(out) {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i-1].Adjacent(out[i]) {
				return false // should have merged
			}
		}
		got := map[int]bool{}
		for _, iv := range out {
			for id := iv.Beg; id <= iv.End; id++ {
				got[id] = true
			}
		}
		if len(got) != len(covered) {
			return false
		}
		for id := range covered {
			if !got[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect agrees with per-id membership.
func TestIntersectProperty(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		lo1, hi1 := int(min(a, b)), int(max(a, b))
		lo2, hi2 := int(min(c, d)), int(max(c, d))
		v, w := I{lo1, hi1}, I{lo2, hi2}
		r, ok := v.Intersect(w)
		for id := -130; id <= 130; id++ {
			in := v.Contains(id) && w.Contains(id)
			if in != (ok && r.Contains(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
