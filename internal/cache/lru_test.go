package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLRUBasics(t *testing.T) {
	c := New[string, int](2, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// a was just used, so adding c must evict b.
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLRUReplaceAndRemove(t *testing.T) {
	c := New[string, int](4, 0)
	c.Add("a", 1)
	c.Add("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replaced value = %d, want 10", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", c.Len())
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("removed key still present")
	}
	c.Add("b", 2)
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d, want 0", c.Len())
	}
}

func TestLRUTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	c := New[string, int](4, time.Minute)
	c.SetClock(func() time.Time { return now })
	var evicted []string
	c.SetOnEvict(func(k string, _ int) { evicted = append(evicted, k) })
	c.Add("a", 1)
	now = now.Add(30 * time.Second)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(31 * time.Second)
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("eviction callback saw %v, want [a]", evicted)
	}
}

func TestLRUEvictionCallbackOnCapacity(t *testing.T) {
	c := New[int, string](2, 0)
	var evicted []int
	c.SetOnEvict(func(k int, _ string) { evicted = append(evicted, k) })
	c.Add(1, "x")
	c.Add(2, "y")
	c.Add(3, "z")
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted %v, want [1]", evicted)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := New[int, int](64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(i%100, g*1000+i)
				c.Get((i + g) % 100)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 64 {
		t.Fatalf("Len = %d exceeds capacity", n)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := New[string, int](0, 0)
	c.Add("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("capacity clamps to 1; single entry should fit")
	}
	c.Add("b", 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func BenchmarkLRUGetHit(b *testing.B) {
	c := New[string, int](256, 0)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		c.Add(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}

func BenchmarkLRUAddEvict(b *testing.B) {
	c := New[int, int](128, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(i, i)
	}
}
