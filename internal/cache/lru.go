// Package cache provides a small, typed LRU cache with optional TTL
// expiry — the building block behind the store's plan cache and result
// cache. It is generic, so cached values are never boxed through `any`,
// and hand-rolls its doubly-linked recency list instead of using
// container/list (whose Element.Value is an interface and would allocate
// per node on every insert).
package cache

import (
	"sync"
	"time"
)

// entry is one cache slot, threaded on the recency list (head = most
// recently used).
type entry[K comparable, V any] struct {
	key        K
	val        V
	expires    time.Time // zero when the cache has no TTL
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache with optional TTL.
// All methods are safe for concurrent use.
type LRU[K comparable, V any] struct {
	mu         sync.Mutex
	capacity   int
	ttl        time.Duration
	now        func() time.Time
	items      map[K]*entry[K, V]
	head, tail *entry[K, V]
	onEvict    func(K, V)
}

// New builds an LRU holding at most capacity entries (capacity < 1 is
// treated as 1). ttl == 0 disables expiry.
func New[K comparable, V any](capacity int, ttl time.Duration) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{
		capacity: capacity,
		ttl:      ttl,
		now:      time.Now,
		items:    make(map[K]*entry[K, V], capacity),
	}
}

// SetClock injects the time source (tests).
func (c *LRU[K, V]) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// SetOnEvict installs a callback invoked (outside any promotion, but under
// the cache lock) whenever an entry leaves the cache by capacity eviction
// or TTL expiry — not by Remove or Purge.
func (c *LRU[K, V]) SetOnEvict(fn func(K, V)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Get returns the live value for key and marks it most recently used.
// Expired entries are evicted and report a miss.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	if c.expired(e) {
		c.evict(e)
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Add inserts or replaces key's value, marks it most recently used, and
// evicts the least recently used entry when over capacity.
func (c *LRU[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if e, ok := c.items[key]; ok {
		e.val, e.expires = val, expires
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, val: val, expires: expires}
	c.items[key] = e
	c.pushFront(e)
	for len(c.items) > c.capacity {
		c.evict(c.tail)
	}
}

// Remove deletes key if present (no eviction callback).
func (c *LRU[K, V]) Remove(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.unlink(e)
		delete(c.items, key)
	}
}

// Purge empties the cache (no eviction callbacks).
func (c *LRU[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.items)
	c.head, c.tail = nil, nil
}

// Len returns the current number of entries, including any not yet
// observed to be expired.
func (c *LRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *LRU[K, V]) expired(e *entry[K, V]) bool {
	return !e.expires.IsZero() && c.now().After(e.expires)
}

func (c *LRU[K, V]) evict(e *entry[K, V]) {
	c.unlink(e)
	delete(c.items, e.key)
	if c.onEvict != nil {
		c.onEvict(e.key, e.val)
	}
}

func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRU[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
