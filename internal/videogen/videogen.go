// Package videogen synthesizes video frame streams for the analyzer
// pipeline. The paper's §4.1 digitized a real 30-minute video and
// cut-detected it into shots; lacking the footage, this package renders the
// closest synthetic equivalent that exercises the same code path: each
// scripted shot produces frames with a characteristic color-histogram
// signature (plus noise), so shot boundaries appear as histogram
// discontinuities for the cut detector, and each frame carries the
// ground-truth object occurrences the video analyzer extracts.
package videogen

import (
	"math/rand"

	"htlvideo/internal/metadata"
	"htlvideo/internal/track"
)

// HistBins is the number of color-histogram bins per frame signature.
const HistBins = 16

// Frame is one synthetic frame: its signature and its visible content.
type Frame struct {
	Hist    [HistBins]float64
	Objects []metadata.Object
	Rels    []metadata.Relationship
	Attrs   map[string]metadata.Value
}

// ShotSpec scripts one shot of the synthetic video.
type ShotSpec struct {
	// Frames is the shot duration in frames (>= 1).
	Frames int
	// Palette selects the shot's dominant colors; consecutive shots with
	// different palettes produce a detectable cut.
	Palette int
	// Objects, Rels and Attrs are the ground-truth content, copied onto
	// every frame of the shot.
	Objects []metadata.Object
	Rels    []metadata.Relationship
	Attrs   map[string]metadata.Value
}

// Render produces the frame stream of the scripted shots. noise controls
// per-frame histogram jitter (0 disables it); the same seed reproduces the
// same stream.
func Render(specs []ShotSpec, noise float64, seed int64) []Frame {
	rng := rand.New(rand.NewSource(seed))
	var out []Frame
	for _, s := range specs {
		base := paletteHist(s.Palette)
		n := s.Frames
		if n < 1 {
			n = 1
		}
		for f := 0; f < n; f++ {
			fr := Frame{Objects: s.Objects, Rels: s.Rels, Attrs: s.Attrs}
			sum := 0.0
			for b := 0; b < HistBins; b++ {
				v := base[b] + noise*rng.Float64()
				if v < 0 {
					v = 0
				}
				fr.Hist[b] = v
				sum += v
			}
			for b := 0; b < HistBins; b++ {
				fr.Hist[b] /= sum
			}
			out = append(out, fr)
		}
	}
	return out
}

// CutPoints returns the ground-truth shot boundaries: the index of the first
// frame of every shot after the first.
func CutPoints(specs []ShotSpec) []int {
	var out []int
	pos := 0
	for i, s := range specs {
		n := s.Frames
		if n < 1 {
			n = 1
		}
		if i > 0 {
			out = append(out, pos)
		}
		pos += n
	}
	return out
}

// Anonymize strips the ground-truth object ids from a rendered frame
// stream, producing the anonymous detections an object detector would emit:
// each object becomes a feature vector derived from its identity (so the
// same object looks similar across frames) plus per-frame noise. Feed the
// result to internal/track to re-assign stable ids — the §2.2 tracking
// assumption exercised end to end.
func Anonymize(frames []Frame, featureNoise float64, seed int64) [][]track.Detection {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]track.Detection, len(frames))
	for fi, fr := range frames {
		dets := make([]track.Detection, 0, len(fr.Objects))
		for _, o := range fr.Objects {
			dets = append(dets, track.Detection{
				Feature:   appearance(o.ID, featureNoise, rng),
				Type:      o.Type,
				Certainty: o.Certainty,
				Attrs:     o.Attrs,
				Props:     o.Props,
			})
		}
		out[fi] = dets
	}
	return out
}

// appearanceDim is the synthetic feature dimensionality.
const appearanceDim = 8

// appearance derives a deterministic unit-scale feature vector from an
// object identity, jittered by noise.
func appearance(id metadata.ObjectID, noise float64, rng *rand.Rand) []float64 {
	base := rand.New(rand.NewSource(int64(id)*104729 + 7))
	v := make([]float64, appearanceDim)
	for i := range v {
		v[i] = base.Float64() + noise*(rng.Float64()-0.5)
	}
	return v
}

// paletteHist derives a deterministic histogram shape from a palette id:
// probability mass concentrated on a few bins chosen by the id.
func paletteHist(palette int) [HistBins]float64 {
	var h [HistBins]float64
	rng := rand.New(rand.NewSource(int64(palette)*7919 + 13))
	// Three dominant bins with most of the mass.
	for i := 0; i < 3; i++ {
		h[rng.Intn(HistBins)] += 0.25
	}
	for b := 0; b < HistBins; b++ {
		h[b] += 0.25 / HistBins
	}
	return h
}
