package videogen

import (
	"math"
	"testing"

	"htlvideo/internal/metadata"
	"htlvideo/internal/segment"
)

func TestRenderDeterministicAndNormalized(t *testing.T) {
	specs := []ShotSpec{
		{Frames: 5, Palette: 1},
		{Frames: 3, Palette: 2, Objects: []metadata.Object{{ID: 1, Type: "man", Certainty: 1}}},
	}
	a := Render(specs, 0.02, 9)
	b := Render(specs, 0.02, 9)
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("frames: %d", len(a))
	}
	for i := range a {
		if a[i].Hist != b[i].Hist {
			t.Fatal("same seed should reproduce")
		}
		sum := 0.0
		for _, v := range a[i].Hist {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("frame %d histogram sums to %g", i, sum)
		}
	}
	if a[5].Objects == nil || a[5].Objects[0].ID != 1 {
		t.Fatal("shot content not copied onto frames")
	}
	if a[0].Objects != nil {
		t.Fatal("first shot should be empty")
	}
}

func TestRenderZeroFramesClampsToOne(t *testing.T) {
	frames := Render([]ShotSpec{{Frames: 0, Palette: 1}}, 0, 1)
	if len(frames) != 1 {
		t.Fatalf("frames: %d", len(frames))
	}
}

func TestCutPoints(t *testing.T) {
	specs := []ShotSpec{{Frames: 4}, {Frames: 2}, {Frames: 3}}
	got := CutPoints(specs)
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Fatalf("cuts: %v", got)
	}
	if CutPoints(specs[:1]) != nil {
		t.Fatal("single shot has no cuts")
	}
}

func TestPalettesSeparateUnderDetector(t *testing.T) {
	// Adjacent different palettes must exceed the same-palette noise floor
	// by a comfortable margin for every pair the examples use.
	for a := 1; a <= 6; a++ {
		for b := a + 1; b <= 6; b++ {
			ha, hb := paletteHist(a), paletteHist(b)
			if d := segment.HistDiff(ha[:], hb[:]); d < 0.4 {
				t.Errorf("palettes %d and %d are only %g apart", a, b, d)
			}
		}
	}
}
