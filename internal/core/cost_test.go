package core

import (
	"reflect"
	"testing"
	"time"

	"htlvideo/internal/simlist"
)

// costSrc is a two-atom source with non-trivial lists for A and B.
func costSrc() stubSource {
	return stubSource{
		n:   10,
		max: map[string]float64{"A": 4, "B": 6},
		tables: map[string]*simlist.Table{
			"A": closedTable(4, entry(1, 3, 2), entry(5, 6, 4)),
			"B": closedTable(6, entry(2, 4, 3), entry(6, 8, 6)),
		},
	}
}

// tablesEqual compares the parts of a similarity table that downstream
// consumers read: row contents, maximum similarity, and column names looked
// up by name.
func tablesEqual(a, b *simlist.Table) bool {
	if a.MaxSim != b.MaxSim || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

// The until gate-first order (the statically-installed default) must be
// byte-identical to the syntactic order: same rows, same maximum.
func TestUntilGateFirstByteIdentity(t *testing.T) {
	src := costSrc()
	opts := DefaultOptions()
	f := mustParse(t, "A until B")

	p := CompilePlan(f)
	if !p.phys.Load().gateFirst[p.Root.ID] {
		t.Fatal("until not gate-first by default")
	}
	e := newPlanEval(src, opts)
	e.phys = p.phys.Load()
	got, err := e.eval(t.Context(), p.Root)
	if err != nil {
		t.Fatal(err)
	}

	// Syntactic order: a physical plan with no gate-first choices.
	p2 := CompilePlan(f)
	p2.phys.Store(&physPlan{gateFirst: make([]bool, len(p2.nodes)), est: make([]NodeCost, len(p2.nodes))})
	e2 := newPlanEval(src, opts)
	e2.phys = p2.phys.Load()
	want, err := e2.eval(t.Context(), p2.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(got, want) {
		t.Fatalf("gate-first result diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

// An empty until gate short-circuits the left subtree; the short-circuit's
// table must equal the one the full combine would have produced, and the
// profile must account the skipped subtree as skipped, not unvisited.
func TestUntilEmptyGateSkip(t *testing.T) {
	src := costSrc()
	delete(src.tables, "B") // stub yields a zero-row table for B
	opts := DefaultOptions()
	f := mustParse(t, "A until B")

	ta, err := EvalTable(src, mustParse(t, "A"), opts)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := EvalTable(src, mustParse(t, "B"), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := CombineTables(ta, tb, func(l1, l2 simlist.List) simlist.List {
		return UntilLists(l1, l2, opts.UntilThreshold)
	}, tb.MaxSim)

	p := CompilePlan(f)
	prof := NewPlanProfile(p, false)
	opts.Prof = prof
	e := newPlanEval(src, opts)
	e.phys = p.phys.Load()
	got, err := e.eval(t.Context(), p.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(got, want) {
		t.Fatalf("skip result diverges from full combine:\ngot  %+v\nwant %+v", got, want)
	}
	left := p.Root.Kids[0]
	if st := prof.Stats(left); st.Visits != 0 || st.Skipped != 1 {
		t.Fatalf("left subtree stats = %+v, want skipped=1 visits=0", st)
	}
}

// An empty AndMin conjunct short-circuits its sibling with a table equal to
// the full combine's; AndSum must keep evaluating both sides.
func TestAndEmptySideSkip(t *testing.T) {
	// The conjuncts must be temporal: a fully non-temporal conjunction is an
	// atomic unit the picture layer scores whole, bypassing the And branch.
	src := costSrc()
	delete(src.tables, "A")
	f := mustParse(t, "(eventually A) and (eventually B)")

	for _, mode := range []AndMode{AndMin, AndSum} {
		opts := DefaultOptions()
		opts.And = mode
		ta, err := EvalTable(src, mustParse(t, "eventually A"), opts)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := EvalTable(src, mustParse(t, "eventually B"), opts)
		if err != nil {
			t.Fatal(err)
		}
		want := CombineTables(ta, tb, func(l1, l2 simlist.List) simlist.List {
			return AndListsMode(l1, l2, mode)
		}, ta.MaxSim+tb.MaxSim)

		p := CompilePlan(f)
		prof := NewPlanProfile(p, false)
		opts.Prof = prof
		e := newPlanEval(src, opts)
		e.phys = p.phys.Load()
		got, err := e.eval(t.Context(), p.Root)
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(got, want) {
			t.Fatalf("mode %v: skip result diverges:\ngot  %+v\nwant %+v", mode, got, want)
		}
		right := p.Root.Kids[1]
		st := prof.Stats(right)
		if mode == AndMin && (st.Visits != 0 || st.Skipped != 1) {
			t.Fatalf("AndMin right stats = %+v, want skipped", st)
		}
		if mode == AndSum && st.Visits != 1 {
			t.Fatalf("AndSum right stats = %+v, want visited (sum keeps one-sided entries)", st)
		}
	}
}

// A reordered conjunction (cheaper right side evaluated first) must still
// produce the syntactic-order combine byte for byte.
func TestAndReorderByteIdentity(t *testing.T) {
	src := costSrc()
	opts := DefaultOptions()
	f := mustParse(t, "(eventually A) and (eventually B)")

	p := CompilePlan(f)
	ph := &physPlan{gateFirst: make([]bool, len(p.nodes)), est: make([]NodeCost, len(p.nodes))}
	ph.gateFirst[p.Root.ID] = true
	p.phys.Store(ph)
	e := newPlanEval(src, opts)
	e.phys = p.phys.Load()
	got, err := e.eval(t.Context(), p.Root)
	if err != nil {
		t.Fatal(err)
	}

	want, err := EvalTable(src, f, opts) // fresh plan, syntactic order
	if err != nil {
		t.Fatal(err)
	}
	if !tablesEqual(got, want) {
		t.Fatalf("reordered conjunction diverges:\ngot  %+v\nwant %+v", got, want)
	}
}

// Observe folds computed evaluations only (memo hits excluded) and Estimate
// averages them per canonical subformula across plans.
func TestCostModelObserveEstimate(t *testing.T) {
	p := CompilePlan(mustParse(t, "A and B"))
	prof := NewPlanProfile(p, false)
	a := p.Node("A")
	prof.Visit(a)
	prof.Visit(a)
	prof.MemoHit(a)
	prof.AddTime(a, 300*time.Nanosecond)
	prof.AddSim(a)
	prof.AddSim(a)

	m := NewCostModel()
	m.Observe(prof)
	est := m.Estimate("A")
	if !est.Known() || est.Samples != 1 {
		t.Fatalf("estimate = %+v, want 1 computed sample", est)
	}
	if est.Cost != 300*time.Nanosecond || est.Entries != 2 {
		t.Fatalf("estimate = %+v, want cost=300ns entries=2", est)
	}
	if m.Estimate("B").Known() {
		t.Fatal("unvisited node has a known estimate")
	}
	// A second identical observation doubles samples, keeps the means.
	m.Observe(prof)
	if est := m.Estimate("A"); est.Samples != 2 || est.Cost != 300*time.Nanosecond || est.Entries != 2 {
		t.Fatalf("after second observe: %+v", est)
	}
}

// Reoptimize flips a conjunction to cheapest-first once the model has enough
// evidence, leaves the plan's logical identity untouched, and does not count
// a reorder when nothing changes or evidence is below the floor.
func TestReoptimizeReordersConjunction(t *testing.T) {
	p := CompilePlan(mustParse(t, "(eventually A) and (eventually B)"))
	key := p.Key
	lKey, rKey := p.Root.Kids[0].Key, p.Root.Kids[1].Key

	// Below the evidence floor: estimates install (they are new) but the
	// order must not move.
	weak := NewCostModel()
	weak.stats[lKey] = &costAgg{samples: minCostSamples - 1, timeNs: 1e6, entries: 100}
	weak.stats[rKey] = &costAgg{samples: minCostSamples - 1, timeNs: 1e3, entries: 1}
	if p.Reoptimize(weak) {
		t.Fatal("reorder reported below the evidence floor")
	}
	if p.phys.Load().gateFirst[p.Root.ID] {
		t.Fatal("order flipped below the evidence floor")
	}

	// Strong evidence that the right side is much cheaper: the conjunction
	// flips.
	m := NewCostModel()
	m.stats[lKey] = &costAgg{samples: 20, timeNs: 20 * 1e6, entries: 20 * 1000}
	m.stats[rKey] = &costAgg{samples: 20, timeNs: 20 * 1e3, entries: 20 * 2}
	if !p.Reoptimize(m) {
		t.Fatal("no reorder reported despite decisive evidence")
	}
	if !p.phys.Load().gateFirst[p.Root.ID] {
		t.Fatal("conjunction not flipped to cheaper-second-first")
	}
	if p.Key != key {
		t.Fatalf("plan key changed by reoptimization: %q -> %q", key, p.Key)
	}

	// Same statistics again: nothing diverged, nothing reported.
	if p.Reoptimize(m) {
		t.Fatal("reorder reported with unchanged statistics")
	}

	// Equal costs inside the noise band: selectivity decides.
	if !cheaperSecond(
		NodeCost{Cost: 1000, Entries: 50, Samples: 10},
		NodeCost{Cost: 1100, Entries: 5, Samples: 10},
	) {
		t.Fatal("selectivity tiebreak did not prefer the sparser side")
	}
}
