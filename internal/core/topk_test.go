package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htlvideo/internal/simlist"
)

func TestTopKExactCount(t *testing.T) {
	lists := map[int]simlist.List{
		1: simlist.NewList(20, entry(1, 5, 10), entry(9, 9, 18)),
		2: simlist.NewList(20, entry(2, 3, 14)),
	}
	top := TopK(lists, 4)
	// Best: v1 [9,9]@18, then v2 [2,3]@14, then v1 [1,5]@10 truncated to 1.
	if len(top) != 3 {
		t.Fatalf("runs: %v", top)
	}
	if top[0].VideoID != 1 || top[0].Iv.Beg != 9 {
		t.Fatalf("first: %+v", top[0])
	}
	if top[1].VideoID != 2 || top[1].Iv.Len() != 2 {
		t.Fatalf("second: %+v", top[1])
	}
	if top[2].Iv.Len() != 1 || top[2].Iv.Beg != 1 {
		t.Fatalf("third truncated: %+v", top[2])
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if TopK(nil, 5) != nil {
		t.Fatal("no lists")
	}
	if TopK(map[int]simlist.List{1: simlist.Empty(5)}, 0) != nil {
		t.Fatal("k=0")
	}
	lists := map[int]simlist.List{1: simlist.NewList(5, entry(1, 2, 3))}
	top := TopK(lists, 100)
	if len(top) != 1 || top[0].Iv.Len() != 2 {
		t.Fatalf("k beyond coverage: %v", top)
	}
}

func TestRankEntriesOrder(t *testing.T) {
	l := simlist.NewList(20, entry(1, 1, 5), entry(2, 2, 9), entry(3, 3, 9))
	r := RankEntries(7, l)
	if r[0].Sim.Act != 9 || r[0].Iv.Beg != 2 || r[1].Iv.Beg != 3 || r[2].Sim.Act != 5 {
		t.Fatalf("ranked: %v", r)
	}
	if r[0].VideoID != 7 || r[0].Sim.Max != 20 {
		t.Fatalf("metadata: %+v", r[0])
	}
}

// Property: heap-based and sort-based top-k agree on the returned segment
// multiset and its total similarity mass.
func TestTopKAgainstSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%30) + 1
		lists := map[int]simlist.List{}
		for v := 1; v <= 3; v++ {
			var entries []simlist.Entry
			pos := 1
			for pos < 40 {
				pos += rng.Intn(3) + 1
				ln := rng.Intn(4)
				if pos+ln > 40 {
					break
				}
				entries = append(entries, entry(pos, pos+ln, float64(1+rng.Intn(10))))
				pos += ln + 2
			}
			lists[v] = simlist.NewList(10, entries...)
		}
		a := TopK(lists, k)
		b := TopKBySort(lists, k)
		return rankedMass(a) == rankedMass(b) && rankedCount(a) == rankedCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func rankedMass(rs []Ranked) float64 {
	m := 0.0
	for _, r := range rs {
		m += r.Sim.Act * float64(r.Iv.Len())
	}
	return m
}

func rankedCount(rs []Ranked) int {
	n := 0
	for _, r := range rs {
		n += r.Iv.Len()
	}
	return n
}

func TestMaxSimOfStructure(t *testing.T) {
	src := stubSource{max: map[string]float64{"A": 2, "B": 3, "C": 5}}
	for q, want := range map[string]float64{
		"A and B":                5,
		"A until B":              3,
		"next eventually A":      2,
		"A and (B until C)":      7,
		"not A":                  2,
		"[h <- q] A and B":       5,
		"at-next-level(A and B)": 5,
		"A and at-next-level(C)": 7,
		"exists x . present(x)":  1, // stub returns 1 for unknown atoms
	} {
		got := MaxSimOf(src, mustParse(t, q))
		if got != want {
			t.Errorf("MaxSimOf(%q) = %g, want %g", q, got, want)
		}
	}
}
