package core

import (
	"sort"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// Ranked is one run of video segments in a ranked retrieval result.
type Ranked struct {
	VideoID int
	Iv      interval.I
	Sim     simlist.Sim
}

// RankEntries orders a similarity list's entries by descending actual
// similarity (ties by beginning id) — the presentation used by the paper's
// Table 4.
func RankEntries(videoID int, l simlist.List) []Ranked {
	out := make([]Ranked, 0, len(l.Entries))
	for _, e := range l.Entries {
		out = append(out, Ranked{VideoID: videoID, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
	}
	sortRanked(out)
	return out
}

// SortRanked orders runs by descending actual similarity with fully
// deterministic tie-breaks — equal similarities order by video id, then by
// beginning segment — so ranked output is stable run to run regardless of
// the (concurrent, nondeterministic) order results were produced in.
func SortRanked(rs []Ranked) { sortRanked(rs) }

func sortRanked(rs []Ranked) {
	sort.SliceStable(rs, func(i, j int) bool { return rankedLess(rs[i], rs[j]) })
}

// RankedLess reports whether a orders before b under the retrieval ordering
// — the comparison SortRanked and the top-k heap share. The scatter-gather
// coordinator merges per-shard ranked streams with this same function, which
// is what makes a merged ranking identical to a single-store run.
func RankedLess(a, b Ranked) bool { return rankedLess(a, b) }

// rankedLess is the single ordering shared by the sort and the heap: best
// first, deterministic tie-breaks.
func rankedLess(a, b Ranked) bool {
	if a.Sim.Act != b.Sim.Act {
		return a.Sim.Act > b.Sim.Act
	}
	if a.VideoID != b.VideoID {
		return a.VideoID < b.VideoID
	}
	return a.Iv.Beg < b.Iv.Beg
}

// TopK returns the k highest-similarity video segments across per-video
// similarity lists (§1: "the top k video segments that have the highest
// similarity values ... will be retrieved"). Runs of equal-similarity
// segments stay as one Ranked entry; the last run is truncated so that the
// total number of segments returned is exactly min(k, covered). A heap keeps
// the cost at O(n + r log n) for n entries and r emitted runs.
func TopK(lists map[int]simlist.List, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	n := 0
	for _, l := range lists {
		n += len(l.Entries)
	}
	h := make(rankedHeap, 0, n)
	for vid, l := range lists {
		for _, e := range l.Entries {
			h = append(h, Ranked{VideoID: vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
		}
	}
	h.init()
	var out []Ranked
	remaining := k
	for remaining > 0 && len(h) > 0 {
		r := h.pop()
		if r.Iv.Len() > remaining {
			r.Iv.End = r.Iv.Beg + remaining - 1
		}
		remaining -= r.Iv.Len()
		out = append(out, r)
	}
	return out
}

// TopKBySort is the naive alternative that fully sorts all entries; kept for
// the ablation benchmark.
func TopKBySort(lists map[int]simlist.List, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	var all []Ranked
	for vid, l := range lists {
		for _, e := range l.Entries {
			all = append(all, Ranked{VideoID: vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
		}
	}
	sortRanked(all)
	var out []Ranked
	remaining := k
	for _, r := range all {
		if remaining <= 0 {
			break
		}
		if r.Iv.Len() > remaining {
			r.Iv.End = r.Iv.Beg + remaining - 1
		}
		remaining -= r.Iv.Len()
		out = append(out, r)
	}
	return out
}

// rankedHeap is a typed binary min-heap under rankedLess (so the best run is
// at the root). It is hand-rolled rather than built on container/heap: the
// interface-based heap boxes every Ranked through `any` on Push/Pop, which
// costs an allocation per element on the retrieval hot path.
type rankedHeap []Ranked

// init establishes the heap invariant in O(n).
func (h rankedHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// pop removes and returns the best element.
func (h *rankedHeap) pop() Ranked {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.siftDown(0)
	return top
}

func (h rankedHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && rankedLess(h[l], h[best]) {
			best = l
		}
		if r < n && rankedLess(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
