package core

import (
	"container/heap"
	"sort"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// Ranked is one run of video segments in a ranked retrieval result.
type Ranked struct {
	VideoID int
	Iv      interval.I
	Sim     simlist.Sim
}

// RankEntries orders a similarity list's entries by descending actual
// similarity (ties by beginning id) — the presentation used by the paper's
// Table 4.
func RankEntries(videoID int, l simlist.List) []Ranked {
	out := make([]Ranked, 0, len(l.Entries))
	for _, e := range l.Entries {
		out = append(out, Ranked{VideoID: videoID, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
	}
	sortRanked(out)
	return out
}

// SortRanked orders runs by descending actual similarity with fully
// deterministic tie-breaks — equal similarities order by video id, then by
// beginning segment — so ranked output is stable run to run regardless of
// the (concurrent, nondeterministic) order results were produced in.
func SortRanked(rs []Ranked) { sortRanked(rs) }

func sortRanked(rs []Ranked) {
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Sim.Act != rs[j].Sim.Act {
			return rs[i].Sim.Act > rs[j].Sim.Act
		}
		if rs[i].VideoID != rs[j].VideoID {
			return rs[i].VideoID < rs[j].VideoID
		}
		return rs[i].Iv.Beg < rs[j].Iv.Beg
	})
}

// TopK returns the k highest-similarity video segments across per-video
// similarity lists (§1: "the top k video segments that have the highest
// similarity values ... will be retrieved"). Runs of equal-similarity
// segments stay as one Ranked entry; the last run is truncated so that the
// total number of segments returned is exactly min(k, covered). A heap keeps
// the cost at O(n + r log n) for n entries and r emitted runs.
func TopK(lists map[int]simlist.List, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	var h rankedHeap
	for vid, l := range lists {
		for _, e := range l.Entries {
			h = append(h, Ranked{VideoID: vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
		}
	}
	heap.Init(&h)
	var out []Ranked
	remaining := k
	for remaining > 0 && h.Len() > 0 {
		r := heap.Pop(&h).(Ranked)
		if r.Iv.Len() > remaining {
			r.Iv.End = r.Iv.Beg + remaining - 1
		}
		remaining -= r.Iv.Len()
		out = append(out, r)
	}
	return out
}

// TopKBySort is the naive alternative that fully sorts all entries; kept for
// the ablation benchmark.
func TopKBySort(lists map[int]simlist.List, k int) []Ranked {
	if k <= 0 {
		return nil
	}
	var all []Ranked
	for vid, l := range lists {
		for _, e := range l.Entries {
			all = append(all, Ranked{VideoID: vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}})
		}
	}
	sortRanked(all)
	var out []Ranked
	remaining := k
	for _, r := range all {
		if remaining <= 0 {
			break
		}
		if r.Iv.Len() > remaining {
			r.Iv.End = r.Iv.Beg + remaining - 1
		}
		remaining -= r.Iv.Len()
		out = append(out, r)
	}
	return out
}

// rankedHeap orders Ranked items best-first with deterministic tie-breaks.
type rankedHeap []Ranked

func (h rankedHeap) Len() int { return len(h) }
func (h rankedHeap) Less(i, j int) bool {
	if h[i].Sim.Act != h[j].Sim.Act {
		return h[i].Sim.Act > h[j].Sim.Act
	}
	if h[i].VideoID != h[j].VideoID {
		return h[i].VideoID < h[j].VideoID
	}
	return h[i].Iv.Beg < h[j].Iv.Beg
}
func (h rankedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rankedHeap) Push(x any)   { *h = append(*h, x.(Ranked)) }
func (h *rankedHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
