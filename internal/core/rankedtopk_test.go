package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"htlvideo/internal/simlist"
)

// randomLists builds a random per-video corpus with quantized similarities,
// so cross-video and cross-run ties occur and exercise the deterministic
// tie-break path.
func randomLists(rng *rand.Rand, videos int) map[int]simlist.List {
	lists := map[int]simlist.List{}
	for v := 1; v <= videos; v++ {
		var entries []simlist.Entry
		pos := 1
		for pos < 50 {
			pos += rng.Intn(3) + 1
			ln := rng.Intn(4)
			if pos+ln > 50 {
				break
			}
			entries = append(entries, entry(pos, pos+ln, float64(1+rng.Intn(6))))
			pos += ln + 2
		}
		lists[v] = simlist.NewList(10, entries...)
	}
	return lists
}

// Property: the threshold-pruned top-k is byte-identical to the full-sort
// oracle — same runs, same truncation, same order — for random tables and
// every k, including ties across videos.
func TestRankedTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%40) + 1
		lists := randomLists(rng, 4)
		var st PruneStats
		got := RankedTopK(lists, k, &st)
		want := TopKBySort(lists, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Equal similarities must order by video id, then beginning segment — the
// same tie-break SortRanked applies — even when the tied entries sit in
// different per-video lists.
func TestRankedTopKTieBreaks(t *testing.T) {
	lists := map[int]simlist.List{
		3: simlist.NewList(10, entry(2, 2, 8), entry(5, 5, 8)),
		1: simlist.NewList(10, entry(9, 9, 8)),
		2: simlist.NewList(10, entry(1, 1, 8)),
	}
	got := RankedTopK(lists, 4, nil)
	want := TopKBySort(lists, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tied runs diverge from the oracle:\ngot  %+v\nwant %+v", got, want)
	}
	if got[0].VideoID != 1 || got[1].VideoID != 2 || got[2].VideoID != 3 || got[3].Iv.Beg != 5 {
		t.Fatalf("tie-break order: %+v", got)
	}
}

// A last run wider than the remaining budget is truncated so exactly k
// segments come back, identically to the oracle.
func TestRankedTopKTruncatesLastRun(t *testing.T) {
	lists := map[int]simlist.List{
		1: simlist.NewList(10, entry(1, 8, 5)),
		2: simlist.NewList(10, entry(1, 1, 9)),
	}
	got := RankedTopK(lists, 4, nil)
	if !reflect.DeepEqual(got, TopKBySort(lists, 4)) {
		t.Fatalf("truncation diverges from oracle: %+v", got)
	}
	if len(got) != 2 || got[1].Iv.Len() != 3 || got[1].Iv.End != 3 {
		t.Fatalf("truncated run: %+v", got)
	}
}

// A small k against large lists must terminate early and account the entries
// it never examined; an exhaustive k must not claim pruning.
func TestRankedTopKPruneStats(t *testing.T) {
	lists := map[int]simlist.List{}
	total := 0
	for v := 1; v <= 4; v++ {
		var entries []simlist.Entry
		for i := 0; i < 50; i++ {
			entries = append(entries, entry(2*i+1, 2*i+1, float64(1+(i+v)%7)))
		}
		total += len(entries)
		lists[v] = simlist.NewList(10, entries...)
	}
	var st PruneStats
	got := RankedTopK(lists, 3, &st)
	if !reflect.DeepEqual(got, TopKBySort(lists, 3)) {
		t.Fatal("pruned result diverges from oracle")
	}
	if !st.EarlyTerminated || st.EntriesSkipped == 0 {
		t.Fatalf("no pruning recorded for k=3 over %d entries: %+v", total, st)
	}
	if st.EntriesSkipped >= int64(total) {
		t.Fatalf("skipped %d of %d entries: must consume at least the emitted ones", st.EntriesSkipped, total)
	}

	var full PruneStats
	RankedTopK(lists, total*4, &full)
	if full.EarlyTerminated || full.EntriesSkipped != 0 {
		t.Fatalf("exhaustive scan claims pruning: %+v", full)
	}
}

func TestRankedTopKEdgeCases(t *testing.T) {
	if got := RankedTopK(nil, 5, nil); got != nil {
		t.Fatalf("no lists: %v", got)
	}
	if got := RankedTopK(map[int]simlist.List{1: simlist.Empty(5)}, 0, nil); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	var st PruneStats
	if got := RankedTopK(map[int]simlist.List{1: simlist.Empty(5)}, 3, &st); got != nil {
		t.Fatalf("empty list: %v", got)
	}
	if st.EarlyTerminated {
		t.Fatalf("empty corpus claims pruning: %+v", st)
	}
}

// A cancelled context stops the scan with its error instead of a ranking.
func TestRankedTopKCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lists := map[int]simlist.List{1: simlist.NewList(10, entry(1, 1, 5))}
	out, err := RankedTopKCtx(ctx, lists, 3, nil)
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil, context error", out, err)
	}
}
