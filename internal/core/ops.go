// Package core implements the paper's primary contribution (§3): the
// similarity-list generator. It provides the interval-based algorithms for
// the temporal connectives on similarity lists (type (1) formulas, §3.1),
// the similarity-table algorithms with object-variable joins (type (2),
// §3.2), value-table joins for the freeze operator (full conjunctive, §3.3),
// the recursive treatment of level-modal operators (extended conjunctive),
// and top-k retrieval.
package core

import (
	"sort"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// AndLists combines the similarity lists of g and h into the list of g ∧ h:
// at every id the actual similarities add (§2.5), so ids on one list only
// keep their value — a conjunction is partially satisfied even when one
// conjunct is not satisfied at all. The maximum similarity is m1 + m2.
//
// The implementation is the paper's "modified merge" over the two sorted
// entry slices and runs in O(len(l1) + len(l2)).
func AndLists(l1, l2 simlist.List) simlist.List {
	out := simlist.List{MaxSim: l1.MaxSim + l2.MaxSim}
	e1, e2 := l1.Entries, l2.Entries
	if n := len(e1) + len(e2); n > 0 {
		out.Entries = make([]simlist.Entry, 0, n)
	}
	i, j := 0, 0
	// pos is the next id not yet emitted.
	pos := minBeg(e1, e2)
	for i < len(e1) || j < len(e2) {
		var a, b float64
		var segEnd int
		// Advance past entries that ended before pos.
		if i < len(e1) && e1[i].Iv.End < pos {
			i++
			continue
		}
		if j < len(e2) && e2[j].Iv.End < pos {
			j++
			continue
		}
		// Determine the value of each side at pos and the next boundary.
		segEnd = int(^uint(0) >> 1) // max int
		if i < len(e1) {
			if e1[i].Iv.Beg <= pos {
				a = e1[i].Act
				segEnd = min(segEnd, e1[i].Iv.End)
			} else {
				segEnd = min(segEnd, e1[i].Iv.Beg-1)
			}
		}
		if j < len(e2) {
			if e2[j].Iv.Beg <= pos {
				b = e2[j].Act
				segEnd = min(segEnd, e2[j].Iv.End)
			} else {
				segEnd = min(segEnd, e2[j].Iv.Beg-1)
			}
		}
		if a+b > 0 {
			out.Entries = append(out.Entries, simlist.Entry{
				Iv:  interval.I{Beg: pos, End: segEnd},
				Act: a + b,
			})
		}
		pos = segEnd + 1
	}
	return out.Canonical()
}

func minBeg(e1, e2 []simlist.Entry) int {
	switch {
	case len(e1) == 0 && len(e2) == 0:
		return 0
	case len(e1) == 0:
		return e2[0].Iv.Beg
	case len(e2) == 0:
		return e1[0].Iv.Beg
	default:
		return min(e1[0].Iv.Beg, e2[0].Iv.Beg)
	}
}

// AndMode selects the similarity function for conjunction — the paper's §5
// names "other similarity functions" as future work; both modes keep
// m = m1 + m2 so that maxima stay a function of the formula alone.
type AndMode uint8

const (
	// AndSum is the paper's semantics: actual similarities add, so a
	// conjunction is partially satisfied even when one side is 0.
	AndSum AndMode = iota
	// AndMin is a weakest-link alternative: the fractional similarity of
	// the conjunction is the minimum of the conjuncts' fractions,
	// a = min(a1/m1, a2/m2) · (m1+m2). One unsatisfied conjunct zeroes the
	// whole conjunction.
	AndMin
)

// AndListsMode combines two similarity lists under the chosen conjunction
// semantics.
func AndListsMode(l1, l2 simlist.List, mode AndMode) simlist.List {
	if mode == AndSum {
		return AndLists(l1, l2)
	}
	m := l1.MaxSim + l2.MaxSim
	out := simlist.List{MaxSim: m}
	e1, e2 := l1.Entries, l2.Entries
	if n := len(e1) + len(e2); n > 0 {
		out.Entries = make([]simlist.Entry, 0, n)
	}
	pos := minBeg(e1, e2)
	i, j := 0, 0
	for i < len(e1) || j < len(e2) {
		if i < len(e1) && e1[i].Iv.End < pos {
			i++
			continue
		}
		if j < len(e2) && e2[j].Iv.End < pos {
			j++
			continue
		}
		var a, b float64
		segEnd := int(^uint(0) >> 1)
		if i < len(e1) {
			if e1[i].Iv.Beg <= pos {
				a = e1[i].Act
				segEnd = min(segEnd, e1[i].Iv.End)
			} else {
				segEnd = min(segEnd, e1[i].Iv.Beg-1)
			}
		}
		if j < len(e2) {
			if e2[j].Iv.Beg <= pos {
				b = e2[j].Act
				segEnd = min(segEnd, e2[j].Iv.End)
			} else {
				segEnd = min(segEnd, e2[j].Iv.Beg-1)
			}
		}
		frac := 0.0
		if l1.MaxSim > 0 && l2.MaxSim > 0 {
			frac = min(a/l1.MaxSim, b/l2.MaxSim)
		}
		if v := frac * m; v > 0 {
			out.Entries = append(out.Entries, simlist.Entry{Iv: interval.I{Beg: pos, End: segEnd}, Act: v})
		}
		pos = segEnd + 1
	}
	return out.Canonical()
}

// NextList computes the list of `next g` from the list of g: an entry of g
// over [u, v] becomes an entry over [u-1, v-1] (§3.1). Ids below 1 fall off
// the sequence; the last segment of the video gets similarity 0 naturally,
// since g can have no entry beyond the sequence.
func NextList(l simlist.List) simlist.List {
	out := simlist.List{MaxSim: l.MaxSim}
	if len(l.Entries) > 0 {
		out.Entries = make([]simlist.Entry, 0, len(l.Entries))
	}
	for _, e := range l.Entries {
		iv := e.Iv.Shift(-1)
		clipped, ok := iv.ClampLow(1)
		if !ok {
			continue
		}
		out.Entries = append(out.Entries, simlist.Entry{Iv: clipped, Act: e.Act})
	}
	return out
}

// EventuallyList computes the list of `eventually g`: the similarity at id i
// is the maximum similarity of g at any id >= i (the suffix maximum), which
// is non-increasing in i. Segment ids start at 1 (§3.1), so coverage extends
// down to id 1.
func EventuallyList(l simlist.List) simlist.List {
	out := simlist.List{MaxSim: l.MaxSim}
	if len(l.Entries) == 0 {
		return out
	}
	// Walk entries right to left accumulating the running maximum; emit the
	// pieces left to right afterwards.
	type piece struct {
		iv  interval.I
		act float64
	}
	rev := make([]piece, 0, len(l.Entries))
	runMax := 0.0
	hi := 0 // highest id covered so far (exclusive upper bound of next piece)
	for k := len(l.Entries) - 1; k >= 0; k-- {
		e := l.Entries[k]
		if e.Iv.End > hi {
			hi = e.Iv.End
		}
		// Ids in (prevEnd, hi] see runMax including this entry.
		lo := 1
		if k > 0 {
			lo = l.Entries[k-1].Iv.End + 1
		}
		if e.Act > runMax {
			runMax = e.Act
		}
		if lo <= hi {
			rev = append(rev, piece{iv: interval.I{Beg: lo, End: hi}, act: runMax})
			hi = lo - 1
		}
	}
	for k := len(rev) - 1; k >= 0; k-- {
		out.Entries = append(out.Entries, simlist.Entry{Iv: rev[k].iv, Act: rev[k].act})
	}
	return out.Canonical()
}

// DefaultUntilThreshold is the minimum fractional similarity the left side
// of `until` must reach to count as "satisfied" while waiting for the right
// side (§2.5 leaves the threshold open; 0.5 is this library's default).
const DefaultUntilThreshold = 0.5

// UntilLists computes the list of `g until h` (§3.1). tau is the threshold
// on g's fractional similarity. The similarity of the result at id i is the
// maximum similarity of h at any id u” >= i reachable from i through
// segments where g's fractional similarity is >= tau; the maximum similarity
// of the result is that of h.
//
// The paper's backward-merge property ("entries in L2 whose intervals
// intersect with that of I at some point >= i") misses one case admitted by
// the exact §2.3 semantics: an h-entry beginning immediately after a g-run
// ends (u” = I.End+1 needs g only on [i, I.End]). This implementation
// follows the exact semantics; the worked example of Fig. 2 is unaffected.
// The algorithm runs in O(len(lg) + len(lh)) plus the final sort of the
// emitted pieces.
func UntilLists(lg, lh simlist.List, tau float64) simlist.List {
	out := simlist.List{MaxSim: lh.MaxSim}
	// Step 1: keep g-entries at or above the threshold and coalesce adjacent
	// intervals; actual values of g are not used beyond the threshold test.
	var gRuns []interval.I
	for _, e := range lg.Entries {
		if lg.MaxSim <= 0 || e.Act/lg.MaxSim < tau {
			continue
		}
		gRuns = append(gRuns, e.Iv)
	}
	gRuns = interval.Coalesce(gRuns)

	pieces := make([]simlist.Entry, 0, len(lg.Entries)+len(lh.Entries))

	// Step 2a: within each g-run I, the value at i is the maximum act of the
	// h-entries J reachable from i: J.End >= i and J.Beg <= I.End+1.
	j := 0
	for _, I := range gRuns {
		// Skip h-entries that end before the run begins.
		for j < len(lh.Entries) && lh.Entries[j].Iv.End < I.Beg {
			j++
		}
		// Qualifying entries, in ascending t = min(J.End, I.End).
		type reach struct {
			t   int
			act float64
		}
		var qual []reach
		k := j
		for k < len(lh.Entries) && lh.Entries[k].Iv.Beg <= I.End+1 {
			J := lh.Entries[k]
			qual = append(qual, reach{t: min(J.Iv.End, I.End), act: J.Act})
			k++
		}
		// Emit pieces right to left: ids in (t_prev, t_cur] see the maximum
		// act among entries with t >= i.
		runMax := 0.0
		hi := 0
		for q := len(qual) - 1; q >= 0; q-- {
			if qual[q].t > hi {
				hi = qual[q].t
			}
			lo := I.Beg
			if q > 0 && qual[q-1].t+1 > lo {
				lo = qual[q-1].t + 1
			}
			if qual[q].act > runMax {
				runMax = qual[q].act
			}
			if lo <= hi {
				pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: lo, End: hi}, Act: runMax})
				hi = lo - 1
			}
		}
	}

	// Step 2b: ids on an h-entry but on no g-run keep h's value there
	// (u'' = i itself). Subtract the g-runs from each h-entry.
	g := 0
	for _, J := range lh.Entries {
		pos := J.Iv.Beg
		for g < len(gRuns) && gRuns[g].End < J.Iv.Beg {
			g++
		}
		for k := g; k < len(gRuns) && gRuns[k].Beg <= J.Iv.End; k++ {
			if gRuns[k].Beg > pos {
				pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: pos, End: gRuns[k].Beg - 1}, Act: J.Act})
			}
			if gRuns[k].End+1 > pos {
				pos = gRuns[k].End + 1
			}
		}
		if pos <= J.Iv.End {
			pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: pos, End: J.Iv.End}, Act: J.Act})
		}
	}

	// Step 3: pieces from 2a lie inside g-runs, pieces from 2b outside, so
	// they are pairwise disjoint; sort and merge equal neighbours.
	sort.Slice(pieces, func(a, b int) bool { return pieces[a].Iv.Beg < pieces[b].Iv.Beg })
	out.Entries = pieces
	return out.Canonical()
}

// UntilListsPaperRule evaluates until by the paper's literal §3.1 wording:
// within a g-run I, an h-entry J qualifies only when it *intersects* I at a
// point >= i. This misses h-entries beginning immediately after the run ends
// (u” = I.End+1), which the exact §2.3 semantics admits; UntilLists
// implements the exact semantics. Kept for the fidelity comparison and the
// corresponding ablation test/benchmark.
func UntilListsPaperRule(lg, lh simlist.List, tau float64) simlist.List {
	out := simlist.List{MaxSim: lh.MaxSim}
	var gRuns []interval.I
	for _, e := range lg.Entries {
		if lg.MaxSim <= 0 || e.Act/lg.MaxSim < tau {
			continue
		}
		gRuns = append(gRuns, e.Iv)
	}
	gRuns = interval.Coalesce(gRuns)

	var pieces []simlist.Entry
	j := 0
	for _, I := range gRuns {
		for j < len(lh.Entries) && lh.Entries[j].Iv.End < I.Beg {
			j++
		}
		type reach struct {
			t   int
			act float64
		}
		var qual []reach
		k := j
		for k < len(lh.Entries) && lh.Entries[k].Iv.Beg <= I.End {
			J := lh.Entries[k]
			qual = append(qual, reach{t: min(J.Iv.End, I.End), act: J.Act})
			k++
		}
		runMax := 0.0
		hi := 0
		for q := len(qual) - 1; q >= 0; q-- {
			if qual[q].t > hi {
				hi = qual[q].t
			}
			lo := I.Beg
			if q > 0 && qual[q-1].t+1 > lo {
				lo = qual[q-1].t + 1
			}
			if qual[q].act > runMax {
				runMax = qual[q].act
			}
			if lo <= hi {
				pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: lo, End: hi}, Act: runMax})
				hi = lo - 1
			}
		}
	}
	g := 0
	for _, J := range lh.Entries {
		pos := J.Iv.Beg
		for g < len(gRuns) && gRuns[g].End < J.Iv.Beg {
			g++
		}
		for k := g; k < len(gRuns) && gRuns[k].Beg <= J.Iv.End; k++ {
			if gRuns[k].Beg > pos {
				pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: pos, End: gRuns[k].Beg - 1}, Act: J.Act})
			}
			if gRuns[k].End+1 > pos {
				pos = gRuns[k].End + 1
			}
		}
		if pos <= J.Iv.End {
			pieces = append(pieces, simlist.Entry{Iv: interval.I{Beg: pos, End: J.Iv.End}, Act: J.Act})
		}
	}
	sort.Slice(pieces, func(a, b int) bool { return pieces[a].Iv.Beg < pieces[b].Iv.Beg })
	out.Entries = pieces
	return normalizeOverlaps(out)
}

// normalizeOverlaps resolves any overlapping pieces by pointwise maximum.
func normalizeOverlaps(l simlist.List) simlist.List {
	return simlist.Normalize(l.MaxSim, l.Entries)
}

// MaxMergeLists merges m similarity lists into one whose value at each id is
// the maximum over the lists — the second part of the type (2) algorithm
// (§3.2), used to existentially project a similarity table onto a list. It
// works directly on intervals via a boundary sweep (O(l log l) for l total
// entries, matching the paper's O(l log m) up to the heap base).
func MaxMergeLists(maxSim float64, ls ...simlist.List) simlist.List {
	var all []simlist.Entry
	for _, l := range ls {
		all = append(all, l.Entries...)
	}
	return simlist.Normalize(maxSim, all)
}

// MaxMergePairwise is the naive alternative to MaxMergeLists that merges the
// lists one pair at a time; kept for the ablation benchmark (it is
// O(m * l) instead of O(l log l)).
func MaxMergePairwise(maxSim float64, ls ...simlist.List) simlist.List {
	out := simlist.Empty(maxSim)
	for _, l := range ls {
		out = maxMerge2(out, l, maxSim)
	}
	return out
}

func maxMerge2(l1, l2 simlist.List, maxSim float64) simlist.List {
	out := simlist.List{MaxSim: maxSim}
	e1, e2 := l1.Entries, l2.Entries
	if n := len(e1) + len(e2); n > 0 {
		out.Entries = make([]simlist.Entry, 0, n)
	}
	pos := minBeg(e1, e2)
	i, j := 0, 0
	for i < len(e1) || j < len(e2) {
		if i < len(e1) && e1[i].Iv.End < pos {
			i++
			continue
		}
		if j < len(e2) && e2[j].Iv.End < pos {
			j++
			continue
		}
		var a, b float64
		segEnd := int(^uint(0) >> 1)
		if i < len(e1) {
			if e1[i].Iv.Beg <= pos {
				a = e1[i].Act
				segEnd = min(segEnd, e1[i].Iv.End)
			} else {
				segEnd = min(segEnd, e1[i].Iv.Beg-1)
			}
		}
		if j < len(e2) {
			if e2[j].Iv.Beg <= pos {
				b = e2[j].Act
				segEnd = min(segEnd, e2[j].Iv.End)
			} else {
				segEnd = min(segEnd, e2[j].Iv.Beg-1)
			}
		}
		if v := max(a, b); v > 0 {
			out.Entries = append(out.Entries, simlist.Entry{Iv: interval.I{Beg: pos, End: segEnd}, Act: v})
		}
		pos = segEnd + 1
	}
	return out.Canonical()
}
