package core

import (
	"sync/atomic"
	"time"

	"htlvideo/internal/htl"
	"htlvideo/internal/obs"
	"htlvideo/internal/simlist"
)

// Per-plan-node execution profiling (EXPLAIN ANALYZE): a PlanProfile holds
// one slot of atomic accumulators per PNode, indexed by PNode.ID, so the
// evaluation engines can attribute work to the exact subformula that caused
// it while videos evaluate concurrently — no locks, no per-query merging.
// A nil *PlanProfile accepts the full method set as a no-op, matching the
// rest of the instrumentation layer, so engine hot paths never branch on
// "is explain on".

// PlanProfile accumulates per-node execution statistics for one query
// evaluation (all videos together). Allocate one per query with
// NewPlanProfile; it is safe for concurrent use by all video workers.
type PlanProfile struct {
	plan  *Plan
	exact bool
	nodes []nodeProf
}

// nodeProf is one node's accumulator slot. All fields are atomics: video
// workers update them concurrently.
type nodeProf struct {
	visits      atomic.Int64
	memoHits    atomic.Int64
	atomicEvals atomic.Int64
	mergeOps    atomic.Int64
	rows        atomic.Int64
	entries     atomic.Int64
	sqlStmts    atomic.Int64
	sqlRows     atomic.Int64
	timeNs      atomic.Int64
	skipped     atomic.Int64
}

// NewPlanProfile returns a fresh profile for one evaluation of p. With exact
// set, engines whose per-visit timing is off by default (the reference
// evaluator, which visits nodes once per scan position) record wall time too.
func NewPlanProfile(p *Plan, exact bool) *PlanProfile {
	return &PlanProfile{plan: p, exact: exact, nodes: make([]nodeProf, len(p.nodes))}
}

// Exact reports whether exact-attribution mode is on.
func (p *PlanProfile) Exact() bool { return p != nil && p.exact }

// slot returns n's accumulator, or nil when profiling is off or n is not a
// node of the profiled plan.
func (p *PlanProfile) slot(n *PNode) *nodeProf {
	if p == nil || n == nil || n.ID >= len(p.nodes) || p.plan.nodes[n.ID] != n {
		return nil
	}
	return &p.nodes[n.ID]
}

// Visit counts one evaluation reaching n (memo hits included).
func (p *PlanProfile) Visit(n *PNode) {
	if s := p.slot(n); s != nil {
		s.visits.Add(1)
	}
}

// MemoHit counts one visit to n answered from a memo.
func (p *PlanProfile) MemoHit(n *PNode) {
	if s := p.slot(n); s != nil {
		s.memoHits.Add(1)
	}
}

// AtomicEval counts one picture-layer scoring of n.
func (p *PlanProfile) AtomicEval(n *PNode) {
	if s := p.slot(n); s != nil {
		s.atomicEvals.Add(1)
	}
}

// Merge counts one similarity-list/table merge at n.
func (p *PlanProfile) Merge(n *PNode) {
	if s := p.slot(n); s != nil {
		s.mergeOps.Add(1)
	}
}

// Record accounts one computed (non-memoized) evaluation of n: its inclusive
// wall time and the similarity table it produced (row and entry counts; t may
// be nil).
func (p *PlanProfile) Record(n *PNode, d time.Duration, t *simlist.Table) {
	s := p.slot(n)
	if s == nil {
		return
	}
	s.timeNs.Add(int64(d))
	if t != nil {
		s.rows.Add(int64(len(t.Rows)))
		var entries int64
		for _, r := range t.Rows {
			entries += int64(len(r.List.Entries))
		}
		s.entries.Add(entries)
	}
}

// AddTime adds inclusive wall time to n without table accounting (exact-mode
// per-visit timing in the reference evaluator).
func (p *PlanProfile) AddTime(n *PNode, d time.Duration) {
	if s := p.slot(n); s != nil {
		s.timeNs.Add(int64(d))
	}
}

// AddSim accounts one similarity value produced for n by a per-segment
// evaluator (the reference evaluator has no tables; each scored segment is
// one entry).
func (p *PlanProfile) AddSim(n *PNode) {
	if s := p.slot(n); s != nil {
		s.entries.Add(1)
	}
}

// Skip counts one short-circuited evaluation of n: the optimizer proved
// n's table unnecessary for the current video without computing it.
func (p *PlanProfile) Skip(n *PNode) {
	if s := p.slot(n); s != nil {
		s.skipped.Add(1)
	}
}

// SkipTree records a skip on every node of the subtree rooted at n, each
// shared node once per call (atomic units count as leaves, matching the
// explain tree's shape) — so an explain tree distinguishes "never reached"
// from "proven unnecessary".
func (p *PlanProfile) SkipTree(n *PNode) {
	if p == nil {
		return
	}
	seen := map[int]bool{}
	var walk func(n *PNode)
	walk = func(n *PNode) {
		s := p.slot(n)
		if s == nil || seen[n.ID] {
			return
		}
		seen[n.ID] = true
		s.skipped.Add(1)
		if n.NonTemporal {
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(n)
}

// AddSQL accounts SQL statements issued (and rows they returned or affected)
// while computing n.
func (p *PlanProfile) AddSQL(n *PNode, stmts, rows int64) {
	if s := p.slot(n); s != nil {
		s.sqlStmts.Add(stmts)
		s.sqlRows.Add(rows)
	}
}

// MemoHits sums memo hits over all nodes.
func (p *PlanProfile) MemoHits() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for i := range p.nodes {
		total += p.nodes[i].memoHits.Load()
	}
	return total
}

// Stats snapshots n's accumulated statistics.
func (p *PlanProfile) Stats(n *PNode) obs.NodeStats {
	s := p.slot(n)
	if s == nil {
		return obs.NodeStats{}
	}
	return obs.NodeStats{
		Visits:      s.visits.Load(),
		MemoHits:    s.memoHits.Load(),
		AtomicEvals: s.atomicEvals.Load(),
		MergeOps:    s.mergeOps.Load(),
		Rows:        s.rows.Load(),
		Entries:     s.entries.Load(),
		SQLStmts:    s.sqlStmts.Load(),
		SQLRows:     s.sqlRows.Load(),
		Skipped:     s.skipped.Load(),
		Time:        time.Duration(s.timeNs.Load()),
	}
}

// Tree snapshots the whole profile as an annotated plan tree. An interned
// subformula shared by several parents becomes one *obs.ExplainNode reused
// under each parent (Shared=true), mirroring the plan DAG, so pointer-walks
// over the result count shared stats once.
func (p *PlanProfile) Tree() *obs.ExplainNode {
	if p == nil || p.plan == nil {
		return nil
	}
	// Indegree over the DAG decides Shared: a node referenced by more than
	// one parent edge.
	indeg := make([]int, len(p.plan.nodes))
	for _, n := range p.plan.nodes {
		for _, k := range n.Kids {
			indeg[k.ID]++
		}
	}
	built := make([]*obs.ExplainNode, len(p.plan.nodes))
	ph := p.plan.phys.Load()
	var build func(n *PNode) *obs.ExplainNode
	build = func(n *PNode) *obs.ExplainNode {
		if e := built[n.ID]; e != nil {
			return e
		}
		e := &obs.ExplainNode{
			ID:          n.ID,
			Op:          OpName(n.F, n.NonTemporal),
			Formula:     n.Key,
			NonTemporal: n.NonTemporal,
			Closed:      n.Closed,
			Shared:      indeg[n.ID] > 1,
			Stats:       p.Stats(n),
		}
		// Optimizer annotations: the chosen child order and the cost-model
		// estimates it was derived from (see cost.go).
		if ph != nil && n.ID < len(ph.gateFirst) {
			if ph.gateFirst[n.ID] {
				e.Order = "right-first"
			}
			if est := ph.est[n.ID]; est.Known() {
				e.EstCost = est.Cost
				e.EstEntries = est.Entries
			}
		}
		built[n.ID] = e
		if !n.NonTemporal {
			// Atomic units keep structural kids for the reference evaluator,
			// but the profiler treats them as leaves: the picture layer
			// scores them whole.
			for _, k := range n.Kids {
				e.Children = append(e.Children, build(k))
			}
		}
		return e
	}
	return build(p.plan.Root)
}

// OpName names a plan node's operator for explain output.
func OpName(f htl.Formula, nonTemporal bool) string {
	if nonTemporal {
		return "atomic"
	}
	switch f.(type) {
	case htl.And:
		return "and"
	case htl.Until:
		return "until"
	case htl.Not:
		return "not"
	case htl.Next:
		return "next"
	case htl.Eventually:
		return "eventually"
	case htl.Exists:
		return "exists"
	case htl.Freeze:
		return "freeze"
	case htl.AtLevel:
		return "at-level"
	default:
		return "atomic"
	}
}
