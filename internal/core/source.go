package core

import (
	"fmt"

	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// AnyObject is the wildcard object binding in similarity-table rows produced
// by outer joins: the row's similarity list holds for every assignment of
// that variable. Store object ids are strictly positive, so 0 is free.
const AnyObject simlist.ObjectID = 0

// AttrValue is a concrete attribute value flowing through value tables
// (paper §3.3). It mirrors metadata.Value without importing it, keeping the
// evaluator decoupled from the storage model.
type AttrValue struct {
	IsInt bool
	Int   int64
	Str   string
}

// InRange reports whether the value satisfies an attribute-variable range.
func (v AttrValue) InRange(r simlist.Range) bool {
	if v.IsInt {
		return r.ContainsInt(v.Int)
	}
	return r.ContainsStr(v.Str)
}

func (v AttrValue) String() string {
	if v.IsInt {
		return fmt.Sprint(v.Int)
	}
	return fmt.Sprintf("%q", v.Str)
}

// ValueRow is one row of a value table: for the evaluation binding the
// attribute function's object variable to Binding, the attribute has value
// Value at every id in Ivs (sorted, disjoint).
type ValueRow struct {
	Binding simlist.ObjectID // meaningful only when the table has a variable
	Value   AttrValue
	Ivs     []interval.I
}

// ValueTable is the paper's §3.3 "value table" R for an attribute function
// q: where (and for which object) each attribute value holds.
type ValueTable struct {
	// Var is q's object variable name; empty for segment-level attributes.
	Var  string
	Rows []ValueRow
}

// Source supplies the evaluator with everything it needs about one proper
// sequence of video segments: atomic similarity tables from the picture
// retrieval substrate, value tables for freeze operators, and access to the
// descendant sequences that level-modal operators descend into.
type Source interface {
	// EvalAtomic computes the similarity table of a non-temporal formula f
	// over this sequence. The table's object/attribute variable columns are
	// exactly the free variables of f; a closed f yields a table with a
	// single anonymous row (or none, when f is nowhere satisfied).
	EvalAtomic(f htl.Formula) (*simlist.Table, error)

	// AtomicMaxSim returns the maximum similarity of a non-temporal formula
	// (a function of the formula only, §2.5).
	AtomicMaxSim(f htl.Formula) float64

	// ValueTable computes the value table of attribute function q over this
	// sequence.
	ValueTable(q htl.AttrFn) (*ValueTable, error)

	// Len returns the number of segments in this sequence (ids 1..Len).
	Len() int

	// ChildSource returns the Source for the proper sequence of descendants
	// of segment id (1-based) at the level designated by ref. It returns
	// (nil, nil) when the segment has no descendants at that level — the
	// level-modal operator then has actual similarity 0 there (§2.5) — and
	// an error only when ref itself cannot be resolved (e.g. an unknown
	// level name).
	ChildSource(id int, ref htl.LevelRef) (Source, error)
}
