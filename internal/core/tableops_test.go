package core

import (
	"testing"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

func list(max float64, es ...simlist.Entry) simlist.List {
	return simlist.NewList(max, es...)
}

func TestCombineTablesSharedVarJoin(t *testing.T) {
	t1 := simlist.NewTable([]string{"x"}, nil, 4)
	t1.MustAddRow([]simlist.ObjectID{1}, nil, list(4, entry(1, 3, 2)))
	t1.MustAddRow([]simlist.ObjectID{2}, nil, list(4, entry(5, 6, 4)))
	t2 := simlist.NewTable([]string{"x"}, nil, 6)
	t2.MustAddRow([]simlist.ObjectID{1}, nil, list(6, entry(2, 4, 6)))

	out := CombineTables(t1, t2, AndLists, 10)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row (x=1): joined lists; row (x=2): outer row keeping the partial 4.
	if len(out.Rows) != 2 {
		t.Fatalf("rows: %v", out)
	}
	byBinding := map[simlist.ObjectID]simlist.List{}
	for _, r := range out.Rows {
		byBinding[r.Bindings[0]] = r.List
	}
	if got := byBinding[1].At(2).Act; got != 8 {
		t.Fatalf("x=1 at 2: %g", got)
	}
	if got := byBinding[1].At(1).Act; got != 2 {
		t.Fatalf("x=1 at 1: %g", got)
	}
	if got := byBinding[2].At(5).Act; got != 4 {
		t.Fatalf("x=2 outer row: %g", got)
	}
}

func TestCombineTablesCrossJoin(t *testing.T) {
	t1 := simlist.NewTable([]string{"x"}, nil, 4)
	t1.MustAddRow([]simlist.ObjectID{1}, nil, list(4, entry(1, 2, 2)))
	t2 := simlist.NewTable([]string{"y"}, nil, 6)
	t2.MustAddRow([]simlist.ObjectID{7}, nil, list(6, entry(2, 3, 3)))
	t2.MustAddRow([]simlist.ObjectID{8}, nil, list(6, entry(9, 9, 1)))

	out := CombineTables(t1, t2, AndLists, 10)
	if len(out.ObjVars) != 2 || out.ObjVars[0] != "x" || out.ObjVars[1] != "y" {
		t.Fatalf("schema: %v", out.ObjVars)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows: %v", out)
	}
}

func TestCombineTablesEmptySides(t *testing.T) {
	t1 := simlist.NewTable([]string{"x"}, nil, 4)
	t2 := simlist.NewTable([]string{"x"}, nil, 6)
	t2.MustAddRow([]simlist.ObjectID{3}, nil, list(6, entry(1, 1, 5)))

	// t1 empty: t2's row survives as an outer row under AND.
	out := CombineTables(t1, t2, AndLists, 10)
	if len(out.Rows) != 1 || out.Rows[0].Bindings[0] != 3 || out.Rows[0].List.At(1).Act != 5 {
		t.Fatalf("out: %v", out)
	}
	// Under UNTIL the unmatched right side keeps h pointwise.
	until := func(a, b simlist.List) simlist.List { return UntilLists(a, b, 0.5) }
	out2 := CombineTables(t1, t2, until, 6)
	if len(out2.Rows) != 1 || out2.Rows[0].List.At(1).Act != 5 {
		t.Fatalf("until out: %v", out2)
	}
	// Unmatched LEFT side under UNTIL yields an empty list and is dropped.
	out3 := CombineTables(t2, t1, until, 6)
	if len(out3.Rows) != 0 {
		t.Fatalf("left-only until rows: %v", out3)
	}
}

func TestCombineTablesWildcardMatchesEverything(t *testing.T) {
	t1 := simlist.NewTable([]string{"x"}, nil, 4)
	t1.MustAddRow([]simlist.ObjectID{AnyObject}, nil, list(4, entry(1, 1, 1)))
	t2 := simlist.NewTable([]string{"x"}, nil, 6)
	t2.MustAddRow([]simlist.ObjectID{5}, nil, list(6, entry(1, 1, 2)))
	t2.MustAddRow([]simlist.ObjectID{6}, nil, list(6, entry(1, 1, 3)))

	out := CombineTables(t1, t2, AndLists, 10)
	if len(out.Rows) != 2 {
		t.Fatalf("wildcard join rows: %v", out)
	}
	for _, r := range out.Rows {
		if r.Bindings[0] == AnyObject {
			t.Fatalf("joined binding should be concrete: %v", r)
		}
	}
}

func TestCombineTablesRangeIntersection(t *testing.T) {
	t1 := simlist.NewTable(nil, []string{"h"}, 4)
	t1.MustAddRow(nil, []simlist.Range{simlist.IntAtMost(10)}, list(4, entry(1, 2, 2)))
	t2 := simlist.NewTable(nil, []string{"h"}, 6)
	t2.MustAddRow(nil, []simlist.Range{simlist.IntAtLeast(5)}, list(6, entry(2, 2, 3)))
	t2.MustAddRow(nil, []simlist.Range{simlist.IntAtLeast(11)}, list(6, entry(2, 2, 1)))

	out := CombineTables(t1, t2, AndLists, 10)
	// First pair intersects to [5,10]; second pair's ranges are disjoint, so
	// both sides survive as partial outer rows... but the t1 row DID match
	// the first t2 row, so only the second t2 row is unmatched.
	var joined, outer int
	for _, r := range out.Rows {
		if r.Ranges[0].Equal(simlist.IntRange(5, 10)) {
			joined++
			if r.List.At(2).Act != 5 {
				t.Fatalf("joined row: %v", r)
			}
		}
		if r.Ranges[0].Equal(simlist.IntAtLeast(11)) {
			outer++
			if r.List.At(2).Act != 1 {
				t.Fatalf("outer row: %v", r)
			}
		}
	}
	if joined != 1 || outer != 1 {
		t.Fatalf("rows: %v", out)
	}
}

func TestKeepRowCoverageMarkers(t *testing.T) {
	empty := simlist.Empty(5)
	if keepRow(simlist.Row{List: empty}) {
		t.Fatal("all-Any empty row should drop")
	}
	if !keepRow(simlist.Row{Ranges: []simlist.Range{simlist.IntAtLeast(3)}, List: empty}) {
		t.Fatal("constrained empty row is a coverage marker")
	}
	if !keepRow(simlist.Row{List: list(5, entry(1, 1, 1))}) {
		t.Fatal("non-empty row stays")
	}
}

func TestListRestrict(t *testing.T) {
	l := list(10, entry(1, 10, 4), entry(20, 25, 7))
	got := ListRestrict(l, []interval.I{{Beg: 5, End: 8}, {Beg: 22, End: 30}})
	want := list(10, entry(5, 8, 4), entry(22, 25, 7))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
	if got := ListRestrict(l, nil); !got.IsEmpty() {
		t.Fatalf("restrict to nothing: %v", got)
	}
}

func TestFreezeTableJoinsValues(t *testing.T) {
	// Operand table: rows over (z; h-range).
	t1 := simlist.NewTable([]string{"z"}, []string{"h"}, 8)
	t1.MustAddRow([]simlist.ObjectID{1}, []simlist.Range{simlist.IntBelow(20)}, list(8, entry(1, 5, 8)))
	t1.MustAddRow([]simlist.ObjectID{1}, []simlist.Range{simlist.IntAtLeast(20)}, list(8, entry(1, 5, 4)))

	// Value table: height(z=1) is 10 at ids 1-2 and 30 at ids 3-4.
	vt := &ValueTable{Var: "z", Rows: []ValueRow{
		{Binding: 1, Value: AttrValue{IsInt: true, Int: 10}, Ivs: []interval.I{{Beg: 1, End: 2}}},
		{Binding: 1, Value: AttrValue{IsInt: true, Int: 30}, Ivs: []interval.I{{Beg: 3, End: 4}}},
	}}
	out := FreezeTable(t1, "h", vt, "z")
	if len(out.AttrVars) != 0 || len(out.ObjVars) != 1 {
		t.Fatalf("schema: %v %v", out.ObjVars, out.AttrVars)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("rows: %v", out)
	}
	l := out.Rows[0].List
	// ids 1-2: h=10 lands in the <20 row (8); ids 3-4: h=30 lands in the
	// >=20 row (4); id 5: height undefined -> 0.
	for id, want := range map[int]float64{1: 8, 2: 8, 3: 4, 4: 4, 5: 0} {
		if got := l.At(id).Act; got != want {
			t.Errorf("at %d: %g want %g", id, got, want)
		}
	}
}

func TestFreezeTableVacuous(t *testing.T) {
	t1 := simlist.NewTable([]string{"z"}, nil, 8)
	t1.MustAddRow([]simlist.ObjectID{1}, nil, list(8, entry(1, 2, 3)))
	out := FreezeTable(t1, "h", &ValueTable{}, "")
	if out != t1 {
		t.Fatal("freeze without the variable in scope is the identity")
	}
}

func TestFreezeTableAddsVarColumn(t *testing.T) {
	// Operand mentions h but not z: the value table's binding introduces z.
	t1 := simlist.NewTable(nil, []string{"h"}, 8)
	t1.MustAddRow(nil, []simlist.Range{simlist.IntAtLeast(0)}, list(8, entry(1, 4, 2)))
	vt := &ValueTable{Var: "z", Rows: []ValueRow{
		{Binding: 9, Value: AttrValue{IsInt: true, Int: 5}, Ivs: []interval.I{{Beg: 2, End: 3}}},
	}}
	out := FreezeTable(t1, "h", vt, "z")
	if len(out.ObjVars) != 1 || out.ObjVars[0] != "z" {
		t.Fatalf("schema: %v", out.ObjVars)
	}
	if len(out.Rows) != 1 || out.Rows[0].Bindings[0] != 9 {
		t.Fatalf("rows: %v", out)
	}
	if got := out.Rows[0].List.At(2).Act; got != 2 {
		t.Fatalf("restricted: %v", out.Rows[0].List)
	}
}

func TestFreezeTableStringValues(t *testing.T) {
	t1 := simlist.NewTable(nil, []string{"g"}, 8)
	t1.MustAddRow(nil, []simlist.Range{simlist.StrEq("western")}, list(8, entry(1, 9, 5)))
	vt := &ValueTable{Rows: []ValueRow{
		{Value: AttrValue{Str: "western"}, Ivs: []interval.I{{Beg: 1, End: 3}}},
		{Value: AttrValue{Str: "news"}, Ivs: []interval.I{{Beg: 4, End: 9}}},
	}}
	out := FreezeTable(t1, "g", vt, "")
	if len(out.Rows) != 1 {
		t.Fatalf("rows: %v", out)
	}
	if got := out.Rows[0].List; got.At(2).Act != 5 || got.At(5).Act != 0 {
		t.Fatalf("list: %v", got)
	}
}

func TestProjectMax(t *testing.T) {
	tb := simlist.NewTable([]string{"x"}, nil, 9)
	tb.MustAddRow([]simlist.ObjectID{1}, nil, list(9, entry(1, 4, 3)))
	tb.MustAddRow([]simlist.ObjectID{2}, nil, list(9, entry(3, 6, 7)))
	got := ProjectMax(tb)
	want := list(9, entry(1, 2, 3), entry(3, 6, 7))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
	if got := ProjectMax(simlist.NewTable(nil, nil, 5)); !got.IsEmpty() || got.MaxSim != 5 {
		t.Fatalf("empty table: %v", got)
	}
}

func TestAttrValueInRange(t *testing.T) {
	iv := AttrValue{IsInt: true, Int: 7}
	sv := AttrValue{Str: "x"}
	if !iv.InRange(simlist.IntRange(1, 10)) || iv.InRange(simlist.IntRange(8, 10)) {
		t.Fatal("int range check")
	}
	if !sv.InRange(simlist.StrEq("x")) || sv.InRange(simlist.StrEq("y")) {
		t.Fatal("string range check")
	}
	if !iv.InRange(simlist.AnyRange()) || !sv.InRange(simlist.AnyRange()) {
		t.Fatal("any range check")
	}
	if iv.String() != "7" || sv.String() != `"x"` {
		t.Fatal("AttrValue strings")
	}
}
