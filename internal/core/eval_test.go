package core

import (
	"strings"
	"testing"

	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

func mustParse(t *testing.T, q string) htl.Formula {
	t.Helper()
	f, err := htl.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return f
}

// stubSource is a hand-scripted Source for evaluator unit tests: atomic
// tables, value tables and child sequences are looked up by formula text.
type stubSource struct {
	n      int
	max    map[string]float64
	tables map[string]*simlist.Table
	values map[string]*ValueTable
	childs map[int]Source
}

func (s stubSource) Len() int { return s.n }

func (s stubSource) AtomicMaxSim(f htl.Formula) float64 {
	if m, ok := s.max[f.String()]; ok {
		return m
	}
	switch n := f.(type) {
	case htl.And:
		return s.AtomicMaxSim(n.L) + s.AtomicMaxSim(n.R)
	case htl.Not:
		return s.AtomicMaxSim(n.F)
	case htl.Exists:
		return s.AtomicMaxSim(n.F)
	case htl.Freeze:
		return s.AtomicMaxSim(n.F)
	default:
		return 1
	}
}

func (s stubSource) EvalAtomic(f htl.Formula) (*simlist.Table, error) {
	if t, ok := s.tables[f.String()]; ok {
		return t, nil
	}
	return simlist.NewTable(nil, nil, s.AtomicMaxSim(f)), nil
}

func (s stubSource) ValueTable(q htl.AttrFn) (*ValueTable, error) {
	if vt, ok := s.values[q.String()]; ok {
		return vt, nil
	}
	return &ValueTable{Var: q.Of}, nil
}

func (s stubSource) ChildSource(id int, ref htl.LevelRef) (Source, error) {
	if c, ok := s.childs[id]; ok {
		return c, nil
	}
	return nil, nil
}

func closedTable(max float64, es ...simlist.Entry) *simlist.Table {
	t := simlist.NewTable(nil, nil, max)
	t.MustAddRow(nil, nil, simlist.NewList(max, es...))
	return t
}

func TestEvalType1Composition(t *testing.T) {
	src := stubSource{
		n:   10,
		max: map[string]float64{"A": 4, "B": 6},
		tables: map[string]*simlist.Table{
			"A": closedTable(4, entry(1, 3, 4)),
			"B": closedTable(6, entry(3, 5, 6)),
		},
	}
	got, err := Eval(src, mustParse(t, "A and next B"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// next B covers 2-4@6; A covers 1-3@4.
	want := simlist.NewList(10, entry(1, 1, 4), entry(2, 3, 10), entry(4, 4, 6))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalType2BindingsFlow(t *testing.T) {
	// P(x) strong for object 1 early, Q(x) strong for object 1 late; object
	// 2 only has P.
	p := simlist.NewTable([]string{"x"}, nil, 4)
	p.MustAddRow([]simlist.ObjectID{1}, nil, simlist.NewList(4, entry(1, 2, 4)))
	p.MustAddRow([]simlist.ObjectID{2}, nil, simlist.NewList(4, entry(1, 2, 2)))
	q := simlist.NewTable([]string{"x"}, nil, 6)
	q.MustAddRow([]simlist.ObjectID{1}, nil, simlist.NewList(6, entry(4, 4, 6)))

	src := stubSource{
		n:   5,
		max: map[string]float64{"P(x)": 4, "Q(x)": 6},
		tables: map[string]*simlist.Table{
			"P(x)": p,
			"Q(x)": q,
		},
	}
	got, err := Eval(src, mustParse(t, "exists x . P(x) and eventually Q(x)"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// x=1: P 4 @1-2 plus eventually Q 6 @1-4 => 10 @1-2, 6 @3-4.
	// x=2: only P 2 @1-2 (no Q for x=2). Projection takes the max.
	want := simlist.NewList(10, entry(1, 2, 10), entry(3, 4, 6))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalFreezeAgainstValueTable(t *testing.T) {
	// Operand table keyed by the h-range rows an atomic would emit for
	// `brightness > h`, and a closed atom A.
	cmp := simlist.NewTable(nil, []string{"h"}, 2)
	cmp.MustAddRow(nil, []simlist.Range{simlist.IntBelow(7)}, simlist.NewList(2, entry(2, 2, 2)))
	cmp.MustAddRow(nil, []simlist.Range{simlist.IntAtLeast(7)}, simlist.Empty(2))

	src := stubSource{
		n:   3,
		max: map[string]float64{"brightness > h": 2, "A": 4},
		tables: map[string]*simlist.Table{
			"brightness > h": cmp,
			"A":              closedTable(4, entry(1, 3, 4)),
		},
		values: map[string]*ValueTable{
			"brightness": {Rows: []ValueRow{
				{Value: AttrValue{IsInt: true, Int: 3}, Ivs: []interval.I{{Beg: 1, End: 1}}},
				{Value: AttrValue{IsInt: true, Int: 9}, Ivs: []interval.I{{Beg: 2, End: 3}}},
			}},
		},
	}
	got, err := Eval(src, mustParse(t, "[h <- brightness] (A and eventually brightness > h)"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At id 1: h=3; eventually (brightness>h) sees the satisfied row's
	// entry at 2 => 2; plus A 4 => 6. At id 2,3: h=9 lands in the >=7 row,
	// empty => A only, 4.
	want := simlist.NewList(6, entry(1, 1, 6), entry(2, 3, 4))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalAtLevelGrouping(t *testing.T) {
	child1 := stubSource{
		n:      2,
		max:    map[string]float64{"A": 4},
		tables: map[string]*simlist.Table{"A": closedTable(4, entry(1, 1, 3))},
	}
	child2 := stubSource{
		n:      2,
		max:    map[string]float64{"A": 4},
		tables: map[string]*simlist.Table{"A": closedTable(4, entry(2, 2, 4))},
	}
	src := stubSource{
		n:      3,
		max:    map[string]float64{"A": 4},
		childs: map[int]Source{1: child1, 2: child2},
	}
	got, err := Eval(src, mustParse(t, "at-next-level(A)"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: A at first child = 3. Segment 2: A holds at child 2, not
	// child 1 => 0. Segment 3: no children => 0.
	want := simlist.NewList(4, entry(1, 1, 3))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestEvalAtLevelBindingsFlow(t *testing.T) {
	// P(x) holds for different objects in different children; the at-level
	// table must keep one row per binding across parent segments.
	mk := func(obj simlist.ObjectID, act float64) stubSource {
		tb := simlist.NewTable([]string{"x"}, nil, 4)
		tb.MustAddRow([]simlist.ObjectID{obj}, nil, simlist.NewList(4, entry(1, 1, act)))
		return stubSource{n: 1, max: map[string]float64{"P(x)": 4},
			tables: map[string]*simlist.Table{"P(x)": tb}}
	}
	src := stubSource{
		n:      3,
		max:    map[string]float64{"P(x)": 4},
		childs: map[int]Source{1: mk(7, 2), 2: mk(8, 3), 3: mk(7, 4)},
	}
	tb, err := EvalTable(src, mustParse(t, "exists x . at-next-level(P(x))").(htl.Exists).F, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %v", tb)
	}
	byObj := map[simlist.ObjectID]simlist.List{}
	for _, r := range tb.Rows {
		byObj[r.Bindings[0]] = r.List
	}
	if byObj[7].At(1).Act != 2 || byObj[7].At(3).Act != 4 || byObj[8].At(2).Act != 3 {
		t.Fatalf("grouped lists: %v", tb)
	}
	// Projection takes the per-id max over bindings.
	got := ProjectMax(tb)
	want := simlist.NewList(4, entry(1, 1, 2), entry(2, 2, 3), entry(3, 3, 4))
	if !simlist.Equal(got, want) {
		t.Fatalf("projection: %v", got)
	}
}

func TestCombineTablesTwoSharedVars(t *testing.T) {
	t1 := simlist.NewTable([]string{"x", "y"}, nil, 4)
	t1.MustAddRow([]simlist.ObjectID{1, 2}, nil, list(4, entry(1, 1, 4)))
	t1.MustAddRow([]simlist.ObjectID{1, 3}, nil, list(4, entry(2, 2, 4)))
	t2 := simlist.NewTable([]string{"y", "x"}, nil, 6)
	t2.MustAddRow([]simlist.ObjectID{2, 1}, nil, list(6, entry(1, 1, 6)))
	out := CombineTables(t1, t2, AndLists, 10)
	// Only (x=1, y=2) joins; (1,3) survives as a partial outer row.
	if len(out.Rows) != 2 {
		t.Fatalf("rows: %v", out)
	}
	for _, r := range out.Rows {
		if r.Bindings[0] == 1 && r.Bindings[1] == 2 {
			if r.List.At(1).Act != 10 {
				t.Fatalf("joined: %v", r.List)
			}
		} else if r.List.At(2).Act != 4 {
			t.Fatalf("outer: %v", r.List)
		}
	}
}

func TestEvalRejectsGeneral(t *testing.T) {
	src := stubSource{n: 3}
	_, err := Eval(src, mustParse(t, "not (A until B)"), DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "extended conjunctive") {
		t.Fatalf("err = %v", err)
	}
	var nc *ErrNotConjunctive
	if !errorsAs(err, &nc) {
		t.Fatalf("error type: %T", err)
	}
}

func errorsAs(err error, target **ErrNotConjunctive) bool {
	for err != nil {
		if e, ok := err.(*ErrNotConjunctive); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestEvalTableExposesRows(t *testing.T) {
	p := simlist.NewTable([]string{"x"}, nil, 4)
	p.MustAddRow([]simlist.ObjectID{1}, nil, simlist.NewList(4, entry(1, 1, 4)))
	src := stubSource{
		n:      2,
		max:    map[string]float64{"P(x)": 4},
		tables: map[string]*simlist.Table{"P(x)": p},
	}
	tb, err := EvalTable(src, mustParse(t, "exists x . eventually P(x)").(htl.Exists).F, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0].Bindings[0] != 1 {
		t.Fatalf("table: %v", tb)
	}
}
