package core

import (
	"context"
	"fmt"
	"time"

	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/obs"
	"htlvideo/internal/simlist"
)

// Options control the evaluation of HTL formulas.
type Options struct {
	// UntilThreshold is the minimum fractional similarity the left side of
	// `until` must reach to count as satisfied while waiting for the right
	// side (§2.5).
	UntilThreshold float64
	// And selects the conjunction similarity function (§5's "other
	// similarity functions"); the default AndSum is the paper's semantics.
	And AndMode
	// Obs receives per-operation work counts (atomic evaluations, temporal
	// merges, memo hits); nil disables the accounting at no cost.
	Obs *obs.EngineMetrics
	// Prof receives per-plan-node accounting (visits, memo hits, rows,
	// inclusive wall time) for EXPLAIN ANALYZE; nil disables it. Prof must
	// have been built for the plan under evaluation (NewPlanProfile) — nodes
	// of other plans are ignored.
	Prof *PlanProfile
}

// DefaultOptions returns the library defaults.
func DefaultOptions() Options {
	return Options{UntilThreshold: DefaultUntilThreshold}
}

// ErrNotConjunctive reports a formula outside the extended conjunctive class,
// which the similarity-list generator cannot evaluate; callers may fall back
// to the reference evaluator.
type ErrNotConjunctive struct {
	Formula htl.Formula
	Reason  string
}

func (e *ErrNotConjunctive) Error() string {
	return fmt.Sprintf("core: formula %q is outside the extended conjunctive class: %s", e.Formula, e.Reason)
}

// Eval computes the similarity list of a closed formula f of the extended
// conjunctive class over the sequence supplied by src, using the paper's §3
// algorithms. The resulting list maps segment ids (1-based positions in the
// sequence) to similarity values.
func Eval(src Source, f htl.Formula, opts Options) (simlist.List, error) {
	return EvalCtx(context.Background(), src, f, opts)
}

// EvalCtx is Eval with cooperative cancellation: the evaluator checks ctx at
// every subformula and at every segment of a level-modal scan, so deadlines
// and cancellation stop work mid-evaluation rather than only between calls.
// It compiles f on the fly; callers evaluating one formula repeatedly should
// compile once and use EvalPlanCtx.
func EvalCtx(ctx context.Context, src Source, f htl.Formula, opts Options) (simlist.List, error) {
	return EvalPlanCtx(ctx, src, CompilePlan(f), opts)
}

// EvalPlanCtx evaluates a compiled plan (see CompilePlan) over src's
// sequence. Structurally identical subformulas share a plan node, so their
// similarity tables are computed once per evaluation and memo hits are
// reported through opts.Obs.
func EvalPlanCtx(ctx context.Context, src Source, p *Plan, opts Options) (simlist.List, error) {
	if p.Class == htl.ClassGeneral {
		return simlist.List{}, &ErrNotConjunctive{Formula: p.Root.F, Reason: "negation or quantification over a temporal subformula"}
	}
	// Strip the existential prefix; the final projection maximizes over all
	// evaluations regardless of the prefix variables (§3.2 part two).
	g := p.Root
	var prefix []*PNode
	for {
		if _, ok := g.F.(htl.Exists); !ok {
			break
		}
		prefix = append(prefix, g)
		g = g.Kids[0]
	}
	e := newPlanEval(src, opts)
	e.phys = p.phys.Load()
	var start time.Time
	if opts.Prof != nil && len(prefix) > 0 {
		start = time.Now()
	}
	t, err := e.eval(ctx, g)
	if err != nil {
		return simlist.List{}, err
	}
	// The prefix nodes are identities at evaluation time, but the profile
	// still owes them a visit and the inclusive time of their scope —
	// otherwise an explain tree shows an unvisited root over a busy child.
	if opts.Prof != nil && len(prefix) > 0 {
		d := time.Since(start)
		for _, n := range prefix {
			opts.Prof.Visit(n)
			opts.Prof.AddTime(n, d)
		}
	}
	return ProjectMax(t), nil
}

// EvalTable computes the similarity table of a (possibly open) extended
// conjunctive formula over src's sequence; exposed for the SQL baseline and
// for tests.
func EvalTable(src Source, f htl.Formula, opts Options) (*simlist.Table, error) {
	return EvalTableCtx(context.Background(), src, f, opts)
}

// EvalTableCtx is EvalTable with cooperative cancellation.
func EvalTableCtx(ctx context.Context, src Source, f htl.Formula, opts Options) (*simlist.Table, error) {
	p := CompilePlan(f)
	e := newPlanEval(src, opts)
	e.phys = p.phys.Load()
	return e.eval(ctx, p.Root)
}

// MaxSimOf returns the maximum possible similarity of f, which depends only
// on the formula (§2.5).
func MaxSimOf(src Source, f htl.Formula) float64 {
	if htl.NonTemporal(f) {
		return src.AtomicMaxSim(f)
	}
	switch n := f.(type) {
	case htl.And:
		return MaxSimOf(src, n.L) + MaxSimOf(src, n.R)
	case htl.Until:
		return MaxSimOf(src, n.R)
	case htl.Next:
		return MaxSimOf(src, n.F)
	case htl.Eventually:
		return MaxSimOf(src, n.F)
	case htl.Exists:
		return MaxSimOf(src, n.F)
	case htl.Freeze:
		return MaxSimOf(src, n.F)
	case htl.AtLevel:
		return MaxSimOf(src, n.F)
	case htl.Not:
		return MaxSimOf(src, n.F)
	default:
		return 0
	}
}

// planEval evaluates a plan's nodes over one source, memoizing per node.
// Tables are treated as immutable once computed, so a memoized table may be
// handed to several parents (and even to both sides of one join).
type planEval struct {
	src  Source
	opts Options
	memo map[*PNode]*simlist.Table
	// phys is the physical annotation loaded once per evaluation (a
	// mid-query Reoptimize cannot split one video's choices); nil means
	// syntactic order with no short-circuits beyond until's default.
	phys *physPlan
}

func newPlanEval(src Source, opts Options) *planEval {
	return &planEval{src: src, opts: opts, memo: map[*PNode]*simlist.Table{}}
}

// gateFirst reports the physical plan's choice to evaluate n's second
// operand before its first.
func (e *planEval) gateFirst(n *PNode) bool {
	return e.phys != nil && n.ID < len(e.phys.gateFirst) && e.phys.gateFirst[n.ID]
}

func (e *planEval) eval(ctx context.Context, n *PNode) (*simlist.Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.opts.Prof.Visit(n)
	if t, ok := e.memo[n]; ok {
		e.opts.Obs.MemoHit()
		e.opts.Prof.MemoHit(n)
		return t, nil
	}
	// Inclusive timing: children evaluate inside this window, memo hits on
	// shared children cost (and attribute) nothing. Two clock reads per
	// computed node per video — each node computes at most once per video —
	// keep always-on profiling in the noise.
	var start time.Time
	if e.opts.Prof != nil {
		start = time.Now()
	}
	t, err := e.evalNode(ctx, n)
	if err != nil {
		return nil, err
	}
	e.memo[n] = t
	if e.opts.Prof != nil {
		e.opts.Prof.Record(n, time.Since(start), t)
	}
	return t, nil
}

func (e *planEval) evalNode(ctx context.Context, n *PNode) (*simlist.Table, error) {
	if n.NonTemporal {
		e.opts.Obs.AtomicEval()
		e.opts.Prof.AtomicEval(n)
		return e.src.EvalAtomic(n.F)
	}
	switch n.F.(type) {
	case htl.And:
		kl, kr := n.Kids[0], n.Kids[1]
		first, second := kl, kr
		if e.gateFirst(n) {
			first, second = second, first
		}
		tf, err := e.eval(ctx, first)
		if err != nil {
			return nil, err
		}
		// Empty-side short-circuit, AndMin only: one empty conjunct forces
		// the minimum fraction to zero everywhere, while AndSum keeps the
		// other side's one-sided entries. Byte-safe only when the skipped
		// side cannot contribute constrained attribute ranges — an
		// empty-list row with a constrained range survives the outer join
		// as a coverage marker, so such a side must still evaluate.
		if e.opts.And == AndMin && len(tf.Rows) == 0 && len(second.AttrVars) == 0 {
			e.opts.Prof.SkipTree(second)
			ms := tf.MaxSim + MaxSimOf(e.src, second.F)
			if second == kr {
				return emptyJoin(tf.ObjVars, tf.AttrVars, kr.ObjVars, kr.AttrVars, ms), nil
			}
			return emptyJoin(kl.ObjVars, kl.AttrVars, tf.ObjVars, tf.AttrVars, ms), nil
		}
		ts, err := e.eval(ctx, second)
		if err != nil {
			return nil, err
		}
		// Evaluation order is the optimizer's choice; the combine keeps the
		// syntactic operand order, so output tables are byte-identical
		// whichever side computed first.
		t1, t2 := tf, ts
		if first != kl {
			t1, t2 = ts, tf
		}
		and := func(l1, l2 simlist.List) simlist.List {
			e.opts.Obs.Merge()
			e.opts.Prof.Merge(n)
			return AndListsMode(l1, l2, e.opts.And)
		}
		return CombineTables(t1, t2, and, t1.MaxSim+t2.MaxSim), nil
	case htl.Until:
		kg, kh := n.Kids[0], n.Kids[1]
		until := func(l1, l2 simlist.List) simlist.List {
			e.opts.Obs.Merge()
			e.opts.Prof.Merge(n)
			return UntilLists(l1, l2, e.opts.UntilThreshold)
		}
		if e.gateFirst(n) {
			th, err := e.eval(ctx, kh)
			if err != nil {
				return nil, err
			}
			// Only the right side gates emptiness: with no h rows at all,
			// every left row outer-joins against the empty list and
			// UntilLists yields the empty list, so a row survives only as
			// a range-constrained coverage marker. When the left side has
			// no attribute variables it cannot produce such markers and
			// the whole subtree is skipped.
			if len(th.Rows) == 0 && len(kg.AttrVars) == 0 {
				e.opts.Prof.SkipTree(kg)
				return emptyJoin(kg.ObjVars, kg.AttrVars, th.ObjVars, th.AttrVars, th.MaxSim), nil
			}
			tg, err := e.eval(ctx, kg)
			if err != nil {
				return nil, err
			}
			return CombineTables(tg, th, until, th.MaxSim), nil
		}
		t1, err := e.eval(ctx, kg)
		if err != nil {
			return nil, err
		}
		t2, err := e.eval(ctx, kh)
		if err != nil {
			return nil, err
		}
		return CombineTables(t1, t2, until, t2.MaxSim), nil
	case htl.Next:
		return e.mapRows(ctx, n, NextList)
	case htl.Eventually:
		return e.mapRows(ctx, n, EventuallyList)
	case htl.Freeze:
		x := n.F.(htl.Freeze)
		t1, err := e.eval(ctx, n.Kids[0])
		if err != nil {
			return nil, err
		}
		vt, err := e.src.ValueTable(x.Attr)
		if err != nil {
			return nil, err
		}
		return FreezeTable(t1, x.Var, vt, x.Attr.Of), nil
	case htl.AtLevel:
		return e.evalAtLevel(ctx, n)
	case htl.Exists:
		return nil, &ErrNotConjunctive{Formula: n.F, Reason: "existential quantifier over a temporal subformula not at the beginning"}
	case htl.Not:
		return nil, &ErrNotConjunctive{Formula: n.F, Reason: "negation of a temporal subformula"}
	default:
		return nil, &ErrNotConjunctive{Formula: n.F, Reason: fmt.Sprintf("unsupported node %T", n.F)}
	}
}

// mapRows evaluates n's operand node and applies a per-list operator
// (`next`, `eventually`) to every row, dropping rows that become empty.
func (e *planEval) mapRows(ctx context.Context, n *PNode, op func(simlist.List) simlist.List) (*simlist.Table, error) {
	t, err := e.eval(ctx, n.Kids[0])
	if err != nil {
		return nil, err
	}
	out := simlist.NewTable(t.ObjVars, t.AttrVars, t.MaxSim)
	out.Rows = make([]simlist.Row, 0, len(t.Rows))
	for _, r := range t.Rows {
		e.opts.Obs.Merge()
		e.opts.Prof.Merge(n)
		row := simlist.Row{Bindings: r.Bindings, Ranges: r.Ranges, List: op(r.List)}
		if keepRow(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// evalAtLevel evaluates a level-modal operator (§2.5): the similarity of
// at-L(g) at segment u is the similarity of g at the first element of u's
// descendant sequence at level L, or 0 when there is none. Free variables of
// g flow through: each distinct evaluation of g becomes a row over the
// parent sequence.
func (e *planEval) evalAtLevel(ctx context.Context, n *PNode) (*simlist.Table, error) {
	x := n.F.(htl.AtLevel)
	kid := n.Kids[0]
	objVars, attrVars := kid.ObjVars, kid.AttrVars
	maxSim := MaxSimOf(e.src, x.F)
	out := simlist.NewTable(objVars, attrVars, maxSim)

	type acc struct {
		bindings []simlist.ObjectID
		ranges   []simlist.Range
		entries  []simlist.Entry
	}
	groups := map[string]*acc{}
	var order []string

	for id := 1; id <= e.src.Len(); id++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := e.src.ChildSource(id, x.Level)
		if err != nil {
			return nil, err
		}
		if cs == nil || cs.Len() == 0 {
			continue
		}
		// Each child sequence is a fresh source, so the child evaluation
		// gets its own memo (nodes still dedupe *within* the child tree);
		// the physical annotation carries through unchanged.
		ce := newPlanEval(cs, e.opts)
		ce.phys = e.phys
		ct, err := ce.eval(ctx, kid)
		if err != nil {
			return nil, err
		}
		for _, row := range ct.Rows {
			sim := row.List.At(1) // similarity at the first descendant
			bindings, ranges := remapRow(ct, row, objVars, attrVars)
			if sim.Act <= 0 && !anyConstrained(ranges) {
				continue
			}
			k := rowKey(bindings, ranges)
			g := groups[k]
			if g == nil {
				g = &acc{bindings: bindings, ranges: ranges}
				groups[k] = g
				order = append(order, k)
			}
			if sim.Act > 0 {
				g.entries = append(g.entries, simlist.Entry{Iv: interval.Point(id), Act: sim.Act})
			}
		}
	}
	for _, k := range order {
		g := groups[k]
		e.opts.Obs.Merge()
		e.opts.Prof.Merge(n)
		row := simlist.Row{
			Bindings: g.bindings,
			Ranges:   g.ranges,
			List:     simlist.Normalize(maxSim, g.entries).Canonical(),
		}
		if keepRow(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// emptyJoin builds the zero-row table a short-circuited combine is proven
// to produce: the join's column union (first-operand columns, then the
// second operand's extras — the same order makeJoinSchema derives) with no
// rows. Downstream operators look columns up by name, so a zero-row table
// with the right names and MaxSim is indistinguishable from the computed one.
func emptyJoin(obj1, attr1, obj2, attr2 []string, maxSim float64) *simlist.Table {
	return simlist.NewTable(unionVars(obj1, obj2), unionVars(attr1, attr2), maxSim)
}

func unionVars(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, v := range b {
		seen := false
		for _, u := range out {
			if u == v {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

func anyConstrained(ranges []simlist.Range) bool {
	for _, r := range ranges {
		if r.Kind != simlist.RangeAny {
			return true
		}
	}
	return false
}

// remapRow aligns a child table's row onto the canonical column order;
// columns the child table lacks become wildcards/unconstrained.
func remapRow(t *simlist.Table, r simlist.Row, objVars, attrVars []string) ([]simlist.ObjectID, []simlist.Range) {
	bindings := make([]simlist.ObjectID, len(objVars))
	for i, v := range objVars {
		if c := t.ObjIndex(v); c >= 0 {
			bindings[i] = r.Bindings[c]
		} else {
			bindings[i] = AnyObject
		}
	}
	ranges := make([]simlist.Range, len(attrVars))
	for i, v := range attrVars {
		if c := t.AttrIndex(v); c >= 0 {
			ranges[i] = r.Ranges[c]
		} else {
			ranges[i] = simlist.AnyRange()
		}
	}
	return bindings, ranges
}
