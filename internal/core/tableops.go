package core

import (
	"sync"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// tableops implements the similarity-table algebra of §3.2–3.3: binary
// combination of two tables under a list operator (with a full outer join on
// the shared object variables so that partially matched evaluations keep
// their partial similarity, as §2.5's conjunction semantics requires), the
// freeze-operator join against a value table, and existential projection.
//
// The join is a query hot path (one CombineTables per and/until node per
// video), so its transient state — hash keys, the matched bitmap, the
// probe-all index list — lives in a pooled scratch, and the binding/range
// slices that rows retain are carved from block arenas instead of being
// allocated one tiny slice at a time.

// listCombiner combines the similarity lists of two joined rows.
type listCombiner func(l1, l2 simlist.List) simlist.List

// joinSchema precomputes column alignment for a table join.
type joinSchema struct {
	objVars  []string
	attrVars []string
	// obj1/obj2 map output object columns to input columns (-1 = absent).
	obj1, obj2 []int
	att1, att2 []int
	// shared object columns as (col1, col2) index pairs, for hashing.
	sharedObj [][2]int
}

func makeJoinSchema(t1, t2 *simlist.Table) joinSchema {
	var s joinSchema
	s.objVars = append(s.objVars, t1.ObjVars...)
	for _, v := range t2.ObjVars {
		if t1.ObjIndex(v) < 0 {
			s.objVars = append(s.objVars, v)
		}
	}
	s.attrVars = append(s.attrVars, t1.AttrVars...)
	for _, v := range t2.AttrVars {
		if t1.AttrIndex(v) < 0 {
			s.attrVars = append(s.attrVars, v)
		}
	}
	for _, v := range s.objVars {
		i1, i2 := t1.ObjIndex(v), t2.ObjIndex(v)
		s.obj1 = append(s.obj1, i1)
		s.obj2 = append(s.obj2, i2)
		if i1 >= 0 && i2 >= 0 {
			s.sharedObj = append(s.sharedObj, [2]int{i1, i2})
		}
	}
	for _, v := range s.attrVars {
		s.att1 = append(s.att1, t1.AttrIndex(v))
		s.att2 = append(s.att2, t2.AttrIndex(v))
	}
	return s
}

// joinScratch is the transient per-join state, pooled across joins. Nothing
// in it escapes into the output table.
type joinScratch struct {
	key      []byte
	matched2 []bool
	allIdx   []int
}

var joinScratchPool = sync.Pool{New: func() any { return new(joinScratch) }}

// bools returns a zeroed []bool of length n backed by the scratch.
func (s *joinScratch) bools(n int) []bool {
	if cap(s.matched2) < n {
		s.matched2 = make([]bool, n)
	} else {
		s.matched2 = s.matched2[:n]
		clear(s.matched2)
	}
	return s.matched2
}

// iota returns [0, 1, ..., n-1] backed by the scratch.
func (s *joinScratch) iota(n int) []int {
	if cap(s.allIdx) < n {
		s.allIdx = make([]int, n)
	} else {
		s.allIdx = s.allIdx[:n]
	}
	for i := range s.allIdx {
		s.allIdx[i] = i
	}
	return s.allIdx
}

// rowArena block-allocates the binding and range slices that output rows
// retain: many small per-row slices collapse into a few block allocations.
// Slices are carved with full slice expressions so a later append on a row
// cannot clobber its neighbour; blocks are never reused or pooled, since the
// produced table owns them.
type rowArena struct {
	ids []simlist.ObjectID
	rgs []simlist.Range
}

const arenaBlock = 256

func (a *rowArena) bindings(n int) []simlist.ObjectID {
	if n == 0 {
		return nil
	}
	if len(a.ids) < n {
		a.ids = make([]simlist.ObjectID, max(arenaBlock, n))
	}
	s := a.ids[0:n:n]
	a.ids = a.ids[n:]
	return s
}

func (a *rowArena) ranges(n int) []simlist.Range {
	if n == 0 {
		return nil
	}
	if len(a.rgs) < n {
		a.rgs = make([]simlist.Range, max(arenaBlock, n))
	}
	s := a.rgs[0:n:n]
	a.rgs = a.rgs[n:]
	return s
}

// CombineTables joins two similarity tables on their shared object-variable
// columns (equality, with AnyObject as wildcard) and shared attribute-
// variable columns (range intersection), combining the similarity lists of
// joined rows with op. Rows of either table that match no row of the other
// are kept — joined against an empty list, with wildcard bindings and
// unconstrained ranges for the other table's exclusive columns — so that
// partial satisfaction survives, matching the §2.5 semantics of ∧ (and of
// until, whose result is monotone in its left operand's coverage).
// Rows whose combined list is empty are dropped. maxSim is the maximum
// similarity of the combined formula.
func CombineTables(t1, t2 *simlist.Table, op listCombiner, maxSim float64) *simlist.Table {
	s := makeJoinSchema(t1, t2)
	out := simlist.NewTable(s.objVars, s.attrVars, maxSim)
	if n := max(len(t1.Rows), len(t2.Rows)); n > 0 {
		out.Rows = make([]simlist.Row, 0, n)
	}

	sc := joinScratchPool.Get().(*joinScratch)
	defer joinScratchPool.Put(sc)
	var ar rowArena

	// Hash t2's rows by shared-object-variable key. Wildcard bindings cannot
	// be hashed to one bucket, so rows with a wildcard in a shared column go
	// to a probe-all list.
	hashed := map[string][]int{}
	var probeAll []int
	for i, r := range t2.Rows {
		sc.key = sc.key[:0]
		wild := false
		for _, p := range s.sharedObj {
			v := r.Bindings[p[1]]
			if v == AnyObject {
				wild = true
				break
			}
			sc.key = appendID(sc.key, v)
		}
		if wild {
			probeAll = append(probeAll, i)
		} else {
			hashed[string(sc.key)] = append(hashed[string(sc.key)], i)
		}
	}

	matched2 := sc.bools(len(t2.Rows))
	empty1 := simlist.Empty(t1.MaxSim)
	empty2 := simlist.Empty(t2.MaxSim)

	for _, r1 := range t1.Rows {
		wild1 := false
		for _, p := range s.sharedObj {
			if r1.Bindings[p[0]] == AnyObject {
				wild1 = true
				break
			}
		}
		// Candidate rows of t2: everything for a wildcard on our side;
		// otherwise the probe-all rows plus our hash bucket. The two slices
		// are walked in place — no combined candidate list is materialized.
		var cands [2][]int
		if wild1 {
			cands[0] = sc.iota(len(t2.Rows))
		} else {
			cands[0] = probeAll
			sc.key = sc.key[:0]
			for _, p := range s.sharedObj {
				sc.key = appendID(sc.key, r1.Bindings[p[0]])
			}
			cands[1] = hashed[string(sc.key)]
		}
		matched1 := false
		for _, idxs := range &cands {
			for _, i2 := range idxs {
				row, ok := joinRows(&s, &ar, r1, t2.Rows[i2], op)
				if !ok {
					continue
				}
				matched1, matched2[i2] = true, true
				if keepRow(row) {
					out.Rows = append(out.Rows, row)
				}
			}
		}
		if !matched1 {
			row := outerRow(&s, &ar, r1, nil, op, empty2)
			if keepRow(row) {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	for i2 := range t2.Rows {
		if matched2[i2] {
			continue
		}
		row := outerRow(&s, &ar, simlist.Row{}, &t2.Rows[i2], op, empty1)
		if keepRow(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// keepRow decides whether a computed row stays in a table. Rows with empty
// similarity lists are usually useless, but when they constrain an attribute
// variable they are coverage markers: a table's rows partition the
// attribute-variable space, and a later join or freeze must be able to land
// in the zero-similarity part of that partition.
func keepRow(row simlist.Row) bool {
	if !row.List.IsEmpty() {
		return true
	}
	for _, r := range row.Ranges {
		if r.Kind != simlist.RangeAny {
			return true
		}
	}
	return false
}

// appendID appends a fixed-width little-endian encoding of v, keeping
// concatenated keys unambiguous.
func appendID(b []byte, v simlist.ObjectID) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// joinRows attempts to join one row from each table; ok is false when the
// shared bindings conflict or a shared attribute range intersection is
// empty.
func joinRows(s *joinSchema, ar *rowArena, r1, r2 simlist.Row, op listCombiner) (simlist.Row, bool) {
	for _, p := range s.sharedObj {
		a, b := r1.Bindings[p[0]], r2.Bindings[p[1]]
		if a != AnyObject && b != AnyObject && a != b {
			return simlist.Row{}, false
		}
	}
	bindings := ar.bindings(len(s.objVars))
	for c := range s.objVars {
		v := AnyObject
		if s.obj1[c] >= 0 {
			v = r1.Bindings[s.obj1[c]]
		}
		if v == AnyObject && s.obj2[c] >= 0 {
			v = r2.Bindings[s.obj2[c]]
		}
		bindings[c] = v
	}
	ranges := ar.ranges(len(s.attrVars))
	for c := range s.attrVars {
		r := simlist.AnyRange()
		if s.att1[c] >= 0 {
			r = r.Intersect(r1.Ranges[s.att1[c]])
		}
		if s.att2[c] >= 0 {
			r = r.Intersect(r2.Ranges[s.att2[c]])
		}
		if r.IsEmpty() {
			return simlist.Row{}, false
		}
		ranges[c] = r
	}
	return simlist.Row{Bindings: bindings, Ranges: ranges, List: op(r1.List, r2.List)}, true
}

// outerRow builds the outer-join row for an unmatched r1 (when r2 == nil) or
// unmatched r2 (when r2 != nil); the other side contributes the given empty
// list, wildcard bindings and unconstrained ranges.
func outerRow(s *joinSchema, ar *rowArena, r1 simlist.Row, r2 *simlist.Row, op listCombiner, other simlist.List) simlist.Row {
	bindings := ar.bindings(len(s.objVars))
	ranges := ar.ranges(len(s.attrVars))
	for c := range bindings {
		bindings[c] = AnyObject
	}
	for c := range ranges {
		ranges[c] = simlist.AnyRange()
	}
	var list simlist.List
	if r2 == nil {
		for c := range s.objVars {
			if s.obj1[c] >= 0 {
				bindings[c] = r1.Bindings[s.obj1[c]]
			}
		}
		for c := range s.attrVars {
			if s.att1[c] >= 0 {
				ranges[c] = r1.Ranges[s.att1[c]]
			}
		}
		list = op(r1.List, other)
	} else {
		for c := range s.objVars {
			if s.obj2[c] >= 0 {
				bindings[c] = r2.Bindings[s.obj2[c]]
			}
		}
		for c := range s.attrVars {
			if s.att2[c] >= 0 {
				ranges[c] = r2.Ranges[s.att2[c]]
			}
		}
		list = op(other, r2.List)
	}
	return simlist.Row{Bindings: bindings, Ranges: ranges, List: list}
}

// ListRestrict keeps only the parts of l that fall inside the sorted
// disjoint intervals ivs.
func ListRestrict(l simlist.List, ivs []interval.I) simlist.List {
	out := simlist.List{MaxSim: l.MaxSim}
	j := 0
	for _, e := range l.Entries {
		for j < len(ivs) && ivs[j].End < e.Iv.Beg {
			j++
		}
		for k := j; k < len(ivs) && ivs[k].Beg <= e.Iv.End; k++ {
			if iv, ok := e.Iv.Intersect(ivs[k]); ok {
				out.Entries = append(out.Entries, simlist.Entry{Iv: iv, Act: e.Act})
			}
		}
	}
	return out
}

// FreezeTable applies the §3.3 freeze join: t1 is the similarity table of
// the freeze operand with attribute-variable column y; vt is the value table
// of the frozen attribute function q (with object variable qVar, "" for a
// segment attribute). A row of t1 joins a value row when the bindings of
// qVar agree and the value lies in the row's y-range; the row's list is
// restricted to the ids where that value holds. The y column disappears;
// a column for qVar is added when t1 lacks it. Rows with identical output
// evaluations are merged by pointwise maximum.
func FreezeTable(t1 *simlist.Table, y string, vt *ValueTable, qVar string) *simlist.Table {
	yIdx := t1.AttrIndex(y)
	if yIdx < 0 {
		// y is not free in the operand: the freeze is vacuous.
		return t1
	}
	zIdx := -1
	objVars := append([]string(nil), t1.ObjVars...)
	if qVar != "" {
		zIdx = t1.ObjIndex(qVar)
		if zIdx < 0 {
			objVars = append(objVars, qVar)
		}
	}
	attrVars := make([]string, 0, len(t1.AttrVars)-1)
	for _, v := range t1.AttrVars {
		if v != y {
			attrVars = append(attrVars, v)
		}
	}
	out := simlist.NewTable(objVars, attrVars, t1.MaxSim)

	type acc struct {
		bindings []simlist.ObjectID
		ranges   []simlist.Range
		lists    []simlist.List
	}
	groups := map[string]*acc{}
	var order []string
	var ar rowArena

	for _, r1 := range t1.Rows {
		for _, vr := range vt.Rows {
			if qVar != "" && zIdx >= 0 {
				b := r1.Bindings[zIdx]
				if b != AnyObject && b != vr.Binding {
					continue
				}
			}
			if !vr.Value.InRange(r1.Ranges[yIdx]) {
				continue
			}
			restricted := ListRestrict(r1.List, vr.Ivs)
			bindings := ar.bindings(len(objVars))
			copy(bindings, r1.Bindings)
			if qVar != "" {
				if zIdx >= 0 {
					bindings[zIdx] = vr.Binding
				} else {
					bindings[len(bindings)-1] = vr.Binding
				}
			}
			ranges := ar.ranges(len(attrVars))
			j := 0
			for i, rg := range r1.Ranges {
				if i != yIdx {
					ranges[j] = rg
					j++
				}
			}
			k := rowKey(bindings, ranges)
			g := groups[k]
			if g == nil {
				g = &acc{bindings: bindings, ranges: ranges}
				groups[k] = g
				order = append(order, k)
			}
			g.lists = append(g.lists, restricted)
		}
	}
	for _, k := range order {
		g := groups[k]
		row := simlist.Row{
			Bindings: g.bindings,
			Ranges:   g.ranges,
			List:     MaxMergeLists(t1.MaxSim, g.lists...),
		}
		if keepRow(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// rowKey builds a deterministic grouping key for an evaluation.
func rowKey(bindings []simlist.ObjectID, ranges []simlist.Range) string {
	b := make([]byte, 0, 8*len(bindings)+16*len(ranges))
	for _, v := range bindings {
		b = appendID(b, v)
	}
	for _, r := range ranges {
		b = append(b, '|')
		b = append(b, r.String()...)
	}
	return string(b)
}

// ProjectMax existentially projects a similarity table onto a single
// similarity list: at each id the maximum over all evaluations (§2.5's
// semantics of ∃, §3.2's second part).
func ProjectMax(t *simlist.Table) simlist.List {
	ls := make([]simlist.List, len(t.Rows))
	for i, r := range t.Rows {
		ls[i] = r.List
	}
	return MaxMergeLists(t.MaxSim, ls...)
}
