package core

import (
	"testing"

	"htlvideo/internal/htl"
	"htlvideo/internal/obs"
	"htlvideo/internal/simlist"
)

// TestCompilePlanDedupesSubtrees: structurally identical subtrees compile to
// one shared plan node, so the node count reflects distinct subformulas.
func TestCompilePlanDedupesSubtrees(t *testing.T) {
	f := mustParse(t, "(A until B) and (A until B)")
	p := CompilePlan(f)
	if p.Key != f.String() {
		t.Fatalf("Key = %q, want %q", p.Key, f.String())
	}
	if p.Class != htl.Classify(f) {
		t.Fatalf("Class = %v, want %v", p.Class, htl.Classify(f))
	}
	if len(p.Root.Kids) != 2 || p.Root.Kids[0] != p.Root.Kids[1] {
		t.Fatalf("duplicated conjuncts did not intern to one node: %p vs %p",
			p.Root.Kids[0], p.Root.Kids[1])
	}
	// Distinct subformulas: the conjunction, the until, A, B.
	if p.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", p.Nodes)
	}
}

// TestCompilePlanClosedAndVars: free variables and the closed flag land on
// the right nodes — the closed flag is what licenses memoization.
func TestCompilePlanClosedAndVars(t *testing.T) {
	p := CompilePlan(mustParse(t, "exists x . P(x)"))
	if !p.Root.Closed {
		t.Fatal("the quantified formula should be closed")
	}
	kid := p.Root.Kids[0]
	if kid.Closed {
		t.Fatal("P(x) has a free variable and must not be marked closed")
	}
	if len(kid.ObjVars) != 1 || kid.ObjVars[0] != "x" {
		t.Fatalf("ObjVars = %v, want [x]", kid.ObjVars)
	}
}

// countingSource counts atomic evaluations per formula text.
type countingSource struct {
	stubSource
	calls map[string]int
}

func (c *countingSource) EvalAtomic(f htl.Formula) (*simlist.Table, error) {
	c.calls[f.String()]++
	return c.stubSource.EvalAtomic(f)
}

// TestEvalPlanMemoizesDuplicates: a formula with a duplicated subtree
// evaluates each atom once, reports memo hits, and still computes the same
// result as the unshared semantics (the conjunction of a list with itself
// doubles every actual similarity).
func TestEvalPlanMemoizesDuplicates(t *testing.T) {
	newSrc := func() *countingSource {
		return &countingSource{
			stubSource: stubSource{
				n:   10,
				max: map[string]float64{"A": 4, "B": 6},
				tables: map[string]*simlist.Table{
					"A": closedTable(4, entry(1, 5, 4)),
					"B": closedTable(6, entry(3, 8, 6)),
				},
			},
			calls: map[string]int{},
		}
	}

	single, err := Eval(newSrc(), mustParse(t, "A until B"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	src := newSrc()
	var m obs.EngineMetrics
	opts := DefaultOptions()
	opts.Obs = &m
	dup, err := EvalCtx(t.Context(), src, mustParse(t, "(A until B) and (A until B)"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, atom := range []string{"A", "B"} {
		if src.calls[atom] != 1 {
			t.Errorf("atom %s evaluated %d times, want 1", atom, src.calls[atom])
		}
	}
	if hits := m.Snapshot().MemoHits; hits == 0 {
		t.Error("no memo hits recorded for the duplicated subtree")
	}

	if dup.MaxSim != 2*single.MaxSim {
		t.Fatalf("MaxSim = %v, want %v", dup.MaxSim, 2*single.MaxSim)
	}
	if len(dup.Entries) != len(single.Entries) {
		t.Fatalf("entries = %d, want %d", len(dup.Entries), len(single.Entries))
	}
	for i, e := range dup.Entries {
		want := single.Entries[i]
		if e.Iv != want.Iv || e.Act != 2*want.Act {
			t.Fatalf("entry %d = %+v, want interval %v at doubled act %v", i, e, want.Iv, 2*want.Act)
		}
	}
}
