package core

import (
	"sync/atomic"

	"htlvideo/internal/htl"
)

// Query compilation (the compile-once/evaluate-many split): a formula is
// lowered once into a Plan — a DAG of PNodes in which structurally
// identical subformulas are interned into a single node — so that parsing,
// classification, free-variable analysis and subtree deduplication are paid
// once per distinct formula text rather than once per (query, video). The
// evaluators then memoize per-subtree results keyed by node pointer, which
// makes "structurally identical subtrees compute their similarity list
// once" fall out of interning: equal subtrees are the *same* node.

// Plan is a compiled formula: the interned subformula DAG plus the
// analysis results every evaluation would otherwise recompute.
type Plan struct {
	// Root is the root node; Root.F is the original formula.
	Root *PNode
	// Key is the formula's canonical text (htl's round-trippable printing),
	// suitable as a cache key: two formulas with equal keys are
	// structurally identical.
	Key string
	// Class is the formula's class in the paper's hierarchy.
	Class htl.Class
	// Nodes counts distinct subformulas (the DAG's size, not the tree's).
	Nodes int

	// nodes lists every PNode in ID order; byKey indexes them by canonical
	// text. Both back the per-node execution profiler (profile.go).
	nodes []*PNode
	byKey map[string]*PNode

	// phys is the plan's physical annotation (per-node child evaluation
	// order; see cost.go). It is a property of *how* the plan evaluates,
	// never of *what* it computes: Key stays stable while the cost model
	// swaps phys between evaluations.
	phys atomic.Pointer[physPlan]
}

// NodeList returns every plan node in ID order (the profiler's index order).
func (p *Plan) NodeList() []*PNode { return p.nodes }

// Node returns the plan node whose canonical text is key, or nil. The SQL
// translator attributes statements to nodes through it.
func (p *Plan) Node(key string) *PNode { return p.byKey[key] }

// PNode is one interned subformula. Two structurally identical subtrees of
// a plan share one PNode, so evaluators can memoize by node pointer.
type PNode struct {
	// F is the subformula.
	F htl.Formula
	// Key is F's canonical text.
	Key string
	// ID is the node's dense index within its plan (0 ≤ ID < Plan.Nodes),
	// the profiler's slot number.
	ID int
	// NonTemporal marks atomic units: subformulas the picture layer scores
	// whole (no temporal or level-modal operator inside).
	NonTemporal bool
	// Closed marks subformulas with no free variables; their similarity at
	// a segment is independent of the enclosing evaluation environment.
	Closed bool
	// ObjVars and AttrVars are F's free object and attribute variables.
	ObjVars, AttrVars []string
	// Kids are the direct subformulas, in syntactic order. Non-temporal
	// nodes keep their kids too: the reference evaluator decomposes atomic
	// units structurally when the picture layer cannot score them whole.
	Kids []*PNode
}

// CompilePlan compiles f. The cost is one canonical printing per subtree
// plus the class and free-variable analyses; evaluation never re-walks the
// formula for analysis afterwards.
func CompilePlan(f htl.Formula) *Plan {
	c := planCompiler{seen: map[string]*PNode{}}
	root := c.node(f)
	p := &Plan{
		Root:  root,
		Key:   root.Key,
		Class: htl.Classify(f),
		Nodes: len(c.seen),
		nodes: c.list,
		byKey: c.seen,
	}
	p.phys.Store(defaultPhys(p))
	return p
}

type planCompiler struct {
	// seen interns nodes by canonical text. Formula nodes themselves are
	// not comparable (argument slices), so text is the identity.
	seen map[string]*PNode
	// list collects the nodes in creation (ID) order.
	list []*PNode
}

func (c *planCompiler) node(f htl.Formula) *PNode {
	key := f.String()
	if n, ok := c.seen[key]; ok {
		return n
	}
	n := &PNode{F: f, Key: key, ID: len(c.list), NonTemporal: htl.NonTemporal(f)}
	n.ObjVars, n.AttrVars = htl.FreeVars(f)
	n.Closed = len(n.ObjVars) == 0 && len(n.AttrVars) == 0
	c.seen[key] = n
	c.list = append(c.list, n)
	switch x := f.(type) {
	case htl.And:
		n.Kids = []*PNode{c.node(x.L), c.node(x.R)}
	case htl.Until:
		n.Kids = []*PNode{c.node(x.L), c.node(x.R)}
	case htl.Not:
		n.Kids = []*PNode{c.node(x.F)}
	case htl.Next:
		n.Kids = []*PNode{c.node(x.F)}
	case htl.Eventually:
		n.Kids = []*PNode{c.node(x.F)}
	case htl.Exists:
		n.Kids = []*PNode{c.node(x.F)}
	case htl.Freeze:
		n.Kids = []*PNode{c.node(x.F)}
	case htl.AtLevel:
		n.Kids = []*PNode{c.node(x.F)}
	}
	return n
}
