package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

func entry(beg, end int, act float64) simlist.Entry {
	return simlist.Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

// TestUntilPaperFigure2 reproduces the worked example of paper §3.1/Fig. 2:
// L1 (above threshold) covers [25,100] and [200,250]; L2 has four entries;
// the output has exactly the four entries printed in the paper.
func TestUntilPaperFigure2(t *testing.T) {
	lg := simlist.NewList(20, entry(25, 100, 15), entry(200, 250, 15))
	lh := simlist.NewList(20,
		entry(10, 50, 10),
		entry(55, 60, 15),
		entry(90, 110, 12),
		entry(125, 175, 10),
	)
	got := UntilLists(lg, lh, 0.5)
	want := simlist.NewList(20,
		entry(10, 24, 10),
		entry(25, 60, 15),
		entry(61, 110, 12),
		entry(125, 175, 10),
	)
	if !simlist.Equal(got, want) {
		t.Fatalf("until:\n got  %v\n want %v", got, want)
	}
}

func TestUntilThresholdFiltersG(t *testing.T) {
	// g's entry at [25,100] falls below the 0.5 threshold, so only h-only
	// ids survive.
	lg := simlist.NewList(20, entry(25, 100, 9))
	lh := simlist.NewList(20, entry(90, 110, 12))
	got := UntilLists(lg, lh, 0.5)
	want := simlist.NewList(20, entry(90, 110, 12))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUntilAdjacentHEntryIsReachable(t *testing.T) {
	// h begins immediately after the g-run ends: exact until semantics makes
	// every id of the run reach it (the paper's intersection-only wording
	// would miss this).
	lg := simlist.NewList(10, entry(1, 5, 10))
	lh := simlist.NewList(20, entry(6, 6, 12))
	got := UntilLists(lg, lh, 0.5)
	want := simlist.NewList(20, entry(1, 6, 12))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestUntilGapBlocksReach(t *testing.T) {
	lg := simlist.NewList(10, entry(1, 5, 10))
	lh := simlist.NewList(20, entry(8, 9, 12))
	got := UntilLists(lg, lh, 0.5)
	want := simlist.NewList(20, entry(8, 9, 12))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestUntilPaperRuleComparison documents where the paper's literal wording
// and the exact semantics agree and where they part.
func TestUntilPaperRuleComparison(t *testing.T) {
	// They agree on the paper's own Fig. 2 example.
	lg := simlist.NewList(20, entry(25, 100, 15), entry(200, 250, 15))
	lh := simlist.NewList(20,
		entry(10, 50, 10), entry(55, 60, 15), entry(90, 110, 12), entry(125, 175, 10))
	exact := UntilLists(lg, lh, 0.5)
	paper := UntilListsPaperRule(lg, lh, 0.5)
	if !simlist.Equal(exact, paper) {
		t.Fatalf("fig.2 divergence:\n exact %v\n paper %v", exact, paper)
	}

	// They diverge when h starts immediately after a g-run ends: exact
	// semantics reaches u'' = run end + 1, the intersection-only rule does
	// not.
	lg2 := simlist.NewList(10, entry(1, 5, 10))
	lh2 := simlist.NewList(20, entry(6, 6, 12))
	exact2 := UntilLists(lg2, lh2, 0.5)
	paper2 := UntilListsPaperRule(lg2, lh2, 0.5)
	if !simlist.Equal(exact2, simlist.NewList(20, entry(1, 6, 12))) {
		t.Fatalf("exact: %v", exact2)
	}
	if !simlist.Equal(paper2, simlist.NewList(20, entry(6, 6, 12))) {
		t.Fatalf("paper rule: %v", paper2)
	}
}

// Property: the paper rule is a pointwise lower bound of the exact
// semantics, and both are valid lists.
func TestUntilPaperRuleLowerBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, h := randomList(rng, 10), randomList(rng, 14)
		exact := UntilLists(g, h, 0.5)
		paper := UntilListsPaperRule(g, h, 0.5)
		if exact.Validate() != nil || paper.Validate() != nil {
			return false
		}
		for id := 1; id <= denseN; id++ {
			if paper.At(id).Act > exact.At(id).Act+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUntilEmptyInputs(t *testing.T) {
	lh := simlist.NewList(20, entry(3, 4, 5))
	if got := UntilLists(simlist.Empty(10), lh, 0.5); !simlist.Equal(got, lh) {
		t.Fatalf("empty g: %v", got)
	}
	if got := UntilLists(lh, simlist.Empty(20), 0.5); !got.IsEmpty() || got.MaxSim != 20 {
		t.Fatalf("empty h: %v", got)
	}
}

func TestAndListsPaperQuery1(t *testing.T) {
	// The Casablanca Query 1 combination (§4.1): Man-Woman AND
	// (eventually Moving-Train). Man-Woman max 8, Moving-Train max 10.
	manWoman := simlist.NewList(8,
		entry(1, 4, 2.595), entry(6, 6, 1.26), entry(8, 8, 1.26),
		entry(10, 44, 1.26), entry(47, 49, 6.26),
	)
	evTrain := simlist.NewList(10, entry(1, 9, 9.787))
	got := AndLists(manWoman, evTrain)
	want := simlist.NewList(18,
		entry(1, 4, 12.382), entry(5, 5, 9.787), entry(6, 6, 11.047),
		entry(7, 7, 9.787), entry(8, 8, 11.047), entry(9, 9, 9.787),
		entry(10, 44, 1.26), entry(47, 49, 6.26),
	)
	if !simlist.EqualApprox(got, want, 1e-9) {
		t.Fatalf("query1:\n got  %v\n want %v", got, want)
	}
}

func TestAndListsDisjoint(t *testing.T) {
	a := simlist.NewList(5, entry(1, 2, 3))
	b := simlist.NewList(7, entry(4, 5, 6))
	got := AndLists(a, b)
	want := simlist.NewList(12, entry(1, 2, 3), entry(4, 5, 6))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAndListsEmpty(t *testing.T) {
	a := simlist.NewList(5, entry(1, 2, 3))
	got := AndLists(a, simlist.Empty(7))
	want := simlist.NewList(12, entry(1, 2, 3))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := AndLists(simlist.Empty(5), simlist.Empty(7)); !got.IsEmpty() || got.MaxSim != 12 {
		t.Fatalf("both empty: %v", got)
	}
}

func TestNextList(t *testing.T) {
	l := simlist.NewList(20, entry(1, 3, 5), entry(9, 9, 7))
	got := NextList(l)
	// [1,3] shifts to [0,2] and is clipped at 1; [9,9] shifts to [8,8].
	want := simlist.NewList(20, entry(1, 2, 5), entry(8, 8, 7))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := NextList(simlist.NewList(4, entry(1, 1, 2))); !got.IsEmpty() {
		t.Fatalf("entry at id 1 should vanish, got %v", got)
	}
}

func TestEventuallyList(t *testing.T) {
	// Paper Table 3: eventually Moving-Train with Moving-Train = [9,9]@9.787.
	l := simlist.NewList(10, entry(9, 9, 9.787))
	got := EventuallyList(l)
	want := simlist.NewList(10, entry(1, 9, 9.787))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEventuallyListStaircase(t *testing.T) {
	l := simlist.NewList(20, entry(3, 4, 5), entry(8, 8, 15), entry(12, 12, 10))
	got := EventuallyList(l)
	want := simlist.NewList(20, entry(1, 8, 15), entry(9, 12, 10))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := EventuallyList(simlist.Empty(5)); !got.IsEmpty() {
		t.Fatalf("empty: %v", got)
	}
}

func TestMaxMergeLists(t *testing.T) {
	a := simlist.NewList(20, entry(1, 10, 5))
	b := simlist.NewList(20, entry(5, 15, 9))
	c := simlist.NewList(20, entry(8, 8, 2))
	got := MaxMergeLists(20, a, b, c)
	want := simlist.NewList(20, entry(1, 4, 5), entry(5, 15, 9))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !simlist.Equal(MaxMergePairwise(20, a, b, c), want) {
		t.Fatal("pairwise merge disagrees")
	}
}

func TestAndListsModeMin(t *testing.T) {
	a := simlist.NewList(10, entry(1, 4, 10), entry(6, 6, 5))
	b := simlist.NewList(20, entry(3, 8, 10))
	got := AndListsMode(a, b, AndMin)
	// ids 1-2: min(1, 0) = 0; ids 3-4: min(1, .5)*30 = 15; 5: 0; 6: min(.5,.5)*30=15; 7-8: 0.
	want := simlist.NewList(30, entry(3, 4, 15), entry(6, 6, 15))
	if !simlist.Equal(got, want) {
		t.Fatalf("got %v", got)
	}
	// AndSum mode delegates to the paper's semantics.
	if !simlist.Equal(AndListsMode(a, b, AndSum), AndLists(a, b)) {
		t.Fatal("AndSum mode should equal AndLists")
	}
}

// Property: AndMin equals the dense min-of-fractions model.
func TestAndListsModeMinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomList(rng, 10), randomList(rng, 14)
		got := AndListsMode(a, b, AndMin)
		if got.Validate() != nil || got.MaxSim != 24 {
			return false
		}
		da, db := a.Expand(denseN), b.Expand(denseN)
		want := make([]float64, denseN)
		for i := range want {
			want[i] = min(da[i]/10, db[i]/14) * 24
		}
		return floatsEqual(got.Expand(denseN), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- dense reference models -------------------------------------------------

const denseN = 64

func denseAnd(a, b []float64) []float64 {
	out := make([]float64, denseN)
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

func denseNext(a []float64) []float64 {
	out := make([]float64, denseN)
	for i := 0; i < denseN-1; i++ {
		out[i] = a[i+1]
	}
	return out
}

func denseEventually(a []float64) []float64 {
	out := make([]float64, denseN)
	run := 0.0
	for i := denseN - 1; i >= 0; i-- {
		run = max(run, a[i])
		out[i] = run
	}
	return out
}

// denseUntil is the exact §2.3/§2.5 semantics evaluated by brute force.
func denseUntil(g, h []float64, gMax, tau float64) []float64 {
	out := make([]float64, denseN)
	for i := 0; i < denseN; i++ {
		best := 0.0
		for j := i; j < denseN; j++ {
			if h[j] > best {
				best = h[j]
			}
			// g must hold (fractionally >= tau) at j to reach j+1.
			if gMax <= 0 || g[j]/gMax < tau {
				break
			}
		}
		out[i] = best
	}
	return out
}

func randomList(rng *rand.Rand, maxSim float64) simlist.List {
	var entries []simlist.Entry
	pos := 1
	for pos < denseN {
		pos += rng.Intn(4)
		ln := rng.Intn(6)
		if pos+ln > denseN {
			break
		}
		act := float64(rng.Intn(int(maxSim*2))) / 2.0
		if act > 0 {
			entries = append(entries, entry(pos, pos+ln, act))
		}
		pos += ln + 1
	}
	return simlist.NewList(maxSim, entries...)
}

func TestAndListsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomList(rng, 10), randomList(rng, 14)
		got := AndLists(a, b)
		if got.Validate() != nil || got.MaxSim != 24 {
			return false
		}
		want := denseAnd(a.Expand(denseN), b.Expand(denseN))
		return floatsEqual(got.Expand(denseN), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestNextListProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomList(rng, 10)
		got := NextList(a)
		if got.Validate() != nil {
			return false
		}
		return floatsEqual(got.Expand(denseN), denseNext(a.Expand(denseN)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEventuallyListProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomList(rng, 10)
		got := EventuallyList(a)
		if got.Validate() != nil {
			return false
		}
		return floatsEqual(got.Expand(denseN), denseEventually(a.Expand(denseN)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUntilListsProperty(t *testing.T) {
	f := func(seed int64, tauPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := []float64{0.3, 0.5, 0.9}[int(tauPick)%3]
		g, h := randomList(rng, 10), randomList(rng, 14)
		got := UntilLists(g, h, tau)
		if got.Validate() != nil || got.MaxSim != 14 {
			return false
		}
		want := denseUntil(g.Expand(denseN), h.Expand(denseN), 10, tau)
		return floatsEqual(got.Expand(denseN), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMergeProperty(t *testing.T) {
	f := func(seed int64, m uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(m%5) + 1
		ls := make([]simlist.List, k)
		want := make([]float64, denseN)
		for i := range ls {
			ls[i] = randomList(rng, 10)
			for id, v := range ls[i].Expand(denseN) {
				want[id] = max(want[id], v)
			}
		}
		got := MaxMergeLists(10, ls...)
		if got.Validate() != nil {
			return false
		}
		if !floatsEqual(got.Expand(denseN), want) {
			return false
		}
		return floatsEqual(MaxMergePairwise(10, ls...).Expand(denseN), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -1e-9 || d > 1e-9 {
			return false
		}
	}
	return true
}
