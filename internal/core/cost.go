package core

import (
	"sync"
	"time"

	"htlvideo/internal/htl"
)

// Cost-based physical planning: the per-plan-node profiler (profile.go)
// records what every subformula actually costs, and the CostModel folds
// those observations — keyed by canonical subformula text, so estimates
// survive plan-cache eviction and recompilation — into per-node estimates of
// wall time and selectivity. A plan then carries a *physical* annotation
// (physPlan) deciding, per binary node, which child evaluates first:
// conjunctive children reorder cheapest-and-most-selective-first, and
// `until` evaluates its gating right side first so an empty gate can skip
// the left subtree entirely (eval.go proves when the skip is byte-safe).
//
// The physical plan is deliberately not part of the plan's identity:
// Plan.Key never changes, the plan cache and result cache keep their keys,
// and two physical plans of one logical plan produce byte-identical
// similarity lists — reordering only moves work, never answers.

// NodeCost is the cost model's estimate for one plan node.
type NodeCost struct {
	// Cost is the mean inclusive wall time per computed (non-memoized)
	// evaluation of the node.
	Cost time.Duration `json:"cost_ns"`
	// Entries is the mean number of similarity-list entries the node's
	// table carries per computed evaluation — the selectivity proxy: a
	// node trending toward zero entries is the one most likely to produce
	// the empty table that short-circuits its sibling.
	Entries float64 `json:"entries"`
	// Samples counts the computed evaluations behind the estimate.
	Samples int64 `json:"samples"`
}

// Known reports whether the estimate is backed by any observation.
func (c NodeCost) Known() bool { return c.Samples > 0 }

// minCostSamples is the evidence floor for a reorder decision: with fewer
// computed evaluations than this behind either child's estimate, the
// syntactic order stands. It keeps one noisy first measurement from
// flapping the physical plan (and the explain output) run to run.
const minCostSamples = 8

// costNoiseBand is the relative wall-time band within which two children
// count as equally expensive and selectivity decides instead.
const costNoiseBand = 0.25

// CostModel accumulates observed per-node cost and selectivity across
// queries. One model serves a whole store; it is safe for concurrent use.
type CostModel struct {
	mu    sync.Mutex
	stats map[string]*costAgg
}

type costAgg struct {
	samples int64
	timeNs  int64
	entries int64
}

// NewCostModel returns an empty model.
func NewCostModel() *CostModel { return &CostModel{stats: map[string]*costAgg{}} }

// Observe folds one finished query's per-node profile into the model.
// Memoized and skipped visits carry no cost and are excluded; a node's
// sample count is its computed evaluations.
func (m *CostModel) Observe(p *PlanProfile) {
	if m == nil || p == nil || p.plan == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, n := range p.plan.nodes {
		s := &p.nodes[i]
		computed := s.visits.Load() - s.memoHits.Load()
		if computed <= 0 {
			continue
		}
		a := m.stats[n.Key]
		if a == nil {
			a = &costAgg{}
			m.stats[n.Key] = a
		}
		a.samples += computed
		a.timeNs += s.timeNs.Load()
		a.entries += s.entries.Load()
	}
}

// Estimate returns the model's current estimate for a node's canonical text
// (zero-valued, Known()==false, when the node was never observed).
func (m *CostModel) Estimate(key string) NodeCost {
	if m == nil {
		return NodeCost{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.stats[key]
	if a == nil || a.samples == 0 {
		return NodeCost{}
	}
	return NodeCost{
		Cost:    time.Duration(a.timeNs / a.samples),
		Entries: float64(a.entries) / float64(a.samples),
		Samples: a.samples,
	}
}

// physPlan is the physical half of a compiled plan: per-node child
// evaluation order plus the estimate snapshot the order was derived from.
// It is swapped atomically under Plan.phys; evaluators load it once per
// evaluation, so a mid-query swap cannot split one video's choices.
type physPlan struct {
	// gateFirst[id] — evaluate the node's second operand before its first:
	// for `until` the gating right side, for `and` the cheaper conjunct.
	gateFirst []bool
	// est[id] snapshots the estimates behind the choices, for divergence
	// detection and for explain output.
	est []NodeCost
}

// defaultPhys is the statistics-free physical plan installed at compile
// time: `until` evaluates its right side first — only that side gates the
// result's emptiness, and when both sides are needed the order does not
// change the total work, so gate-first is never worse — and conjunctions
// stay in syntactic order until the model has evidence.
func defaultPhys(p *Plan) *physPlan {
	ph := &physPlan{gateFirst: make([]bool, len(p.nodes)), est: make([]NodeCost, len(p.nodes))}
	for _, n := range p.nodes {
		if _, ok := n.F.(htl.Until); ok {
			ph.gateFirst[n.ID] = true
		}
	}
	return ph
}

// Reoptimize re-derives the plan's physical annotation from the model and
// installs it when the observed statistics diverged from the snapshot the
// current annotation was built on (an order flip, a new estimate, or a ≥2×
// drift in cost or selectivity). It reports whether the child evaluation
// order actually changed — the event the query.plan.reorders counter counts.
func (p *Plan) Reoptimize(m *CostModel) bool {
	if p == nil || m == nil {
		return false
	}
	cur := p.phys.Load()
	next := p.derivePhys(m)
	if !physDiverged(cur, next) {
		return false
	}
	p.phys.Store(next)
	return orderChanged(cur, next)
}

func (p *Plan) derivePhys(m *CostModel) *physPlan {
	ph := &physPlan{gateFirst: make([]bool, len(p.nodes)), est: make([]NodeCost, len(p.nodes))}
	for _, n := range p.nodes {
		ph.est[n.ID] = m.Estimate(n.Key)
		if n.NonTemporal {
			continue // scored whole by the picture layer; no order to choose
		}
		switch n.F.(type) {
		case htl.Until:
			ph.gateFirst[n.ID] = true
		case htl.And:
			l, r := m.Estimate(n.Kids[0].Key), m.Estimate(n.Kids[1].Key)
			ph.gateFirst[n.ID] = cheaperSecond(l, r)
		}
	}
	return ph
}

// cheaperSecond reports whether the right conjunct should evaluate first:
// clearly cheaper by wall time, or — inside the noise band — expected to
// produce fewer entries, making it the likelier empty-table short-circuit.
func cheaperSecond(l, r NodeCost) bool {
	if l.Samples < minCostSamples || r.Samples < minCostSamples {
		return false
	}
	lc, rc := float64(l.Cost), float64(r.Cost)
	if rc < lc*(1-costNoiseBand) {
		return true
	}
	if lc < rc*(1-costNoiseBand) {
		return false
	}
	return r.Entries < l.Entries
}

// physDiverged reports whether next's statistics moved far enough from the
// snapshot in cur to be worth installing.
func physDiverged(cur, next *physPlan) bool {
	if cur == nil {
		return true
	}
	if orderChanged(cur, next) {
		return true
	}
	for i := range next.est {
		a, b := cur.est[i], next.est[i]
		if a.Known() != b.Known() {
			return true
		}
		if !a.Known() {
			continue
		}
		if driftedTwofold(float64(a.Cost), float64(b.Cost)) || driftedTwofold(a.Entries, b.Entries) {
			return true
		}
	}
	return false
}

func orderChanged(cur, next *physPlan) bool {
	if cur == nil {
		return false // the default annotation was never a decision
	}
	for i := range next.gateFirst {
		if cur.gateFirst[i] != next.gateFirst[i] {
			return true
		}
	}
	return false
}

// driftedTwofold reports a ≥2× relative change, ignoring values too small
// to matter (sub-unit means are noise, not drift).
func driftedTwofold(a, b float64) bool {
	lo, hi := min(a, b), max(a, b)
	if hi < 1 {
		return false
	}
	if lo <= 0 {
		return true
	}
	return hi/lo >= 2
}
