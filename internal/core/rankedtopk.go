package core

import (
	"context"

	"htlvideo/internal/faultinject"
	"htlvideo/internal/simlist"
)

// Threshold-style top-k (the Fagin/threshold-algorithm bound argument
// specialized to per-video similarity lists): each list is read through a
// sorted-access iterator whose head is an upper bound on every entry it has
// not yielded, so a k-way merge over the heads can stop as soon as k
// segments are emitted — every unseen entry is provably bounded by some
// head still in the merge heap and therefore cannot displace an emitted
// run. The emission order equals TopKBySort's (the oracle the property
// tests compare against byte for byte), but lists that never reach the top
// of the merge pay one bounding scan instead of being materialized into a
// global sort or heap.

// PruneStats reports the work a threshold top-k scan avoided.
type PruneStats struct {
	// EarlyTerminated reports that the scan stopped with entries still
	// unexamined — the threshold test proved none of them could enter the
	// top k.
	EarlyTerminated bool
	// EntriesSkipped counts the entries never pushed through the ranking.
	EntriesSkipped int64
}

// topkCursor is one video's position in the k-way merge: its iterator plus
// the head entry, pre-lifted into the global ranked form.
type topkCursor struct {
	vid  int
	max  float64
	head Ranked
	it   *simlist.RankIter
}

// RankedTopK returns the k highest-similarity segment runs across per-video
// similarity lists, byte-identical to TopKBySort, terminating as soon as the
// threshold test allows. st, when non-nil, accumulates pruning statistics.
func RankedTopK(lists map[int]simlist.List, k int, st *PruneStats) []Ranked {
	out, _ := RankedTopKCtx(context.Background(), lists, k, st)
	return out
}

// RankedTopKCtx is RankedTopK with cooperative cancellation: the bounding
// scan checks the context once per video, so a deadline stops a scan over a
// large corpus between lists rather than only at the end.
func RankedTopKCtx(ctx context.Context, lists map[int]simlist.List, k int, st *PruneStats) ([]Ranked, error) {
	if k <= 0 {
		return nil, nil
	}
	var total, consumed int64
	cs := make([]topkCursor, 0, len(lists))
	for vid, l := range lists {
		if err := faultinject.Fire(ctx, faultinject.SiteTopKScan, int64(vid)); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		total += int64(len(l.Entries))
		it := simlist.NewRankIter(l)
		e, ok := it.Pop()
		if !ok {
			continue
		}
		consumed++
		cs = append(cs, topkCursor{
			vid:  vid,
			max:  l.MaxSim,
			head: Ranked{VideoID: vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: l.MaxSim}},
			it:   it,
		})
	}
	h := cursorHeap(cs)
	h.init()
	var out []Ranked
	remaining := k
	for remaining > 0 && len(h) > 0 {
		c := &h[0]
		if err := faultinject.Fire(ctx, faultinject.SiteTopKScan, int64(c.vid)); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := c.head
		if r.Iv.Len() > remaining {
			r.Iv.End = r.Iv.Beg + remaining - 1
		}
		remaining -= r.Iv.Len()
		out = append(out, r)
		if e, ok := c.it.Pop(); ok {
			consumed++
			c.head = Ranked{VideoID: c.vid, Iv: e.Iv, Sim: simlist.Sim{Act: e.Act, Max: c.max}}
			h.siftDown(0)
		} else {
			h.removeRoot()
		}
	}
	if st != nil {
		if skipped := total - consumed; skipped > 0 {
			st.EarlyTerminated = true
			st.EntriesSkipped += skipped
		}
	}
	return out, nil
}

// cursorHeap is a binary min-heap of per-video cursors under the global
// retrieval order of their heads (best head at the root). Within one video
// the iterator yields in the same order restricted to that video, so the
// merge emits the exact global ranked order.
type cursorHeap []topkCursor

func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *cursorHeap) removeRoot() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.siftDown(0)
}

func (h cursorHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && rankedLess(h[l].head, h[best].head) {
			best = l
		}
		if r < n && rankedLess(h[r].head, h[best].head) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
