package workload

import "testing"

func TestGenerateValidAndCovered(t *testing.T) {
	for _, n := range []int{100, 10000} {
		cfg := DefaultConfig(n, 42)
		l := Generate(cfg)
		if err := l.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		covered := 0
		for _, e := range l.Entries {
			covered += e.Iv.Len()
			if e.Iv.End > n {
				t.Fatalf("entry %v beyond n=%d", e.Iv, n)
			}
		}
		frac := float64(covered) / float64(n)
		if frac < 0.04 || frac > 0.25 {
			t.Errorf("n=%d coverage %.3f far from 0.1", n, frac)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(5000, 7))
	b := Generate(DefaultConfig(5000, 7))
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("same seed should reproduce")
	}
	c := Generate(DefaultConfig(5000, 8))
	if len(a.Entries) == len(c.Entries) && a.Entries[0] == c.Entries[0] {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateDegenerateConfig(t *testing.T) {
	l := Generate(Config{N: 50, Coverage: 2, MeanRun: 0, MaxSim: 8, Seed: 1})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
