// Package workload generates the randomized inputs of the paper's §4.2
// performance comparison: similarity lists over videos of 10k/50k/100k
// shots in which "approximately one tenth of these shots satisfy the atomic
// predicates".
package workload

import (
	"math/rand"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

// Config parameterizes one generated similarity list.
type Config struct {
	// N is the number of shots in the video.
	N int
	// Coverage is the fraction of shots with a non-zero similarity
	// (the paper's "one tenth" → 0.1).
	Coverage float64
	// MeanRun is the average length of a run of consecutive matching shots.
	MeanRun int
	// MaxSim is the maximum similarity of the synthetic predicate.
	MaxSim float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultConfig mirrors the paper's setup for a given size.
func DefaultConfig(n int, seed int64) Config {
	return Config{N: n, Coverage: 0.1, MeanRun: 4, MaxSim: 20, Seed: seed}
}

// Generate produces a random similarity list satisfying the configuration:
// sorted, disjoint runs with uniform random similarities, covering
// approximately Coverage*N shot ids.
func Generate(cfg Config) simlist.List {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mean := cfg.MeanRun
	if mean < 1 {
		mean = 1
	}
	cov := cfg.Coverage
	if cov <= 0 || cov >= 1 {
		cov = 0.1
	}
	// Mean gap between runs so that run/(run+gap) ≈ coverage.
	meanGap := float64(mean) * (1 - cov) / cov
	out := simlist.List{MaxSim: cfg.MaxSim}
	pos := 1
	for {
		gap := int(rng.ExpFloat64()*meanGap) + 1
		pos += gap
		runLen := 1 + rng.Intn(2*mean-1)
		if pos+runLen-1 > cfg.N {
			break
		}
		// Similarity in (0, MaxSim]; quantized so equal values occur and
		// canonicalization has work to do.
		act := float64(1+rng.Intn(int(cfg.MaxSim*4))) / 4
		out.Entries = append(out.Entries, simlist.Entry{
			Iv:  interval.I{Beg: pos, End: pos + runLen - 1},
			Act: act,
		})
		pos += runLen
	}
	return out.Canonical()
}
