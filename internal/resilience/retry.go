package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryConfig tunes the transient-error retry loop.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first;
	// 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the attempt-n delay is drawn
	// uniformly from [0, min(MaxDelay, BaseDelay·2^(n-1))] — "full jitter",
	// which decorrelates retry storms across concurrent clients.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling.
	MaxDelay time.Duration
}

// DefaultRetryConfig returns the serving defaults.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
}

// Retrier runs a function with exponential backoff and full jitter. The
// random source and the sleep function are injected so the loop is a
// deterministic unit under test (servers wire a seeded locked rand and a
// context-aware timer sleep).
type Retrier struct {
	cfg       RetryConfig
	rand      func(n int64) int64 // uniform in [0, n)
	sleep     func(ctx context.Context, d time.Duration) error
	onAttempt func(attempt int, err error) // called before each re-attempt
}

// NewRetrier builds a retry loop. rnd may be nil (a time-seeded locked
// source); onAttempt may be nil.
func NewRetrier(cfg RetryConfig, rnd func(n int64) int64, onAttempt func(int, error)) *Retrier {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.BaseDelay < 0 {
		cfg.BaseDelay = 0
	}
	if cfg.MaxDelay < cfg.BaseDelay {
		cfg.MaxDelay = cfg.BaseDelay
	}
	if rnd == nil {
		rnd = SeededRand(time.Now().UnixNano())
	}
	return &Retrier{cfg: cfg, rand: rnd, sleep: timerSleep, onAttempt: onAttempt}
}

// SetSleep replaces the backoff sleep (tests record delays instead of
// sleeping).
func (r *Retrier) SetSleep(sleep func(ctx context.Context, d time.Duration) error) {
	r.sleep = sleep
}

// Do runs fn until it succeeds, fails permanently, exhausts MaxAttempts, or
// the context dies while backing off. The last error is returned.
func (r *Retrier) Do(ctx context.Context, fn func() error, transient func(error) bool) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= r.cfg.MaxAttempts || !transient(err) {
			return err
		}
		if r.onAttempt != nil {
			r.onAttempt(attempt, err)
		}
		if serr := r.sleep(ctx, r.Delay(attempt)); serr != nil {
			// The deadline died while backing off; the caller sees the
			// failure that prompted the retry, not the backoff's demise.
			return err
		}
	}
}

// Delay draws the full-jitter backoff for the given (1-based) attempt.
func (r *Retrier) Delay(attempt int) time.Duration {
	ceil := r.cfg.BaseDelay
	for i := 1; i < attempt && ceil < r.cfg.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > r.cfg.MaxDelay {
		ceil = r.cfg.MaxDelay
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(r.rand(int64(ceil) + 1))
}

// timerSleep blocks for d or until ctx is done.
func timerSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SeededRand returns a mutex-guarded seeded uniform source (math/rand's
// global source would be shared process state, and per-request sources would
// defeat seeding).
func SeededRand(seed int64) func(n int64) int64 {
	l := &lockedRand{r: rand.New(rand.NewSource(seed))}
	return l.int63n
}

type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
