package resilience

// Pure unit tests for the circuit-breaker state machine: a fake clock, no
// sleeps, every transition asserted deterministically.

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// transitionLog records breaker transitions for assertion.
type transitionLog struct {
	entries []string
}

func (l *transitionLog) record(key int64, from, to BreakerState) {
	l.entries = append(l.entries, from.String()+"->"+to.String())
}

func testBreaker(t *testing.T) (*Breaker, *fakeClock, *transitionLog) {
	t.Helper()
	clk := newFakeClock()
	log := &transitionLog{}
	b := NewBreaker(BreakerConfig{
		Window:         8,
		MinVolume:      4,
		FailureRate:    0.5,
		OpenFor:        10 * time.Second,
		HalfOpenProbes: 2,
	}, clk.now, log.record)
	return b, clk, log
}

func TestBreakerStaysClosedBelowMinVolume(t *testing.T) {
	b, _, _ := testBreaker(t)
	for i := 0; i < 3; i++ { // 3 failures < MinVolume 4
		if !b.Allow(1) {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Report(1, true)
	}
	if got := b.State(1); got != StateClosed {
		t.Fatalf("state = %v after 3 failures, want closed (min volume 4)", got)
	}
}

func TestBreakerOpensAtFailureRate(t *testing.T) {
	b, _, log := testBreaker(t)
	// 2 successes + 2 failures = rate 0.5 at volume 4: exactly the threshold.
	b.Report(1, false)
	b.Report(1, false)
	b.Report(1, true)
	if got := b.State(1); got != StateClosed {
		t.Fatalf("state = %v at volume 3, want closed", got)
	}
	b.Report(1, true)
	if got := b.State(1); got != StateOpen {
		t.Fatalf("state = %v at 2/4 failures, want open", got)
	}
	if b.Allow(1) {
		t.Fatal("open breaker admitted work")
	}
	if len(log.entries) != 1 || log.entries[0] != "closed->open" {
		t.Fatalf("transitions = %v, want [closed->open]", log.entries)
	}
}

func TestBreakerKeysAreIndependent(t *testing.T) {
	b, _, _ := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Report(7, true)
	}
	if b.Allow(7) {
		t.Fatal("key 7 should be open")
	}
	if !b.Allow(8) {
		t.Fatal("key 8 tripped by key 7's failures")
	}
}

func TestBreakerHalfOpenAfterCooldown(t *testing.T) {
	b, clk, log := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Report(1, true)
	}
	clk.advance(9 * time.Second)
	if b.Allow(1) {
		t.Fatal("breaker admitted work before OpenFor elapsed")
	}
	clk.advance(time.Second)
	// First Allow flips to half-open and admits the probe.
	if !b.Allow(1) {
		t.Fatal("breaker rejected the half-open probe")
	}
	if got := b.State(1); got != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	// HalfOpenProbes = 2: one more probe fits, the third is rejected.
	if !b.Allow(1) {
		t.Fatal("second probe rejected")
	}
	if b.Allow(1) {
		t.Fatal("third concurrent probe admitted, want at most 2")
	}
	// Both probes succeed: the circuit closes with a clean window.
	b.Report(1, false)
	b.Report(1, false)
	if got := b.State(1); got != StateClosed {
		t.Fatalf("state = %v after successful probes, want closed", got)
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(log.entries) != len(want) {
		t.Fatalf("transitions = %v, want %v", log.entries, want)
	}
	for i := range want {
		if log.entries[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", log.entries, want)
		}
	}
	// The window was reset on close: one new failure must not re-open.
	b.Report(1, true)
	if got := b.State(1); got != StateClosed {
		t.Fatalf("state = %v after one failure post-recovery, want closed (window reset)", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk, _ := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Report(1, true)
	}
	clk.advance(10 * time.Second)
	if !b.Allow(1) {
		t.Fatal("probe rejected")
	}
	b.Report(1, true)
	if got := b.State(1); got != StateOpen {
		t.Fatalf("state = %v after failed probe, want open", got)
	}
	// The cool-down restarts from the probe failure.
	clk.advance(9 * time.Second)
	if b.Allow(1) {
		t.Fatal("breaker admitted work 9s after re-opening")
	}
	clk.advance(time.Second)
	if !b.Allow(1) {
		t.Fatal("breaker rejected probe after full cool-down")
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk, _ := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Report(1, true)
	}
	clk.advance(10 * time.Second)
	if !b.Allow(1) || !b.Allow(1) {
		t.Fatal("probes rejected")
	}
	if b.Allow(1) {
		t.Fatal("probe budget exceeded")
	}
	// A cancelled probe (request deadline died) frees its slot without an
	// outcome.
	b.Cancel(1)
	if !b.Allow(1) {
		t.Fatal("cancelled probe slot not released")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _, _ := testBreaker(t)
	// Fill the window (8) with successes, then add failures: the ring
	// forgets the oldest successes, so 4 failures out of the last 8 trip it.
	for i := 0; i < 8; i++ {
		b.Report(1, false)
	}
	for i := 0; i < 3; i++ {
		b.Report(1, true)
	}
	if got := b.State(1); got != StateClosed {
		t.Fatalf("state = %v at 3/8 failures, want closed", got)
	}
	b.Report(1, true)
	if got := b.State(1); got != StateOpen {
		t.Fatalf("state = %v at 4/8 failures in the window, want open", got)
	}
}

func TestBreakerStaleReportWhileOpenIgnored(t *testing.T) {
	b, clk, _ := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Report(1, true)
	}
	// A straggler that was admitted before the circuit opened reports late;
	// it must not distort the open state or the cool-down.
	b.Report(1, false)
	if got := b.State(1); got != StateOpen {
		t.Fatalf("state = %v after stale report, want open", got)
	}
	clk.advance(10 * time.Second)
	if !b.Allow(1) {
		t.Fatal("cool-down broken by stale report")
	}
}
