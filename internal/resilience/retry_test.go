package resilience

// Pure unit tests for the retry/backoff loop: a recording fake sleeper and a
// seeded random source, no real sleeps. Error classification lives with the
// callers (internal/server's IsTransient, internal/shard's HTTP classifier);
// here a local sentinel stands in.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeSleeper records requested backoff delays instead of sleeping.
type fakeSleeper struct {
	delays []time.Duration
	// err, when set, is returned on the errAt-th sleep (1-based).
	err   error
	errAt int
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	if f.err != nil && len(f.delays) == f.errAt {
		return f.err
	}
	return nil
}

var errFlaky = errors.New("flaky")

// transient mirrors the callers' classifiers: the sentinel retries, context
// errors and everything else do not.
func transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, errFlaky)
}

func testRetrier(cfg RetryConfig, seed int64) (*Retrier, *fakeSleeper) {
	r := NewRetrier(cfg, SeededRand(seed), nil)
	fs := &fakeSleeper{}
	r.SetSleep(fs.sleep)
	return r, fs
}

func TestRetrySucceedsFirstTry(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return nil }, transient)
	if err != nil || calls != 1 || len(fs.delays) != 0 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/1/0", err, calls, len(fs.delays))
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	}, transient)
	if err != nil || calls != 3 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/3/2", err, calls, len(fs.delays))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return errFlaky }, transient)
	if !errors.Is(err, errFlaky) || calls != 3 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want flaky/3/2", err, calls, len(fs.delays))
	}
}

func TestRetryNeverRetriesPermanentErrors(t *testing.T) {
	for name, err := range map[string]error{
		"validation": errors.New("unknown engine"),
		"cancel":     context.Canceled,
		"deadline":   context.DeadlineExceeded,
		"wrapped":    fmt.Errorf("video 3: %w", context.DeadlineExceeded),
	} {
		r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, 1)
		calls := 0
		got := r.Do(context.Background(), func() error { calls++; return err }, transient)
		if got != err || calls != 1 || len(fs.delays) != 0 {
			t.Errorf("%s: err=%v calls=%d sleeps=%d, want the error once with no sleeps", name, got, calls, len(fs.delays))
		}
	}
}

func TestRetryBackoffIsBoundedFullJitter(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 6, BaseDelay: 4 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	r, fs := testRetrier(cfg, 42)
	_ = r.Do(context.Background(), func() error { return errFlaky }, transient)
	if len(fs.delays) != 5 {
		t.Fatalf("sleeps = %d, want 5", len(fs.delays))
	}
	// Full jitter: attempt n draws from [0, min(MaxDelay, Base·2^(n-1))].
	ceils := []time.Duration{4, 8, 10, 10, 10}
	for i, d := range fs.delays {
		if d < 0 || d > ceils[i]*time.Millisecond {
			t.Fatalf("delay %d = %v outside [0, %v]", i+1, d, ceils[i]*time.Millisecond)
		}
	}
}

func TestRetryDeterministicUnderSeed(t *testing.T) {
	run := func() []time.Duration {
		r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond}, 7)
		_ = r.Do(context.Background(), func() error { return errFlaky }, transient)
		return fs.delays
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestRetryStopsWhenContextDiesDuringBackoff(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, 1)
	fs.err, fs.errAt = context.DeadlineExceeded, 2
	calls := 0
	err := r.Do(context.Background(), func() error { calls++; return errFlaky }, transient)
	// The loop surfaces the failure that prompted the retry, not the
	// backoff's own demise, and stops immediately.
	if !errors.Is(err, errFlaky) || calls != 2 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want flaky/2/2", err, calls, len(fs.delays))
	}
}
