// Package resilience holds the fault-tolerance primitives shared by every
// serving layer in the repo: keyed circuit breakers and a full-jitter
// exponential-backoff retry loop. internal/server uses them per video (a
// repeatedly failing video is skipped instead of stalling every query);
// internal/shard uses the same machinery per shard server (a dead shard
// degrades into a skipped partial result instead of a failed query). Both
// state machines take injected clocks/random sources so they are pure units
// under test.
package resilience

import (
	"sync"
	"time"
)

// BreakerConfig tunes the keyed circuit breakers.
type BreakerConfig struct {
	// Window is how many recent outcomes each circuit remembers (a ring).
	Window int
	// MinVolume is the minimum number of recorded outcomes before the
	// failure rate is evaluated; below it the circuit never opens, so a
	// single failure on a cold key cannot trip it.
	MinVolume int
	// FailureRate opens the circuit when failures/outcomes within the
	// window reaches it (0 < rate <= 1).
	FailureRate float64
	// OpenFor is how long an open circuit rejects before moving to
	// half-open and letting probes through.
	OpenFor time.Duration
	// HalfOpenProbes is both the number of concurrent probes a half-open
	// circuit admits and the number of consecutive probe successes that
	// close it again. A probe failure re-opens immediately.
	HalfOpenProbes int
}

// DefaultBreakerConfig returns the serving defaults.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Window:         16,
		MinVolume:      4,
		FailureRate:    0.5,
		OpenFor:        time.Second,
		HalfOpenProbes: 1,
	}
}

// BreakerState is one circuit's state.
type BreakerState uint8

const (
	// StateClosed admits everything and tracks the failure rate.
	StateClosed BreakerState = iota
	// StateOpen rejects everything until OpenFor elapses.
	StateOpen
	// StateHalfOpen admits a bounded number of probes to test recovery.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a keyed set of circuit breakers — one circuit per key (a video
// id in internal/server, a shard ordinal in internal/shard). A repeatedly
// failing key trips its circuit and is skipped (reported as such in partial
// results) instead of stalling every query; after OpenFor the circuit probes
// the key again and closes on success.
//
// All methods are safe for concurrent use. Time comes from the injected
// clock, so the state machine is a pure unit under test.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time
	// onTransition, when set, observes every state change (metrics).
	onTransition func(key int64, from, to BreakerState)

	mu       sync.Mutex
	circuits map[int64]*circuit
}

// circuit is one key's state: an outcome ring plus the state machine.
type circuit struct {
	state    BreakerState
	outcomes []bool // true = failure
	n        int    // filled slots, <= len(outcomes)
	idx      int    // next write position
	failures int
	openedAt time.Time
	probes   int // in-flight half-open probes
	probeOK  int // consecutive half-open successes
}

// NewBreaker builds a keyed breaker. now may be nil (time.Now); onTransition
// may be nil.
func NewBreaker(cfg BreakerConfig, now func() time.Time, onTransition func(key int64, from, to BreakerState)) *Breaker {
	if cfg.Window < 1 {
		cfg.Window = DefaultBreakerConfig().Window
	}
	if cfg.MinVolume < 1 {
		cfg.MinVolume = 1
	}
	if cfg.FailureRate <= 0 || cfg.FailureRate > 1 {
		cfg.FailureRate = DefaultBreakerConfig().FailureRate
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{cfg: cfg, now: now, onTransition: onTransition, circuits: map[int64]*circuit{}}
}

func (b *Breaker) circuit(key int64) *circuit {
	c := b.circuits[key]
	if c == nil {
		c = &circuit{outcomes: make([]bool, b.cfg.Window)}
		b.circuits[key] = c
	}
	return c
}

func (b *Breaker) transition(key int64, c *circuit, to BreakerState) {
	from := c.state
	c.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(key, from, to)
	}
}

// Allow reports whether work on key may proceed. A half-open circuit admits
// at most HalfOpenProbes concurrent probes; every Allow()==true must be
// matched by exactly one Report (or Cancel) so probe accounting stays
// balanced.
func (b *Breaker) Allow(key int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuit(key)
	switch c.state {
	case StateOpen:
		if b.now().Sub(c.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.transition(key, c, StateHalfOpen)
		c.probes, c.probeOK = 1, 0
		return true
	case StateHalfOpen:
		if c.probes >= b.cfg.HalfOpenProbes {
			return false
		}
		c.probes++
		return true
	default:
		return true
	}
}

// Report records the outcome of work admitted by Allow.
func (b *Breaker) Report(key int64, failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuit(key)
	switch c.state {
	case StateClosed:
		b.record(c, failure)
		if c.n >= b.cfg.MinVolume && float64(c.failures) >= b.cfg.FailureRate*float64(c.n) {
			b.transition(key, c, StateOpen)
			c.openedAt = b.now()
		}
	case StateHalfOpen:
		if c.probes > 0 {
			c.probes--
		}
		if failure {
			b.transition(key, c, StateOpen)
			c.openedAt = b.now()
			c.probes, c.probeOK = 0, 0
			return
		}
		c.probeOK++
		if c.probeOK >= b.cfg.HalfOpenProbes {
			b.transition(key, c, StateClosed)
			b.reset(c)
		}
	case StateOpen:
		// A straggler from before the circuit opened; its outcome is stale.
	}
}

// Cancel un-reserves an Allow whose work never ran to an outcome (the
// request was cancelled before the key was attempted).
func (b *Breaker) Cancel(key int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuit(key)
	if c.state == StateHalfOpen && c.probes > 0 {
		c.probes--
	}
}

// States returns every tracked circuit's current state without advancing
// any — the health rollup's view of the whole breaker.
func (b *Breaker) States() map[int64]BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int64]BreakerState, len(b.circuits))
	for key, c := range b.circuits {
		out[key] = c.state
	}
	return out
}

// State returns key's current state without advancing it (an open circuit
// past its deadline still reads open until the next Allow).
func (b *Breaker) State(key int64) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.circuits[key]; c != nil {
		return c.state
	}
	return StateClosed
}

// record pushes one outcome into the ring.
func (b *Breaker) record(c *circuit, failure bool) {
	if c.n == len(c.outcomes) {
		if c.outcomes[c.idx] {
			c.failures--
		}
	} else {
		c.n++
	}
	c.outcomes[c.idx] = failure
	if failure {
		c.failures++
	}
	c.idx = (c.idx + 1) % len(c.outcomes)
}

// resetRing clears the ring after a close, so recovery starts from a clean
// window instead of the failures that opened the circuit.
func (c *circuit) resetRing() {
	for i := range c.outcomes {
		c.outcomes[i] = false
	}
	c.n, c.idx, c.failures = 0, 0, 0
}

func (b *Breaker) reset(c *circuit) {
	c.resetRing()
	c.probes, c.probeOK = 0, 0
}
