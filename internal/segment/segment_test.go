package segment

import (
	"reflect"
	"testing"
)

func hist(dominant int) []float64 {
	h := make([]float64, 8)
	for i := range h {
		h[i] = 0.05
	}
	h[dominant] += 0.6
	return h
}

func TestHistDiff(t *testing.T) {
	a, b := hist(0), hist(0)
	if HistDiff(a, b) != 0 {
		t.Fatal("identical histograms should differ by 0")
	}
	if d := HistDiff(hist(0), hist(4)); d < 1.0 {
		t.Fatalf("different dominants differ by %g", d)
	}
}

func TestDetectCutsFixed(t *testing.T) {
	frames := [][]float64{hist(0), hist(0), hist(3), hist(3), hist(3), hist(5)}
	cuts := DetectCuts(frames, 0.5)
	if !reflect.DeepEqual(cuts, []int{2, 5}) {
		t.Fatalf("cuts = %v", cuts)
	}
	if DetectCuts(frames[:1], 0.5) != nil {
		t.Fatal("single frame should yield no cuts")
	}
}

func TestDetectCutsAdaptive(t *testing.T) {
	var frames [][]float64
	for i := 0; i < 10; i++ {
		frames = append(frames, hist(0))
	}
	for i := 0; i < 10; i++ {
		frames = append(frames, hist(4))
	}
	cuts := DetectCutsAdaptive(frames, 3)
	if !reflect.DeepEqual(cuts, []int{10}) {
		t.Fatalf("cuts = %v", cuts)
	}
	if DetectCutsAdaptive(frames[:1], 3) != nil {
		t.Fatal("single frame should yield no cuts")
	}
}

func TestShots(t *testing.T) {
	got := Shots(10, []int{3, 7})
	want := [][2]int{{0, 3}, {3, 7}, {7, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shots = %v", got)
	}
	if got := Shots(5, nil); !reflect.DeepEqual(got, [][2]int{{0, 5}}) {
		t.Fatalf("no cuts: %v", got)
	}
	// Out-of-range or non-increasing cuts are ignored.
	if got := Shots(5, []int{0, 2, 2, 9}); !reflect.DeepEqual(got, [][2]int{{0, 2}, {2, 5}}) {
		t.Fatalf("bad cuts: %v", got)
	}
	if Shots(0, nil) != nil {
		t.Fatal("empty input should yield nil")
	}
}
