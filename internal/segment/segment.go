// Package segment implements shot-boundary (cut) detection over frame
// color-histogram signatures — the video analyzer's segmentation stage
// (paper §4.1, citing the histogram-difference methods of [21, 11]).
package segment

import (
	"math"
	"sort"
)

// HistDiff is the L1 distance between two normalized histograms, in [0, 2].
func HistDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// DetectCuts returns the indices i such that a cut falls between frame i-1
// and frame i, using a fixed histogram-difference threshold.
func DetectCuts(hists [][]float64, threshold float64) []int {
	var cuts []int
	for i := 1; i < len(hists); i++ {
		if HistDiff(hists[i-1], hists[i]) > threshold {
			cuts = append(cuts, i)
		}
	}
	return cuts
}

// DetectCutsAdaptive thresholds the frame-to-frame differences at
// median + k·MAD (median absolute deviation, scaled to the normal σ). The
// robust estimator tracks the footage's noise floor without being masked by
// the cut outliers themselves — the practical refinement behind the
// projection-detection filters of [21].
func DetectCutsAdaptive(hists [][]float64, k float64) []int {
	if len(hists) < 2 {
		return nil
	}
	diffs := make([]float64, len(hists)-1)
	for i := 1; i < len(hists); i++ {
		diffs[i-1] = HistDiff(hists[i-1], hists[i])
	}
	med := median(diffs)
	dev := make([]float64, len(diffs))
	for i, d := range diffs {
		dev[i] = math.Abs(d - med)
	}
	const madToSigma = 1.4826
	threshold := med + k*madToSigma*median(dev) + 1e-9
	var cuts []int
	for i, d := range diffs {
		if d > threshold {
			cuts = append(cuts, i+1)
		}
	}
	return cuts
}

// median returns the middle value of xs (averaging the two middles for even
// lengths) without modifying the input.
func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Shots converts cut positions into [begin, end) frame ranges covering
// 0..n.
func Shots(n int, cuts []int) [][2]int {
	if n == 0 {
		return nil
	}
	var out [][2]int
	beg := 0
	for _, c := range cuts {
		if c <= beg || c >= n {
			continue
		}
		out = append(out, [2]int{beg, c})
		beg = c
	}
	return append(out, [2]int{beg, n})
}
