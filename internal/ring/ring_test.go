package ring

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministicAcrossConstructions(t *testing.T) {
	// Ownership must be a pure function of the member set — same answers from
	// independently built rings, regardless of member insertion order.
	a := New([]string{"shard-0", "shard-1", "shard-2"}, 0)
	b := New([]string{"shard-2", "shard-0", "shard-1"}, 0)
	for id := 0; id < 500; id++ {
		if ao, bo := a.OwnerOfVideo(id), b.OwnerOfVideo(id); ao != bo {
			t.Fatalf("video %d: owner %q vs %q across construction orders", id, ao, bo)
		}
	}
}

func TestOwnerCoversAllMembersAndBalances(t *testing.T) {
	members := MemberNames(4)
	r := New(members, 0)
	counts := map[string]int{}
	const keys = 4000
	for id := 0; id < keys; id++ {
		counts[r.OwnerOfVideo(id)]++
	}
	for _, m := range members {
		got := counts[m]
		// Perfect balance would be keys/4 = 1000; with 64 virtual nodes per
		// member the spread stays well inside a factor of two.
		if got < keys/8 || got > keys/2 {
			t.Errorf("member %s owns %d of %d keys: outside [%d, %d]", m, got, keys, keys/8, keys/2)
		}
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
}

func TestRemoveMovesOnlyDepartedKeys(t *testing.T) {
	// Consistency property: removing one member must not reassign any key
	// that the member did not own.
	r := New(MemberNames(5), 0)
	before := map[int]string{}
	for id := 0; id < 1000; id++ {
		before[id] = r.OwnerOfVideo(id)
	}
	if !r.Remove("shard-3") {
		t.Fatal("Remove(shard-3) = false, want true")
	}
	moved := 0
	for id, owner := range before {
		after := r.OwnerOfVideo(id)
		if owner != "shard-3" && after != owner {
			t.Fatalf("video %d moved %s → %s though %s stayed on the ring", id, owner, after, owner)
		}
		if owner == "shard-3" {
			if after == "shard-3" {
				t.Fatalf("video %d still owned by removed shard-3", id)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("shard-3 owned no keys before removal; test is vacuous")
	}
}

func TestAddMovesOnlyJoinedKeys(t *testing.T) {
	r := New(MemberNames(4), 0)
	before := map[int]string{}
	for id := 0; id < 1000; id++ {
		before[id] = r.OwnerOfVideo(id)
	}
	if !r.Add("shard-4") {
		t.Fatal("Add(shard-4) = false, want true")
	}
	gained := 0
	for id, owner := range before {
		after := r.OwnerOfVideo(id)
		if after != owner && after != "shard-4" {
			t.Fatalf("video %d moved %s → %s on an unrelated join", id, owner, after)
		}
		if after == "shard-4" {
			gained++
		}
	}
	if gained == 0 {
		t.Fatal("shard-4 gained no keys; test is vacuous")
	}
}

func TestAddRemoveIdempotent(t *testing.T) {
	r := New(MemberNames(2), 0)
	if r.Add("shard-0") {
		t.Error("Add of existing member reported a change")
	}
	if r.Remove("shard-9") {
		t.Error("Remove of absent member reported a change")
	}
	if got := r.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	if !r.Has("shard-1") || r.Has("shard-9") {
		t.Errorf("Has: unexpected membership: %v", r.Members())
	}
}

func TestEmptyRingOwner(t *testing.T) {
	r := New(nil, 0)
	if got := r.Owner("video-1"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
}

func TestMemberNames(t *testing.T) {
	got := MemberNames(3)
	want := []string{"shard-0", "shard-1", "shard-2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("MemberNames(3) = %v, want %v", got, want)
	}
}
