// Package ring implements the consistent-hash ring that decides which shard
// owns which video. Both the data partitioner (htlvideo.SplitDoc) and the
// scatter-gather coordinator (internal/shard) build their rings here, so a
// store split into N files and a coordinator configured with the same N
// member names agree on ownership exactly.
//
// The ring is the classic construction: each member is hashed onto the ring
// at Replicas virtual points; a key is owned by the first member point at or
// after the key's own hash (wrapping). Adding or removing one member of n
// therefore moves only ~1/n of the keys — the property that makes shard
// join/leave a rebalance of one shard's worth of videos rather than a full
// reshuffle.
//
// Hashing is FNV-1a over decimal key strings: deterministic across processes,
// architectures and runs, with no seed — a ring's layout is a pure function
// of its member names and replica count.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per member. 128 points per
// member keeps the ownership imbalance across a handful of shards well
// within a factor of two (see TestOwnerCoversAllMembersAndBalances) while
// the ring stays small enough that rebuilding it on join/leave is
// negligible.
const DefaultReplicas = 128

// Ring is a consistent-hash ring. It is not safe for concurrent mutation;
// callers that share one (the coordinator) guard it with their own lock or
// swap immutable copies.
type Ring struct {
	replicas int
	members  map[string]bool
	points   []point // sorted by hash
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member string
}

// New builds a ring over the given members (duplicates are collapsed) with
// the given virtual-node count per member; replicas < 1 selects
// DefaultReplicas.
func New(members []string, replicas int) *Ring {
	if replicas < 1 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, members: map[string]bool{}}
	for _, m := range members {
		r.add(m)
	}
	r.sortPoints()
	return r
}

// MemberNames returns n canonical shard names ("shard-0" ... "shard-<n-1>"):
// the naming SplitDoc uses, so ops that split a store and a coordinator that
// serves the split files agree on ownership by construction.
func MemberNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func (r *Ring) add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: hash(fmt.Sprintf("%s#%d", member, i)), member: member})
	}
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full-64-bit collision is vanishingly unlikely; order by name so
		// the ring is still deterministic if it ever happens.
		return r.points[i].member < r.points[j].member
	})
}

// Add inserts a member (a no-op if present) and reports whether the ring
// changed.
func (r *Ring) Add(member string) bool {
	if r.members[member] {
		return false
	}
	r.add(member)
	r.sortPoints()
	return true
}

// Remove deletes a member (a no-op if absent) and reports whether the ring
// changed.
func (r *Ring) Remove(member string) bool {
	if !r.members[member] {
		return false
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Members returns the member names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].member
}

// OwnerOfVideo returns the member owning a video id.
func (r *Ring) OwnerOfVideo(id int) string { return r.Owner(fmt.Sprintf("video-%d", id)) }

// hash is FNV-1a over the key bytes, passed through a splitmix64-style
// finalizer. FNV alone clusters the near-identical keys this package feeds
// it ("shard-0#0", "shard-0#1", ...) into runs on the ring, which shows up
// directly as ownership imbalance; the finalizer's avalanche spreads them.
// Both stages are seedless and byte-deterministic, so a ring's layout is
// stable across processes and runs.
func hash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix(h.Sum64())
}

// mix is the splitmix64 finalizer (Vigna): a bijective avalanche over
// uint64.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
