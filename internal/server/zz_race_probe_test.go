package server

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"htlvideo"
)

func TestRootQueryOptsRace(t *testing.T) {
	s := htlvideo.NewStore(nil, htlvideo.DefaultWeights())
	for id := 1; id <= 8; id++ {
		v := htlvideo.NewVideo(id, fmt.Sprintf("clip %d", id), map[string]int{"shot": 2})
		v.Root.AppendChild(htlvideo.Seg().Attr("M1", htlvideo.Int(1)).Obj(htlvideo.ObjectID(100*id+1), "man").Build())
		v.Root.AppendChild(htlvideo.Seg().Attr("M2", htlvideo.Int(1)).Build())
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(s, WithParallelism(8))
	h := srv.Handler()
	for i := 0; i < 30; i++ {
		r := httptest.NewRequest("GET", "/query?q=EX+M1&root=1&level=2", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != 200 {
			t.Logf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
