package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := newLimiter(AdmissionConfig{MaxConcurrent: 2, QueueLen: 1, QueueWait: time.Minute})
	ctx := context.Background()
	// Fill both slots.
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Third request queues (asynchronously); once it holds the queue token,
	// a fourth sheds immediately.
	queued := make(chan error, 1)
	go func() { queued <- l.acquire(ctx) }()
	waitUntil(t, func() bool { return len(l.queue) == 1 })
	if err := l.acquire(ctx); !errors.Is(err, errShed) {
		t.Fatalf("fourth acquire: err = %v, want errShed", err)
	}
	// Releasing a slot admits the queued request.
	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
}

func TestLimiterQueueWaitSheds(t *testing.T) {
	l := newLimiter(AdmissionConfig{MaxConcurrent: 1, QueueLen: 1, QueueWait: 10 * time.Millisecond})
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := l.acquire(context.Background())
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed after the queue wait", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("shed after %v, want at least the 10ms queue wait", elapsed)
	}
	// The queue token was returned: a later request queues again instead of
	// shedding instantly.
	if len(l.queue) != 0 {
		t.Fatal("queue token leaked")
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := newLimiter(AdmissionConfig{MaxConcurrent: 1, QueueLen: 1, QueueWait: time.Minute})
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.acquire(ctx) }()
	waitUntil(t, func() bool { return len(l.queue) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled (a gone client is not a shed)", err)
	}
	if len(l.queue) != 0 {
		t.Fatal("queue token leaked on cancellation")
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
