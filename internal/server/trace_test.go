package server

// Request tracing at the serving layer: ?trace=1 returns the request's span
// tree in the envelope, an inbound X-Htl-Trace header joins the request into
// a distributed trace (with or without the span payload), and the store's
// recent traces surface on /debug/traces under the propagated id.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"htlvideo/internal/obs"
)

func traceTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(chaosStore(t, 3), WithRandSeed(1))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getTraced(t *testing.T, url, traceHeader string) (int, QueryResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceHeader != "" {
		req.Header.Set(obs.TraceHeader, traceHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func TestQueryTraceEnvelope(t *testing.T) {
	ts := traceTestServer(t)

	// Without ?trace= the envelope stays clean.
	code, plain := getTraced(t, ts.URL+"/query?q=M1", "")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if plain.TraceID != "" || plain.Trace != nil {
		t.Fatalf("untraced response carries trace fields: id=%q trace=%v", plain.TraceID, plain.Trace)
	}

	// ?trace=1 mints an id and returns the span tree.
	code, traced := getTraced(t, ts.URL+"/query?q=M1&trace=1", "")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if traced.TraceID == "" || traced.Trace == nil {
		t.Fatalf("traced response missing payload: id=%q trace=%v", traced.TraceID, traced.Trace)
	}
	if traced.Trace.ID != traced.TraceID {
		t.Fatalf("envelope id %q != snapshot id %q", traced.TraceID, traced.Trace.ID)
	}
	// The span tree has the eval stage with per-video spans, each video's
	// attempts carrying the store's own evaluation spans stitched beneath.
	if len(traced.Trace.Spans) == 0 {
		t.Fatal("empty span tree")
	}
	var evalSpan *obs.SpanSnapshot
	for i := range traced.Trace.Spans {
		if traced.Trace.Spans[i].Name == "evaluate" {
			evalSpan = &traced.Trace.Spans[i]
		}
	}
	if evalSpan == nil {
		t.Fatalf("no evaluate span among %+v", traced.Trace.Spans)
	}
	if len(evalSpan.Children) != 3 {
		t.Fatalf("evaluate has %d video spans, want 3", len(evalSpan.Children))
	}
	for _, vsp := range evalSpan.Children {
		if vsp.Tags["video"] == "" {
			t.Fatalf("video span untagged: %+v", vsp)
		}
		if len(vsp.Children) == 0 {
			t.Fatalf("video %s has no attempt span", vsp.Tags["video"])
		}
		attempt := vsp.Children[0]
		if attempt.Tags["attempt"] != "1" || attempt.Tags["outcome"] != "ok" {
			t.Fatalf("attempt tags = %+v", attempt.Tags)
		}
		if len(attempt.Children) == 0 {
			t.Fatalf("attempt carries no store spans for video %s", vsp.Tags["video"])
		}
	}

	// Malformed trace values are hard 400s, like every other parameter.
	if code, _ := getTraced(t, ts.URL+"/query?q=M1&trace=banana", ""); code != http.StatusBadRequest {
		t.Fatalf("invalid trace param: status %d, want 400", code)
	}
}

func TestInboundTraceHeaderJoins(t *testing.T) {
	ts := traceTestServer(t)
	const propagated = "0123456789abcdef0123456789abcdef"

	// Header + ?trace=1: the whole span tree runs under the caller's id.
	code, out := getTraced(t, ts.URL+"/query?q=M1&trace=1", propagated)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.TraceID != propagated {
		t.Fatalf("TraceID = %q, want the propagated %q", out.TraceID, propagated)
	}
	if out.Trace == nil || out.Trace.ID != propagated {
		t.Fatalf("span tree did not join the propagated id: %+v", out.Trace)
	}

	// Header alone (no span payload): the id is still echoed, so logs on
	// both sides of the wire correlate without paying for the payload.
	code, out = getTraced(t, ts.URL+"/query?q=M1", propagated)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.TraceID != propagated {
		t.Fatalf("header-only TraceID = %q, want %q", out.TraceID, propagated)
	}
	if out.Trace != nil {
		t.Fatal("header alone must not build the span payload")
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	ts := traceTestServer(t)
	const propagated = "fedcba9876543210fedcba9876543210"
	if code, _ := getTraced(t, ts.URL+"/query?q=M1&trace=1", propagated); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	// The store's trace ring retains the per-video query traces under the
	// propagated id; /debug/traces lists them and serves one by id.
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []obs.TraceSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("no traces retained")
	}
	found := false
	for _, s := range list {
		if s.ID == propagated {
			found = true
		}
	}
	if !found {
		t.Fatalf("no retained trace joined the propagated id; list = %+v", list)
	}

	resp2, err := http.Get(ts.URL + "/debug/traces?id=" + propagated)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fetch by id: status %d", resp2.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != propagated {
		t.Fatalf("fetched trace id = %q, want %q", snap.ID, propagated)
	}
}
