// Package server is the retrieval front-end: a long-running, fault-tolerant
// HTTP query server over an htlvideo.Store. It composes the store's
// resilience primitives (cancellation, bounded per-query worker pool, panic
// isolation, fault injection) and observability (internal/obs) with the
// standard serving toolkit:
//
//   - admission control — a bounded concurrency limiter with a small wait
//     queue that sheds load with 429 + Retry-After once full;
//   - per-request deadlines — a server default, capped client override via
//     ?timeout=, propagated through the store's QueryCtx path;
//   - a per-video circuit breaker — repeatedly failing videos are skipped
//     (reported in partial results) instead of stalling every query, and
//     probed again after a cool-down;
//   - retry with exponential backoff and full jitter — only for transient
//     errors (picture-system build failures, injected faults, contained
//     panics), never for parse or validation errors;
//   - hot store reload — SIGHUP or POST /-/reload re-reads the store file,
//     validates it fully, and atomically swaps it in while in-flight queries
//     finish on the old snapshot;
//   - graceful drain — shutdown stops accepting, drains in-flight requests
//     up to a deadline, then cancels stragglers.
//
// Every knob is an Option; every state transition (shed, breaker open/close,
// retry, reload, drain) is counted through internal/obs and visible on
// /metrics next to /healthz and /readyz.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"htlvideo"
	"htlvideo/internal/obs"
	"htlvideo/internal/obs/timeseries"
	"htlvideo/internal/resilience"
)

// Option tweaks the server's configuration.
type Option func(*config)

type config struct {
	admission AdmissionConfig
	breaker   BreakerConfig
	retry     RetryConfig
	// defaultTimeout bounds a request that names no ?timeout=; maxTimeout
	// caps what a client may ask for.
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	// drainTimeout bounds graceful shutdown before stragglers are cancelled.
	drainTimeout time.Duration
	// parallelism bounds one request's concurrent per-video evaluations.
	parallelism int
	// resultCache, when Capacity > 0, enables the store's result cache and
	// is re-applied to every reloaded store.
	resultCache htlvideo.ResultCacheConfig
	// queryStatsCapacity rebounds the store's per-plan-key statistics LRU
	// (0 keeps the default); re-applied on reload like the result cache.
	queryStatsCapacity int
	// sampleInterval, when positive, starts the background metrics sampler.
	sampleInterval time.Duration
	now            func() time.Time
	rand           func(n int64) int64
	logger         obs.Logger
}

// WithAdmission sets the load-shedding limits.
func WithAdmission(a AdmissionConfig) Option { return func(c *config) { c.admission = a } }

// WithBreaker sets the per-video circuit-breaker thresholds.
func WithBreaker(b BreakerConfig) Option { return func(c *config) { c.breaker = b } }

// WithRetry sets the transient-error retry policy.
func WithRetry(r RetryConfig) Option { return func(c *config) { c.retry = r } }

// WithDefaultTimeout sets the per-request deadline used when the client
// names none.
func WithDefaultTimeout(d time.Duration) Option { return func(c *config) { c.defaultTimeout = d } }

// WithMaxTimeout caps the deadline a client may request via ?timeout=.
func WithMaxTimeout(d time.Duration) Option { return func(c *config) { c.maxTimeout = d } }

// WithDrainTimeout bounds graceful shutdown: past it, in-flight requests are
// cancelled and the listener closed.
func WithDrainTimeout(d time.Duration) Option { return func(c *config) { c.drainTimeout = d } }

// WithParallelism bounds one request's concurrent per-video evaluations
// (default GOMAXPROCS).
func WithParallelism(n int) Option { return func(c *config) { c.parallelism = n } }

// WithResultCache enables the store's query-result cache (see
// htlvideo.Store.EnableResultCache) on the served store and on every store
// swapped in by Reload. A Capacity of 0 leaves caching off.
func WithResultCache(rc htlvideo.ResultCacheConfig) Option {
	return func(c *config) { c.resultCache = rc }
}

// WithClock injects the time source (tests).
func WithClock(now func() time.Time) Option { return func(c *config) { c.now = now } }

// WithRandSeed seeds the retry jitter deterministically (tests).
func WithRandSeed(seed int64) Option {
	return func(c *config) { c.rand = resilience.SeededRand(seed) }
}

// WithLogger installs a logger for reload, drain and shed events.
func WithLogger(l obs.Logger) Option { return func(c *config) { c.logger = l } }

// serverMetrics are the serving layer's own counters and gauges, registered
// in a registry separate from the store's (the store is swapped on reload;
// the server's history is not).
type serverMetrics struct {
	reg *obs.Registry

	requests   *obs.Counter
	responses  *obs.Counter
	shed       *obs.Counter
	panics     *obs.Counter
	inFlight   *obs.Gauge
	queued     *obs.Gauge
	reqLat     *obs.Histogram
	retries    *obs.Counter
	brOpened   *obs.Counter
	brHalfOpen *obs.Counter
	brClosed   *obs.Counter
	brSkipped  *obs.Counter
	reloads    *obs.Counter
	reloadErrs *obs.Counter
	cacheInval *obs.Counter
	drains     *obs.Counter
	drainForce *obs.Counter
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:        reg,
		requests:   reg.Counter("server.requests.total"),
		responses:  reg.Counter("server.responses.total"),
		shed:       reg.Counter("server.requests.shed"),
		panics:     reg.Counter("server.panics_recovered"),
		inFlight:   reg.Gauge("server.requests.in_flight"),
		queued:     reg.Gauge("server.requests.queued"),
		reqLat:     reg.Histogram("server.request.latency", nil),
		retries:    reg.Counter("server.retries"),
		brOpened:   reg.Counter("server.breaker.opened"),
		brHalfOpen: reg.Counter("server.breaker.half_open"),
		brClosed:   reg.Counter("server.breaker.closed"),
		brSkipped:  reg.Counter("server.breaker.videos_skipped"),
		reloads:    reg.Counter("server.reloads"),
		reloadErrs: reg.Counter("server.reload_errors"),
		cacheInval: reg.Counter("server.result_cache.invalidations"),
		drains:     reg.Counter("server.drains"),
		drainForce: reg.Counter("server.drains_forced"),
	}
}

// Server is the fault-tolerant query server. Create one with New (an
// in-memory store) or Open (a store file, enabling hot reload), mount
// Handler on a listener via Serve, and stop with Shutdown.
type Server struct {
	cfg     config
	store   atomic.Pointer[htlvideo.Store]
	m       *serverMetrics
	limiter *limiter
	breaker *Breaker
	retry   *resilience.Retrier
	// sampler keeps the merged server + current-store metrics history
	// (started only under WithSampleInterval; stopped by Shutdown).
	sampler *timeseries.Sampler

	// storePath enables Reload; empty for in-memory servers.
	storePath string
	// dataDir enables durable mode (OpenDir): Reload becomes
	// reload-as-recovery over the directory and /-/checkpoint + Checkpoint
	// work. durableOpts are re-applied on every reload.
	dataDir     string
	durableOpts []htlvideo.DurableOption
	// reloadMu serializes reloads (SIGHUP racing POST /-/reload).
	reloadMu sync.Mutex

	// baseCtx is the ancestor of every request context; baseCancel is the
	// drain deadline's hammer.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a server over an in-memory store (Reload then has no source
// and fails; use Open for a file-backed server).
func New(st *htlvideo.Store, opts ...Option) *Server {
	cfg := config{
		admission:      AdmissionConfig{MaxConcurrent: runtime.GOMAXPROCS(0), QueueLen: runtime.GOMAXPROCS(0), QueueWait: 100 * time.Millisecond},
		breaker:        DefaultBreakerConfig(),
		retry:          DefaultRetryConfig(),
		defaultTimeout: 5 * time.Second,
		maxTimeout:     30 * time.Second,
		drainTimeout:   10 * time.Second,
		parallelism:    runtime.GOMAXPROCS(0),
		now:            time.Now,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxTimeout < cfg.defaultTimeout {
		cfg.maxTimeout = cfg.defaultTimeout
	}
	if cfg.parallelism < 1 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	m := newServerMetrics()
	// Scrapes of this server identify the binary: build_info, start time,
	// uptime, pid. They live in the server registry, which survives reloads.
	obs.RegisterProcessMetrics(m.reg)
	s := &Server{cfg: cfg, m: m}
	if cfg.resultCache.Capacity > 0 {
		st.EnableResultCache(cfg.resultCache)
	}
	if cfg.queryStatsCapacity > 0 {
		st.SetQueryStatsCapacity(cfg.queryStatsCapacity)
	}
	s.store.Store(st)
	s.sampler = s.newSampler()
	if cfg.sampleInterval > 0 {
		s.sampler.Start(cfg.sampleInterval)
	}
	s.limiter = newLimiter(cfg.admission)
	s.limiter.waiting, s.limiter.shed = m.queued, m.shed
	s.breaker = NewBreaker(cfg.breaker, cfg.now, func(key int64, from, to BreakerState) {
		switch to {
		case StateOpen:
			m.brOpened.Inc()
		case StateHalfOpen:
			m.brHalfOpen.Inc()
		case StateClosed:
			m.brClosed.Inc()
		}
		s.logf("server: breaker video %d: %v -> %v", key, from, to)
	})
	s.retry = resilience.NewRetrier(cfg.retry, cfg.rand, func(attempt int, err error) {
		m.retries.Inc()
	})
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// Open builds a file-backed server: the store is loaded (and fully
// validated) from path, and Reload re-reads the same path.
func Open(path string, opts ...Option) (*Server, error) {
	st, err := htlvideo.LoadFile(path)
	if err != nil {
		return nil, err
	}
	s := New(st, opts...)
	s.storePath = path
	return s, nil
}

// OpenDir builds a durable-store-backed server: the store recovers from the
// data directory's latest snapshot plus the write-ahead log's committed
// tail (htlvideo.OpenDurable), mutations commit WAL-first, and Reload
// re-runs the same recovery. dopts configure the durable store (fsync
// policy, checkpoint triggers) and are re-applied on every reload.
func OpenDir(dir string, dopts []htlvideo.DurableOption, opts ...Option) (*Server, error) {
	st, err := htlvideo.OpenDurable(dir, dopts...)
	if err != nil {
		return nil, err
	}
	s := New(st, opts...)
	s.dataDir = dir
	s.durableOpts = dopts
	return s, nil
}

// Store returns the current store snapshot. Queries in flight keep the
// snapshot they started with across reloads.
func (s *Server) Store() *htlvideo.Store { return s.store.Load() }

// Checkpoint folds the durable store's write-ahead log into a fresh
// snapshot now (POST /-/checkpoint and SIGUSR1 land here). It fails on
// servers not opened with OpenDir.
func (s *Server) Checkpoint() error {
	st := s.Store()
	if st == nil || !st.Durable() {
		return errors.New("server: no durable store to checkpoint (use -data-dir)")
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	ds := st.DurableStats()
	s.logf("server: checkpointed %s at seq %d", ds.Dir, ds.SnapshotSeq)
	return nil
}

// Metrics exposes the serving layer's metric registry (the store has its
// own, reachable via Store().Metrics()).
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// Reload re-reads the store file, validates it fully, and atomically swaps
// it in. In-flight queries finish on the old snapshot; a failed load leaves
// the serving store untouched. It fails for in-memory servers.
//
// The swap is also the result-cache invalidation point: the new store starts
// with an empty cache (re-enabled with the configured limits before it
// becomes visible), and queries that raced the reload either completed on
// the old snapshot — old store, old cache — or start on the new one. A
// cached result can therefore never mix contents across a reload.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.dataDir != "" {
		return s.reloadDurable()
	}
	if s.storePath == "" {
		s.m.reloadErrs.Inc()
		return errors.New("server: no store file to reload (in-memory store)")
	}
	st, err := htlvideo.LoadFile(s.storePath)
	if err != nil {
		s.m.reloadErrs.Inc()
		s.logf("server: reload %s failed: %v", s.storePath, err)
		return fmt.Errorf("server: reloading %s: %w", s.storePath, err)
	}
	if s.cfg.resultCache.Capacity > 0 {
		st.EnableResultCache(s.cfg.resultCache)
		s.m.cacheInval.Inc()
	}
	if s.cfg.queryStatsCapacity > 0 {
		st.SetQueryStatsCapacity(s.cfg.queryStatsCapacity)
	}
	s.store.Store(st)
	s.m.reloads.Inc()
	s.logf("server: reloaded %s (%d videos)", s.storePath, len(st.Videos()))
	return nil
}

// reloadDurable is reload-as-recovery (caller holds reloadMu): the serving
// store's write-ahead log is closed — a final flush, then the directory is
// free — and the same recovery a process restart would run reopens it:
// latest snapshot, WAL tail, torn-record truncation. In-flight queries
// finish on the old in-memory snapshot; the new store's WAL position can
// only be at or past the old one (recovery reads everything the old writer
// committed). If reopening fails the old snapshot keeps serving queries, but
// its log is closed, so mutations fail until a later reload succeeds — a
// degradation to read-only, never a store that silently drops commits.
func (s *Server) reloadDurable() error {
	old := s.store.Load()
	if old != nil {
		if err := old.Close(); err != nil {
			s.logf("server: closing store before reload: %v", err)
		}
	}
	st, err := htlvideo.OpenDurable(s.dataDir, s.durableOpts...)
	if err != nil {
		s.m.reloadErrs.Inc()
		s.logf("server: recovering %s failed (serving the previous snapshot read-only): %v", s.dataDir, err)
		return fmt.Errorf("server: recovering %s: %w", s.dataDir, err)
	}
	if s.cfg.resultCache.Capacity > 0 {
		st.EnableResultCache(s.cfg.resultCache)
		s.m.cacheInval.Inc()
	}
	if s.cfg.queryStatsCapacity > 0 {
		st.SetQueryStatsCapacity(s.cfg.queryStatsCapacity)
	}
	s.store.Store(st)
	s.m.reloads.Inc()
	ds := st.DurableStats()
	s.logf("server: recovered %s (%d videos, seq %d)", s.dataDir, len(st.Videos()), ds.Seq)
	return nil
}

// Serve accepts connections on l until Shutdown. The underlying
// http.Server is hardened (see NewHTTPServer) and every request context
// descends from the server's base context so a forced drain cancels
// stragglers.
func (s *Server) Serve(l net.Listener) error {
	srv := NewHTTPServer("", s.Handler())
	srv.BaseContext = func(net.Listener) context.Context { return s.baseCtx }
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves (see Serve).
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server gracefully: it stops accepting, flips /readyz
// to 503, waits for in-flight requests up to the drain timeout (bounded
// also by ctx), then cancels stragglers through the base context and closes
// remaining connections. Safe to call once per Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.m.drains.Inc()
	s.sampler.Close()
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	// Whatever the drain's outcome, the durable store's log gets a final
	// flush and release (a no-op for in-memory stores).
	defer s.closeStore()
	if srv == nil {
		s.baseCancel()
		return nil
	}
	dctx, cancel := context.WithTimeout(ctx, s.cfg.drainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if err != nil {
		// The drain deadline passed with requests still in flight: cancel
		// their contexts and tear the connections down.
		s.m.drainForce.Inc()
		s.logf("server: drain deadline exceeded, cancelling stragglers: %v", err)
		s.baseCancel()
		cerr := srv.Close()
		if cerr != nil && !errors.Is(cerr, http.ErrServerClosed) {
			return cerr
		}
		return err
	}
	s.baseCancel()
	s.logf("server: drained cleanly")
	return nil
}

// closeStore releases the serving store's disk side under the reload lock
// (so a racing reload cannot reopen what shutdown is closing).
func (s *Server) closeStore() {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if st := s.store.Load(); st != nil {
		if err := st.Close(); err != nil {
			s.logf("server: closing store: %v", err)
		}
	}
}

// Draining reports whether Shutdown has begun (readyz turns 503).
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.logger != nil {
		s.cfg.logger.Logf(format, args...)
	}
}
