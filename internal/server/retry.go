package server

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"htlvideo"
	"htlvideo/internal/faultinject"
)

// RetryConfig tunes the transient-error retry loop.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first;
	// 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the attempt-n delay is drawn
	// uniformly from [0, min(MaxDelay, BaseDelay·2^(n-1))] — "full jitter",
	// which decorrelates retry storms across concurrent clients.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling.
	MaxDelay time.Duration
}

// DefaultRetryConfig returns the serving defaults.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
}

// IsTransient classifies an error as retryable. Transient failures are the
// ones a fresh attempt can plausibly clear: picture-system build failures
// (evicted from the cache, so a retry rebuilds), injected faults, and
// contained evaluation panics. Context cancellation/deadline errors and
// everything else — parse errors never reach the retry loop, validation and
// engine-capability errors are deterministic — are not retried.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *htlvideo.PanicError
	return errors.Is(err, htlvideo.ErrPictureBuild) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.As(err, &pe)
}

// retrier runs a function with exponential backoff and full jitter. The
// random source and the sleep function are injected so the loop is a
// deterministic unit under test (the server wires a seeded lockedRand and a
// context-aware timer sleep).
type retrier struct {
	cfg       RetryConfig
	rand      func(n int64) int64 // uniform in [0, n)
	sleep     func(ctx context.Context, d time.Duration) error
	onAttempt func(attempt int, err error) // called before each re-attempt
}

func newRetrier(cfg RetryConfig, rnd func(n int64) int64, onAttempt func(int, error)) *retrier {
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 1
	}
	if cfg.BaseDelay < 0 {
		cfg.BaseDelay = 0
	}
	if cfg.MaxDelay < cfg.BaseDelay {
		cfg.MaxDelay = cfg.BaseDelay
	}
	if rnd == nil {
		rnd = newLockedRand(time.Now().UnixNano()).int63n
	}
	return &retrier{cfg: cfg, rand: rnd, sleep: timerSleep, onAttempt: onAttempt}
}

// do runs fn until it succeeds, fails permanently, exhausts MaxAttempts, or
// the context dies while backing off. The last error is returned.
func (r *retrier) do(ctx context.Context, fn func() error, transient func(error) bool) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || attempt >= r.cfg.MaxAttempts || !transient(err) {
			return err
		}
		if r.onAttempt != nil {
			r.onAttempt(attempt, err)
		}
		if serr := r.sleep(ctx, r.delay(attempt)); serr != nil {
			// The deadline died while backing off; the caller sees the
			// failure that prompted the retry, not the backoff's demise.
			return err
		}
	}
}

// delay draws the full-jitter backoff for the given (1-based) attempt.
func (r *retrier) delay(attempt int) time.Duration {
	ceil := r.cfg.BaseDelay
	for i := 1; i < attempt && ceil < r.cfg.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > r.cfg.MaxDelay {
		ceil = r.cfg.MaxDelay
	}
	if ceil <= 0 {
		return 0
	}
	return time.Duration(r.rand(int64(ceil) + 1))
}

// timerSleep blocks for d or until ctx is done.
func timerSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// lockedRand is a mutex-guarded rand.Rand: math/rand's global source would
// be shared process state, and per-request sources would defeat seeding.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
