package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"htlvideo"
	"htlvideo/internal/obs"
	"htlvideo/internal/obs/dash"
	"htlvideo/internal/obs/querystats"
)

// NewHTTPServer returns an http.Server hardened against slow clients: header
// and body read timeouts bound a Slowloris-style drip-feed, the write
// timeout bounds a reader that never drains, and header size is capped.
// Every listener in this repo (htlserve, htlquery's -metrics-addr) goes
// through it.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// QueryResponse is the /query payload.
type QueryResponse struct {
	// Class is the parsed formula's class.
	Class string `json:"class"`
	// Videos counts the videos eligible for the query (those with segments
	// at the asserted level); Evaluated the subset that produced a list.
	Videos    int `json:"videos"`
	Evaluated int `json:"evaluated"`
	// Top is the k highest-similarity segment runs across all videos.
	Top []RankedDoc `json:"top"`
	// Skipped lists videos not attempted (open circuit breaker).
	Skipped []SkipDoc `json:"skipped,omitempty"`
	// Failed lists videos whose evaluation failed after retries.
	Failed []FailDoc `json:"failed,omitempty"`
	// Retries counts extra evaluation attempts spent on transient errors.
	Retries int64 `json:"retries,omitempty"`
	// ElapsedMS is the server-side wall time of the request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID is the distributed trace id the request ran under: the inbound
	// X-Htl-Trace value when one was propagated, or a freshly minted id when
	// the request asked for a trace.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the request's span tree (per-video evaluation with the store's
	// own spans stitched under each attempt), present with ?trace=1. A
	// coordinator stitches it under its scatter spans to build the
	// cross-process trace.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// RankedDoc is one ranked segment run.
type RankedDoc struct {
	Video int     `json:"video"`
	Beg   int     `json:"beg"`
	End   int     `json:"end"`
	Sim   float64 `json:"sim"`
	Frac  float64 `json:"frac"`
}

// SkipDoc is one video skipped without evaluation.
type SkipDoc struct {
	Video  int    `json:"video"`
	Reason string `json:"reason"`
}

// FailDoc is one video that failed evaluation.
type FailDoc struct {
	Video   int    `json:"video"`
	Error   string `json:"error"`
	Timeout bool   `json:"timeout,omitempty"`
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

// Handler returns the server's full endpoint set:
//
//	GET  /query          evaluate an HTL query (q, level, root, engine, tau,
//	                     k, timeout, partial, trace parameters; trace=1 adds
//	                     the span tree to the envelope, and an inbound
//	                     X-Htl-Trace header joins the request into a
//	                     distributed trace)
//	POST /explain        evaluate with per-plan-node profiling and return the
//	                     annotated plan (q plus the /query parameters, and
//	                     exact=true for exact time attribution)
//	GET  /healthz        liveness: 200 while the process runs
//	GET  /readyz         readiness: 200 while serving, 503 once draining
//	POST /-/reload       re-read and swap the store file (durable servers:
//	                     re-run snapshot + WAL recovery over the data dir)
//	POST /-/checkpoint   fold the durable store's WAL into a fresh snapshot
//	GET  /metrics        server + current-store metrics and stats (JSON by
//	                     default; Prometheus text format via Accept or
//	                     ?format=prometheus)
//	GET  /debug/slowlog  the current store's slow-query log
//	GET  /debug/traces   the current store's recent traces (?id= for one)
//	GET  /debug/pprof/*  runtime profiles
//	GET  /debug/queries  per-plan-key workload statistics (?sort=calls|
//	                     total|mean, ?limit=N)
//	GET  /debug/timeseries  windowed rates and latency-quantile trends from
//	                     the background sampler (WithSampleInterval)
//	GET  /debug/health   the component health rollup with reasons
//	GET  /debug/dash     self-contained auto-refreshing HTML dashboard
//
// Every handler is panic-isolated: a panic is contained, counted, and
// answered with 500 instead of killing the connection's goroutine.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() || s.Store() == nil {
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "draining"})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/-/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorDoc{Error: "POST required"})
			return
		}
		if err := s.Reload(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Reloaded bool `json:"reloaded"`
			Videos   int  `json:"videos"`
		}{true, len(s.Store().Videos())})
	})
	mux.HandleFunc("/-/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorDoc{Error: "POST required"})
			return
		}
		if err := s.Checkpoint(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorDoc{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Checkpointed bool                  `json:"checkpointed"`
			Durable      htlvideo.DurableStats `json:"durable"`
		}{true, s.Store().DurableStats()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Store()
		if obs.WantsPrometheus(r) {
			// Server and store registries share one exposition; their metric
			// namespaces (server.*, query.*, process/build) are disjoint.
			regs := []*obs.Registry{s.m.reg}
			if st != nil {
				regs = append(regs, st.Metrics())
			}
			obs.PrometheusHandler(w, regs...)
			return
		}
		doc := struct {
			Server obs.RegistrySnapshot `json:"server"`
			Store  obs.RegistrySnapshot `json:"store"`
			Stats  any                  `json:"stats"`
		}{Server: s.m.reg.Snapshot()}
		if st != nil {
			doc.Store = st.Metrics().Snapshot()
			doc.Stats = st.Stats()
		}
		writeJSON(w, http.StatusOK, doc)
	})
	// The slow log and profiles belong to the current store snapshot; the
	// indirection keeps them pointing at the freshly reloaded store.
	debug := func(w http.ResponseWriter, r *http.Request) {
		if st := s.Store(); st != nil {
			st.DebugHandler().ServeHTTP(w, r)
			return
		}
		http.NotFound(w, r)
	}
	mux.HandleFunc("/debug/slowlog", debug)
	mux.HandleFunc("/debug/traces", debug)
	mux.HandleFunc("/debug/pprof/", debug)
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		querystats.ServeSnapshot(w, r, s.queryStatsSnapshot())
	})
	mux.Handle("/debug/timeseries", s.sampler)
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteHealth(w, s.Health())
	})
	mux.Handle("/debug/dash", dash.Handler(dash.Sources{
		Title:   "htlserve",
		Health:  s.Health,
		Queries: s.queryStatsSnapshot,
		Sampler: s.sampler,
		Sparks: []string{
			"server.requests.total", "server.request.latency",
			"server.requests.in_flight", "query.total", "query.latency",
		},
	}))
	return s.instrument(mux)
}

// instrument wraps the mux with panic isolation and request accounting.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		s.m.inFlight.Inc()
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Inc()
				s.logf("server: panic serving %s: %v", r.URL.Path, rec)
				// Best effort: if the handler already wrote, the connection
				// is poisoned and the write below is a no-op.
				writeJSON(w, http.StatusInternalServerError, errorDoc{Error: "internal error"})
			}
			s.m.inFlight.Dec()
			s.m.reqLat.Observe(time.Since(start))
			s.m.responses.Inc()
		}()
		next.ServeHTTP(w, r)
	})
}

// handleQuery evaluates one HTL query under admission control: parse the
// parameters and the formula, then fan the store's videos out over a bounded
// pool where each video runs behind its circuit breaker with transient-error
// retries, and merge whatever survived into a ranked partial result.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	st := s.Store()
	if st == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "no store loaded"})
		return
	}
	if err := s.limiter.acquire(r.Context()); err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.limiter.retryAfter().Seconds())))
			writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: "overloaded, retry later"})
			return
		}
		// The client went away while queued; nothing to say to it.
		writeJSON(w, http.StatusRequestTimeout, errorDoc{Error: err.Error()})
		return
	}
	defer s.limiter.release()

	start := time.Now()
	p, status, err := s.parseQueryRequest(r)
	if err != nil {
		writeJSON(w, status, errorDoc{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.Timeout)
	defer cancel()

	out := s.evaluate(ctx, st, p)
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)

	switch {
	case ctx.Err() != nil && out.Evaluated == 0:
		// The deadline consumed the whole request.
		writeJSON(w, http.StatusGatewayTimeout, out)
	case !p.Partial && len(out.Failed) > 0:
		writeJSON(w, http.StatusInternalServerError, out)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// handleExplain evaluates one query with per-plan-node profiling and returns
// the annotated plan tree as JSON (htlvideo.ExplainResult). It runs under the
// same admission control as /query — an explain is a full evaluation, only
// with attribution switched on — and requires POST: it always executes the
// query against the store, caches bypassed.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorDoc{Error: "POST required"})
		return
	}
	st := s.Store()
	if st == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "no store loaded"})
		return
	}
	if err := s.limiter.acquire(r.Context()); err != nil {
		if errors.Is(err, errShed) {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.limiter.retryAfter().Seconds())))
			writeJSON(w, http.StatusTooManyRequests, errorDoc{Error: "overloaded, retry later"})
			return
		}
		writeJSON(w, http.StatusRequestTimeout, errorDoc{Error: err.Error()})
		return
	}
	defer s.limiter.release()

	p, status, err := s.parseQueryRequest(r)
	if err != nil {
		writeJSON(w, status, errorDoc{Error: err.Error()})
		return
	}
	exact := false
	if v := r.FormValue("exact"); v != "" {
		if exact, err = strconv.ParseBool(v); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("invalid exact %q", v)})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.Timeout)
	defer cancel()

	opts := []htlvideo.QueryOption{
		htlvideo.AtLevel(p.Level),
		htlvideo.WithUntilThreshold(p.Tau),
		htlvideo.WithEngine(p.Engine),
	}
	if p.AtRoot {
		opts = append(opts, htlvideo.AtRoot())
	}
	if p.Partial {
		opts = append(opts, htlvideo.WithPartialResults())
	}
	if exact {
		opts = append(opts, htlvideo.WithExactProfile())
	}
	if p.TraceID != "" {
		// The explain's trace (and so its trace_id field) joins the
		// coordinator's distributed trace.
		opts = append(opts, htlvideo.WithTraceID(p.TraceID))
	}
	er, err := st.ExplainCtx(ctx, p.Query, opts...)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, errorDoc{Error: truncate(err.Error(), 300)})
		return
	}
	writeJSON(w, http.StatusOK, er)
}

// QueryParams is one parsed and validated /query request. The coordinator
// (internal/shard) parses with the same function, so validation — including
// the hard 400 on malformed ?timeout= — behaves identically at every layer.
type QueryParams struct {
	Query   string
	Formula htlvideo.Formula
	Level   int
	AtRoot  bool
	Engine  htlvideo.Engine
	Tau     float64
	K       int
	Timeout time.Duration
	Partial bool
	// Trace asks for the request's span-tree snapshot in the response
	// envelope (?trace=1).
	Trace bool
	// TraceID is inbound distributed trace context (the X-Htl-Trace header),
	// empty when the request starts a trace of its own. Its presence alone —
	// with or without ?trace=1 — joins this process's query traces into the
	// caller's trace id.
	TraceID string
}

// ParseDefaults are the knobs ParseQueryRequest needs from the serving
// configuration.
type ParseDefaults struct {
	// DefaultTimeout bounds a request that names no ?timeout=; MaxTimeout
	// caps what a client may ask for.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
}

// parseQueryRequest validates the request against the server's configuration.
func (s *Server) parseQueryRequest(r *http.Request) (QueryParams, int, error) {
	return ParseQueryRequest(r, ParseDefaults{
		DefaultTimeout: s.cfg.defaultTimeout,
		MaxTimeout:     s.cfg.maxTimeout,
	})
}

// ParseQueryRequest validates a /query-shaped request. Parse and validation
// failures are terminal — they are deterministic and are never retried — and
// answer 400.
//
// Unlike http.Request.FormValue, a malformed query string (a broken percent
// escape, say) or a present-but-unparseable ?timeout= is a hard 400, never a
// silent fall-back to defaults: a client that asked for a 250ms budget and
// mistyped it must hear about it rather than run under the server's default
// deadline.
func ParseQueryRequest(r *http.Request, d ParseDefaults) (p QueryParams, status int, err error) {
	p = QueryParams{Level: 2, Tau: 0.5, K: 10, Timeout: d.DefaultTimeout, Partial: true}
	// ParseForm is what FormValue calls underneath, except its error — a
	// malformed query string or body — is surfaced instead of swallowed.
	if err := r.ParseForm(); err != nil {
		return p, http.StatusBadRequest, fmt.Errorf("malformed request parameters: %v", err)
	}
	q := r.Form.Get("q")
	if q == "" {
		return p, http.StatusBadRequest, errors.New("missing q parameter")
	}
	p.Query = q
	if p.Formula, err = htlvideo.Parse(q); err != nil {
		return p, http.StatusBadRequest, fmt.Errorf("parsing query: %w", err)
	}
	if v := r.Form.Get("level"); v != "" {
		if p.Level, err = strconv.Atoi(v); err != nil || p.Level < 1 {
			return p, http.StatusBadRequest, fmt.Errorf("invalid level %q", v)
		}
	}
	if v := r.Form.Get("root"); v != "" {
		if p.AtRoot, err = strconv.ParseBool(v); err != nil {
			return p, http.StatusBadRequest, fmt.Errorf("invalid root %q", v)
		}
	}
	if p.AtRoot {
		p.Level = 1
	}
	switch v := r.Form.Get("engine"); v {
	case "", "auto":
		p.Engine = htlvideo.EngineAuto
	case "direct":
		p.Engine = htlvideo.EngineDirect
	case "sql":
		p.Engine = htlvideo.EngineSQL
	case "reference":
		p.Engine = htlvideo.EngineReference
	default:
		return p, http.StatusBadRequest, fmt.Errorf("unknown engine %q", v)
	}
	if v := r.Form.Get("tau"); v != "" {
		if p.Tau, err = strconv.ParseFloat(v, 64); err != nil || p.Tau < 0 || p.Tau > 1 {
			return p, http.StatusBadRequest, fmt.Errorf("invalid tau %q", v)
		}
	}
	if v := r.Form.Get("k"); v != "" {
		if p.K, err = strconv.Atoi(v); err != nil || p.K < 1 {
			return p, http.StatusBadRequest, fmt.Errorf("invalid k %q", v)
		}
	}
	if raw, ok := r.Form["timeout"]; ok {
		// Present but empty is as much a client bug as an unparseable value.
		v := ""
		if len(raw) > 0 {
			v = raw[0]
		}
		d2, perr := time.ParseDuration(v)
		if perr != nil || d2 <= 0 {
			return p, http.StatusBadRequest, fmt.Errorf("invalid timeout %q", v)
		}
		if d2 > d.MaxTimeout {
			d2 = d.MaxTimeout
		}
		p.Timeout = d2
	}
	if v := r.Form.Get("partial"); v != "" {
		if p.Partial, err = strconv.ParseBool(v); err != nil {
			return p, http.StatusBadRequest, fmt.Errorf("invalid partial %q", v)
		}
	}
	if v := r.Form.Get("trace"); v != "" {
		if p.Trace, err = strconv.ParseBool(v); err != nil {
			return p, http.StatusBadRequest, fmt.Errorf("invalid trace %q", v)
		}
	}
	p.TraceID = r.Header.Get(obs.TraceHeader)
	return p, http.StatusOK, nil
}

// evaluate fans the eligible videos out over the per-request pool: each
// video passes its circuit breaker, runs with transient-error retries, and
// reports its outcome back to the breaker. The merge mirrors the store's
// partial-result semantics at the serving layer — a failing or tripped
// video costs its own results only.
func (s *Server) evaluate(ctx context.Context, st *htlvideo.Store, p QueryParams) *QueryResponse {
	out := &QueryResponse{Class: fmt.Sprint(htlvideo.Classify(p.Formula))}
	var eligible []int
	for _, v := range st.Videos() {
		if len(v.Sequence(p.Level)) == 0 {
			continue
		}
		eligible = append(eligible, v.ID)
	}
	out.Videos = len(eligible)

	// Trace context: an inbound X-Htl-Trace alone joins every per-video store
	// trace into the caller's id (they surface in this process's slow log and
	// trace ring under it); ?trace=1 additionally builds a request-level span
	// tree — one span per video, each attempt a child carrying the store's
	// own spans — returned in the envelope for the caller to stitch.
	var tr *obs.Trace
	var evalSpan *obs.Span
	if p.Trace {
		tr = obs.NewTrace(p.Query)
		tr.SetID(p.TraceID)
		tr.SetTag("layer", "server")
		tr.SetTag("class", out.Class)
		tr.SetTag("videos", strconv.Itoa(out.Videos))
		evalSpan = tr.StartSpan("evaluate")
	}
	out.TraceID = p.TraceID

	opts := []htlvideo.QueryOption{
		htlvideo.AtLevel(p.Level),
		htlvideo.WithUntilThreshold(p.Tau),
		htlvideo.WithEngine(p.Engine),
	}
	if p.AtRoot {
		opts = append(opts, htlvideo.AtRoot())
	}
	if p.TraceID != "" {
		opts = append(opts, htlvideo.WithTraceID(p.TraceID))
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lists    = map[int]htlvideo.SimList{}
		attempts atomic.Int64
		sem      = make(chan struct{}, s.cfg.parallelism)
	)
	for _, id := range eligible {
		id := id
		if !s.breaker.Allow(int64(id)) {
			s.m.brSkipped.Inc()
			out.Skipped = append(out.Skipped, SkipDoc{Video: id, Reason: "breaker open"})
			if evalSpan != nil {
				sp := evalSpan.StartSpan("video")
				sp.SetTag("video", strconv.Itoa(id))
				sp.SetTag("skipped", "breaker open")
				sp.End()
			}
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var vsp *obs.Span
			if evalSpan != nil {
				vsp = evalSpan.StartSpan("video")
				vsp.SetTag("video", strconv.Itoa(id))
				defer vsp.End()
			}
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				// Never attempted: release the breaker reservation.
				s.breaker.Cancel(int64(id))
				vsp.SetTag("outcome", "deadline before start")
				mu.Lock()
				out.Failed = append(out.Failed, FailDoc{Video: id, Error: ctx.Err().Error(), Timeout: true})
				mu.Unlock()
				return
			}
			var list htlvideo.SimList
			attempt := 0
			err := s.retry.Do(ctx, func() error {
				attempts.Add(1)
				attempt++
				// Copy: concurrent per-video goroutines must not share the
				// base slice's backing array through append.
				vopts := make([]htlvideo.QueryOption, 0, len(opts)+2)
				vopts = append(vopts, opts...)
				vopts = append(vopts, htlvideo.OnVideo(id))
				var asp *obs.Span
				var col *obs.TraceCollector
				if vsp != nil {
					asp = vsp.StartSpan("attempt")
					asp.SetTag("attempt", strconv.Itoa(attempt))
					col = &obs.TraceCollector{}
					vopts = append(vopts, htlvideo.WithTrace(col))
				}
				res, e := st.QueryFormulaCtx(ctx, p.Formula, vopts...)
				if asp != nil {
					if e != nil {
						asp.SetTag("outcome", truncate(e.Error(), 120))
					} else {
						asp.SetTag("outcome", "ok")
					}
					if last := col.Last(); last != nil {
						// The store's own spans (build/eval/merge) become this
						// attempt's subtree, same as a shard's remote spans.
						asp.AttachRemote(last.Snapshot().Spans)
					}
					asp.End()
				}
				if e != nil {
					return e
				}
				list = res.PerVideo[id]
				return nil
			}, IsTransient)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				s.breaker.Report(int64(id), false)
				lists[id] = list
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// The request's own deadline died, which says nothing about
				// the video's health.
				s.breaker.Cancel(int64(id))
				out.Failed = append(out.Failed, FailDoc{Video: id, Error: err.Error(), Timeout: true})
			default:
				s.breaker.Report(int64(id), true)
				out.Failed = append(out.Failed, FailDoc{Video: id, Error: truncate(err.Error(), 300)})
			}
		}()
	}
	wg.Wait()
	evalSpan.End()

	out.Evaluated = len(lists)
	out.Retries = attempts.Load() - int64(out.Evaluated+len(out.Failed))
	if out.Retries < 0 {
		out.Retries = 0
	}
	mergeSpan := tr.StartSpan("merge")
	res := st.NewResults(lists)
	for _, rk := range res.TopKCtx(ctx, p.K) {
		out.Top = append(out.Top, RankedDoc{
			Video: rk.VideoID, Beg: rk.Iv.Beg, End: rk.Iv.End,
			Sim: rk.Sim.Act, Frac: rk.Sim.Frac(),
		})
	}
	mergeSpan.End()
	if tr != nil {
		tr.SetTag("evaluated", strconv.Itoa(out.Evaluated))
		tr.Finish()
		out.TraceID = tr.ID()
		snap := tr.Snapshot()
		out.Trace = &snap
		// The request-level trace is retained alongside the per-video store
		// traces, so /debug/traces on this process shows the stitched view.
		st.TraceRing().ObserveTrace(tr)
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
