package server

// POST /explain and the Prometheus side of /metrics: the endpoint returns an
// annotated plan tree as JSON with the linkage identifiers filled in, rejects
// GETs and bad input, and the metrics endpoint serves both registries —
// server and store — in the scrapeable text format on request while staying
// JSON by default.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"htlvideo"
	"htlvideo/internal/obs"
)

func explainServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(chaosStore(t, 2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postExplain(t *testing.T, ts *httptest.Server, form url.Values) (*http.Response, htlvideo.ExplainResult) {
	t.Helper()
	resp, err := ts.Client().PostForm(ts.URL+"/explain", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er htlvideo.ExplainResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return resp, er
}

// TestExplainEndpoint: a valid POST returns the annotated tree with stats and
// identifiers; the tree's shape follows the query.
func TestExplainEndpoint(t *testing.T) {
	_, ts := explainServer(t)
	resp, er := postExplain(t, ts, url.Values{"q": {"M1 until M2"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/explain = %d", resp.StatusCode)
	}
	if er.Plan == nil || er.Plan.Op != "until" || len(er.Plan.Children) != 2 {
		t.Fatalf("plan = %+v, want an until node with two children", er.Plan)
	}
	if er.Plan.Stats.Visits == 0 {
		t.Fatal("no visits attributed to the root")
	}
	if er.PlanKey == "" || er.TraceID == "" || er.Class != "type1" {
		t.Fatalf("identifiers: %+v", er)
	}
	if er.Videos != 2 {
		t.Fatalf("videos = %d, want 2", er.Videos)
	}
}

// TestExplainEndpointErrors: GET is rejected with Allow, parse failures are
// 400, and an invalid exact flag is 400.
func TestExplainEndpointErrors(t *testing.T) {
	_, ts := explainServer(t)
	resp, err := ts.Client().Get(ts.URL + "/explain?q=M1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /explain = %d, Allow = %q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	if resp, _ := postExplain(t, ts, url.Values{"q": {"until until"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postExplain(t, ts, url.Values{"q": {"M1"}, "exact": {"maybe"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad exact = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postExplain(t, ts, url.Values{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q = %d, want 400", resp.StatusCode)
	}
}

// TestServerMetricsPrometheus: /metrics negotiates the text format and the
// exposition contains the server registry, the store registry, and the
// process-identification gauges; JSON remains the default.
func TestServerMetricsPrometheus(t *testing.T) {
	_, ts := explainServer(t)
	// Generate some store-side traffic so the query counters exist.
	if resp, _ := postExplain(t, ts, url.Values{"q": {"M1"}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up explain = %d", resp.StatusCode)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"server_requests_total", // server registry counter
		"query_total",           // store registry counter
		"build_info{",           // process identification
		"process_uptime_seconds",
		`le="+Inf"`,
		"# TYPE server_request_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Default stays JSON with both registries' sections.
	resp2, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}
	var doc struct {
		Server obs.RegistrySnapshot `json:"server"`
		Store  obs.RegistrySnapshot `json:"store"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Server.Counters["server.requests.total"]; !ok {
		t.Fatal("JSON missing server counters")
	}
	if _, ok := doc.Store.Counters["query.total"]; !ok {
		t.Fatal("JSON missing store counters")
	}
}
