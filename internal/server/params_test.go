package server

// Regression tests for request-parameter validation: a ?timeout= the server
// cannot parse must be a 400 with a JSON error body, never a silent fall-back
// to the default deadline (http.Request.FormValue swallows query-string parse
// errors, which is exactly the trap).

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func paramsServer(t *testing.T) *Server {
	t.Helper()
	return New(chaosStore(t, 1),
		WithDefaultTimeout(time.Second),
		WithMaxTimeout(2*time.Second),
	)
}

func TestTimeoutParseFailuresReturn400(t *testing.T) {
	srv := paramsServer(t)
	h := srv.Handler()
	for name, target := range map[string]string{
		"garbage value":  "/query?q=M1&timeout=banana",
		"bare number":    "/query?q=M1&timeout=250", // a duration needs a unit
		"empty value":    "/query?q=M1&timeout=",
		"negative":       "/query?q=M1&timeout=-5s",
		"zero":           "/query?q=M1&timeout=0s",
		"broken escape":  "/query?q=M1&timeout=5%zzs", // FormValue would drop the pair silently
		"malformed pair": "/query?q=M1&time%zzout=5s",
	} {
		t.Run(name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("GET %s = %d, want 400\nbody: %s", target, rec.Code, rec.Body)
			}
			var doc struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
				t.Fatalf("GET %s: body is not a JSON error doc: %v\n%s", target, err, rec.Body)
			}
			if doc.Error == "" {
				t.Fatalf("GET %s: empty error message", target)
			}
		})
	}
}

func TestTimeoutValidValuesStillAccepted(t *testing.T) {
	srv := paramsServer(t)
	h := srv.Handler()
	for _, target := range []string{
		"/query?q=M1",               // no timeout: default deadline
		"/query?q=M1&timeout=250ms", // explicit budget
		"/query?q=M1&timeout=10s",   // over max: capped, not rejected
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200\nbody: %s", target, rec.Code, rec.Body)
		}
	}
}

func TestTimeoutCappedAtMax(t *testing.T) {
	p, status, err := ParseQueryRequest(
		httptest.NewRequest(http.MethodGet, "/query?q=M1&timeout=1h", nil),
		ParseDefaults{DefaultTimeout: time.Second, MaxTimeout: 2 * time.Second},
	)
	if err != nil || status != http.StatusOK {
		t.Fatalf("parse: %v (%d)", err, status)
	}
	if p.Timeout != 2*time.Second {
		t.Fatalf("Timeout = %v, want capped 2s", p.Timeout)
	}
}

func TestParseQueryRequestReadsPostForms(t *testing.T) {
	// /explain posts its parameters as a form body; the shared parser must
	// keep reading them (and reject bad ones) there too.
	req := httptest.NewRequest(http.MethodPost, "/explain", strings.NewReader("q=M1&timeout=oops"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	_, status, err := ParseQueryRequest(req, ParseDefaults{DefaultTimeout: time.Second, MaxTimeout: time.Second})
	if err == nil || status != http.StatusBadRequest {
		t.Fatalf("bad form timeout: status=%d err=%v, want 400", status, err)
	}
}
