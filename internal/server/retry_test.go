package server

// Pure unit tests for the retry/backoff loop: a recording fake sleeper and a
// seeded random source, no real sleeps.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"htlvideo"
	"htlvideo/internal/faultinject"
)

// fakeSleeper records requested backoff delays instead of sleeping.
type fakeSleeper struct {
	delays []time.Duration
	// err, when set, is returned on the errAt-th sleep (1-based).
	err   error
	errAt int
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	if f.err != nil && len(f.delays) == f.errAt {
		return f.err
	}
	return nil
}

func testRetrier(cfg RetryConfig, seed int64) (*retrier, *fakeSleeper) {
	r := newRetrier(cfg, newLockedRand(seed).int63n, nil)
	fs := &fakeSleeper{}
	r.sleep = fs.sleep
	return r, fs
}

var errTransient = fmt.Errorf("%w: flaky", faultinject.ErrInjected)

func TestRetrySucceedsFirstTry(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.do(context.Background(), func() error { calls++; return nil }, IsTransient)
	if err != nil || calls != 1 || len(fs.delays) != 0 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/1/0", err, calls, len(fs.delays))
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errTransient
		}
		return nil
	}, IsTransient)
	if err != nil || calls != 3 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want nil/3/2", err, calls, len(fs.delays))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond}, 1)
	calls := 0
	err := r.do(context.Background(), func() error { calls++; return errTransient }, IsTransient)
	if !errors.Is(err, faultinject.ErrInjected) || calls != 3 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want injected/3/2", err, calls, len(fs.delays))
	}
}

func TestRetryNeverRetriesPermanentErrors(t *testing.T) {
	for name, err := range map[string]error{
		"validation": errors.New("htlvideo: the SQL baseline supports only the additive conjunction semantics"),
		"cancel":     context.Canceled,
		"deadline":   context.DeadlineExceeded,
		"wrapped":    fmt.Errorf("video 3: %w", context.DeadlineExceeded),
	} {
		r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, 1)
		calls := 0
		got := r.do(context.Background(), func() error { calls++; return err }, IsTransient)
		if got != err || calls != 1 || len(fs.delays) != 0 {
			t.Errorf("%s: err=%v calls=%d sleeps=%d, want the error once with no sleeps", name, got, calls, len(fs.delays))
		}
	}
}

func TestRetryBackoffIsBoundedFullJitter(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 6, BaseDelay: 4 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
	r, fs := testRetrier(cfg, 42)
	_ = r.do(context.Background(), func() error { return errTransient }, IsTransient)
	if len(fs.delays) != 5 {
		t.Fatalf("sleeps = %d, want 5", len(fs.delays))
	}
	// Full jitter: attempt n draws from [0, min(MaxDelay, Base·2^(n-1))].
	ceils := []time.Duration{4, 8, 10, 10, 10}
	for i, d := range fs.delays {
		if d < 0 || d > ceils[i]*time.Millisecond {
			t.Fatalf("delay %d = %v outside [0, %v]", i+1, d, ceils[i]*time.Millisecond)
		}
	}
}

func TestRetryDeterministicUnderSeed(t *testing.T) {
	run := func() []time.Duration {
		r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond}, 7)
		_ = r.do(context.Background(), func() error { return errTransient }, IsTransient)
		return fs.delays
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

func TestRetryStopsWhenContextDiesDuringBackoff(t *testing.T) {
	r, fs := testRetrier(RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}, 1)
	fs.err, fs.errAt = context.DeadlineExceeded, 2
	calls := 0
	err := r.do(context.Background(), func() error { calls++; return errTransient }, IsTransient)
	// The loop surfaces the failure that prompted the retry, not the
	// backoff's own demise, and stops immediately.
	if !errors.Is(err, faultinject.ErrInjected) || calls != 2 || len(fs.delays) != 2 {
		t.Fatalf("err=%v calls=%d sleeps=%d, want injected/2/2", err, calls, len(fs.delays))
	}
}

func TestIsTransientClassification(t *testing.T) {
	pe := &htlvideo.PanicError{Value: "boom"}
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected", errTransient, true},
		{"build", fmt.Errorf("%w: disk hiccup", htlvideo.ErrPictureBuild), true},
		{"panic", fmt.Errorf("video 2: %w", pe), true},
		{"cancel", context.Canceled, false},
		{"deadline", fmt.Errorf("aborted: %w", context.DeadlineExceeded), false},
		{"validation", errors.New("unknown engine"), false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
