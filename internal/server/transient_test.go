package server

// The retry/backoff loop itself is unit-tested in internal/resilience; what
// belongs to the serving layer is the error classification feeding it.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"htlvideo"
	"htlvideo/internal/faultinject"
)

func TestIsTransientClassification(t *testing.T) {
	pe := &htlvideo.PanicError{Value: "boom"}
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected", fmt.Errorf("%w: flaky", faultinject.ErrInjected), true},
		{"build", fmt.Errorf("%w: disk hiccup", htlvideo.ErrPictureBuild), true},
		{"panic", fmt.Errorf("video 2: %w", pe), true},
		{"cancel", context.Canceled, false},
		{"deadline", fmt.Errorf("aborted: %w", context.DeadlineExceeded), false},
		{"validation", errors.New("unknown engine"), false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}
