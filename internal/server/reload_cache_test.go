package server

// Result-cache coherence across hot reload: a reloaded store must never be
// answered from results computed over the previous contents. Invalidation is
// structural — the cache lives on the Store and the whole Store is swapped —
// so these tests drive real queries (sequential and concurrent with reloads,
// meaningful under -race) and assert no response ever mixes generations.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"htlvideo"
)

// saveChaosStore writes an n-video store file and returns its path.
func saveChaosStore(t *testing.T, path string, n int) {
	t.Helper()
	if err := chaosStore(t, n).SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// queryEvaluated runs /query?q=M1 and returns how many videos answered.
func queryEvaluated(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/query?q=M1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return qr.Evaluated
}

// TestReloadInvalidatesResultCache: cached answers from the old store must
// not survive a reload that changes the contents.
func TestReloadInvalidatesResultCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	saveChaosStore(t, path, 2)
	srv, err := Open(path, WithResultCache(htlvideo.ResultCacheConfig{Capacity: 64}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache on the 2-video store; the repeat must be served from it.
	if got := queryEvaluated(t, ts); got != 2 {
		t.Fatalf("cold query evaluated %d videos, want 2", got)
	}
	if got := queryEvaluated(t, ts); got != 2 {
		t.Fatalf("warm query evaluated %d videos, want 2", got)
	}
	if hits := srv.Store().Stats().ResultCache.Hits; hits == 0 {
		t.Fatal("repeat query did not hit the result cache")
	}

	// Reload onto 3 videos: the very next query must see all 3.
	saveChaosStore(t, path, 3)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := queryEvaluated(t, ts); got != 3 {
		t.Fatalf("post-reload query evaluated %d videos, want 3 (stale cached result?)", got)
	}
	// The fresh store's cache is live again (re-enabled before the swap).
	if got := queryEvaluated(t, ts); got != 3 {
		t.Fatalf("post-reload warm query evaluated %d videos, want 3", got)
	}
	if hits := srv.Store().Stats().ResultCache.Hits; hits == 0 {
		t.Fatal("post-reload repeat did not hit the new store's cache")
	}
	snap := srv.Metrics().Snapshot()
	if got := snap.Counters["server.result_cache.invalidations"]; got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
}

// TestConcurrentQueriesAcrossReload: identical queries hammered while the
// store flips between 2 and 3 videos may see either snapshot, never a blend;
// after the dust settles the answer matches the final file. Run with -race.
func TestConcurrentQueriesAcrossReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	saveChaosStore(t, path, 2)
	srv, err := Open(path, WithResultCache(htlvideo.ResultCacheConfig{Capacity: 64}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-serialize both snapshots so the reloader goroutine only writes
	// bytes (no testing.T use off the test goroutine).
	snapshots := make([][]byte, 0, 2)
	for _, n := range []int{2, 3} {
		p := filepath.Join(t.TempDir(), "snap.json")
		saveChaosStore(t, p, n)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		snapshots = append(snapshots, b)
	}

	const clients, perClient, reloads = 8, 20, 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := ts.Client().Get(ts.URL + "/query?q=M1")
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					// Load shed under the default admission limits: fine,
					// just not a data point.
					resp.Body.Close()
					continue
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					errs <- fmt.Errorf("/query = %d", resp.StatusCode)
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if qr.Evaluated != 2 && qr.Evaluated != 3 {
					errs <- fmt.Errorf("evaluated %d videos, want a clean 2- or 3-video snapshot", qr.Evaluated)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			if err := os.WriteFile(path, snapshots[(i+1)%2], 0o644); err != nil {
				errs <- err
				return
			}
			if err := srv.Reload(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Settle on a known final state and confirm the cache serves it.
	saveChaosStore(t, path, 3)
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := queryEvaluated(t, ts); got != 3 {
			t.Fatalf("final query evaluated %d videos, want 3", got)
		}
	}
}
