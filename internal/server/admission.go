package server

import (
	"context"
	"errors"
	"time"
)

// AdmissionConfig tunes the server's load shedding.
type AdmissionConfig struct {
	// MaxConcurrent bounds the queries executing at once.
	MaxConcurrent int
	// QueueLen bounds the requests allowed to wait for a slot; a request
	// arriving with the queue full is shed immediately with 429.
	QueueLen int
	// QueueWait bounds how long a queued request waits before it too is
	// shed — queueing converts short bursts into latency, shedding keeps
	// sustained overload from building an unbounded backlog.
	QueueWait time.Duration
}

// errShed is returned by acquire when the request must be shed (429).
var errShed = errors.New("server: overloaded, request shed")

// limiter is the admission controller: a slot semaphore plus a bounded wait
// queue, both plain buffered channels so acquisition composes with context
// cancellation in one select.
type limiter struct {
	cfg   AdmissionConfig
	slots chan struct{}
	queue chan struct{}
	// waiting and shed are observation hooks (gauge, counter); either may
	// be nil.
	waiting interface{ Add(int64) }
	shed    interface{ Inc() }
}

func newLimiter(cfg AdmissionConfig) *limiter {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.QueueLen < 0 {
		cfg.QueueLen = 0
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 100 * time.Millisecond
	}
	return &limiter{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxConcurrent),
		queue: make(chan struct{}, cfg.QueueLen),
	}
}

// acquire claims an execution slot, queueing up to QueueWait when all slots
// are busy. It returns errShed when the queue is full or the wait expires,
// or ctx.Err() when the caller gave up first. On nil the caller must call
// release exactly once.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	// All slots busy: take a queue position without blocking, or shed.
	select {
	case l.queue <- struct{}{}:
	default:
		if l.shed != nil {
			l.shed.Inc()
		}
		return errShed
	}
	if l.waiting != nil {
		l.waiting.Add(1)
	}
	defer func() {
		<-l.queue
		if l.waiting != nil {
			l.waiting.Add(-1)
		}
	}()
	t := time.NewTimer(l.cfg.QueueWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-t.C:
		if l.shed != nil {
			l.shed.Inc()
		}
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot.
func (l *limiter) release() { <-l.slots }

// retryAfter estimates how long a shed client should wait before retrying:
// roughly one queue-wait, floored at a second so clients do not hammer.
func (l *limiter) retryAfter() time.Duration {
	if l.cfg.QueueWait > time.Second {
		return l.cfg.QueueWait
	}
	return time.Second
}
