package server

import (
	"context"
	"errors"

	"htlvideo"
	"htlvideo/internal/faultinject"
	"htlvideo/internal/resilience"
)

// The breaker and retry state machines are shared with the shard coordinator
// (internal/shard) and live in internal/resilience; the aliases below keep
// this package's configuration surface where serving users expect it. What
// stays here is the serving-specific part: the transient-error classifier,
// which knows the store's error taxonomy.

type (
	// BreakerConfig tunes the per-video circuit breakers.
	BreakerConfig = resilience.BreakerConfig
	// BreakerState is one circuit's state.
	BreakerState = resilience.BreakerState
	// Breaker is a keyed set of circuit breakers — one circuit per video id.
	Breaker = resilience.Breaker
	// RetryConfig tunes the transient-error retry loop.
	RetryConfig = resilience.RetryConfig
)

const (
	// StateClosed admits everything and tracks the failure rate.
	StateClosed = resilience.StateClosed
	// StateOpen rejects everything until OpenFor elapses.
	StateOpen = resilience.StateOpen
	// StateHalfOpen admits a bounded number of probes to test recovery.
	StateHalfOpen = resilience.StateHalfOpen
)

// DefaultBreakerConfig returns the serving defaults.
func DefaultBreakerConfig() BreakerConfig { return resilience.DefaultBreakerConfig() }

// DefaultRetryConfig returns the serving defaults.
func DefaultRetryConfig() RetryConfig { return resilience.DefaultRetryConfig() }

// NewBreaker builds a keyed breaker. now may be nil (time.Now); onTransition
// may be nil.
var NewBreaker = resilience.NewBreaker

// IsTransient classifies an error as retryable. Transient failures are the
// ones a fresh attempt can plausibly clear: picture-system build failures
// (evicted from the cache, so a retry rebuilds), injected faults, and
// contained evaluation panics. Context cancellation/deadline errors and
// everything else — parse errors never reach the retry loop, validation and
// engine-capability errors are deterministic — are not retried.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *htlvideo.PanicError
	return errors.Is(err, htlvideo.ErrPictureBuild) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.As(err, &pe)
}
