package server

// Serving-layer workload analytics: the health rollup (/debug/health), the
// timeseries sampler over the merged server + current-store registries
// (/debug/timeseries, and the dashboard's sparklines), and the options that
// size the store's per-plan-key statistics. The sampler's source is a
// function over Store(), so hot reload does not detach it — it samples
// whatever store is serving at each tick.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"htlvideo/internal/obs"
	"htlvideo/internal/obs/querystats"
	"htlvideo/internal/obs/timeseries"
)

// WithQueryStatsCapacity rebounds the served store's per-plan-key workload
// statistics LRU (0 keeps querystats.DefaultCapacity). Re-applied to every
// store swapped in by Reload, so the bound survives hot reloads.
func WithQueryStatsCapacity(n int) Option {
	return func(c *config) { c.queryStatsCapacity = n }
}

// WithSampleInterval starts the background metrics sampler at the given
// cadence, feeding /debug/timeseries and the dashboard's sparklines. A
// non-positive interval leaves sampling off (the endpoints then serve empty
// histories); Shutdown stops the sampler.
func WithSampleInterval(d time.Duration) Option {
	return func(c *config) { c.sampleInterval = d }
}

// newSampler builds the server's sampler: each scrape merges the serving
// registry with the current store's (disjoint namespaces — server.* and
// process/build on one side, query.*, cache.*, wal.* on the other).
func (s *Server) newSampler() *timeseries.Sampler {
	return timeseries.New(func() obs.RegistrySnapshot {
		snaps := []obs.RegistrySnapshot{s.m.reg.Snapshot()}
		if st := s.Store(); st != nil {
			snaps = append(snaps, st.Metrics().Snapshot())
		}
		return obs.MergeSnapshots(snaps...)
	})
}

// queryStatsSnapshot snapshots the current store's per-plan-key statistics
// (empty when no store is loaded).
func (s *Server) queryStatsSnapshot() querystats.Snapshot {
	if st := s.Store(); st != nil {
		return st.QueryStats().Snapshot()
	}
	return querystats.Snapshot{Entries: []querystats.EntrySnapshot{}}
}

// Health assembles the serving rollup: drain state, admission pressure,
// per-video breaker states, then the current store's own components (caches,
// WAL lag, checkpoint recency). Every degraded component names its cause.
func (s *Server) Health() obs.HealthDoc {
	var d obs.HealthDoc
	if s.Draining() {
		d.Add("server", false, "draining")
	} else {
		d.Add("server", true, fmt.Sprintf("%d requests, %d shed, %d panics",
			s.m.requests.Value(), s.m.shed.Value(), s.m.panics.Value()))
	}

	queued := s.m.queued.Value()
	queueLen := s.limiter.cfg.QueueLen
	if queueLen > 0 && queued >= int64(queueLen) {
		d.Add("admission", false, fmt.Sprintf("admission queue full: %d waiting of %d slots", queued, queueLen))
	} else {
		d.Add("admission", true, fmt.Sprintf("%d in flight, %d queued", s.m.inFlight.Value(), queued))
	}

	var open, halfOpen []int64
	for key, st := range s.breaker.States() {
		switch st {
		case StateOpen:
			open = append(open, key)
		case StateHalfOpen:
			halfOpen = append(halfOpen, key)
		}
	}
	switch {
	case len(open) > 0:
		d.Add("breakers", false, fmt.Sprintf("breaker open for videos %s", keyList(open)))
	case len(halfOpen) > 0:
		d.Add("breakers", true, fmt.Sprintf("breaker half-open for videos %s", keyList(halfOpen)))
	default:
		d.Add("breakers", true, "all circuits closed")
	}

	st := s.Store()
	if st == nil {
		d.Add("store", false, "no store loaded")
		return d
	}
	d.Merge(st.Health())
	return d
}

// keyList renders breaker keys compactly, sorted, capped at eight.
func keyList(keys []int64) string {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var b strings.Builder
	for i, k := range keys {
		if i == 8 {
			fmt.Fprintf(&b, " and %d more", len(keys)-i)
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	return b.String()
}
