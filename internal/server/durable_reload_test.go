package server

// Hot reload under the durable store: SIGHUP-style Reload is
// reload-as-recovery (close the WAL, re-run snapshot + log replay, swap),
// and it must hold two invariants under concurrent query traffic — every
// in-flight query answers from a consistent snapshot (never an error, never
// a partially-applied store), and the WAL position is monotonic across
// reloads (recovery can never land behind what the closed writer had
// committed). Checkpoints interleave with reloads and must preserve both.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"htlvideo"
)

// durableChaosVideo mirrors chaosStore's shape for one video id.
func durableChaosVideo(id int) *htlvideo.Video {
	v := htlvideo.NewVideo(id, fmt.Sprintf("clip %d", id), map[string]int{"shot": 2})
	v.Root.AppendChild(htlvideo.Seg().Attr("M1", htlvideo.Int(1)).Obj(htlvideo.ObjectID(100*id+1), "man").Prop("holds_gun").Build())
	v.Root.AppendChild(htlvideo.Seg().Attr("M1", htlvideo.Int(1)).Attr("M2", htlvideo.Int(1)).Obj(htlvideo.ObjectID(100*id+2), "man").Build())
	v.Root.AppendChild(htlvideo.Seg().Attr("M2", htlvideo.Int(1)).Build())
	return v
}

func TestDurableReloadUnderTraffic(t *testing.T) {
	before := runtime.NumGoroutine()

	const seedVideos = 6
	dir := t.TempDir()
	seed, err := htlvideo.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= seedVideos; id++ {
		if err := seed.Add(durableChaosVideo(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := OpenDir(dir, nil,
		WithAdmission(AdmissionConfig{MaxConcurrent: 8, QueueLen: 8, QueueWait: 50 * time.Millisecond}),
		WithDefaultTimeout(2*time.Second),
		WithDrainTimeout(3*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Store().Videos()); got != seedVideos {
		t.Fatalf("recovered %d videos, want %d", got, seedVideos)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	// Query traffic for the whole reload storm: every response must be a
	// complete, consistent snapshot — 200, no failed videos, and a video
	// count some committed state actually had (between the seed and the
	// final count).
	const finalVideos = seedVideos + 8
	stopTraffic := make(chan struct{})
	var trafficWG sync.WaitGroup
	var queries atomic.Int64
	for c := 0; c < 6; c++ {
		trafficWG.Add(1)
		go func() {
			defer trafficWG.Done()
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				resp, err := client.Get(base + "/query?q=M1")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					t.Errorf("query body: %v", rerr)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query during reload = %d: %s", resp.StatusCode, body)
					return
				}
				var out QueryResponse
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("bad query body: %v", err)
					return
				}
				if len(out.Failed) > 0 {
					t.Errorf("query failed videos during reload: %s", body)
					return
				}
				if out.Videos < seedVideos || out.Videos > finalVideos {
					t.Errorf("inconsistent snapshot: %d videos (want %d..%d)", out.Videos, seedVideos, finalVideos)
					return
				}
				queries.Add(1)
			}
		}()
	}

	// The mutation/reload storm: commit a video, reload (recovery), assert
	// the WAL position never moves backward; checkpoint on every other
	// round and assert the snapshot sequence advances.
	lastSeq := srv.Store().DurableStats().Seq
	for round := 0; round < finalVideos-seedVideos; round++ {
		id := seedVideos + round + 1
		if err := srv.Store().Add(durableChaosVideo(id)); err != nil {
			t.Fatalf("round %d: Add: %v", round, err)
		}
		if round%2 == 1 {
			resp, err := client.Post(base+"/-/checkpoint", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: checkpoint = %d: %s", round, resp.StatusCode, body)
			}
			var out struct {
				Durable htlvideo.DurableStats `json:"durable"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("round %d: checkpoint body: %v", round, err)
			}
			if out.Durable.SnapshotSeq != out.Durable.Seq {
				t.Fatalf("round %d: checkpoint left wal tail: %+v", round, out.Durable)
			}
		}
		resp, err := client.Post(base+"/-/reload", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: reload = %d: %s", round, resp.StatusCode, body)
		}
		st := srv.Store().DurableStats()
		if st.Seq < lastSeq {
			t.Fatalf("round %d: WAL position moved backward: %d after %d", round, st.Seq, lastSeq)
		}
		lastSeq = st.Seq
		if got := len(srv.Store().Videos()); got != id {
			t.Fatalf("round %d: recovered %d videos, want %d", round, got, id)
		}
	}
	close(stopTraffic)
	trafficWG.Wait()
	if queries.Load() == 0 {
		t.Fatal("no query completed during the reload storm")
	}
	t.Logf("reload storm: %d queries, %d reloads, final seq %d", queries.Load(), srv.m.reloads.Value(), lastSeq)

	// Drain; Shutdown closes the durable store (final WAL flush). Drop the
	// client's keep-alive conns first: a never-used conn sits in StateNew
	// on the server, which Shutdown only reaps after ~5s — longer than the
	// drain timeout.
	client.CloseIdleConnections()
	if err := srv.Shutdown(t.Context()); err != nil {
		buf := make([]byte, 1<<20)
		t.Fatalf("shutdown: %v\n%s", err, buf[:runtime.Stack(buf, true)])
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	if err := srv.Store().Add(durableChaosVideo(999)); err == nil {
		t.Fatal("Add accepted after shutdown closed the store")
	}

	// The directory recovers to the full committed state.
	re, err := htlvideo.OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Videos()); got != finalVideos {
		t.Fatalf("post-shutdown recovery: %d videos, want %d", got, finalVideos)
	}
	if st := re.DurableStats(); st.Seq != lastSeq {
		t.Fatalf("post-shutdown recovery seq = %d, want %d", st.Seq, lastSeq)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
