package server

// End-to-end chaos test: the server is driven by concurrent clients while
// internal/faultinject injects build failures, evaluation panics and stalls.
// Asserted, in one server lifetime: load is shed with 429 (never a hang), no
// response is dropped, the per-video breaker opens on the failing video and
// recovers through half-open, hot reload swaps the store under traffic
// without failing in-flight queries, graceful shutdown drains within its
// deadline, and no goroutines leak. Run it with -race (the Makefile's check
// and chaos targets do).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"htlvideo"
	"htlvideo/internal/faultinject"
	"htlvideo/internal/obs"
)

// chaosStore builds n small videos with M1/M2-tagged shots at level 2, like
// the store-level resilience tests use.
func chaosStore(t *testing.T, n int) *htlvideo.Store {
	t.Helper()
	s := htlvideo.NewStore(nil, htlvideo.DefaultWeights())
	for id := 1; id <= n; id++ {
		v := htlvideo.NewVideo(id, fmt.Sprintf("clip %d", id), map[string]int{"shot": 2})
		v.Root.AppendChild(htlvideo.Seg().Attr("M1", htlvideo.Int(1)).Obj(htlvideo.ObjectID(100*id+1), "man").Prop("holds_gun").Build())
		v.Root.AppendChild(htlvideo.Seg().Attr("M1", htlvideo.Int(1)).Attr("M2", htlvideo.Int(1)).Obj(htlvideo.ObjectID(100*id+2), "man").Build())
		v.Root.AppendChild(htlvideo.Seg().Attr("M2", htlvideo.Int(1)).Build())
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestServerChaos(t *testing.T) {
	before := runtime.NumGoroutine()

	// A file-backed server so hot reload has a source.
	path := filepath.Join(t.TempDir(), "store.json")
	if err := chaosStore(t, 6).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	srv, err := Open(path,
		WithAdmission(AdmissionConfig{MaxConcurrent: 4, QueueLen: 2, QueueWait: 20 * time.Millisecond}),
		WithRetry(RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}),
		WithBreaker(BreakerConfig{Window: 8, MinVolume: 3, FailureRate: 0.5, OpenFor: 150 * time.Millisecond, HalfOpenProbes: 1}),
		WithDefaultTimeout(time.Second),
		WithMaxTimeout(2*time.Second),
		WithDrainTimeout(3*time.Second),
		WithParallelism(4),
		WithRandSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	get := func(t *testing.T, path string) (int, []byte) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	// Liveness and readiness while serving.
	if code, _ := get(t, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code, _ := get(t, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// Phase 1 — chaos: video 2's picture-system build always fails (the
	// failed build is evicted, so every query re-fails it and the breaker
	// sees a stream of failures); video 3 panics inside atomic evaluation
	// half the time; video 4 stalls a little, building queue pressure.
	faultinject.Arm(faultinject.NewPlan(1,
		faultinject.Rule{Site: faultinject.SitePictureNewSystem, Key: 2, Kind: faultinject.KindError},
		faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: 3, Kind: faultinject.KindPanic, Prob: 0.5},
		faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: 4, Kind: faultinject.KindStall, Stall: 3 * time.Millisecond, Prob: 0.5},
	))
	t.Cleanup(faultinject.Disarm)

	const clients, perClient = 32, 12
	queries := []string{"M1", "M1 until M2", "eventually M2"}
	var (
		wg        sync.WaitGroup
		responses atomic.Int64
		ok200     atomic.Int64
		shed429   atomic.Int64
		other     atomic.Int64
		sawSkip   atomic.Bool
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				resp, err := client.Get(base + "/query?timeout=500ms&q=" + strings.ReplaceAll(q, " ", "+"))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					t.Errorf("client %d: reading body: %v", c, rerr)
					return
				}
				responses.Add(1)
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					var out QueryResponse
					if err := json.Unmarshal(body, &out); err != nil {
						t.Errorf("client %d: bad body: %v\n%s", c, err, body)
						return
					}
					for _, sk := range out.Skipped {
						if sk.Video == 2 && sk.Reason == "breaker open" {
							sawSkip.Store(true)
						}
					}
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d: 429 without Retry-After", c)
						return
					}
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if got := responses.Load(); got != clients*perClient {
		t.Fatalf("responses = %d, want %d (none dropped)", got, clients*perClient)
	}
	if ok200.Load() == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	if shed429.Load() == 0 {
		t.Fatal("no request was shed: admission control never engaged")
	}
	t.Logf("chaos: %d ok, %d shed, %d other; retries=%d",
		ok200.Load(), shed429.Load(), other.Load(), srv.m.retries.Value())
	if srv.m.brOpened.Value() == 0 {
		t.Fatal("the breaker never opened despite video 2 failing every build")
	}
	if !sawSkip.Load() {
		t.Fatal("no response reported video 2 skipped with an open breaker")
	}
	if srv.m.retries.Value() == 0 {
		t.Fatal("no transient failure was retried")
	}

	// While video 2's circuit is open, /debug/health must read degraded with
	// a breakers reason naming the video. Keep querying (each failure or skip
	// re-settles the circuit) until the rollup flips.
	healthDegraded := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline) && !healthDegraded; {
		get(t, "/query?q=M1")
		_, hbody := get(t, "/debug/health")
		var hd obs.HealthDoc
		if err := json.Unmarshal(hbody, &hd); err != nil {
			t.Fatalf("decoding /debug/health: %v", err)
		}
		if hd.Status != obs.HealthDegraded {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		found := false
		for _, comp := range hd.Components {
			if comp.Name == "breakers" && !comp.OK && strings.Contains(comp.Reason, "breaker open for videos 2") {
				found = true
			}
		}
		if !found {
			t.Fatalf("degraded health without a breaker reason naming video 2: %+v", hd.Components)
		}
		healthDegraded = true
	}
	if !healthDegraded {
		t.Fatal("/debug/health never reported degraded while video 2's breaker was open")
	}

	// Phase 2 — recovery: faults stop, the cool-down elapses, and the next
	// queries must drive the breaker through half-open back to closed, with
	// video 2 evaluated again.
	faultinject.Disarm()
	time.Sleep(200 * time.Millisecond) // > OpenFor
	recovered := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		code, body := get(t, "/query?q=M1")
		if code != http.StatusOK {
			continue
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad body: %v", err)
		}
		if out.Evaluated == 6 && len(out.Failed) == 0 && len(out.Skipped) == 0 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("video 2 never recovered after faults stopped")
	}
	if srv.m.brClosed.Value() == 0 {
		t.Fatal("the breaker never closed through half-open")
	}
	// With every circuit closed again the health rollup must read ok.
	_, hbody := get(t, "/debug/health")
	var recoveredHealth obs.HealthDoc
	if err := json.Unmarshal(hbody, &recoveredHealth); err != nil {
		t.Fatalf("decoding /debug/health after recovery: %v", err)
	}
	if recoveredHealth.Status != obs.HealthOK {
		t.Fatalf("health after recovery = %s (%v), want ok", recoveredHealth.Status, recoveredHealth.Components)
	}

	// Phase 3 — hot reload under traffic: grow the store file to 7 videos
	// and swap it in while queries run; nothing in flight may fail.
	if err := chaosStore(t, 7).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var reloadWG sync.WaitGroup
	reloadErrs := make(chan string, 16)
	for c := 0; c < 8; c++ {
		reloadWG.Add(1)
		go func() {
			defer reloadWG.Done()
			for i := 0; i < 5; i++ {
				code, body := get(t, "/query?q=M1")
				if code == http.StatusTooManyRequests {
					// Admission backpressure, not a reload casualty: honor
					// the contract and retry.
					time.Sleep(5 * time.Millisecond)
					i--
					continue
				}
				if code != http.StatusOK {
					reloadErrs <- fmt.Sprintf("query during reload = %d: %s", code, body)
					return
				}
				var out QueryResponse
				if err := json.Unmarshal(body, &out); err != nil || len(out.Failed) > 0 {
					reloadErrs <- fmt.Sprintf("query during reload failed: %v %s", err, body)
					return
				}
			}
		}()
	}
	resp, err := client.Post(base+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d: %s", resp.StatusCode, reloadBody)
	}
	reloadWG.Wait()
	close(reloadErrs)
	for e := range reloadErrs {
		t.Fatal(e)
	}
	if code, body := get(t, "/query?q=M1"); code != http.StatusOK {
		t.Fatalf("query after reload = %d", code)
	} else {
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil || out.Videos != 7 {
			t.Fatalf("after reload Videos = %d (err %v), want 7", out.Videos, err)
		}
	}
	// A corrupt store file must be rejected whole, leaving the old snapshot.
	if err := os.WriteFile(path, []byte(`{"videos":[{"id":1,"segments":[{"children":[{}]},{}]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = client.Post(base+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload = %d, want 500", resp.StatusCode)
	}
	if code, body := get(t, "/query?q=M1"); code != http.StatusOK {
		t.Fatalf("query after failed reload = %d", code)
	} else {
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil || out.Videos != 7 {
			t.Fatalf("failed reload disturbed the store: Videos = %d", out.Videos)
		}
	}

	// Phase 4 — graceful drain: slow every evaluation down, put requests in
	// flight, and shut down. The drain must finish within its deadline with
	// every in-flight request answered.
	faultinject.Arm(faultinject.NewPlan(2, faultinject.Rule{
		Site: faultinject.SiteAtomicEval, Key: faultinject.KeyAny,
		Kind: faultinject.KindStall, Stall: 30 * time.Millisecond,
	}))
	drainResults := make(chan int, 4)
	for c := 0; c < 4; c++ {
		go func() {
			resp, err := client.Get(base + "/query?q=M1")
			if err != nil {
				drainResults <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			drainResults <- resp.StatusCode
		}()
	}
	waitUntil(t, func() bool { return srv.m.inFlight.Value() >= 2 })
	shutdownStart := time.Now()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(shutdownStart); elapsed > 3*time.Second {
		t.Fatalf("drain took %v, over the 3s deadline", elapsed)
	}
	for c := 0; c < 4; c++ {
		if code := <-drainResults; code != http.StatusOK {
			t.Fatalf("in-flight request during drain got %d, want 200", code)
		}
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if srv.m.drainForce.Value() != 0 {
		t.Fatal("drain was forced despite finishing in time")
	}

	// readyz flips to 503 once draining (asserted in-process: the listener
	// is gone).
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while drained = %d, want 503", rec.Code)
	}

	// No goroutine leaks: everything the server and the clients spawned
	// must settle.
	faultinject.Disarm()
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
