// Package track assigns database-wide object ids to anonymous per-frame
// detections — the §2.2 assumption made concrete: "we assume that there is a
// universal set of object ids and each object in a picture is assigned an
// object id such that the same object in different pictures is given the
// same id. (Using current technology, it is possible to track an object ...)".
//
// The tracker is a greedy nearest-neighbour matcher over appearance feature
// vectors: detections in consecutive frames link to the closest active track
// within a distance threshold (and with the same reported type); unmatched
// detections open new tracks; tracks expire after a configurable number of
// missed frames, so a re-appearing object far later gets a new id — exactly
// the behaviour the paper attributes to trackers ("track it in subsequent
// frames until it disappears from the scene").
package track

import (
	"fmt"
	"math"

	"htlvideo/internal/metadata"
)

// Detection is one anonymous object observation in one frame.
type Detection struct {
	// Feature is the appearance vector the tracker matches on.
	Feature []float64
	// Type is the detector's class label.
	Type string
	// Certainty is the detection confidence in (0, 1].
	Certainty float64
	// Attrs and Props carry through to the assigned object.
	Attrs map[string]metadata.Value
	Props map[string]bool
}

// Config tunes the tracker.
type Config struct {
	// MaxDistance is the largest L2 feature distance that still links a
	// detection to an active track (<= 0 selects 0.5).
	MaxDistance float64
	// MaxGap is how many consecutive frames a track survives without a
	// matching detection before it expires (< 0 selects 0: tracks must be
	// matched every frame).
	MaxGap int
	// FirstID seeds the id sequence (<= 0 selects 1).
	FirstID int64
}

type trackState struct {
	id       metadata.ObjectID
	feature  []float64
	typ      string
	lastSeen int
}

// Assign runs the tracker over the frame stream and returns, per frame, the
// detections materialized as metadata objects with stable ids.
func Assign(frames [][]Detection, cfg Config) ([][]metadata.Object, error) {
	maxDist := cfg.MaxDistance
	if maxDist <= 0 {
		maxDist = 0.5
	}
	maxGap := cfg.MaxGap
	if maxGap < 0 {
		maxGap = 0
	}
	nextID := cfg.FirstID
	if nextID <= 0 {
		nextID = 1
	}

	var active []*trackState
	out := make([][]metadata.Object, len(frames))
	for fi, dets := range frames {
		// Expire stale tracks: a track may miss at most MaxGap consecutive
		// frames (matching from the immediately previous frame misses none).
		kept := active[:0]
		for _, tr := range active {
			if missed := fi - tr.lastSeen - 1; missed <= maxGap {
				kept = append(kept, tr)
			}
		}
		active = kept

		// Greedy matching: repeatedly link the globally closest
		// (track, detection) pair under the threshold.
		type link struct {
			track *trackState
			det   int
		}
		assigned := make([]*trackState, len(dets))
		usedTrack := map[*trackState]bool{}
		for {
			best := link{}
			bestDist := maxDist
			found := false
			for di, d := range dets {
				if assigned[di] != nil {
					continue
				}
				if err := validateDetection(d, fi, di); err != nil {
					return nil, err
				}
				for _, tr := range active {
					if usedTrack[tr] || tr.typ != d.Type || tr.lastSeen == fi {
						continue
					}
					dist, err := l2(tr.feature, d.Feature)
					if err != nil {
						return nil, fmt.Errorf("track: frame %d detection %d: %w", fi, di, err)
					}
					if dist <= bestDist {
						bestDist = dist
						best = link{track: tr, det: di}
						found = true
					}
				}
			}
			if !found {
				break
			}
			assigned[best.det] = best.track
			usedTrack[best.track] = true
		}

		objs := make([]metadata.Object, 0, len(dets))
		for di, d := range dets {
			tr := assigned[di]
			if tr == nil {
				tr = &trackState{
					id:      metadata.ObjectID(nextID),
					typ:     d.Type,
					feature: append([]float64(nil), d.Feature...),
				}
				nextID++
				active = append(active, tr)
			} else {
				// Smooth the appearance model toward the new observation.
				for i := range tr.feature {
					tr.feature[i] = 0.5*tr.feature[i] + 0.5*d.Feature[i]
				}
			}
			tr.lastSeen = fi
			objs = append(objs, metadata.Object{
				ID:        tr.id,
				Type:      d.Type,
				Certainty: d.Certainty,
				Attrs:     d.Attrs,
				Props:     d.Props,
			})
		}
		out[fi] = objs
	}
	return out, nil
}

func validateDetection(d Detection, frame, idx int) error {
	if len(d.Feature) == 0 {
		return fmt.Errorf("track: frame %d detection %d has no feature vector", frame, idx)
	}
	if d.Certainty <= 0 || d.Certainty > 1 {
		return fmt.Errorf("track: frame %d detection %d has certainty %g outside (0,1]", frame, idx, d.Certainty)
	}
	return nil
}

func l2(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("feature dimensions differ (%d vs %d)", len(a), len(b))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}
