package track_test

import (
	"testing"

	"htlvideo/internal/metadata"
	"htlvideo/internal/track"
	"htlvideo/internal/videogen"
)

func feat(vals ...float64) []float64 { return vals }

func det(f []float64, typ string) track.Detection {
	return track.Detection{Feature: f, Type: typ, Certainty: 1}
}

func TestStableIDsAcrossFrames(t *testing.T) {
	frames := [][]track.Detection{
		{det(feat(0, 0), "man"), det(feat(1, 1), "woman")},
		{det(feat(0.05, 0.02), "man"), det(feat(0.98, 1.01), "woman")},
		{det(feat(0.01, 0.03), "man")},
	}
	objs, err := track.Assign(frames, track.Config{MaxDistance: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0][0].ID != objs[1][0].ID || objs[0][0].ID != objs[2][0].ID {
		t.Fatalf("man id drifted: %v %v %v", objs[0][0].ID, objs[1][0].ID, objs[2][0].ID)
	}
	if objs[0][1].ID != objs[1][1].ID {
		t.Fatalf("woman id drifted: %v %v", objs[0][1].ID, objs[1][1].ID)
	}
	if objs[0][0].ID == objs[0][1].ID {
		t.Fatal("distinct objects share an id")
	}
}

func TestTypeGateBlocksCrossTypeLinks(t *testing.T) {
	frames := [][]track.Detection{
		{det(feat(0, 0), "man")},
		{det(feat(0, 0), "train")}, // identical appearance, different class
	}
	objs, err := track.Assign(frames, track.Config{MaxDistance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0][0].ID == objs[1][0].ID {
		t.Fatal("tracker linked across types")
	}
}

func TestTrackExpiryAfterGap(t *testing.T) {
	frames := [][]track.Detection{
		{det(feat(0, 0), "man")},
		{},                       // disappears
		{},                       // still gone
		{det(feat(0, 0), "man")}, // far later: a new id
	}
	objs, err := track.Assign(frames, track.Config{MaxDistance: 0.3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if objs[0][0].ID == objs[3][0].ID {
		t.Fatal("track should have expired during the gap")
	}
	// With a generous gap the id survives.
	objs2, err := track.Assign(frames, track.Config{MaxDistance: 0.3, MaxGap: 3})
	if err != nil {
		t.Fatal(err)
	}
	if objs2[0][0].ID != objs2[3][0].ID {
		t.Fatal("track should survive within MaxGap")
	}
}

func TestGreedyPrefersClosestPair(t *testing.T) {
	frames := [][]track.Detection{
		{det(feat(0), "man"), det(feat(1), "man")},
		// Both detections are nearer to track B (1) than A (0); greedy
		// global matching must pair 0.9->B and 0.2->A, not first-come.
		{det(feat(0.9), "man"), det(feat(0.2), "man")},
	}
	objs, err := track.Assign(frames, track.Config{MaxDistance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if objs[1][0].ID != objs[0][1].ID {
		t.Fatalf("0.9 should link to the track at 1: %v vs %v", objs[1][0].ID, objs[0][1].ID)
	}
	if objs[1][1].ID != objs[0][0].ID {
		t.Fatalf("0.2 should link to the track at 0: %v vs %v", objs[1][1].ID, objs[0][0].ID)
	}
}

func TestNoDoubleAssignmentWithinFrame(t *testing.T) {
	frames := [][]track.Detection{
		{det(feat(0), "man")},
		{det(feat(0.01), "man"), det(feat(0.02), "man")},
	}
	objs, err := track.Assign(frames, track.Config{MaxDistance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if objs[1][0].ID == objs[1][1].ID {
		t.Fatal("one track claimed two detections in a frame")
	}
}

func TestValidation(t *testing.T) {
	if _, err := track.Assign([][]track.Detection{{{Type: "man", Certainty: 1}}}, track.Config{}); err == nil {
		t.Fatal("empty feature should fail")
	}
	if _, err := track.Assign([][]track.Detection{{det(feat(1), "man")}, {{Feature: feat(1, 2), Type: "man", Certainty: 1}}}, track.Config{MaxDistance: 10}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	if _, err := track.Assign([][]track.Detection{{{Feature: feat(1), Type: "man", Certainty: 0}}}, track.Config{}); err == nil {
		t.Fatal("zero certainty should fail")
	}
}

// TestAnonymizedPipelineRecoversIdentity: render → anonymize → track → the
// assigned ids are consistent wherever the ground truth was.
func TestAnonymizedPipelineRecoversIdentity(t *testing.T) {
	specs := []videogen.ShotSpec{
		{Frames: 6, Palette: 1, Objects: []metadata.Object{
			{ID: 1, Type: "man", Certainty: 0.9},
			{ID: 2, Type: "woman", Certainty: 0.8},
		}},
		{Frames: 6, Palette: 2, Objects: []metadata.Object{
			{ID: 1, Type: "man", Certainty: 0.9},
		}},
	}
	frames := videogen.Render(specs, 0.01, 3)
	dets := videogen.Anonymize(frames, 0.05, 4)
	objs, err := track.Assign(dets, track.Config{MaxDistance: 0.4, MaxGap: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Within every frame pair, ground-truth-equal objects must share the
	// assigned id and distinct ones must differ.
	assignedOf := func(fi int, truth metadata.ObjectID) (metadata.ObjectID, bool) {
		for i, o := range frames[fi].Objects {
			if o.ID == truth {
				return objs[fi][i].ID, true
			}
		}
		return 0, false
	}
	man0, _ := assignedOf(0, 1)
	for fi := range frames {
		if man, ok := assignedOf(fi, 1); ok && man != man0 {
			t.Fatalf("man id drifted at frame %d: %v vs %v", fi, man, man0)
		}
		if woman, ok := assignedOf(fi, 2); ok && woman == man0 {
			t.Fatalf("woman shares the man's id at frame %d", fi)
		}
	}
}
