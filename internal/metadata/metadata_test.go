package metadata

import (
	"strings"
	"testing"
)

// buildThreeLevel returns a video -> 2 scenes -> (3, 2) shots.
func buildThreeLevel(t *testing.T) *Video {
	t.Helper()
	v := NewVideo(1, "test", map[string]int{"scene": 2, "shot": 3})
	s1 := v.Root.AppendChild(Seg().Attr("title", Str("scene one")).Build())
	s2 := v.Root.AppendChild(Seg().Attr("title", Str("scene two")).Build())
	for i := 0; i < 3; i++ {
		s1.AppendChild(Seg().Obj(ObjectID(i+1), "man").Build())
	}
	for i := 0; i < 2; i++ {
		s2.AppendChild(Seg().Obj(ObjectID(i+10), "train").Build())
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return v
}

func TestHierarchyNumbering(t *testing.T) {
	v := buildThreeLevel(t)
	if v.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", v.Depth())
	}
	scenes := v.Sequence(2)
	if len(scenes) != 2 || scenes[0].Index != 1 || scenes[1].Index != 2 {
		t.Fatalf("scene sequence wrong: %v", scenes)
	}
	shots := v.Sequence(3)
	if len(shots) != 5 {
		t.Fatalf("shot sequence len = %d, want 5", len(shots))
	}
	// Indexes are per-parent, temporal order is global.
	if shots[3].Index != 1 || shots[3].Parent != scenes[1] {
		t.Fatal("fourth shot should be scene two's first child")
	}
}

func TestFirstDescendantAt(t *testing.T) {
	v := buildThreeLevel(t)
	fd := v.Root.FirstDescendantAt(3)
	if fd == nil || fd.Meta.Objects[0].ID != 1 {
		t.Fatalf("FirstDescendantAt(3) = %+v", fd)
	}
	if v.Root.FirstDescendantAt(1) != v.Root {
		t.Fatal("FirstDescendantAt(own level) should return the node")
	}
	if v.Root.FirstDescendantAt(9) != nil {
		t.Fatal("too-deep level should return nil")
	}
	leaf := v.Sequence(3)[0]
	if leaf.FirstDescendantAt(2) != nil {
		t.Fatal("upward level should return nil")
	}
}

func TestDescendantsAtEdge(t *testing.T) {
	v := buildThreeLevel(t)
	if got := v.Root.DescendantsAt(0); got != nil {
		t.Fatal("level above node should be nil")
	}
	if got := v.Root.DescendantsAt(1); len(got) != 1 || got[0] != v.Root {
		t.Fatal("own level should return the node itself")
	}
}

func TestValidateLeafDepth(t *testing.T) {
	v := NewVideo(1, "bad", nil)
	s1 := v.Root.AppendChild(SegmentMeta{})
	v.Root.AppendChild(SegmentMeta{}) // a leaf at level 2
	s1.AppendChild(SegmentMeta{})     // a leaf at level 3
	err := v.Validate()
	if err == nil || !strings.Contains(err.Error(), "different depths") {
		t.Fatalf("expected leaf-depth error, got %v", err)
	}
}

func TestValidateCertainty(t *testing.T) {
	v := NewVideo(1, "bad", nil)
	v.Root.AppendChild(Seg().ObjC(1, "man", 0).Build())
	if err := v.Validate(); err == nil {
		t.Fatal("zero certainty should fail")
	}
	v2 := NewVideo(1, "bad2", nil)
	v2.Root.AppendChild(Seg().ObjC(1, "man", 1.5).Build())
	if err := v2.Validate(); err == nil {
		t.Fatal("certainty > 1 should fail")
	}
}

func TestValidateDuplicateObject(t *testing.T) {
	v := NewVideo(1, "bad", nil)
	v.Root.AppendChild(Seg().Obj(1, "man").Obj(1, "woman").Build())
	if err := v.Validate(); err == nil {
		t.Fatal("duplicate object id in one segment should fail")
	}
}

func TestValidateDanglingRelationship(t *testing.T) {
	v := NewVideo(1, "bad", nil)
	v.Root.AppendChild(Seg().Obj(1, "man").Rel("fires_at", 1, 99).Build())
	if err := v.Validate(); err == nil {
		t.Fatal("relationship to absent object should fail")
	}
}

func TestValidateLevelNames(t *testing.T) {
	v := NewVideo(1, "bad", map[string]int{"scene": 0})
	if err := v.Validate(); err == nil {
		t.Fatal("level name mapping to 0 should fail")
	}
}

func TestSegmentMetaLookups(t *testing.T) {
	m := Seg().
		Obj(1, "man").Prop("holds_gun").OAttr("name", Str("JohnWayne")).
		Obj(2, "man").
		Rel("fires_at", 1, 2).
		Build()
	if o := m.FindObject(1); o == nil || !o.Props["holds_gun"] || o.Attrs["name"] != Str("JohnWayne") {
		t.Fatalf("FindObject(1) = %+v", m.FindObject(1))
	}
	if m.FindObject(7) != nil {
		t.Fatal("absent object should be nil")
	}
	if !m.HasRel("fires_at", 1, 2) || m.HasRel("fires_at", 2, 1) {
		t.Fatal("HasRel wrong")
	}
}

func TestValues(t *testing.T) {
	if Int(5).String() != "5" || Str("a").String() != `"a"` {
		t.Fatal("Value.String wrong")
	}
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Str("5")) {
		t.Fatal("Value.Equal wrong")
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	if err := s.Add(buildThreeLevel(t)); err != nil {
		t.Fatal(err)
	}
	dup := buildThreeLevel(t)
	if err := s.Add(dup); err == nil {
		t.Fatal("duplicate video id should fail")
	}
	v2 := NewVideo(2, "other", nil)
	v2.Root.AppendChild(SegmentMeta{})
	if err := s.Add(v2); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Video(1) == nil || s.Video(3) != nil {
		t.Fatal("store lookups wrong")
	}
	vids := s.Videos()
	if len(vids) != 2 || vids[0].ID != 1 || vids[1].ID != 2 {
		t.Fatalf("Videos order wrong: %v", vids)
	}
}

func TestLevelName(t *testing.T) {
	v := buildThreeLevel(t)
	if l, ok := v.Level("shot"); !ok || l != 3 {
		t.Fatalf("Level(shot) = %d %v", l, ok)
	}
	if _, ok := v.Level("frame"); ok {
		t.Fatal("unknown level name should miss")
	}
	v.NameLevel("frame", 4)
	if l, _ := v.Level("frame"); l != 4 {
		t.Fatal("NameLevel did not register")
	}
}

func TestLeafSpans(t *testing.T) {
	v := buildThreeLevel(t) // 2 scenes with 3 and 2 shots
	scenes := v.LeafSpans(2)
	if len(scenes) != 2 || scenes[0] != (LeafSpan{1, 3}) || scenes[1] != (LeafSpan{4, 5}) {
		t.Fatalf("scene spans: %v", scenes)
	}
	shots := v.LeafSpans(3)
	if len(shots) != 5 || shots[0] != (LeafSpan{1, 1}) || shots[4] != (LeafSpan{5, 5}) {
		t.Fatalf("shot spans: %v", shots)
	}
	if root := v.LeafSpans(1); len(root) != 1 || root[0] != (LeafSpan{1, 5}) {
		t.Fatalf("root span: %v", root)
	}
	if deep := v.LeafSpans(9); deep != nil {
		t.Fatalf("missing level spans: %v", deep)
	}
}

func TestBuilderPanicsWithoutObject(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prop before Obj should panic")
		}
	}()
	Seg().Prop("holds_gun")
}
