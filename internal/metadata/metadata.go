// Package metadata implements the hierarchical video model of paper §2.1 and
// the extended E-R meta-data attached to every video segment.
//
// A video is a tree: the root (level 1) is the whole video; each node's
// children form a temporally ordered decomposition (plots, scenes, shots,
// frames...); all leaves lie at the same depth. Each node — a video segment —
// carries meta-data describing its contents: the objects present (with
// database-wide object ids, types, detection certainties, attribute values
// and unary properties), the relationships among them, and segment-level
// attributes such as a title or a genre.
package metadata

import (
	"fmt"
	"sort"
	"sync"
)

// ObjectID identifies an object across all pictures of the database
// (paper §2.2: the same object in different pictures gets the same id).
type ObjectID int64

// ValueKind discriminates attribute value types.
type ValueKind uint8

const (
	// IntValue is an integer attribute (heights, counts, years...).
	IntValue ValueKind = iota
	// StrValue is a string attribute (names, genres...).
	StrValue
)

// Value is an attribute value of a segment or of an object in a segment.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: IntValue, Int: v} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: StrValue, Str: s} }

// Equal reports whether two values are identical.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for diagnostics.
func (v Value) String() string {
	if v.Kind == StrValue {
		return fmt.Sprintf("%q", v.Str)
	}
	return fmt.Sprint(v.Int)
}

// Object is an object occurrence within one video segment.
type Object struct {
	ID ObjectID
	// Type is the object's (leaf) type in the taxonomy, e.g. "man", "train".
	Type string
	// Certainty is the detection confidence in (0, 1]; the image analysis
	// layer is imperfect (paper §1), and the picture retrieval substrate
	// scales match scores by it.
	Certainty float64
	// Attrs holds per-occurrence attribute values, e.g. height(x) in this
	// frame.
	Attrs map[string]Value
	// Props holds unary predicates true of the object in this segment,
	// e.g. "holds_gun", "on_floor".
	Props map[string]bool
}

// Relationship is a (possibly spatial) binary predicate between two objects
// in one segment, e.g. fires_at(x, y) or left_of(x, y).
type Relationship struct {
	Name    string
	Subject ObjectID
	Object  ObjectID
}

// SegmentMeta is the meta-data associated with one video segment.
type SegmentMeta struct {
	Objects []Object
	Rels    []Relationship
	// Attrs holds segment-level attributes: title, genre ("type"), etc.
	Attrs map[string]Value
}

// FindObject returns the occurrence of id in the segment, or nil.
func (m *SegmentMeta) FindObject(id ObjectID) *Object {
	for i := range m.Objects {
		if m.Objects[i].ID == id {
			return &m.Objects[i]
		}
	}
	return nil
}

// HasRel reports whether the segment records relationship name(subj, obj).
func (m *SegmentMeta) HasRel(name string, subj, obj ObjectID) bool {
	for _, r := range m.Rels {
		if r.Name == name && r.Subject == subj && r.Object == obj {
			return true
		}
	}
	return false
}

// Node is one video segment in the hierarchy.
type Node struct {
	// Level is 1 for the root and increases downwards (paper §2.2).
	Level int
	// Index is the node's 1-based position among its parent's children;
	// it is the segment id used by similarity lists over that sequence.
	Index int
	Meta  SegmentMeta

	Children []*Node
	Parent   *Node
}

// AppendChild adds a new child segment with the given meta-data and returns
// it. Children are appended in temporal order.
func (n *Node) AppendChild(meta SegmentMeta) *Node {
	c := &Node{Level: n.Level + 1, Index: len(n.Children) + 1, Meta: meta, Parent: n}
	n.Children = append(n.Children, c)
	return c
}

// FirstDescendantAt returns the first descendant of n at the given level
// (following first children), or nil when n has no descendant that deep or
// level is not strictly below n. For level == n.Level it returns n itself.
func (n *Node) FirstDescendantAt(level int) *Node {
	cur := n
	for cur != nil && cur.Level < level {
		if len(cur.Children) == 0 {
			return nil
		}
		cur = cur.Children[0]
	}
	if cur != nil && cur.Level == level {
		return cur
	}
	return nil
}

// DescendantsAt returns all descendants of n at the given level in temporal
// order — the paper's "proper sequence". For level == n.Level it returns
// [n].
func (n *Node) DescendantsAt(level int) []*Node {
	if level < n.Level {
		return nil
	}
	if level == n.Level {
		return []*Node{n}
	}
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Level == level {
			out = append(out, m)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Video is one video: a hierarchy of segments plus level naming.
type Video struct {
	// ID distinguishes videos in a multi-video store (paper §3.1 uses a
	// (video id, segment id) pair).
	ID   int
	Name string
	Root *Node
	// LevelNames maps symbolic names ("scene", "shot", "frame") to level
	// numbers; used by at-scene-level etc.
	LevelNames map[string]int
}

// NewVideo creates a video with a fresh root node (level 1). levelNames may
// be nil; names can also be registered later with NameLevel.
func NewVideo(id int, name string, levelNames map[string]int) *Video {
	ln := map[string]int{}
	for k, v := range levelNames {
		ln[k] = v
	}
	return &Video{
		ID:         id,
		Name:       name,
		Root:       &Node{Level: 1, Index: 1},
		LevelNames: ln,
	}
}

// NameLevel registers a symbolic name for a level number.
func (v *Video) NameLevel(name string, level int) { v.LevelNames[name] = level }

// Level resolves a symbolic level name.
func (v *Video) Level(name string) (int, bool) {
	l, ok := v.LevelNames[name]
	return l, ok
}

// Depth returns the depth of the tree (number of levels); 1 for a bare root.
func (v *Video) Depth() int {
	d := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level > d {
			d = n.Level
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(v.Root)
	return d
}

// Sequence returns the proper sequence of the whole video at the given
// level: all level-l segments in temporal order.
func (v *Video) Sequence(level int) []*Node { return v.Root.DescendantsAt(level) }

// LeafSpan is the contiguous range of leaf positions (1-based, at the
// deepest level — the playable frames) covered by one segment.
type LeafSpan struct {
	Beg, End int
}

// LeafSpans maps every segment of the given level to its leaf range, in
// sequence order: retrieving "shots 47-49" turns into the frame interval to
// play. Level-l segment i covers LeafSpans(l)[i-1].
func (v *Video) LeafSpans(level int) []LeafSpan {
	depth := v.Depth()
	var out []LeafSpan
	pos := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Level == level {
			leaves := len(n.DescendantsAt(depth))
			out = append(out, LeafSpan{Beg: pos + 1, End: pos + leaves})
			pos += leaves
			return
		}
		if len(n.Children) == 0 {
			// A leaf above the requested level still advances the cursor.
			pos++
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(v.Root)
	return out
}

// Validate checks the structural invariants of the hierarchy: correct level
// and index numbering, parent links, uniform leaf depth (paper §2.1: "all the
// leaves in the tree lie at the same level"), positive object certainties and
// distinct object ids per segment.
func (v *Video) Validate() error {
	if v.Root == nil {
		return fmt.Errorf("metadata: video %d has no root", v.ID)
	}
	if v.Root.Level != 1 {
		return fmt.Errorf("metadata: root level is %d, want 1", v.Root.Level)
	}
	leafDepth := -1
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if len(n.Children) == 0 {
			if leafDepth == -1 {
				leafDepth = n.Level
			} else if n.Level != leafDepth {
				return fmt.Errorf("metadata: leaves at different depths (%d and %d)", leafDepth, n.Level)
			}
		}
		seen := map[ObjectID]bool{}
		for _, o := range n.Meta.Objects {
			if o.ID <= 0 {
				return fmt.Errorf("metadata: object id %d is not positive (0 is reserved)", o.ID)
			}
			if o.Certainty <= 0 || o.Certainty > 1 {
				return fmt.Errorf("metadata: object %d has certainty %g outside (0,1]", o.ID, o.Certainty)
			}
			if seen[o.ID] {
				return fmt.Errorf("metadata: object %d occurs twice in one segment", o.ID)
			}
			seen[o.ID] = true
		}
		for _, r := range n.Meta.Rels {
			if !seen[r.Subject] || !seen[r.Object] {
				return fmt.Errorf("metadata: relationship %s(%d,%d) references an absent object", r.Name, r.Subject, r.Object)
			}
		}
		for i, c := range n.Children {
			if c.Level != n.Level+1 {
				return fmt.Errorf("metadata: child level %d under level %d", c.Level, n.Level)
			}
			if c.Index != i+1 {
				return fmt.Errorf("metadata: child index %d at position %d", c.Index, i+1)
			}
			if c.Parent != n {
				return fmt.Errorf("metadata: broken parent link at level %d index %d", c.Level, c.Index)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(v.Root); err != nil {
		return err
	}
	for name, l := range v.LevelNames {
		if l < 1 {
			return fmt.Errorf("metadata: level name %q maps to invalid level %d", name, l)
		}
	}
	return nil
}

// Store is a collection of videos — the meta-data database of Fig. 1.
//
// The map is the only shared mutable state: a *Video is immutable once
// added, so guarding insertion and lookup with a read-write lock makes
// live ingest (a durable store appending while queries run) safe without
// locking anywhere in query evaluation.
type Store struct {
	mu     sync.RWMutex
	videos map[int]*Video
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{videos: map[int]*Video{}} }

// Add inserts a video; it fails on a duplicate id or invalid hierarchy.
func (s *Store) Add(v *Video) error {
	if err := v.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.videos[v.ID]; dup {
		return fmt.Errorf("metadata: duplicate video id %d", v.ID)
	}
	s.videos[v.ID] = v
	return nil
}

// Video returns the video with the given id, or nil.
func (s *Store) Video(id int) *Video {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.videos[id]
}

// Videos returns all videos ordered by id.
func (s *Store) Videos() []*Video {
	s.mu.RLock()
	out := make([]*Video, 0, len(s.videos))
	for _, v := range s.videos {
		out = append(out, v)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of videos in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.videos)
}
