package metadata

// SegBuilder assembles SegmentMeta values fluently; used by tests, examples
// and the synthetic data sets. All methods return the builder for chaining.
type SegBuilder struct {
	meta SegmentMeta
}

// Seg starts a new segment-meta builder.
func Seg() *SegBuilder { return &SegBuilder{} }

// Attr sets a segment-level attribute.
func (b *SegBuilder) Attr(name string, v Value) *SegBuilder {
	if b.meta.Attrs == nil {
		b.meta.Attrs = map[string]Value{}
	}
	b.meta.Attrs[name] = v
	return b
}

// Obj adds an object occurrence with full detection certainty.
func (b *SegBuilder) Obj(id ObjectID, typ string) *SegBuilder {
	return b.ObjC(id, typ, 1.0)
}

// ObjC adds an object occurrence with the given detection certainty.
func (b *SegBuilder) ObjC(id ObjectID, typ string, certainty float64) *SegBuilder {
	b.meta.Objects = append(b.meta.Objects, Object{ID: id, Type: typ, Certainty: certainty})
	return b
}

// last returns the most recently added object; it panics when none exists,
// which indicates a builder misuse at construction time.
func (b *SegBuilder) last() *Object {
	if len(b.meta.Objects) == 0 {
		panic("metadata: builder property/attribute before any object")
	}
	return &b.meta.Objects[len(b.meta.Objects)-1]
}

// Prop marks a unary property of the most recently added object.
func (b *SegBuilder) Prop(name string) *SegBuilder {
	o := b.last()
	if o.Props == nil {
		o.Props = map[string]bool{}
	}
	o.Props[name] = true
	return b
}

// OAttr sets an attribute of the most recently added object.
func (b *SegBuilder) OAttr(name string, v Value) *SegBuilder {
	o := b.last()
	if o.Attrs == nil {
		o.Attrs = map[string]Value{}
	}
	o.Attrs[name] = v
	return b
}

// Rel records a binary relationship between two object ids already added (or
// to be added) to this segment.
func (b *SegBuilder) Rel(name string, subj, obj ObjectID) *SegBuilder {
	b.meta.Rels = append(b.meta.Rels, Relationship{Name: name, Subject: subj, Object: obj})
	return b
}

// Build returns the assembled meta-data.
func (b *SegBuilder) Build() SegmentMeta { return b.meta }
