// Package listio is the compact binary persistence format for similarity
// lists — the "secondary storage" of the paper's §4.2 measurement, whose
// direct-method timings include reading the similarity tables from disk.
//
// Layout (little-endian varints, deltas between interval boundaries):
//
//	magic "HTLl" | version u8 | maxSim float64 | count uvarint
//	per entry: begDelta uvarint | length-1 uvarint | act float64
//
// begDelta is the gap from the previous entry's End (+2, so adjacent-but-
// distinct entries encode a small positive number); the first entry stores
// Beg directly. Sorted disjoint inputs therefore encode to a few bytes per
// entry.
package listio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

var magic = [4]byte{'H', 'T', 'L', 'l'}

const version = 1

// Write encodes a similarity list. The list must satisfy its invariants
// (sorted, disjoint, positive similarities).
func Write(w io.Writer, l simlist.List) error {
	if err := l.Validate(); err != nil {
		return fmt.Errorf("listio: refusing to encode an invalid list: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	if err := writeFloat(bw, l.MaxSim); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(len(l.Entries))); err != nil {
		return err
	}
	prevEnd := int64(math.MinInt32)
	for i, e := range l.Entries {
		var delta uint64
		if i == 0 {
			// First entry: store Beg zig-zagged (ids are usually 1-based but
			// the format does not assume it).
			delta = zigzag(int64(e.Iv.Beg))
		} else {
			delta = uint64(int64(e.Iv.Beg) - prevEnd - 1)
		}
		if err := writeUvarint(bw, delta); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(e.Iv.Len()-1)); err != nil {
			return err
		}
		if err := writeFloat(bw, e.Act); err != nil {
			return err
		}
		prevEnd = int64(e.Iv.End)
	}
	return bw.Flush()
}

// Read decodes a similarity list and validates it.
func Read(r io.Reader) (simlist.List, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return simlist.List{}, fmt.Errorf("listio: reading magic: %w", err)
	}
	if m != magic {
		return simlist.List{}, fmt.Errorf("listio: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return simlist.List{}, err
	}
	if ver != version {
		return simlist.List{}, fmt.Errorf("listio: unsupported version %d", ver)
	}
	maxSim, err := readFloat(br)
	if err != nil {
		return simlist.List{}, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return simlist.List{}, err
	}
	const maxEntries = 1 << 28 // refuse absurd headers before allocating
	if count > maxEntries {
		return simlist.List{}, fmt.Errorf("listio: implausible entry count %d", count)
	}
	l := simlist.List{MaxSim: maxSim, Entries: make([]simlist.Entry, 0, count)}
	prevEnd := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return simlist.List{}, fmt.Errorf("listio: entry %d: %w", i, err)
		}
		var beg int64
		if i == 0 {
			beg = unzigzag(delta)
		} else {
			beg = prevEnd + 1 + int64(delta)
		}
		lenM1, err := binary.ReadUvarint(br)
		if err != nil {
			return simlist.List{}, fmt.Errorf("listio: entry %d: %w", i, err)
		}
		act, err := readFloat(br)
		if err != nil {
			return simlist.List{}, fmt.Errorf("listio: entry %d: %w", i, err)
		}
		end := beg + int64(lenM1)
		if beg < math.MinInt32 || end > math.MaxInt32 {
			return simlist.List{}, fmt.Errorf("listio: entry %d out of range [%d, %d]", i, beg, end)
		}
		l.Entries = append(l.Entries, simlist.Entry{
			Iv:  interval.I{Beg: int(beg), End: int(end)},
			Act: act,
		})
		prevEnd = end
	}
	if err := l.Validate(); err != nil {
		return simlist.List{}, fmt.Errorf("listio: decoded list is invalid: %w", err)
	}
	return l, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeFloat(w *bufio.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func readFloat(r *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
