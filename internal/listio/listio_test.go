package listio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
	"htlvideo/internal/workload"
)

func entry(beg, end int, act float64) simlist.Entry {
	return simlist.Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

func roundTrip(t *testing.T, l simlist.List) simlist.List {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripBasic(t *testing.T) {
	l := simlist.NewList(20, entry(1, 4, 2.595), entry(6, 6, 1.26), entry(47, 49, 6.26))
	back := roundTrip(t, l)
	if !simlist.Equal(l, back) {
		t.Fatalf("round trip changed the list:\n %v\n %v", l, back)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	back := roundTrip(t, simlist.Empty(7))
	if !back.IsEmpty() || back.MaxSim != 7 {
		t.Fatalf("empty round trip: %v", back)
	}
}

func TestRoundTripAdjacentEntries(t *testing.T) {
	// Adjacent but distinct-similarity entries: the minimal gap encoding.
	l := simlist.NewList(9, entry(1, 3, 1), entry(4, 4, 2), entry(5, 9, 3))
	if !simlist.Equal(l, roundTrip(t, l)) {
		t.Fatal("adjacent entries corrupted")
	}
}

func TestCompactness(t *testing.T) {
	l := workload.Generate(workload.DefaultConfig(100000, 3))
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	perEntry := float64(buf.Len()) / float64(len(l.Entries))
	if perEntry > 16 {
		t.Fatalf("encoding too fat: %.1f bytes/entry over %d entries", perEntry, len(l.Entries))
	}
}

func TestRejectInvalidList(t *testing.T) {
	bad := simlist.List{MaxSim: 5, Entries: []simlist.Entry{entry(5, 3, 1)}}
	if err := Write(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid list should not encode")
	}
}

func TestReadErrors(t *testing.T) {
	good := func() []byte {
		var buf bytes.Buffer
		if err := Write(&buf, simlist.NewList(5, entry(1, 2, 3))); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	for name, data := range map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE....."),
		"bad version": append(append([]byte{}, good[:4]...), 99),
		"truncated":   good[:len(good)-3],
	} {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Implausible count header.
	var buf bytes.Buffer
	buf.Write(good[:13]) // magic+version+maxSim
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("count header: %v", err)
	}
}

// Property: any valid list (including generator output) round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.DefaultConfig(int(n%5000)+10, seed)
		cfg.MeanRun = rng.Intn(6) + 1
		l := workload.Generate(cfg)
		var buf bytes.Buffer
		if err := Write(&buf, l); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return simlist.Equal(l, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
