package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// Additional executor coverage: join orderings, grouped ordering, nested
// subqueries, and a differential check of the join planner against a
// formulation that forces nested loops.

func TestThreeWayJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
		CREATE TABLE a (id INT, x INT);
		CREATE TABLE b (id INT, y INT);
		CREATE TABLE c (y INT, label TEXT);
		INSERT INTO a VALUES (1, 10), (2, 20), (3, 30);
		INSERT INTO b VALUES (1, 7), (2, 8), (4, 9);
		INSERT INTO c VALUES (7, 'seven'), (8, 'eight');
	`)
	res := mustExec(t, db, `
		SELECT a.x, c.label FROM a, b, c
		WHERE a.id = b.id AND b.y = c.y ORDER BY a.x`)
	if len(res.Rows) != 2 || res.Rows[0][1].S != "seven" || res.Rows[1][1].S != "eight" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestGroupedOrderByAggregate(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT age, SUM(score) AS s FROM people GROUP BY age ORDER BY s DESC`)
	if len(res.Rows) != 3 || res.Rows[0][0].I != 40 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestNestedFromSubqueries(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT COUNT(*) FROM (
			SELECT u.age FROM (SELECT age FROM people WHERE score > 1) u WHERE u.age > 26
		) v`)
	if res.Rows[0][0].I != 2 { // ann(30,1.5), dan(40,4.0)
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestHavingWithGroupKey(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT age FROM people GROUP BY age HAVING age >= 30 AND COUNT(*) >= 1 ORDER BY age`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 30 || res.Rows[1][0].I != 40 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestSelectExpressionColumnNames(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT age + 1, COUNT(*) FROM people GROUP BY age + 1 ORDER BY age + 1 LIMIT 1")
	if res.Cols[0] != "(age + 1)" || res.Rows[0][0].I != 26 {
		t.Fatalf("res: %+v", res)
	}
}

func TestBetweenAsFilter(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT name FROM people WHERE age BETWEEN 26 AND 39 ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "ann" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

// TestJoinPlannerDifferential compares the optimized planner against a
// nested-loop-only formulation on randomized relations.
func TestJoinPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		db := NewDB()
		mustExec(t, db, "CREATE TABLE l (k INT, v INT); CREATE TABLE r (k INT, w INT)")
		var lrows, rrows [][]Value
		for i := 0; i < 40; i++ {
			lrows = append(lrows, []Value{IntV(int64(rng.Intn(12))), IntV(int64(rng.Intn(50)))})
			rrows = append(rrows, []Value{IntV(int64(rng.Intn(12))), IntV(int64(rng.Intn(50)))})
		}
		if err := db.InsertRows("l", lrows); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertRows("r", rrows); err != nil {
			t.Fatal(err)
		}
		// Hash join vs +0-defeated nested loop.
		hashed := mustExec(t, db, "SELECT COUNT(*), SUM(l.v + r.w) FROM l, r WHERE l.k = r.k")
		nested := mustExec(t, db, "SELECT COUNT(*), SUM(l.v + r.w) FROM l, r WHERE l.k + 0 = r.k")
		if hashed.Rows[0][0].I != nested.Rows[0][0].I || hashed.Rows[0][1].I != nested.Rows[0][1].I {
			t.Fatalf("trial %d: hash %v nested %v", trial, hashed.Rows[0], nested.Rows[0])
		}
		// Range join vs defeated range join.
		fast := mustExec(t, db, "SELECT COUNT(*) FROM l, r WHERE r.k >= l.k AND r.k <= l.v")
		slow := mustExec(t, db, "SELECT COUNT(*) FROM l, r WHERE r.k + 0 >= l.k AND r.k + 0 <= l.v")
		if fast.Rows[0][0].I != slow.Rows[0][0].I {
			t.Fatalf("trial %d: range %v vs %v", trial, fast.Rows[0], slow.Rows[0])
		}
	}
}

func TestOrderByMultipleMixedKeys(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	for i, s := range []string{"z", "y", "x", "w"} {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d, '%s')", i%2, s))
	}
	res := mustExec(t, db, "SELECT a, b FROM t ORDER BY a DESC, b ASC")
	want := [][2]string{{"1", "w"}, {"1", "y"}, {"0", "x"}, {"0", "z"}}
	for i, w := range want {
		if res.Rows[i][0].String() != w[0] || res.Rows[i][1].S != w[1] {
			t.Fatalf("row %d: %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestUnionAllThreeArms(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT id FROM people WHERE id = 1
		UNION ALL SELECT id FROM people WHERE id = 2
		UNION ALL SELECT id FROM people WHERE id = 3
		ORDER BY id DESC`)
	if len(res.Rows) != 3 || res.Rows[0][0].I != 3 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestQualifiedStar(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT q.* FROM people p, pets q WHERE p.id = q.owner AND p.name = 'cat'")
	if len(res.Cols) != 2 || len(res.Rows) != 1 || res.Rows[0][1].S != "fish" {
		t.Fatalf("res: %+v", res)
	}
}
