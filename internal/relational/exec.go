package relational

import (
	"math"
	"sort"
	"strings"
)

// execSelect runs one SELECT (with its UNION ALL chain, ORDER BY and LIMIT).
// parent is the enclosing scope for correlated subqueries, nil at top level.
// ORDER BY keys referencing output columns sort on those; other keys are
// evaluated in each arm's source scope during projection (standard SQL
// resolution order).
func (ex *executor) execSelect(sel *Select, parent *scope) (*Result, error) {
	keys := make([]Expr, len(sel.OrderBy))
	for i, k := range sel.OrderBy {
		keys[i] = k.Expr
	}
	res, keyVals, err := ex.execCore(sel, parent, keys)
	if err != nil {
		return nil, err
	}
	for u := sel.Union; u != nil; u = u.Union {
		r2, kv2, err := ex.execCore(u, parent, keys)
		if err != nil {
			return nil, err
		}
		if len(r2.Cols) != len(res.Cols) {
			return nil, errf(-1, "UNION ALL arms have %d and %d columns", len(res.Cols), len(r2.Cols))
		}
		res.Rows = append(res.Rows, r2.Rows...)
		keyVals = append(keyVals, kv2...)
	}
	if len(sel.OrderBy) > 0 {
		sortByKeys(res, keyVals, sel.OrderBy)
	}
	if sel.Limit >= 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return res, nil
}

// sortByKeys orders res.Rows by the precomputed key vectors.
func sortByKeys(res *Result, keyVals [][]Value, items []OrderItem) {
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, it := range items {
			c, err := compareValues(keyVals[idx[a]][j], keyVals[idx[b]][j])
			if err != nil {
				return false
			}
			if c != 0 {
				if it.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	rows := make([][]Value, len(idx))
	for i, r := range idx {
		rows[i] = res.Rows[r]
	}
	res.Rows = rows
}

// binding is one FROM item materialized for joining.
type binding struct {
	name string
	data *TableData
}

// tuple is one composite row: the current row of each joined binding.
type tuple [][]Value

// equiCond is one hash-join condition  outerExpr = innerExpr.
type equiCond struct{ outer, inner Expr }

// rangeCond is one range condition  innerCol OP outerExpr  (OP normalized to
// the inner side on the left).
type rangeCond struct {
	col   int
	op    BinOp
	outer Expr
}

// execCore runs a single SELECT block (no union/order/limit handling).
// orderKeys are evaluated per output row in the source scope (or resolved
// against output columns when they name one); the computed key vectors are
// returned alongside the result.
func (ex *executor) execCore(sel *Select, parent *scope, orderKeys []Expr) (*Result, [][]Value, error) {
	binds := make([]binding, len(sel.From))
	for i, fi := range sel.From {
		if fi.Sub != nil {
			sub, err := ex.execSelect(fi.Sub, parent)
			if err != nil {
				return nil, nil, err
			}
			binds[i] = binding{name: fi.Name(), data: resultToTable(sub)}
			continue
		}
		t := ex.db.tables[fi.Table]
		if t == nil {
			return nil, nil, errf(-1, "table %q does not exist", fi.Table)
		}
		binds[i] = binding{name: fi.Name(), data: t}
	}

	conjs := splitAnd(sel.Where)
	tuples, residual, err := ex.joinAll(binds, conjs, parent)
	if err != nil {
		return nil, nil, err
	}
	if len(residual) > 0 {
		kept := tuples[:0]
		for _, tp := range tuples {
			sc := tupleScope(binds, tp, parent)
			ok, err := ex.evalAll(residual, sc)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, tp)
			}
		}
		tuples = kept
	}

	if len(sel.GroupBy) > 0 || sel.Having != nil || selListHasAgg(sel.List) {
		return ex.projectGrouped(sel, binds, tuples, parent, orderKeys)
	}
	return ex.projectPlain(sel, binds, tuples, parent, orderKeys)
}

// evalOrderKeys computes the order-key vector for one output row: a key that
// is a bare column reference naming exactly one output column uses the
// output value; anything else evaluates in the source scope.
func (ex *executor) evalOrderKeys(orderKeys []Expr, cols []string, out []Value, sc *scope) ([]Value, error) {
	if len(orderKeys) == 0 {
		return nil, nil
	}
	keys := make([]Value, len(orderKeys))
	for i, k := range orderKeys {
		if cr, ok := k.(ColRef); ok && cr.Table == "" {
			hit := -1
			dup := false
			for ci, name := range cols {
				if name == cr.Col {
					if hit >= 0 {
						dup = true
					}
					hit = ci
				}
			}
			if hit >= 0 && !dup {
				keys[i] = out[hit]
				continue
			}
		}
		v, err := ex.eval(k, sc)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// evalAll evaluates predicates, reporting whether all hold.
func (ex *executor) evalAll(preds []Expr, sc *scope) (bool, error) {
	for _, c := range preds {
		v, err := ex.eval(c, sc)
		if err != nil {
			return false, err
		}
		if !v.Truthy() {
			return false, nil
		}
	}
	return true, nil
}

func tupleScope(binds []binding, tp tuple, parent *scope) *scope {
	sc := &scope{parent: parent}
	for i := range tp {
		sc.names = append(sc.names, binds[i].name)
		sc.cols = append(sc.cols, binds[i].data.Cols)
		sc.rows = append(sc.rows, tp[i])
	}
	return sc
}

// joinAll joins the FROM bindings left to right, consuming WHERE conjuncts
// as hash-join keys, range-scan bounds or early filters where possible, and
// returns the surviving composite rows plus the unconsumed conjuncts.
func (ex *executor) joinAll(binds []binding, conjs []Expr, parent *scope) ([]tuple, []Expr, error) {
	colsOf := func(name string) []Column {
		for _, b := range binds {
			if b.name == name {
				return b.data.Cols
			}
		}
		return nil
	}
	names := []string{binds[0].name}
	consumed := make([]bool, len(conjs))

	// Seed with the first binding, applying its single-table predicates.
	var first []Expr
	for i, c := range conjs {
		if boundBy(c, names, colsOf) {
			consumed[i] = true
			first = append(first, c)
		}
	}
	var tuples []tuple
	for _, row := range binds[0].data.Rows {
		sc := tupleScope(binds, tuple{row}, parent)
		ok, err := ex.evalAll(first, sc)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			tuples = append(tuples, tuple{row})
		}
	}

	for k := 1; k < len(binds); k++ {
		inner := binds[k]
		prevNames := append([]string(nil), names...)
		names = append(names, inner.name)

		equis, ranges, filters := ex.classifyJoinConds(conjs, consumed, inner, prevNames, names, colsOf)

		var out []tuple
		var err error
		switch {
		case len(equis) > 0:
			out, err = ex.hashJoin(binds[:k+1], tuples, inner, equis, append(rangesToFilters(ranges, inner), filters...), parent)
		case len(ranges) > 0:
			out, err = ex.rangeJoin(binds[:k+1], tuples, inner, ranges, filters, parent)
		default:
			out, err = ex.nestedJoin(binds[:k+1], tuples, inner, filters, parent)
		}
		if err != nil {
			return nil, nil, err
		}
		tuples = out
	}

	var residual []Expr
	for i, c := range conjs {
		if !consumed[i] {
			residual = append(residual, c)
		}
	}
	return tuples, residual, nil
}

// classifyJoinConds partitions the newly-bound conjuncts into equi-join
// keys, range bounds on inner columns, and plain join filters.
func (ex *executor) classifyJoinConds(conjs []Expr, consumed []bool, inner binding, prevNames, names []string, colsOf func(string) []Column) ([]equiCond, []rangeCond, []Expr) {
	innerOnly := func(e Expr) bool { return boundBy(e, []string{inner.name}, colsOf) }
	outerOnly := func(e Expr) bool { return boundBy(e, prevNames, colsOf) }
	innerCol := func(e Expr) int {
		cr, ok := e.(ColRef)
		if !ok {
			return -1
		}
		if cr.Table != "" && cr.Table != inner.name {
			return -1
		}
		if cr.Table == "" {
			// Unqualified references must be unambiguous: resolvable by the
			// inner table and by nothing earlier.
			if !innerOnly(cr) || resolvable("", cr.Col, prevNames, colsOf) {
				return -1
			}
		}
		return inner.data.colIndex(cr.Col)
	}

	var equis []equiCond
	var ranges []rangeCond
	var filters []Expr
	for i, c := range conjs {
		if consumed[i] || !boundBy(c, names, colsOf) {
			continue
		}
		consumed[i] = true
		switch n := c.(type) {
		case Bin:
			if n.Op == OpEq {
				if innerOnly(n.L) && outerOnly(n.R) {
					equis = append(equis, equiCond{outer: n.R, inner: n.L})
					continue
				}
				if innerOnly(n.R) && outerOnly(n.L) {
					equis = append(equis, equiCond{outer: n.L, inner: n.R})
					continue
				}
			}
			if n.Op == OpLt || n.Op == OpLe || n.Op == OpGt || n.Op == OpGe {
				if ci := innerCol(n.L); ci >= 0 && outerOnly(n.R) {
					ranges = append(ranges, rangeCond{col: ci, op: n.Op, outer: n.R})
					continue
				}
				if ci := innerCol(n.R); ci >= 0 && outerOnly(n.L) {
					ranges = append(ranges, rangeCond{col: ci, op: flipBin(n.Op), outer: n.L})
					continue
				}
			}
		case Between:
			if ci := innerCol(n.E); ci >= 0 && outerOnly(n.Lo) && outerOnly(n.Hi) {
				ranges = append(ranges,
					rangeCond{col: ci, op: OpGe, outer: n.Lo},
					rangeCond{col: ci, op: OpLe, outer: n.Hi})
				continue
			}
		}
		filters = append(filters, c)
	}
	return equis, ranges, filters
}

// rangesToFilters turns unused range conditions back into ordinary
// predicates (when a hash join is chosen instead).
func rangesToFilters(ranges []rangeCond, inner binding) []Expr {
	out := make([]Expr, 0, len(ranges))
	for _, rc := range ranges {
		out = append(out, Bin{
			Op: rc.op,
			L:  ColRef{Table: inner.name, Col: inner.data.Cols[rc.col].Name},
			R:  rc.outer,
		})
	}
	return out
}

func (ex *executor) hashJoin(binds []binding, tuples []tuple, inner binding, equis []equiCond, filters []Expr, parent *scope) ([]tuple, error) {
	hash := make(map[string][]int, len(inner.data.Rows))
	for ri, row := range inner.data.Rows {
		sc := &scope{parent: parent, names: []string{inner.name}, cols: [][]Column{inner.data.Cols}, rows: [][]Value{row}}
		key, err := ex.joinKey(sc, equis, false)
		if err != nil {
			return nil, err
		}
		hash[key] = append(hash[key], ri)
	}
	var out []tuple
	for _, tp := range tuples {
		outerSc := tupleScope(binds[:len(binds)-1], tp, parent)
		key, err := ex.joinKey(outerSc, equis, true)
		if err != nil {
			return nil, err
		}
		for _, ri := range hash[key] {
			ntp, ok, err := ex.extendTuple(binds, tp, inner.data.Rows[ri], filters, parent)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, ntp)
			}
		}
	}
	return out, nil
}

// joinKey renders the composite equi key; numeric values hash by their
// float64 image so INT 5 meets FLOAT 5.0.
func (ex *executor) joinKey(sc *scope, equis []equiCond, outer bool) (string, error) {
	var b strings.Builder
	for _, e := range equis {
		expr := e.inner
		if outer {
			expr = e.outer
		}
		v, err := ex.eval(expr, sc)
		if err != nil {
			return "", err
		}
		if v.IsNumeric() {
			b.WriteByte('n')
			f := v.AsFloat()
			for i := 0; i < 8; i++ {
				b.WriteByte(byte(floatBits(f) >> (8 * i)))
			}
		} else {
			b.WriteByte('s')
			b.WriteString(v.String())
		}
		b.WriteByte(0)
	}
	return b.String(), nil
}

func floatBits(f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0 to +0 so they hash identically
	}
	return math.Float64bits(f)
}

func (ex *executor) rangeJoin(binds []binding, tuples []tuple, inner binding, ranges []rangeCond, filters []Expr, parent *scope) ([]tuple, error) {
	col := ranges[0].col
	var out []tuple
	for _, tp := range tuples {
		outerSc := tupleScope(binds[:len(binds)-1], tp, parent)
		var lo, hi *bound
		var extra []Expr
		for _, rc := range ranges {
			if rc.col != col {
				extra = append(extra, Bin{
					Op: rc.op,
					L:  ColRef{Table: inner.name, Col: inner.data.Cols[rc.col].Name},
					R:  rc.outer,
				})
				continue
			}
			v, err := ex.eval(rc.outer, outerSc)
			if err != nil {
				return nil, err
			}
			switch rc.op {
			case OpGe:
				lo = tighterLo(lo, bound{v: v})
			case OpGt:
				lo = tighterLo(lo, bound{v: v, excl: true})
			case OpLe:
				hi = tighterHi(hi, bound{v: v})
			case OpLt:
				hi = tighterHi(hi, bound{v: v, excl: true})
			}
		}
		allFilters := append(extra, filters...)
		for _, ri := range inner.data.rangeRows(col, lo, hi) {
			ntp, ok, err := ex.extendTuple(binds, tp, inner.data.Rows[ri], allFilters, parent)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, ntp)
			}
		}
	}
	return out, nil
}

func (ex *executor) nestedJoin(binds []binding, tuples []tuple, inner binding, filters []Expr, parent *scope) ([]tuple, error) {
	var out []tuple
	for _, tp := range tuples {
		for _, row := range inner.data.Rows {
			ntp, ok, err := ex.extendTuple(binds, tp, row, filters, parent)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, ntp)
			}
		}
	}
	return out, nil
}

// extendTuple appends row to tp and applies the filter conditions.
func (ex *executor) extendTuple(binds []binding, tp tuple, row []Value, filters []Expr, parent *scope) (tuple, bool, error) {
	ntp := make(tuple, len(tp)+1)
	copy(ntp, tp)
	ntp[len(tp)] = row
	if len(filters) == 0 {
		return ntp, true, nil
	}
	sc := tupleScope(binds, ntp, parent)
	ok, err := ex.evalAll(filters, sc)
	if err != nil {
		return nil, false, err
	}
	return ntp, ok, nil
}

func flipBin(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	default:
		return OpLe
	}
}

func tighterLo(cur *bound, b bound) *bound {
	if cur == nil {
		return &b
	}
	c, _ := compareValues(b.v, cur.v)
	if c > 0 || (c == 0 && b.excl && !cur.excl) {
		return &b
	}
	return cur
}

func tighterHi(cur *bound, b bound) *bound {
	if cur == nil {
		return &b
	}
	c, _ := compareValues(b.v, cur.v)
	if c < 0 || (c == 0 && b.excl && !cur.excl) {
		return &b
	}
	return cur
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(Bin); ok && b.Op == OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

func selListHasAgg(list []SelItem) bool {
	for _, it := range list {
		if !it.Star && hasAgg(it.Expr) {
			return true
		}
	}
	return false
}

// resultToTable materializes a subquery result as a transient table.
func resultToTable(r *Result) *TableData {
	cols := make([]Column, len(r.Cols))
	for i, name := range r.Cols {
		k := KText
		if len(r.Rows) > 0 {
			k = r.Rows[0][i].K
		}
		cols[i] = Column{Name: name, Type: k}
	}
	return &TableData{Cols: cols, Rows: r.Rows}
}
