package relational

// SQL abstract syntax.

// Stmt is a SQL statement.
type Stmt interface{ isStmt() }

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []Column
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name VALUES (...), (...) or INSERT INTO name SELECT.
type Insert struct {
	Table string
	Rows  [][]Expr
	Query *Select
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

func (*CreateTable) isStmt() {}
func (*DropTable) isStmt()   {}
func (*Insert) isStmt()      {}
func (*Delete) isStmt()      {}
func (*Select) isStmt()      {}

// Column declares one table column.
type Column struct {
	Name string
	Type Kind
}

// Select is one SELECT block, possibly chained with UNION ALL.
type Select struct {
	List    []SelItem
	From    []FromItem
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
	Union   *Select
}

// SelItem is one projection: expression with optional alias, or a star.
type SelItem struct {
	Star  bool   // SELECT *  or  SELECT t.*
	Table string // qualifier of a qualified star
	Expr  Expr
	Alias string
}

// FromItem is a base table or a subquery, with an optional alias.
type FromItem struct {
	Table string
	Sub   *Select
	Alias string
}

// Name returns the binding name of the item in scope.
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is a SQL expression.
type Expr interface{ isExpr() }

// ColRef references a column, optionally table-qualified.
type ColRef struct {
	Table string
	Col   string
}

// Lit is a literal value.
type Lit struct{ V Value }

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ E Expr }

// Neg is arithmetic negation.
type Neg struct{ E Expr }

// Between is  E BETWEEN Lo AND Hi  (inclusive).
type Between struct {
	E, Lo, Hi Expr
}

// AggFn enumerates aggregate functions.
type AggFn uint8

const (
	AggCount AggFn = iota
	AggSum
	AggMax
	AggMin
	AggAvg
)

// Agg is an aggregate call; Star marks COUNT(*).
type Agg struct {
	Fn   AggFn
	Arg  Expr
	Star bool
}

// Subquery is a scalar subquery or EXISTS predicate.
type Subquery struct {
	Sel    *Select
	Exists bool
}

func (ColRef) isExpr()    {}
func (Lit) isExpr()       {}
func (Bin) isExpr()       {}
func (Not) isExpr()       {}
func (Neg) isExpr()       {}
func (Between) isExpr()   {}
func (Agg) isExpr()       {}
func (*Subquery) isExpr() {}
