package relational

import (
	"fmt"
)

// scope is the row context expressions evaluate in: one current row per
// FROM binding, chained to the enclosing query's scope for correlated
// subqueries.
type scope struct {
	parent *scope
	names  []string
	cols   [][]Column
	rows   [][]Value
}

// lookup resolves a (possibly qualified) column reference.
func (s *scope) lookup(tab, col string) (Value, error) {
	for sc := s; sc != nil; sc = sc.parent {
		matches := 0
		var found Value
		for b, name := range sc.names {
			if tab != "" && tab != name {
				continue
			}
			t := sc.cols[b]
			for ci, c := range t {
				if c.Name == col {
					matches++
					found = sc.rows[b][ci]
				}
			}
		}
		if matches == 1 {
			return found, nil
		}
		if matches > 1 {
			return Value{}, errf(-1, "ambiguous column reference %s", refName(tab, col))
		}
	}
	return Value{}, errf(-1, "unknown column %s", refName(tab, col))
}

func refName(tab, col string) string {
	if tab == "" {
		return col
	}
	return tab + "." + col
}

// executor carries the database and the per-group aggregate environment.
type executor struct {
	db *DB
	// aggs maps exprKey(Agg) to the aggregate's value for the current group
	// (set only while projecting grouped results).
	aggs map[string]Value
}

// eval evaluates an expression in the given scope.
func (ex *executor) eval(e Expr, sc *scope) (Value, error) {
	switch n := e.(type) {
	case Lit:
		return n.V, nil
	case ColRef:
		if sc == nil {
			return Value{}, errf(-1, "column reference %s outside a row context", refName(n.Table, n.Col))
		}
		return sc.lookup(n.Table, n.Col)
	case Neg:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		switch v.K {
		case KInt:
			return IntV(-v.I), nil
		case KFloat:
			return FloatV(-v.F), nil
		default:
			return Value{}, errf(-1, "cannot negate %s value", v.K)
		}
	case Not:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		return BoolV(!v.Truthy()), nil
	case Between:
		v, err := ex.eval(n.E, sc)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(n.Lo, sc)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(n.Hi, sc)
		if err != nil {
			return Value{}, err
		}
		c1, err := compareValues(v, lo)
		if err != nil {
			return Value{}, err
		}
		c2, err := compareValues(v, hi)
		if err != nil {
			return Value{}, err
		}
		return BoolV(c1 >= 0 && c2 <= 0), nil
	case Bin:
		return ex.evalBin(n, sc)
	case Agg:
		if ex.aggs == nil {
			return Value{}, errf(-1, "aggregate outside GROUP BY context")
		}
		v, ok := ex.aggs[exprKey(n)]
		if !ok {
			return Value{}, errf(-1, "aggregate not computed for this group")
		}
		return v, nil
	case *Subquery:
		return ex.evalSubquery(n, sc)
	default:
		return Value{}, errf(-1, "unsupported expression %T", e)
	}
}

func (ex *executor) evalBin(n Bin, sc *scope) (Value, error) {
	// Short-circuit logical operators.
	if n.Op == OpAnd || n.Op == OpOr {
		l, err := ex.eval(n.L, sc)
		if err != nil {
			return Value{}, err
		}
		if n.Op == OpAnd && !l.Truthy() {
			return BoolV(false), nil
		}
		if n.Op == OpOr && l.Truthy() {
			return BoolV(true), nil
		}
		r, err := ex.eval(n.R, sc)
		if err != nil {
			return Value{}, err
		}
		return BoolV(r.Truthy()), nil
	}
	l, err := ex.eval(n.L, sc)
	if err != nil {
		return Value{}, err
	}
	r, err := ex.eval(n.R, sc)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, err := compareValues(l, r)
		if err != nil {
			return Value{}, err
		}
		switch n.Op {
		case OpEq:
			return BoolV(c == 0), nil
		case OpNe:
			return BoolV(c != 0), nil
		case OpLt:
			return BoolV(c < 0), nil
		case OpLe:
			return BoolV(c <= 0), nil
		case OpGt:
			return BoolV(c > 0), nil
		default:
			return BoolV(c >= 0), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv:
		if !l.IsNumeric() || !r.IsNumeric() {
			return Value{}, errf(-1, "arithmetic on non-numeric values")
		}
		if l.K == KInt && r.K == KInt {
			switch n.Op {
			case OpAdd:
				return IntV(l.I + r.I), nil
			case OpSub:
				return IntV(l.I - r.I), nil
			case OpMul:
				return IntV(l.I * r.I), nil
			default:
				if r.I == 0 {
					return Value{}, errf(-1, "integer division by zero")
				}
				return IntV(l.I / r.I), nil
			}
		}
		lf, rf := l.AsFloat(), r.AsFloat()
		switch n.Op {
		case OpAdd:
			return FloatV(lf + rf), nil
		case OpSub:
			return FloatV(lf - rf), nil
		case OpMul:
			return FloatV(lf * rf), nil
		default:
			return FloatV(lf / rf), nil
		}
	default:
		return Value{}, errf(-1, "unsupported binary operator")
	}
}

// exprKey renders an expression to a canonical string, used to key computed
// aggregates and to name projection columns.
func exprKey(e Expr) string {
	switch n := e.(type) {
	case Lit:
		return n.V.String()
	case ColRef:
		return refName(n.Table, n.Col)
	case Neg:
		return "-" + exprKey(n.E)
	case Not:
		return "NOT " + exprKey(n.E)
	case Between:
		return fmt.Sprintf("%s BETWEEN %s AND %s", exprKey(n.E), exprKey(n.Lo), exprKey(n.Hi))
	case Bin:
		ops := map[BinOp]string{
			OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
			OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
			OpAnd: "AND", OpOr: "OR",
		}
		return fmt.Sprintf("(%s %s %s)", exprKey(n.L), ops[n.Op], exprKey(n.R))
	case Agg:
		names := map[AggFn]string{AggCount: "COUNT", AggSum: "SUM", AggMax: "MAX", AggMin: "MIN", AggAvg: "AVG"}
		if n.Star {
			return names[n.Fn] + "(*)"
		}
		return names[n.Fn] + "(" + exprKey(n.Arg) + ")"
	case *Subquery:
		if n.Exists {
			return "EXISTS(...)"
		}
		return "(SELECT ...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// collectAggs gathers the aggregate calls of an expression tree.
func collectAggs(e Expr, out *[]Agg) {
	switch n := e.(type) {
	case Agg:
		*out = append(*out, n)
	case Bin:
		collectAggs(n.L, out)
		collectAggs(n.R, out)
	case Not:
		collectAggs(n.E, out)
	case Neg:
		collectAggs(n.E, out)
	case Between:
		collectAggs(n.E, out)
		collectAggs(n.Lo, out)
		collectAggs(n.Hi, out)
	}
}

// hasAgg reports whether the expression contains an aggregate call.
func hasAgg(e Expr) bool {
	var aggs []Agg
	collectAggs(e, &aggs)
	return len(aggs) > 0
}

// refs collects the binding names (or "" for unqualified columns) referenced
// by an expression, ignoring subqueries (their correlation is resolved at
// evaluation time).
func refs(e Expr, out map[string][]string) {
	switch n := e.(type) {
	case ColRef:
		out[n.Table] = append(out[n.Table], n.Col)
	case Bin:
		refs(n.L, out)
		refs(n.R, out)
	case Not:
		refs(n.E, out)
	case Neg:
		refs(n.E, out)
	case Between:
		refs(n.E, out)
		refs(n.Lo, out)
		refs(n.Hi, out)
	case Agg:
		if !n.Star {
			refs(n.Arg, out)
		}
	case *Subquery:
		// Conservatively mark as referencing everything.
		out["\x00subquery"] = append(out["\x00subquery"], "")
	}
}

// boundBy reports whether every column reference of e can be resolved using
// only the given binding names (unqualified refs must match exactly one
// column among them).
func boundBy(e Expr, names []string, colsOf func(string) []Column) bool {
	rm := map[string][]string{}
	refs(e, rm)
	if _, sub := rm["\x00subquery"]; sub {
		return false
	}
	for tab, cols := range rm {
		for _, col := range cols {
			if !resolvable(tab, col, names, colsOf) {
				return false
			}
		}
	}
	return true
}

func resolvable(tab, col string, names []string, colsOf func(string) []Column) bool {
	count := 0
	for _, name := range names {
		if tab != "" && tab != name {
			continue
		}
		for _, c := range colsOf(name) {
			if c.Name == col {
				count++
			}
		}
	}
	return count >= 1
}
