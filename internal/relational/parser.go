package relational

import "strconv"

// ParseScript parses a semicolon-separated sequence of SQL statements.
func ParseScript(src string) ([]Stmt, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var stmts []Stmt
	for {
		for p.peek().kind == sSymbol && p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind == sEOF {
			break
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if t := p.peek(); t.kind != sEOF && !(t.kind == sSymbol && t.text == ";") {
			return nil, errf(t.pos, "expected ';' or end of script, found %q", t.text)
		}
	}
	return stmts, nil
}

type sqlParser struct {
	toks []sqlTok
	i    int
}

func (p *sqlParser) peek() sqlTok  { return p.toks[p.i] }
func (p *sqlParser) peek2() sqlTok { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *sqlParser) next() sqlTok  { t := p.toks[p.i]; p.i++; return t }

func (p *sqlParser) kw(word string) bool {
	if t := p.peek(); t.kind == sKeyword && t.text == word {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) sym(s string) bool {
	if t := p.peek(); t.kind == sSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(word string) error {
	if !p.kw(word) {
		t := p.peek()
		return errf(t.pos, "expected %s, found %q", word, t.text)
	}
	return nil
}

func (p *sqlParser) expectSym(s string) error {
	if !p.sym(s) {
		t := p.peek()
		return errf(t.pos, "expected %q, found %q", s, t.text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != sIdent {
		return "", errf(t.pos, "expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *sqlParser) stmt() (Stmt, error) {
	t := p.peek()
	if t.kind != sKeyword {
		return nil, errf(t.pos, "expected a statement, found %q", t.text)
	}
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "DELETE":
		return p.delete()
	case "SELECT":
		return p.selectStmt()
	default:
		return nil, errf(t.pos, "unsupported statement %q", t.text)
	}
}

func (p *sqlParser) createTable() (Stmt, error) {
	p.next() // CREATE
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		var k Kind
		switch {
		case t.kind == sKeyword && t.text == "INT":
			k = KInt
		case t.kind == sKeyword && t.text == "FLOAT":
			k = KFloat
		case t.kind == sKeyword && t.text == "TEXT":
			k = KText
		default:
			return nil, errf(t.pos, "expected a column type, found %q", t.text)
		}
		p.next()
		cols = append(cols, Column{Name: cn, Type: k})
		if p.sym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Cols: cols}, nil
}

func (p *sqlParser) dropTable() (Stmt, error) {
	p.next() // DROP
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTable{}
	if p.kw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *sqlParser) insert() (Stmt, error) {
	p.next() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.kw("VALUES") {
		for {
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.sym(",") {
					continue
				}
				break
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.sym(",") {
				continue
			}
			break
		}
		return ins, nil
	}
	sel, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	ins.Query = sel.(*Select)
	return ins, nil
}

func (p *sqlParser) delete() (Stmt, error) {
	p.next() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.kw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *sqlParser) selectStmt() (Stmt, error) {
	sel, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	cur := sel
	for p.kw("UNION") {
		if err := p.expectKw("ALL"); err != nil {
			return nil, errf(p.peek().pos, "only UNION ALL is supported")
		}
		next, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur = next
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.kw("DESC") {
				item.Desc = true
			} else {
				p.kw("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	if p.kw("LIMIT") {
		t := p.peek()
		if t.kind != sInt {
			return nil, errf(t.pos, "expected an integer after LIMIT")
		}
		p.next()
		n, _ := strconv.Atoi(t.text)
		sel.Limit = n
	}
	return sel, nil
}

func (p *sqlParser) selectCore() (*Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	for {
		item, err := p.selItem()
		if err != nil {
			return nil, err
		}
		sel.List = append(sel.List, item)
		if p.sym(",") {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.fromItem()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, fi)
		if p.sym(",") {
			continue
		}
		break
	}
	if p.kw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.kw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.sym(",") {
				continue
			}
			break
		}
	}
	if p.kw("HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *sqlParser) selItem() (SelItem, error) {
	if p.sym("*") {
		return SelItem{Star: true}, nil
	}
	// Qualified star: ident . *
	if p.peek().kind == sIdent && p.peek2().kind == sSymbol && p.peek2().text == "." {
		save := p.i
		tab, _ := p.ident()
		p.next() // .
		if p.sym("*") {
			return SelItem{Star: true, Table: tab}, nil
		}
		p.i = save
	}
	e, err := p.expr()
	if err != nil {
		return SelItem{}, err
	}
	item := SelItem{Expr: e}
	if p.kw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == sIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *sqlParser) fromItem() (FromItem, error) {
	if p.sym("(") {
		sel, err := p.selectStmt()
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSym(")"); err != nil {
			return FromItem{}, err
		}
		fi := FromItem{Sub: sel.(*Select)}
		p.kw("AS")
		a, err := p.ident()
		if err != nil {
			return FromItem{}, errf(p.peek().pos, "a subquery in FROM requires an alias")
		}
		fi.Alias = a
		return fi, nil
	}
	name, err := p.ident()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name}
	if p.kw("AS") {
		a, err := p.ident()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a
	} else if p.peek().kind == sIdent {
		fi.Alias = p.next().text
	}
	return fi, nil
}

// --- expressions -----------------------------------------------------------

func (p *sqlParser) expr() (Expr, error) { return p.orExpr() }

func (p *sqlParser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) notExpr() (Expr, error) {
	if p.kw("NOT") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.cmpExpr()
}

func (p *sqlParser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.kw("BETWEEN") {
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return Between{E: l, Lo: lo, Hi: hi}, nil
	}
	t := p.peek()
	if t.kind == sSymbol {
		var op BinOp
		ok := true
		switch t.text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			ok = false
		}
		if ok {
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return Bin{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == sSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			op := OpAdd
			if t.text == "-" {
				op = OpSub
			}
			l = Bin{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == sSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			op := OpMul
			if t.text == "/" {
				op = OpDiv
			}
			l = Bin{Op: op, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *sqlParser) unaryExpr() (Expr, error) {
	if p.sym("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Neg{E: e}, nil
	}
	return p.primaryExpr()
}

var aggNames = map[string]AggFn{
	"COUNT": AggCount, "SUM": AggSum, "MAX": AggMax, "MIN": AggMin, "AVG": AggAvg,
}

func (p *sqlParser) primaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == sKeyword {
		if fn, ok := aggNames[t.text]; ok {
			p.next()
			if err := p.expectSym("("); err != nil {
				return nil, err
			}
			if p.sym("*") {
				if fn != AggCount {
					return nil, errf(t.pos, "%s(*) is not supported", t.text)
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return Agg{Fn: AggCount, Star: true}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return Agg{Fn: fn, Arg: arg}, nil
		}
	}
	switch {
	case t.kind == sInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errf(t.pos, "bad integer literal %q", t.text)
		}
		return Lit{V: IntV(v)}, nil
	case t.kind == sFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad float literal %q", t.text)
		}
		return Lit{V: FloatV(v)}, nil
	case t.kind == sString:
		p.next()
		return Lit{V: TextV(t.text)}, nil
	case t.kind == sKeyword && t.text == "EXISTS":
		p.next()
		if err := p.expectSym("("); err != nil {
			return nil, err
		}
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return &Subquery{Sel: sel.(*Select), Exists: true}, nil
	case t.kind == sSymbol && t.text == "(":
		p.next()
		if p.peek().kind == sKeyword && p.peek().text == "SELECT" {
			sel, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return &Subquery{Sel: sel.(*Select)}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == sIdent:
		p.next()
		if p.peek().kind == sSymbol && p.peek().text == "." {
			p.next()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.text, Col: col}, nil
		}
		return ColRef{Col: t.text}, nil
	default:
		return nil, errf(t.pos, "expected an expression, found %q", t.text)
	}
}
