package relational

import (
	"fmt"
	"strings"
)

type sqlTokKind uint8

const (
	sEOF sqlTokKind = iota
	sIdent
	sKeyword
	sInt
	sFloat
	sString
	sSymbol // ( ) , ; * + - / = < > <= >= <> !=  .
)

type sqlTok struct {
	kind sqlTokKind
	text string // keywords upper-cased
	pos  int
}

// SQLError reports a lexical, parse or runtime SQL error.
type SQLError struct {
	Pos int // byte offset, -1 when unavailable
	Msg string
}

func (e *SQLError) Error() string {
	if e.Pos >= 0 {
		return fmt.Sprintf("sql: %s (at offset %d)", e.Msg, e.Pos)
	}
	return "sql: " + e.Msg
}

func errf(pos int, format string, args ...any) *SQLError {
	return &SQLError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "ASC": true, "DESC": true,
	"UNION": true, "ALL": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "CREATE": true, "TABLE": true, "DROP": true, "IF": true,
	"EXISTS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"INT": true, "FLOAT": true, "TEXT": true, "BETWEEN": true,
	"COUNT": true, "SUM": true, "MAX": true, "MIN": true, "AVG": true,
	"DELETE": true, "DISTINCT": true,
}

func sqlLex(src string) ([]sqlTok, error) {
	var toks []sqlTok
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case strings.IndexByte("(),;*+-/.", c) >= 0:
			toks = append(toks, sqlTok{sSymbol, string(c), i})
			i++
		case c == '=':
			toks = append(toks, sqlTok{sSymbol, "=", i})
			i++
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '=':
				toks = append(toks, sqlTok{sSymbol, "<=", i})
				i += 2
			case i+1 < n && src[i+1] == '>':
				toks = append(toks, sqlTok{sSymbol, "<>", i})
				i += 2
			default:
				toks = append(toks, sqlTok{sSymbol, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, sqlTok{sSymbol, ">=", i})
				i += 2
			} else {
				toks = append(toks, sqlTok{sSymbol, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, sqlTok{sSymbol, "!=", i})
				i += 2
			} else {
				return nil, errf(i, "unexpected '!'")
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, errf(i, "unterminated string literal")
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, sqlTok{sString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9':
			start := i
			kind := sInt
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				kind = sFloat
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				kind = sFloat
				i++
				if i < n && (src[i] == '+' || src[i] == '-') {
					i++
				}
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			toks = append(toks, sqlTok{kind, src[start:i], start})
		case isSQLIdentStart(c):
			start := i
			for i < n && isSQLIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if sqlKeywords[upper] {
				toks = append(toks, sqlTok{sKeyword, upper, start})
			} else {
				toks = append(toks, sqlTok{sIdent, word, start})
			}
		default:
			return nil, errf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, sqlTok{sEOF, "", n})
	return toks, nil
}

func isSQLIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLIdentPart(c byte) bool {
	return isSQLIdentStart(c) || (c >= '0' && c <= '9')
}
