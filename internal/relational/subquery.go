package relational

// Subquery evaluation with a fast path for the correlated single-table
// range-count pattern the HTL translation leans on:
//
//	(SELECT COUNT(*) FROM g WHERE g.id >= i.id AND g.id < h.id)
//
// which the sorted index answers in O(log n) instead of a full scan per
// outer row.

func (ex *executor) evalSubquery(sq *Subquery, sc *scope) (Value, error) {
	if v, ok, err := ex.fastSubquery(sq, sc); err != nil {
		return Value{}, err
	} else if ok {
		return v, nil
	}
	res, err := ex.execSelect(sq.Sel, sc)
	if err != nil {
		return Value{}, err
	}
	if sq.Exists {
		return BoolV(len(res.Rows) > 0), nil
	}
	if len(res.Cols) != 1 {
		return Value{}, errf(-1, "scalar subquery returns %d columns", len(res.Cols))
	}
	if len(res.Rows) != 1 {
		return Value{}, errf(-1, "scalar subquery returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// fastSubquery answers COUNT(*)/EXISTS over one base table whose WHERE is a
// conjunction of range predicates on a single column (the other sides being
// outer expressions) via the sorted index.
func (ex *executor) fastSubquery(sq *Subquery, sc *scope) (Value, bool, error) {
	sel := sq.Sel
	if sel.Union != nil || len(sel.GroupBy) > 0 || sel.Having != nil ||
		len(sel.OrderBy) > 0 || sel.Limit >= 0 || len(sel.From) != 1 || sel.From[0].Sub != nil {
		return Value{}, false, nil
	}
	if !sq.Exists {
		if len(sel.List) != 1 || sel.List[0].Star {
			return Value{}, false, nil
		}
		a, ok := sel.List[0].Expr.(Agg)
		if !ok || a.Fn != AggCount || !a.Star {
			return Value{}, false, nil
		}
	}
	t := ex.db.tables[sel.From[0].Table]
	if t == nil {
		return Value{}, false, nil
	}
	name := sel.From[0].Name()

	// All conjuncts must be  col CMP outerExpr  on one shared column.
	col := -1
	var lo, hi *bound
	eq := false
	var eqV Value
	localCol := func(e Expr) int {
		cr, ok := e.(ColRef)
		if !ok || (cr.Table != "" && cr.Table != name) {
			return -1
		}
		return t.colIndex(cr.Col)
	}
	isOuter := func(e Expr) bool {
		// The expression must not reference the subquery table.
		rm := map[string][]string{}
		refs(e, rm)
		if _, sub := rm["\x00subquery"]; sub {
			return false
		}
		for tab, cols := range rm {
			if tab == name {
				return false
			}
			if tab == "" {
				for _, c := range cols {
					if t.colIndex(c) >= 0 {
						return false
					}
				}
			}
		}
		return true
	}
	for _, c := range splitAnd(sel.Where) {
		b, ok := c.(Bin)
		if !ok {
			return Value{}, false, nil
		}
		ci, op, outer := -1, b.Op, Expr(nil)
		if i := localCol(b.L); i >= 0 && isOuter(b.R) {
			ci, outer = i, b.R
		} else if i := localCol(b.R); i >= 0 && isOuter(b.L) {
			ci, op, outer = i, flipBin(b.Op), b.L
		} else {
			return Value{}, false, nil
		}
		if col == -1 {
			col = ci
		} else if col != ci {
			return Value{}, false, nil
		}
		v, err := ex.eval(outer, sc)
		if err != nil {
			return Value{}, false, err
		}
		switch op {
		case OpEq:
			eq, eqV = true, v
		case OpGe:
			lo = tighterLo(lo, bound{v: v})
		case OpGt:
			lo = tighterLo(lo, bound{v: v, excl: true})
		case OpLe:
			hi = tighterHi(hi, bound{v: v})
		case OpLt:
			hi = tighterHi(hi, bound{v: v, excl: true})
		default:
			return Value{}, false, nil
		}
	}
	if col == -1 && sel.Where != nil {
		return Value{}, false, nil
	}
	var count int
	switch {
	case sel.Where == nil:
		count = len(t.Rows)
	case eq:
		b := bound{v: eqV}
		// Combine equality with any other bounds by intersecting.
		lo2 := tighterLo(lo, b)
		hi2 := tighterHi(hi, b)
		count = t.rangeCount(col, lo2, hi2)
	default:
		count = t.rangeCount(col, lo, hi)
	}
	if sq.Exists {
		return BoolV(count > 0), true, nil
	}
	return IntV(int64(count)), true, nil
}
