package relational

import "strings"

// projection: plain and grouped result construction.

// projectPlain evaluates the select list per tuple.
func (ex *executor) projectPlain(sel *Select, binds []binding, tuples []tuple, parent *scope, orderKeys []Expr) (*Result, [][]Value, error) {
	names, err := outputNames(sel, binds)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Cols: names}
	var keyVals [][]Value
	for _, tp := range tuples {
		sc := tupleScope(binds, tp, parent)
		row, err := ex.projectRow(sel.List, binds, tp, sc)
		if err != nil {
			return nil, nil, err
		}
		res.Rows = append(res.Rows, row)
		if len(orderKeys) > 0 {
			keys, err := ex.evalOrderKeys(orderKeys, names, row, sc)
			if err != nil {
				return nil, nil, err
			}
			keyVals = append(keyVals, keys)
		}
	}
	return res, keyVals, nil
}

// projectRow builds one output row (stars expand to the bindings' columns).
func (ex *executor) projectRow(list []SelItem, binds []binding, tp tuple, sc *scope) ([]Value, error) {
	var row []Value
	for _, it := range list {
		if it.Star {
			for bi, b := range binds {
				if it.Table != "" && it.Table != b.name {
					continue
				}
				row = append(row, tp[bi]...)
			}
			continue
		}
		v, err := ex.eval(it.Expr, sc)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// outputNames derives the result column names.
func outputNames(sel *Select, binds []binding) ([]string, error) {
	var names []string
	for _, it := range sel.List {
		if it.Star {
			for _, b := range binds {
				if it.Table != "" && it.Table != b.name {
					continue
				}
				for _, c := range b.data.Cols {
					names = append(names, c.Name)
				}
			}
			continue
		}
		switch {
		case it.Alias != "":
			names = append(names, it.Alias)
		default:
			if cr, ok := it.Expr.(ColRef); ok {
				names = append(names, cr.Col)
			} else {
				names = append(names, exprKey(it.Expr))
			}
		}
	}
	return names, nil
}

// projectGrouped evaluates GROUP BY / aggregates / HAVING.
func (ex *executor) projectGrouped(sel *Select, binds []binding, tuples []tuple, parent *scope, orderKeys []Expr) (*Result, [][]Value, error) {
	for _, it := range sel.List {
		if it.Star {
			return nil, nil, errf(-1, "SELECT * cannot be combined with aggregation")
		}
	}
	names, err := outputNames(sel, binds)
	if err != nil {
		return nil, nil, err
	}

	// Collect all aggregate calls of the select list and HAVING.
	var aggs []Agg
	for _, it := range sel.List {
		collectAggs(it.Expr, &aggs)
	}
	if sel.Having != nil {
		collectAggs(sel.Having, &aggs)
	}

	// Group tuples by the GROUP BY key.
	type group struct {
		rep    tuple // representative tuple for key-expression evaluation
		tuples []tuple
	}
	groups := map[string]*group{}
	var order []string
	for _, tp := range tuples {
		sc := tupleScope(binds, tp, parent)
		var key strings.Builder
		for _, ge := range sel.GroupBy {
			v, err := ex.eval(ge, sc)
			if err != nil {
				return nil, nil, err
			}
			key.WriteString(v.K.String())
			key.WriteString(v.String())
			key.WriteByte(0)
		}
		k := key.String()
		g := groups[k]
		if g == nil {
			g = &group{rep: tp}
			groups[k] = g
			order = append(order, k)
		}
		g.tuples = append(g.tuples, tp)
	}
	// With no GROUP BY, aggregates run over all tuples as a single group
	// (even an empty one).
	if len(sel.GroupBy) == 0 {
		groups = map[string]*group{"": {tuples: tuples}}
		order = []string{""}
		if len(tuples) > 0 {
			groups[""].rep = tuples[0]
		}
	}

	res := &Result{Cols: names}
	var keyVals [][]Value
	for _, k := range order {
		g := groups[k]
		aggVals, err := ex.computeAggs(aggs, binds, g.tuples, parent)
		if err != nil {
			return nil, nil, err
		}
		var sc *scope
		if g.rep != nil {
			sc = tupleScope(binds, g.rep, parent)
		} else {
			sc = &scope{parent: parent}
		}
		saved := ex.aggs
		ex.aggs = aggVals
		ok, row, keys, err := ex.groupRow(sel, names, sc, orderKeys)
		ex.aggs = saved
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			continue
		}
		res.Rows = append(res.Rows, row)
		if len(orderKeys) > 0 {
			keyVals = append(keyVals, keys)
		}
	}
	return res, keyVals, nil
}

// groupRow applies HAVING and projects one group's output row and order
// keys; ok is false when HAVING rejects the group.
func (ex *executor) groupRow(sel *Select, names []string, sc *scope, orderKeys []Expr) (bool, []Value, []Value, error) {
	if sel.Having != nil {
		hv, err := ex.eval(sel.Having, sc)
		if err != nil {
			return false, nil, nil, err
		}
		if !hv.Truthy() {
			return false, nil, nil, nil
		}
	}
	row := make([]Value, 0, len(sel.List))
	for _, it := range sel.List {
		v, err := ex.eval(it.Expr, sc)
		if err != nil {
			return false, nil, nil, err
		}
		row = append(row, v)
	}
	keys, err := ex.evalOrderKeys(orderKeys, names, row, sc)
	if err != nil {
		return false, nil, nil, err
	}
	return true, row, keys, nil
}

// computeAggs evaluates each aggregate over the group's tuples.
func (ex *executor) computeAggs(aggs []Agg, binds []binding, tuples []tuple, parent *scope) (map[string]Value, error) {
	out := map[string]Value{}
	for _, a := range aggs {
		key := exprKey(a)
		if _, done := out[key]; done {
			continue
		}
		if a.Star {
			out[key] = IntV(int64(len(tuples)))
			continue
		}
		count := 0
		sum := 0.0
		sumIsInt := true
		var sumI int64
		var best Value
		haveBest := false
		for _, tp := range tuples {
			sc := tupleScope(binds, tp, parent)
			v, err := ex.eval(a.Arg, sc)
			if err != nil {
				return nil, err
			}
			count++
			switch a.Fn {
			case AggSum, AggAvg:
				if !v.IsNumeric() {
					return nil, errf(-1, "SUM/AVG over non-numeric value")
				}
				if v.K == KInt {
					sumI += v.I
				} else {
					sumIsInt = false
				}
				sum += v.AsFloat()
			case AggMax:
				if !haveBest {
					best, haveBest = v, true
					continue
				}
				c, err := compareValues(v, best)
				if err != nil {
					return nil, err
				}
				if c > 0 {
					best = v
				}
			case AggMin:
				if !haveBest {
					best, haveBest = v, true
					continue
				}
				c, err := compareValues(v, best)
				if err != nil {
					return nil, err
				}
				if c < 0 {
					best = v
				}
			}
		}
		switch a.Fn {
		case AggCount:
			out[key] = IntV(int64(count))
		case AggSum:
			if count == 0 {
				out[key] = IntV(0)
			} else if sumIsInt {
				out[key] = IntV(sumI)
			} else {
				out[key] = FloatV(sum)
			}
		case AggAvg:
			if count == 0 {
				return nil, errf(-1, "AVG over an empty group")
			}
			out[key] = FloatV(sum / float64(count))
		case AggMax, AggMin:
			if !haveBest {
				return nil, errf(-1, "MAX/MIN over an empty group")
			}
			out[key] = best
		}
	}
	return out, nil
}
