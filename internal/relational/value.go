// Package relational is an embedded, in-memory SQL engine: lexer, parser,
// planner and executor. It stands in for the commercial relational system
// (Sybase) the paper's §4 SQL-based baseline ran on. The engine is a real
// SQL executor — tables, cross joins with hash/range optimization, WHERE,
// GROUP BY with aggregates, HAVING, ORDER BY, LIMIT, UNION ALL, subqueries
// in FROM, and correlated scalar/EXISTS subqueries — scoped to what the
// HTL-to-SQL translation (internal/sqlgen) and realistic test workloads
// need.
package relational

import (
	"fmt"
	"strconv"
)

// Kind is a runtime value type.
type Kind uint8

const (
	KInt Kind = iota
	KFloat
	KText
	KBool // internal: predicate results only, not a column type
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "INT"
	case KFloat:
		return "FLOAT"
	case KText:
		return "TEXT"
	default:
		return "BOOL"
	}
}

// Value is a runtime SQL value. The engine has no NULLs: every column of
// every row holds a concrete value (the HTL translation never needs NULL).
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// IntV, FloatV, TextV, BoolV construct values.
func IntV(i int64) Value     { return Value{K: KInt, I: i} }
func FloatV(f float64) Value { return Value{K: KFloat, F: f} }
func TextV(s string) Value   { return Value{K: KText, S: s} }
func BoolV(b bool) Value     { return Value{K: KBool, B: b} }

// AsFloat returns the numeric value as float64.
func (v Value) AsFloat() float64 {
	if v.K == KInt {
		return float64(v.I)
	}
	return v.F
}

// IsNumeric reports whether v is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.K == KInt || v.K == KFloat }

// Truthy interprets v as a predicate result.
func (v Value) Truthy() bool {
	switch v.K {
	case KBool:
		return v.B
	case KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	default:
		return v.S != ""
	}
}

func (v Value) String() string {
	switch v.K {
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KText:
		return v.S
	default:
		return strconv.FormatBool(v.B)
	}
}

// compareValues returns -1, 0, 1; an error on incomparable kinds.
func compareValues(a, b Value) (int, error) {
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.K == KText && b.K == KText {
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.K == KBool && b.K == KBool {
		ab, bb := 0, 0
		if a.B {
			ab = 1
		}
		if b.B {
			bb = 1
		}
		return ab - bb, nil
	}
	return 0, fmt.Errorf("relational: cannot compare %s with %s", a.K, b.K)
}

// coerceTo converts v to a column type for storage.
func coerceTo(v Value, k Kind) (Value, error) {
	if v.K == k {
		return v, nil
	}
	switch {
	case k == KFloat && v.K == KInt:
		return FloatV(float64(v.I)), nil
	case k == KInt && v.K == KFloat && v.F == float64(int64(v.F)):
		return IntV(int64(v.F)), nil
	default:
		return Value{}, fmt.Errorf("relational: cannot store %s value %q in %s column", v.K, v.String(), k)
	}
}
