package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestFastSubqueryMatchesGeneric cross-checks the indexed COUNT/EXISTS fast
// path against the generic executor on random data and random range shapes.
func TestFastSubqueryMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	mustExec(t, db, "CREATE TABLE g (id INT); CREATE TABLE probe (lo INT, hi INT)")
	var rows [][]Value
	for i := 0; i < 400; i++ {
		if rng.Intn(3) != 0 {
			rows = append(rows, []Value{IntV(int64(i))})
		}
	}
	if err := db.InsertRows("g", rows); err != nil {
		t.Fatal(err)
	}
	var probes [][]Value
	for i := 0; i < 60; i++ {
		lo := rng.Intn(400)
		probes = append(probes, []Value{IntV(int64(lo)), IntV(int64(lo + rng.Intn(50)))})
	}
	if err := db.InsertRows("probe", probes); err != nil {
		t.Fatal(err)
	}

	type form struct{ fast, slow string }
	forms := []form{
		{
			// >= / <  on one column: fast path.
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id >= p.lo AND g.id < p.hi) FROM probe p ORDER BY p.lo, p.hi",
			// +0 defeats the column-shape detection: generic path.
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id + 0 >= p.lo AND g.id + 0 < p.hi) FROM probe p ORDER BY p.lo, p.hi",
		},
		{
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id = p.lo) FROM probe p ORDER BY p.lo, p.hi",
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id + 0 = p.lo) FROM probe p ORDER BY p.lo, p.hi",
		},
		{
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id <= p.hi AND g.id > p.lo) FROM probe p ORDER BY p.lo, p.hi",
			"SELECT p.lo, (SELECT COUNT(*) FROM g WHERE g.id + 0 <= p.hi AND g.id + 0 > p.lo) FROM probe p ORDER BY p.lo, p.hi",
		},
	}
	for i, f := range forms {
		fast := mustExec(t, db, f.fast)
		slow := mustExec(t, db, f.slow)
		if len(fast.Rows) != len(slow.Rows) {
			t.Fatalf("form %d: row counts differ", i)
		}
		for r := range fast.Rows {
			if fast.Rows[r][1].I != slow.Rows[r][1].I {
				t.Fatalf("form %d row %d: fast %v slow %v", i, r, fast.Rows[r], slow.Rows[r])
			}
		}
	}
}

func TestFastExistsMatchesGeneric(t *testing.T) {
	db := seedDB(t)
	fast := mustExec(t, db, "SELECT name FROM people p WHERE EXISTS (SELECT * FROM pets WHERE owner = p.id) ORDER BY name")
	slow := mustExec(t, db, "SELECT name FROM people p WHERE EXISTS (SELECT * FROM pets WHERE owner + 0 = p.id) ORDER BY name")
	if len(fast.Rows) != len(slow.Rows) {
		t.Fatalf("fast %v slow %v", fast.Rows, slow.Rows)
	}
	for i := range fast.Rows {
		if fast.Rows[i][0].S != slow.Rows[i][0].S {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestScalarSubqueryNoWhere(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT (SELECT COUNT(*) FROM pets) FROM people WHERE id = 1")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestSubqueryErrorsPropagate(t *testing.T) {
	db := seedDB(t)
	if _, err := db.Exec("SELECT (SELECT COUNT(*) FROM nosuch) FROM people"); err == nil {
		t.Fatal("missing table in subquery should fail")
	}
	if _, err := db.Exec("SELECT (SELECT id, age FROM people WHERE id = 1) FROM people"); err == nil {
		t.Fatal("multi-column scalar subquery should fail")
	}
}

// TestRunDecompositionPattern exercises the exact rank-trick statement the
// HTL until translation generates.
func TestRunDecompositionPattern(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE gok (id INT)")
	for _, id := range []int{3, 4, 5, 9, 10, 20} {
		mustExec(t, db, fmt.Sprintf("INSERT INTO gok VALUES (%d)", id))
	}
	res := mustExec(t, db, `
		SELECT g.id - (SELECT COUNT(*) FROM gok g2 WHERE g2.id <= g.id) AS grp, g.id
		FROM gok g ORDER BY g.id`)
	// Runs: {3,4,5} -> grp 2,2,2; {9,10} -> 5,5; {20} -> 14.
	wantGrp := []int64{2, 2, 2, 5, 5, 14}
	for i, w := range wantGrp {
		if res.Rows[i][0].I != w {
			t.Fatalf("row %d grp = %v, want %d", i, res.Rows[i][0], w)
		}
	}
}
