package relational

import (
	"math"

	"testing"
)

// mustExec runs a script and fails the test on error.
func mustExec(t *testing.T, db *DB, src string) *Result {
	t.Helper()
	res, err := db.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res
}

func seedDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `
		CREATE TABLE people (id INT, name TEXT, age INT, score FLOAT);
		INSERT INTO people VALUES
			(1, 'ann', 30, 1.5),
			(2, 'bob', 25, 2.5),
			(3, 'cat', 30, 0.5),
			(4, 'dan', 40, 4.0);
		CREATE TABLE pets (owner INT, pet TEXT);
		INSERT INTO pets VALUES (1, 'dog'), (1, 'cat'), (3, 'fish');
	`)
	return db
}

func TestSelectWhere(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT name FROM people WHERE age = 30 ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "ann" || res.Rows[1][0].S != "cat" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT * FROM people WHERE id = 2")
	if len(res.Cols) != 4 || len(res.Rows) != 1 || res.Rows[0][1].S != "bob" {
		t.Fatalf("res = %+v", res)
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT id * 2 + 1 AS k, score / 2 FROM people WHERE id = 4")
	if res.Cols[0] != "k" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Rows[0][0].I != 9 || res.Rows[0][1].F != 2.0 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestIntegerDivisionAndNegation(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT 7 / 2, -age FROM people WHERE id = 1")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].I != -30 {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if _, err := db.Exec("SELECT 1 / 0 FROM people"); err == nil {
		t.Fatal("integer division by zero should fail")
	}
}

func TestHashJoin(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT p.name, q.pet FROM people p, pets q
		WHERE p.id = q.owner ORDER BY p.name, q.pet`)
	want := [][2]string{{"ann", "cat"}, {"ann", "dog"}, {"cat", "fish"}}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].S != w[0] || res.Rows[i][1].S != w[1] {
			t.Fatalf("row %d = %v, want %v", i, res.Rows[i], w)
		}
	}
}

func TestCrossJoinCount(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM people a, pets b")
	if res.Rows[0][0].I != 12 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestBetweenRangeJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
		CREATE TABLE series (id INT);
		CREATE TABLE ivs (beg INT, fin INT, act FLOAT);
		INSERT INTO ivs VALUES (2, 4, 1.5), (8, 9, 2.5);
	`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, "INSERT INTO series VALUES ("+itoa(i)+")")
	}
	res := mustExec(t, db, `
		SELECT s.id, l.act FROM series s, ivs l
		WHERE s.id BETWEEN l.beg AND l.fin ORDER BY s.id`)
	wantIDs := []int64{2, 3, 4, 8, 9}
	if len(res.Rows) != len(wantIDs) {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, id := range wantIDs {
		if res.Rows[i][0].I != id {
			t.Fatalf("row %d = %v", i, res.Rows[i])
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	digits := ""
	for i > 0 {
		digits = string(rune('0'+i%10)) + digits
		i /= 10
	}
	return digits
}

func TestGroupByAggregates(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT age, COUNT(*) AS n, SUM(score) AS s, MAX(score), MIN(score), AVG(score)
		FROM people GROUP BY age ORDER BY age`)
	// age 25: 1 row; age 30: 2 rows; age 40: 1 row.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	r30 := res.Rows[1]
	if r30[0].I != 30 || r30[1].I != 2 || r30[2].F != 2.0 || r30[3].F != 1.5 || r30[4].F != 0.5 || r30[5].F != 1.0 {
		t.Fatalf("age-30 row = %v", r30)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT age FROM people GROUP BY age HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 30 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT COUNT(*), SUM(age) FROM people WHERE age > 100")
	if res.Rows[0][0].I != 0 || res.Rows[0][1].I != 0 {
		t.Fatalf("empty-group row = %v", res.Rows[0])
	}
	if _, err := db.Exec("SELECT MAX(age) FROM people WHERE age > 100"); err == nil {
		t.Fatal("MAX over empty group should fail (engine has no NULL)")
	}
}

func TestUnionAll(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT id FROM people WHERE age = 25
		UNION ALL SELECT id FROM people WHERE age = 40
		ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 2 || res.Rows[1][0].I != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT id FROM people UNION ALL SELECT id, age FROM people"); err == nil {
		t.Fatal("mismatched UNION arity should fail")
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT u.age, COUNT(*) FROM (SELECT age FROM people WHERE score > 1) u
		GROUP BY u.age ORDER BY u.age`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT p.name, (SELECT COUNT(*) FROM pets q WHERE q.owner = p.id) AS n
		FROM people p ORDER BY p.id`)
	wantN := []int64{2, 0, 1, 0}
	for i, w := range wantN {
		if res.Rows[i][1].I != w {
			t.Fatalf("row %d = %v, want n=%d", i, res.Rows[i], w)
		}
	}
}

func TestFastCountRange(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE g (id INT)")
	for i := 1; i <= 100; i++ {
		if i%7 != 0 {
			mustExec(t, db, "INSERT INTO g VALUES ("+itoa(i)+")")
		}
	}
	// Fast path: COUNT over range predicates on one column.
	res := mustExec(t, db, "SELECT (SELECT COUNT(*) FROM g WHERE g.id >= 10 AND g.id < 20) FROM g WHERE g.id = 1")
	if res.Rows[0][0].I != 9 { // ids 10..19 minus 14
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Fast path must agree with the generic path for equality.
	res2 := mustExec(t, db, "SELECT (SELECT COUNT(*) FROM g WHERE g.id = 14) FROM g WHERE g.id = 1")
	if res2.Rows[0][0].I != 0 {
		t.Fatalf("count = %v", res2.Rows[0][0])
	}
}

func TestExists(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, `
		SELECT name FROM people p
		WHERE EXISTS (SELECT * FROM pets q WHERE q.owner = p.id)
		ORDER BY name`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "ann" || res.Rows[1][0].S != "cat" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res2 := mustExec(t, db, `
		SELECT name FROM people p
		WHERE NOT EXISTS (SELECT * FROM pets q WHERE q.owner = p.id)
		ORDER BY name`)
	if len(res2.Rows) != 2 || res2.Rows[0][0].S != "bob" {
		t.Fatalf("rows = %v", res2.Rows)
	}
}

func TestInsertSelect(t *testing.T) {
	db := seedDB(t)
	mustExec(t, db, `
		CREATE TABLE olds (name TEXT);
		INSERT INTO olds SELECT name FROM people WHERE age >= 30;
	`)
	res := mustExec(t, db, "SELECT COUNT(*) FROM olds")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestDeleteAndDrop(t *testing.T) {
	db := seedDB(t)
	mustExec(t, db, "DELETE FROM pets WHERE owner = 1")
	res := mustExec(t, db, "SELECT COUNT(*) FROM pets")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	mustExec(t, db, "DELETE FROM pets")
	res = mustExec(t, db, "SELECT COUNT(*) FROM pets")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	mustExec(t, db, "DROP TABLE pets")
	if _, err := db.Exec("SELECT * FROM pets"); err == nil {
		t.Fatal("dropped table should be gone")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS pets")
	if _, err := db.Exec("DROP TABLE pets"); err == nil {
		t.Fatal("dropping a missing table without IF EXISTS should fail")
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT name FROM people ORDER BY age DESC, name LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "dan" || res.Rows[1][0].S != "ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (x FLOAT); INSERT INTO t VALUES (3)")
	res := mustExec(t, db, "SELECT x FROM t")
	if res.Rows[0][0].K != KFloat || res.Rows[0][0].F != 3 {
		t.Fatalf("coerced value = %+v", res.Rows[0][0])
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('nope')"); err == nil {
		t.Fatal("TEXT into FLOAT should fail")
	}
}

func TestStringLiteralsAndEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (s TEXT); INSERT INTO t VALUES ('it''s')")
	res := mustExec(t, db, "SELECT s FROM t WHERE s = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "it's" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestComments(t *testing.T) {
	db := seedDB(t)
	res := mustExec(t, db, "SELECT COUNT(*) FROM people -- trailing comment\n WHERE age = 30")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	db := seedDB(t)
	for _, src := range []string{
		"SELEC 1",
		"SELECT FROM people",
		"SELECT nosuch FROM people",
		"SELECT name FROM nosuch",
		"CREATE TABLE people (id INT)",      // duplicate table
		"CREATE TABLE z (a INT, a TEXT)",    // duplicate column
		"INSERT INTO people VALUES (1)",     // arity mismatch
		"SELECT * FROM people GROUP BY age", // star with grouping
		"SELECT 'a' + 1 FROM people",
		"SELECT name FROM people WHERE name < 30",
		"SELECT (SELECT age FROM people) FROM people", // scalar subquery multi-row
		"SELECT 1", // missing FROM
		"SELECT name FROM people UNION SELECT name FROM people", // bare UNION
	} {
		if _, err := db.Exec(src); err == nil {
			t.Errorf("Exec(%q) should fail", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := seedDB(t)
	if _, err := db.Exec("SELECT id FROM people a, people b WHERE a.id = b.id"); err == nil {
		t.Fatal("ambiguous unqualified column should fail")
	}
}

func TestFloatFormatting(t *testing.T) {
	v := FloatV(2.5)
	if v.String() != "2.5" {
		t.Fatalf("String = %q", v.String())
	}
	if got := IntV(-3).String(); got != "-3" {
		t.Fatalf("String = %q", got)
	}
	if got := BoolV(true).String(); got != "true" {
		t.Fatalf("String = %q", got)
	}
	if TextV("x").String() != "x" {
		t.Fatal("text string")
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntV(1).Truthy() || IntV(0).Truthy() || !FloatV(0.1).Truthy() || FloatV(0).Truthy() {
		t.Fatal("numeric truthiness")
	}
	if !TextV("a").Truthy() || TextV("").Truthy() {
		t.Fatal("text truthiness")
	}
	if math.Abs(IntV(3).AsFloat()-3) > 0 {
		t.Fatal("AsFloat")
	}
	if _, err := compareValues(IntV(1), TextV("1")); err == nil {
		t.Fatal("int/text comparison should fail")
	}
}

func TestStats(t *testing.T) {
	db := seedDB(t)
	st := db.Stats()
	if st["people"] != 4 || st["pets"] != 3 {
		t.Fatalf("stats = %v", st)
	}
}

// TestRangeJoinMatchesNestedLoop cross-checks the optimized range join
// against a formulation the planner cannot optimize.
func TestRangeJoinMatchesNestedLoop(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE a (x INT); CREATE TABLE b (lo INT, hi INT)")
	for i := 0; i < 30; i++ {
		mustExec(t, db, "INSERT INTO a VALUES ("+itoa(i)+")")
	}
	mustExec(t, db, "INSERT INTO b VALUES (3, 7), (5, 6), (20, 25), (28, 40)")
	fast := mustExec(t, db, "SELECT COUNT(*) FROM b, a WHERE a.x >= b.lo AND a.x <= b.hi")
	slow := mustExec(t, db, "SELECT COUNT(*) FROM b, a WHERE a.x + 0 >= b.lo AND a.x + 0 <= b.hi")
	if fast.Rows[0][0].I != slow.Rows[0][0].I {
		t.Fatalf("range join %v != nested loop %v", fast.Rows[0][0], slow.Rows[0][0])
	}
	if fast.Rows[0][0].I != 5+2+6+2 {
		t.Fatalf("count = %v", fast.Rows[0][0])
	}
}
