package relational

import (
	"sort"
	"time"

	"htlvideo/internal/faultinject"
)

// TableData is a stored relation.
type TableData struct {
	Cols []Column
	Rows [][]Value

	version int
	indexes map[string]*sortedIndex
}

// colIndex returns the position of a column, or -1.
func (t *TableData) colIndex(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// sortedIndex orders row indices by one column's value.
type sortedIndex struct {
	version int
	col     int
	order   []int
}

// sorted returns (building if needed) the sorted index on col.
func (t *TableData) sorted(col int) *sortedIndex {
	key := t.Cols[col].Name
	if t.indexes == nil {
		t.indexes = map[string]*sortedIndex{}
	}
	idx := t.indexes[key]
	if idx != nil && idx.version == t.version {
		return idx
	}
	order := make([]int, len(t.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		c, _ := compareValues(t.Rows[order[a]][col], t.Rows[order[b]][col])
		return c < 0
	})
	idx = &sortedIndex{version: t.version, col: col, order: order}
	t.indexes[key] = idx
	return idx
}

// bound is one end of a column range; nil *bound means unbounded.
type bound struct {
	v    Value
	excl bool
}

// rangeSpan returns the [start, end) positions in the sorted index covering
// the requested range; O(log n) per call.
func (t *TableData) rangeSpan(col int, lo, hi *bound) (*sortedIndex, int, int) {
	idx := t.sorted(col)
	n := len(idx.order)
	start := 0
	if lo != nil {
		start = sort.Search(n, func(i int) bool {
			c, _ := compareValues(t.Rows[idx.order[i]][col], lo.v)
			if lo.excl {
				return c > 0
			}
			return c >= 0
		})
	}
	end := n
	if hi != nil {
		end = sort.Search(n, func(i int) bool {
			c, _ := compareValues(t.Rows[idx.order[i]][col], hi.v)
			if hi.excl {
				return c >= 0
			}
			return c > 0
		})
	}
	if end < start {
		end = start
	}
	return idx, start, end
}

// rangeRows returns the row indices whose col value lies in the range.
func (t *TableData) rangeRows(col int, lo, hi *bound) []int {
	idx, start, end := t.rangeSpan(col, lo, hi)
	return idx.order[start:end]
}

// rangeCount counts rows whose col value lies in the range.
func (t *TableData) rangeCount(col int, lo, hi *bound) int {
	_, start, end := t.rangeSpan(col, lo, hi)
	return end - start
}

// StmtInfo describes one executed statement, for observability hooks: what
// kind of statement it was, how many rows it touched, and how long it took.
// The §4 comparison ("quite large intermediate relations") becomes visible on
// live queries through these per-statement row counts.
type StmtInfo struct {
	// Kind is the statement keyword: "select", "insert", "delete", "create",
	// "drop".
	Kind string
	// Rows is the number of rows returned (SELECT) or affected
	// (INSERT/DELETE); zero for DDL.
	Rows int
	// Duration is the statement's execution wall time.
	Duration time.Duration
	// Err reports whether the statement failed.
	Err bool
}

// DB is an in-memory SQL database.
type DB struct {
	tables map[string]*TableData
	// stmts counts statements executed over the database's lifetime; it
	// keys the fault-injection hook so tests can target one statement.
	stmts int64
	// affected is the row count of the most recent INSERT or DELETE, for
	// OnStmt reporting.
	affected int

	// OnStmt, when set, observes every statement executed through ExecStmt.
	// Set it before issuing statements; the DB is not safe for concurrent
	// use, so the hook is called sequentially.
	OnStmt func(StmtInfo)
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*TableData{}} }

// Result is the output of a SELECT.
type Result struct {
	Cols []string
	Rows [][]Value
}

// Exec parses and executes a script of semicolon-separated statements,
// returning the result of the last SELECT (nil if the script has none).
func (db *DB) Exec(src string) (*Result, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		r, err := db.ExecStmt(st)
		if err != nil {
			return nil, err
		}
		if r != nil {
			last = r
		}
	}
	return last, nil
}

// ExecStmt executes one parsed statement.
func (db *DB) ExecStmt(st Stmt) (*Result, error) {
	if db.OnStmt == nil {
		return db.execStmt(st)
	}
	start := time.Now()
	db.affected = 0
	res, err := db.execStmt(st)
	info := StmtInfo{Kind: stmtKind(st), Duration: time.Since(start), Err: err != nil}
	if res != nil {
		info.Rows = len(res.Rows)
	} else {
		info.Rows = db.affected
	}
	db.OnStmt(info)
	return res, err
}

// stmtKind names a statement for observability.
func stmtKind(st Stmt) string {
	switch st.(type) {
	case *CreateTable:
		return "create"
	case *DropTable:
		return "drop"
	case *Insert:
		return "insert"
	case *Delete:
		return "delete"
	case *Select:
		return "select"
	default:
		return "other"
	}
}

func (db *DB) execStmt(st Stmt) (*Result, error) {
	if faultinject.Enabled() {
		n := db.stmts
		db.stmts++
		if err := faultinject.Fire(nil, faultinject.SiteRelationalExec, n); err != nil {
			return nil, err
		}
	}
	switch s := st.(type) {
	case *CreateTable:
		return nil, db.CreateTableData(s.Name, s.Cols)
	case *DropTable:
		if _, ok := db.tables[s.Name]; !ok {
			if s.IfExists {
				return nil, nil
			}
			return nil, errf(-1, "table %q does not exist", s.Name)
		}
		delete(db.tables, s.Name)
		return nil, nil
	case *Insert:
		return nil, db.execInsert(s)
	case *Delete:
		return nil, db.execDelete(s)
	case *Select:
		ex := &executor{db: db}
		return ex.execSelect(s, nil)
	default:
		return nil, errf(-1, "unsupported statement %T", st)
	}
}

// CreateTableData creates an empty table.
func (db *DB) CreateTableData(name string, cols []Column) error {
	if _, dup := db.tables[name]; dup {
		return errf(-1, "table %q already exists", name)
	}
	if len(cols) == 0 {
		return errf(-1, "table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return errf(-1, "duplicate column %q in table %q", c.Name, name)
		}
		seen[c.Name] = true
	}
	db.tables[name] = &TableData{Cols: append([]Column(nil), cols...)}
	return nil
}

// Table returns a stored table by name, or nil.
func (db *DB) Table(name string) *TableData { return db.tables[name] }

// InsertRows bulk-loads rows into a table, coercing values to the column
// types; the fast path for benchmark harnesses.
func (db *DB) InsertRows(name string, rows [][]Value) error {
	t := db.tables[name]
	if t == nil {
		return errf(-1, "table %q does not exist", name)
	}
	for _, r := range rows {
		if len(r) != len(t.Cols) {
			return errf(-1, "row has %d values, table %q has %d columns", len(r), name, len(t.Cols))
		}
		stored := make([]Value, len(r))
		for i, v := range r {
			cv, err := coerceTo(v, t.Cols[i].Type)
			if err != nil {
				return err
			}
			stored[i] = cv
		}
		t.Rows = append(t.Rows, stored)
	}
	t.version++
	db.affected += len(rows)
	return nil
}

func (db *DB) execInsert(s *Insert) error {
	t := db.tables[s.Table]
	if t == nil {
		return errf(-1, "table %q does not exist", s.Table)
	}
	if s.Query != nil {
		ex := &executor{db: db}
		res, err := ex.execSelect(s.Query, nil)
		if err != nil {
			return err
		}
		return db.InsertRows(s.Table, res.Rows)
	}
	ex := &executor{db: db}
	var rows [][]Value
	for _, re := range s.Rows {
		row := make([]Value, len(re))
		for i, e := range re {
			v, err := ex.eval(e, nil)
			if err != nil {
				return err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return db.InsertRows(s.Table, rows)
}

func (db *DB) execDelete(s *Delete) error {
	t := db.tables[s.Table]
	if t == nil {
		return errf(-1, "table %q does not exist", s.Table)
	}
	if s.Where == nil {
		db.affected += len(t.Rows)
		t.Rows = nil
		t.version++
		return nil
	}
	ex := &executor{db: db}
	kept := t.Rows[:0]
	for _, row := range t.Rows {
		sc := &scope{names: []string{s.Table}, cols: [][]Column{t.Cols}, rows: [][]Value{row}}
		v, err := ex.eval(s.Where, sc)
		if err != nil {
			return err
		}
		if !v.Truthy() {
			kept = append(kept, row)
		}
	}
	db.affected += len(t.Rows) - len(kept)
	t.Rows = kept
	t.version++
	return nil
}

// Stats returns row counts per table, for diagnostics.
func (db *DB) Stats() map[string]int {
	out := map[string]int{}
	for name, t := range db.tables {
		out[name] = len(t.Rows)
	}
	return out
}
