package casablanca

import (
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

func entry(beg, end int, act float64) simlist.Entry {
	return simlist.Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

func list(t *testing.T, src string) simlist.List {
	t.Helper()
	s, err := System()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.EvalAtomic(htl.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return core.ProjectMax(tb)
}

// TestTable1MovingTrain reproduces paper Table 1.
func TestTable1MovingTrain(t *testing.T) {
	got := list(t, MovingTrainQuery)
	want := simlist.NewList(10, entry(9, 9, 9.787))
	if !simlist.EqualApprox(got, want, 1e-9) {
		t.Fatalf("Moving-Train:\n got  %v\n want %v", got, want)
	}
}

// TestTable2ManWoman reproduces paper Table 2 (the 1.26 rows are the
// two-men shots).
func TestTable2ManWoman(t *testing.T) {
	got := list(t, ManWomanQuery)
	want := simlist.NewList(8,
		entry(1, 4, 2.595),
		entry(6, 6, 1.26),
		entry(8, 8, 1.26),
		entry(10, 44, 1.26),
		entry(47, 49, 6.26),
	)
	if !simlist.EqualApprox(got, want, 1e-9) {
		t.Fatalf("Man-Woman:\n got  %v\n want %v", got, want)
	}
}

// TestTable3Eventually reproduces paper Table 3: the result of
// { eventually Moving-train }.
func TestTable3Eventually(t *testing.T) {
	got := core.EventuallyList(list(t, MovingTrainQuery))
	want := simlist.NewList(10, entry(1, 9, 9.787))
	if !simlist.EqualApprox(got, want, 1e-9) {
		t.Fatalf("eventually Moving-Train:\n got  %v\n want %v", got, want)
	}
}

// TestTable4Query1 reproduces paper Table 4: the final result of Query 1,
// ranked by similarity.
func TestTable4Query1(t *testing.T) {
	s, err := System()
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Eval(s, htl.MustParse(Query1), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := simlist.NewList(18,
		entry(1, 4, 12.382),
		entry(5, 5, 9.787),
		entry(6, 6, 11.047),
		entry(7, 7, 9.787),
		entry(8, 8, 11.047),
		entry(9, 9, 9.787),
		entry(10, 44, 1.26),
		entry(47, 49, 6.26),
	)
	if !simlist.EqualApprox(got, want, 1e-9) {
		t.Fatalf("Query 1:\n got  %v\n want %v", got, want)
	}

	// The paper presents the result ranked by similarity: 12.382, 11.047,
	// 11.047, 9.787, 9.787, 9.787, 6.26, 1.26.
	ranked := core.RankEntries(1, got)
	wantOrder := []float64{12.382, 11.047, 11.047, 9.787, 9.787, 9.787, 6.26, 1.26}
	if len(ranked) != len(wantOrder) {
		t.Fatalf("ranked rows = %d, want %d", len(ranked), len(wantOrder))
	}
	for i, r := range ranked {
		if d := r.Sim.Act - wantOrder[i]; d < -1e-9 || d > 1e-9 {
			t.Errorf("rank %d = %g, want %g", i, r.Sim.Act, wantOrder[i])
		}
	}
}

func TestVideoShape(t *testing.T) {
	v := Video()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(v.Sequence(2)); got != Shots {
		t.Fatalf("shots = %d, want %d", got, Shots)
	}
}
