// Package casablanca reconstructs the paper's §4.1 case study: "The Making
// of Casablanca", a ~30-minute video cut-detected into 50 shots, whose
// meta-data drives the picture-retrieval substrate to produce exactly the
// atomic similarity tables the paper prints.
//
// The paper reports (Tables 1–2, reconstructed through Table 4, which is the
// conjunction of Table 2 with the eventually-closure of Table 1):
//
//	Moving-Train: ([9 9], 9.787)
//	Man-Woman:    ([1 4], 2.595) ([6 6], 1.26) ([8 8], 1.26)
//	              ([10 44], 1.26) ([47 49], 6.26)
//
// With the weights below, a man+woman shot scores 4·(c_man + c_woman) and a
// two-men shot scores 4·c₁ + 3·c₂ (the second man matching 'woman' at
// taxonomy similarity ½ — the paper notes the low-similarity entries
// "correspond to pictures/shots containing two men"), so the detection
// certainties recorded here yield the paper's numbers exactly.
package casablanca

import (
	"htlvideo/internal/metadata"
	"htlvideo/internal/picture"
)

// Shots is the number of shots the cut-detection produced (§4.1).
const Shots = 50

// Queries of the case study, in the library's HTL syntax.
const (
	// MovingTrainQuery is the paper's Moving-train atomic predicate.
	MovingTrainQuery = "exists t . present(t) and type(t) = 'train' and moving(t)"
	// ManWomanQuery is the paper's Man-Woman atomic predicate.
	ManWomanQuery = "exists x, y . present(x) and type(x) = 'man' and present(y) and type(y) = 'woman'"
	// Query1 is the paper's "Query 1":
	// { Man-Woman and { eventually Moving-train } }.
	Query1 = "(" + ManWomanQuery + ") and eventually (" + MovingTrainQuery + ")"
)

// Object ids of the recurring cast.
const (
	ManLead    metadata.ObjectID = 101 // the man of shots 1–4
	WomanLead  metadata.ObjectID = 102 // the woman of shots 1–4
	CrewManA   metadata.ObjectID = 201 // first of the two men
	CrewManB   metadata.ObjectID = 202 // second of the two men
	StuntManA  metadata.ObjectID = 211 // the two men of shots 6 and 8
	StuntManB  metadata.ObjectID = 212
	ManFinal   metadata.ObjectID = 301 // the couple of shots 47–49
	WomanFinal metadata.ObjectID = 302
	Train      metadata.ObjectID = 401 // the moving train of shot 9
)

// Taxonomy returns the case study's type hierarchy: man and woman are kinds
// of person, train a kind of vehicle.
func Taxonomy() *picture.Taxonomy {
	t := picture.NewTaxonomy()
	t.MustAdd("person", "entity")
	t.MustAdd("man", "person")
	t.MustAdd("woman", "person")
	t.MustAdd("vehicle", "entity")
	t.MustAdd("train", "vehicle")
	return t
}

// Weights returns the scoring weights of the case study: presence, type and
// attribute terms weigh 2; the moving(t) property weighs 6, so the
// Moving-Train query has maximum similarity 10 and the Man-Woman query 8.
func Weights() picture.Weights {
	w := picture.DefaultWeights()
	w.Prop = 6
	return w
}

// Video builds the 50-shot video. Each shot is a child of the root (the
// §3 two-level arrangement: the paper "fed the data corresponding to the
// different shots into the picture retrieval system considering each shot as
// a single picture").
func Video() *metadata.Video {
	v := metadata.NewVideo(1, "The Making of Casablanca", map[string]int{"shot": 2})
	for shot := 1; shot <= Shots; shot++ {
		v.Root.AppendChild(shotMeta(shot))
	}
	return v
}

func shotMeta(shot int) metadata.SegmentMeta {
	switch {
	case shot >= 1 && shot <= 4:
		// A man and a woman, detected with low certainty:
		// 4·(0.4 + 0.24875) = 2.595.
		return metadata.Seg().
			ObjC(ManLead, "man", 0.4).
			ObjC(WomanLead, "woman", 0.24875).
			Build()
	case shot == 6 || shot == 8:
		// Two men: 4·0.24 + 3·0.1 = 1.26.
		return metadata.Seg().
			ObjC(StuntManA, "man", 0.24).
			ObjC(StuntManB, "man", 0.1).
			Build()
	case shot == 9:
		// The moving train: 10·0.9787 = 9.787.
		return metadata.Seg().
			ObjC(Train, "train", 0.9787).Prop("moving").
			Build()
	case shot >= 10 && shot <= 44:
		// A long run of two-men shots: 4·0.24 + 3·0.1 = 1.26.
		return metadata.Seg().
			ObjC(CrewManA, "man", 0.24).
			ObjC(CrewManB, "man", 0.1).
			Build()
	case shot >= 47 && shot <= 49:
		// The man and woman of the finale: 4·(0.9 + 0.665) = 6.26.
		return metadata.Seg().
			ObjC(ManFinal, "man", 0.9).
			ObjC(WomanFinal, "woman", 0.665).
			Build()
	default:
		// Shots 5, 7, 45, 46, 50: scenery without people or trains.
		return metadata.Seg().Attr("content", metadata.Str("scenery")).Build()
	}
}

// System builds the picture-retrieval system over the 50 shots.
func System() (*picture.System, error) {
	return picture.NewSystem(Video(), 2, Taxonomy(), Weights())
}
