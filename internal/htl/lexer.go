package htl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the concrete HTL syntax.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokArrow // <-
	tokEq    // =
	tokNe    // !=
	tokLt    // <
	tokLe    // <=
	tokGt    // >
	tokGe    // >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokStr:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'<-'"
	default:
		return "comparison operator"
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

// SyntaxError reports a lexical or parse error with its byte offset in the
// query text.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("htl: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lex tokenizes src. Identifiers admit letters, digits, '_' and interior '-'
// immediately followed by a letter, so `at-scene-level` is a single token.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokNe, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{i, "unexpected '!'"}
			}
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '-':
				toks = append(toks, token{tokArrow, "<-", i})
				i += 2
			case i+1 < n && src[i+1] == '=':
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			default:
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '\'':
			j := strings.IndexByte(src[i+1:], '\'')
			if j < 0 {
				return nil, &SyntaxError{i, "unterminated string literal"}
			}
			toks = append(toks, token{tokStr, src[i+1 : i+1+j], i})
			i += j + 2
		case c == '-' || (c >= '0' && c <= '9'):
			start := i
			if c == '-' {
				i++
				if i >= n || src[i] < '0' || src[i] > '9' {
					return nil, &SyntaxError{start, "unexpected '-'"}
				}
			}
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, token{tokInt, src[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n {
				ch := src[i]
				if isIdentPart(rune(ch)) {
					i++
					continue
				}
				// Interior dash glues multi-word keywords: at-next-level.
				if ch == '-' && i+1 < n && unicode.IsLetter(rune(src[i+1])) {
					i += 2
					continue
				}
				break
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
