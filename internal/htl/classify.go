package htl

// Class is the paper's formula-class hierarchy (§2.5, §3). Each class is a
// subclass of the next: Type1 ⊂ Type2 ⊂ Conjunctive ⊂ ExtendedConjunctive.
// General covers the rest of HTL, which only the reference evaluator handles
// (the paper defers the full language to future work).
type Class uint8

const (
	// ClassType1: conjunctive, no freeze operators, and no temporal operator
	// in the scope of any existential quantifier (§3: evaluated purely on
	// similarity lists).
	ClassType1 Class = iota
	// ClassType2: conjunctive without freeze operators (§3.2: evaluated on
	// similarity tables).
	ClassType2
	// ClassConjunctive: no negation outside non-temporal subformulas, no
	// level-modal operators, all variables bound, every existential
	// quantifier at the beginning of the formula or with non-temporal scope.
	ClassConjunctive
	// ClassExtendedConjunctive: conjunctive plus level-modal operators.
	ClassExtendedConjunctive
	// ClassGeneral: full HTL.
	ClassGeneral
)

func (c Class) String() string {
	switch c {
	case ClassType1:
		return "type (1)"
	case ClassType2:
		return "type (2)"
	case ClassConjunctive:
		return "conjunctive"
	case ClassExtendedConjunctive:
		return "extended conjunctive"
	default:
		return "general"
	}
}

// NonTemporal reports whether f contains no temporal and no level-modal
// operators (§2.2). Such a formula asserts a property of a single video
// segment's meta-data and is evaluated atomically by the picture-retrieval
// substrate.
func NonTemporal(f Formula) bool {
	switch n := f.(type) {
	case True, Present, Cmp, Pred:
		return true
	case And:
		return NonTemporal(n.L) && NonTemporal(n.R)
	case Not:
		return NonTemporal(n.F)
	case Exists:
		return NonTemporal(n.F)
	case Freeze:
		return NonTemporal(n.F)
	default: // Next, Until, Eventually, AtLevel
		return false
	}
}

// Classify determines the smallest class of the paper's hierarchy containing
// f. The formula should be closed (as returned by Parse).
func Classify(f Formula) Class {
	// Strip the leading existential prefix (allowed in every conjunctive
	// class); remember whether it scopes over temporal operators.
	g := f
	hadPrefix := false
	for {
		e, ok := g.(Exists)
		if !ok {
			break
		}
		g = e.F
		hadPrefix = true
	}
	prefixOverTemporal := hadPrefix && !NonTemporal(g)

	st := classState{}
	if !st.walk(g) {
		return ClassGeneral
	}
	switch {
	case st.hasLevel:
		return ClassExtendedConjunctive
	case st.hasFreeze:
		return ClassConjunctive
	case st.existsOverTemporal || prefixOverTemporal:
		return ClassType2
	default:
		return ClassType1
	}
}

type classState struct {
	hasFreeze          bool
	hasLevel           bool
	existsOverTemporal bool
}

// walk checks the conjunctive-family conditions on the matrix g (after the
// prefix); it returns false when g falls outside ExtendedConjunctive.
// Maximal non-temporal subformulas are atomic units: negation, quantifiers
// and freezes inside them are the picture system's concern. A freeze inside
// such a unit still demotes the formula below Type2, which forbids the
// assignment operator outright.
func (s *classState) walk(f Formula) bool {
	if NonTemporal(f) {
		s.scanNonTemporal(f)
		return true
	}
	switch n := f.(type) {
	case And:
		return s.walk(n.L) && s.walk(n.R)
	case Until:
		return s.walk(n.L) && s.walk(n.R)
	case Next:
		return s.walk(n.F)
	case Eventually:
		return s.walk(n.F)
	case Freeze:
		s.hasFreeze = true
		return s.walk(n.F)
	case AtLevel:
		s.hasLevel = true
		return s.walk(n.F)
	case Exists:
		// A quantifier not at the beginning whose scope contains temporal
		// operators (we know f is not non-temporal here).
		s.existsOverTemporal = true
		return false
	case Not:
		// Negation over a temporal subformula: outside the conjunctive
		// family.
		return false
	default:
		return false
	}
}

// scanNonTemporal records freeze operators hidden inside an atomic unit.
func (s *classState) scanNonTemporal(f Formula) {
	switch n := f.(type) {
	case And:
		s.scanNonTemporal(n.L)
		s.scanNonTemporal(n.R)
	case Not:
		s.scanNonTemporal(n.F)
	case Exists:
		s.scanNonTemporal(n.F)
	case Freeze:
		s.hasFreeze = true
		s.scanNonTemporal(n.F)
	}
}
