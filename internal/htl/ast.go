// Package htl implements the Hierarchical Temporal Logic of paper §2: the
// abstract syntax, a concrete text syntax with lexer and parser, variable
// binding analysis, and the formula-class hierarchy of §2.5/§3
// (type (1) ⊂ type (2) ⊂ conjunctive ⊂ extended conjunctive ⊂ HTL).
//
// Concrete syntax (examples from the paper):
//
//	M1 and next (M2 until M3)
//	exists x, y . P1(x, y) and eventually (P2(x, y) and eventually P3(y))
//	exists z . present(z) and type(z) = 'airplane' and
//	    [h <- height(z)] eventually (present(z) and height(z) > h)
//	genre = 'western' and at-frame-level(f)
//
// Operators, loosest to tightest: `until`, `and`, prefix operators
// (`not`, `next`, `eventually`, `exists v,... .`, `[y <- attr(x)]`,
// `at-next-level(...)`, `at-level(i, ...)`, `at-<name>-level(...)`).
package htl

import "fmt"

// VarKind distinguishes the two variable sorts of §2.2.
type VarKind uint8

const (
	// ObjectVar ranges over object ids; bound by `exists`.
	ObjectVar VarKind = iota
	// AttrVar ranges over attribute values; bound by the freeze operator.
	AttrVar
)

func (k VarKind) String() string {
	if k == AttrVar {
		return "attribute"
	}
	return "object"
}

// Term is an expression: a variable, a literal, or an attribute function
// application.
type Term interface {
	isTerm()
	String() string
}

// Var is a variable occurrence. Kind is filled in by the binding pass.
type Var struct {
	Name string
	Kind VarKind
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// StrLit is a string literal.
type StrLit struct{ S string }

// AttrFn is an attribute function application q(x) — the value of attribute
// Attr of the object bound to variable Of in the current video segment.
// With Of == "" it denotes a segment-level attribute (e.g. genre, title).
type AttrFn struct {
	Attr string
	Of   string
}

func (Var) isTerm()    {}
func (IntLit) isTerm() {}
func (StrLit) isTerm() {}
func (AttrFn) isTerm() {}

func (v Var) String() string    { return v.Name }
func (l IntLit) String() string { return fmt.Sprint(l.V) }
func (l StrLit) String() string { return "'" + l.S + "'" }
func (a AttrFn) String() string {
	if a.Of == "" {
		return a.Attr
	}
	return a.Attr + "(" + a.Of + ")"
}

// CmpOp is a comparison operator in an atomic predicate.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	default:
		return ">="
	}
}

// Flip returns the operator with its operands exchanged (a op b == b Flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}

// Formula is an HTL formula node.
type Formula interface {
	isFormula()
	String() string
}

// True is the trivially satisfied formula (useful as the left side of until,
// making `eventually f` definable as `true until f`).
type True struct{}

// Present is the special unary predicate present(x) of §2.2.
type Present struct{ X Var }

// Cmp is an atomic comparison between two terms, e.g. height(z) > h,
// name(x) = 'JohnWayne', genre = 'western'.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// Pred is a named domain predicate over terms: nullary segment predicates
// (M1), unary object properties (holds_gun(x)) or binary relationships
// (fires_at(x, y)).
type Pred struct {
	Name string
	Args []Term
}

// And is conjunction.
type And struct{ L, R Formula }

// Not is negation. The conjunctive classes only admit it inside non-temporal
// subformulas (§2.5); elsewhere it pushes the formula to the General class.
type Not struct{ F Formula }

// Next is the temporal next operator.
type Next struct{ F Formula }

// Until is the temporal until operator (reflexive, as in §2.3: h holding now
// satisfies g until h).
type Until struct{ L, R Formula }

// Eventually is the temporal eventually operator, semantically
// true until F.
type Eventually struct{ F Formula }

// Exists is first-order existential quantification over object variables.
type Exists struct {
	Vars []string
	F    Formula
}

// Freeze is the assignment operator [y <- q](f) of §2.2: it binds attribute
// variable Var to the value of Attr in the current segment and evaluates F.
type Freeze struct {
	Var  string
	Attr AttrFn
	F    Formula
}

// LevelRef designates the target level of a level-modal operator.
type LevelRef struct {
	// NextLevel selects the immediate children (at-next-level).
	NextLevel bool
	// Num selects an absolute level number (at-level(i, ...)); 0 when unused.
	Num int
	// Name selects a named level (at-scene-level, ...); empty when unused.
	Name string
}

func (r LevelRef) String() string {
	switch {
	case r.NextLevel:
		return "at-next-level"
	case r.Name != "":
		return "at-" + r.Name + "-level"
	default:
		return fmt.Sprintf("at-level(%d", r.Num)
	}
}

// AtLevel is a level modal operator: F holds at the first descendant of the
// current segment at the designated level (§2.3).
type AtLevel struct {
	Level LevelRef
	F     Formula
}

func (True) isFormula()       {}
func (Present) isFormula()    {}
func (Cmp) isFormula()        {}
func (Pred) isFormula()       {}
func (And) isFormula()        {}
func (Not) isFormula()        {}
func (Next) isFormula()       {}
func (Until) isFormula()      {}
func (Eventually) isFormula() {}
func (Exists) isFormula()     {}
func (Freeze) isFormula()     {}
func (AtLevel) isFormula()    {}
