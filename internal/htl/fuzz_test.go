package htl

import (
	"strings"
	"testing"
)

// FuzzParse asserts that parsing is total: any input either fails with a
// parse error or yields a formula whose printed form parses back without
// panicking, and printing is a fixed point (print → parse → print is
// stable).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"true",
		"exists x . present(x) and type(x) = 'man'",
		"exists x, y . fires_at(x, y)",
		"M1 until M2",
		"next eventually genre = 'western'",
		"[y <- color(x)] eventually color(x) = y",
		"at-shot-level(exists x . present(x))",
		"at-level(3, M1 until M2)",
		"at-next-level(not holds_gun(x))",
		"not (M1 and M2)",
		"(((true)))",
		"exists x . present(x",
		"a = ",
		"[y <- ] true",
		strings.Repeat("(", 64) + "true" + strings.Repeat(")", 64),
		strings.Repeat("not ", 64) + "M1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := Parse(src)
		if err != nil {
			return // rejecting the input is fine; panicking is not
		}
		printed := f1.String()
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of %q (printed from %q) failed: %v", printed, src, err)
		}
		if got := f2.String(); got != printed {
			t.Fatalf("print not stable: %q prints as %q (input %q)", printed, got, src)
		}
	})
}

// TestParseDepthGuard asserts that pathologically nested inputs return a
// parse error instead of overflowing the stack, on every recursive
// production: parentheses, prefix operators, and nested argument lists.
func TestParseDepthGuard(t *testing.T) {
	deep := []struct {
		name, src string
	}{
		{"parens", strings.Repeat("(", 200000) + "true" + strings.Repeat(")", 200000)},
		{"not-chain", strings.Repeat("not ", 200000) + "M1"},
		{"next-chain", strings.Repeat("next ", 200000) + "M1"},
		{"exists-chain", strings.Repeat("exists x . ", 200000) + "M1"},
		{"call-nest", "p" + strings.Repeat("(f", 200000)},
	}
	for _, tc := range deep {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatalf("Parse accepted %s nested 200000 deep", tc.name)
			}
		})
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(", 100) + "true" + strings.Repeat(")", 100)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("Parse rejected 100-deep parens: %v", err)
	}
}
