package htl

import (
	"reflect"
	"strings"
	"testing"
)

// The paper's running examples (§2.4), in our concrete syntax.
const (
	formulaA = "M1 and next (M2 until M3)"
	formulaB = "exists x, y . P1(x, y) and eventually (P2(x, y) and eventually P3(y))"
	formulaC = "exists z . (present(z) and type(z) = 'airplane') and [h <- height(z)] eventually (present(z) and height(z) > h)"
)

func TestParseFormulaA(t *testing.T) {
	f := MustParse(formulaA)
	want := And{
		L: Pred{Name: "M1"},
		R: Next{F: Until{L: Pred{Name: "M2"}, R: Pred{Name: "M3"}}},
	}
	if !reflect.DeepEqual(f, want) {
		t.Fatalf("got %#v", f)
	}
}

func TestParseFormulaB(t *testing.T) {
	f := MustParse(formulaB)
	ex, ok := f.(Exists)
	if !ok || len(ex.Vars) != 2 || ex.Vars[0] != "x" || ex.Vars[1] != "y" {
		t.Fatalf("got %#v", f)
	}
	and, ok := ex.F.(And)
	if !ok {
		t.Fatalf("body %#v", ex.F)
	}
	p1, ok := and.L.(Pred)
	if !ok || p1.Name != "P1" || len(p1.Args) != 2 {
		t.Fatalf("P1 = %#v", and.L)
	}
	if v, ok := p1.Args[0].(Var); !ok || v.Name != "x" || v.Kind != ObjectVar {
		t.Fatalf("P1 first arg = %#v", p1.Args[0])
	}
	if _, ok := and.R.(Eventually); !ok {
		t.Fatalf("right side %#v", and.R)
	}
}

func TestParseFormulaC(t *testing.T) {
	f := MustParse(formulaC)
	ex := f.(Exists)
	and := ex.F.(And)
	fr, ok := and.R.(Freeze)
	if !ok || fr.Var != "h" || fr.Attr != (AttrFn{Attr: "height", Of: "z"}) {
		t.Fatalf("freeze = %#v", and.R)
	}
	ev := fr.F.(Eventually)
	body := ev.F.(And)
	cmp, ok := body.R.(Cmp)
	if !ok || cmp.Op != OpGt {
		t.Fatalf("cmp = %#v", body.R)
	}
	if cmp.L != (AttrFn{Attr: "height", Of: "z"}) {
		t.Fatalf("cmp.L = %#v", cmp.L)
	}
	if v, ok := cmp.R.(Var); !ok || v.Kind != AttrVar || v.Name != "h" {
		t.Fatalf("cmp.R = %#v", cmp.R)
	}
}

func TestParseSegmentAttribute(t *testing.T) {
	f := MustParse("genre = 'western'")
	want := Cmp{Op: OpEq, L: AttrFn{Attr: "genre"}, R: StrLit{S: "western"}}
	if !reflect.DeepEqual(f, want) {
		t.Fatalf("got %#v", f)
	}
}

func TestParseLevelOperators(t *testing.T) {
	for src, want := range map[string]LevelRef{
		"at-next-level(M1)":  {NextLevel: true},
		"at-level(3, M1)":    {Num: 3},
		"at-scene-level(M1)": {Name: "scene"},
		"at-shot-level(M1)":  {Name: "shot"},
		"at-frame-level(M1)": {Name: "frame"},
	} {
		f := MustParse(src)
		al, ok := f.(AtLevel)
		if !ok || al.Level != want {
			t.Errorf("%s => %#v, want level %#v", src, f, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// `until` binds loosest, right-associative; `and` chains left.
	f := MustParse("A and B until C until D")
	u, ok := f.(Until)
	if !ok {
		t.Fatalf("got %#v", f)
	}
	if _, ok := u.L.(And); !ok {
		t.Fatalf("left of until = %#v", u.L)
	}
	if _, ok := u.R.(Until); !ok {
		t.Fatalf("until should be right-associative, got %#v", u.R)
	}

	g := MustParse("A and not B and next C")
	a2 := g.(And)
	if _, ok := a2.R.(Next); !ok {
		t.Fatalf("and should be left-associative: %#v", g)
	}
	a1 := a2.L.(And)
	if _, ok := a1.R.(Not); !ok {
		t.Fatalf("not should bind tighter than and: %#v", a1)
	}
}

func TestParseComparisonForms(t *testing.T) {
	for _, src := range []string{
		"height(x) > 5",
		"5 < height(x)",
		"name(x) = 'JohnWayne'",
		"duration >= 30",
		"count(x) != 2",
		"year <= -3",
	} {
		src := "exists x . present(x) and " + src
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		src, wantSub string
	}{
		{"", "expected a formula"},
		{"M1 and", "expected a formula"},
		{"(M1", "expected ')'"},
		{"M1)", "unexpected ')'"},
		{"exists . M1", "expected identifier"},
		{"exists x M1", "expected '.'"},
		{"present(x)", "unbound object variable"},
		{"P1(x)", "unbound object variable"},
		{"[h <- q] (h > 5 and present(h))", "attribute variable"},
		{"exists x, x . present(x)", "bound twice"},
		{"exists until . M1", "reserved"},
		{"'lit'", "expected a comparison after literal"},
		{"P1('a' < 1)", "expected ')'"},
		{"height(x, y) > 5", "one object variable"},
		{"height(5) > 5", "requires an object variable"},
		{"at-level(0, M1)", "invalid level"},
		{"at-level(x, M1)", "expected integer"},
		{"exists x . present(x) and 'a' = !b", "unexpected '!'"},
		{"M1 and 'unterminated", "unterminated string"},
		{"M1 # M2", "unexpected character"},
		{"[y <- q(x)] M1", "unbound object variable"},
		{"M1 and -", "unexpected '-'"},
		{"exists x . x = 5", ""},                  // bound object var in comparison parses; semantic layers reject later
		{"exists x . [x <- q(x)] rating > x", ""}, // freeze may shadow an object variable
		{"exists x . height(x) > h", ""},          // unbound bare comparand reads as segment attribute h
	} {
		_, err := Parse(tc.src)
		if tc.wantSub == "" {
			if err != nil {
				t.Errorf("Parse(%q) unexpected error: %v", tc.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q does not contain %q", tc.src, err, tc.wantSub)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{
		formulaA,
		formulaB,
		formulaC,
		"genre = 'western' and at-frame-level(exists x . present(x))",
		"at-level(4, M1 until M2 until M3)",
		"not M1 and not (M1 and M2)",
		"true until next eventually M2",
		"exists x . present(x) and at-next-level(type(x) = 'plane')",
		"[y <- duration] (len > 5 and next rating >= y)",
	} {
		f := MustParse(src)
		back, err := Parse(f.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", src, f.String(), err)
			continue
		}
		if !reflect.DeepEqual(f, back) {
			t.Errorf("round trip changed %q:\n first %#v\n second %#v", src, f, back)
		}
	}
}

func TestFreeVars(t *testing.T) {
	// Subformula of B with x and y free.
	f := MustParse(formulaB).(Exists).F
	obj, attr := FreeVars(f)
	if len(obj) != 2 || obj[0] != "x" || obj[1] != "y" || len(attr) != 0 {
		t.Fatalf("FreeVars = %v %v", obj, attr)
	}
	// Closed formulas have no free variables.
	obj, attr = FreeVars(MustParse(formulaC))
	if len(obj) != 0 || len(attr) != 0 {
		t.Fatalf("closed formula free vars = %v %v", obj, attr)
	}
	// Inside the freeze scope of C: z free object, h free attribute.
	frz := MustParse(formulaC).(Exists).F.(And).R.(Freeze)
	obj, attr = FreeVars(frz.F)
	if len(obj) != 1 || obj[0] != "z" || len(attr) != 1 || attr[0] != "h" {
		t.Fatalf("freeze body free vars = %v %v", obj, attr)
	}
	// The freeze node itself binds h.
	obj, attr = FreeVars(frz)
	if len(obj) != 1 || len(attr) != 0 {
		t.Fatalf("freeze free vars = %v %v", obj, attr)
	}
}

func TestNonTemporal(t *testing.T) {
	for src, want := range map[string]bool{
		"M1 and not M2": true,
		"exists x . present(x) and type(x) = 'a'": true,
		"next M1":             false,
		"M1 until M2":         false,
		"eventually M1":       false,
		"at-next-level(M1)":   false,
		"[h <- q] rating > h": true,
	} {
		if got := NonTemporal(MustParse(src)); got != want {
			t.Errorf("NonTemporal(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	for src, want := range map[string]Class{
		formulaA:                ClassType1,
		formulaB:                ClassType2,
		formulaC:                ClassConjunctive,
		"M1":                    ClassType1,
		"not M1":                ClassType1,
		"exists x . present(x)": ClassType1,
		"M1 and (exists x . present(x)) until M2":     ClassType1,
		"exists x . present(x) until M2":              ClassType2,
		"M1 until [h <- q] next rating > h":           ClassConjunctive,
		"[h <- q] rating > h":                         ClassConjunctive, // freeze demotes below type 2 even non-temporally
		"at-shot-level(M1 until M2)":                  ClassExtendedConjunctive,
		"exists x . present(x) and at-next-level(M1)": ClassExtendedConjunctive,
		"not next M1":       ClassGeneral,
		"not (M1 until M2)": ClassGeneral,
		"M1 until (exists x . present(x) and next M2)":   ClassGeneral,
		"at-level(3, not eventually M1)":                 ClassGeneral,
		"exists x . at-level(3, [h <- q(x)] rating > h)": ClassExtendedConjunctive,
	} {
		if got := Classify(MustParse(src)); got != want {
			t.Errorf("Classify(%q) = %v, want %v", src, got, want)
		}
	}
}

func TestCmpOpHelpers(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	strs := []string{"=", "!=", "<", "<=", ">", ">="}
	flips := []CmpOp{OpEq, OpNe, OpGt, OpGe, OpLt, OpLe}
	for i, op := range ops {
		if op.String() != strs[i] {
			t.Errorf("String(%d) = %q", i, op.String())
		}
		if op.Flip() != flips[i] {
			t.Errorf("Flip(%v) = %v, want %v", op, op.Flip(), flips[i])
		}
	}
	if ObjectVar.String() != "object" || AttrVar.String() != "attribute" {
		t.Error("VarKind strings wrong")
	}
}

func TestLevelRefString(t *testing.T) {
	if (LevelRef{NextLevel: true}).String() != "at-next-level" {
		t.Error("next-level string")
	}
	if (LevelRef{Name: "scene"}).String() != "at-scene-level" {
		t.Error("named-level string")
	}
	if got := (LevelRef{Num: 3}).String(); !strings.Contains(got, "3") {
		t.Errorf("numeric level string = %q", got)
	}
}
