package htl

import (
	"fmt"
	"strings"
)

// String renders formulas in the concrete syntax accepted by Parse. Binary
// operators are parenthesized per precedence so that Parse(f.String()) yields
// a structurally identical formula.

func (True) String() string      { return "true" }
func (p Present) String() string { return "present(" + p.X.Name + ")" }

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

func (p Pred) String() string {
	if len(p.Args) == 0 {
		return p.Name
	}
	args := make([]string, len(p.Args))
	for i, a := range p.Args {
		args[i] = a.String()
	}
	return p.Name + "(" + strings.Join(args, ", ") + ")"
}

// prec returns a binding strength: exists and until are loosest (an
// existential's scope extends maximally right, so anywhere but tail
// position it needs parentheses), and=2, everything else atomic/prefix=3.
func prec(f Formula) int {
	switch f.(type) {
	case Until, Exists:
		return 1
	case And:
		return 2
	default:
		return 3
	}
}

// wrap parenthesizes child when its precedence is too loose for the context.
func wrap(f Formula, minPrec int) string {
	s := f.String()
	if prec(f) < minPrec {
		return "(" + s + ")"
	}
	return s
}

func (a And) String() string {
	// `and` is left-associative; require the right child to bind tighter.
	return wrap(a.L, 2) + " and " + wrap(a.R, 3)
}

func (u Until) String() string {
	// `until` is right-associative.
	return wrap(u.L, 2) + " until " + wrap(u.R, 1)
}

func (n Not) String() string        { return "not " + wrap(n.F, 3) }
func (n Next) String() string       { return "next " + wrap(n.F, 3) }
func (e Eventually) String() string { return "eventually " + wrap(e.F, 3) }

func (e Exists) String() string {
	return "exists " + strings.Join(e.Vars, ", ") + " . " + wrap(e.F, 1)
}

func (f Freeze) String() string {
	return "[" + f.Var + " <- " + f.Attr.String() + "] " + wrap(f.F, 3)
}

func (a AtLevel) String() string {
	switch {
	case a.Level.NextLevel:
		return "at-next-level(" + a.F.String() + ")"
	case a.Level.Name != "":
		return "at-" + a.Level.Name + "-level(" + a.F.String() + ")"
	default:
		return fmt.Sprintf("at-level(%d, %s)", a.Level.Num, a.F)
	}
}
