package htl

import "fmt"

// BindError reports a variable-resolution problem.
type BindError struct{ Msg string }

func (e *BindError) Error() string { return "htl: " + e.Msg }

// bind resolves variable occurrences against the binding environment,
// labelling each Var with its sort. Identifiers used where an object is
// required (present, predicate arguments, attribute-function arguments) must
// be bound by `exists`; an unbound identifier appearing as a bare comparison
// operand is reinterpreted as a segment-level attribute reference.
func bind(f Formula, env map[string]VarKind) (Formula, error) {
	switch n := f.(type) {
	case True:
		return n, nil
	case Present:
		v, err := bindObjVar(n.X, env)
		if err != nil {
			return nil, err
		}
		return Present{X: v}, nil
	case Cmp:
		l, err := bindTerm(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := bindTerm(n.R, env)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: n.Op, L: l, R: r}, nil
	case Pred:
		if len(n.Args) == 0 {
			return Pred{Name: n.Name}, nil
		}
		args := make([]Term, len(n.Args))
		for i, a := range n.Args {
			switch t := a.(type) {
			case Var:
				v, err := bindObjVar(t, env)
				if err != nil {
					return nil, err
				}
				args[i] = v
			case StrLit, IntLit:
				args[i] = t
			case AttrFn:
				if err := checkAttrFn(t, env); err != nil {
					return nil, err
				}
				args[i] = t
			default:
				return nil, &BindError{fmt.Sprintf("unsupported predicate argument %s", a)}
			}
		}
		return Pred{Name: n.Name, Args: args}, nil
	case And:
		l, err := bind(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := bind(n.R, env)
		if err != nil {
			return nil, err
		}
		return And{L: l, R: r}, nil
	case Not:
		g, err := bind(n.F, env)
		if err != nil {
			return nil, err
		}
		return Not{F: g}, nil
	case Next:
		g, err := bind(n.F, env)
		if err != nil {
			return nil, err
		}
		return Next{F: g}, nil
	case Eventually:
		g, err := bind(n.F, env)
		if err != nil {
			return nil, err
		}
		return Eventually{F: g}, nil
	case Until:
		l, err := bind(n.L, env)
		if err != nil {
			return nil, err
		}
		r, err := bind(n.R, env)
		if err != nil {
			return nil, err
		}
		return Until{L: l, R: r}, nil
	case Exists:
		// Shadowing an outer binding is allowed; duplicating a name within
		// one quantifier is not.
		if err := checkDistinct(n.Vars); err != nil {
			return nil, err
		}
		inner := cloneEnv(env)
		for _, v := range n.Vars {
			inner[v] = ObjectVar
		}
		g, err := bind(n.F, inner)
		if err != nil {
			return nil, err
		}
		return Exists{Vars: n.Vars, F: g}, nil
	case Freeze:
		if err := checkAttrFn(n.Attr, env); err != nil {
			return nil, err
		}
		inner := cloneEnv(env)
		inner[n.Var] = AttrVar
		g, err := bind(n.F, inner)
		if err != nil {
			return nil, err
		}
		return Freeze{Var: n.Var, Attr: n.Attr, F: g}, nil
	case AtLevel:
		g, err := bind(n.F, env)
		if err != nil {
			return nil, err
		}
		return AtLevel{Level: n.Level, F: g}, nil
	default:
		return nil, &BindError{fmt.Sprintf("unsupported formula node %T", f)}
	}
}

// bindTerm resolves a comparison operand.
func bindTerm(t Term, env map[string]VarKind) (Term, error) {
	switch x := t.(type) {
	case IntLit, StrLit:
		return x, nil
	case AttrFn:
		if err := checkAttrFn(x, env); err != nil {
			return nil, err
		}
		return x, nil
	case Var:
		if k, ok := env[x.Name]; ok {
			return Var{Name: x.Name, Kind: k}, nil
		}
		// Unbound bare identifier in a comparison: a segment attribute,
		// e.g. `genre = 'western'`.
		return AttrFn{Attr: x.Name}, nil
	default:
		return nil, &BindError{fmt.Sprintf("unsupported term %s", t)}
	}
}

// bindObjVar requires v to be bound as an object variable.
func bindObjVar(v Var, env map[string]VarKind) (Var, error) {
	k, ok := env[v.Name]
	if !ok {
		return Var{}, &BindError{fmt.Sprintf("unbound object variable %q", v.Name)}
	}
	if k != ObjectVar {
		return Var{}, &BindError{fmt.Sprintf("%q is an attribute variable, but an object variable is required", v.Name)}
	}
	return Var{Name: v.Name, Kind: ObjectVar}, nil
}

// checkAttrFn validates the object argument of an attribute function.
func checkAttrFn(a AttrFn, env map[string]VarKind) error {
	if a.Of == "" {
		return nil
	}
	k, ok := env[a.Of]
	if !ok {
		return &BindError{fmt.Sprintf("unbound object variable %q in %s", a.Of, a)}
	}
	if k != ObjectVar {
		return &BindError{fmt.Sprintf("%q in %s is an attribute variable, but an object variable is required", a.Of, a)}
	}
	return nil
}

func checkDistinct(vars []string) error {
	seen := map[string]bool{}
	for _, v := range vars {
		if seen[v] {
			return &BindError{fmt.Sprintf("variable %q bound twice by one quantifier", v)}
		}
		seen[v] = true
	}
	return nil
}

func cloneEnv(env map[string]VarKind) map[string]VarKind {
	out := make(map[string]VarKind, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// FreeVars returns the free object and attribute variables of f, in first-
// occurrence order. On a formula returned by Parse both lists are empty;
// the evaluator uses this on subformulas.
func FreeVars(f Formula) (obj, attr []string) {
	var ob, at []string
	seenO, seenA := map[string]bool{}, map[string]bool{}
	bound := map[string]int{} // name -> nesting count
	addTerm := func(t Term) {
		switch x := t.(type) {
		case Var:
			if bound[x.Name] > 0 {
				return
			}
			if x.Kind == ObjectVar && !seenO[x.Name] {
				seenO[x.Name] = true
				ob = append(ob, x.Name)
			}
			if x.Kind == AttrVar && !seenA[x.Name] {
				seenA[x.Name] = true
				at = append(at, x.Name)
			}
		case AttrFn:
			if x.Of != "" && bound[x.Of] == 0 && !seenO[x.Of] {
				seenO[x.Of] = true
				ob = append(ob, x.Of)
			}
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch n := f.(type) {
		case Present:
			addTerm(n.X)
		case Cmp:
			addTerm(n.L)
			addTerm(n.R)
		case Pred:
			for _, a := range n.Args {
				addTerm(a)
			}
		case And:
			walk(n.L)
			walk(n.R)
		case Until:
			walk(n.L)
			walk(n.R)
		case Not:
			walk(n.F)
		case Next:
			walk(n.F)
		case Eventually:
			walk(n.F)
		case AtLevel:
			walk(n.F)
		case Exists:
			for _, v := range n.Vars {
				bound[v]++
			}
			walk(n.F)
			for _, v := range n.Vars {
				bound[v]--
			}
		case Freeze:
			addTerm(n.Attr)
			bound[n.Var]++
			walk(n.F)
			bound[n.Var]--
		}
	}
	walk(f)
	return ob, at
}
