package htl

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Generative round-trip: random ASTs must survive String -> Parse intact.
// This pins the printer's parenthesization against the parser's precedence
// for shapes no hand-written test enumerates.

type astGen struct {
	rng     *rand.Rand
	objVars []string // currently bound object variables
	attVars []string // currently bound attribute variables
	fresh   int
}

func (g *astGen) pickObj() (Var, bool) {
	if len(g.objVars) == 0 {
		return Var{}, false
	}
	return Var{Name: g.objVars[g.rng.Intn(len(g.objVars))], Kind: ObjectVar}, true
}

func (g *astGen) atom() Formula {
	if v, ok := g.pickObj(); ok {
		switch g.rng.Intn(5) {
		case 0:
			return Present{X: v}
		case 1:
			return Cmp{Op: OpEq, L: AttrFn{Attr: "type", Of: v.Name}, R: StrLit{S: "man"}}
		case 2:
			return Cmp{Op: CmpOp(g.rng.Intn(6)), L: AttrFn{Attr: "height", Of: v.Name}, R: IntLit{V: int64(g.rng.Intn(9) - 3)}}
		case 3:
			return Pred{Name: "moving", Args: []Term{v}}
		default:
			if w, ok := g.pickObj(); ok {
				return Pred{Name: "near", Args: []Term{v, w}}
			}
			return Present{X: v}
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return Pred{Name: fmt.Sprintf("M%d", g.rng.Intn(3)+1)}
	case 1:
		return Cmp{Op: OpEq, L: AttrFn{Attr: "genre"}, R: StrLit{S: "western"}}
	case 2:
		return Cmp{Op: CmpOp(g.rng.Intn(6)), L: AttrFn{Attr: "brightness"}, R: IntLit{V: int64(g.rng.Intn(9))}}
	default:
		return True{}
	}
}

func (g *astGen) formula(depth int) Formula {
	if depth <= 0 {
		return g.atom()
	}
	switch g.rng.Intn(10) {
	case 0:
		return And{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 1:
		return Until{L: g.formula(depth - 1), R: g.formula(depth - 1)}
	case 2:
		return Next{F: g.formula(depth - 1)}
	case 3:
		return Eventually{F: g.formula(depth - 1)}
	case 4:
		return Not{F: g.formula(depth - 1)}
	case 5:
		g.fresh++
		name := fmt.Sprintf("v%d", g.fresh)
		g.objVars = append(g.objVars, name)
		f := Exists{Vars: []string{name}, F: g.formula(depth - 1)}
		g.objVars = g.objVars[:len(g.objVars)-1]
		return f
	case 6:
		g.fresh++
		name := fmt.Sprintf("a%d", g.fresh)
		attr := AttrFn{Attr: "brightness"}
		if v, ok := g.pickObj(); ok && g.rng.Intn(2) == 0 {
			attr = AttrFn{Attr: "height", Of: v.Name}
		}
		g.attVars = append(g.attVars, name)
		body := g.formula(depth - 1)
		// Reference the frozen variable half the time.
		if g.rng.Intn(2) == 0 {
			body = And{L: body, R: Cmp{Op: OpGe, L: AttrFn{Attr: "brightness"}, R: Var{Name: name, Kind: AttrVar}}}
		}
		g.attVars = g.attVars[:len(g.attVars)-1]
		return Freeze{Var: name, Attr: attr, F: body}
	case 7:
		switch g.rng.Intn(3) {
		case 0:
			return AtLevel{Level: LevelRef{NextLevel: true}, F: g.formula(depth - 1)}
		case 1:
			return AtLevel{Level: LevelRef{Num: g.rng.Intn(4) + 2}, F: g.formula(depth - 1)}
		default:
			return AtLevel{Level: LevelRef{Name: "shot"}, F: g.formula(depth - 1)}
		}
	default:
		return g.atom()
	}
}

func TestGenerativeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		g := &astGen{rng: rand.New(rand.NewSource(seed))}
		f := g.formula(4)
		text := f.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: printed %q failed to parse: %v", seed, text, err)
		}
		if !reflect.DeepEqual(f, back) {
			t.Fatalf("seed %d: round trip changed the formula\n text:  %s\n before: %#v\n after:  %#v",
				seed, text, f, back)
		}
	}
}
