package htl

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an HTL query and resolves variable binding. The result is a
// closed formula: every object variable is bound by `exists` and every
// attribute variable by a freeze operator; unbound identifiers compared with
// `=`/`<`/... are read as segment-level attributes (e.g. `genre = 'western'`).
func Parse(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, &SyntaxError{p.peek().pos, fmt.Sprintf("unexpected %s after formula", p.peek().kind)}
	}
	return bind(f, map[string]VarKind{})
}

// MustParse is Parse that panics on error; for statically known queries in
// tests and examples.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// maxParseDepth bounds formula nesting so hostile or malformed inputs
// produce a parse error instead of overflowing the goroutine stack; it also
// bounds the recursion of the later bind/print/classify passes, which walk
// the tree the parser built.
const maxParseDepth = 1024

type parser struct {
	toks  []token
	i     int
	depth int
}

// enter guards every recursive production; callers must pair it with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return &SyntaxError{p.peek().pos, fmt.Sprintf("formula nesting exceeds %d levels", maxParseDepth)}
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, &SyntaxError{t.pos, fmt.Sprintf("expected %s, found %s %q", k, t.kind, t.text)}
	}
	return t, nil
}

// reserved words that cannot name predicates, variables or attributes.
var reserved = map[string]bool{
	"and": true, "not": true, "next": true, "until": true,
	"eventually": true, "exists": true, "true": true, "present": true,
}

// formula parses at the loosest precedence: `until` (right-associative).
func (p *parser) formula() (Formula, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokIdent && p.peek().text == "until" {
		p.next()
		r, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Until{L: l, R: r}, nil
	}
	return l, nil
}

// andExpr parses a left-associative chain of `and`.
func (p *parser) andExpr() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

// unary parses prefix operators and primaries.
func (p *parser) unary() (Formula, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.peek()
	switch {
	case t.kind == tokIdent && t.text == "not":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case t.kind == tokIdent && t.text == "next":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Next{F: f}, nil
	case t.kind == tokIdent && t.text == "eventually":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Eventually{F: f}, nil
	case t.kind == tokIdent && t.text == "exists":
		p.next()
		return p.exists()
	case t.kind == tokLBracket:
		p.next()
		return p.freeze()
	case t.kind == tokIdent && isLevelKeyword(t.text):
		p.next()
		return p.atLevel(t)
	default:
		return p.primary()
	}
}

// exists parses `exists x, y . f`; the scope extends maximally right.
func (p *parser) exists() (Formula, error) {
	var vars []string
	for {
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if reserved[id.text] {
			return nil, &SyntaxError{id.pos, fmt.Sprintf("%q is reserved", id.text)}
		}
		vars = append(vars, id.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot); err != nil {
		return nil, err
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	return Exists{Vars: vars, F: f}, nil
}

// freeze parses `[y <- attr(x)] f` after the opening bracket; the scope is a
// prefix-level formula.
func (p *parser) freeze() (Formula, error) {
	v, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if reserved[v.text] {
		return nil, &SyntaxError{v.pos, fmt.Sprintf("%q is reserved", v.text)}
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	attr, err := p.attrRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	f, err := p.unary()
	if err != nil {
		return nil, err
	}
	return Freeze{Var: v.text, Attr: attr, F: f}, nil
}

// attrRef parses `attr` or `attr(x)`.
func (p *parser) attrRef() (AttrFn, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return AttrFn{}, err
	}
	if reserved[name.text] {
		return AttrFn{}, &SyntaxError{name.pos, fmt.Sprintf("%q is reserved", name.text)}
	}
	a := AttrFn{Attr: name.text}
	if p.peek().kind == tokLParen {
		p.next()
		of, err := p.expect(tokIdent)
		if err != nil {
			return AttrFn{}, err
		}
		a.Of = of.text
		if _, err := p.expect(tokRParen); err != nil {
			return AttrFn{}, err
		}
	}
	return a, nil
}

// isLevelKeyword reports whether ident is a level-modal keyword:
// at-next-level, at-level, or at-<name>-level.
func isLevelKeyword(s string) bool {
	return s == "at-level" || (strings.HasPrefix(s, "at-") && strings.HasSuffix(s, "-level") && len(s) > len("at--level"))
}

// atLevel parses the body of a level-modal operator whose keyword token kw
// has been consumed.
func (p *parser) atLevel(kw token) (Formula, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var ref LevelRef
	switch {
	case kw.text == "at-next-level":
		ref.NextLevel = true
	case kw.text == "at-level":
		num, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 1 {
			return nil, &SyntaxError{num.pos, fmt.Sprintf("invalid level number %q", num.text)}
		}
		ref.Num = n
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
	default:
		ref.Name = strings.TrimSuffix(strings.TrimPrefix(kw.text, "at-"), "-level")
	}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return AtLevel{Level: ref, F: f}, nil
}

// primary parses `true`, `present(x)`, a parenthesized formula, or an atomic
// predicate/comparison.
func (p *parser) primary() (Formula, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent && t.text == "true":
		p.next()
		return True{}, nil
	case t.kind == tokIdent && t.text == "present":
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		x, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return Present{X: Var{Name: x.text}}, nil
	case t.kind == tokIdent || t.kind == tokInt || t.kind == tokStr:
		return p.atom()
	default:
		return nil, &SyntaxError{t.pos, fmt.Sprintf("expected a formula, found %s %q", t.kind, t.text)}
	}
}

// atom parses `term [cmpop term]`. A lone identifier (with or without
// arguments) is a named predicate; a comparison yields a Cmp.
func (p *parser) atom() (Formula, error) {
	start := p.peek()
	l, args, err := p.termOrCall()
	if err != nil {
		return nil, err
	}
	if op, ok := p.cmpOp(); ok {
		lt, err := callToTerm(l, args, start)
		if err != nil {
			return nil, err
		}
		r, rargs, err := p.termOrCall()
		if err != nil {
			return nil, err
		}
		rt, err := callToTerm(r, rargs, start)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: op, L: lt, R: rt}, nil
	}
	// Not a comparison: must be a named predicate.
	v, isVar := l.(Var)
	if !isVar {
		return nil, &SyntaxError{start.pos, "expected a comparison after literal"}
	}
	if args == nil {
		return Pred{Name: v.Name}, nil
	}
	return Pred{Name: v.Name, Args: args}, nil
}

// termOrCall parses one term. For `ident(args...)` it returns the head
// identifier as a Var and the argument terms (non-nil, possibly empty);
// plain terms return args == nil.
func (p *parser) termOrCall() (Term, []Term, error) {
	if err := p.enter(); err != nil {
		return nil, nil, err
	}
	defer p.leave()
	t := p.next()
	switch t.kind {
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, nil, &SyntaxError{t.pos, "invalid integer literal"}
		}
		return IntLit{V: v}, nil, nil
	case tokStr:
		return StrLit{S: t.text}, nil, nil
	case tokIdent:
		if reserved[t.text] {
			return nil, nil, &SyntaxError{t.pos, fmt.Sprintf("%q is reserved", t.text)}
		}
		if p.peek().kind != tokLParen {
			return Var{Name: t.text}, nil, nil
		}
		p.next()
		args := []Term{}
		if p.peek().kind != tokRParen {
			for {
				a, sub, err := p.termOrCall()
				if err != nil {
					return nil, nil, err
				}
				at, err := callToTerm(a, sub, t)
				if err != nil {
					return nil, nil, err
				}
				args = append(args, at)
				if p.peek().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, nil, err
		}
		return Var{Name: t.text}, args, nil
	default:
		return nil, nil, &SyntaxError{t.pos, fmt.Sprintf("expected a term, found %s %q", t.kind, t.text)}
	}
}

// callToTerm converts a termOrCall result into a plain term: `ident(x)`
// becomes the attribute function ident applied to x.
func callToTerm(head Term, args []Term, at token) (Term, error) {
	if args == nil {
		return head, nil
	}
	h, ok := head.(Var)
	if !ok {
		return nil, &SyntaxError{at.pos, "literal cannot be applied to arguments"}
	}
	if len(args) != 1 {
		return nil, &SyntaxError{at.pos, fmt.Sprintf("attribute function %s takes one object variable, got %d arguments", h.Name, len(args))}
	}
	arg, ok := args[0].(Var)
	if !ok {
		return nil, &SyntaxError{at.pos, fmt.Sprintf("attribute function %s requires an object variable argument", h.Name)}
	}
	return AttrFn{Attr: h.Name, Of: arg.Name}, nil
}

// cmpOp consumes a comparison operator if present.
func (p *parser) cmpOp() (CmpOp, bool) {
	switch p.peek().kind {
	case tokEq:
		p.next()
		return OpEq, true
	case tokNe:
		p.next()
		return OpNe, true
	case tokLt:
		p.next()
		return OpLt, true
	case tokLe:
		p.next()
		return OpLe, true
	case tokGt:
		p.next()
		return OpGt, true
	case tokGe:
		p.next()
		return OpGe, true
	}
	return 0, false
}
