package obs

// Distributed-tracing primitives: globally unique trace ids, joining a
// propagated id, stitching remote span subtrees into a snapshot, the bounded
// trace ring with sampling, its /debug/traces handler, and the rendered span
// tree.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q: length %d, want 32 hex chars", id, len(id))
		}
		if strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("trace id %q is not lowercase hex", id)
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestTraceIDLazyAndJoinable(t *testing.T) {
	// Lazy allocation: an id materializes on first request and sticks.
	tr := NewTrace("q")
	id := tr.ID()
	if id == "" {
		t.Fatal("ID() allocated nothing")
	}
	if tr.ID() != id {
		t.Fatal("ID() not stable across calls")
	}

	// A propagated id replaces the local one: joining a distributed trace.
	joined := NewTrace("q")
	joined.SetID("deadbeef")
	if got := joined.ID(); got != "deadbeef" {
		t.Fatalf("after SetID: ID() = %q, want deadbeef", got)
	}
	joined.SetID("") // empty ids are ignored
	if got := joined.ID(); got != "deadbeef" {
		t.Fatalf("empty SetID overwrote the id: %q", got)
	}
	if snap := joined.Snapshot(); snap.ID != "deadbeef" {
		t.Fatalf("snapshot id = %q, want deadbeef", snap.ID)
	}

	var nilTrace *Trace
	nilTrace.SetID("x") // nil-safe
	if nilTrace.ID() != "" {
		t.Fatal("nil trace has an id")
	}
}

func TestAttachRemoteStitchesSubtrees(t *testing.T) {
	// A "shard" trace finished elsewhere...
	remote := NewTrace("shard query")
	rsp := remote.StartSpan("eval")
	rsp.SetTag("videos", "3")
	rsp.End()
	remote.Finish()

	// ...is stitched under the "coordinator" trace's attempt span.
	local := NewTrace("coordinator query")
	scatter := local.StartSpan("scatter")
	attempt := scatter.StartSpan("attempt")
	attempt.StartSpan("local child").End()
	attempt.AttachRemote(remote.Snapshot().Spans)
	attempt.End()
	scatter.End()
	local.Finish()

	snap := local.Snapshot()
	if len(snap.Spans) != 1 || len(snap.Spans[0].Children) != 1 {
		t.Fatalf("unexpected span shape: %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children[0].Children
	if len(kids) != 2 {
		t.Fatalf("attempt has %d children, want local + remote", len(kids))
	}
	// Local children come first, then the attached remote subtree.
	if kids[0].Name != "local child" || kids[1].Name != "eval" {
		t.Fatalf("children = %q, %q; want local child, eval", kids[0].Name, kids[1].Name)
	}
	if kids[1].Tags["videos"] != "3" {
		t.Fatalf("remote tags lost: %+v", kids[1].Tags)
	}

	var nilSpan *Span
	nilSpan.AttachRemote(remote.Snapshot().Spans) // nil-safe
}

func TestRenderSpanTree(t *testing.T) {
	tr := NewTrace("M1 until M2")
	tr.SetID("cafe0123")
	root := tr.StartSpan("scatter")
	sh := root.StartSpan("shard shard-0")
	sh.SetTag("outcome", "ok")
	sh.End()
	root.End()
	tr.StartSpan("merge").End()
	tr.Finish()

	var buf bytes.Buffer
	RenderSpanTree(&buf, tr.Snapshot())
	out := buf.String()
	for _, want := range []string{"trace cafe0123", "M1 until M2", "scatter", "shard shard-0", "outcome=ok", "merge", "└─", "├─"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree lacks %q:\n%s", want, out)
		}
	}
}

func finishedTrace(name string) *Trace {
	tr := NewTrace(name)
	tr.StartSpan("eval").End()
	tr.Finish()
	return tr
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	r := NewTraceRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := finishedTrace(fmt.Sprintf("q%d", i))
		ids = append(ids, tr.ID())
		r.ObserveTrace(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", r.Len())
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("List returned %d entries", len(list))
	}
	// Most recent first; the two oldest were evicted.
	for i, want := range []string{"q4", "q3", "q2"} {
		if list[i].Name != want {
			t.Errorf("List[%d].Name = %q, want %q", i, list[i].Name, want)
		}
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Error("evicted trace still retrievable")
	}
	if snap, ok := r.Get(ids[4]); !ok || snap.Name != "q4" {
		t.Errorf("Get(%s) = %+v, %v", ids[4], snap, ok)
	}
}

func TestTraceRingSampling(t *testing.T) {
	r := NewTraceRing(16)
	r.SetSampleEvery(3)
	for i := 0; i < 9; i++ {
		r.ObserveTrace(finishedTrace(fmt.Sprintf("q%d", i)))
	}
	if r.Len() != 3 {
		t.Fatalf("with 1-in-3 sampling, 9 observes kept %d, want 3", r.Len())
	}

	var nilRing *TraceRing
	nilRing.ObserveTrace(finishedTrace("x")) // nil-safe
	if nilRing.Len() != 0 || len(nilRing.List()) != 0 {
		t.Fatal("nil ring not empty")
	}
}

func TestTraceRingHandler(t *testing.T) {
	r := NewTraceRing(8)
	tr := finishedTrace("M1")
	r.ObserveTrace(tr)
	h := r.Handler()

	// Listing.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("list status %d", rec.Code)
	}
	var list []TraceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != tr.ID() {
		t.Fatalf("list = %+v, want the one trace", list)
	}

	// Fetch by id returns the full span tree.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/traces?id="+tr.ID(), nil))
	if rec.Code != 200 {
		t.Fatalf("get status %d", rec.Code)
	}
	var snap TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != tr.ID() || len(snap.Spans) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Unknown id is a JSON 404.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/debug/traces?id=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing-id status %d, want 404", rec.Code)
	}

	// A nil ring's handler answers empty rather than panicking.
	var nilRing *TraceRing
	rec = httptest.NewRecorder()
	nilRing.Handler()(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil ring status %d", rec.Code)
	}
}

func TestTraceRingObserveIsCheap(t *testing.T) {
	// The ring stores pointers and snapshots lazily: observing even a large
	// finished trace must not walk its spans. Guard the property by timing a
	// burst — generous bound, this is an order-of-magnitude check, not a
	// benchmark.
	tr := NewTrace("big")
	for i := 0; i < 1000; i++ {
		tr.StartSpan("s").End()
	}
	tr.Finish()
	r := NewTraceRing(4)
	start := time.Now()
	for i := 0; i < 10000; i++ {
		r.ObserveTrace(tr)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("10k observes of a 1000-span trace took %v; observe must not snapshot", el)
	}
}
