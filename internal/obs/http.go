package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability endpoints over reg and slow:
//
//	/metrics        expvar-style JSON: every counter, gauge and histogram,
//	                plus the stats() value under "stats" when non-nil.
//	                Content-negotiates the Prometheus text format (0.0.4)
//	                via Accept or ?format=prometheus (see WantsPrometheus).
//	/debug/slowlog  the retained slowest queries with their full traces
//	/debug/traces   the trace ring: recent traces (most recent first), or one
//	                full span tree with ?id=<trace-id>
//	/debug/pprof/   the standard runtime profiles
//
// Any argument may be nil; its endpoint then serves an empty document. The
// handler is read-only and safe to serve while queries run.
func Handler(reg *Registry, slow *SlowLog, ring *TraceRing, stats func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if WantsPrometheus(r) {
			PrometheusHandler(w, reg)
			return
		}
		doc := struct {
			Metrics RegistrySnapshot `json:"metrics"`
			Stats   any              `json:"stats,omitempty"`
		}{Metrics: reg.Snapshot()}
		if stats != nil {
			doc.Stats = stats()
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		entries := slow.Snapshot()
		if entries == nil {
			entries = []SlowEntry{}
		}
		writeJSON(w, entries)
	})
	mux.HandleFunc("/debug/traces", ring.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
