package obs

// Metric-conventions lint: a checker over the Prometheus exposition that
// enforces the naming rules this repo (and the Prometheus ecosystem) relies
// on — counters end in _total, histograms are seconds-based with cumulative
// le buckets terminated by +Inf — so a new metric that would scrape wrong
// fails `make check` instead of a production dashboard.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text exposition against the repo's
// metric conventions and returns one message per violation (empty when
// clean):
//
//   - metric names use only [a-zA-Z0-9_:] and do not start with a digit
//   - counters end in _total
//   - gauges do not end in _total (a gauge named like a counter misleads
//     rate() users)
//   - histograms end in _seconds, expose _bucket/_sum/_count series, carry
//     cumulative non-decreasing le buckets with increasing bounds, terminate
//     with le="+Inf", and agree with _count
func LintExposition(text string) []string {
	var problems []string
	types := map[string]string{}           // metric family -> declared type
	buckets := map[string][]bucketSample{} // histogram family -> le buckets
	counts := map[string]float64{}         // histogram family -> _count value
	hasSum := map[string]bool{}            // histogram family -> _sum seen

	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("malformed TYPE line: %q", line))
				continue
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		if !validMetricName(name) {
			problems = append(problems, fmt.Sprintf("invalid metric name %q", name))
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			family := strings.TrimSuffix(name, "_bucket")
			le, ok := labels["le"]
			if !ok {
				problems = append(problems, fmt.Sprintf("%s: bucket sample without le label", name))
				continue
			}
			buckets[family] = append(buckets[family], bucketSample{le: le, count: value})
		case strings.HasSuffix(name, "_sum"):
			hasSum[strings.TrimSuffix(name, "_sum")] = true
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")] = value
		}
	}

	families := make([]string, 0, len(types))
	for f := range types {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, family := range families {
		switch types[family] {
		case "counter":
			if !strings.HasSuffix(family, "_total") {
				problems = append(problems, fmt.Sprintf("counter %s does not end in _total", family))
			}
		case "gauge":
			if strings.HasSuffix(family, "_total") {
				problems = append(problems, fmt.Sprintf("gauge %s ends in _total (counter-style name on a gauge)", family))
			}
		case "histogram":
			problems = append(problems, lintHistogram(family, buckets[family], counts, hasSum)...)
		}
	}
	return problems
}

type bucketSample struct {
	le    string
	count float64
}

// lintHistogram checks one histogram family's unit suffix, series set, and
// bucket shape.
func lintHistogram(family string, bs []bucketSample, counts map[string]float64, hasSum map[string]bool) []string {
	var problems []string
	if !strings.HasSuffix(family, "_seconds") {
		problems = append(problems, fmt.Sprintf("histogram %s does not end in _seconds", family))
	}
	if len(bs) == 0 {
		problems = append(problems, fmt.Sprintf("histogram %s has no _bucket series", family))
		return problems
	}
	if !hasSum[family] {
		problems = append(problems, fmt.Sprintf("histogram %s has no _sum series", family))
	}
	last := bs[len(bs)-1]
	if last.le != "+Inf" {
		problems = append(problems, fmt.Sprintf("histogram %s does not terminate with an le=\"+Inf\" bucket", family))
	} else if total, ok := counts[family]; !ok {
		problems = append(problems, fmt.Sprintf("histogram %s has no _count series", family))
	} else if total != last.count {
		problems = append(problems, fmt.Sprintf("histogram %s: _count %v disagrees with +Inf bucket %v", family, total, last.count))
	}
	prevBound := -1.0
	prevCount := -1.0
	for i, b := range bs {
		if b.le != "+Inf" {
			bound, err := strconv.ParseFloat(b.le, 64)
			if err != nil {
				problems = append(problems, fmt.Sprintf("histogram %s: unparseable le %q", family, b.le))
				continue
			}
			if bound <= prevBound {
				problems = append(problems, fmt.Sprintf("histogram %s: bucket bounds not increasing at le=%q", family, b.le))
			}
			prevBound = bound
		} else if i != len(bs)-1 {
			problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket is not last", family))
		}
		if b.count < prevCount {
			problems = append(problems, fmt.Sprintf("histogram %s: bucket counts not cumulative at le=%q", family, b.le))
		}
		prevCount = b.count
	}
	return problems
}

// parseSample splits one exposition sample line into name, labels, value.
func parseSample(line string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line: %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("%s: unterminated label block", name)
		}
		for _, pair := range strings.Split(rest[1:end], ",") {
			if pair == "" {
				continue
			}
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("%s: malformed label %q", name, pair)
			}
			labels[strings.TrimSpace(pair[:eq])] = strings.Trim(strings.TrimSpace(pair[eq+1:]), `"`)
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("%s: unparseable value %q", name, valStr)
	}
	return name, labels, val, nil
}

// validMetricName reports whether name fits [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
