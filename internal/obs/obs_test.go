package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram ---------------------------------------------------------------

// TestHistogramBucketBoundaries pins the bucket semantics: an observation
// exactly on a boundary lands in the bucket it bounds (`le` semantics), one
// nanosecond above it lands in the next, and observations beyond the largest
// bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := NewHistogram(bounds)
	h.Observe(time.Millisecond)      // boundary: bucket 0
	h.Observe(time.Millisecond + 1)  // just above: bucket 1
	h.Observe(10 * time.Millisecond) // boundary: bucket 1
	h.Observe(50 * time.Millisecond) // interior: bucket 2
	h.Observe(time.Second)           // beyond all bounds: overflow
	h.Observe(-time.Second)          // negative clamps to zero: bucket 0
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("Count = %d, want 6", snap.Count)
	}
	wantCounts := []int64{2, 2, 1, 1}
	if len(snap.Buckets) != len(wantCounts) {
		t.Fatalf("buckets = %d, want %d", len(snap.Buckets), len(wantCounts))
	}
	for i, want := range wantCounts {
		if snap.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, snap.Buckets[i].Count, want)
		}
	}
	if snap.Buckets[3].UpperBound != 0 {
		t.Errorf("overflow bucket bound = %v, want 0 (+Inf)", snap.Buckets[3].UpperBound)
	}
	wantSum := time.Millisecond + (time.Millisecond + 1) + 10*time.Millisecond +
		50*time.Millisecond + time.Second
	if snap.Sum != wantSum {
		t.Errorf("Sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	snap := h.Snapshot()
	if q := snap.Quantile(0.5); q != time.Millisecond {
		t.Errorf("p50 = %v, want %v", q, time.Millisecond)
	}
	if q := snap.Quantile(0.99); q != 100*time.Millisecond {
		t.Errorf("p99 = %v, want %v", q, 100*time.Millisecond)
	}
	// Observations beyond every bound report the largest finite bound.
	h2 := NewHistogram([]time.Duration{time.Millisecond})
	h2.Observe(time.Second)
	if q := h2.Snapshot().Quantile(0.5); q != time.Millisecond {
		t.Errorf("overflow quantile = %v, want %v", q, time.Millisecond)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; the
// counts must be exact (meaningful under -race).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != workers*per {
		t.Fatalf("Count = %d, want %d", got, workers*per)
	}
}

// --- counters and gauges -----------------------------------------------------

// TestCounterConcurrent proves increments are lost-update-free under -race.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	const workers, per = 32, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}

// TestNilSafety: every primitive accepts its full method set on a nil
// receiver, so instrumented code never branches on "is observability on".
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Inc()
	g.Dec()
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram counted")
	}
	var m *EngineMetrics
	m.AtomicEval()
	m.Merge()
	if m.Snapshot() != (EngineSnapshot{}) {
		t.Error("nil engine metrics counted")
	}
	var tr *Trace
	tr.SetTag("k", "v")
	sp := tr.StartSpan("x")
	sp.SetTag("k", "v")
	sp2 := sp.StartSpan("y")
	sp2.End()
	sp.End()
	tr.Finish()
	_ = tr.Snapshot()
	var reg *Registry
	reg.Counter("a").Inc()
	reg.Gauge("b").Set(1)
	reg.Histogram("c", nil).Observe(time.Second)
	_ = reg.Snapshot()
	var sl *SlowLog
	sl.ObserveTrace(NewTrace("q"))
	sl.SetLogger(nil, 0)
	if sl.Snapshot() != nil {
		t.Error("nil slowlog has entries")
	}
}

// --- registry ----------------------------------------------------------------

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(5)
	if r.Counter("a").Value() != 5 {
		t.Fatal("Counter is not get-or-create")
	}
	r.Gauge("b").Set(-2)
	r.Histogram("c", nil).Observe(time.Millisecond)
	snap := r.Snapshot()
	if snap.Counters["a"] != 5 || snap.Gauges["b"] != -2 || snap.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// --- tracer ------------------------------------------------------------------

// TestSpanNestingAndOrdering builds a two-stage trace with nested children
// and checks the snapshot preserves structure, order, and monotonic offsets.
func TestSpanNestingAndOrdering(t *testing.T) {
	tr := NewTrace("q")
	tr.SetTag("engine", "core")
	a := tr.StartSpan("parse")
	a.End()
	b := tr.StartSpan("eval")
	c1 := b.StartSpan("video")
	c1.SetTag("video", "1")
	g1 := c1.StartSpan("system")
	g1.End()
	c1.End()
	c2 := b.StartSpan("video")
	c2.End()
	b.End()
	total := tr.Finish()

	snap := tr.Snapshot()
	if snap.Name != "q" || snap.Tags["engine"] != "core" {
		t.Fatalf("snapshot header = %+v", snap)
	}
	if snap.Duration != total {
		t.Fatalf("Duration = %v, want %v", snap.Duration, total)
	}
	if len(snap.Spans) != 2 || snap.Spans[0].Name != "parse" || snap.Spans[1].Name != "eval" {
		t.Fatalf("stages = %+v", snap.Spans)
	}
	eval := snap.Spans[1]
	if len(eval.Children) != 2 || eval.Children[0].Tags["video"] != "1" {
		t.Fatalf("children = %+v", eval.Children)
	}
	if len(eval.Children[0].Children) != 1 || eval.Children[0].Children[0].Name != "system" {
		t.Fatalf("grandchildren = %+v", eval.Children[0].Children)
	}
	// Offsets are monotonic in start order; children start within parents.
	if snap.Spans[0].Offset > snap.Spans[1].Offset {
		t.Error("stage offsets out of order")
	}
	if eval.Children[0].Offset < eval.Offset {
		t.Error("child starts before its parent")
	}
	// Sequential stage durations fit within the trace's wall time.
	if sum := snap.Spans[0].Duration + snap.Spans[1].Duration; sum > total {
		t.Errorf("stage durations %v exceed total %v", sum, total)
	}
}

// TestTraceConcurrentSpans starts/ends spans from many goroutines (the
// per-video eval pattern); meaningful under -race.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("q")
	stage := tr.StartSpan("eval")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := stage.StartSpan("video")
			sp.SetTag("video", fmt.Sprint(i))
			sp.StartSpan("system").End()
			sp.End()
		}(i)
	}
	wg.Wait()
	stage.End()
	tr.Finish()
	if got := len(tr.Snapshot().Spans[0].Children); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
}

// --- slow log ----------------------------------------------------------------

// doneTrace fabricates a finished trace with a fixed duration (in-package
// tests may set the unexported fields directly; production traces get their
// duration from the monotonic clock).
func doneTrace(name string, d time.Duration) *Trace {
	return &Trace{name: name, begin: time.Now(), tags: map[string]string{}, done: true, total: d}
}

// TestSlowLogKeepsSlowest feeds 50 queries into a 10-entry log and checks it
// retains exactly the 10 slowest, ordered slowest-first.
func TestSlowLogKeepsSlowest(t *testing.T) {
	l := NewSlowLog(10)
	for i := 1; i <= 50; i++ {
		l.ObserveTrace(doneTrace(fmt.Sprintf("q%d", i), time.Duration(i)*time.Millisecond))
	}
	got := l.Snapshot()
	if len(got) != 10 {
		t.Fatalf("entries = %d, want 10", len(got))
	}
	for i, e := range got {
		want := time.Duration(50-i) * time.Millisecond
		if e.Duration != want {
			t.Errorf("entry %d duration = %v, want %v", i, e.Duration, want)
		}
	}
	l.Reset()
	if len(l.Snapshot()) != 0 {
		t.Error("Reset left entries behind")
	}
}

// TestSlowLogLogger: the pluggable Logger fires only at or above threshold.
func TestSlowLogLogger(t *testing.T) {
	l := NewSlowLog(4)
	var mu sync.Mutex
	var lines []string
	l.SetLogger(LoggerFunc(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}), 10*time.Millisecond)
	l.ObserveTrace(doneTrace("fast", time.Millisecond))
	l.ObserveTrace(doneTrace("slow", 20*time.Millisecond))
	if len(lines) != 1 || !strings.Contains(lines[0], "slow") {
		t.Fatalf("logged lines = %q, want one line naming the slow query", lines)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.ObserveTrace(doneTrace("q", time.Duration(i*100+j)*time.Microsecond))
			}
		}(i)
	}
	wg.Wait()
	if got := len(l.Snapshot()); got != 8 {
		t.Fatalf("entries = %d, want 8", got)
	}
}
