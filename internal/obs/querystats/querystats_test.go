package querystats

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func obsN(s *Stats, key string, n int, d time.Duration, errClass string) {
	for i := 0; i < n; i++ {
		s.Observe(&Record{PlanKey: key, Class: "type1", Engine: "direct"}, d, errClass)
	}
}

// TestAggregation checks one entry's full aggregate: calls, errors by class,
// latency summary, cache/memo/video counts, first/last seen.
func TestAggregation(t *testing.T) {
	s := New(8)
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	s.SetClock(func() time.Time { return now })

	s.Observe(&Record{PlanKey: "K", Class: "type1", Engine: "direct", CacheHit: true,
		MemoHits: 3, VideosEvaluated: 5, VideosSkipped: 2}, 10*time.Millisecond, "")
	now = now.Add(time.Minute)
	s.Observe(&Record{PlanKey: "K"}, 30*time.Millisecond, "transient")
	s.ObserveTopK("K", 7)

	snap := s.Snapshot()
	if len(snap.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(snap.Entries))
	}
	e := snap.Entries[0]
	if e.Calls != 2 || e.Class != "type1" || e.Engine != "direct" {
		t.Fatalf("entry = %+v", e)
	}
	if e.Errors["transient"] != 1 || e.ErrorCount() != 1 {
		t.Fatalf("errors = %v", e.Errors)
	}
	if e.CacheHits != 1 || e.MemoHits != 3 || e.VideosEvaluated != 5 || e.VideosSkipped != 2 || e.TopKSkipped != 7 {
		t.Fatalf("counts = %+v", e)
	}
	if e.TotalSeconds < 0.039 || e.TotalSeconds > 0.041 {
		t.Fatalf("total = %v, want ~0.04", e.TotalSeconds)
	}
	if e.MeanSeconds < 0.019 || e.MeanSeconds > 0.021 {
		t.Fatalf("mean = %v, want ~0.02", e.MeanSeconds)
	}
	if e.P95Seconds <= 0 {
		t.Fatalf("p95 = %v, want > 0", e.P95Seconds)
	}
	if !e.LastSeen.After(e.FirstSeen) {
		t.Fatalf("first/last seen: %v .. %v", e.FirstSeen, e.LastSeen)
	}
	if got := e.CacheHitRatio(); got != 0.5 {
		t.Fatalf("cache hit ratio = %v, want 0.5", got)
	}
	if snap.Totals.Calls != 2 || snap.Totals.Errors != 1 || snap.Totals.TopKSkipped != 7 {
		t.Fatalf("totals = %+v", snap.Totals)
	}

	// Nil-safety and no-ops.
	var nilS *Stats
	nilS.Observe(&Record{PlanKey: "K"}, time.Second, "")
	nilS.ObserveTopK("K", 1)
	_ = nilS.Snapshot()
	s.Observe(nil, time.Second, "")
	s.Observe(&Record{}, time.Second, "x") // empty plan key: untracked
	if got := s.Snapshot().Totals.Calls; got != 2 {
		t.Fatalf("untracked records changed totals: %d", got)
	}
}

// TestEvictionKeepsTotalsMonotonic is the LRU-eviction invariant: evicting
// entries never decrements the Totals block, so totals.calls always bounds
// the per-entry sum and the gap is the evicted share.
func TestEvictionKeepsTotalsMonotonic(t *testing.T) {
	s := New(4)
	for i := 0; i < 20; i++ {
		obsN(s, fmt.Sprintf("plan-%d", i), i+1, time.Millisecond, "")
	}
	snap := s.Snapshot()
	if len(snap.Entries) != 4 {
		t.Fatalf("entries = %d, want capacity 4", len(snap.Entries))
	}
	if snap.Evicted != 16 {
		t.Fatalf("evicted = %d, want 16", snap.Evicted)
	}
	var sum uint64
	for _, e := range snap.Entries {
		sum += e.Calls
	}
	wantTotal := uint64(20 * 21 / 2)
	if snap.Totals.Calls != wantTotal {
		t.Fatalf("totals.calls = %d, want %d", snap.Totals.Calls, wantTotal)
	}
	if snap.Totals.Calls < sum {
		t.Fatalf("totals.calls %d < entry sum %d — eviction lost history", snap.Totals.Calls, sum)
	}
	// The LRU keeps the most recently observed keys: plan-16..plan-19.
	for _, e := range snap.Entries {
		if e.PlanKey < "plan-16" {
			t.Fatalf("unexpected survivor %q", e.PlanKey)
		}
	}

	// Shrinking capacity evicts more but totals stand.
	s.SetCapacity(2)
	snap = s.Snapshot()
	if len(snap.Entries) != 2 || snap.Totals.Calls != wantTotal {
		t.Fatalf("after shrink: entries=%d totals=%d", len(snap.Entries), snap.Totals.Calls)
	}

	// ObserveTopK on an evicted key still accumulates in totals.
	s.ObserveTopK("plan-0", 5)
	if got := s.Snapshot().Totals.TopKSkipped; got != 5 {
		t.Fatalf("topk on evicted key: totals = %d, want 5", got)
	}
}

// TestSortAndServe checks SortEntries orderings and the HTTP surface's
// ?sort=/?limit= handling.
func TestSortAndServe(t *testing.T) {
	s := New(8)
	obsN(s, "hot", 10, time.Millisecond, "")
	obsN(s, "slow", 2, 500*time.Millisecond, "")
	obsN(s, "slowest-mean", 1, 900*time.Millisecond, "")

	snap := s.Snapshot()
	if snap.SortedBy != "calls" || snap.Entries[0].PlanKey != "hot" {
		t.Fatalf("default sort: %s, first=%s", snap.SortedBy, snap.Entries[0].PlanKey)
	}
	SortEntries(snap.Entries, "total")
	if snap.Entries[0].PlanKey != "slow" {
		t.Fatalf("total sort: first=%s", snap.Entries[0].PlanKey)
	}
	SortEntries(snap.Entries, "mean")
	if snap.Entries[0].PlanKey != "slowest-mean" {
		t.Fatalf("mean sort: first=%s", snap.Entries[0].PlanKey)
	}

	rec := httptest.NewRecorder()
	ServeSnapshot(rec, httptest.NewRequest("GET", "/debug/queries?sort=total&limit=1", nil), s.Snapshot())
	var out Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.SortedBy != "total" || len(out.Entries) != 1 || out.Entries[0].PlanKey != "slow" {
		t.Fatalf("served: sorted_by=%s entries=%d", out.SortedBy, len(out.Entries))
	}
}

// TestMerge checks the coordinator-side merge: counts sum, histograms merge
// bucketwise so quantiles are exact over the union, first/last seen take the
// min/max, and mismatched bucket layouts degrade to count/sum.
func TestMerge(t *testing.T) {
	a, b := New(8), New(8)
	t0 := time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC)
	ta, tb := t0, t0.Add(time.Hour)
	a.SetClock(func() time.Time { return ta })
	b.SetClock(func() time.Time { return tb })

	obsN(a, "shared", 3, 10*time.Millisecond, "")
	obsN(b, "shared", 5, 10*time.Millisecond, "transient")
	obsN(a, "only-a", 2, time.Millisecond, "")
	a.ObserveTopK("shared", 4)
	b.ObserveTopK("shared", 6)

	m := Merge(a.Snapshot(), b.Snapshot())
	if m.Totals.Calls != 10 || m.Totals.Errors != 5 || m.Totals.TopKSkipped != 10 {
		t.Fatalf("merged totals = %+v", m.Totals)
	}
	byKey := map[string]EntrySnapshot{}
	for _, e := range m.Entries {
		byKey[e.PlanKey] = e
	}
	sh := byKey["shared"]
	if sh.Calls != 8 || sh.Errors["transient"] != 5 || sh.TopKSkipped != 10 {
		t.Fatalf("shared = %+v", sh)
	}
	if sh.Latency.Count != 8 || len(sh.Latency.Buckets) == 0 {
		t.Fatalf("merged histogram: count=%d buckets=%d", sh.Latency.Count, len(sh.Latency.Buckets))
	}
	if sh.P50Seconds <= 0 {
		t.Fatalf("merged p50 = %v, want > 0", sh.P50Seconds)
	}
	if !sh.FirstSeen.Equal(t0) || !sh.LastSeen.Equal(tb) {
		t.Fatalf("first/last = %v .. %v, want %v .. %v", sh.FirstSeen, sh.LastSeen, t0, tb)
	}
	if byKey["only-a"].Calls != 2 {
		t.Fatalf("only-a = %+v", byKey["only-a"])
	}

	// Mismatched bucket layouts: counts still sum, buckets drop.
	sa, sb := a.Snapshot(), b.Snapshot()
	sb.Entries[0].Latency.Buckets = sb.Entries[0].Latency.Buckets[:3]
	m = Merge(sa, sb)
	for _, e := range m.Entries {
		if e.PlanKey == "shared" {
			if e.Latency.Count != 8 || e.Latency.Buckets != nil {
				t.Fatalf("degraded merge: count=%d buckets=%v", e.Latency.Count, e.Latency.Buckets)
			}
		}
	}
}

// TestConcurrentObserve hammers Observe/ObserveTopK/Snapshot/SetCapacity from
// many goroutines — the -race proof, plus the totals invariant at the end.
func TestConcurrentObserve(t *testing.T) {
	s := New(8)
	const (
		workers = 8
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := fmt.Sprintf("plan-%d", (w*perW+i)%32)
				s.Observe(&Record{PlanKey: key, Class: "type1"}, time.Millisecond, "")
				s.ObserveTopK(key, 1)
				if i%50 == 0 {
					_ = s.Snapshot()
				}
				if i%101 == 0 {
					s.SetCapacity(4 + i%8)
				}
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Totals.Calls != workers*perW {
		t.Fatalf("totals.calls = %d, want %d", snap.Totals.Calls, workers*perW)
	}
	var sum uint64
	for _, e := range snap.Entries {
		sum += e.Calls
	}
	if snap.Totals.Calls < sum {
		t.Fatalf("totals %d < entry sum %d", snap.Totals.Calls, sum)
	}
}
