// Package querystats keeps pg_stat_statements-style workload aggregates: a
// bounded LRU of per-plan-key statistics (calls, errors by class, a latency
// histogram with p50/p95/p99, cache and memo hit counts, videos evaluated and
// skipped, top-k entries skipped, first/last seen), fed from the same
// per-query settle hook that feeds the slow log.
//
// The plan key — the formula's canonical text, the identity the plan cache,
// explain output and the cost model already share — is the paper's natural
// unit of cost: §3 classifies *formula shapes*, not individual queries, so
// shape-level aggregation is what tells an operator which query classes
// dominate the workload.
//
// Eviction never loses history silently: the Totals block is monotonic (it
// accumulates at observation time and is never decremented when an entry is
// evicted), so `totals.calls >= sum(entries[].calls)` always holds and the
// gap is exactly the evicted share.
//
// Everything is safe for concurrent use and nil-safe, like the rest of
// internal/obs.
package querystats

import (
	"container/list"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"htlvideo/internal/obs"
)

// DefaultCapacity is the per-plan-key LRU size used when SetCapacity was
// never called.
const DefaultCapacity = 256

// Record carries the per-query facts the store's query path fills in as the
// query runs; Observe folds one into the aggregates at settle time.
type Record struct {
	// PlanKey is the compiled plan's canonical formula text. Records with an
	// empty key (parse failures — nothing was ever compiled) are not tracked.
	PlanKey string
	// Class and Engine label the entry with the last-seen formula class and
	// requested engine.
	Class  string
	Engine string
	// CacheHit marks a query answered from the whole-result cache.
	CacheHit bool
	// MemoHits counts plan-node evaluations answered from the per-video memo.
	MemoHits int64
	// VideosEvaluated and VideosSkipped count this query's per-video work.
	VideosEvaluated int64
	VideosSkipped   int64
}

// Totals is the monotonic all-time accumulator: eviction of individual
// entries never decrements it.
type Totals struct {
	Calls       uint64 `json:"calls"`
	Errors      uint64 `json:"errors"`
	TopKSkipped uint64 `json:"topk_skipped"`
}

// entry is one plan key's live aggregate.
type entry struct {
	planKey         string
	class, engine   string
	calls           uint64
	errors          map[string]uint64
	lat             *obs.Histogram
	cacheHits       uint64
	memoHits        uint64
	videosEvaluated uint64
	videosSkipped   uint64
	topkSkipped     uint64
	firstSeen       time.Time
	lastSeen        time.Time
	elem            *list.Element
}

// Stats is the bounded per-plan-key aggregate set.
type Stats struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recently observed
	totals  Totals
	evicted uint64
	now     func() time.Time
}

// New returns an empty Stats bounded to capacity entries (DefaultCapacity
// when capacity < 1).
func New(capacity int) *Stats {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Stats{
		cap:     capacity,
		entries: map[string]*entry{},
		lru:     list.New(),
		now:     time.Now,
	}
}

// SetClock injects a clock for tests (nil restores time.Now).
func (s *Stats) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if now == nil {
		now = time.Now
	}
	s.now = now
	s.mu.Unlock()
}

// SetCapacity rebounds the LRU, evicting oldest entries if the new capacity
// is smaller (capacity < 1 selects DefaultCapacity). Totals are unaffected.
func (s *Stats) SetCapacity(capacity int) {
	if s == nil {
		return
	}
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	s.mu.Lock()
	s.cap = capacity
	s.evictLocked()
	s.mu.Unlock()
}

// Observe folds one settled query into the aggregates. errClass is the
// query's error classification ("" on success). Nil receivers, nil records
// and records without a plan key are no-ops.
func (s *Stats) Observe(rec *Record, d time.Duration, errClass string) {
	if s == nil || rec == nil || rec.PlanKey == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	e := s.entries[rec.PlanKey]
	if e == nil {
		e = &entry{
			planKey:   rec.PlanKey,
			errors:    map[string]uint64{},
			lat:       obs.NewHistogram(nil),
			firstSeen: now,
		}
		e.elem = s.lru.PushFront(e)
		s.entries[rec.PlanKey] = e
		s.evictLocked()
	} else {
		s.lru.MoveToFront(e.elem)
	}
	e.lastSeen = now
	if rec.Class != "" {
		e.class = rec.Class
	}
	if rec.Engine != "" {
		e.engine = rec.Engine
	}
	e.calls++
	e.lat.Observe(d)
	if errClass != "" {
		e.errors[errClass]++
		s.totals.Errors++
	}
	if rec.CacheHit {
		e.cacheHits++
	}
	e.memoHits += uint64(rec.MemoHits)
	e.videosEvaluated += uint64(rec.VideosEvaluated)
	e.videosSkipped += uint64(rec.VideosSkipped)
	s.totals.Calls++
}

// ObserveTopK attributes entries skipped by a pruned top-k scan to the plan
// key that produced the results. The totals accumulate even when the entry
// has been evicted in the meantime.
func (s *Stats) ObserveTopK(planKey string, skipped int64) {
	if s == nil || planKey == "" || skipped <= 0 {
		return
	}
	s.mu.Lock()
	if e := s.entries[planKey]; e != nil {
		e.topkSkipped += uint64(skipped)
	}
	s.totals.TopKSkipped += uint64(skipped)
	s.mu.Unlock()
}

// evictLocked drops least-recently-observed entries beyond capacity.
func (s *Stats) evictLocked() {
	for len(s.entries) > s.cap {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.planKey)
		s.evicted++
	}
}

// EntrySnapshot is one plan key's JSON-ready aggregate. The latency summary
// fields (total/mean/p50/p95/p99, in seconds) are derived from Latency, which
// is carried in full so a coordinator can merge per-shard snapshots
// bucketwise and re-derive exact quantiles.
type EntrySnapshot struct {
	PlanKey         string                `json:"plan_key"`
	Class           string                `json:"class,omitempty"`
	Engine          string                `json:"engine,omitempty"`
	Calls           uint64                `json:"calls"`
	Errors          map[string]uint64     `json:"errors,omitempty"`
	TotalSeconds    float64               `json:"total_seconds"`
	MeanSeconds     float64               `json:"mean_seconds"`
	P50Seconds      float64               `json:"p50_seconds"`
	P95Seconds      float64               `json:"p95_seconds"`
	P99Seconds      float64               `json:"p99_seconds"`
	CacheHits       uint64                `json:"cache_hits,omitempty"`
	MemoHits        uint64                `json:"memo_hits,omitempty"`
	VideosEvaluated uint64                `json:"videos_evaluated,omitempty"`
	VideosSkipped   uint64                `json:"videos_skipped,omitempty"`
	TopKSkipped     uint64                `json:"topk_skipped,omitempty"`
	FirstSeen       time.Time             `json:"first_seen"`
	LastSeen        time.Time             `json:"last_seen"`
	Latency         obs.HistogramSnapshot `json:"latency"`
}

// CacheHitRatio returns cache hits over calls (0 when no calls).
func (e EntrySnapshot) CacheHitRatio() float64 {
	if e.Calls == 0 {
		return 0
	}
	return float64(e.CacheHits) / float64(e.Calls)
}

// ErrorCount sums the per-class error counts.
func (e EntrySnapshot) ErrorCount() uint64 {
	var n uint64
	for _, v := range e.Errors {
		n += v
	}
	return n
}

// Snapshot is the JSON document behind GET /debug/queries.
type Snapshot struct {
	Capacity int             `json:"capacity"`
	Evicted  uint64          `json:"evicted"`
	Totals   Totals          `json:"totals"`
	SortedBy string          `json:"sorted_by,omitempty"`
	Entries  []EntrySnapshot `json:"entries"`
}

// Snapshot copies every entry, sorted by descending call count.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{Entries: []EntrySnapshot{}}
	}
	s.mu.Lock()
	out := Snapshot{
		Capacity: s.cap,
		Evicted:  s.evicted,
		Totals:   s.totals,
		Entries:  make([]EntrySnapshot, 0, len(s.entries)),
	}
	for _, e := range s.entries {
		es := EntrySnapshot{
			PlanKey:         e.planKey,
			Class:           e.class,
			Engine:          e.engine,
			Calls:           e.calls,
			Errors:          copyCounts(e.errors),
			CacheHits:       e.cacheHits,
			MemoHits:        e.memoHits,
			VideosEvaluated: e.videosEvaluated,
			VideosSkipped:   e.videosSkipped,
			TopKSkipped:     e.topkSkipped,
			FirstSeen:       e.firstSeen,
			LastSeen:        e.lastSeen,
			Latency:         e.lat.Snapshot(),
		}
		es.derive()
		out.Entries = append(out.Entries, es)
	}
	s.mu.Unlock()
	SortEntries(out.Entries, "calls")
	out.SortedBy = "calls"
	return out
}

// derive fills the latency summary fields from the carried histogram.
func (e *EntrySnapshot) derive() {
	e.TotalSeconds = e.Latency.Sum.Seconds()
	e.MeanSeconds = e.Latency.Mean().Seconds()
	e.P50Seconds = e.Latency.Quantile(0.50).Seconds()
	e.P95Seconds = e.Latency.Quantile(0.95).Seconds()
	e.P99Seconds = e.Latency.Quantile(0.99).Seconds()
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// SortEntries orders entries by the named column, descending — "calls",
// "total" (total time), or "mean" (mean latency); unknown columns sort by
// calls. Ties break on plan key so equal snapshots render identically.
func SortEntries(entries []EntrySnapshot, by string) {
	less := func(i, j int) bool { return entries[i].Calls > entries[j].Calls }
	switch by {
	case "total":
		less = func(i, j int) bool { return entries[i].TotalSeconds > entries[j].TotalSeconds }
	case "mean":
		less = func(i, j int) bool { return entries[i].MeanSeconds > entries[j].MeanSeconds }
	}
	sort.Slice(entries, func(i, j int) bool {
		if less(i, j) != less(j, i) {
			return less(i, j)
		}
		return entries[i].PlanKey < entries[j].PlanKey
	})
}

// Merge combines per-shard snapshots into one document keyed by plan key:
// counts sum, error maps sum, first/last seen take the min/max, and latency
// histograms merge bucketwise (identical bucket bounds everywhere — every
// store uses DefaultLatencyBuckets) so the derived quantiles are exact over
// the union. Mismatched bucket layouts degrade to count/sum-only merging.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{Entries: []EntrySnapshot{}}
	byKey := map[string]*EntrySnapshot{}
	for _, sn := range snaps {
		if sn.Capacity > out.Capacity {
			out.Capacity = sn.Capacity
		}
		out.Evicted += sn.Evicted
		out.Totals.Calls += sn.Totals.Calls
		out.Totals.Errors += sn.Totals.Errors
		out.Totals.TopKSkipped += sn.Totals.TopKSkipped
		for i := range sn.Entries {
			e := sn.Entries[i]
			acc := byKey[e.PlanKey]
			if acc == nil {
				cp := e
				cp.Errors = copyCounts(e.Errors)
				cp.Latency = copyHistogram(e.Latency)
				byKey[e.PlanKey] = &cp
				continue
			}
			acc.Calls += e.Calls
			acc.CacheHits += e.CacheHits
			acc.MemoHits += e.MemoHits
			acc.VideosEvaluated += e.VideosEvaluated
			acc.VideosSkipped += e.VideosSkipped
			acc.TopKSkipped += e.TopKSkipped
			for k, v := range e.Errors {
				if acc.Errors == nil {
					acc.Errors = map[string]uint64{}
				}
				acc.Errors[k] += v
			}
			if e.Class != "" {
				acc.Class = e.Class
			}
			if e.Engine != "" {
				acc.Engine = e.Engine
			}
			if !e.FirstSeen.IsZero() && (acc.FirstSeen.IsZero() || e.FirstSeen.Before(acc.FirstSeen)) {
				acc.FirstSeen = e.FirstSeen
			}
			if e.LastSeen.After(acc.LastSeen) {
				acc.LastSeen = e.LastSeen
			}
			acc.Latency = mergeHistograms(acc.Latency, e.Latency)
		}
	}
	for _, acc := range byKey {
		acc.derive()
		out.Entries = append(out.Entries, *acc)
	}
	SortEntries(out.Entries, "calls")
	out.SortedBy = "calls"
	return out
}

func copyHistogram(h obs.HistogramSnapshot) obs.HistogramSnapshot {
	h.Buckets = append([]obs.HistogramBucket(nil), h.Buckets...)
	return h
}

// mergeHistograms sums two snapshots bucketwise when their bounds line up,
// and falls back to count/sum only (quantiles then report zero buckets)
// otherwise.
func mergeHistograms(a, b obs.HistogramSnapshot) obs.HistogramSnapshot {
	out := copyHistogram(a)
	out.Count += b.Count
	out.Sum += b.Sum
	if len(a.Buckets) != len(b.Buckets) {
		out.Buckets = nil
		return out
	}
	for i := range out.Buckets {
		if out.Buckets[i].UpperBound != b.Buckets[i].UpperBound {
			out.Buckets = nil
			return out
		}
		out.Buckets[i].Count += b.Buckets[i].Count
	}
	return out
}

// ServeSnapshot writes snap as the /debug/queries JSON document, honoring
// ?sort=calls|total|mean and ?limit=N.
func ServeSnapshot(w http.ResponseWriter, r *http.Request, snap Snapshot) {
	if by := r.URL.Query().Get("sort"); by != "" {
		SortEntries(snap.Entries, by)
		snap.SortedBy = by
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(snap.Entries) {
			snap.Entries = snap.Entries[:n]
		}
	}
	if snap.Entries == nil {
		snap.Entries = []EntrySnapshot{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}
