package obs

import "net/http"

// Health rollup: the one-glance verdict behind GET /debug/health. Each
// serving layer (store, server, shard coordinator) assembles a HealthDoc from
// its own signals — WAL lag and checkpoint age, breaker states, cache hit
// ratios, shard membership, admission-queue depth — and every degraded
// component carries a human-readable reason string, so the document answers
// both "is it healthy?" and "why not?".

// HealthStatus values of a HealthDoc.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
)

// HealthComponent is one contributor to the rollup.
type HealthComponent struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	// Reason explains the component's state: the degradation cause when not
	// OK, an informational summary (hit ratios, lag figures) when OK.
	Reason string `json:"reason,omitempty"`
}

// HealthDoc is the /debug/health JSON document: the rolled-up status plus
// every component that fed it.
type HealthDoc struct {
	Status     string            `json:"status"`
	Components []HealthComponent `json:"components"`
}

// Add appends one component and keeps the rollup current: any degraded
// component degrades the whole document.
func (d *HealthDoc) Add(name string, ok bool, reason string) {
	d.Components = append(d.Components, HealthComponent{Name: name, OK: ok, Reason: reason})
	if d.Status == "" {
		d.Status = HealthOK
	}
	if !ok {
		d.Status = HealthDegraded
	}
}

// Merge folds another document's components into d (prefixing is the
// caller's job if names collide).
func (d *HealthDoc) Merge(other HealthDoc) {
	for _, c := range other.Components {
		d.Add(c.Name, c.OK, c.Reason)
	}
}

// Degraded reports whether any component degraded the rollup.
func (d HealthDoc) Degraded() bool { return d.Status == HealthDegraded }

// Reasons returns the reason strings of the degraded components.
func (d HealthDoc) Reasons() []string {
	var out []string
	for _, c := range d.Components {
		if !c.OK {
			out = append(out, c.Reason)
		}
	}
	return out
}

// WriteHealth serves a health document. The HTTP status is 200 either way —
// degraded-but-serving is precisely what the document distinguishes from
// down (load balancers use /readyz, which does flip status codes).
func WriteHealth(w http.ResponseWriter, d HealthDoc) {
	if d.Status == "" {
		d.Status = HealthOK
	}
	if d.Components == nil {
		d.Components = []HealthComponent{}
	}
	writeJSON(w, d)
}
