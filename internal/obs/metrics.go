// Package obs is the repo's zero-dependency instrumentation layer: atomic
// counters and gauges, lock-striped latency histograms with fixed bucket
// boundaries, a monotonic-clock span tracer, a slow-query log, and the HTTP
// handler exposing them (/metrics, /debug/slowlog, /debug/pprof).
//
// The package exists because the paper's §4 evaluation is entirely about
// where query time goes (direct similarity-list algorithms vs. the SQL
// baseline); obs makes that comparison observable on live queries. Every
// primitive is safe for concurrent use and nil-safe — a nil *Counter, *Gauge,
// *Histogram, *Span, *Trace or *EngineMetrics accepts the full method set as
// no-ops, so instrumented hot paths never branch on "is observability on".
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are a caller bug but are not checked; use a
// Gauge for values that go down).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight work, cache size).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed histogram boundaries: roughly
// logarithmic from 25µs to 10s, bracketing everything from one atomic eval on
// a short video to a full SQL-baseline until query at the paper's sizes.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		25 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
		250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
	}
}

// histStripes is the number of independently updated copies of a histogram's
// hot fields. Observations scatter across stripes, so concurrent observers
// rarely contend on one cache line; a power of two keeps selection a mask.
const histStripes = 8

// histStripe is one stripe: its own bucket counts, total, and sum. The
// padding keeps stripes on separate cache lines.
type histStripe struct {
	counts []atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
	_      [4]int64
}

// Histogram is a fixed-bucket latency histogram. Observations are lock-free:
// the only synchronization is atomic adds on a stripe chosen by hashing the
// observed duration.
type Histogram struct {
	bounds  []time.Duration // sorted upper bounds; counts[len(bounds)] is +Inf
	stripes [histStripes]histStripe
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (DefaultLatencyBuckets if nil).
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	h := &Histogram{bounds: append([]time.Duration(nil), bounds...)}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// Observe records one duration (negative durations count as zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s := &h.stripes[stripeOf(uint64(d))]
	s.counts[h.bucketOf(d)].Add(1)
	s.n.Add(1)
	s.sum.Add(int64(d))
}

// bucketOf returns the index of the first bucket whose upper bound is >= d
// (the overflow bucket if none): boundary values land in the bucket they
// bound, i.e. buckets are "less than or equal" like Prometheus's `le`.
func (h *Histogram) bucketOf(d time.Duration) int {
	return sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
}

// stripeOf mixes the observed value into a stripe index. Distinct latencies
// (which differ at nanosecond granularity in practice) spread across stripes
// with no shared selection state.
func stripeOf(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & (histStripes - 1)
}

// HistogramBucket is one bucket of a snapshot.
type HistogramBucket struct {
	// UpperBound is the bucket's inclusive upper bound; the last bucket of a
	// snapshot has UpperBound 0 meaning +Inf.
	UpperBound time.Duration `json:"upper_bound_ns"`
	Count      int64         `json:"count"`
}

// HistogramSnapshot is a point-in-time merge of all stripes.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     time.Duration     `json:"sum_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the bound
// of the first bucket at which the cumulative count reaches q·Count. The
// overflow bucket reports the largest finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.UpperBound == 0 && i > 0 { // overflow: report the last finite bound
				return s.Buckets[i-1].UpperBound
			}
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Snapshot merges the stripes. Concurrent observers may land between stripe
// reads; the snapshot is consistent to within those in-flight observations.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{Buckets: make([]HistogramBucket, len(h.bounds)+1)}
	for i, b := range h.bounds {
		out.Buckets[i].UpperBound = b
	}
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.n.Load()
		out.Sum += time.Duration(s.sum.Load())
		for j := range s.counts {
			out.Buckets[j].Count += s.counts[j].Load()
		}
	}
	return out
}

// Logger is the pluggable logging interface; the slow-query log emits one
// line per over-threshold query through it. Implementations must be safe for
// concurrent use ((*log.Logger).Printf qualifies via LoggerFunc).
type Logger interface {
	Logf(format string, args ...any)
}

// LoggerFunc adapts a printf-style function to Logger.
type LoggerFunc func(format string, args ...any)

// Logf implements Logger.
func (f LoggerFunc) Logf(format string, args ...any) { f(format, args...) }

// Registry is a named collection of counters, gauges and histograms, the
// backing store of /metrics. Lookups get-or-create, so instrument sites and
// scrapers need no registration order.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		gaugeFuncs: map[string]func() int64{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Describe records a metric's one-line description, emitted as the # HELP
// line in Prometheus exposition. The name is the registry name (dotted, no
// type suffix); describing the same name again replaces the text.
func (r *Registry) Describe(name, help string) {
	if r == nil || help == "" {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// DescribeAll records a batch of metric descriptions.
func (r *Registry) DescribeAll(help map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for name, h := range help {
		if h != "" {
			r.help[name] = h
		}
	}
	r.mu.Unlock()
}

// Counter returns (creating if needed) the named counter; nil registries
// return nil (a valid no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at snapshot time (e.g.
// process uptime). f must be safe for concurrent use; registering the same
// name again replaces the function.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = f
	r.mu.Unlock()
}

// Histogram returns (creating if needed) the named histogram over the given
// bounds (DefaultLatencyBuckets if nil). The bounds of the first creation
// win.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time copy of every metric, JSON-ready for
// the /metrics endpoint.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Help carries the registered metric descriptions (see Describe); the
	// Prometheus exposition renders them as # HELP lines. Omitted from the
	// JSON form, which is self-describing by name.
	Help map[string]string `json:"-"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	for k, v := range r.help {
		out.Help[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		out.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		out.Gauges[k] = v.Value()
	}
	for k, f := range funcs {
		out.Gauges[k] = f()
	}
	for k, v := range hists {
		out.Histograms[k] = v.Snapshot()
	}
	return out
}

// MergeSnapshots combines registry snapshots into one (metric names are kept
// disjoint by convention; on a collision the later snapshot wins). A serving
// layer with its own registry plus its store's uses it to present — and
// sample — one unified metric space.
func MergeSnapshots(snaps ...RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
		Help:       map[string]string{},
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] = v
		}
		for k, v := range s.Histograms {
			out.Histograms[k] = v
		}
		for k, v := range s.Help {
			out.Help[k] = v
		}
	}
	return out
}

// EngineMetrics are the nil-safe per-engine work counters the evaluation
// engines increment on their hot paths (cheap atomic adds; a nil receiver is
// free). They back the per-formula-class cost accounting of the §4
// comparison: how many atomic evaluations and list merges a query class
// costs on each engine.
type EngineMetrics struct {
	atomicEvals Counter
	mergeOps    Counter
	memoHits    Counter
}

// AtomicEval counts one atomic (non-temporal) formula evaluation.
func (m *EngineMetrics) AtomicEval() {
	if m != nil {
		m.atomicEvals.Inc()
	}
}

// Merge counts one temporal list/table merge operation (and, until, next,
// eventually, level-modal aggregation).
func (m *EngineMetrics) Merge() {
	if m != nil {
		m.mergeOps.Inc()
	}
}

// MemoHit counts one subformula evaluation avoided entirely because a
// structurally identical subtree had already been computed in the same
// evaluation (plan-node memoization).
func (m *EngineMetrics) MemoHit() {
	if m != nil {
		m.memoHits.Inc()
	}
}

// EngineSnapshot is a point-in-time copy of one engine's work counters.
type EngineSnapshot struct {
	AtomicEvals int64 `json:"atomic_evals"`
	MergeOps    int64 `json:"merge_ops"`
	MemoHits    int64 `json:"memo_hits"`
}

// Snapshot copies the counters.
func (m *EngineMetrics) Snapshot() EngineSnapshot {
	if m == nil {
		return EngineSnapshot{}
	}
	return EngineSnapshot{
		AtomicEvals: m.atomicEvals.Value(),
		MergeOps:    m.mergeOps.Value(),
		MemoHits:    m.memoHits.Value(),
	}
}
