// Package dash renders /debug/dash: a self-contained, auto-refreshing HTML
// dashboard over the health rollup, the per-plan-key query statistics, and
// the timeseries sampler's sparklines. One embedded template, a meta-refresh
// tag, unicode block sparklines — no JavaScript, no external assets, so it
// renders identically from curl-to-file, an air-gapped lab box, or a browser
// pointed at a production port.
package dash

import (
	"html/template"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"htlvideo/internal/obs"
	"htlvideo/internal/obs/querystats"
	"htlvideo/internal/obs/timeseries"
)

// DefaultRefresh is the page's auto-refresh cadence when Sources.Refresh is
// not positive.
const DefaultRefresh = 5 * time.Second

// sparkWidth is how many trailing samples a sparkline shows.
const sparkWidth = 40

// maxQueryRows bounds the query-shape table (the JSON endpoint serves the
// full set).
const maxQueryRows = 20

// Sources wires a dashboard to a serving layer's observability. Health and
// Queries are functions so the page always renders current state; either may
// be nil (its section is omitted). Sampler may be nil too — sparklines then
// disappear but the rest of the page still renders.
type Sources struct {
	// Title heads the page ("store", "htlserve", "coordinator").
	Title string
	// Refresh is the meta-refresh cadence (DefaultRefresh when not positive).
	Refresh time.Duration
	// Health supplies the rollup; Queries the per-plan-key statistics.
	Health  func() obs.HealthDoc
	Queries func() querystats.Snapshot
	// Sampler supplies sparkline histories; Sparks names the counters,
	// histograms, or gauges to draw (registry names, e.g. "query.total").
	Sampler *timeseries.Sampler
	Sparks  []string
}

// sparkBlocks are the eight-level unicode sparkline alphabet.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a row of block characters, scaled to the
// series' own min..max (a flat non-zero series renders mid-height).
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		} else if hi > 0 {
			i = len(sparkBlocks) / 2
		}
		if i < 0 {
			i = 0
		}
		if i >= len(sparkBlocks) {
			i = len(sparkBlocks) - 1
		}
		b.WriteRune(sparkBlocks[i])
	}
	return b.String()
}

// sparkRow is one rendered sparkline.
type sparkRow struct {
	Name string
	Line string
	Last float64
}

// queryRow is one rendered query-shape line.
type queryRow struct {
	querystats.EntrySnapshot
	Errors uint64
}

// page is the template's data.
type page struct {
	Title   string
	Refresh int
	At      string

	HasHealth bool
	Health    obs.HealthDoc

	HasQueries bool
	Queries    []queryRow
	Totals     querystats.Totals
	Shapes     int
	Evicted    uint64

	Sparks []sparkRow
}

// Handler returns the /debug/dash handler over src.
func Handler(src Sources) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		refresh := src.Refresh
		if refresh <= 0 {
			refresh = DefaultRefresh
		}
		p := page{
			Title:   src.Title,
			Refresh: int(refresh / time.Second),
			At:      time.Now().UTC().Format(time.RFC3339),
		}
		if p.Title == "" {
			p.Title = "htlvideo"
		}
		if p.Refresh < 1 {
			p.Refresh = 1
		}
		if src.Health != nil {
			p.HasHealth = true
			p.Health = src.Health()
		}
		if src.Queries != nil {
			snap := src.Queries()
			p.HasQueries = true
			p.Totals = snap.Totals
			p.Shapes = len(snap.Entries)
			p.Evicted = snap.Evicted
			querystats.SortEntries(snap.Entries, "total")
			if len(snap.Entries) > maxQueryRows {
				snap.Entries = snap.Entries[:maxQueryRows]
			}
			for _, e := range snap.Entries {
				p.Queries = append(p.Queries, queryRow{EntrySnapshot: e, Errors: e.ErrorCount()})
			}
		}
		for _, name := range src.Sparks {
			vals := src.Sampler.Spark(name, sparkWidth)
			row := sparkRow{Name: name, Line: Sparkline(vals)}
			if len(vals) > 0 {
				row.Last = vals[len(vals)-1]
			}
			p.Sparks = append(p.Sparks, row)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = pageTmpl.Execute(w, p)
	})
}

var pageTmpl = template.Must(template.New("dash").Funcs(template.FuncMap{
	"ms": func(s float64) string {
		return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
	},
	"pct": func(r float64) string {
		return strconv.FormatFloat(r*100, 'f', 0, 64) + "%"
	},
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{{.Refresh}}">
<title>{{.Title}} — htlvideo dashboard</title>
<style>
body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace; margin: 1.5rem; background: #fafafa; color: #222; }
h1 { font-size: 1.1rem; } h2 { font-size: 0.95rem; margin-top: 1.5rem; }
table { border-collapse: collapse; font-size: 0.8rem; }
th, td { padding: 0.2rem 0.7rem; text-align: left; border-bottom: 1px solid #ddd; }
th { background: #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #1a7f37; } .bad { color: #b30000; font-weight: bold; }
.spark { font-size: 1rem; letter-spacing: -1px; }
.muted { color: #888; }
code { background: #eee; padding: 0 0.2rem; }
</style>
</head>
<body>
<h1>{{.Title}} <span class="muted">· {{.At}} · refreshes every {{.Refresh}}s</span></h1>
{{if .HasHealth}}
<h2>Health: {{if .Health.Degraded}}<span class="bad">degraded</span>{{else}}<span class="ok">ok</span>{{end}}</h2>
<table>
<tr><th>component</th><th>state</th><th>detail</th></tr>
{{range .Health.Components}}<tr><td>{{.Name}}</td><td>{{if .OK}}<span class="ok">ok</span>{{else}}<span class="bad">degraded</span>{{end}}</td><td>{{.Reason}}</td></tr>
{{end}}</table>
{{end}}
{{if .Sparks}}
<h2>Trends <span class="muted">(per-second rates; gauges raw)</span></h2>
<table>
<tr><th>metric</th><th>trend</th><th>last</th></tr>
{{range .Sparks}}<tr><td>{{.Name}}</td><td class="spark">{{.Line}}</td><td class="num">{{printf "%.2f" .Last}}</td></tr>
{{end}}</table>
{{end}}
{{if .HasQueries}}
<h2>Query shapes <span class="muted">({{.Shapes}} tracked, {{.Evicted}} evicted · {{.Totals.Calls}} calls, {{.Totals.Errors}} errors all-time)</span></h2>
<table>
<tr><th>plan</th><th>class</th><th>engine</th><th>calls</th><th>errs</th><th>total</th><th>mean</th><th>p95</th><th>p99</th><th>cache</th></tr>
{{range .Queries}}<tr><td><code>{{.PlanKey}}</code></td><td>{{.Class}}</td><td>{{.Engine}}</td><td class="num">{{.Calls}}</td><td class="num">{{.Errors}}</td><td class="num">{{ms .TotalSeconds}}</td><td class="num">{{ms .MeanSeconds}}</td><td class="num">{{ms .P95Seconds}}</td><td class="num">{{ms .P99Seconds}}</td><td class="num">{{pct .CacheHitRatio}}</td></tr>
{{end}}</table>
<p class="muted">Full data: <code>/debug/queries</code> · <code>/debug/timeseries</code> · <code>/debug/health</code> · <code>/metrics</code></p>
{{end}}
</body>
</html>
`))
