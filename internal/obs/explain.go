package obs

// EXPLAIN ANALYZE support: the typed, engine-agnostic form of a profiled
// plan tree, plus the text renderer behind `htlquery -explain` and the
// /explain endpoint. The accumulation side lives in internal/core (it needs
// the plan node identities); this file owns only plain data and formatting,
// so every layer above — the store, the server, the CLI — shares one shape.

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// NodeStats is one plan node's execution accounting for one query,
// aggregated across every video the query evaluated.
type NodeStats struct {
	// Visits counts evaluations reaching the node, memo hits included. The
	// similarity-list engine visits a node once per video; the reference
	// evaluator once per (video, segment) scan position.
	Visits int64 `json:"visits"`
	// MemoHits counts visits answered from a memo instead of recomputing —
	// the payoff of subformula interning, matched against the store's
	// query.plan.memo_hits counter by the consistency tests.
	MemoHits int64 `json:"memo_hits,omitempty"`
	// AtomicEvals counts picture-layer scorings of the node.
	AtomicEvals int64 `json:"atomic_evals,omitempty"`
	// MergeOps counts similarity-list/table merge operations at the node.
	MergeOps int64 `json:"merge_ops,omitempty"`
	// Rows counts similarity-table rows the node produced; Entries the
	// similarity-list entries inside them (the paper's list sizes).
	Rows    int64 `json:"rows,omitempty"`
	Entries int64 `json:"entries,omitempty"`
	// SQLStmts and SQLRows count the statements the SQL baseline issued for
	// the node and the rows they returned or affected.
	SQLStmts int64 `json:"sql_stmts,omitempty"`
	SQLRows  int64 `json:"sql_rows,omitempty"`
	// Skipped counts evaluations the optimizer short-circuited: a sibling's
	// empty table proved this node's result unnecessary, so it was never
	// computed (per video, so one query can both visit and skip a node).
	Skipped int64 `json:"skipped,omitempty"`
	// Time is the node's inclusive wall time (children included). The
	// similarity-list and SQL engines record it always; the reference
	// evaluator only in exact-attribution mode, where the per-visit clock
	// reads are worth paying.
	Time time.Duration `json:"time_ns"`
}

// ExplainNode is one plan node annotated with its stats. A subformula shared
// by several parents (one interned plan node) renders under each of them,
// carrying the same accumulated stats and Shared=true.
type ExplainNode struct {
	// ID is the node's stable index in the interned plan (core.PNode.ID).
	// Plans compile deterministically from canonical text, so the same query
	// yields the same IDs in every process — the join key for merging
	// per-shard profiles into one cross-shard explain tree.
	ID int `json:"id"`
	// Op names the operator: and, until, next, eventually, freeze,
	// at-level, exists, not, or atomic for picture-layer units.
	Op string `json:"op"`
	// Formula is the node's canonical text.
	Formula string `json:"formula"`
	// NonTemporal marks atomic units; Closed subformulas without free
	// variables; Shared nodes with more than one parent in the DAG.
	NonTemporal bool `json:"non_temporal,omitempty"`
	Closed      bool `json:"closed,omitempty"`
	Shared      bool `json:"shared,omitempty"`
	// Order is the optimizer's chosen child evaluation order, empty when the
	// children evaluate in syntactic order ("right-first" otherwise).
	Order string `json:"order,omitempty"`
	// EstCost and EstEntries are the cost model's estimates the physical
	// plan was derived from (zero when the node was never observed).
	EstCost    time.Duration `json:"est_cost_ns,omitempty"`
	EstEntries float64       `json:"est_entries,omitempty"`
	// Stats is the node's accumulated accounting.
	Stats NodeStats `json:"stats"`
	// Children are the operand nodes in syntactic order.
	Children []*ExplainNode `json:"children,omitempty"`
}

// MemoHitTotal sums memo hits over the DAG (each shared node counted once).
func (n *ExplainNode) MemoHitTotal() int64 {
	seen := map[*ExplainNode]bool{}
	var walk func(*ExplainNode) int64
	walk = func(n *ExplainNode) int64 {
		if n == nil || seen[n] {
			return 0
		}
		seen[n] = true
		t := n.Stats.MemoHits
		for _, c := range n.Children {
			t += walk(c)
		}
		return t
	}
	return walk(n)
}

// RenderTree writes the annotated plan tree, one node per line, children
// indented with box-drawing connectors. total scales the per-node time
// percentages (0 disables them); showTimes=false replaces every duration
// with "-" so golden files stay byte-stable across runs.
func RenderTree(w io.Writer, root *ExplainNode, total time.Duration, showTimes bool) {
	if root == nil {
		return
	}
	renderNode(w, root, "", "", total, showTimes)
}

func renderNode(w io.Writer, n *ExplainNode, head, tail string, total time.Duration, showTimes bool) {
	fmt.Fprintf(w, "%s%s\n", head, nodeLine(n, total, showTimes))
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			renderNode(w, c, tail+"└─ ", tail+"   ", total, showTimes)
		} else {
			renderNode(w, c, tail+"├─ ", tail+"│  ", total, showTimes)
		}
	}
}

// nodeLine formats one node: operator, truncated formula for atomic units,
// then the non-zero stats.
func nodeLine(n *ExplainNode, total time.Duration, showTimes bool) string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Op == "atomic" {
		b.WriteString(" ")
		b.WriteString(truncateFormula(n.Formula, 56))
	}
	if n.Shared {
		b.WriteString(" (shared)")
	}
	b.WriteString("  ")
	if showTimes {
		fmt.Fprintf(&b, "time=%s", n.Stats.Time.Round(time.Microsecond))
		if total > 0 && n.Stats.Time > 0 {
			fmt.Fprintf(&b, " (%.1f%%)", 100*float64(n.Stats.Time)/float64(total))
		}
	} else {
		b.WriteString("time=-")
	}
	fmt.Fprintf(&b, " visits=%d", n.Stats.Visits)
	if n.Order != "" {
		fmt.Fprintf(&b, " order=%s", n.Order)
	}
	stat := func(name string, v int64) {
		if v != 0 {
			fmt.Fprintf(&b, " %s=%d", name, v)
		}
	}
	stat("memo", n.Stats.MemoHits)
	stat("atomics", n.Stats.AtomicEvals)
	stat("merges", n.Stats.MergeOps)
	stat("rows", n.Stats.Rows)
	stat("entries", n.Stats.Entries)
	stat("skipped", n.Stats.Skipped)
	stat("sql_stmts", n.Stats.SQLStmts)
	stat("sql_rows", n.Stats.SQLRows)
	// Cost-model annotations: estimated entries are deterministic counts and
	// render always; estimated wall time is timing-derived, so it obeys
	// showTimes (goldens stay byte-stable).
	if n.EstEntries > 0 {
		fmt.Fprintf(&b, " est_entries=%.1f", n.EstEntries)
	}
	if showTimes && n.EstCost > 0 {
		fmt.Fprintf(&b, " est_cost=%s", n.EstCost.Round(time.Microsecond))
	}
	return b.String()
}

// truncateFormula quotes and caps a formula for one tree line.
func truncateFormula(s string, n int) string {
	if len(s) > n {
		s = s[:n] + "…"
	}
	return `"` + s + `"`
}
