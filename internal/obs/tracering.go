package obs

// Trace retention: a bounded sampling ring buffer of recent query traces,
// the backing store of /debug/traces on the single server and on the
// scatter-gather coordinator. Slow-log entries link into it by trace id, so
// "why was this slow" goes from a log line to the full (possibly
// cross-process) span tree without re-running the query.
//
// The ring retains *Trace pointers, not snapshots: observing a finished
// trace costs one lock and one pointer store on the query path, and the
// deep-copy happens only when /debug/traces is actually read. Memory stays
// bounded by the ring's capacity (the oldest trace is overwritten).

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// DefaultTraceRingSize is the retained-trace count of a fresh ring.
const DefaultTraceRingSize = 64

// TraceRing is a TraceSink retaining the most recent traces in a bounded
// ring, optionally sampled. Safe for concurrent use.
type TraceRing struct {
	mu      sync.Mutex
	entries []ringEntry // ring storage, len == capacity
	next    int         // next write position
	total   int         // traces retained so far (saturates at capacity)
	seen    int64       // traces offered, for sampling
	every   int64       // retain one in every N offered traces (>= 1)
}

type ringEntry struct {
	t    *Trace
	when time.Time
}

// NewTraceRing retains the n most recent traces (DefaultTraceRingSize when
// n < 1); every trace offered is retained until SetSampleEvery says
// otherwise.
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{entries: make([]ringEntry, n), every: 1}
}

// SetSampleEvery retains only one in every n offered traces (n <= 1 keeps
// all) — the knob that bounds retention cost on hot stores where even a
// pointer store per query is worth shaving.
func (r *TraceRing) SetSampleEvery(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.every = int64(n)
	r.mu.Unlock()
}

// ObserveTrace implements TraceSink: the trace enters the ring (evicting the
// oldest) if the sampler selects it.
func (r *TraceRing) ObserveTrace(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.seen++
	if r.seen%r.every == 0 {
		r.entries[r.next] = ringEntry{t: t, when: time.Now()}
		r.next = (r.next + 1) % len(r.entries)
		if r.total < len(r.entries) {
			r.total++
		}
	}
	r.mu.Unlock()
}

// Len reports the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TraceSummary is one retained trace's listing entry.
type TraceSummary struct {
	ID       string            `json:"id"`
	Name     string            `json:"name"`
	When     time.Time         `json:"when"`
	Duration time.Duration     `json:"duration_ns"`
	Tags     map[string]string `json:"tags,omitempty"`
}

// snapshotEntries copies the retained entries most recent first.
func (r *TraceRing) snapshotEntries() []ringEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ringEntry, 0, r.total)
	for i := 1; i <= r.total; i++ {
		out = append(out, r.entries[(r.next-i+len(r.entries))%len(r.entries)])
	}
	return out
}

// List summarizes the retained traces, most recent first.
func (r *TraceRing) List() []TraceSummary {
	entries := r.snapshotEntries()
	out := make([]TraceSummary, 0, len(entries))
	for _, e := range entries {
		snap := e.t.Snapshot()
		out = append(out, TraceSummary{
			ID: snap.ID, Name: snap.Name, When: e.when,
			Duration: snap.Duration, Tags: snap.Tags,
		})
	}
	return out
}

// Get returns the retained trace with the given id. Distributed traces share
// one id across processes (and a shard's per-video queries share the
// coordinator's); Get returns the most recent fragment under that id.
func (r *TraceRing) Get(id string) (TraceSnapshot, bool) {
	for _, e := range r.snapshotEntries() {
		if e.t.ID() == id {
			return e.t.Snapshot(), true
		}
	}
	return TraceSnapshot{}, false
}

// Handler serves the ring over HTTP: the listing by default, the full span
// tree of one trace with ?id=. A nil ring serves an empty listing.
func (r *TraceRing) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if id := req.URL.Query().Get("id"); id != "" {
			snap, ok := r.Get(id)
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "no retained trace with id " + id})
				return
			}
			writeJSON(w, snap)
			return
		}
		list := r.List()
		if list == nil {
			list = []TraceSummary{}
		}
		writeJSON(w, list)
	}
}
