package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one query's structured timing record: a tree of spans plus
// query-level tags (engine, formula class, level, video count). All methods
// are safe for concurrent use — per-video spans start and end on worker
// goroutines — and nil-safe, so an untraced query path costs only nil checks.
//
// Durations come from time.Since, whose monotonic-clock reading makes spans
// immune to wall-clock steps.
type Trace struct {
	mu    sync.Mutex
	id    string
	name  string
	begin time.Time
	total time.Duration
	done  bool
	tags  map[string]string
	roots []*Span
}

// traceEpoch and traceSeq back the fallback id scheme, used only if the
// system's entropy source fails: the epoch distinguishes runs, the sequence
// traces within one.
var (
	traceEpoch = time.Now().UnixNano()
	traceSeq   atomic.Int64
)

// TraceHeader is the HTTP header carrying distributed trace context: the
// coordinator sets it on every shard request (retries and hedges included),
// and a server joins its query trace into the id it finds there.
const TraceHeader = "X-Htl-Trace"

// NewTraceID returns a fresh globally unique trace identifier: 128 random
// bits, hex-encoded. Global (not merely process-level) uniqueness is what
// lets a coordinator stitch trace fragments from N shard processes without
// collisions. Entropy-source failure falls back to a process-unique id.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%x-%x", traceEpoch, traceSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ID returns the trace's globally unique identifier, assigned lazily on
// first request (see NewTraceID). Slow-log entries, explain results, the
// trace ring and log lines carry it, so every view of one query — across
// processes — can be joined.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.idLocked()
}

func (t *Trace) idLocked() string {
	if t.id == "" {
		t.id = NewTraceID()
	}
	return t.id
}

// SetID adopts a propagated trace identifier (e.g. from an X-Htl-Trace
// header), joining this trace into a distributed trace minted elsewhere.
// Empty ids are ignored; lazy allocation otherwise stays untouched.
func (t *Trace) SetID(id string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// NewTrace starts a trace; name is the query text (shown by the slow log).
func NewTrace(name string) *Trace {
	return &Trace{name: name, begin: time.Now(), tags: map[string]string{}}
}

// Name returns the traced query text.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetTag records a query-level tag.
func (t *Trace) SetTag(k, v string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tags[k] = v
	t.mu.Unlock()
}

// StartSpan opens a top-level stage span.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	sp := &Span{t: t, name: name, start: now, offset: now.Sub(t.begin)}
	t.mu.Lock()
	t.roots = append(t.roots, sp)
	t.mu.Unlock()
	return sp
}

// Finish fixes the trace's total duration (idempotent; spans still open at
// Finish report the duration they had reached by their own End).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.total = time.Since(t.begin)
	}
	return t.total
}

// Duration returns the total fixed by Finish (time since start before then).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.total
	}
	return time.Since(t.begin)
}

// Span is one timed stage (or sub-stage) of a query.
type Span struct {
	t        *Trace
	name     string
	tags     map[string]string
	start    time.Time
	offset   time.Duration // from the trace's begin
	dur      time.Duration
	ended    bool
	children []*Span
	// remote holds span subtrees stitched in from another process (a shard's
	// response); they render after the local children. Offsets inside a
	// remote subtree are relative to the remote trace's own start.
	remote []SpanSnapshot
}

// StartSpan opens a child span.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	sp := &Span{t: s.t, name: name, start: now, offset: now.Sub(s.t.begin)}
	s.t.mu.Lock()
	s.children = append(s.children, sp)
	s.t.mu.Unlock()
	return sp
}

// SetTag records a span tag.
func (s *Span) SetTag(k, v string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.tags == nil {
		s.tags = map[string]string{}
	}
	s.tags[k] = v
	s.t.mu.Unlock()
}

// AttachRemote stitches span subtrees recorded by another process under this
// span: a coordinator attaches each shard's returned span tree under that
// shard's attempt span, producing one cross-process trace. The snapshots are
// retained as-is (their offsets are relative to the remote trace's start) and
// render after the local children.
func (s *Span) AttachRemote(spans []SpanSnapshot) {
	if s == nil || len(spans) == 0 {
		return
	}
	s.t.mu.Lock()
	s.remote = append(s.remote, spans...)
	s.t.mu.Unlock()
}

// End closes the span and returns its duration (idempotent).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	return s.dur
}

// TraceSnapshot is the JSON-ready copy of a finished trace.
type TraceSnapshot struct {
	ID       string            `json:"id"`
	Name     string            `json:"name"`
	Tags     map[string]string `json:"tags,omitempty"`
	Duration time.Duration     `json:"duration_ns"`
	Spans    []SpanSnapshot    `json:"spans,omitempty"`
}

// SpanSnapshot is the JSON-ready copy of one span.
type SpanSnapshot struct {
	Name     string            `json:"name"`
	Tags     map[string]string `json:"tags,omitempty"`
	Offset   time.Duration     `json:"offset_ns"`
	Duration time.Duration     `json:"duration_ns"`
	Children []SpanSnapshot    `json:"children,omitempty"`
}

// Snapshot deep-copies the trace; safe to hold after the query completes.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{ID: t.idLocked(), Name: t.name, Tags: copyTags(t.tags), Duration: t.total}
	if !t.done {
		out.Duration = time.Since(t.begin)
	}
	for _, sp := range t.roots {
		out.Spans = append(out.Spans, sp.snapshotLocked())
	}
	return out
}

// Spans returns the top-level stage snapshots in start order.
func (t *Trace) Spans() []SpanSnapshot { return t.Snapshot().Spans }

func (s *Span) snapshotLocked() SpanSnapshot {
	out := SpanSnapshot{Name: s.name, Tags: copyTags(s.tags), Offset: s.offset, Duration: s.dur}
	if !s.ended {
		out.Duration = time.Since(s.start)
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.snapshotLocked())
	}
	out.Children = append(out.Children, s.remote...)
	return out
}

func copyTags(tags map[string]string) map[string]string {
	if len(tags) == 0 {
		return nil
	}
	out := make(map[string]string, len(tags))
	for k, v := range tags {
		out[k] = v
	}
	return out
}

// RenderSpanTree writes a trace snapshot as a box-drawing tree, one span per
// line with its duration and tags — the human-readable form of a (possibly
// cross-process) trace, used by `htlquery -trace`. Remote subtrees stitched
// in via AttachRemote render like local children.
func RenderSpanTree(w io.Writer, snap TraceSnapshot) {
	fmt.Fprintf(w, "trace %s  %s  (%v)\n", snap.ID, snap.Name, snap.Duration.Round(time.Microsecond))
	if len(snap.Tags) > 0 {
		fmt.Fprintf(w, "tags: %s\n", formatTags(snap.Tags))
	}
	for i, sp := range snap.Spans {
		renderSpan(w, sp, i == len(snap.Spans)-1, "")
	}
}

func renderSpan(w io.Writer, sp SpanSnapshot, last bool, tail string) {
	head, next := tail+"├─ ", tail+"│  "
	if last {
		head, next = tail+"└─ ", tail+"   "
	}
	fmt.Fprintf(w, "%s%s  %v", head, sp.Name, sp.Duration.Round(time.Microsecond))
	if len(sp.Tags) > 0 {
		fmt.Fprintf(w, "  [%s]", formatTags(sp.Tags))
	}
	fmt.Fprintln(w)
	for i, c := range sp.Children {
		renderSpan(w, c, i == len(sp.Children)-1, next)
	}
}

// formatTags renders a tag map deterministically (sorted by key).
func formatTags(tags map[string]string) string {
	keys := make([]string, 0, len(tags))
	for k := range tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", k, tags[k])
	}
	return b.String()
}

// TraceSink receives completed query traces: the slow log is one, a test
// collector another, an OTLP exporter a third. ObserveTrace is called after
// Finish and must be safe for concurrent use.
type TraceSink interface {
	ObserveTrace(t *Trace)
}

// TraceCollector is a TraceSink that retains every trace, for tests and
// one-shot CLI inspection.
type TraceCollector struct {
	mu     sync.Mutex
	traces []*Trace
}

// ObserveTrace implements TraceSink.
func (c *TraceCollector) ObserveTrace(t *Trace) {
	c.mu.Lock()
	c.traces = append(c.traces, t)
	c.mu.Unlock()
}

// Traces returns the collected traces in arrival order.
func (c *TraceCollector) Traces() []*Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Trace(nil), c.traces...)
}

// Last returns the most recent trace, or nil.
func (c *TraceCollector) Last() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.traces) == 0 {
		return nil
	}
	return c.traces[len(c.traces)-1]
}

// spanKey carries the active span through a context, so deeper layers
// (picture-system builds, generated SQL statements) attach child spans to
// whatever per-video span the store opened, without plumbing obs types
// through every signature.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil (whose methods no-op).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
