package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestLintExpositionClean(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("query.total").Inc()
	reg.Counter("query.class.type1").Inc()
	reg.Gauge("pool.in_flight").Set(3)
	h := reg.Histogram("query.latency", nil)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	WritePrometheus(&buf, reg.Snapshot())
	if problems := LintExposition(buf.String()); len(problems) > 0 {
		t.Fatalf("clean registry flagged: %v\nexposition:\n%s", problems, buf.String())
	}
}

func TestLintExpositionViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{
			"counter without _total",
			"# TYPE query_hits counter\nquery_hits 3\n",
			"does not end in _total",
		},
		{
			"gauge named like a counter",
			"# TYPE pool_jobs_total gauge\npool_jobs_total 3\n",
			"ends in _total",
		},
		{
			"histogram without _seconds",
			"# TYPE lat histogram\nlat_bucket{le=\"1\"} 1\nlat_bucket{le=\"+Inf\"} 1\nlat_sum 0.5\nlat_count 1\n",
			"does not end in _seconds",
		},
		{
			"histogram without +Inf",
			"# TYPE lat_seconds histogram\nlat_seconds_bucket{le=\"1\"} 1\nlat_seconds_sum 0.5\nlat_seconds_count 1\n",
			"does not terminate",
		},
		{
			"non-cumulative buckets",
			"# TYPE lat_seconds histogram\nlat_seconds_bucket{le=\"1\"} 5\nlat_seconds_bucket{le=\"2\"} 3\nlat_seconds_bucket{le=\"+Inf\"} 5\nlat_seconds_sum 0.5\nlat_seconds_count 5\n",
			"not cumulative",
		},
		{
			"count disagrees with +Inf",
			"# TYPE lat_seconds histogram\nlat_seconds_bucket{le=\"1\"} 1\nlat_seconds_bucket{le=\"+Inf\"} 1\nlat_seconds_sum 0.5\nlat_seconds_count 7\n",
			"disagrees",
		},
		{
			"bad metric name",
			"# TYPE ok_total counter\nok_total 1\n9bad.name 2\n",
			"invalid metric name",
		},
	}
	for _, tc := range cases {
		problems := LintExposition(tc.text)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: wanted a problem containing %q, got %v", tc.name, tc.want, problems)
		}
	}
}
