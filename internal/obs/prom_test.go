package obs

// Prometheus exposition tests: a small parser for the 0.0.4 text format
// round-trips WritePrometheus output back into samples and checks it against
// the registry snapshot — names in the legal charset, TYPE lines preceding
// their samples, cumulative non-decreasing le buckets ending at +Inf, and the
// process/build_info gauges — plus the /metrics content negotiation.

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string // metric name without labels
	labels map[string]string
	value  float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	promLabelRe = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// parsePrometheus parses exposition text, failing the test on any line that
// is not a well-formed comment or sample, on a sample without a preceding
// TYPE line, on a HELP line that does not precede its metric's samples, or
// on an invalid TYPE. It returns the samples, the TYPE map, and the HELP map.
func parsePrometheus(t *testing.T, text string) ([]promSample, map[string]string, map[string]string) {
	t.Helper()
	var samples []promSample
	types := map[string]string{}
	helps := map[string]string{}
	seen := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			if !promNameRe.MatchString(name) {
				t.Fatalf("HELP line names invalid metric %q", name)
			}
			if seen[name] {
				t.Fatalf("HELP for %q after its samples", name)
			}
			helps[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				t.Fatalf("TYPE line names invalid metric %q", name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("invalid type %q in %q", typ, line)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		s := promSample{name: m[1], labels: map[string]string{}}
		for _, lm := range promLabelRe.FindAllStringSubmatch(m[2], -1) {
			s.labels[lm[1]] = lm[2]
		}
		var err error
		if s.value, err = strconv.ParseFloat(m[3], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if bn := strings.TrimSuffix(s.name, suf); bn != s.name && types[bn] == "histogram" {
				base = bn
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no preceding TYPE line", line)
		}
		seen[base] = true
		samples = append(samples, s)
	}
	return samples, types, helps
}

func findSample(samples []promSample, name string) (promSample, bool) {
	for _, s := range samples {
		if s.name == name {
			return s, true
		}
	}
	return promSample{}, false
}

// TestPrometheusRoundTrip renders a populated registry and parses the result
// back: every counter, gauge and histogram must survive with its value, and
// the histogram's le buckets must be cumulative, non-decreasing, and end at a
// +Inf bucket equal to the observation count.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("query.total").Add(42)
	reg.Counter(`query.class.type1{shard="weird"}`).Add(7) // pre-labeled name
	reg.Gauge("pool.in_flight").Set(3)
	reg.GaugeFunc("computed.gauge", func() int64 { return 99 })
	h := reg.Histogram("query.latency", nil)
	for _, d := range []time.Duration{10 * time.Microsecond, 300 * time.Microsecond, 80 * time.Millisecond, time.Minute} {
		h.Observe(d)
	}
	reg.Describe("query.total", "Queries issued, including failed ones.")
	reg.Describe("query.latency", "Whole-query latency.\nSecond line.")
	reg.Describe("pool.in_flight", "Videos evaluating right now.")

	var b strings.Builder
	WritePrometheus(&b, reg.Snapshot())
	samples, types, helps := parsePrometheus(t, b.String())

	if s, ok := findSample(samples, "query_total"); !ok || s.value != 42 {
		t.Fatalf("query_total = %+v, %v; want 42", s, ok)
	}
	if types["query_total"] != "counter" {
		t.Fatalf("query_total type = %q, want counter", types["query_total"])
	}
	if s, ok := findSample(samples, "pool_in_flight"); !ok || s.value != 3 {
		t.Fatalf("pool_in_flight = %+v, %v; want 3", s, ok)
	}
	if s, ok := findSample(samples, "computed_gauge"); !ok || s.value != 99 {
		t.Fatalf("computed gauge = %+v, %v; want 99", s, ok)
	}
	// The pre-labeled counter keeps its label block, with the _total suffix
	// inserted before it (the conventions lint requires it of every counter).
	if s, ok := findSample(samples, "query_class_type1_total"); !ok || s.value != 7 || s.labels["shard"] != "weird" {
		t.Fatalf("labeled counter = %+v, %v; want 7 with shard=weird", s, ok)
	}

	// Described metrics carry # HELP lines under their exposition names, with
	// newlines escaped; undescribed ones have none.
	if got := helps["query_total"]; got != "Queries issued, including failed ones." {
		t.Fatalf("query_total HELP = %q", got)
	}
	if got := helps["query_latency_seconds"]; got != `Whole-query latency.\nSecond line.` {
		t.Fatalf("query_latency_seconds HELP = %q", got)
	}
	if got := helps["pool_in_flight"]; got != "Videos evaluating right now." {
		t.Fatalf("pool_in_flight HELP = %q", got)
	}
	if _, ok := helps["computed_gauge"]; ok {
		t.Fatalf("undescribed gauge unexpectedly has HELP")
	}

	if types["query_latency_seconds"] != "histogram" {
		t.Fatalf("histogram type = %q", types["query_latency_seconds"])
	}
	var (
		prev    float64 = -1
		buckets int
		sawInf  bool
		infVal  float64
		lastLe  float64
	)
	for _, s := range samples {
		if s.name != "query_latency_seconds_bucket" {
			continue
		}
		buckets++
		if s.value < prev {
			t.Fatalf("bucket counts not cumulative: %v after %v", s.value, prev)
		}
		prev = s.value
		le := s.labels["le"]
		if le == "+Inf" {
			sawInf, infVal = true, s.value
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("unparseable le %q: %v", le, err)
		}
		if f <= lastLe {
			t.Fatalf("le bounds not increasing: %v after %v", f, lastLe)
		}
		lastLe = f
	}
	if buckets == 0 || !sawInf {
		t.Fatalf("histogram buckets = %d, +Inf seen = %v", buckets, sawInf)
	}
	if sum, ok := findSample(samples, "query_latency_seconds_count"); !ok || sum.value != 4 || infVal != 4 {
		t.Fatalf("count = %+v (+Inf bucket %v), want 4 observations", sum, infVal)
	}
	// The minute-long observation overflows every finite bucket; sum is in
	// seconds.
	if s, ok := findSample(samples, "query_latency_seconds_sum"); !ok || s.value < 60 || s.value > 61 {
		t.Fatalf("sum = %+v, want ≈60s", s)
	}
}

// TestRegisterProcessMetrics: the identification gauges appear with legal
// names, build_info carries its labels, and uptime is computed at snapshot
// time.
func TestRegisterProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	var b strings.Builder
	WritePrometheus(&b, reg.Snapshot())
	samples, _, _ := parsePrometheus(t, b.String())

	bi, ok := findSample(samples, "build_info")
	if !ok || bi.value != 1 {
		t.Fatalf("build_info = %+v, %v; want value 1", bi, ok)
	}
	for _, k := range []string{"version", "go_version", "revision"} {
		if bi.labels[k] == "" {
			t.Fatalf("build_info missing label %q: %+v", k, bi.labels)
		}
	}
	if !strings.HasPrefix(bi.labels["go_version"], "go") {
		t.Fatalf("go_version = %q", bi.labels["go_version"])
	}
	if s, ok := findSample(samples, "process_start_time_seconds"); !ok || s.value <= 0 {
		t.Fatalf("process_start_time_seconds = %+v, %v", s, ok)
	}
	if s, ok := findSample(samples, "process_uptime_seconds"); !ok || s.value < 0 {
		t.Fatalf("process_uptime_seconds = %+v, %v", s, ok)
	}
	if s, ok := findSample(samples, "process_pid"); !ok || s.value <= 0 {
		t.Fatalf("process_pid = %+v, %v", s, ok)
	}
}

// TestWantsPrometheus covers the negotiation matrix: explicit ?format= wins
// in both directions, a scraper's Accept selects text, and a bare request
// stays JSON.
func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		url, accept string
		want        bool
	}{
		{"/metrics", "", false},
		{"/metrics", "application/json", false},
		{"/metrics?format=prometheus", "", true},
		{"/metrics?format=json", "text/plain", false},
		{"/metrics", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true},
		{"/metrics", "application/openmetrics-text;version=1.0.0", true},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", c.url, nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if got := WantsPrometheus(r); got != c.want {
			t.Errorf("WantsPrometheus(%q, Accept=%q) = %v, want %v", c.url, c.accept, got, c.want)
		}
	}
}

// TestMetricsHandlerNegotiation: the obs HTTP handler serves JSON by default
// and the text format to a scraper, with the right content types.
func TestMetricsHandlerNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("some.counter").Inc()
	h := Handler(reg, NewSlowLog(4), nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"some.counter"`) {
		t.Fatalf("JSON body missing counter: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("prometheus content type = %q", ct)
	}
	samples, _, _ := parsePrometheus(t, rec.Body.String())
	if s, ok := findSample(samples, "some_counter_total"); !ok || s.value != 1 {
		t.Fatalf("some_counter_total = %+v, %v", s, ok)
	}
}
