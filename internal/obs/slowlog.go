package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one retained query in the slow log.
type SlowEntry struct {
	Query    string        `json:"query"`
	Duration time.Duration `json:"duration_ns"`
	When     time.Time     `json:"when"`
	// TraceID joins the entry to the query's trace wherever else it surfaced
	// (explain output, a per-query sink, log lines).
	TraceID string `json:"trace_id,omitempty"`
	// PlanKey is the query's plan-cache key (the formula's canonical text,
	// from the trace's plan_key tag): the identity under which explain output
	// and the plan cache index the same query.
	PlanKey string `json:"plan_key,omitempty"`
	// Shard names the shard whose sub-query dominated a scatter-gather's
	// wall time (the trace's dominant_shard tag) — on coordinator slow logs
	// it points at where the time actually went.
	Shard string        `json:"shard,omitempty"`
	Trace TraceSnapshot `json:"trace"`
}

// SlowLog retains the N slowest queries seen, with their full traces — the
// backing store of /debug/slowlog. It implements TraceSink, so it plugs
// directly into the store's query path. An optional Logger emits one line
// per over-threshold query as it happens.
type SlowLog struct {
	mu        sync.Mutex
	cap       int
	entries   []SlowEntry // sorted by descending duration
	logger    Logger
	threshold time.Duration
}

// DefaultSlowLogSize is the retained-query count of a fresh slow log.
const DefaultSlowLogSize = 32

// NewSlowLog retains the n slowest queries (DefaultSlowLogSize when n < 1).
func NewSlowLog(n int) *SlowLog {
	if n < 1 {
		n = DefaultSlowLogSize
	}
	return &SlowLog{cap: n}
}

// SetLogger installs a logger invoked for every query at or above threshold;
// nil disables logging again.
func (l *SlowLog) SetLogger(lg Logger, threshold time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logger = lg
	l.threshold = threshold
	l.mu.Unlock()
}

// ObserveTrace implements TraceSink: a finished query enters the log if it is
// among the slowest seen.
func (l *SlowLog) ObserveTrace(t *Trace) {
	if l == nil || t == nil {
		return
	}
	d := t.Duration()
	l.mu.Lock()
	lg, threshold := l.logger, l.threshold
	if len(l.entries) == l.cap && d <= l.entries[len(l.entries)-1].Duration {
		l.mu.Unlock()
	} else {
		snap := t.Snapshot()
		e := SlowEntry{
			Query:    t.Name(),
			Duration: d,
			When:     time.Now(),
			TraceID:  snap.ID,
			PlanKey:  snap.Tags["plan_key"],
			Shard:    snap.Tags["dominant_shard"],
			Trace:    snap,
		}
		i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Duration < d })
		l.entries = append(l.entries, SlowEntry{})
		copy(l.entries[i+1:], l.entries[i:])
		l.entries[i] = e
		if len(l.entries) > l.cap {
			l.entries = l.entries[:l.cap]
		}
		l.mu.Unlock()
	}
	if lg != nil && d >= threshold {
		lg.Logf("slow query (%v): %s", d, t.Name())
	}
}

// Snapshot returns the retained entries, slowest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SlowEntry(nil), l.entries...)
}

// Reset empties the log.
func (l *SlowLog) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries = nil
	l.mu.Unlock()
}
