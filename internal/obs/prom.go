package obs

// Prometheus text exposition (format version 0.0.4): the registry's JSON
// snapshot rendered as scrapeable counters, gauges, and histograms with
// cumulative `le` buckets. The JSON form stays the default on /metrics for
// existing tools; Prometheus negotiates the text form via Accept or
// ?format=prometheus (see WantsPrometheus).

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PrometheusContentType is the content type of the 0.0.4 text format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether the request negotiates the Prometheus text
// format instead of the default JSON: an explicit ?format=prometheus (or
// format=json to force JSON), else an Accept header naming text/plain or
// OpenMetrics — what a Prometheus scraper sends.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// WritePrometheus renders a registry snapshot in the 0.0.4 text format.
// Metric names are sanitized to the Prometheus charset (dots become
// underscores); counters gain a _total suffix (pre-labeled names take it
// before their label block), histograms are exported in seconds with
// cumulative le buckets and +Inf. Described metrics (Registry.Describe) get
// a # HELP line before their # TYPE line. Output is sorted by name, so equal
// snapshots render byte-identically.
func WritePrometheus(w io.Writer, snap RegistrySnapshot) {
	for _, name := range sortedKeys(snap.Counters) {
		pn := promName(name, "_total")
		writeHelp(w, baseName(pn), snap.Help[name])
		fmt.Fprintf(w, "# TYPE %s counter\n", baseName(pn))
		fmt.Fprintf(w, "%s %d\n", pn, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		pn := promName(name, "")
		writeHelp(w, baseName(pn), snap.Help[name])
		fmt.Fprintf(w, "# TYPE %s gauge\n", baseName(pn))
		fmt.Fprintf(w, "%s %d\n", pn, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pn := promName(name, "_seconds")
		writeHelp(w, pn, snap.Help[name])
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.UpperBound != 0 {
				le = formatSeconds(b.UpperBound)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n", pn, formatSeconds(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

// PrometheusHandler serves one or more registries in the text format (later
// registries append; keep their metric names disjoint).
func PrometheusHandler(w http.ResponseWriter, regs ...*Registry) {
	w.Header().Set("Content-Type", PrometheusContentType)
	for _, reg := range regs {
		WritePrometheus(w, reg.Snapshot())
	}
}

// processStart anchors the uptime gauge; set once at init, matching the
// process's own start closely enough for scrape-interval resolution.
var processStart = time.Now()

// RegisterProcessMetrics adds the standard process-level gauges to reg:
//
//	build_info{...} 1        module version, go version, vcs revision
//	process_start_time_seconds
//	process_uptime_seconds   (computed at snapshot time)
//	process_pid
//
// Both long-running listeners (htlserve, htlquery -metrics-addr) call it so
// every scrape identifies the binary it came from.
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	name := fmt.Sprintf(`build_info{version="%s",go_version="%s",revision="%s"}`,
		promEscape(version), promEscape(runtime.Version()), promEscape(revision))
	reg.Gauge(name).Set(1)
	reg.Gauge("process_start_time_seconds").Set(processStart.Unix())
	reg.Gauge("process_pid").Set(int64(os.Getpid()))
	reg.GaugeFunc("process_uptime_seconds", func() int64 {
		return int64(time.Since(processStart).Seconds())
	})
}

// writeHelp emits a # HELP line when a description was registered. Newlines
// and backslashes are escaped per the exposition format.
func writeHelp(w io.Writer, base, help string) {
	if help == "" {
		return
	}
	help = strings.ReplaceAll(help, `\`, `\\`)
	help = strings.ReplaceAll(help, "\n", `\n`)
	fmt.Fprintf(w, "# HELP %s %s\n", base, help)
}

// promName sanitizes a registry name to the Prometheus charset and appends
// the type suffix. A pre-labeled name ("query.class{shard=...}") keeps its
// label block verbatim, with the type suffix inserted before it — the
// metrics-conventions lint holds every counter to the _total suffix whether
// labeled or not.
func promName(name, suffix string) string {
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name, labels = name[:i], name[i:]
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if suffix != "" && !strings.HasSuffix(b.String(), suffix) {
		b.WriteString(suffix)
	}
	return b.String() + labels
}

// baseName strips a label suffix for # TYPE lines.
func baseName(pn string) string {
	if i := strings.IndexByte(pn, '{'); i >= 0 {
		return pn[:i]
	}
	return pn
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatSeconds renders a duration as a seconds literal with full precision.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
