// Package timeseries gives the point-in-time metrics Registry a memory: a
// Sampler self-scrapes a registry snapshot on a fixed interval into a
// fixed-size ring buffer, and from the retained samples derives windowed
// rates for every counter, windowed means for every gauge, and windowed
// quantile trends (p50/p95/p99 over 1m/5m/15m) for every histogram — the
// /debug/timeseries document and the dashboard's sparklines.
//
// Zero external dependencies, race-clean, nil-safe, like the rest of
// internal/obs. The sampling goroutine is owned by Start and joined by
// Close; Close is idempotent and leak-free (the acceptance tests count
// goroutines across it). Tests drive the sampler deterministically with a
// fake clock and manual Scrape calls — no goroutine involved.
package timeseries

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"htlvideo/internal/obs"
)

// DefaultInterval is the scrape cadence used when Start is given a
// non-positive interval.
const DefaultInterval = 5 * time.Second

// ringCapacity bounds the retained samples. At the default 5s interval it
// covers the full 15m window with headroom; at faster intervals the longest
// windows simply see a shorter effective history (the rate uses the oldest
// retained sample).
const ringCapacity = 256

// Windows lists the trend horizons, shortest first.
var windowSpans = []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute}

var windowNames = []string{"1m", "5m", "15m"}

// sample is one scrape of the source registry.
type sample struct {
	at       time.Time
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]obs.HistogramSnapshot
}

// Sampler periodically snapshots a registry source into a ring buffer. The
// source is a function, not a *Registry, so a serving layer whose store (and
// therefore registry) is hot-swapped on reload keeps sampling whatever is
// current.
type Sampler struct {
	src   func() obs.RegistrySnapshot
	clock func() time.Time

	mu       sync.Mutex
	ring     [ringCapacity]sample
	n        int // filled slots
	next     int // next write position
	interval time.Duration
	started  bool
	closed   bool
	stop     chan struct{}
	done     chan struct{}
}

// Option tweaks a Sampler.
type Option func(*Sampler)

// WithClock injects the time source (tests; nil keeps time.Now).
func WithClock(now func() time.Time) Option {
	return func(s *Sampler) {
		if now != nil {
			s.clock = now
		}
	}
}

// New builds a sampler over src (which must be safe for concurrent use).
// Nothing samples until Start or Scrape is called.
func New(src func() obs.RegistrySnapshot, opts ...Option) *Sampler {
	s := &Sampler{src: src, clock: time.Now, interval: DefaultInterval}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Start launches the background scrape loop at the given interval
// (DefaultInterval when non-positive). Idempotent: a started or closed
// sampler ignores further Starts.
func (s *Sampler) Start(interval time.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.interval = interval
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go s.loop(interval, stop, done)
}

func (s *Sampler) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	s.Scrape() // prime: the first window opens immediately, not one tick late
	for {
		select {
		case <-t.C:
			s.Scrape()
		case <-stop:
			return
		}
	}
}

// Close stops the scrape loop and waits for its goroutine to exit.
// Idempotent and safe on a never-started sampler.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		done := s.done
		s.mu.Unlock()
		if done != nil {
			<-done
		}
		return
	}
	s.closed = true
	stop, done := s.stop, s.done
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if done != nil {
		<-done
	}
}

// Scrape takes one sample of the source now. The loop calls it on every
// tick; tests call it directly for deterministic histories.
func (s *Sampler) Scrape() {
	if s == nil || s.src == nil {
		return
	}
	snap := s.src() // outside the lock: the source may itself take locks
	s.mu.Lock()
	at := s.clock()
	s.ring[s.next] = sample{at: at, counters: snap.Counters, gauges: snap.Gauges, hists: snap.Histograms}
	s.next = (s.next + 1) % ringCapacity
	if s.n < ringCapacity {
		s.n++
	}
	s.mu.Unlock()
}

// samplesLocked returns the retained samples, oldest first.
func (s *Sampler) samplesLocked() []sample {
	out := make([]sample, 0, s.n)
	start := s.next - s.n
	if start < 0 {
		start += ringCapacity
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.ring[(start+i)%ringCapacity])
	}
	return out
}

// RateTrend is one counter's windowed view: the current cumulative value and
// the per-second increase over each window.
type RateTrend struct {
	Current int64              `json:"current"`
	Rates   map[string]float64 `json:"rates_per_sec"`
}

// GaugeTrend is one gauge's windowed view: the current value and the mean
// over each window's retained samples.
type GaugeTrend struct {
	Current int64              `json:"current"`
	Means   map[string]float64 `json:"means"`
}

// WindowQuantiles summarizes one histogram over one window: how many
// observations landed in it, their per-second rate, and the latency
// quantiles of just that window (cumulative bucket counts diffed between the
// window's endpoints).
type WindowQuantiles struct {
	Count      int64   `json:"count"`
	RatePerSec float64 `json:"rate_per_sec"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// QuantileTrend is one histogram's windowed views keyed by window name.
type QuantileTrend struct {
	Count   int64                      `json:"count"`
	Windows map[string]WindowQuantiles `json:"windows"`
}

// Doc is the /debug/timeseries JSON document.
type Doc struct {
	At         time.Time                `json:"at"`
	IntervalNS time.Duration            `json:"interval_ns"`
	Samples    int                      `json:"samples"`
	Counters   map[string]RateTrend     `json:"counters"`
	Gauges     map[string]GaugeTrend    `json:"gauges"`
	Histograms map[string]QuantileTrend `json:"histograms"`
}

// Trends derives the windowed document from the retained samples. With
// fewer than two samples every rate is zero.
func (s *Sampler) Trends() Doc {
	doc := Doc{
		Counters:   map[string]RateTrend{},
		Gauges:     map[string]GaugeTrend{},
		Histograms: map[string]QuantileTrend{},
	}
	if s == nil {
		return doc
	}
	s.mu.Lock()
	samples := s.samplesLocked()
	doc.IntervalNS = s.interval
	s.mu.Unlock()
	doc.Samples = len(samples)
	if len(samples) == 0 {
		return doc
	}
	latest := samples[len(samples)-1]
	doc.At = latest.at

	for name, cur := range latest.counters {
		t := RateTrend{Current: cur, Rates: map[string]float64{}}
		for wi, span := range windowSpans {
			base, elapsed := windowBase(samples, latest.at, span)
			if base == nil || elapsed <= 0 {
				t.Rates[windowNames[wi]] = 0
				continue
			}
			t.Rates[windowNames[wi]] = float64(cur-base.counters[name]) / elapsed.Seconds()
		}
		doc.Counters[name] = t
	}
	for name, cur := range latest.gauges {
		t := GaugeTrend{Current: cur, Means: map[string]float64{}}
		for wi, span := range windowSpans {
			var (
				sum float64
				n   int
			)
			for _, sm := range samples {
				if latest.at.Sub(sm.at) > span {
					continue
				}
				if v, ok := sm.gauges[name]; ok {
					sum += float64(v)
					n++
				}
			}
			if n == 0 {
				t.Means[windowNames[wi]] = float64(cur)
				continue
			}
			t.Means[windowNames[wi]] = sum / float64(n)
		}
		doc.Gauges[name] = t
	}
	for name, cur := range latest.hists {
		t := QuantileTrend{Count: cur.Count, Windows: map[string]WindowQuantiles{}}
		for wi, span := range windowSpans {
			base, elapsed := windowBase(samples, latest.at, span)
			var baseH obs.HistogramSnapshot
			if base != nil {
				baseH = base.hists[name]
			}
			diff := diffHistogram(cur, baseH)
			wq := WindowQuantiles{
				Count:      diff.Count,
				P50Seconds: diff.Quantile(0.50).Seconds(),
				P95Seconds: diff.Quantile(0.95).Seconds(),
				P99Seconds: diff.Quantile(0.99).Seconds(),
			}
			if elapsed > 0 {
				wq.RatePerSec = float64(diff.Count) / elapsed.Seconds()
			}
			t.Windows[windowNames[wi]] = wq
		}
		doc.Histograms[name] = t
	}
	return doc
}

// windowBase picks the oldest retained sample inside the window (closest to
// its far edge) and the elapsed time from it to the latest sample. It
// returns nil when the window holds only the latest sample.
func windowBase(samples []sample, latest time.Time, span time.Duration) (*sample, time.Duration) {
	for i := range samples[:len(samples)-1] {
		if latest.Sub(samples[i].at) <= span {
			return &samples[i], latest.Sub(samples[i].at)
		}
	}
	return nil, 0
}

// diffHistogram subtracts base from cur bucketwise, yielding the
// observations that happened inside the window. A base with mismatched
// buckets (a histogram created mid-window) counts as empty.
func diffHistogram(cur, base obs.HistogramSnapshot) obs.HistogramSnapshot {
	out := obs.HistogramSnapshot{
		Count:   cur.Count - base.Count,
		Sum:     cur.Sum - base.Sum,
		Buckets: append([]obs.HistogramBucket(nil), cur.Buckets...),
	}
	if len(base.Buckets) == len(cur.Buckets) {
		for i := range out.Buckets {
			if out.Buckets[i].UpperBound != base.Buckets[i].UpperBound {
				return out
			}
		}
		for i := range out.Buckets {
			out.Buckets[i].Count -= base.Buckets[i].Count
		}
	}
	return out
}

// Spark returns up to n per-step rates (most recent last) for the named
// counter, or for the named histogram's observation count — the dashboard's
// sparkline feed. Gauge names fall back to raw values per step.
func (s *Sampler) Spark(name string, n int) []float64 {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	samples := s.samplesLocked()
	s.mu.Unlock()
	if len(samples) < 2 {
		return nil
	}
	value := func(sm sample) (float64, bool, bool) { // value, isCumulative, ok
		if v, ok := sm.counters[name]; ok {
			return float64(v), true, true
		}
		if h, ok := sm.hists[name]; ok {
			return float64(h.Count), true, true
		}
		if v, ok := sm.gauges[name]; ok {
			return float64(v), false, true
		}
		return 0, false, false
	}
	var out []float64
	for i := 1; i < len(samples); i++ {
		cur, cum, ok := value(samples[i])
		if !ok {
			continue
		}
		if !cum {
			out = append(out, cur)
			continue
		}
		prev, _, ok := value(samples[i-1])
		if !ok {
			prev = 0
		}
		elapsed := samples[i].at.Sub(samples[i-1].at).Seconds()
		if elapsed <= 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, (cur-prev)/elapsed)
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// ServeHTTP serves the Trends document as JSON — mount the sampler at
// /debug/timeseries. A nil sampler serves an empty document.
func (s *Sampler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Trends())
}
