package timeseries

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"htlvideo/internal/obs"
)

// fakeClock is a hand-advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTrendsWindowedRates drives the sampler with a fake clock and checks the
// windowed counter rates, gauge means, and histogram quantile trends.
func TestTrendsWindowedRates(t *testing.T) {
	reg := obs.NewRegistry()
	qs := reg.Counter("query.total")
	inFlight := reg.Gauge("pool.in_flight")
	lat := reg.Histogram("query.latency", nil)

	clock := newFakeClock()
	s := New(reg.Snapshot, WithClock(clock.Now))

	// t=0: empty baseline.
	s.Scrape()
	// 12 scrapes 10s apart: 6 queries per scrape => 0.6/s, gauge alternating
	// 2 and 4 => mean 3, one 100ms observation per scrape.
	for i := 0; i < 12; i++ {
		clock.Advance(10 * time.Second)
		for j := 0; j < 6; j++ {
			qs.Inc()
		}
		if i%2 == 0 {
			inFlight.Set(2)
		} else {
			inFlight.Set(4)
		}
		lat.Observe(100 * time.Millisecond)
		s.Scrape()
	}

	doc := s.Trends()
	if doc.Samples != 13 {
		t.Fatalf("samples = %d, want 13", doc.Samples)
	}
	ct, ok := doc.Counters["query.total"]
	if !ok {
		t.Fatal("query.total missing from trends")
	}
	if ct.Current != 72 {
		t.Fatalf("current = %d, want 72", ct.Current)
	}
	// 1m window: base is the oldest sample within 60s of the latest — 6
	// scrapes back — so 36 queries over 60s = 0.6/s.
	if got := ct.Rates["1m"]; got < 0.59 || got > 0.61 {
		t.Fatalf("1m rate = %v, want ~0.6", got)
	}
	// 5m window covers the whole 120s history: 72 queries over 120s = 0.6/s.
	if got := ct.Rates["5m"]; got < 0.59 || got > 0.61 {
		t.Fatalf("5m rate = %v, want ~0.6", got)
	}

	gt := doc.Gauges["pool.in_flight"]
	if got := gt.Means["5m"]; got < 2.5 || got > 3.5 {
		t.Fatalf("5m gauge mean = %v, want ~3", got)
	}

	ht, ok := doc.Histograms["query.latency"]
	if !ok {
		t.Fatal("query.latency missing from trends")
	}
	w1 := ht.Windows["1m"]
	if w1.Count != 6 {
		t.Fatalf("1m histogram count = %d, want 6", w1.Count)
	}
	if w1.P50Seconds <= 0 {
		t.Fatalf("1m p50 = %v, want > 0 (observations are 100ms)", w1.P50Seconds)
	}
	if w1.RatePerSec < 0.09 || w1.RatePerSec > 0.11 {
		t.Fatalf("1m histogram rate = %v, want ~0.1", w1.RatePerSec)
	}
}

// TestTrendsEmptyAndSingle covers the degenerate histories: no samples, and
// one sample (every rate zero — there is nothing to diff against).
func TestTrendsEmptyAndSingle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Inc()
	s := New(reg.Snapshot, WithClock(newFakeClock().Now))

	doc := s.Trends()
	if doc.Samples != 0 || len(doc.Counters) != 0 {
		t.Fatalf("empty sampler: samples=%d counters=%d", doc.Samples, len(doc.Counters))
	}

	s.Scrape()
	doc = s.Trends()
	if doc.Samples != 1 {
		t.Fatalf("samples = %d, want 1", doc.Samples)
	}
	if got := doc.Counters["c"].Rates["1m"]; got != 0 {
		t.Fatalf("single-sample rate = %v, want 0", got)
	}

	// A nil sampler serves an empty document rather than panicking.
	var nilS *Sampler
	rec := httptest.NewRecorder()
	nilS.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeseries", nil))
	var out Doc
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("nil sampler served invalid JSON: %v", err)
	}
}

// TestRingEviction fills the ring past capacity and checks the oldest samples
// fall off while trends keep working.
func TestRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	clock := newFakeClock()
	s := New(reg.Snapshot, WithClock(clock.Now))
	for i := 0; i < ringCapacity+50; i++ {
		c.Inc()
		clock.Advance(time.Second)
		s.Scrape()
	}
	doc := s.Trends()
	if doc.Samples != ringCapacity {
		t.Fatalf("samples = %d, want %d (ring capacity)", doc.Samples, ringCapacity)
	}
	if doc.Counters["c"].Current != ringCapacity+50 {
		t.Fatalf("current = %d, want %d", doc.Counters["c"].Current, ringCapacity+50)
	}
}

// TestSpark checks per-step sparkline rates for counters, histograms, and raw
// gauge values.
func TestSpark(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", nil)
	clock := newFakeClock()
	s := New(reg.Snapshot, WithClock(clock.Now))

	s.Scrape()
	for i := 1; i <= 4; i++ {
		clock.Advance(time.Second)
		c.Add(int64(i)) // steps: 1,2,3,4 per second
		g.Set(int64(10 * i))
		h.Observe(time.Millisecond)
		s.Scrape()
	}

	if got := s.Spark("c", 10); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("counter spark = %v, want [1 2 3 4]", got)
	}
	if got := s.Spark("g", 2); len(got) != 2 || got[1] != 40 {
		t.Fatalf("gauge spark = %v, want trailing raw values [30 40]", got)
	}
	if got := s.Spark("h", 10); len(got) != 4 || got[0] != 1 {
		t.Fatalf("histogram spark = %v, want four 1/s steps", got)
	}
	if got := s.Spark("missing", 10); got != nil {
		t.Fatalf("unknown name spark = %v, want nil", got)
	}
}

// TestStartCloseLifecycle checks Start/Close idempotency and that Close joins
// the sampling goroutine — no leaks, counted before and after.
func TestStartCloseLifecycle(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	reg.Counter("c").Inc()
	s := New(reg.Snapshot)
	s.Start(time.Millisecond)
	s.Start(time.Millisecond) // idempotent
	// Wait for at least one scrape so the loop demonstrably ran.
	deadline := time.Now().Add(2 * time.Second)
	for s.Trends().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Trends().Samples == 0 {
		t.Fatal("sampler never scraped")
	}
	s.Close()
	s.Close()                 // idempotent
	s.Start(time.Millisecond) // a closed sampler must not restart
	time.Sleep(5 * time.Millisecond)

	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked across Close: before=%d after=%d", before, got)
	}

	// A never-started sampler closes cleanly too.
	New(reg.Snapshot).Close()
}

// TestConcurrentScrape hammers Scrape/Trends/Spark from many goroutines while
// the source registry is being written — the -race proof for the sampler.
func TestConcurrentScrape(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h", nil)
	s := New(reg.Snapshot)
	s.Start(100 * time.Microsecond)
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(time.Microsecond)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Scrape()
				_ = s.Trends()
				_ = s.Spark("c", 20)
			}
		}()
	}
	wg.Wait()
}
