package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"htlvideo/internal/faultinject"
)

// writeLog builds a log with the given payloads and returns its bytes.
func writeLog(t testing.TB, dir string, payloads [][]byte) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, p := range payloads {
		if err := w.Append(uint64(i+1), p); err != nil {
			t.Fatalf("Append %d: %v", i+1, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return path, data
}

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%03d-%s", i+1, bytes.Repeat([]byte{byte(i)}, i%7)))
	}
	return out
}

// replayAll collects every record Replay surfaces.
func replayAll(t *testing.T, path string) ([]Record, ReplayInfo) {
	t.Helper()
	var recs []Record
	info, err := Replay(path, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, info
}

func TestWALRoundTrip(t *testing.T) {
	payloads := testPayloads(10)
	path, data := writeLog(t, t.TempDir(), payloads)
	want := headerSize
	for _, p := range payloads {
		want += FrameSize(len(p))
	}
	if len(data) != want {
		t.Fatalf("log is %d bytes, want %d", len(data), want)
	}
	recs, info := replayAll(t, path)
	if info.TornBytes != 0 || info.Records != len(payloads) || info.LastSeq != uint64(len(payloads)) {
		t.Fatalf("info = %+v", info)
	}
	if int(info.ValidSize) != len(data) {
		t.Fatalf("ValidSize = %d, want %d", info.ValidSize, len(data))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.Seq, r.Payload, i+1, payloads[i])
		}
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	info, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func(Record) error {
		t.Fatal("callback on a missing file")
		return nil
	})
	if err != nil || info.Records != 0 || info.ValidSize != 0 {
		t.Fatalf("info = %+v, err = %v", info, err)
	}
}

// TestWALEveryBytePrefix is the torn-write property at the log layer: for
// every byte prefix of a real log, replay must surface exactly the records
// whose frames fit whole in the prefix — never a panic, never a partial or
// phantom record — and Open over the prefix must truncate the tear and accept
// further appends.
func TestWALEveryBytePrefix(t *testing.T) {
	payloads := testPayloads(8)
	_, data := writeLog(t, t.TempDir(), payloads)

	// committed[i] = records fully contained in a prefix of length i.
	committed := make([]int, len(data)+1)
	n, off := 0, headerSize
	for i := range committed {
		if n < len(payloads) && i >= off+FrameSize(len(payloads[n])) {
			off += FrameSize(len(payloads[n]))
			n++
		}
		committed[i] = n
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatalf("cut %d: WriteFile: %v", cut, err)
		}
		recs, info := replayAll(t, path)
		if len(recs) != committed[cut] {
			t.Fatalf("cut %d: %d records, want %d", cut, len(recs), committed[cut])
		}
		for i, r := range recs {
			if r.Seq != uint64(i+1) || !bytes.Equal(r.Payload, payloads[i]) {
				t.Fatalf("cut %d: record %d corrupt", cut, i)
			}
		}
		if info.ValidSize+info.TornBytes != int64(cut) {
			t.Fatalf("cut %d: ValidSize %d + TornBytes %d != %d", cut, info.ValidSize, info.TornBytes, cut)
		}
		// Recovery must resume cleanly: open, append one more record, replay.
		w, open, err := Open(path, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if open.Records != committed[cut] {
			t.Fatalf("cut %d: Open recovered %d records, want %d", cut, open.Records, committed[cut])
		}
		next := uint64(committed[cut]) + 1
		if err := w.Append(next, []byte("after-recovery")); err != nil {
			t.Fatalf("cut %d: Append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		recs, info = replayAll(t, path)
		if len(recs) != committed[cut]+1 || info.TornBytes != 0 {
			t.Fatalf("cut %d: after recovery %d records (torn %d), want %d", cut, len(recs), info.TornBytes, committed[cut]+1)
		}
	}
}

// TestWALByteFlipDetected flips every byte of the log body in turn and
// asserts the CRC framing detects it: replay yields exactly the frames before
// the flipped one, never anything past it.
func TestWALByteFlipDetected(t *testing.T) {
	payloads := testPayloads(6)
	_, data := writeLog(t, t.TempDir(), payloads)

	// frameOf[i] = index of the frame containing byte i.
	frameOf := make([]int, len(data))
	off := headerSize
	for f, p := range payloads {
		for i := 0; i < FrameSize(len(p)); i++ {
			frameOf[off+i] = f
		}
		off += FrameSize(len(p))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	for pos := headerSize; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatalf("pos %d: WriteFile: %v", pos, err)
		}
		recs, info := replayAll(t, path)
		if len(recs) != frameOf[pos] {
			t.Fatalf("flip at %d (frame %d): replay surfaced %d records", pos, frameOf[pos], len(recs))
		}
		if info.TornBytes == 0 {
			t.Fatalf("flip at %d: corruption not reported", pos)
		}
	}
	// A flipped header is not a log at all.
	mut := append([]byte(nil), data...)
	mut[0] ^= 0x40
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWALSeqDiscontinuityStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path, data := writeLog(t, dir, testPayloads(4))
	// Rewrite frame 3's sequence from 3 to 7 with a valid CRC: bytes that
	// checksum but do not chain.
	off := headerSize
	for i := 0; i < 2; i++ {
		off += FrameSize(len(testPayloads(4)[i]))
	}
	p := testPayloads(4)[2]
	frame := data[off : off+FrameSize(len(p))]
	frame[4+7] = 7 // low byte of the big-endian seq
	// Recompute the CRC so only the chaining is wrong.
	var fixed = frameCRC(7, p)
	frame[12] = byte(fixed >> 24)
	frame[13] = byte(fixed >> 16)
	frame[14] = byte(fixed >> 8)
	frame[15] = byte(fixed)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := replayAll(t, path)
	if len(recs) != 2 || info.TornBytes == 0 {
		t.Fatalf("replay past a sequence break: %d records, torn %d", len(recs), info.TornBytes)
	}
}

func TestWALResetPreservesSequence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if w.Size() != int64(HeaderSize()) {
		t.Fatalf("Size after Reset = %d", w.Size())
	}
	if err := w.Append(3, []byte("stale")); err == nil {
		t.Fatal("Reset lost the sequence counter")
	}
	if err := w.Append(4, []byte("fresh")); err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 1 || recs[0].Seq != 4 {
		t.Fatalf("after Reset replay = %+v", recs)
	}
}

// A checkpoint persists state elsewhere and truncates the log, so after a
// process restart the log alone under-reports the committed sequence.
// StartSeq floors the reopened writer's counter; the last replayed record
// still wins when it is higher.
func TestWALStartSeqFloorsSequence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncNever, StartSeq: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(8, []byte("stale")); err == nil {
		t.Fatal("StartSeq ignored: stale sequence accepted")
	}
	if err := w.Append(9, []byte("fresh")); err != nil {
		t.Fatalf("Append after StartSeq: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with a StartSeq behind the log: the replayed record wins.
	w, info, err := Open(path, Options{Policy: SyncNever, StartSeq: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 9 {
		t.Fatalf("replayed LastSeq = %d, want 9", info.LastSeq)
	}
	if err := w.Append(10, []byte("next")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 2 || recs[0].Seq != 9 || recs[1].Seq != 10 {
		t.Fatalf("final replay = %+v", recs)
	}
}

func TestWALInjectedShortWritePoisonsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(uint64(i), []byte("committed")); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALAppend, Key: faultinject.KeyAny,
		Kind: faultinject.KindShortWrite, Bytes: 5,
	}))
	defer faultinject.Disarm()
	if err := w.Append(4, []byte("torn")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected append error = %v", err)
	}
	// The writer stands in for the crashed process: poisoned until reopen.
	if err := w.Append(4, []byte("retry")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append on a poisoned writer = %v", err)
	}
	w.Close()
	faultinject.Disarm()

	// The file holds 3 frames plus 5 torn bytes; recovery truncates them.
	recs, info := replayAll(t, path)
	if len(recs) != 3 || info.TornBytes != 5 {
		t.Fatalf("replay after short write: %d records, torn %d", len(recs), info.TornBytes)
	}
	w2, open, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if open.Records != 3 || open.TornBytes != 5 {
		t.Fatalf("Open info = %+v", open)
	}
	if err := w2.Append(4, []byte("after")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
}

func TestWALInjectedSyncErrorPoisons(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALSync, Key: faultinject.KeyAny, Kind: faultinject.KindError,
	}))
	if err := w.Append(2, []byte("lost")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected sync error = %v", err)
	}
	faultinject.Disarm()
	// Fsyncgate: a failed fsync leaves the kernel state unknowable, so the
	// writer must refuse further work even after the fault clears.
	if err := w.Append(2, []byte("retry")); !errors.Is(err, ErrWriterFailed) {
		t.Fatalf("append after failed fsync = %v", err)
	}
	w.Close()
	// The unacknowledged frame was truncated away: replay sees only record 1.
	recs, info := replayAll(t, path)
	if len(recs) != 1 || info.TornBytes != 0 {
		t.Fatalf("replay after sync failure: %d records, torn %d", len(recs), info.TornBytes)
	}
}

func TestWALInjectedAppendErrorLeavesWriterUsable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// A whole-operation failure (N=0: nothing reached the file) does not
	// poison — the log still matches the acknowledged set exactly.
	faultinject.Arm(faultinject.NewPlan(1, faultinject.Rule{
		Site: faultinject.SiteWALAppend, Key: int64(HeaderSize()), Kind: faultinject.KindError,
	}))
	if err := w.Append(1, []byte("fails")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected append error = %v", err)
	}
	faultinject.Disarm()
	if err := w.Append(1, []byte("works")); err != nil {
		t.Fatalf("append after whole-operation failure: %v", err)
	}
}

func TestWALSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	synced := make(chan struct{}, 16)
	w, _, err := Open(path, Options{
		Policy: SyncInterval, Interval: time.Millisecond,
		OnSync: func(err error) {
			if err == nil {
				select {
				case synced <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("interval")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-synced:
	case <-time.After(5 * time.Second):
		t.Fatal("background flusher never synced")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornHeaderRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(path, []byte(Magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := replayAll(t, path)
	if len(recs) != 0 || info.TornBytes != 3 || info.ValidSize != 0 {
		t.Fatalf("torn header: %d records, info %+v", len(recs), info)
	}
	w, _, err := Open(path, Options{Policy: SyncNever})
	if err != nil {
		t.Fatalf("Open over a torn header: %v", err)
	}
	if err := w.Append(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ = replayAll(t, path)
	if len(recs) != 1 {
		t.Fatalf("after header recovery: %d records", len(recs))
	}
}

// FuzzWALReplay feeds arbitrary bytes to recovery: it must never panic, must
// account for every byte (committed prefix + torn tail = file), and the
// committed prefix it reports must itself replay cleanly to the same records.
func FuzzWALReplay(f *testing.F) {
	payloads := testPayloads(3)
	dir := f.TempDir()
	_, valid := writeLog(f, dir, payloads)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var recs []Record
		info, err := Replay(path, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			return // bad magic or real IO error: rejected, not mis-read
		}
		if info.ValidSize < 0 || info.ValidSize+info.TornBytes != int64(len(data)) {
			t.Fatalf("bytes unaccounted for: %+v over %d bytes", info, len(data))
		}
		if info.Records != len(recs) {
			t.Fatalf("Records = %d, callback saw %d", info.Records, len(recs))
		}
		// The committed prefix is stable: replaying just it yields the same
		// records and no torn tail.
		if err := os.WriteFile(path, data[:info.ValidSize], 0o644); err != nil {
			t.Skip()
		}
		var again []Record
		info2, err := Replay(path, func(r Record) error {
			again = append(again, r)
			return nil
		})
		if err != nil {
			t.Fatalf("replaying the committed prefix: %v", err)
		}
		if info2.TornBytes != 0 || info2.Records != info.Records || info2.ValidSize != info.ValidSize {
			t.Fatalf("committed prefix unstable: %+v then %+v", info, info2)
		}
		for i := range recs {
			if recs[i].Seq != again[i].Seq || !bytes.Equal(recs[i].Payload, again[i].Payload) {
				t.Fatalf("record %d changed between replays", i)
			}
		}
	})
}
