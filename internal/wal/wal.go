// Package wal is an append-only write-ahead log of opaque records: the
// durability substrate of the store's crash-safe mode. Records are framed
// with a length prefix, a monotonically increasing sequence number, and a
// CRC32C checksum, so recovery can tell exactly how much of the log was
// committed before a crash:
//
//	offset 0                    8
//	[ magic "HTLWAL\x00\x01"    ]                         file header
//	[ len u32 | seq u64 | crc32c u32 | payload len bytes ] one record frame
//	[ ... more frames ...       ]
//
// The checksum covers the sequence number and the payload, so a frame is
// valid only as the exact bytes the writer committed. A crash mid-append
// leaves a torn final frame — a truncated length prefix, a truncated
// payload, or a checksum mismatch — and Replay stops at the last valid
// frame, reporting the torn tail for Open to truncate away. Nothing past
// the first invalid frame is ever surfaced: the log has no resynchronization
// points by design, because records are causally ordered store mutations and
// replaying a record whose predecessor was lost would corrupt the store.
//
// Durability is governed by a sync policy: SyncAlways fsyncs every append
// before reporting it committed (a crash never loses an acknowledged
// record), SyncInterval fsyncs on a background cadence (bounded loss
// window), SyncNever leaves flushing to the OS (contents survive process
// crashes but not system crashes). Appends that fail mid-frame truncate the
// torn frame back off the log when they can, so the on-disk log only ever
// contains acknowledged records; when the truncate itself fails the writer
// poisons itself and every later append fails until the log is reopened.
//
// The writer calls internal/faultinject at SiteWALAppend and SiteWALSync,
// so crash tests can tear frames, fail fsyncs, and kill the process at
// exact byte offsets.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"htlvideo/internal/faultinject"
)

// Magic opens every log file; the final byte versions the format.
const Magic = "HTLWAL\x00\x01"

// headerSize is the file header's length in bytes.
const headerSize = len(Magic)

// frameOverhead is the per-record framing cost: length, sequence, checksum.
const frameOverhead = 4 + 8 + 4

// MaxRecordSize caps one record's payload. The limit exists so a corrupt
// length prefix can never drive replay into a multi-gigabyte allocation; it
// is far above any store mutation's real size.
const MaxRecordSize = 64 << 20

// castagnoli is the CRC32C polynomial table (the checksum ext4, iSCSI and
// every modern WAL use; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appends are made durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every append returns: an acknowledged
	// record survives any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence (Options.Interval): a
	// crash loses at most one interval of acknowledged records.
	SyncInterval
	// SyncNever never fsyncs: the OS flushes when it pleases. Acknowledged
	// records survive a process crash (the kernel has them) but not a
	// system crash.
	SyncNever
)

// String names the policy for flags and metrics.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy reads a policy name ("always", "interval", "never").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Options configure a Writer.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is SyncInterval's cadence (default 100ms).
	Interval time.Duration
	// StartSeq floors the writer's sequence counter. A checkpoint persists
	// state beyond the log and truncates it, so after reopening, the log
	// alone under-reports the last committed sequence; callers pass the
	// checkpoint's sequence here and the writer resumes from whichever is
	// higher, it or the last replayed record.
	StartSeq uint64
	// OnAppend, when set, observes every append attempt with the frame
	// size and its outcome (metrics).
	OnAppend func(bytes int, err error)
	// OnSync, when set, observes every fsync attempt (metrics).
	OnSync func(err error)
}

// Record is one committed log entry.
type Record struct {
	// Seq is the record's sequence number; writers assign them strictly
	// increasing by one.
	Seq uint64
	// Payload is the record body, opaque to the log.
	Payload []byte
}

// ReplayInfo summarizes one recovery scan.
type ReplayInfo struct {
	// ValidSize is the byte length of the committed prefix: the file
	// header plus every whole valid frame. Open truncates the file here.
	ValidSize int64
	// TornBytes is how much followed the committed prefix — a torn final
	// frame after a crash, or garbage. Zero for a cleanly closed log.
	TornBytes int64
	// Records counts the valid records scanned; LastSeq is the final
	// one's sequence number (zero when Records is zero).
	Records int
	LastSeq uint64
}

// ErrWriterFailed poisons a writer whose log may hold a torn frame it could
// not truncate away (or whose fsync state is unknown): every later append
// fails with it, and the log must be reopened — which re-runs recovery — to
// resume.
var ErrWriterFailed = errors.New("wal: writer failed; reopen the log to recover")

// Replay scans the log at path, calling fn for every valid record in order.
// It never fails on a torn or corrupt tail — that is the normal shape of a
// post-crash log — it just stops there and reports the committed prefix. A
// missing file is an empty log. Errors are real IO failures reading the
// file, a malformed header, or an error returned by fn (which aborts the
// scan and is returned wrapped).
//
// The scan also enforces the writer's sequencing contract: each record's
// sequence number must be exactly its predecessor's plus one. A sequence
// break means the bytes are not a log this package wrote (or a corruption
// the per-frame checksums happened to miss), and the scan stops at the last
// record before the break, treating the rest as torn.
func Replay(path string, fn func(Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return info, fmt.Errorf("wal: sizing %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return info, fmt.Errorf("wal: rewinding %s: %w", path, err)
	}
	if size == 0 {
		// Created but never written (a crash between create and header).
		return info, nil
	}
	hdr := make([]byte, headerSize)
	if size < int64(headerSize) {
		// A torn header: committed prefix is empty.
		info.TornBytes = size
		return info, nil
	}
	if _, err := io.ReadFull(f, hdr); err != nil {
		return info, fmt.Errorf("wal: reading %s header: %w", path, err)
	}
	if string(hdr) != Magic {
		return info, fmt.Errorf("wal: %s is not a write-ahead log (bad magic)", path)
	}
	info.ValidSize = int64(headerSize)
	var (
		frameHdr [frameOverhead]byte
		payload  []byte
	)
	for {
		_, err := io.ReadFull(f, frameHdr[:])
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			info.TornBytes = size - info.ValidSize
			return info, nil
		}
		if err != nil {
			return info, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		length := binary.BigEndian.Uint32(frameHdr[0:4])
		seq := binary.BigEndian.Uint64(frameHdr[4:12])
		sum := binary.BigEndian.Uint32(frameHdr[12:16])
		if length > MaxRecordSize || info.ValidSize+int64(frameOverhead)+int64(length) > size {
			// An impossible or file-exceeding length: a torn length prefix.
			info.TornBytes = size - info.ValidSize
			return info, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				info.TornBytes = size - info.ValidSize
				return info, nil
			}
			return info, fmt.Errorf("wal: reading %s: %w", path, err)
		}
		if frameCRC(seq, payload) != sum {
			info.TornBytes = size - info.ValidSize
			return info, nil
		}
		if info.Records > 0 && seq != info.LastSeq+1 {
			info.TornBytes = size - info.ValidSize
			return info, nil
		}
		if fn != nil {
			// The callback gets its own copy: the scan buffer is reused.
			rec := Record{Seq: seq, Payload: append([]byte(nil), payload...)}
			if err := fn(rec); err != nil {
				return info, fmt.Errorf("wal: applying record %d: %w", seq, err)
			}
		}
		info.Records++
		info.LastSeq = seq
		info.ValidSize += int64(frameOverhead) + int64(length)
	}
	return info, nil
}

// frameCRC is the checksum of one frame: CRC32C over the sequence number
// and the payload (the length is implicitly covered — a wrong length reads
// the wrong window and the sum cannot match).
func frameCRC(seq uint64, payload []byte) uint32 {
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	sum := crc32.Update(0, castagnoli, seqb[:])
	return crc32.Update(sum, castagnoli, payload)
}

// Writer appends records to a log file. It is safe for concurrent use; in
// practice the store serializes appends under its commit lock.
type Writer struct {
	opts Options
	path string

	mu      sync.Mutex
	f       *os.File
	size    int64
	lastSeq uint64
	failed  error
	closed  bool
	dirty   bool // bytes appended since the last successful fsync

	// stop/done manage the SyncInterval flusher goroutine.
	stop chan struct{}
	done chan struct{}
}

// Open opens the log at path for appending, creating it (and fsyncing its
// directory so the creation survives a crash) when absent. Any torn tail
// left by a crash is truncated away first, so the writer always starts at
// the end of the committed prefix; pos reports that prefix (what a prior
// Replay over the same file saw).
func Open(path string, opts Options) (*Writer, ReplayInfo, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	info, err := Replay(path, nil)
	if err != nil {
		return nil, info, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	w := &Writer{opts: opts, path: path, f: f, size: info.ValidSize, lastSeq: info.LastSeq}
	if opts.StartSeq > w.lastSeq {
		w.lastSeq = opts.StartSeq
	}
	fail := func(e error) (*Writer, ReplayInfo, error) {
		f.Close()
		return nil, info, e
	}
	if info.ValidSize == 0 {
		// Fresh (or torn-header) log: write the header and make the file
		// itself durable — a crash after create must still find it.
		if err := f.Truncate(0); err != nil {
			return fail(fmt.Errorf("wal: truncating %s: %w", path, err))
		}
		if _, err := f.WriteAt([]byte(Magic), 0); err != nil {
			return fail(fmt.Errorf("wal: writing %s header: %w", path, err))
		}
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("wal: syncing %s: %w", path, err))
		}
		if err := SyncDir(filepath.Dir(path)); err != nil {
			return fail(err)
		}
		w.size = int64(headerSize)
	} else if info.TornBytes > 0 {
		if err := f.Truncate(info.ValidSize); err != nil {
			return fail(fmt.Errorf("wal: truncating torn tail of %s: %w", path, err))
		}
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("wal: syncing %s: %w", path, err))
		}
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		return fail(fmt.Errorf("wal: seeking %s: %w", path, err))
	}
	if opts.Policy == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w, info, nil
}

// flushLoop is the SyncInterval background flusher.
func (w *Writer) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.failed == nil && !w.closed {
				w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Append commits one record: frame it, write it, and fsync per policy. A nil
// error means the record is in the log (durably so under SyncAlways). On a
// write or sync failure the torn frame is truncated back off so the log
// never holds unacknowledged records; if even that fails the writer poisons
// itself (ErrWriterFailed) and the log must be reopened.
func (w *Writer) Append(seq uint64, payload []byte) error {
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), MaxRecordSize)
	}
	frame := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(frame[4:12], seq)
	binary.BigEndian.PutUint32(frame[12:16], frameCRC(seq, payload))
	copy(frame[frameOverhead:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case w.closed:
		return errors.New("wal: writer is closed")
	case w.failed != nil:
		return w.failed
	case seq != w.lastSeq+1:
		return fmt.Errorf("wal: sequence %d does not follow %d", seq, w.lastSeq)
	}
	err := w.writeFrame(frame)
	if w.opts.OnAppend != nil {
		w.opts.OnAppend(len(frame), err)
	}
	if err != nil {
		return err
	}
	w.lastSeq = seq
	return nil
}

// writeFrame performs the append's IO under the writer lock, consulting the
// fault-injection sites and undoing torn frames on failure.
func (w *Writer) writeFrame(frame []byte) error {
	if flt := faultinject.FireIO(faultinject.SiteWALAppend, w.size, len(frame)); flt != nil {
		// Inject the torn prefix a crash would leave, then die or fail. The
		// torn bytes stay in the file — they ARE the crash being simulated —
		// and the writer poisons itself, standing in for the dead process;
		// reopening the log runs the same recovery a restart would.
		if flt.N > 0 {
			w.f.Write(frame[:flt.N]) //nolint:errcheck // the injected outcome wins
		}
		if flt.Kill {
			flt.Exit()
		}
		if flt.N > 0 {
			w.failed = ErrWriterFailed
		}
		return flt.Err
	}
	if _, err := w.f.Write(frame); err != nil {
		// A real short write (ENOSPC, EIO): cut the torn frame back off so
		// the log only holds acknowledged records; if even that cannot be
		// confirmed, poison.
		w.undoTorn()
		return fmt.Errorf("wal: appending to %s: %w", w.path, err)
	}
	w.size += int64(len(frame))
	w.dirty = true
	if w.opts.Policy == SyncAlways {
		if err := w.syncLocked(); err != nil {
			// The frame reached the page cache but was never made durable.
			// Un-acknowledge it — and poison: after a failed fsync the
			// kernel's dirty-page state is unknowable (retrying fsync can
			// silently "succeed" without persisting), so only a reopen,
			// which re-reads what is actually on disk, is trustworthy.
			w.size -= int64(len(frame))
			w.undoTorn()
			w.failed = ErrWriterFailed
			return err
		}
	}
	return nil
}

// undoTorn truncates the file back to w.size (the last acknowledged
// record), poisoning the writer when the truncate cannot be confirmed.
func (w *Writer) undoTorn() {
	if err := w.f.Truncate(w.size); err != nil {
		w.failed = ErrWriterFailed
		return
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.failed = ErrWriterFailed
	}
}

// Sync forces an fsync now regardless of policy (checkpoints call it before
// trusting the log's contents).
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	var err error
	if flt := faultinject.FireIO(faultinject.SiteWALSync, w.size, 0); flt != nil {
		if flt.Kill {
			flt.Exit()
		}
		err = flt.Err
	} else {
		err = w.f.Sync()
	}
	if w.opts.OnSync != nil {
		w.opts.OnSync(err)
	}
	if err != nil {
		return fmt.Errorf("wal: syncing %s: %w", w.path, err)
	}
	w.dirty = false
	return nil
}

// Reset rotates the log after a checkpoint: every record is covered by the
// snapshot, so the file is truncated back to its header and fsynced. The
// sequence counter is preserved — later appends continue the store-wide
// numbering, and recovery filters replay by the snapshot's sequence.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	if err := w.f.Truncate(int64(headerSize)); err != nil {
		w.failed = ErrWriterFailed
		return fmt.Errorf("wal: rotating %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(int64(headerSize), io.SeekStart); err != nil {
		w.failed = ErrWriterFailed
		return fmt.Errorf("wal: rotating %s: %w", w.path, err)
	}
	w.size = int64(headerSize)
	if err := w.syncLocked(); err != nil {
		w.failed = ErrWriterFailed
		return err
	}
	return nil
}

// Size is the log's current length in bytes (header included).
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// LastSeq is the sequence number of the last acknowledged record (the
// recovered one at open, before any appends).
func (w *Writer) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Close flushes pending bytes (best effort under a failed writer), stops
// the background flusher, and closes the file. Appends after Close fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.failed == nil && w.dirty {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing %s: %w", w.path, cerr)
	}
	stop, done := w.stop, w.done
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// FrameSize reports the on-disk size of a record with the given payload
// length — the arithmetic crash harnesses use to aim at record boundaries.
func FrameSize(payloadLen int) int { return frameOverhead + payloadLen }

// HeaderSize reports the log file header's length.
func HeaderSize() int { return headerSize }

// SyncDir fsyncs a directory, making recent renames and creations in it
// durable. Rename-based atomic replacement (snapshots) and first writes of
// new files (the log itself) are only crash-safe once their directory entry
// is on disk.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening directory %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", dir, err)
	}
	return nil
}
