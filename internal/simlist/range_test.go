package simlist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRangeConstructors(t *testing.T) {
	for _, tc := range []struct {
		r        Range
		in, out  int64
		contains bool
	}{
		{IntAbove(5), 6, 5, true},
		{IntAtLeast(5), 5, 4, true},
		{IntBelow(5), 4, 5, true},
		{IntAtMost(5), 5, 6, true},
		{IntEq(5), 5, 4, true},
	} {
		if !tc.r.ContainsInt(tc.in) {
			t.Errorf("%v should contain %d", tc.r, tc.in)
		}
		if tc.r.ContainsInt(tc.out) {
			t.Errorf("%v should not contain %d", tc.r, tc.out)
		}
	}
}

func TestRangeEdges(t *testing.T) {
	if !IntAbove(math.MaxInt64).IsEmpty() {
		t.Fatal("y > MaxInt64 should be empty")
	}
	if !IntBelow(math.MinInt64).IsEmpty() {
		t.Fatal("y < MinInt64 should be empty")
	}
	if !IntRange(5, 4).IsEmpty() {
		t.Fatal("inverted range should be empty")
	}
}

func TestRangeIntersect(t *testing.T) {
	for _, tc := range []struct {
		a, b, want Range
	}{
		{AnyRange(), IntEq(3), IntEq(3)},
		{IntEq(3), AnyRange(), IntEq(3)},
		{IntRange(1, 10), IntRange(5, 20), IntRange(5, 10)},
		{IntRange(1, 4), IntRange(5, 20), EmptyRange()},
		{StrEq("a"), StrEq("a"), StrEq("a")},
		{StrEq("a"), StrEq("b"), EmptyRange()},
		{StrEq("a"), IntEq(1), EmptyRange()},
		{EmptyRange(), AnyRange(), EmptyRange()},
	} {
		if got := tc.a.Intersect(tc.b); !got.Equal(tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRangeContainsStr(t *testing.T) {
	if !StrEq("western").ContainsStr("western") || StrEq("western").ContainsStr("news") {
		t.Fatal("StrEq membership wrong")
	}
	if !AnyRange().ContainsStr("x") {
		t.Fatal("AnyRange should contain all strings")
	}
	if IntEq(3).ContainsStr("3") {
		t.Fatal("int range should not contain strings")
	}
}

func TestRangeString(t *testing.T) {
	for _, tc := range []struct {
		r    Range
		want string
	}{
		{AnyRange(), "any"},
		{EmptyRange(), "empty"},
		{StrEq("x"), `= "x"`},
		{IntRange(1, 5), "[1, 5]"},
		{IntAtLeast(1), "[1, +inf]"},
		{IntAtMost(5), "[-inf, 5]"},
	} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.r, got, tc.want)
		}
	}
}

// Property: intersection agrees with pointwise membership on ints.
func TestRangeIntersectProperty(t *testing.T) {
	f := func(a, b, c, d int8, v int8) bool {
		r1 := IntRange(int64(min(a, b)), int64(max(a, b)))
		r2 := IntRange(int64(min(c, d)), int64(max(c, d)))
		got := r1.Intersect(r2)
		val := int64(v)
		return got.ContainsInt(val) == (r1.ContainsInt(val) && r2.ContainsInt(val))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableSchema(t *testing.T) {
	tb := NewTable([]string{"x", "y"}, []string{"h"}, 20)
	if tb.ObjIndex("y") != 1 || tb.ObjIndex("z") != -1 {
		t.Fatal("ObjIndex wrong")
	}
	if tb.AttrIndex("h") != 0 || tb.AttrIndex("x") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	if err := tb.AddRow([]ObjectID{1}, []Range{AnyRange()}, Empty(20)); err == nil {
		t.Fatal("short bindings should be rejected")
	}
	if err := tb.AddRow([]ObjectID{1, 2}, nil, Empty(20)); err == nil {
		t.Fatal("missing ranges should be rejected")
	}
	if err := tb.AddRow([]ObjectID{1, 2}, []Range{EmptyRange()}, Empty(20)); err == nil {
		t.Fatal("empty range row should be rejected")
	}
	if err := tb.AddRow([]ObjectID{1, 2}, []Range{IntAtLeast(3)}, NewList(20, entry(1, 4, 7))); err != nil {
		t.Fatal(err)
	}
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTableValidateCatchesBadList(t *testing.T) {
	tb := NewTable([]string{"x"}, nil, 20)
	tb.Rows = append(tb.Rows, Row{Bindings: []ObjectID{1}, List: List{MaxSim: 5, Entries: []Entry{entry(1, 2, 3)}}})
	if err := tb.Validate(); err == nil {
		t.Fatal("row list max mismatch should fail validation")
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable([]string{"x"}, nil, 20)
	tb.MustAddRow([]ObjectID{9}, nil, Empty(20))
	tb.MustAddRow([]ObjectID{2}, nil, Empty(20))
	tb.MustAddRow([]ObjectID{5}, nil, Empty(20))
	tb.SortRows()
	var got []ObjectID
	for _, r := range tb.Rows {
		got = append(got, r.Bindings[0])
	}
	if got[0] != 2 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("SortRows order = %v", got)
	}
}

func TestMustAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddRow should panic on shape mismatch")
		}
	}()
	NewTable([]string{"x"}, nil, 20).MustAddRow(nil, nil, Empty(20))
}
