package simlist

import (
	"fmt"
	"sort"
	"strings"
)

// ObjectID identifies an object across the frames of a video (paper §2.2:
// "each object in a picture is assigned an object id such that the same
// object in different pictures is given the same id").
type ObjectID int64

// Row is one row of a similarity table: an evaluation of the formula's free
// variables together with the similarity list that holds under it.
//
// Bindings are aligned with the owning table's ObjVars, Ranges with its
// AttrVars.
type Row struct {
	Bindings []ObjectID
	Ranges   []Range
	List     List
}

// Table is a similarity table (paper §3.2–3.3): the first columns name the
// free object variables, the next the free attribute variables (constrained
// to ranges), and the last column is a similarity list per row.
type Table struct {
	ObjVars  []string
	AttrVars []string
	MaxSim   float64
	Rows     []Row
}

// NewTable returns an empty table with the given schema and maximum
// similarity.
func NewTable(objVars, attrVars []string, maxSim float64) *Table {
	return &Table{ObjVars: objVars, AttrVars: attrVars, MaxSim: maxSim}
}

// AddRow appends a row after checking that its shape matches the schema.
func (t *Table) AddRow(bindings []ObjectID, ranges []Range, list List) error {
	if len(bindings) != len(t.ObjVars) {
		return fmt.Errorf("simlist: row has %d bindings, table has %d object variables", len(bindings), len(t.ObjVars))
	}
	if len(ranges) != len(t.AttrVars) {
		return fmt.Errorf("simlist: row has %d ranges, table has %d attribute variables", len(ranges), len(t.AttrVars))
	}
	for _, r := range ranges {
		if r.IsEmpty() {
			return fmt.Errorf("simlist: row carries an unsatisfiable attribute range")
		}
	}
	t.Rows = append(t.Rows, Row{Bindings: bindings, Ranges: ranges, List: list})
	return nil
}

// MustAddRow is AddRow that panics on schema mismatch; for construction of
// tables with statically known shape.
func (t *Table) MustAddRow(bindings []ObjectID, ranges []Range, list List) {
	if err := t.AddRow(bindings, ranges, list); err != nil {
		panic(err)
	}
}

// ObjIndex returns the column index of object variable name, or -1.
func (t *Table) ObjIndex(name string) int {
	for i, v := range t.ObjVars {
		if v == name {
			return i
		}
	}
	return -1
}

// AttrIndex returns the column index of attribute variable name, or -1.
func (t *Table) AttrIndex(name string) int {
	for i, v := range t.AttrVars {
		if v == name {
			return i
		}
	}
	return -1
}

// Validate checks every row against the schema and every list's invariants.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r.Bindings) != len(t.ObjVars) || len(r.Ranges) != len(t.AttrVars) {
			return fmt.Errorf("simlist: row %d shape mismatch", i)
		}
		if err := r.List.Validate(); err != nil {
			return fmt.Errorf("simlist: row %d: %w", i, err)
		}
		if r.List.MaxSim != t.MaxSim {
			return fmt.Errorf("simlist: row %d list max %g differs from table max %g", i, r.List.MaxSim, t.MaxSim)
		}
		for _, rg := range r.Ranges {
			if rg.IsEmpty() {
				return fmt.Errorf("simlist: row %d carries empty attribute range", i)
			}
		}
	}
	return nil
}

// SortRows orders rows deterministically (by bindings, then ranges) so that
// tables computed along different paths compare reproducibly.
func (t *Table) SortRows() {
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		for k := range a.Bindings {
			if a.Bindings[k] != b.Bindings[k] {
				return a.Bindings[k] < b.Bindings[k]
			}
		}
		for k := range a.Ranges {
			as, bs := a.Ranges[k].String(), b.Ranges[k].String()
			if as != bs {
				return as < bs
			}
		}
		return false
	})
}

// String renders the table for diagnostics.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table obj=%v attr=%v max=%g\n", t.ObjVars, t.AttrVars, t.MaxSim)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %v %v -> %v\n", r.Bindings, r.Ranges, r.List)
	}
	return b.String()
}
