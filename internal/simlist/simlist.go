// Package simlist implements similarity values, similarity lists and
// similarity tables — the data structures of paper §3.
//
// A similarity list is a relation of entries
//
//	([beg-id, end-id], (act-sim, max-sim))
//
// stating that a formula has actual similarity act-sim at every video segment
// whose id lies in [beg-id, end-id]. Ids not covered by any entry have actual
// similarity zero, so only non-zero runs are stored. max-sim depends only on
// the formula, so it is held once per list rather than per entry.
//
// A similarity table (paper §3.2–3.3) extends a list with an evaluation: each
// row binds the formula's free object variables to object ids, constrains its
// free attribute variables to value ranges, and carries the similarity list
// that holds under that evaluation.
package simlist

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"htlvideo/internal/interval"
)

// Sim is a similarity value: the pair (actual, maximum) of paper §2.5.
// For an exact match Act == Max; the fractional similarity is Act/Max.
type Sim struct {
	Act float64
	Max float64
}

// Frac returns the fractional similarity Act/Max, or 0 when Max == 0.
func (s Sim) Frac() float64 {
	if s.Max == 0 {
		return 0
	}
	return s.Act / s.Max
}

// Entry is one row of a similarity list: a run of segment ids sharing the
// same actual similarity value.
type Entry struct {
	Iv  interval.I
	Act float64
}

// List is a similarity list. Entries are sorted by Iv.Beg, pairwise disjoint,
// and carry strictly positive actual similarities not exceeding MaxSim.
type List struct {
	// MaxSim is the maximum possible similarity of the formula this list was
	// computed for. It is shared by every entry (paper §3.1).
	MaxSim  float64
	Entries []Entry
}

// NewList builds a list from entries that are already sorted and disjoint.
// It panics if the invariants do not hold; use Normalize for untrusted input.
func NewList(maxSim float64, entries ...Entry) List {
	l := List{MaxSim: maxSim, Entries: entries}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return l
}

// Empty returns an empty list (everywhere-zero similarity) with the given
// maximum.
func Empty(maxSim float64) List { return List{MaxSim: maxSim} }

// Validate checks the list invariants: entries sorted by beginning id,
// pairwise disjoint intervals, each interval valid, and 0 < Act <= MaxSim.
func (l List) Validate() error {
	prevEnd := 0
	first := true
	for i, e := range l.Entries {
		if !e.Iv.Valid() {
			return fmt.Errorf("simlist: entry %d has invalid interval %v", i, e.Iv)
		}
		if !first && e.Iv.Beg <= prevEnd {
			return fmt.Errorf("simlist: entry %d interval %v overlaps or is out of order (prev end %d)", i, e.Iv, prevEnd)
		}
		if e.Act <= 0 {
			return fmt.Errorf("simlist: entry %d has non-positive similarity %g", i, e.Act)
		}
		const eps = 1e-9
		if e.Act > l.MaxSim+eps {
			return fmt.Errorf("simlist: entry %d similarity %g exceeds maximum %g", i, e.Act, l.MaxSim)
		}
		prevEnd = e.Iv.End
		first = false
	}
	return nil
}

// Len returns the number of entries (the paper's length(L)).
func (l List) Len() int { return len(l.Entries) }

// IsEmpty reports whether the list has no entries.
func (l List) IsEmpty() bool { return len(l.Entries) == 0 }

// At returns the similarity value at segment id. Ids outside every entry get
// actual similarity 0.
func (l List) At(id int) Sim {
	// Binary search for the first entry ending at or after id.
	i := sort.Search(len(l.Entries), func(i int) bool { return l.Entries[i].Iv.End >= id })
	if i < len(l.Entries) && l.Entries[i].Iv.Contains(id) {
		return Sim{Act: l.Entries[i].Act, Max: l.MaxSim}
	}
	return Sim{Act: 0, Max: l.MaxSim}
}

// Span returns the smallest interval covering all entries. ok is false for an
// empty list.
func (l List) Span() (interval.I, bool) {
	if len(l.Entries) == 0 {
		return interval.I{}, false
	}
	return interval.I{Beg: l.Entries[0].Iv.Beg, End: l.Entries[len(l.Entries)-1].Iv.End}, true
}

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	out := List{MaxSim: l.MaxSim}
	out.Entries = append([]Entry(nil), l.Entries...)
	return out
}

// Canonical returns an equivalent list in canonical form: entries sorted,
// disjoint, and adjacent entries with equal similarity merged into one.
// The receiver must already satisfy Validate; canonicalization only merges.
func (l List) Canonical() List {
	if len(l.Entries) == 0 {
		return List{MaxSim: l.MaxSim}
	}
	out := List{MaxSim: l.MaxSim, Entries: make([]Entry, 0, len(l.Entries))}
	cur := l.Entries[0]
	for _, e := range l.Entries[1:] {
		if cur.Iv.Adjacent(e.Iv) && cur.Act == e.Act {
			cur.Iv.End = e.Iv.End
			continue
		}
		out.Entries = append(out.Entries, cur)
		cur = e
	}
	out.Entries = append(out.Entries, cur)
	return out
}

// sweepEvent is one boundary of Normalize's sweep line.
type sweepEvent struct {
	pos   int
	act   float64
	enter bool
}

// sweepScratch pools Normalize's transient state (the event list, the
// lazy-deletion heap, the alive multiset). Normalize sits under every merge
// and level-modal aggregation, so these buffers churn hard; nothing in the
// scratch escapes into the returned list.
type sweepScratch struct {
	events []sweepEvent
	heap   maxHeap
	alive  map[float64]int
}

var sweepPool = sync.Pool{New: func() any {
	return &sweepScratch{alive: map[float64]int{}}
}}

// Normalize builds a valid list from arbitrary entries: it drops non-positive
// similarities, sorts by beginning id, resolves overlaps by keeping the
// maximum similarity on the overlap, clamps Act to maxSim, and merges equal
// adjacent runs. It is intended for ingesting untrusted or generator data.
func Normalize(maxSim float64, entries []Entry) List {
	// Sweep line over entry boundaries, keeping the maximum similarity among
	// the entries covering each elementary run. Overlap resolution uses a
	// lazy-deletion max-heap, so the whole pass is O(k log k).
	sc := sweepPool.Get().(*sweepScratch)
	defer func() {
		sc.events = sc.events[:0]
		sc.heap = sc.heap[:0]
		clear(sc.alive)
		sweepPool.Put(sc)
	}()
	events := sc.events[:0]
	for _, e := range entries {
		if e.Act <= 0 || !e.Iv.Valid() {
			continue
		}
		if e.Act > maxSim {
			e.Act = maxSim
		}
		events = append(events,
			sweepEvent{pos: e.Iv.Beg, act: e.Act, enter: true},
			sweepEvent{pos: e.Iv.End + 1, act: e.Act, enter: false})
	}
	sc.events = events
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	sc.heap = sc.heap[:0]
	heap := &sc.heap
	alive := sc.alive
	out := List{MaxSim: maxSim}
	i := 0
	for i < len(events) {
		pos := events[i].pos
		for i < len(events) && events[i].pos == pos {
			ev := events[i]
			if ev.enter {
				alive[ev.act]++
				heap.push(ev.act)
			} else {
				alive[ev.act]--
			}
			i++
		}
		// Discard heap tops that have fully exited.
		for heap.len() > 0 && alive[heap.top()] <= 0 {
			heap.pop()
		}
		cur := 0.0
		if heap.len() > 0 {
			cur = heap.top()
		}
		next := 1<<63 - 1
		if i < len(events) {
			next = events[i].pos
		}
		if cur > 0 && pos <= next-1 {
			out.Entries = append(out.Entries, Entry{Iv: interval.I{Beg: pos, End: next - 1}, Act: cur})
		}
	}
	return out.Canonical()
}

// maxHeap is a minimal float64 max-heap used by Normalize's sweep.
type maxHeap []float64

func (h maxHeap) len() int     { return len(h) }
func (h maxHeap) top() float64 { return h[0] }
func (h *maxHeap) push(v float64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] >= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *maxHeap) pop() float64 {
	s := *h
	topVal := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s[l] > s[big] {
			big = l
		}
		if r < n && s[r] > s[big] {
			big = r
		}
		if big == i {
			break
		}
		s[i], s[big] = s[big], s[i]
		i = big
	}
	*h = s
	return topVal
}

// Equal reports whether two lists denote the same similarity function, i.e.
// they have the same maximum and the same canonical entries.
func Equal(a, b List) bool {
	if a.MaxSim != b.MaxSim {
		return false
	}
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca.Entries) != len(cb.Entries) {
		return false
	}
	for i := range ca.Entries {
		if ca.Entries[i] != cb.Entries[i] {
			return false
		}
	}
	return true
}

// EqualApprox is Equal with a tolerance on similarity values (for comparing
// results computed along different floating-point paths, e.g. SQL vs direct).
func EqualApprox(a, b List, eps float64) bool {
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(a.MaxSim-b.MaxSim) > eps {
		return false
	}
	ca, cb := a.CanonicalApprox(eps), b.CanonicalApprox(eps)
	if len(ca.Entries) != len(cb.Entries) {
		return false
	}
	for i := range ca.Entries {
		if ca.Entries[i].Iv != cb.Entries[i].Iv || abs(ca.Entries[i].Act-cb.Entries[i].Act) > eps {
			return false
		}
	}
	return true
}

// CanonicalApprox merges adjacent entries whose similarities differ by at
// most eps.
func (l List) CanonicalApprox(eps float64) List {
	if len(l.Entries) == 0 {
		return List{MaxSim: l.MaxSim}
	}
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	out := List{MaxSim: l.MaxSim, Entries: make([]Entry, 0, len(l.Entries))}
	cur := l.Entries[0]
	for _, e := range l.Entries[1:] {
		if cur.Iv.Adjacent(e.Iv) && abs(cur.Act-e.Act) <= eps {
			cur.Iv.End = e.Iv.End
			continue
		}
		out.Entries = append(out.Entries, cur)
		cur = e
	}
	out.Entries = append(out.Entries, cur)
	return out
}

// Expand returns the dense per-id similarity over [1, n]: a slice of n
// actual-similarity values indexed by id-1. Used by the reference evaluator
// and tests; production code works on intervals.
func (l List) Expand(n int) []float64 {
	out := make([]float64, n)
	for _, e := range l.Entries {
		lo := max(e.Iv.Beg, 1)
		hi := min(e.Iv.End, n)
		for id := lo; id <= hi; id++ {
			out[id-1] = e.Act
		}
	}
	return out
}

// FromDense builds a canonical list from dense per-id actual similarities
// (index i holds the similarity of segment id i+1). Zero values are omitted.
func FromDense(maxSim float64, dense []float64) List {
	l := List{MaxSim: maxSim}
	i := 0
	for i < len(dense) {
		if dense[i] <= 0 {
			i++
			continue
		}
		j := i
		for j+1 < len(dense) && dense[j+1] == dense[i] {
			j++
		}
		l.Entries = append(l.Entries, Entry{Iv: interval.I{Beg: i + 1, End: j + 1}, Act: dense[i]})
		i = j + 1
	}
	return l
}

// String renders the list in the paper's notation, e.g.
// "([10 24], (10, 20)); ([25 60], (15, 20))".
func (l List) String() string {
	var b strings.Builder
	for i, e := range l.Entries {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "(%v, (%g, %g))", e.Iv, e.Act, l.MaxSim)
	}
	if len(l.Entries) == 0 {
		b.WriteString("(empty)")
	}
	return b.String()
}
