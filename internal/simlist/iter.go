package simlist

// Sorted access for threshold-style top-k retrieval: a RankIter yields one
// list's entries in ranked order — descending actual similarity, ties by
// ascending beginning id — without mutating the list, which is shared
// (memoized per plan node, cached per query result) and must stay immutable.
//
// The iterator is deliberately lazy. Construction scans the entries once for
// the best one and allocates nothing; the heap over the remaining entries is
// built only when the consumer advances past that head. A top-k scan over
// many videos therefore pays O(n) compares per list it merely *bounds* and
// the full O(n) copy + heapify only for the handful of lists that actually
// contribute results.

// RankIter iterates a similarity list's entries in ranked order.
type RankIter struct {
	src []Entry
	// head indexes the best entry of src (-1 when src is empty); it is the
	// first entry yielded, found by a plain scan with no allocation.
	head int
	// consumed counts entries already yielded; built marks the heap as
	// constructed (it stays nil for iterators never advanced past the head).
	consumed int
	built    bool
	heap     []Entry
}

// NewRankIter builds an iterator over l. Cost: one O(n) scan, no allocation
// beyond the iterator itself.
func NewRankIter(l List) *RankIter {
	it := &RankIter{src: l.Entries, head: -1}
	for i := range l.Entries {
		// Entries are sorted by beginning id, so on equal Act the first
		// maximum seen is the ranked-order winner.
		if it.head < 0 || l.Entries[i].Act > l.Entries[it.head].Act {
			it.head = i
		}
	}
	return it
}

// Remaining counts entries not yet yielded.
func (it *RankIter) Remaining() int { return len(it.src) - it.consumed }

// UpperBound returns an upper bound on the actual similarity of every entry
// the iterator has not yet yielded (yields are non-increasing in Act), or 0
// when the iterator is exhausted. This is the per-list bound a threshold
// top-k scan compares against its current k-th result.
func (it *RankIter) UpperBound() float64 {
	if e, ok := it.Peek(); ok {
		return e.Act
	}
	return 0
}

// Peek returns the best entry not yet yielded.
func (it *RankIter) Peek() (Entry, bool) {
	if it.consumed == 0 {
		if it.head < 0 {
			return Entry{}, false
		}
		return it.src[it.head], true
	}
	it.ensureHeap()
	if len(it.heap) == 0 {
		return Entry{}, false
	}
	return it.heap[0], true
}

// Pop yields the best entry not yet yielded.
func (it *RankIter) Pop() (Entry, bool) {
	if it.consumed == 0 {
		if it.head < 0 {
			return Entry{}, false
		}
		it.consumed++
		return it.src[it.head], true
	}
	it.ensureHeap()
	if len(it.heap) == 0 {
		return Entry{}, false
	}
	top := it.heap[0]
	n := len(it.heap) - 1
	it.heap[0] = it.heap[n]
	it.heap = it.heap[:n]
	entrySiftDown(it.heap, 0)
	it.consumed++
	return top, true
}

// ensureHeap copies the entries other than the head into a binary heap; it
// runs at most once, the first time the consumer advances past the head.
func (it *RankIter) ensureHeap() {
	if it.built {
		return
	}
	it.built = true
	if len(it.src) <= 1 {
		return
	}
	it.heap = make([]Entry, 0, len(it.src)-1)
	for i := range it.src {
		if i != it.head {
			it.heap = append(it.heap, it.src[i])
		}
	}
	for i := len(it.heap)/2 - 1; i >= 0; i-- {
		entrySiftDown(it.heap, i)
	}
}

// entryBefore is the per-list ranked order: descending actual similarity,
// ties by ascending beginning id — the restriction of the global retrieval
// order to one video's entries.
func entryBefore(a, b Entry) bool {
	if a.Act != b.Act {
		return a.Act > b.Act
	}
	return a.Iv.Beg < b.Iv.Beg
}

func entrySiftDown(h []Entry, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && entryBefore(h[l], h[best]) {
			best = l
		}
		if r < n && entryBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// MaxAct returns the greatest actual similarity in the list — its tight
// upper bound (0 for an empty list; at most MaxSim by the list invariant).
func (l List) MaxAct() float64 {
	best := 0.0
	for _, e := range l.Entries {
		if e.Act > best {
			best = e.Act
		}
	}
	return best
}
