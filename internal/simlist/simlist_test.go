package simlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"htlvideo/internal/interval"
)

func entry(beg, end int, act float64) Entry {
	return Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

func TestSimFrac(t *testing.T) {
	if got := (Sim{Act: 10, Max: 20}).Frac(); got != 0.5 {
		t.Fatalf("Frac = %g", got)
	}
	if got := (Sim{Act: 0, Max: 0}).Frac(); got != 0 {
		t.Fatalf("Frac of zero max = %g", got)
	}
}

func TestNewListValidates(t *testing.T) {
	l := NewList(20, entry(10, 50, 10), entry(55, 60, 15))
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping entries should panic")
		}
	}()
	NewList(20, entry(10, 50, 10), entry(50, 60, 15))
}

func TestValidateErrors(t *testing.T) {
	cases := []List{
		{MaxSim: 10, Entries: []Entry{{Iv: interval.I{Beg: 5, End: 3}, Act: 1}}},
		{MaxSim: 10, Entries: []Entry{entry(1, 2, 0)}},
		{MaxSim: 10, Entries: []Entry{entry(1, 2, -3)}},
		{MaxSim: 10, Entries: []Entry{entry(1, 2, 11)}},
		{MaxSim: 10, Entries: []Entry{entry(5, 9, 1), entry(2, 3, 1)}},
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAt(t *testing.T) {
	l := NewList(20, entry(10, 50, 10), entry(55, 60, 15), entry(90, 110, 12))
	for _, tc := range []struct {
		id  int
		act float64
	}{{9, 0}, {10, 10}, {50, 10}, {51, 0}, {55, 15}, {60, 15}, {61, 0}, {90, 12}, {110, 12}, {111, 0}} {
		got := l.At(tc.id)
		if got.Act != tc.act || got.Max != 20 {
			t.Errorf("At(%d) = %+v, want act %g max 20", tc.id, got, tc.act)
		}
	}
}

func TestSpan(t *testing.T) {
	l := NewList(20, entry(10, 50, 10), entry(90, 110, 12))
	sp, ok := l.Span()
	if !ok || sp != interval.New(10, 110) {
		t.Fatalf("Span = %v %v", sp, ok)
	}
	if _, ok := Empty(5).Span(); ok {
		t.Fatal("empty list should have no span")
	}
}

func TestCanonicalMergesEqualAdjacent(t *testing.T) {
	l := NewList(20, entry(25, 50, 15), entry(51, 60, 15), entry(61, 70, 12))
	c := l.Canonical()
	want := NewList(20, entry(25, 60, 15), entry(61, 70, 12))
	if !Equal(c, want) {
		t.Fatalf("Canonical = %v, want %v", c, want)
	}
}

func TestNormalize(t *testing.T) {
	l := Normalize(20, []Entry{
		entry(5, 10, 7),
		entry(8, 15, 9),                          // overlap: max wins on [8,10]
		entry(20, 25, 0),                         // dropped
		entry(1, 2, 30),                          // clamped to 20
		{Iv: interval.I{Beg: 9, End: 3}, Act: 5}, // invalid, dropped
	})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	wantAt := map[int]float64{1: 20, 2: 20, 5: 7, 7: 7, 8: 9, 10: 9, 15: 9, 16: 0, 20: 0}
	for id, act := range wantAt {
		if got := l.At(id).Act; got != act {
			t.Errorf("At(%d) = %g, want %g (list %v)", id, got, act, l)
		}
	}
}

func TestEqual(t *testing.T) {
	a := NewList(20, entry(1, 5, 3), entry(6, 9, 3))
	b := NewList(20, entry(1, 9, 3))
	if !Equal(a, b) {
		t.Fatal("canonically equal lists reported unequal")
	}
	c := NewList(21, entry(1, 9, 3))
	if Equal(a, c) {
		t.Fatal("different MaxSim should be unequal")
	}
	d := NewList(20, entry(1, 9, 4))
	if Equal(a, d) {
		t.Fatal("different sims should be unequal")
	}
}

func TestEqualApprox(t *testing.T) {
	a := NewList(20, entry(1, 9, 3))
	b := NewList(20, entry(1, 9, 3+1e-12))
	if !EqualApprox(a, b, 1e-9) {
		t.Fatal("lists within eps should compare equal")
	}
	if EqualApprox(a, NewList(20, entry(1, 9, 3.1)), 1e-9) {
		t.Fatal("lists beyond eps should compare unequal")
	}
}

func TestExpandFromDenseRoundTrip(t *testing.T) {
	l := NewList(20, entry(2, 4, 5), entry(7, 7, 9))
	dense := l.Expand(10)
	back := FromDense(20, dense)
	if !Equal(l, back) {
		t.Fatalf("round trip: %v -> %v", l, back)
	}
}

func TestExpandClampsToRange(t *testing.T) {
	l := NewList(20, entry(-3, 2, 5), entry(9, 15, 7))
	dense := l.Expand(10)
	if dense[0] != 5 || dense[1] != 5 || dense[2] != 0 || dense[8] != 7 || dense[9] != 7 {
		t.Fatalf("Expand = %v", dense)
	}
}

func TestString(t *testing.T) {
	l := NewList(20, entry(10, 24, 10))
	if got := l.String(); got != "([10 24], (10, 20))" {
		t.Fatalf("String = %q", got)
	}
	if got := Empty(3).String(); got != "(empty)" {
		t.Fatalf("empty String = %q", got)
	}
}

// randomEntries produces arbitrary (possibly overlapping, invalid) entries.
func randomEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		beg := rng.Intn(60) + 1
		es[i] = Entry{
			Iv:  interval.I{Beg: beg, End: beg + rng.Intn(10) - 2},
			Act: float64(rng.Intn(30)) - 2,
		}
	}
	return es
}

// Property: Normalize always yields a valid list, and its per-id values are
// bounded by the max over the input entries covering that id.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		es := randomEntries(rng, int(n%25))
		l := Normalize(20, es)
		if l.Validate() != nil {
			return false
		}
		for id := 0; id <= 80; id++ {
			want := 0.0
			for _, e := range es {
				if e.Iv.Valid() && e.Iv.Contains(id) && e.Act > 0 {
					want = max(want, min(e.Act, 20))
				}
			}
			if l.At(id).Act != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Canonical preserves the similarity function.
func TestCanonicalProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Normalize(20, randomEntries(rng, int(n%25)))
		c := l.Canonical()
		if c.Validate() != nil {
			return false
		}
		for id := 0; id <= 80; id++ {
			if l.At(id) != c.At(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
