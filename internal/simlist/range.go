package simlist

import (
	"fmt"
	"math"
)

// RangeKind discriminates the representable constraint shapes for attribute
// variables (paper §3.3: predicates on an attribute variable y are restricted
// to y <op> q with integer q, whose conjunctions form integer ranges, or
// y = q for non-integer attributes).
type RangeKind uint8

const (
	// RangeAny places no constraint on the attribute variable.
	RangeAny RangeKind = iota
	// RangeInt constrains the variable to the inclusive integer interval
	// [Lo, Hi].
	RangeInt
	// RangeStr constrains the variable to equal the string Str.
	RangeStr
	// RangeEmpty is the unsatisfiable constraint (empty intersection).
	RangeEmpty
)

// Range is a constraint on the value of an attribute variable.
type Range struct {
	Kind RangeKind
	Lo   int64 // RangeInt: inclusive lower bound (math.MinInt64 = unbounded)
	Hi   int64 // RangeInt: inclusive upper bound (math.MaxInt64 = unbounded)
	Str  string
}

// AnyRange returns the unconstrained range.
func AnyRange() Range { return Range{Kind: RangeAny} }

// EmptyRange returns the unsatisfiable range.
func EmptyRange() Range { return Range{Kind: RangeEmpty} }

// IntRange returns the constraint lo <= y <= hi; an empty interval yields the
// unsatisfiable range.
func IntRange(lo, hi int64) Range {
	if lo > hi {
		return EmptyRange()
	}
	return Range{Kind: RangeInt, Lo: lo, Hi: hi}
}

// IntAbove returns the constraint y > v (i.e. y >= v+1 on integers).
func IntAbove(v int64) Range {
	if v == math.MaxInt64 {
		return EmptyRange()
	}
	return IntRange(v+1, math.MaxInt64)
}

// IntAtLeast returns the constraint y >= v.
func IntAtLeast(v int64) Range { return IntRange(v, math.MaxInt64) }

// IntBelow returns the constraint y < v.
func IntBelow(v int64) Range {
	if v == math.MinInt64 {
		return EmptyRange()
	}
	return IntRange(math.MinInt64, v-1)
}

// IntAtMost returns the constraint y <= v.
func IntAtMost(v int64) Range { return IntRange(math.MinInt64, v) }

// IntEq returns the constraint y == v.
func IntEq(v int64) Range { return IntRange(v, v) }

// StrEq returns the constraint y == s for a string-valued attribute.
func StrEq(s string) Range { return Range{Kind: RangeStr, Str: s} }

// IsEmpty reports whether the range is unsatisfiable.
func (r Range) IsEmpty() bool { return r.Kind == RangeEmpty }

// ContainsInt reports whether integer v satisfies the range.
func (r Range) ContainsInt(v int64) bool {
	switch r.Kind {
	case RangeAny:
		return true
	case RangeInt:
		return r.Lo <= v && v <= r.Hi
	default:
		return false
	}
}

// ContainsStr reports whether string s satisfies the range.
func (r Range) ContainsStr(s string) bool {
	switch r.Kind {
	case RangeAny:
		return true
	case RangeStr:
		return r.Str == s
	default:
		return false
	}
}

// Intersect returns the conjunction of two constraints on the same variable.
func (r Range) Intersect(o Range) Range {
	switch {
	case r.Kind == RangeEmpty || o.Kind == RangeEmpty:
		return EmptyRange()
	case r.Kind == RangeAny:
		return o
	case o.Kind == RangeAny:
		return r
	case r.Kind == RangeInt && o.Kind == RangeInt:
		return IntRange(max(r.Lo, o.Lo), min(r.Hi, o.Hi))
	case r.Kind == RangeStr && o.Kind == RangeStr:
		if r.Str == o.Str {
			return r
		}
		return EmptyRange()
	default:
		// Mixed int/string constraints on one variable cannot both hold.
		return EmptyRange()
	}
}

// Equal reports structural equality of two ranges.
func (r Range) Equal(o Range) bool { return r == o }

// String renders the range for diagnostics.
func (r Range) String() string {
	switch r.Kind {
	case RangeAny:
		return "any"
	case RangeEmpty:
		return "empty"
	case RangeStr:
		return fmt.Sprintf("= %q", r.Str)
	default:
		lo, hi := "-inf", "+inf"
		if r.Lo != math.MinInt64 {
			lo = fmt.Sprint(r.Lo)
		}
		if r.Hi != math.MaxInt64 {
			hi = fmt.Sprint(r.Hi)
		}
		return fmt.Sprintf("[%s, %s]", lo, hi)
	}
}
