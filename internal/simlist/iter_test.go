package simlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"htlvideo/internal/interval"
)

func iterEntry(beg, end int, act float64) Entry {
	return Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

// drain pops the iterator to exhaustion.
func drain(it *RankIter) []Entry {
	var out []Entry
	for {
		e, ok := it.Pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestRankIterOrder(t *testing.T) {
	l := NewList(10,
		iterEntry(1, 2, 4),
		iterEntry(4, 4, 9),
		iterEntry(6, 7, 4),
		iterEntry(9, 9, 1),
	)
	got := drain(NewRankIter(l))
	// Ranked order: Act desc, ties by Beg asc.
	want := []Entry{l.Entries[1], l.Entries[0], l.Entries[2], l.Entries[3]}
	if len(got) != len(want) {
		t.Fatalf("drained %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Property: the iterator yields exactly the sorted-by-entryBefore permutation
// of the list, for random lists with quantized similarities (so ties occur).
func TestRankIterMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var entries []Entry
		pos := 1
		for pos < 60 {
			pos += rng.Intn(3) + 1
			ln := rng.Intn(4)
			if pos+ln > 60 {
				break
			}
			entries = append(entries, iterEntry(pos, pos+ln, float64(1+rng.Intn(5))))
			pos += ln + 2
		}
		l := NewList(5, entries...)
		want := append([]Entry(nil), entries...)
		sort.SliceStable(want, func(i, j int) bool { return entryBefore(want[i], want[j]) })
		got := drain(NewRankIter(l))
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The iterator must stay lazy (no heap until the consumer advances past the
// head) and must never mutate the list it reads — lists are shared between
// memo tables and cached results.
func TestRankIterLazyAndNonMutating(t *testing.T) {
	l := NewList(10, iterEntry(1, 1, 3), iterEntry(3, 3, 7), iterEntry(5, 5, 5))
	orig := append([]Entry(nil), l.Entries...)
	it := NewRankIter(l)
	if it.heap != nil || it.built {
		t.Fatal("heap built at construction")
	}
	if ub := it.UpperBound(); ub != 7 {
		t.Fatalf("UpperBound = %g, want 7", ub)
	}
	if e, ok := it.Pop(); !ok || e.Act != 7 {
		t.Fatalf("head pop = %+v, %v", e, ok)
	}
	if it.built {
		t.Fatal("heap built by the head pop")
	}
	if e, ok := it.Pop(); !ok || e.Act != 5 {
		t.Fatalf("second pop = %+v, %v", e, ok)
	}
	if !it.built {
		t.Fatal("heap not built after advancing past the head")
	}
	if it.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1", it.Remaining())
	}
	for i, e := range l.Entries {
		if e != orig[i] {
			t.Fatalf("iterator mutated the list: entry %d = %+v, was %+v", i, e, orig[i])
		}
	}
}

func TestRankIterEmpty(t *testing.T) {
	it := NewRankIter(Empty(5))
	if _, ok := it.Peek(); ok {
		t.Fatal("peek on empty list")
	}
	if _, ok := it.Pop(); ok {
		t.Fatal("pop on empty list")
	}
	if ub := it.UpperBound(); ub != 0 {
		t.Fatalf("UpperBound = %g, want 0", ub)
	}
}

func TestMaxAct(t *testing.T) {
	if got := Empty(5).MaxAct(); got != 0 {
		t.Fatalf("empty MaxAct = %g", got)
	}
	l := NewList(10, iterEntry(1, 1, 3), iterEntry(3, 3, 7))
	if got := l.MaxAct(); got != 7 {
		t.Fatalf("MaxAct = %g, want 7", got)
	}
}
