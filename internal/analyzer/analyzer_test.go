package analyzer

import (
	"reflect"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/picture"
	"htlvideo/internal/videogen"
)

// script builds a three-shot synthetic video: a man and a woman, then a
// moving train, then the man alone.
func script() []videogen.ShotSpec {
	return []videogen.ShotSpec{
		{
			Frames: 12, Palette: 1,
			Objects: []metadata.Object{
				{ID: 1, Type: "man", Certainty: 0.9},
				{ID: 2, Type: "woman", Certainty: 0.8},
			},
		},
		{
			Frames: 8, Palette: 2,
			Objects: []metadata.Object{
				{ID: 3, Type: "train", Certainty: 1, Props: map[string]bool{"moving": true}},
			},
		},
		{
			Frames: 10, Palette: 3,
			Objects: []metadata.Object{
				{ID: 1, Type: "man", Certainty: 0.7},
			},
		},
	}
}

func TestPipelineRecoversCuts(t *testing.T) {
	specs := script()
	frames := videogen.Render(specs, 0.01, 7)
	res, err := Analyze(frames, Options{VideoID: 1, Name: "synthetic"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cuts, videogen.CutPoints(specs)) {
		t.Fatalf("cuts = %v, want %v", res.Cuts, videogen.CutPoints(specs))
	}
	if got := len(res.Video.Sequence(2)); got != 3 {
		t.Fatalf("shots = %d", got)
	}
}

func TestShotAggregation(t *testing.T) {
	specs := script()
	// Vary the man's certainty within shot 1 across frames by splitting the
	// spec: two sub-shots of the same palette merge into one detected shot.
	specs[0].Frames = 6
	extra := videogen.ShotSpec{
		Frames: 6, Palette: 1,
		Objects: []metadata.Object{
			{ID: 1, Type: "man", Certainty: 0.95, Props: map[string]bool{"holds_gun": true}},
		},
	}
	specs = append([]videogen.ShotSpec{specs[0], extra}, specs[1:]...)
	frames := videogen.Render(specs, 0.01, 7)
	res, err := Analyze(frames, Options{VideoID: 1, Name: "agg"})
	if err != nil {
		t.Fatal(err)
	}
	shots := res.Video.Sequence(2)
	if len(shots) != 3 {
		t.Fatalf("shots = %d (same-palette sub-shots should merge)", len(shots))
	}
	man := shots[0].Meta.FindObject(1)
	if man == nil || man.Certainty != 0.95 || !man.Props["holds_gun"] {
		t.Fatalf("aggregated man = %+v", man)
	}
	if shots[0].Meta.FindObject(2) == nil {
		t.Fatal("woman lost in aggregation")
	}
}

func TestKeepFrames(t *testing.T) {
	frames := videogen.Render(script(), 0.01, 7)
	res, err := Analyze(frames, Options{VideoID: 1, Name: "deep", KeepFrames: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Video.Depth() != 3 {
		t.Fatalf("depth = %d", res.Video.Depth())
	}
	if got := len(res.Video.Sequence(3)); got != 30 {
		t.Fatalf("frames = %d", got)
	}
	if l, ok := res.Video.Level("frame"); !ok || l != 3 {
		t.Fatal("frame level not registered")
	}
}

// TestEndToEndQuery drives the full chain: synthesize → analyze → index →
// HTL query.
func TestEndToEndQuery(t *testing.T) {
	frames := videogen.Render(script(), 0.01, 7)
	res, err := Analyze(frames, Options{VideoID: 1, Name: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	tax := picture.NewTaxonomy()
	tax.MustAdd("man", "person")
	tax.MustAdd("woman", "person")
	sys, err := picture.NewSystem(res.Video, 2, tax, picture.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	q := htl.MustParse("(exists x, y . present(x) and type(x) = 'man' and present(y) and type(y) = 'woman') and eventually (exists z . present(z) and type(z) = 'train' and moving(z))")
	list, err := core.Eval(sys, q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Shot 1 has the couple with the train still ahead: highest. Shot 2 has
	// the train itself. Shot 3 keeps only the partial credit for the lone
	// man (§2.5: a conjunction is partially satisfied even when one conjunct
	// is not).
	if !(list.At(1).Act > list.At(2).Act && list.At(2).Act > list.At(3).Act) {
		t.Fatalf("expected shot1 > shot2 > shot3: %v", list)
	}
	if list.At(3).Act <= 0 {
		t.Fatalf("shot 3 should keep the lone man's partial credit: %v", list)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Fatal("empty stream should fail")
	}
}
