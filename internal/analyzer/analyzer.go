// Package analyzer is the video analyzer of Fig. 1: it turns a frame stream
// into the hierarchical meta-data the retrieval system queries. The pipeline
// is segmentation (cut detection over histogram signatures), then per-shot
// content aggregation (object tracking across the shot's frames), producing
// a metadata.Video whose level 2 is the shot sequence — "considering each
// shot as a single picture", exactly as §4.1 fed the picture system — with
// the individual frames optionally kept as level 3.
package analyzer

import (
	"fmt"

	"htlvideo/internal/metadata"
	"htlvideo/internal/segment"
	"htlvideo/internal/track"
	"htlvideo/internal/videogen"
)

// Options configure an analysis run.
type Options struct {
	// VideoID and Name identify the resulting video.
	VideoID int
	Name    string
	// AdaptiveK is the k of the adaptive cut threshold (median + k·MAD);
	// <= 0 selects the default of 6. Cuts between distinct palettes score
	// an order of magnitude above the per-frame noise floor, so a generous
	// k suppresses false positives without missing boundaries.
	AdaptiveK float64
	// KeepFrames retains the frame level (level 3) under each shot.
	KeepFrames bool
}

// Result is the analyzer output.
type Result struct {
	Video *metadata.Video
	// Cuts are the detected shot boundaries (frame indices).
	Cuts []int
}

// Analyze runs the pipeline over a synthetic frame stream.
func Analyze(frames []videogen.Frame, opts Options) (*Result, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("analyzer: no frames")
	}
	k := opts.AdaptiveK
	if k <= 0 {
		k = 6
	}
	hists := make([][]float64, len(frames))
	for i := range frames {
		hists[i] = frames[i].Hist[:]
	}
	cuts := segment.DetectCutsAdaptive(hists, k)
	shots := segment.Shots(len(frames), cuts)

	levels := map[string]int{"shot": 2}
	if opts.KeepFrames {
		levels["frame"] = 3
	}
	v := metadata.NewVideo(opts.VideoID, opts.Name, levels)
	for _, sh := range shots {
		meta := aggregateShot(frames[sh[0]:sh[1]])
		node := v.Root.AppendChild(meta)
		if opts.KeepFrames {
			for _, fr := range frames[sh[0]:sh[1]] {
				node.AppendChild(frameMeta(fr))
			}
		}
	}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("analyzer: built invalid video: %w", err)
	}
	return &Result{Video: v, Cuts: cuts}, nil
}

// AnalyzeTracked runs the full detector-world pipeline: anonymous per-frame
// detections first pass through the object tracker (assigning the stable ids
// of §2.2), then the frames — now carrying tracked objects — go through cut
// detection and shot aggregation. The frame stream supplies the histogram
// signatures and segment attributes; its ground-truth objects are ignored in
// favour of the tracked ones, and relationships (which reference ground-
// truth ids the detector world does not know) are dropped.
func AnalyzeTracked(frames []videogen.Frame, dets [][]track.Detection, tcfg track.Config, opts Options) (*Result, error) {
	if len(dets) != len(frames) {
		return nil, fmt.Errorf("analyzer: %d detection frames for %d video frames", len(dets), len(frames))
	}
	objs, err := track.Assign(dets, tcfg)
	if err != nil {
		return nil, err
	}
	tracked := make([]videogen.Frame, len(frames))
	for i, fr := range frames {
		tracked[i] = videogen.Frame{Hist: fr.Hist, Objects: objs[i], Attrs: fr.Attrs}
	}
	return Analyze(tracked, opts)
}

// aggregateShot merges the frames of one shot into shot-level meta-data:
// an object occurs in the shot if it occurs in any frame (tracking within a
// shot is reliable, §2.2), with its maximum certainty and the union of its
// properties; the last frame's attribute values win; relationships union.
func aggregateShot(frames []videogen.Frame) metadata.SegmentMeta {
	objs := map[metadata.ObjectID]*metadata.Object{}
	var order []metadata.ObjectID
	relSeen := map[metadata.Relationship]bool{}
	var rels []metadata.Relationship
	attrs := map[string]metadata.Value{}
	for _, fr := range frames {
		for _, o := range fr.Objects {
			cur := objs[o.ID]
			if cur == nil {
				cp := o
				cp.Attrs = copyVals(o.Attrs)
				cp.Props = copyProps(o.Props)
				objs[o.ID] = &cp
				order = append(order, o.ID)
				continue
			}
			if o.Certainty > cur.Certainty {
				cur.Certainty = o.Certainty
			}
			for p := range o.Props {
				if cur.Props == nil {
					cur.Props = map[string]bool{}
				}
				cur.Props[p] = true
			}
			for a, val := range o.Attrs {
				if cur.Attrs == nil {
					cur.Attrs = map[string]metadata.Value{}
				}
				cur.Attrs[a] = val
			}
		}
		for _, r := range fr.Rels {
			if !relSeen[r] {
				relSeen[r] = true
				rels = append(rels, r)
			}
		}
		for a, val := range fr.Attrs {
			attrs[a] = val
		}
	}
	meta := metadata.SegmentMeta{Rels: rels}
	if len(attrs) > 0 {
		meta.Attrs = attrs
	}
	for _, id := range order {
		meta.Objects = append(meta.Objects, *objs[id])
	}
	return meta
}

func frameMeta(fr videogen.Frame) metadata.SegmentMeta {
	meta := metadata.SegmentMeta{
		Objects: append([]metadata.Object(nil), fr.Objects...),
		Rels:    append([]metadata.Relationship(nil), fr.Rels...),
	}
	if len(fr.Attrs) > 0 {
		meta.Attrs = copyVals(fr.Attrs)
	}
	return meta
}

func copyVals(m map[string]metadata.Value) map[string]metadata.Value {
	if m == nil {
		return nil
	}
	out := make(map[string]metadata.Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyProps(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
