package shard

import (
	"fmt"
	"strings"

	"htlvideo/internal/obs"
	"htlvideo/internal/resilience"
)

// Health assembles the coordinator's rollup for /debug/health: drain state,
// shard membership, and per-shard breaker states. Every degraded component
// names its cause — in particular an open breaker names the shard, so a
// killed shard shows up as "breaker open for shards shard-3" rather than an
// anonymous count.
func (c *Coordinator) Health() obs.HealthDoc {
	var d obs.HealthDoc
	if c.Draining() {
		d.Add("coordinator", false, "draining")
	} else {
		d.Add("coordinator", true, fmt.Sprintf("%d queries, %d errors, %d quorum failures",
			c.m.queries.Value(), c.m.errors.Value(), c.m.quorumFailures.Value()))
	}

	members := c.snapshotMembers()
	if len(members) == 0 {
		d.Add("membership", false, "no shards joined")
		return d
	}
	d.Add("membership", true, fmt.Sprintf("%d shards attached (quorum %d)", len(members), c.cfg.minShards))

	states := c.breaker.States()
	var open, halfOpen []string
	for _, mb := range members { // members are name-sorted, so reasons are deterministic
		switch states[mb.ord] {
		case resilience.StateOpen:
			open = append(open, mb.name)
		case resilience.StateHalfOpen:
			halfOpen = append(halfOpen, mb.name)
		}
	}
	switch {
	case len(open) > 0:
		d.Add("breakers", false, "breaker open for shards "+strings.Join(open, " "))
	case len(halfOpen) > 0:
		d.Add("breakers", true, "breaker half-open for shards "+strings.Join(halfOpen, " "))
	default:
		d.Add("breakers", true, "all shard circuits closed")
	}
	return d
}
