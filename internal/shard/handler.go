package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"htlvideo/internal/obs"
	"htlvideo/internal/obs/dash"
	"htlvideo/internal/server"
)

// QueryDoc is the coordinator's /query payload: the single-server response
// shape plus a shard-level section. The video-level fields (class, top,
// skipped, failed, ...) are wire-compatible with internal/server's /query,
// so clients need not know whether they talk to one store or a fleet.
type QueryDoc struct {
	Class     string             `json:"class"`
	Videos    int                `json:"videos"`
	Evaluated int                `json:"evaluated"`
	Top       []server.RankedDoc `json:"top"`
	Skipped   []server.SkipDoc   `json:"skipped,omitempty"`
	Failed    []server.FailDoc   `json:"failed,omitempty"`
	Retries   int64              `json:"retries,omitempty"`
	Shards    ShardsDoc          `json:"shards"`
	ElapsedMS float64            `json:"elapsed_ms"`
	// TraceID is the distributed trace id the query ran under — minted by the
	// coordinator (or joined from an inbound X-Htl-Trace) and forwarded to
	// every shard, so per-shard slow logs and trace rings correlate.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the stitched cross-process span tree, present with ?trace=1:
	// the coordinator's scatter/merge spans with each shard's own spans
	// attached under its numbered attempts.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// ShardsDoc summarizes the fan-out behind one response.
type ShardsDoc struct {
	Total       int             `json:"total"`
	OK          int             `json:"ok"`
	MinRequired int             `json:"min_required"`
	Errors      []ShardErrorDoc `json:"errors,omitempty"`
}

// ShardErrorDoc is one lost shard.
type ShardErrorDoc struct {
	Shard string `json:"shard"`
	Error string `json:"error"`
}

// errorDoc is the JSON error body.
type errorDoc struct {
	Error string `json:"error"`
}

// Draining reports whether Drain was called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Drain flips /readyz to 503 so load balancers stop sending new work;
// in-flight queries finish normally.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// Handler returns the coordinator's endpoint set:
//
//	GET  /query          scatter-gather an HTL query (same parameters as a
//	                     single server's /query; trace=1 returns the stitched
//	                     cross-process span tree)
//	POST /explain        distributed EXPLAIN ANALYZE: fan the explain out to
//	                     every shard and merge the per-node profiles into one
//	                     tree with per-shard cost attribution
//	GET  /healthz        liveness: 200 while the process runs
//	GET  /readyz         readiness: 200 while shards are attached and not
//	                     draining
//	GET  /metrics        shard.* metrics (JSON; Prometheus via Accept or
//	                     ?format=prometheus)
//	GET  /shards         current membership with breaker states
//	POST /-/shards       graceful join/leave: {"op":"add","name":...,"url":...}
//	                     or {"op":"remove","name":...}
//	GET  /debug/slowlog  the coordinator's slowest queries, linked by trace
//	                     id and plan key, with dominant-shard attribution
//	GET  /debug/traces   recent stitched traces (?id= for one full tree)
//	GET  /debug/queries  fleet-wide per-plan-key workload statistics: every
//	                     shard's /debug/queries fetched and merged bucketwise
//	                     (?sort=calls|total|mean, ?limit=N)
//	GET  /debug/health   the coordinator's health rollup (drain state,
//	                     membership, per-shard breakers) with reason strings
//	GET  /debug/timeseries  sampled shard.* metric history with windowed rates
//	GET  /debug/dash     self-contained HTML dashboard over the above
//
// Handlers are panic-isolated like the single server's.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.handleQuery)
	mux.HandleFunc("/explain", c.handleExplain)
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		entries := c.slow.Snapshot()
		if entries == nil {
			entries = []obs.SlowEntry{}
		}
		writeJSON(w, http.StatusOK, entries)
	})
	mux.HandleFunc("/debug/traces", c.traces.Handler())
	mux.HandleFunc("/debug/queries", c.handleQueryStats)
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		obs.WriteHealth(w, c.Health())
	})
	mux.Handle("/debug/timeseries", c.sampler)
	mux.Handle("/debug/dash", dash.Handler(dash.Sources{
		Title:   "htlshard coordinator",
		Health:  c.Health,
		Queries: c.mergedQueryStats,
		Sampler: c.sampler,
		Sparks:  []string{"shard.queries", "shard.query_latency", "shard.errors", "shard.hedges"},
	}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if c.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "draining"})
			return
		}
		if len(c.Shards()) == 0 {
			writeJSON(w, http.StatusServiceUnavailable, errorDoc{Error: "no shards attached"})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if obs.WantsPrometheus(r) {
			obs.PrometheusHandler(w, c.reg)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Coordinator obs.RegistrySnapshot `json:"coordinator"`
			Shards      []ShardInfo          `json:"shards"`
		}{c.reg.Snapshot(), c.Shards()})
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Shards())
	})
	mux.HandleFunc("/-/shards", c.handleMembership)
	return c.isolate(mux)
}

// isolate contains handler panics: counted, logged, answered with 500.
func (c *Coordinator) isolate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				c.reg.Counter("shard.panics").Inc()
				c.cfg.logf("shard: panic serving %s: %v", r.URL.Path, rec)
				writeJSON(w, http.StatusInternalServerError, errorDoc{Error: "internal error"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleQuery parses with the shared validator (identical 400 semantics to a
// single server, including the hard 400 on malformed ?timeout=), runs the
// scatter-gather, and maps quorum to status: below MinShards the query
// failed as a whole.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	p, status, err := server.ParseQueryRequest(r, server.ParseDefaults{
		DefaultTimeout: c.cfg.defaultTimeout,
		MaxTimeout:     c.cfg.maxTimeout,
	})
	if err != nil {
		writeJSON(w, status, errorDoc{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.Timeout)
	defer cancel()

	res := c.Query(ctx, p)
	doc := QueryDoc{
		Class: res.Class, Videos: res.Videos, Evaluated: res.Evaluated,
		Top: res.Top, Skipped: res.Skipped, Failed: res.Failed,
		Retries: res.Retries, TraceID: res.TraceID, Trace: res.Trace,
		Shards: ShardsDoc{
			Total: res.ShardsTotal, OK: res.ShardsOK,
			MinRequired: c.cfg.minShards,
		},
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	for _, se := range res.ShardErrors {
		d := ShardErrorDoc{Error: se.Error()}
		var sh *shardError
		if errors.As(se, &sh) {
			d.Shard = sh.shard
			d.Error = sh.err.Error()
		}
		doc.Shards.Errors = append(doc.Shards.Errors, d)
	}
	switch {
	case !res.QuorumMet(c.cfg.minShards):
		writeJSON(w, http.StatusServiceUnavailable, doc)
	case !p.Partial && (len(res.Failed) > 0 || len(res.ShardErrors) > 0):
		writeJSON(w, http.StatusInternalServerError, doc)
	default:
		writeJSON(w, http.StatusOK, doc)
	}
}

// handleMembership serves graceful join/leave.
func (c *Coordinator) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorDoc{Error: "POST required"})
		return
	}
	var req struct {
		Op   string `json:"op"`
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("decoding body: %v", err)})
		return
	}
	if req.Name == "" {
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: "missing name"})
		return
	}
	var changed bool
	switch req.Op {
	case "add":
		if req.URL == "" {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: "missing url"})
			return
		}
		changed = c.AddShard(req.Name, req.URL)
	case "remove":
		changed = c.RemoveShard(req.Name)
	default:
		writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("unknown op %q", req.Op)})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Changed bool        `json:"changed"`
		Shards  []ShardInfo `json:"shards"`
	}{changed, c.Shards()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
