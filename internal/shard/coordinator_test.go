package shard

// Coordinator unit tests over in-process shards: byte-identity of the
// merged ranking against a single unsharded store, shard-level retries,
// hedged requests to stragglers, breaker trip/skip/recovery on a fake
// clock, quorum semantics, and graceful join/leave.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"htlvideo"
	"htlvideo/internal/resilience"
	"htlvideo/internal/server"
)

// fixtureDoc builds a store document of n videos with M1/M2-tagged shots at
// level 2, varied enough that rankings have real structure and ties.
func fixtureDoc(n int) htlvideo.StoreDoc {
	doc := htlvideo.StoreDoc{}
	for id := 1; id <= n; id++ {
		segs := []htlvideo.SegmentDoc{
			{Attrs: map[string]any{"M1": float64(1)}},
			{Attrs: map[string]any{"M1": float64(1), "M2": float64(1)}},
			{Attrs: map[string]any{"M2": float64(1)}},
		}
		// Vary length per video so top-k runs differ across videos.
		for j := 0; j < id%3; j++ {
			segs = append(segs, htlvideo.SegmentDoc{Attrs: map[string]any{"M1": float64(1)}})
		}
		doc.Videos = append(doc.Videos, htlvideo.VideoDoc{
			ID: id, Name: fmt.Sprintf("clip %d", id),
			Levels:   map[string]int{"shot": 2},
			Segments: segs,
		})
	}
	return doc
}

// startShardServers splits doc into n shard stores and serves each with a
// full internal/server instance; returns the base URLs in shard order.
func startShardServers(t *testing.T, doc htlvideo.StoreDoc, n int) []string {
	t.Helper()
	shards, err := htlvideo.SplitDoc(doc, n)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, n)
	for i, sd := range shards {
		st, err := sd.Build()
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(st, server.WithRandSeed(int64(i+1))).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// getDoc GETs url and decodes the body into out, returning the status.
func getDoc(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestMergedRankingMatchesSingleStore(t *testing.T) {
	doc := fixtureDoc(12)
	st, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(server.New(st, server.WithRandSeed(1)).Handler())
	defer single.Close()

	coord := New(startShardServers(t, doc, 3), WithRandSeed(1))
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()

	// rawTop captures the "top" array bytes so the comparison is
	// byte-identical, not merely structurally equal.
	type rawTop struct {
		Class     string          `json:"class"`
		Videos    int             `json:"videos"`
		Evaluated int             `json:"evaluated"`
		Top       json.RawMessage `json:"top"`
	}
	for _, q := range []string{
		"q=M1&k=1", "q=M1&k=4", "q=M1&k=100",
		"q=M1+until+M2&k=7", "q=eventually+M2&k=5",
	} {
		var want, got rawTop
		if code := getDoc(t, single.URL+"/query?"+q, &want); code != http.StatusOK {
			t.Fatalf("single %s: status %d", q, code)
		}
		if code := getDoc(t, ct.URL+"/query?"+q, &got); code != http.StatusOK {
			t.Fatalf("coordinator %s: status %d", q, code)
		}
		if string(got.Top) != string(want.Top) {
			t.Errorf("%s: merged ranking diverges from single store\n got: %s\nwant: %s", q, got.Top, want.Top)
		}
		if got.Class != want.Class || got.Videos != want.Videos || got.Evaluated != want.Evaluated {
			t.Errorf("%s: aggregates diverge: got %+v want %+v", q, got, want)
		}
	}
}

// fakeShardResponse is a minimal valid shard /query body.
func fakeShardResponse(video int) string {
	return fmt.Sprintf(`{"class":"type1","videos":1,"evaluated":1,"top":[{"video":%d,"beg":1,"end":1,"sim":1,"frac":0.5}],"elapsed_ms":0.1}`, video)
}

func testParams() server.QueryParams {
	return server.QueryParams{
		Query: "M1", Level: 2, Tau: 0.5, K: 10,
		Timeout: 2 * time.Second, Partial: true,
	}
}

func TestRetriesTransientShardFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, fakeShardResponse(1))
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
		WithHedgeDelay(0),
		WithRandSeed(1),
	)
	res := c.Query(context.Background(), testParams())
	if res.ShardsOK != 1 || len(res.ShardErrors) != 0 {
		t.Fatalf("ok=%d errors=%v, want one healthy shard", res.ShardsOK, res.ShardErrors)
	}
	if got := c.Metrics().Counter("shard.retries").Value(); got != 1 {
		t.Errorf("shard.retries = %d, want 1", got)
	}
	if calls.Load() != 2 {
		t.Errorf("shard saw %d calls, want 2", calls.Load())
	}
}

func TestPermanentShardErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}),
		WithHedgeDelay(0), WithRandSeed(1),
	)
	res := c.Query(context.Background(), testParams())
	if res.ShardsOK != 0 || len(res.ShardErrors) != 1 {
		t.Fatalf("ok=%d errors=%v, want the one shard failed", res.ShardsOK, res.ShardErrors)
	}
	if calls.Load() != 1 {
		t.Errorf("shard saw %d calls, want 1 (4xx is deterministic)", calls.Load())
	}
}

func TestHedgesStragglerShards(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// The straggler: sit on the request until the coordinator gives
			// up on it (the hedge's win cancels this context).
			<-r.Context().Done()
			return
		}
		fmt.Fprint(w, fakeShardResponse(1))
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithHedgeDelay(20*time.Millisecond),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}),
		WithRandSeed(1),
	)
	start := time.Now()
	res := c.Query(context.Background(), testParams())
	if res.ShardsOK != 1 {
		t.Fatalf("ok=%d errors=%v, want hedged success", res.ShardsOK, res.ShardErrors)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged query took %v; the straggler was not cut off", elapsed)
	}
	if got := c.Metrics().Counter("shard.hedges").Value(); got != 1 {
		t.Errorf("shard.hedges = %d, want 1", got)
	}
}

func TestBreakerTripsSkipsAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, fakeShardResponse(1))
	}))
	defer ts.Close()

	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := New([]string{ts.URL},
		WithBreakerConfig(resilience.BreakerConfig{
			Window: 4, MinVolume: 2, FailureRate: 0.5,
			OpenFor: time.Minute, HalfOpenProbes: 1,
		}),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}),
		WithHedgeDelay(0), WithClock(clock), WithRandSeed(1),
	)

	// Two failing queries reach MinVolume at 100% failure: the breaker opens.
	for i := 0; i < 2; i++ {
		if res := c.Query(context.Background(), testParams()); res.ShardsOK != 0 {
			t.Fatalf("query %d: expected failure, got ok=%d", i, res.ShardsOK)
		}
	}
	if got := c.Metrics().Counter("shard.breaker.opened").Value(); got != 1 {
		t.Fatalf("shard.breaker.opened = %d, want 1", got)
	}

	// While open, the shard is skipped without an attempt.
	res := c.Query(context.Background(), testParams())
	if len(res.ShardErrors) != 1 || !errors.Is(res.ShardErrors[0], ErrBreakerOpen) {
		t.Fatalf("open breaker: ShardErrors = %v, want ErrBreakerOpen", res.ShardErrors)
	}
	if got := c.Metrics().Counter("shard.skipped").Value(); got != 1 {
		t.Errorf("shard.skipped = %d, want 1", got)
	}
	if info := c.Shards(); info[0].Breaker != "open" {
		t.Errorf("breaker state = %s, want open", info[0].Breaker)
	}

	// Past OpenFor with a healthy shard, the half-open probe closes it.
	fail.Store(false)
	advance(2 * time.Minute)
	res = c.Query(context.Background(), testParams())
	if res.ShardsOK != 1 || len(res.ShardErrors) != 0 {
		t.Fatalf("recovery: ok=%d errors=%v", res.ShardsOK, res.ShardErrors)
	}
	if got := c.Metrics().Counter("shard.breaker.closed").Value(); got != 1 {
		t.Errorf("shard.breaker.closed = %d, want 1", got)
	}
}

func TestQuorumSemantics(t *testing.T) {
	doc := fixtureDoc(8)
	urls := startShardServers(t, doc, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	urls = append(urls, dead.URL)

	retry := WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1})

	// MinShards 3 of 3: losing one shard fails the query as a whole.
	strict := New(urls, WithMinShards(3), retry, WithHedgeDelay(0), WithRandSeed(1))
	res := strict.Query(context.Background(), testParams())
	if res.QuorumMet(3) {
		t.Fatal("quorum reported met with a dead shard")
	}
	if got := strict.Metrics().Counter("shard.quorum_failures").Value(); got != 1 {
		t.Errorf("shard.quorum_failures = %d, want 1", got)
	}
	st := httptest.NewServer(strict.Handler())
	defer st.Close()
	var doc503 QueryDoc
	if code := getDoc(t, st.URL+"/query?q=M1", &doc503); code != http.StatusServiceUnavailable {
		t.Fatalf("below-quorum status = %d, want 503", code)
	}
	if len(doc503.Shards.Errors) != 1 || doc503.Shards.Errors[0].Shard != "shard-2" {
		t.Fatalf("shard errors = %+v, want shard-2 named", doc503.Shards.Errors)
	}

	// MinShards 1: the survivors' merged top-k is served as a partial.
	lax := New(urls, WithMinShards(1), retry, WithHedgeDelay(0), WithRandSeed(1))
	res = lax.Query(context.Background(), testParams())
	if !res.QuorumMet(1) || res.ShardsOK != 2 {
		t.Fatalf("ok=%d errors=%v, want 2 survivors", res.ShardsOK, res.ShardErrors)
	}
	if len(res.Top) == 0 {
		t.Fatal("partial result carries no ranking")
	}
	if len(res.ShardErrors) != 1 || !strings.Contains(res.ShardErrors[0].Error(), "shard-2") {
		t.Fatalf("ShardErrors = %v, want shard-2 named", res.ShardErrors)
	}
}

func TestShardJoinLeave(t *testing.T) {
	doc := fixtureDoc(6)
	urls := startShardServers(t, doc, 2)

	// Start with only shard-0 attached; shard-1 joins over HTTP.
	c := NewNamed(map[string]string{"shard-0": urls[0]}, WithRandSeed(1),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}), WithHedgeDelay(0))
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	var partial QueryDoc
	if code := getDoc(t, ts.URL+"/query?q=M1", &partial); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	join := func(body string) (code int, out struct {
		Changed bool        `json:"changed"`
		Shards  []ShardInfo `json:"shards"`
	}) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/-/shards", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, out := join(fmt.Sprintf(`{"op":"add","name":"shard-1","url":"%s"}`, urls[1]))
	if code != http.StatusOK || !out.Changed || len(out.Shards) != 2 {
		t.Fatalf("join: code=%d out=%+v", code, out)
	}

	var full QueryDoc
	if code := getDoc(t, ts.URL+"/query?q=M1", &full); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if full.Videos <= partial.Videos {
		t.Fatalf("after join videos=%d, want more than pre-join %d", full.Videos, partial.Videos)
	}
	if full.Shards.Total != 2 || full.Shards.OK != 2 {
		t.Fatalf("after join shards=%+v", full.Shards)
	}

	code, out = join(`{"op":"remove","name":"shard-1"}`)
	if code != http.StatusOK || !out.Changed || len(out.Shards) != 1 {
		t.Fatalf("leave: code=%d out=%+v", code, out)
	}
	var again QueryDoc
	getDoc(t, ts.URL+"/query?q=M1", &again)
	if again.Videos != partial.Videos {
		t.Fatalf("after leave videos=%d, want %d", again.Videos, partial.Videos)
	}

	// Bad requests are 400s.
	for _, body := range []string{`{`, `{"op":"nope","name":"x"}`, `{"op":"add","name":""}`, `{"op":"add","name":"x"}`} {
		if code, _ := join(body); code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, code)
		}
	}
}

func TestReadyzAndDrain(t *testing.T) {
	empty := NewNamed(nil)
	ts := httptest.NewServer(empty.Handler())
	defer ts.Close()
	if code := getDoc(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("empty ring readyz = %d, want 503", code)
	}
	if code := getDoc(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}

	c := NewNamed(map[string]string{"shard-0": "http://127.0.0.1:1"})
	ts2 := httptest.NewServer(c.Handler())
	defer ts2.Close()
	if code := getDoc(t, ts2.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", code)
	}
	c.Drain()
	if code := getDoc(t, ts2.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", code)
	}
}

func TestCoordinatorRejectsBadTimeout(t *testing.T) {
	// The shared parser gives the coordinator the same hard-400 semantics on
	// malformed ?timeout= as a single server.
	c := NewNamed(nil)
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	var ed struct {
		Error string `json:"error"`
	}
	if code := getDoc(t, ts.URL+"/query?q=M1&timeout=banana", &ed); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if ed.Error == "" {
		t.Fatal("empty error body")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	doc := fixtureDoc(4)
	c := New(startShardServers(t, doc, 2), WithRandSeed(1))
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	if code := getDoc(t, ts.URL+"/query?q=M1", nil); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	var m struct {
		Coordinator struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"coordinator"`
		Shards []ShardInfo `json:"shards"`
	}
	if code := getDoc(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if m.Coordinator.Counters["shard.queries"] != 1 {
		t.Errorf("shard.queries = %d, want 1", m.Coordinator.Counters["shard.queries"])
	}
	if m.Coordinator.Counters["shard.requests"] < 2 {
		t.Errorf("shard.requests = %d, want >= 2", m.Coordinator.Counters["shard.requests"])
	}
	if m.Coordinator.Gauges["shard.shards"] != 2 {
		t.Errorf("shard.shards gauge = %d, want 2", m.Coordinator.Gauges["shard.shards"])
	}
	if len(m.Shards) != 2 {
		t.Errorf("shards listing = %+v, want 2", m.Shards)
	}

	// Prometheus exposition includes the shard namespace.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shard_queries") {
		t.Errorf("prometheus exposition lacks shard_queries:\n%s", sb.String())
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
