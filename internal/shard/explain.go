package shard

// Distributed EXPLAIN ANALYZE: fan an explain out to every shard and merge
// the per-node profiles into one annotated tree. Every shard compiles the
// same canonical text into the same interned plan DAG, so PNode IDs agree
// across processes and obs.ExplainNode.ID is a safe join key: per-shard
// visit counts at a node sum to exactly what a single unsharded store would
// have counted (videos are disjointly partitioned and the engines visit each
// node once per video), and wall time shows where each shard spent it —
// Sistla's per-operator cost question answered per shard.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"htlvideo"
	"htlvideo/internal/obs"
	"htlvideo/internal/server"
)

// ExplainDoc is the coordinator's /explain payload: the single-store
// ExplainResult shape lifted to the fleet, with per-shard attribution.
type ExplainDoc struct {
	Query   string `json:"query"`
	PlanKey string `json:"plan_key"`
	// TraceID is the distributed trace id the explain ran under; each
	// shard-local explain joined it, so per-shard slow logs correlate.
	TraceID string `json:"trace_id"`
	Class   string `json:"class"`
	Engine  string `json:"engine"`
	Level   int    `json:"level"`
	Exact   bool   `json:"exact"`
	// Nodes is the shared plan DAG's size; Videos sums the shards' evaluated
	// videos.
	Nodes  int `json:"nodes"`
	Videos int `json:"videos"`
	// Shards is the fan-out accounting; PerShard the per-shard evaluation
	// summaries (sorted by name), from which the straggler column derives.
	Shards   ShardsDoc         `json:"shards"`
	PerShard []ShardExplainDoc `json:"per_shard,omitempty"`
	// Plan is the merged tree: summed stats per node plus the per-shard
	// breakdown and the straggler (slowest shard by inclusive time) at each.
	Plan      *MergedNode `json:"plan"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// ShardExplainDoc summarizes one shard's explain evaluation.
type ShardExplainDoc struct {
	Shard  string        `json:"shard"`
	Videos int           `json:"videos"`
	Eval   time.Duration `json:"eval_time_ns"`
	Total  time.Duration `json:"total_time_ns"`
}

// MergedNode is one plan node of a cross-shard explain: the single-store
// ExplainNode annotated with where the work landed. A subformula shared by
// several parents appears under each (Shared=true), carrying the same
// accumulated stats, mirroring the plan DAG.
type MergedNode struct {
	ID          int    `json:"id"`
	Op          string `json:"op"`
	Formula     string `json:"formula"`
	NonTemporal bool   `json:"non_temporal,omitempty"`
	Closed      bool   `json:"closed,omitempty"`
	Shared      bool   `json:"shared,omitempty"`
	// Stats sums the per-shard stats; videos partition disjointly, so the
	// sums equal a single unsharded store's counts.
	Stats obs.NodeStats `json:"stats"`
	// PerShard breaks Stats down by shard name.
	PerShard map[string]obs.NodeStats `json:"per_shard,omitempty"`
	// Straggler names the shard with the largest inclusive time at this node
	// (empty when no shard recorded time here).
	Straggler string        `json:"straggler,omitempty"`
	Children  []*MergedNode `json:"children,omitempty"`
}

// Explain fans a profiled evaluation out to every shard and merges the
// per-node profiles. Shards run behind the same breaker/retry as queries
// (explains are full evaluations — no hedging: a duplicate would double real
// work); quorum semantics match Query, with lost shards itemized. Merging
// requires the surviving shards to agree on the plan key — disagreement
// means a mixed-version fleet whose node IDs cannot be joined, and fails the
// explain.
func (c *Coordinator) Explain(ctx context.Context, p server.QueryParams, exact bool) (*ExplainDoc, error) {
	c.m.queries.Inc()
	start := time.Now()
	defer func() { c.m.latency.Observe(time.Since(start)) }()

	if _, ok := ctx.Deadline(); !ok && p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	if p.TraceID == "" {
		p.TraceID = obs.NewTraceID()
	}

	planKey := p.Query
	if p.Formula != nil {
		planKey = p.Formula.String()
	}
	members := c.snapshotMembers()
	out := &ExplainDoc{
		Query: p.Query, PlanKey: planKey, TraceID: p.TraceID,
		Engine: engineName(p.Engine), Level: p.Level, Exact: exact,
		Shards: ShardsDoc{Total: len(members), MinRequired: c.cfg.minShards},
	}

	type partial struct {
		shard string
		er    *htlvideo.ExplainResult
		err   error
	}
	parts := make([]partial, len(members))
	done := make(chan int, len(members))
	launched := 0
	for i, mb := range members {
		parts[i].shard = mb.name
		if !c.breaker.Allow(mb.ord) {
			c.m.skipped.Inc()
			parts[i].err = ErrBreakerOpen
			continue
		}
		launched++
		go func(i int, mb member) {
			defer func() { done <- i }()
			er, err := c.explainShard(ctx, mb, p, exact)
			switch {
			case err == nil:
				c.breaker.Report(mb.ord, false)
				parts[i].er = er
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				c.breaker.Cancel(mb.ord)
				c.m.errors.Inc()
				parts[i].err = err
			default:
				c.breaker.Report(mb.ord, true)
				c.m.errors.Inc()
				parts[i].err = err
			}
		}(i, mb)
	}
	for ; launched > 0; launched-- {
		<-done
	}

	var oks []partial
	for _, pt := range parts {
		if pt.err != nil {
			out.Shards.Errors = append(out.Shards.Errors, ShardErrorDoc{Shard: pt.shard, Error: pt.err.Error()})
			continue
		}
		out.Shards.OK++
		oks = append(oks, pt)
	}
	if out.Shards.OK < c.cfg.minShards {
		c.m.quorumFailures.Inc()
		return out, fmt.Errorf("explain: %w: %d of %d shards answered (min %d)",
			ErrQuorum, out.Shards.OK, out.Shards.Total, c.cfg.minShards)
	}
	if len(oks) == 0 {
		return out, errors.New("explain: no shards answered")
	}

	// The merge joins nodes by ID, which is only meaningful if every shard
	// compiled the same plan.
	for _, pt := range oks {
		if pt.er.PlanKey != oks[0].er.PlanKey {
			return out, fmt.Errorf("explain: plan mismatch: shard %s compiled %q, shard %s %q",
				oks[0].shard, oks[0].er.PlanKey, pt.shard, pt.er.PlanKey)
		}
	}
	out.PlanKey = oks[0].er.PlanKey
	out.Class = oks[0].er.Class
	out.Nodes = oks[0].er.Nodes
	for _, pt := range oks {
		out.Videos += pt.er.Videos
		out.PerShard = append(out.PerShard, ShardExplainDoc{
			Shard: pt.shard, Videos: pt.er.Videos,
			Eval: pt.er.EvalTime, Total: pt.er.TotalTime,
		})
	}

	names := make([]string, len(oks))
	trees := make([]*obs.ExplainNode, len(oks))
	for i, pt := range oks {
		names[i] = pt.shard
		trees[i] = pt.er.Plan
	}
	merged, err := mergeExplainTrees(names, trees)
	if err != nil {
		return out, err
	}
	out.Plan = merged
	out.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return out, nil
}

// explainShard posts one shard's /explain under the retry loop.
func (c *Coordinator) explainShard(ctx context.Context, mb member, p server.QueryParams, exact bool) (*htlvideo.ExplainResult, error) {
	var er *htlvideo.ExplainResult
	err := c.retry.Do(ctx, func() error {
		form := shardQuery(p)
		form.Del("trace") // the explain result carries trace_id already
		if exact {
			form.Set("exact", "true")
		}
		sctx := ctx
		var cancel context.CancelFunc
		if dl, ok := ctx.Deadline(); ok {
			budget := time.Duration(float64(time.Until(dl)) * c.cfg.budgetFraction)
			if budget <= 0 {
				return context.DeadlineExceeded
			}
			form.Set("timeout", budget.String())
			sctx, cancel = context.WithTimeout(ctx, budget)
		}
		if cancel != nil {
			defer cancel()
		}
		r, e := c.doExplainRequest(sctx, mb, form, p.TraceID)
		if e != nil {
			return e
		}
		er = r
		return nil
	}, transientShardError)
	if err != nil {
		return nil, err
	}
	return er, nil
}

// doExplainRequest is one POST /explain attempt against one shard.
func (c *Coordinator) doExplainRequest(ctx context.Context, mb member, form url.Values, traceID string) (*htlvideo.ExplainResult, error) {
	c.m.requests.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, mb.url+"/explain",
		strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	hr, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hr.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if hr.StatusCode != http.StatusOK {
		var ed struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &ed)
		if ed.Error == "" {
			ed.Error = http.StatusText(hr.StatusCode)
		}
		return nil, &httpError{status: hr.StatusCode, msg: ed.Error}
	}
	var er htlvideo.ExplainResult
	if err := json.Unmarshal(body, &er); err != nil {
		return nil, fmt.Errorf("decoding shard explain: %w", err)
	}
	if er.Plan == nil {
		return nil, errors.New("shard explain carried no plan")
	}
	return &er, nil
}

// mergeExplainTrees walks the shards' structurally identical plan trees in
// lockstep and sums their stats per node ID. JSON decoding expanded each
// shard's plan DAG into a tree (shared nodes duplicated under each parent,
// carrying identical accumulated stats), so the walk memoizes by ID: each
// shared node gets one MergedNode, its stats summed once, reused under every
// parent — exactly the shape Tree() produces locally.
func mergeExplainTrees(names []string, trees []*obs.ExplainNode) (*MergedNode, error) {
	built := map[int]*MergedNode{}
	var walk func(nodes []*obs.ExplainNode) (*MergedNode, error)
	walk = func(nodes []*obs.ExplainNode) (*MergedNode, error) {
		first := nodes[0]
		for _, n := range nodes[1:] {
			if n == nil || n.ID != first.ID || n.Formula != first.Formula || len(n.Children) != len(first.Children) {
				return nil, fmt.Errorf("explain: node %d (%s) differs across shards", first.ID, first.Op)
			}
		}
		if m, ok := built[first.ID]; ok {
			return m, nil
		}
		m := &MergedNode{
			ID: first.ID, Op: first.Op, Formula: first.Formula,
			NonTemporal: first.NonTemporal, Closed: first.Closed, Shared: first.Shared,
			PerShard: map[string]obs.NodeStats{},
		}
		built[first.ID] = m
		var stragglerTime time.Duration
		for i, n := range nodes {
			m.PerShard[names[i]] = n.Stats
			m.Stats = addNodeStats(m.Stats, n.Stats)
			if n.Stats.Time > stragglerTime {
				stragglerTime = n.Stats.Time
				m.Straggler = names[i]
			}
		}
		for k := range first.Children {
			kids := make([]*obs.ExplainNode, len(nodes))
			for i, n := range nodes {
				kids[i] = n.Children[k]
			}
			child, err := walk(kids)
			if err != nil {
				return nil, err
			}
			m.Children = append(m.Children, child)
		}
		return m, nil
	}
	return walk(trees)
}

// addNodeStats sums two stat blocks field by field.
func addNodeStats(a, b obs.NodeStats) obs.NodeStats {
	a.Visits += b.Visits
	a.MemoHits += b.MemoHits
	a.AtomicEvals += b.AtomicEvals
	a.MergeOps += b.MergeOps
	a.Rows += b.Rows
	a.Entries += b.Entries
	a.SQLStmts += b.SQLStmts
	a.SQLRows += b.SQLRows
	a.Time += b.Time
	return a
}

// Render writes the merged explain as text: a header of query-level facts, a
// per-shard summary, then the annotated tree with per-shard visit counts and
// (with showTimes) a straggler column per node. showTimes=false blanks every
// duration and the straggler — both derive from wall time — so golden files
// stay byte-stable.
func (d *ExplainDoc) Render(w io.Writer, showTimes bool) {
	fmt.Fprintf(w, "query: %s\n", d.Query)
	fmt.Fprintf(w, "class: %s  engine: %s  level: %d  plan nodes: %d  videos: %d  shards: %d/%d\n",
		d.Class, d.Engine, d.Level, d.Nodes, d.Videos, d.Shards.OK, d.Shards.Total)
	for _, s := range d.PerShard {
		if showTimes {
			fmt.Fprintf(w, "shard %s: videos=%d eval=%s total=%s\n",
				s.Shard, s.Videos, s.Eval.Round(time.Microsecond), s.Total.Round(time.Microsecond))
		} else {
			fmt.Fprintf(w, "shard %s: videos=%d\n", s.Shard, s.Videos)
		}
	}
	renderMerged(w, d.Plan, "", "", showTimes)
}

func renderMerged(w io.Writer, n *MergedNode, head, tail string, showTimes bool) {
	if n == nil {
		return
	}
	fmt.Fprintf(w, "%s%s\n", head, mergedLine(n, showTimes))
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			renderMerged(w, c, tail+"└─ ", tail+"   ", showTimes)
		} else {
			renderMerged(w, c, tail+"├─ ", tail+"│  ", showTimes)
		}
	}
}

// mergedLine formats one node: operator, summed stats, the per-shard visit
// breakdown (sorted by shard name), and the straggler when times are shown.
func mergedLine(n *MergedNode, showTimes bool) string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Op == "atomic" {
		formula := n.Formula
		if len(formula) > 56 {
			formula = formula[:56] + "…"
		}
		b.WriteString(" \"" + formula + "\"")
	}
	if n.Shared {
		b.WriteString(" (shared)")
	}
	b.WriteString("  ")
	if showTimes {
		fmt.Fprintf(&b, "time=%s", n.Stats.Time.Round(time.Microsecond))
	} else {
		b.WriteString("time=-")
	}
	fmt.Fprintf(&b, " visits=%d", n.Stats.Visits)
	names := make([]string, 0, len(n.PerShard))
	for name := range n.PerShard {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString(" [")
		for i, name := range names {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%d", name, n.PerShard[name].Visits)
		}
		b.WriteString("]")
	}
	if showTimes && n.Straggler != "" {
		fmt.Fprintf(&b, " straggler=%s", n.Straggler)
	}
	return b.String()
}

// handleExplain serves the coordinator's POST /explain: the shared validator
// (plus ?exact=), then the distributed explain.
func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorDoc{Error: "POST required"})
		return
	}
	p, status, err := server.ParseQueryRequest(r, server.ParseDefaults{
		DefaultTimeout: c.cfg.defaultTimeout,
		MaxTimeout:     c.cfg.maxTimeout,
	})
	if err != nil {
		writeJSON(w, status, errorDoc{Error: err.Error()})
		return
	}
	exact := false
	if v := r.FormValue("exact"); v != "" {
		if exact, err = strconv.ParseBool(v); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Error: fmt.Sprintf("invalid exact %q", v)})
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.Timeout)
	defer cancel()

	doc, err := c.Explain(ctx, p, exact)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrQuorum):
			code = http.StatusServiceUnavailable
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, struct {
			Error  string    `json:"error"`
			Shards ShardsDoc `json:"shards"`
		}{err.Error(), doc.Shards})
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
