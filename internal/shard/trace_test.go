package shard

// Cross-process tracing at the coordinator: a ?trace=1 query returns one
// stitched trace whose shard subtrees ran under the coordinator's trace id,
// retries and hedges each appear as their own numbered attempt span, an open
// breaker annotates the skipped shard's span, and the coordinator's
// /debug/slowlog and /debug/traces expose the retained traces with plan-key
// linkage.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"htlvideo/internal/obs"
	"htlvideo/internal/resilience"
)

// findSpan returns the first span with the given name at this level.
func findSpan(spans []obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	for i := range spans {
		if spans[i].Name == name {
			return &spans[i]
		}
	}
	return nil
}

func TestStitchedTraceCarriesCoordinatorID(t *testing.T) {
	doc := fixtureDoc(6)
	urls := startShardServers(t, doc, 2)
	coord := New(urls, WithRandSeed(1))
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()

	var out QueryDoc
	if code := getDoc(t, ct.URL+"/query?q=M1&trace=1", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.TraceID) != 32 {
		t.Fatalf("trace id %q, want a 32-char global id", out.TraceID)
	}
	if out.Trace == nil || out.Trace.ID != out.TraceID {
		t.Fatalf("trace payload = %+v, want snapshot under id %s", out.Trace, out.TraceID)
	}

	// The stitched tree: scatter → per-shard spans → numbered attempts, each
	// successful attempt carrying the shard's own evaluation subtree.
	scatter := findSpan(out.Trace.Spans, "scatter")
	if scatter == nil {
		t.Fatalf("no scatter span: %+v", out.Trace.Spans)
	}
	if findSpan(out.Trace.Spans, "merge") == nil {
		t.Fatal("no merge span")
	}
	if len(scatter.Children) != 2 {
		t.Fatalf("scatter has %d shard spans, want 2", len(scatter.Children))
	}
	for _, sh := range scatter.Children {
		if !strings.HasPrefix(sh.Name, "shard shard-") {
			t.Fatalf("unexpected scatter child %q", sh.Name)
		}
		if sh.Tags["breaker"] != "closed" || sh.Tags["outcome"] != "ok" {
			t.Fatalf("%s tags = %+v", sh.Name, sh.Tags)
		}
		attempt := findSpan(sh.Children, "attempt")
		if attempt == nil {
			t.Fatalf("%s has no attempt span", sh.Name)
		}
		if attempt.Tags["attempt"] != "1" || attempt.Tags["outcome"] != "ok" {
			t.Fatalf("attempt tags = %+v", attempt.Tags)
		}
		// The shard's own span tree (its request-level evaluate span) is
		// stitched under the attempt.
		if findSpan(attempt.Children, "evaluate") == nil {
			t.Fatalf("no shard subtree under the attempt: %+v", attempt.Children)
		}
	}

	// The shard processes joined the coordinator's id: each shard's own trace
	// ring serves a trace under it — the cross-process join the id exists for.
	for _, u := range urls {
		resp, err := http.Get(u + "/debug/traces?id=" + out.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %s retained no trace under the coordinator id (status %d)", u, resp.StatusCode)
		}
	}
}

func TestTraceRetryAttemptsSpans(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(obs.TraceHeader) == "" {
			t.Error("shard request missing trace header")
		}
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, fakeShardResponse(1))
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}),
		WithHedgeDelay(0), WithRandSeed(1),
	)
	p := testParams()
	p.Trace = true
	res := c.Query(context.Background(), p)
	if res.ShardsOK != 1 || res.Trace == nil {
		t.Fatalf("ok=%d trace=%v", res.ShardsOK, res.Trace)
	}
	sh := findSpan(findSpan(res.Trace.Spans, "scatter").Children, "shard shard-0")
	if sh == nil {
		t.Fatalf("no shard span: %+v", res.Trace.Spans)
	}
	var attempts []obs.SpanSnapshot
	for _, c := range sh.Children {
		if c.Name == "attempt" {
			attempts = append(attempts, c)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("%d attempt spans, want 2 (failure + retry)", len(attempts))
	}
	if attempts[0].Tags["attempt"] != "1" || !strings.Contains(attempts[0].Tags["outcome"], "500") {
		t.Fatalf("first attempt tags = %+v, want the 500 recorded", attempts[0].Tags)
	}
	if attempts[1].Tags["attempt"] != "2" || attempts[1].Tags["outcome"] != "ok" {
		t.Fatalf("second attempt tags = %+v", attempts[1].Tags)
	}
}

func TestTraceHedgeSpans(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-r.Context().Done() // straggler: loses to its own hedge
			return
		}
		fmt.Fprint(w, fakeShardResponse(1))
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithHedgeDelay(20*time.Millisecond),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}),
		WithRandSeed(1),
	)
	p := testParams()
	p.Trace = true
	res := c.Query(context.Background(), p)
	if res.ShardsOK != 1 || res.Trace == nil {
		t.Fatalf("ok=%d trace=%v", res.ShardsOK, res.Trace)
	}
	sh := findSpan(findSpan(res.Trace.Spans, "scatter").Children, "shard shard-0")
	if sh.Tags["hedged"] != "true" {
		t.Fatalf("shard span not marked hedged: %+v", sh.Tags)
	}
	var hedge *obs.SpanSnapshot
	attempts := 0
	for i, c := range sh.Children {
		if c.Name != "attempt" {
			continue
		}
		attempts++
		if c.Tags["hedge"] == "true" {
			hedge = &sh.Children[i]
		}
	}
	if attempts != 2 {
		t.Fatalf("%d attempt spans, want original + hedge", attempts)
	}
	// The hedge won; the straggling original may still be winding down when
	// the snapshot is cut, so only the winner's outcome is asserted.
	if hedge == nil || hedge.Tags["outcome"] != "ok" {
		t.Fatalf("hedge attempt = %+v, want outcome ok", hedge)
	}
}

func TestTraceBreakerOpenAnnotation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New([]string{ts.URL},
		WithBreakerConfig(resilience.BreakerConfig{
			Window: 4, MinVolume: 2, FailureRate: 0.5,
			OpenFor: time.Minute, HalfOpenProbes: 1,
		}),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}),
		WithHedgeDelay(0), WithRandSeed(1),
	)
	for i := 0; i < 2; i++ {
		c.Query(context.Background(), testParams())
	}

	p := testParams()
	p.Trace = true
	res := c.Query(context.Background(), p)
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	sh := findSpan(findSpan(res.Trace.Spans, "scatter").Children, "shard shard-0")
	if sh.Tags["breaker"] != "open" || sh.Tags["outcome"] != "skipped" {
		t.Fatalf("skipped shard tags = %+v, want breaker=open outcome=skipped", sh.Tags)
	}
	if findSpan(sh.Children, "attempt") != nil {
		t.Fatal("skipped shard has an attempt span; the breaker should have prevented the request")
	}
}

func TestCoordinatorSlowLogAndTraceEndpoints(t *testing.T) {
	doc := fixtureDoc(4)
	coord := New(startShardServers(t, doc, 2), WithRandSeed(1))
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()

	var out QueryDoc
	if code := getDoc(t, ct.URL+"/query?q=M1+until+M2&trace=1", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	// The slow log links each retained query to its trace id and plan key.
	var slow []obs.SlowEntry
	if code := getDoc(t, ct.URL+"/debug/slowlog", &slow); code != http.StatusOK {
		t.Fatalf("slowlog status %d", code)
	}
	if len(slow) == 0 {
		t.Fatal("empty coordinator slow log after a query")
	}
	var entry *obs.SlowEntry
	for i := range slow {
		if slow[i].TraceID == out.TraceID {
			entry = &slow[i]
		}
	}
	if entry == nil {
		t.Fatalf("no slow-log entry under trace %s: %+v", out.TraceID, slow)
	}
	if entry.PlanKey == "" {
		t.Fatalf("slow-log entry lacks a plan key: %+v", entry)
	}
	// Dominant-shard attribution: the entry names whichever member's
	// sub-query took the longest wall time.
	if entry.Shard != "shard-0" && entry.Shard != "shard-1" {
		t.Fatalf("slow-log entry's dominant shard = %q, want a member name", entry.Shard)
	}
	if entry.Query != "M1 until M2" {
		t.Fatalf("slow-log query = %q", entry.Query)
	}

	// The trace ring serves the stitched trace back by the same id.
	var list []obs.TraceSummary
	if code := getDoc(t, ct.URL+"/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	found := false
	for _, s := range list {
		if s.ID == out.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s not listed: %+v", out.TraceID, list)
	}
	var snap obs.TraceSnapshot
	if code := getDoc(t, ct.URL+"/debug/traces?id="+out.TraceID, &snap); code != http.StatusOK {
		t.Fatalf("trace fetch status %d", code)
	}
	if findSpan(snap.Spans, "scatter") == nil {
		t.Fatalf("retained trace lost its spans: %+v", snap)
	}

	// An untraced query still mints and retains a trace: propagation and
	// retention are always on; ?trace=1 only adds the response payload.
	var plain QueryDoc
	if code := getDoc(t, ct.URL+"/query?q=M1", &plain); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if plain.TraceID == "" || plain.Trace != nil {
		t.Fatalf("untraced query: id=%q trace=%v, want id only", plain.TraceID, plain.Trace)
	}
	if code := getDoc(t, ct.URL+"/debug/traces?id="+plain.TraceID, &snap); code != http.StatusOK {
		t.Fatalf("untraced query not retained (status %d)", code)
	}
}
