package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"htlvideo"
	"htlvideo/internal/core"
	"htlvideo/internal/interval"
	"htlvideo/internal/obs"
	"htlvideo/internal/server"
	"htlvideo/internal/simlist"
)

// ErrBreakerOpen marks a shard skipped without an attempt because its
// circuit breaker is open.
var ErrBreakerOpen = errors.New("breaker open")

// ErrQuorum marks a query whose successful shard count fell below the
// configured MinShards.
var ErrQuorum = errors.New("quorum not met")

// Results is one scatter-gather query's outcome. Video-level fields
// aggregate what the surviving shards reported; shard-level fields describe
// the fan-out itself.
type Results struct {
	Class     string
	Videos    int
	Evaluated int
	Top       []server.RankedDoc
	Skipped   []server.SkipDoc
	Failed    []server.FailDoc
	// Retries counts video-level re-attempts inside the shards; the
	// coordinator's own shard-level retries are in the shard.retries metric
	// and per-query in ShardRetries.
	Retries      int64
	ShardsTotal  int
	ShardsOK     int
	ShardRetries int64
	// ShardErrors itemizes each shard that contributed nothing, mirroring
	// htlvideo Results.Errors one level up: one error per lost shard, each
	// naming the shard. A query meeting quorum still lists its losses here.
	ShardErrors []error
	// TraceID is the distributed trace id the query ran under: inbound
	// context when the caller propagated one, minted here otherwise. Every
	// shard request carried it, so each shard's slow log and trace ring
	// correlate with the coordinator's stitched trace.
	TraceID string
	// Trace is the stitched cross-process span tree (scatter spans with each
	// shard's own spans attached under its attempts, then the merge), present
	// when the request asked for it.
	Trace *obs.TraceSnapshot
}

// QuorumMet reports whether at least min shards answered; min is clamped to
// at least 1.
func (r *Results) QuorumMet(min int) bool {
	if min < 1 {
		min = 1
	}
	return r.ShardsOK >= min
}

// shardError is one failed shard sub-query.
type shardError struct {
	shard string
	err   error
}

func (e *shardError) Error() string { return fmt.Sprintf("shard %s: %v", e.shard, e.err) }
func (e *shardError) Unwrap() error { return e.err }

// httpError is a non-200 shard response.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return fmt.Sprintf("status %d: %s", e.status, e.msg) }

// transientShardError classifies coordinator-level failures for the retry
// loop: network-level errors and overload/server-side statuses (429, 5xx)
// are transient; client errors (4xx) are deterministic and final; the
// requesting context's own death is never retried.
func transientShardError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.status == http.StatusTooManyRequests || he.status >= 500
	}
	return true // transport-level: connection refused, reset, EOF, ...
}

// Query runs one scatter-gather retrieval: fan p out to every shard on the
// ring, each behind its breaker with retries and hedging, then merge the
// ranked partials. If ctx carries no deadline, p.Timeout is applied.
//
// Every shard request carries the query's distributed trace id (inbound via
// p.TraceID or minted here) in the X-Htl-Trace header — retries and hedges
// included, each its own attempt span. With p.Trace the shards return their
// span trees and the coordinator stitches them under its scatter span,
// annotated with breaker states, retry/hedge outcomes and per-shard deadline
// budgets: one cross-process trace of the whole Fig.-1 query path.
func (c *Coordinator) Query(ctx context.Context, p server.QueryParams) *Results {
	c.m.queries.Inc()
	start := time.Now()
	defer func() { c.m.latency.Observe(time.Since(start)) }()

	if _, ok := ctx.Deadline(); !ok && p.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}

	// Mint the distributed trace id up front: propagation is always on (the
	// id is one header; shards join their logs to it whether or not anyone
	// asked for span payloads).
	if p.TraceID == "" {
		p.TraceID = obs.NewTraceID()
	}

	tr := obs.NewTrace(p.Query)
	tr.SetID(p.TraceID)
	tr.SetTag("layer", "coordinator")
	if p.Formula != nil {
		// The canonical text is the plan key every shard compiles under, so
		// the coordinator's slow log links to the same key without compiling.
		tr.SetTag("plan_key", p.Formula.String())
	}
	defer func() {
		tr.Finish()
		c.slow.ObserveTrace(tr)
		c.traces.ObserveTrace(tr)
		if c.cfg.sink != nil {
			c.cfg.sink.ObserveTrace(tr)
		}
	}()

	members := c.snapshotMembers()
	out := &Results{ShardsTotal: len(members), TraceID: p.TraceID}
	tr.SetTag("shards", strconv.Itoa(len(members)))

	scatterSp := tr.StartSpan("scatter")
	type partial struct {
		shard   string
		resp    *server.QueryResponse
		err     error
		elapsed time.Duration
	}
	parts := make([]partial, len(members))
	var wg sync.WaitGroup
	for i, mb := range members {
		parts[i].shard = mb.name
		sp := scatterSp.StartSpan("shard " + mb.name)
		sp.SetTag("breaker", c.breaker.State(mb.ord).String())
		if !c.breaker.Allow(mb.ord) {
			c.m.skipped.Inc()
			parts[i].err = ErrBreakerOpen
			sp.SetTag("outcome", "skipped")
			sp.End()
			continue
		}
		wg.Add(1)
		go func(i int, mb member, sp *obs.Span) {
			defer wg.Done()
			attemptStart := time.Now()
			defer func() { parts[i].elapsed = time.Since(attemptStart) }()
			sp.SetTag("url", mb.url)
			resp, err := c.queryShard(ctx, mb, p, sp)
			switch {
			case err == nil:
				c.breaker.Report(mb.ord, false)
				sp.SetTag("outcome", "ok")
				parts[i].resp = resp
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				// The request's own budget died; that says nothing about the
				// shard's health.
				c.breaker.Cancel(mb.ord)
				c.m.errors.Inc()
				sp.SetTag("outcome", "timeout")
				parts[i].err = err
			default:
				c.breaker.Report(mb.ord, true)
				c.m.errors.Inc()
				sp.SetTag("outcome", "error")
				parts[i].err = err
			}
			sp.End()
		}(i, mb, sp)
	}
	wg.Wait()
	scatterSp.End()

	// Attribute the scatter's wall time to the slowest sub-query: the shard
	// that bounded the whole fan-out. The tag rides into the slow log's Shard
	// field, so a slow coordinator query names where the time went.
	var domShard string
	var domElapsed time.Duration
	for _, pt := range parts {
		if pt.elapsed > domElapsed {
			domShard, domElapsed = pt.shard, pt.elapsed
		}
	}
	if domShard != "" {
		tr.SetTag("dominant_shard", domShard)
	}

	mergeSp := tr.StartSpan("merge")
	var entries []mergeEntry
	for _, pt := range parts {
		if pt.err != nil {
			out.ShardErrors = append(out.ShardErrors, &shardError{shard: pt.shard, err: pt.err})
			continue
		}
		out.ShardsOK++
		r := pt.resp
		out.Videos += r.Videos
		out.Evaluated += r.Evaluated
		out.Retries += r.Retries
		out.Skipped = append(out.Skipped, r.Skipped...)
		out.Failed = append(out.Failed, r.Failed...)
		for _, d := range r.Top {
			entries = append(entries, mergeEntry{
				r: core.Ranked{
					VideoID: d.Video,
					Iv:      interval.I{Beg: d.Beg, End: d.End},
					Sim:     simlist.Sim{Act: d.Sim},
				},
				doc: d,
			})
		}
	}
	// Scatter order is name-sorted, so ShardErrors is already deterministic;
	// the video-level aggregates need a sort because they interleave shards.
	sort.Slice(out.Skipped, func(i, j int) bool { return out.Skipped[i].Video < out.Skipped[j].Video })
	sort.Slice(out.Failed, func(i, j int) bool { return out.Failed[i].Video < out.Failed[j].Video })

	out.Top = mergeRanked(entries, p.K)
	for i := range parts {
		if parts[i].resp != nil {
			out.Class = parts[i].resp.Class
			break
		}
	}
	mergeSp.End()
	if !out.QuorumMet(c.cfg.minShards) {
		c.m.quorumFailures.Inc()
	}
	tr.SetTag("shards_ok", strconv.Itoa(out.ShardsOK))
	if p.Trace {
		tr.Finish()
		snap := tr.Snapshot()
		out.Trace = &snap
	}
	return out
}

// mergeEntry pairs a core.Ranked (for ordering) with the shard's document
// (carrying frac, which depends on the shard-local max similarity).
type mergeEntry struct {
	r   core.Ranked
	doc server.RankedDoc
}

// mergeRanked k-way-merges per-shard ranked streams into the global top k
// segments. The ordering is core.RankedLess and the truncation mirrors
// core.TopK (k counts segments; the last run is cut to fit), which together
// make the merge of per-shard top-k prefixes identical to a single-store
// top-k: an entry among the global top k has fewer than k segments ahead of
// it globally, hence fewer than k ahead of it on its own shard — so every
// needed entry, and enough of every needed run, is present in the partials.
func mergeRanked(entries []mergeEntry, k int) []server.RankedDoc {
	if k <= 0 || len(entries) == 0 {
		return nil
	}
	sort.SliceStable(entries, func(i, j int) bool { return core.RankedLess(entries[i].r, entries[j].r) })
	var out []server.RankedDoc
	remaining := k
	for _, e := range entries {
		if remaining <= 0 {
			break
		}
		d := e.doc
		if n := d.End - d.Beg + 1; n > remaining {
			d.End = d.Beg + remaining - 1
		}
		remaining -= d.End - d.Beg + 1
		out = append(out, d)
	}
	return out
}

// queryShard runs one shard sub-query under the retry loop; each attempt is
// hedged. The shard's budget is a fraction of the time remaining on ctx,
// forwarded as its own ?timeout= so the shard self-bounds too.
func (c *Coordinator) queryShard(ctx context.Context, mb member, p server.QueryParams, sp *obs.Span) (*server.QueryResponse, error) {
	var resp *server.QueryResponse
	// One attempt counter per shard sub-query, shared by retries and hedges:
	// every HTTP request the shard saw is numbered in the stitched trace.
	var attempt int64
	err := c.retry.Do(ctx, func() error {
		q := shardQuery(p)
		sctx := ctx
		var cancel context.CancelFunc
		if dl, ok := ctx.Deadline(); ok {
			budget := time.Duration(float64(time.Until(dl)) * c.cfg.budgetFraction)
			if budget <= 0 {
				return context.DeadlineExceeded
			}
			q.Set("timeout", budget.String())
			sp.SetTag("budget", budget.Round(time.Millisecond).String())
			sctx, cancel = context.WithTimeout(ctx, budget)
		}
		if cancel != nil {
			defer cancel()
		}
		r, e := c.callHedged(sctx, mb, q, p.TraceID, sp, &attempt)
		if e != nil {
			return e
		}
		resp = r
		return nil
	}, transientShardError)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// shardQuery re-encodes validated parameters for the shard request. Shards
// evaluate the same k as the coordinator: per-shard top-k prefixes are
// exactly what the merge needs for an exact global top k.
func shardQuery(p server.QueryParams) url.Values {
	q := url.Values{}
	q.Set("q", p.Query)
	q.Set("level", strconv.Itoa(p.Level))
	if p.AtRoot {
		q.Set("root", "true")
	}
	q.Set("engine", engineName(p.Engine))
	q.Set("tau", strconv.FormatFloat(p.Tau, 'g', -1, 64))
	q.Set("k", strconv.Itoa(p.K))
	q.Set("partial", strconv.FormatBool(p.Partial))
	if p.Trace {
		// The shard returns its span tree for stitching.
		q.Set("trace", "true")
	}
	return q
}

// callHedged issues the request, and if the shard stays quiet past the
// hedge delay, a duplicate; the first success wins and the loser is
// cancelled. A failure of the only outstanding request returns immediately
// (the retry loop owns backoff); with a hedge in flight, the last failure
// wins only after both lose.
//
// Each launch — original or hedge — is one numbered attempt span under the
// shard's span, carrying the trace id on the wire; a successful attempt that
// returned span payload gets the shard's subtree stitched under it.
func (c *Coordinator) callHedged(ctx context.Context, mb member, q url.Values, traceID string, sp *obs.Span, attempt *int64) (*server.QueryResponse, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp *server.QueryResponse
		err  error
	}
	ch := make(chan result, 2)
	launch := func(hedged bool) {
		// attempt is touched only here, on callHedged's own goroutine —
		// launches are serialized by the select loop below.
		*attempt++
		asp := sp.StartSpan("attempt")
		asp.SetTag("attempt", strconv.FormatInt(*attempt, 10))
		if hedged {
			asp.SetTag("hedge", "true")
		}
		go func() {
			r, err := c.doRequest(hctx, mb, q, traceID)
			switch {
			case err == nil:
				asp.SetTag("outcome", "ok")
				if r.Trace != nil {
					asp.AttachRemote(r.Trace.Spans)
				}
			case errors.Is(err, context.Canceled):
				// Usually the losing side of a settled hedge pair.
				asp.SetTag("outcome", "cancelled")
			default:
				asp.SetTag("outcome", shortErr(err))
			}
			asp.End()
			ch <- result{r, err}
		}()
	}
	launch(false)
	pending := 1

	var hedge <-chan time.Time
	if c.cfg.hedgeDelay > 0 {
		t := time.NewTimer(c.cfg.hedgeDelay)
		defer t.Stop()
		hedge = t.C
	}
	var firstErr error
	for {
		select {
		case <-hedge:
			hedge = nil
			c.m.hedges.Inc()
			if sp != nil {
				sp.SetTag("hedged", "true")
			}
			launch(true)
			pending++
		case r := <-ch:
			if r.err == nil {
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			pending--
			if pending == 0 {
				return nil, firstErr
			}
		}
	}
}

// shortErr caps an error message for a span tag.
func shortErr(err error) string {
	msg := err.Error()
	if len(msg) > 120 {
		msg = msg[:120] + "…"
	}
	return msg
}

// doRequest is one HTTP attempt against one shard. The distributed trace id
// travels on every attempt, so even a failed or abandoned request is
// joinable from the shard's side.
func (c *Coordinator) doRequest(ctx context.Context, mb member, q url.Values, traceID string) (*server.QueryResponse, error) {
	c.m.requests.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mb.url+"/query?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	hr, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hr.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if hr.StatusCode != http.StatusOK {
		var ed struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(body, &ed)
		if ed.Error == "" {
			ed.Error = http.StatusText(hr.StatusCode)
		}
		return nil, &httpError{status: hr.StatusCode, msg: ed.Error}
	}
	var resp server.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("decoding shard response: %w", err)
	}
	return &resp, nil
}

// engineName inverts the ?engine= parsing in server.ParseQueryRequest.
func engineName(e htlvideo.Engine) string {
	switch e {
	case htlvideo.EngineDirect:
		return "direct"
	case htlvideo.EngineSQL:
		return "sql"
	case htlvideo.EngineReference:
		return "reference"
	default:
		return "auto"
	}
}
