package shard

// Property test for the k-way ranked merge: for random per-video similarity
// lists and a random partition of the videos into shards, merging the
// shards' local top-k prefixes must reproduce the global top-k over the
// unpartitioned lists exactly — ties included, truncation included. This is
// the correctness core of scatter-gather retrieval.

import (
	"math/rand"
	"reflect"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/interval"
	"htlvideo/internal/server"
	"htlvideo/internal/simlist"
)

// docsFromRanked converts top-k output to the wire shape the same way
// internal/server does.
func docsFromRanked(rs []core.Ranked) []server.RankedDoc {
	var out []server.RankedDoc
	for _, rk := range rs {
		out = append(out, server.RankedDoc{
			Video: rk.VideoID, Beg: rk.Iv.Beg, End: rk.Iv.End,
			Sim: rk.Sim.Act, Frac: rk.Sim.Frac(),
		})
	}
	return out
}

// entriesFromDocs converts wire docs back to merge inputs the same way the
// coordinator does when it decodes a shard response.
func entriesFromDocs(docs []server.RankedDoc) []mergeEntry {
	var out []mergeEntry
	for _, d := range docs {
		out = append(out, mergeEntry{
			r: core.Ranked{
				VideoID: d.Video,
				Iv:      interval.I{Beg: d.Beg, End: d.End},
				Sim:     simlist.Sim{Act: d.Sim},
			},
			doc: d,
		})
	}
	return out
}

func TestMergeMatchesGlobalTopK(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		// Random per-video lists with deliberate similarity ties: Act drawn
		// from a four-value set so cross-video ties are common.
		nv := 1 + rnd.Intn(12)
		lists := map[int]simlist.List{}
		for vid := 1; vid <= nv; vid++ {
			n := rnd.Intn(6)
			var entries []simlist.Entry
			beg := 1
			for i := 0; i < n; i++ {
				length := 1 + rnd.Intn(4)
				entries = append(entries, simlist.Entry{
					Iv:  interval.I{Beg: beg, End: beg + length - 1},
					Act: float64(rnd.Intn(4)) / 2,
				})
				beg += length + rnd.Intn(2)
			}
			lists[vid] = simlist.List{Entries: entries, MaxSim: 2}
		}
		k := 1 + rnd.Intn(15)
		want := docsFromRanked(core.TopK(lists, k))

		// Random partition: each video lands on exactly one of m shards.
		m := 1 + rnd.Intn(4)
		parts := make([]map[int]simlist.List, m)
		for i := range parts {
			parts[i] = map[int]simlist.List{}
		}
		for vid, l := range lists {
			parts[rnd.Intn(m)][vid] = l
		}

		// Each shard computes its own local top-k; the coordinator merges.
		var entries []mergeEntry
		for _, pl := range parts {
			entries = append(entries, entriesFromDocs(docsFromRanked(core.TopK(pl, k)))...)
		}
		got := mergeRanked(entries, k)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (videos=%d shards=%d k=%d): merged top-k diverges\n got: %+v\nwant: %+v",
				trial, nv, m, k, got, want)
		}
	}
}

func TestMergeRankedTruncatesLastRun(t *testing.T) {
	entries := entriesFromDocs([]server.RankedDoc{
		{Video: 1, Beg: 1, End: 4, Sim: 2, Frac: 1},     // 4 segments
		{Video: 2, Beg: 10, End: 13, Sim: 1, Frac: 0.5}, // 4 more
	})
	got := mergeRanked(entries, 6)
	want := []server.RankedDoc{
		{Video: 1, Beg: 1, End: 4, Sim: 2, Frac: 1},
		{Video: 2, Beg: 10, End: 11, Sim: 1, Frac: 0.5}, // cut to 2 segments
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if mergeRanked(entries, 0) != nil {
		t.Fatal("k=0 must yield nil")
	}
}
