// Package shard implements scatter-gather retrieval over N shard servers.
//
// A deployment splits its store by consistent hashing on video id
// (htlvideo.SplitDoc / internal/ring), runs one internal/server process per
// shard document, and puts this package's Coordinator in front. The
// coordinator parses and compiles each HTL query once (the same
// server.ParseQueryRequest validation every layer uses), fans it out to all
// shards in parallel, and k-way-merges the ranked partial results under
// core.RankedLess — the same ordering the single-store top-k uses, so a
// healthy merged ranking is identical to a single-store run.
//
// In the paper's Fig. 1 architecture the coordinator plays the query
// processor over a partitioned video database: parsing and ranking stay
// global, picture-system evaluation happens where the videos live.
//
// Robustness mirrors internal/server one level up, with shards in place of
// videos: a circuit breaker per shard (keyed by a stable ordinal), transient
// failures retried with full-jitter backoff, stragglers hedged with a
// duplicate request after a quiet period, per-shard deadlines carved from
// the request budget, and quorum semantics — a response is served from the
// surviving shards as long as at least MinShards answered, with the losses
// itemized in Results.ShardErrors (mirroring htlvideo Results.Errors).
package shard

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"htlvideo/internal/obs"
	"htlvideo/internal/obs/timeseries"
	"htlvideo/internal/resilience"
	"htlvideo/internal/ring"
)

// Coordinator fans queries out to shard servers and merges their rankings.
// All methods are safe for concurrent use.
type Coordinator struct {
	cfg     config
	client  *http.Client
	breaker *resilience.Breaker
	retry   *resilience.Retrier

	mu      sync.RWMutex
	ring    *ring.Ring
	members map[string]*member
	nextOrd int64

	reg      *obs.Registry
	slow     *obs.SlowLog
	traces   *obs.TraceRing
	sampler  *timeseries.Sampler
	m        metrics
	draining atomic.Bool
}

// member is one shard server.
type member struct {
	name string
	url  string // base URL, e.g. http://127.0.0.1:8081
	// ord is the member's stable breaker key. A name that leaves and
	// rejoins gets a fresh ordinal — and so a fresh breaker history.
	ord int64
}

// ShardInfo is one shard's externally visible state (the /shards listing).
type ShardInfo struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Breaker string `json:"breaker"`
}

type config struct {
	minShards      int
	hedgeDelay     time.Duration
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	budgetFraction float64
	breaker        resilience.BreakerConfig
	retry          resilience.RetryConfig
	rand           func(n int64) int64
	now            func() time.Time
	logf           func(format string, args ...any)
	sink           obs.TraceSink
	clientOverride *http.Client
	traceBuf       int
	sampleInterval time.Duration
}

// Option configures a Coordinator.
type Option func(*config)

// WithMinShards sets the quorum: a query whose successful shard count falls
// below n fails as a whole instead of serving a partial ranking. The default
// 1 serves whatever survives; len(shards) demands unanimity.
func WithMinShards(n int) Option { return func(c *config) { c.minShards = n } }

// WithHedgeDelay sets how long a shard request may go unanswered before a
// duplicate (hedged) request is sent to the same shard; the first response
// wins. 0 disables hedging.
func WithHedgeDelay(d time.Duration) Option { return func(c *config) { c.hedgeDelay = d } }

// WithDefaultTimeout sets the budget for requests that name no ?timeout=.
func WithDefaultTimeout(d time.Duration) Option { return func(c *config) { c.defaultTimeout = d } }

// WithMaxTimeout caps the budget a client may request.
func WithMaxTimeout(d time.Duration) Option { return func(c *config) { c.maxTimeout = d } }

// WithBreakerConfig tunes the per-shard circuit breakers.
func WithBreakerConfig(cfg resilience.BreakerConfig) Option {
	return func(c *config) { c.breaker = cfg }
}

// WithRetryConfig tunes the per-shard retry loop.
func WithRetryConfig(cfg resilience.RetryConfig) Option { return func(c *config) { c.retry = cfg } }

// WithRandSeed makes backoff jitter deterministic for tests.
func WithRandSeed(seed int64) Option {
	return func(c *config) { c.rand = resilience.SeededRand(seed) }
}

// WithClock injects the breaker clock (tests advance it by hand).
func WithClock(now func() time.Time) Option { return func(c *config) { c.now = now } }

// WithLogger sets the coordinator's log function (log.Printf-compatible).
func WithLogger(logf func(format string, args ...any)) Option {
	return func(c *config) { c.logf = logf }
}

// WithHTTPClient replaces the shard-facing HTTP client.
func WithHTTPClient(client *http.Client) Option {
	return func(c *config) { c.clientOverride = client }
}

// WithTraceSink registers a sink receiving one finished trace per query,
// with a child span per shard attempt.
func WithTraceSink(sink obs.TraceSink) Option { return func(c *config) { c.sink = sink } }

// WithTraceBufferSize sets how many recent query traces the coordinator's
// /debug/traces ring retains (default obs.DefaultTraceRingSize).
func WithTraceBufferSize(n int) Option { return func(c *config) { c.traceBuf = n } }

// WithSampleInterval starts the coordinator's background metrics sampler at
// the given cadence, feeding /debug/timeseries and the dashboard's
// sparklines. A non-positive interval leaves sampling off; Close stops it.
func WithSampleInterval(d time.Duration) Option {
	return func(c *config) { c.sampleInterval = d }
}

// metrics are the coordinator's shard.* instruments.
type metrics struct {
	queries        *obs.Counter // shard.queries: coordinator queries served
	requests       *obs.Counter // shard.requests: HTTP attempts to shards
	errors         *obs.Counter // shard.errors: failed shard sub-queries
	retries        *obs.Counter // shard.retries: re-attempts after transient errors
	hedges         *obs.Counter // shard.hedges: duplicate requests to stragglers
	skipped        *obs.Counter // shard.skipped: sub-queries refused by an open breaker
	quorumFailures *obs.Counter // shard.quorum_failures
	brOpened       *obs.Counter // shard.breaker.opened
	brHalfOpen     *obs.Counter // shard.breaker.half_open
	brClosed       *obs.Counter // shard.breaker.closed
	latency        *obs.Histogram
}

// New builds a coordinator over the given shard base URLs, named
// "shard-0" ... "shard-<n-1>" in order — the canonical names SplitDoc
// partitions under, so shard i must serve the i-th document of
// SplitDoc(doc, n).
func New(shardURLs []string, opts ...Option) *Coordinator {
	named := map[string]string{}
	for i, u := range shardURLs {
		named[fmt.Sprintf("shard-%d", i)] = u
	}
	return NewNamed(named, opts...)
}

// NewNamed builds a coordinator over explicitly named shards.
func NewNamed(shards map[string]string, opts ...Option) *Coordinator {
	cfg := config{
		minShards:      1,
		hedgeDelay:     100 * time.Millisecond,
		defaultTimeout: 5 * time.Second,
		maxTimeout:     60 * time.Second,
		budgetFraction: 0.9,
		breaker:        resilience.DefaultBreakerConfig(),
		retry:          resilience.DefaultRetryConfig(),
		now:            time.Now,
		logf:           func(string, ...any) {},
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.minShards < 1 {
		cfg.minShards = 1
	}

	c := &Coordinator{
		cfg:     cfg,
		client:  cfg.clientOverride,
		ring:    ring.New(nil, 0),
		members: map[string]*member{},
		reg:     obs.NewRegistry(),
		slow:    obs.NewSlowLog(obs.DefaultSlowLogSize),
	}
	c.traces = obs.NewTraceRing(cfg.traceBuf)
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.m = metrics{
		queries:        c.reg.Counter("shard.queries"),
		requests:       c.reg.Counter("shard.requests"),
		errors:         c.reg.Counter("shard.errors"),
		retries:        c.reg.Counter("shard.retries"),
		hedges:         c.reg.Counter("shard.hedges"),
		skipped:        c.reg.Counter("shard.skipped"),
		quorumFailures: c.reg.Counter("shard.quorum_failures"),
		brOpened:       c.reg.Counter("shard.breaker.opened"),
		brHalfOpen:     c.reg.Counter("shard.breaker.half_open"),
		brClosed:       c.reg.Counter("shard.breaker.closed"),
		latency:        c.reg.Histogram("shard.query_latency", nil),
	}
	c.reg.GaugeFunc("shard.shards", func() int64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return int64(len(c.members))
	})
	c.reg.DescribeAll(map[string]string{
		"shard.queries":           "Scatter-gather queries served by the coordinator.",
		"shard.requests":          "HTTP attempts issued to shard servers (retries and hedges included).",
		"shard.errors":            "Shard sub-queries that failed after retries.",
		"shard.retries":           "Shard sub-query re-attempts after transient errors.",
		"shard.hedges":            "Duplicate requests sent to straggling shards.",
		"shard.skipped":           "Shard sub-queries refused by an open circuit breaker.",
		"shard.quorum_failures":   "Queries whose successful shard count fell below MinShards.",
		"shard.breaker.opened":    "Per-shard circuit-breaker transitions to open.",
		"shard.breaker.half_open": "Per-shard circuit-breaker transitions to half-open.",
		"shard.breaker.closed":    "Per-shard circuit-breaker transitions back to closed.",
		"shard.query_latency":     "Whole scatter-gather query latency.",
		"shard.shards":            "Current shard membership count.",
		"shard.panics":            "Panics recovered in coordinator HTTP handlers.",
	})
	c.sampler = timeseries.New(c.reg.Snapshot)
	if cfg.sampleInterval > 0 {
		c.sampler.Start(cfg.sampleInterval)
	}
	c.breaker = resilience.NewBreaker(cfg.breaker, cfg.now, c.onBreakerTransition)
	c.retry = resilience.NewRetrier(cfg.retry, cfg.rand, func(int, error) { c.m.retries.Inc() })

	// Deterministic ordinal assignment: sorted names.
	names := make([]string, 0, len(shards))
	for name := range shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.AddShard(name, shards[name])
	}
	return c
}

// onBreakerTransition counts and logs per-shard breaker state changes.
func (c *Coordinator) onBreakerTransition(key int64, from, to resilience.BreakerState) {
	switch to {
	case resilience.StateOpen:
		c.m.brOpened.Inc()
	case resilience.StateHalfOpen:
		c.m.brHalfOpen.Inc()
	case resilience.StateClosed:
		c.m.brClosed.Inc()
	}
	c.cfg.logf("shard: breaker %s: %v -> %v", c.nameOfOrd(key), from, to)
}

// nameOfOrd maps a breaker key back to the shard name (best effort, for
// logs).
func (c *Coordinator) nameOfOrd(ord int64) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, m := range c.members {
		if m.ord == ord {
			return m.name
		}
	}
	return fmt.Sprintf("ord-%d", ord)
}

// AddShard joins a shard to the ring (replacing the URL if the name already
// exists) and reports whether membership changed.
func (c *Coordinator) AddShard(name, url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[name]; ok {
		m.url = url
		return false
	}
	c.nextOrd++
	c.members[name] = &member{name: name, url: url, ord: c.nextOrd}
	c.ring.Add(name)
	c.cfg.logf("shard: joined %s (%s)", name, url)
	return true
}

// RemoveShard leaves a shard from the ring and reports whether it was a
// member. Queries in flight finish their calls; new queries no longer fan
// out to it.
func (c *Coordinator) RemoveShard(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[name]; !ok {
		return false
	}
	delete(c.members, name)
	c.ring.Remove(name)
	c.cfg.logf("shard: left %s", name)
	return true
}

// Shards lists the current membership with breaker states, sorted by name.
func (c *Coordinator) Shards() []ShardInfo {
	c.mu.RLock()
	out := make([]ShardInfo, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, ShardInfo{
			Name: m.name, URL: m.url,
			Breaker: c.breaker.State(m.ord).String(),
		})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Metrics returns the coordinator's registry (shard.* namespace).
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// SlowLog returns the coordinator's slow-query log: the N slowest
// scatter-gather queries with their stitched traces, linked by trace id and
// plan key.
func (c *Coordinator) SlowLog() *obs.SlowLog { return c.slow }

// TraceRing returns the coordinator's bounded ring of recent stitched traces
// (the /debug/traces backing store).
func (c *Coordinator) TraceRing() *obs.TraceRing { return c.traces }

// Sampler returns the coordinator's metrics-history sampler (the
// /debug/timeseries backing store; empty until sampling starts).
func (c *Coordinator) Sampler() *timeseries.Sampler { return c.sampler }

// Close stops the coordinator's background work (the metrics sampler).
// Idempotent; in-flight queries are unaffected.
func (c *Coordinator) Close() { c.sampler.Close() }

// snapshotMembers copies the membership for one fan-out, sorted by name so
// scatter order (and everything derived from it) is deterministic.
func (c *Coordinator) snapshotMembers() []member {
	c.mu.RLock()
	out := make([]member, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, *m)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
