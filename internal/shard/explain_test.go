package shard

// Distributed EXPLAIN: the coordinator's merged per-node profile must agree
// with what a single unsharded store reports — videos partition disjointly,
// so per-shard visit counts sum to the single-store counts node by node —
// and the rendered tree is golden-tested with times blanked, like the
// single-store testdata/explain suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"htlvideo/internal/obs"
	"htlvideo/internal/resilience"
	"htlvideo/internal/server"
)

var updateExplainGolden = flag.Bool("update", false, "rewrite testdata/explain golden files")

func explainParams(q string) server.QueryParams {
	p := testParams()
	p.Query = q
	return p
}

// distributedExplainCases drive both the merge-consistency and the golden
// tests: one query per interesting plan shape on the 9-video fixture.
var distributedExplainCases = []struct {
	name  string
	query string
}{
	{"atomic", "M1"},
	{"until", "M1 until M2"},
	{"eventually", "eventually M2"},
}

func TestDistributedExplainMatchesSingleStore(t *testing.T) {
	doc := fixtureDoc(9)
	single, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	coord := New(startShardServers(t, doc, 3), WithRandSeed(1))

	for _, c := range distributedExplainCases {
		t.Run(c.name, func(t *testing.T) {
			merged, err := coord.Explain(context.Background(), explainParams(c.query), false)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := single.Explain(c.query)
			if err != nil {
				t.Fatal(err)
			}

			if merged.Shards.OK != 3 || merged.Shards.Total != 3 {
				t.Fatalf("shards = %+v, want 3/3", merged.Shards)
			}
			if merged.PlanKey != ref.PlanKey {
				t.Fatalf("plan key %q != single store's %q", merged.PlanKey, ref.PlanKey)
			}
			if merged.Class != ref.Class || merged.Nodes != ref.Nodes {
				t.Fatalf("class/nodes = %s/%d, want %s/%d", merged.Class, merged.Nodes, ref.Class, ref.Nodes)
			}
			if merged.Videos != ref.Videos {
				t.Fatalf("videos = %d, want the single store's %d", merged.Videos, ref.Videos)
			}
			if len(merged.TraceID) != 32 {
				t.Fatalf("trace id %q", merged.TraceID)
			}

			// Node-by-node: the summed per-shard counts equal the single-store
			// profile, and the per-shard breakdown is internally consistent.
			seen := map[*MergedNode]bool{}
			var walk func(m *MergedNode, n *obs.ExplainNode)
			walk = func(m *MergedNode, n *obs.ExplainNode) {
				if m.ID != n.ID || m.Op != n.Op || m.Formula != n.Formula {
					t.Fatalf("node mismatch: merged %d/%s/%q vs single %d/%s/%q",
						m.ID, m.Op, m.Formula, n.ID, n.Op, n.Formula)
				}
				if m.Stats.Visits != n.Stats.Visits {
					t.Errorf("node %d (%s): summed visits %d != single-store %d",
						m.ID, m.Op, m.Stats.Visits, n.Stats.Visits)
				}
				if m.Stats.AtomicEvals != n.Stats.AtomicEvals {
					t.Errorf("node %d: summed atomic evals %d != %d",
						m.ID, m.Stats.AtomicEvals, n.Stats.AtomicEvals)
				}
				var perShard int64
				for _, st := range m.PerShard {
					perShard += st.Visits
				}
				if perShard != m.Stats.Visits {
					t.Errorf("node %d: per-shard visits sum %d != merged %d", m.ID, perShard, m.Stats.Visits)
				}
				if len(m.PerShard) != 3 {
					t.Errorf("node %d: %d shard entries, want 3", m.ID, len(m.PerShard))
				}
				if len(m.Children) != len(n.Children) {
					t.Fatalf("node %d: %d children vs %d", m.ID, len(m.Children), len(n.Children))
				}
				if seen[m] {
					return // a shared node: already checked under another parent
				}
				seen[m] = true
				for i := range m.Children {
					walk(m.Children[i], n.Children[i])
				}
			}
			walk(merged.Plan, ref.Plan)
		})
	}
}

// TestDistributedExplainGolden renders each case's merged tree with times
// blanked (shard membership and counts are deterministic: SplitDoc's
// partition is a pure function of video ids and New names shards in order)
// against
// testdata/explain/<name>.golden; -update rewrites the files.
func TestDistributedExplainGolden(t *testing.T) {
	doc := fixtureDoc(9)
	coord := New(startShardServers(t, doc, 3), WithRandSeed(1))
	for _, c := range distributedExplainCases {
		t.Run(c.name, func(t *testing.T) {
			merged, err := coord.Explain(context.Background(), explainParams(c.query), false)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			merged.Render(&buf, false)
			path := filepath.Join("testdata", "explain", c.name+".golden")
			if *updateExplainGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestDistributedExplainGolden -update` to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("explain output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, buf.String(), want)
			}
		})
	}
}

func TestCoordinatorExplainHTTP(t *testing.T) {
	doc := fixtureDoc(6)
	coord := New(startShardServers(t, doc, 2), WithRandSeed(1))
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()

	post := func(form string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ct.URL+"/explain", "application/x-www-form-urlencoded", strings.NewReader(form))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post("q=M1+until+M2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ed ExplainDoc
	if err := json.Unmarshal(body, &ed); err != nil {
		t.Fatal(err)
	}
	if ed.Plan == nil || ed.Shards.OK != 2 || len(ed.PerShard) != 2 {
		t.Fatalf("doc = %+v", ed)
	}
	if len(ed.TraceID) != 32 {
		t.Fatalf("trace id %q", ed.TraceID)
	}
	// The decoded tree renders with times: the straggler column and
	// durations came over the wire.
	var rendered bytes.Buffer
	ed.Render(&rendered, true)
	if !strings.Contains(rendered.String(), "straggler=") {
		t.Errorf("rendered explain lacks a straggler column:\n%s", rendered.String())
	}

	// GET is refused; a parse failure is a hard 400.
	gr, err := http.Get(ct.URL + "/explain?q=M1")
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", gr.StatusCode)
	}
	if resp, _ := post("q=" + url.QueryEscape("M1 until")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("q=M1&exact=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad exact status %d, want 400", resp.StatusCode)
	}
}

func TestCoordinatorExplainQuorum(t *testing.T) {
	doc := fixtureDoc(4)
	urls := startShardServers(t, doc, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	urls = append(urls, dead.URL)

	// Unanimity: one dead shard fails the explain with 503 and itemizes it.
	strict := New(urls, WithMinShards(3),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}), WithRandSeed(1))
	sts := httptest.NewServer(strict.Handler())
	defer sts.Close()
	resp, err := http.Post(sts.URL+"/explain", "application/x-www-form-urlencoded", strings.NewReader("q=M1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var ed struct {
		Error  string    `json:"error"`
		Shards ShardsDoc `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ed); err != nil {
		t.Fatal(err)
	}
	if len(ed.Shards.Errors) != 1 || ed.Shards.Errors[0].Shard != "shard-2" {
		t.Fatalf("errors = %+v, want shard-2 itemized", ed.Shards.Errors)
	}

	// Quorum 1: the two survivors still merge.
	lax := New(urls, WithMinShards(1),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}), WithRandSeed(1))
	merged, err := lax.Explain(context.Background(), explainParams("M1"), false)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Shards.OK != 2 || merged.Plan == nil || len(merged.Plan.PerShard) != 2 {
		t.Fatalf("partial explain = %+v", merged)
	}
}
