package shard

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"htlvideo/internal/obs/querystats"
	"htlvideo/internal/server"
)

// TestQueryStatsMergeMatchesUnsharded replays the same workload through a
// three-shard coordinator and an unsharded server, then checks the
// coordinator's merged /debug/queries against the single store's. The serving
// layer runs one store query per video and each video lives on exactly one
// shard, so the merged per-plan-key call counts (and videos evaluated, and
// latency-histogram populations) must equal the unsharded store's exactly.
// Hedging is off so no shard is ever queried twice; k is larger than the
// corpus so top-k early termination never skips a video.
func TestQueryStatsMergeMatchesUnsharded(t *testing.T) {
	doc := fixtureDoc(9)
	const nShards = 3
	urls := startShardServers(t, doc, nShards)
	coord := New(urls, WithHedgeDelay(0), WithRandSeed(1))
	defer coord.Close()
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()

	full, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(server.New(full, server.WithRandSeed(1)).Handler())
	defer single.Close()

	workload := []string{
		"q=M1&k=100", "q=M1&k=100", "q=M1&k=100",
		"q=M1+until+M2&k=100", "q=M1+until+M2&k=100",
		"q=eventually+M2&k=100",
		"q=M1++until++M2&k=100", // extra whitespace folds to the same plan key
	}
	for _, q := range workload {
		if code := getDoc(t, ct.URL+"/query?"+q, nil); code != http.StatusOK {
			t.Fatalf("coordinator %s: status %d", q, code)
		}
		if code := getDoc(t, single.URL+"/query?"+q, nil); code != http.StatusOK {
			t.Fatalf("single %s: status %d", q, code)
		}
	}

	var merged queryStatsDoc
	if code := getDoc(t, ct.URL+"/debug/queries", &merged); code != http.StatusOK {
		t.Fatalf("coordinator /debug/queries: status %d", code)
	}
	var want querystats.Snapshot
	if code := getDoc(t, single.URL+"/debug/queries", &want); code != http.StatusOK {
		t.Fatalf("single /debug/queries: status %d", code)
	}

	if len(merged.Shards) != nShards {
		t.Fatalf("shard statuses = %d, want %d", len(merged.Shards), nShards)
	}
	for _, ss := range merged.Shards {
		if ss.Error != "" || ss.Entries == 0 {
			t.Fatalf("shard %s contributed nothing: %+v", ss.Shard, ss)
		}
	}

	wantByKey := map[string]querystats.EntrySnapshot{}
	for _, e := range want.Entries {
		wantByKey[e.PlanKey] = e
	}
	if len(wantByKey) != 3 {
		t.Fatalf("unsharded plan keys = %d, want 3 (whitespace variants must fold)", len(wantByKey))
	}
	gotByKey := map[string]querystats.EntrySnapshot{}
	for _, e := range merged.Entries {
		gotByKey[e.PlanKey] = e
	}
	if len(gotByKey) != len(wantByKey) {
		t.Fatalf("merged plan keys = %d, want %d", len(gotByKey), len(wantByKey))
	}
	for key, we := range wantByKey {
		ge, ok := gotByKey[key]
		if !ok {
			t.Fatalf("plan key %q missing from merged stats", key)
		}
		if ge.Calls != we.Calls {
			t.Fatalf("%q: merged calls = %d, want the unsharded store's %d", key, ge.Calls, we.Calls)
		}
		if ge.VideosEvaluated != we.VideosEvaluated {
			t.Fatalf("%q: merged videos evaluated = %d, want %d", key, ge.VideosEvaluated, we.VideosEvaluated)
		}
		if ge.ErrorCount() != 0 {
			t.Fatalf("%q: merged errors = %v on a healthy fleet", key, ge.Errors)
		}
		if ge.Class != we.Class {
			t.Fatalf("%q: class %q != %q", key, ge.Class, we.Class)
		}
		if ge.Latency.Count != we.Latency.Count {
			t.Fatalf("%q: merged latency count = %d, want %d", key, ge.Latency.Count, we.Latency.Count)
		}
	}
	if merged.Totals.Calls != want.Totals.Calls {
		t.Fatalf("merged totals = %d, want %d", merged.Totals.Calls, want.Totals.Calls)
	}
	if merged.Evicted != 0 {
		t.Fatalf("merged evicted = %d, want 0", merged.Evicted)
	}
}
