package shard

// Multi-process chaos test for scatter-gather retrieval: N real shard
// server processes (the test binary re-exec'd via TestShardHelperProcess)
// behind one in-process coordinator. Phase one proves the healthy merged
// ranking byte-identical to a single unsharded store. Phase two arms
// internal/faultinject on one shard (probabilistic evaluation errors,
// panics and stalls), kills another outright, and drives 32 concurrent
// clients: every request must get a response, the coordinator's breaker
// must open on the dead shard, partials must keep carrying the surviving
// shards' top-k, and a unanimity coordinator must refuse with 503. Phase
// three disarms the faults and watches recovery. Run with -race (the
// Makefile chaos-shard target does).

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"htlvideo"
	"htlvideo/internal/faultinject"
	"htlvideo/internal/obs"
	"htlvideo/internal/resilience"
	"htlvideo/internal/server"
)

// TestShardHelperProcess is not a test: it is the shard server process the
// chaos test spawns. It serves the store named by SHARD_HELPER_STORE,
// publishes its address to SHARD_HELPER_ADDRFILE, and exposes POST
// /-/chaos?mode=havoc|off to arm and disarm fault injection mid-run. It
// blocks until the parent kills it.
func TestShardHelperProcess(t *testing.T) {
	storePath := os.Getenv("SHARD_HELPER_STORE")
	if storePath == "" {
		return // normal test run, not a helper invocation
	}
	srv, err := server.Open(storePath,
		server.WithRandSeed(1),
		server.WithRetry(server.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}),
		server.WithDefaultTimeout(2*time.Second),
		server.WithMaxTimeout(5*time.Second),
		// Provisioned for the storm: with the GOMAXPROCS-sized defaults the
		// 32-client burst makes healthy shards shed 429s, which the
		// coordinator counts as failures and can trip their breakers.
		server.WithAdmission(server.AdmissionConfig{MaxConcurrent: 64, QueueLen: 256, QueueWait: time.Second}),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/-/chaos", func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("mode") {
		case "havoc":
			faultinject.Arm(faultinject.NewPlan(7,
				faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: faultinject.KeyAny, Prob: 0.25, Kind: faultinject.KindError},
				faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: faultinject.KeyAny, Prob: 0.08, Kind: faultinject.KindPanic},
				faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: faultinject.KeyAny, Prob: 0.05, Kind: faultinject.KindStall, Stall: 30 * time.Millisecond},
			))
		case "stall":
			// Deterministic straggling: every atomic eval stalls well past the
			// coordinator's hedge delay, so traced queries always hedge.
			faultinject.Arm(faultinject.NewPlan(7,
				faultinject.Rule{Site: faultinject.SiteAtomicEval, Key: faultinject.KeyAny, Prob: 1.0, Kind: faultinject.KindStall, Stall: 120 * time.Millisecond},
			))
		case "off":
			faultinject.Disarm()
		default:
			http.Error(w, "mode must be havoc, stall or off", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		os.Exit(1)
	}
	// Publish the address atomically: the parent polls for this file.
	addrFile := os.Getenv("SHARD_HELPER_ADDRFILE")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(l.Addr().String()), 0o644); err != nil {
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		os.Exit(1)
	}
	_ = http.Serve(l, mux) // blocks until the parent kills the process
}

// spawnShardProcess re-execs the test binary as a shard server over
// storePath and returns its base URL and process handle.
func spawnShardProcess(t *testing.T, storePath, addrFile string) (string, *exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestShardHelperProcess$")
	cmd.Env = append(os.Environ(),
		"SHARD_HELPER_STORE="+storePath,
		"SHARD_HELPER_ADDRFILE="+addrFile,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return "http://" + strings.TrimSpace(string(b)), cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard process for %s never published its address", storePath)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestShardChaosMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test; run without -short")
	}
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	doc := fixtureDoc(12)
	const nShards = 4

	// One real server process per shard document.
	shardDocs, err := htlvideo.SplitDoc(doc, nShards)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, nShards)
	procs := make([]*exec.Cmd, nShards)
	for i, sd := range shardDocs {
		st, err := sd.Build()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := st.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		urls[i], procs[i] = spawnShardProcess(t, path, filepath.Join(dir, fmt.Sprintf("addr-%d", i)))
	}

	// The unsharded reference for byte-identity.
	full, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(server.New(full, server.WithRandSeed(1)).Handler())
	defer single.Close()

	coord := New(urls,
		WithMinShards(1),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}),
		WithBreakerConfig(resilience.BreakerConfig{Window: 8, MinVolume: 3, FailureRate: 0.5, OpenFor: 200 * time.Millisecond, HalfOpenProbes: 1}),
		WithHedgeDelay(50*time.Millisecond),
		WithRandSeed(1),
	)
	ct := httptest.NewServer(coord.Handler())
	defer ct.Close()
	client := &http.Client{Timeout: 15 * time.Second}

	// ---- Phase 1: healthy — merged ranking byte-identical to one store.
	type rawTop struct {
		Top json.RawMessage `json:"top"`
	}
	for _, q := range []string{"q=M1&k=3", "q=M1+until+M2&k=7", "q=eventually+M2&k=100"} {
		var want, got rawTop
		if code := getDoc(t, single.URL+"/query?"+q, &want); code != http.StatusOK {
			t.Fatalf("single %s: %d", q, code)
		}
		if code := getDoc(t, ct.URL+"/query?"+q, &got); code != http.StatusOK {
			t.Fatalf("coordinator %s: %d", q, code)
		}
		if string(got.Top) != string(want.Top) {
			t.Fatalf("healthy %s: merged != single\n got: %s\nwant: %s", q, got.Top, want.Top)
		}
	}

	// ---- Phase 2: chaos — shard-1 under fault injection, shard-3 killed.
	resp, err := client.Post(urls[1]+"/-/chaos?mode=havoc", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("arming chaos: %v (%+v)", err, resp)
	}
	resp.Body.Close()
	if err := procs[3].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = procs[3].Process.Wait()

	// A traced query right after the kill: the stitched cross-process trace
	// records the dead shard's failed attempts while the survivors' subtrees
	// ride under the coordinator's trace id.
	var killed QueryDoc
	if code := getDoc(t, ct.URL+"/query?q=M1&k=5&trace=1", &killed); code != http.StatusOK {
		t.Fatalf("traced query after kill: status %d", code)
	}
	if killed.Trace == nil || killed.Trace.ID != killed.TraceID {
		t.Fatalf("traced query after kill: trace = %+v (id %q)", killed.Trace, killed.TraceID)
	}
	scatterSp := findSpan(killed.Trace.Spans, "scatter")
	if scatterSp == nil {
		t.Fatal("no scatter span in the chaos trace")
	}
	deadSp := findSpan(scatterSp.Children, "shard shard-3")
	if deadSp == nil {
		t.Fatalf("killed shard absent from the trace: %+v", scatterSp.Children)
	}
	if out := deadSp.Tags["outcome"]; out == "ok" || out == "" {
		t.Fatalf("killed shard outcome = %q, want a failure", out)
	}
	if deadSp.Tags["outcome"] != "skipped" {
		failedAttempts := 0
		for _, a := range deadSp.Children {
			if a.Name == "attempt" && a.Tags["outcome"] != "ok" {
				failedAttempts++
			}
		}
		if failedAttempts == 0 {
			t.Fatalf("no failed attempt spans under the killed shard: %+v", deadSp.Children)
		}
	}
	aliveStitched := 0
	for _, sh := range scatterSp.Children {
		if sh.Tags["outcome"] != "ok" {
			continue
		}
		if a := findSpan(sh.Children, "attempt"); a != nil && findSpan(a.Children, "evaluate") != nil {
			aliveStitched++
		}
	}
	if aliveStitched == 0 {
		t.Fatal("no surviving shard's subtree stitched into the trace")
	}

	const clients, perClient = 32, 6
	queries := []string{"q=M1&k=5", "q=M1+until+M2&k=7", "q=eventually+M2&k=3"}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		responses int
		statuses  = map[int]int{}
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				r, err := client.Get(ct.URL + "/query?" + queries[(i+j)%len(queries)])
				if err != nil {
					t.Errorf("client %d: dropped response: %v", i, err)
					return
				}
				r.Body.Close()
				mu.Lock()
				responses++
				statuses[r.StatusCode]++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if responses != clients*perClient {
		t.Fatalf("responses = %d, want %d (none dropped)", responses, clients*perClient)
	}
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("unexpected status %d (%d times): the min-1 quorum should always be met", code, statuses[code])
		}
	}

	// The dead shard's breaker opened; partials carry the survivors' top-k.
	if got := coord.Metrics().Counter("shard.breaker.opened").Value(); got < 1 {
		t.Errorf("shard.breaker.opened = %d, want >= 1", got)
	}
	// Poll rather than single-shot: breakers tripped during the storm (the
	// faulty shard's, or a survivor's after a burst of shed requests) need
	// their 200ms cool-down to half-open and re-admit the healthy shards.
	var chaosDoc QueryDoc
	partialDeadline := time.Now().Add(5 * time.Second)
	for {
		if code := getDoc(t, ct.URL+"/query?q=M1&k=5", &chaosDoc); code == http.StatusOK &&
			len(chaosDoc.Top) > 0 && chaosDoc.Shards.OK >= 2 {
			break
		}
		if time.Now().After(partialDeadline) {
			t.Fatalf("chaos partial never carried >=2 survivors' top-k: %+v", chaosDoc.Shards)
		}
		time.Sleep(50 * time.Millisecond)
	}
	found := false
	for _, se := range chaosDoc.Shards.Errors {
		if se.Shard == "shard-3" {
			found = true
		}
	}
	if !found {
		t.Errorf("shard-3's loss not itemized: %+v", chaosDoc.Shards.Errors)
	}

	// With the dead shard's breaker tripped, a traced query annotates the
	// skip: breaker=open on shard-3's span, no attempt underneath. The
	// breaker half-opens every 200ms (and the probe re-fails), so poll until
	// a trace catches it open.
	breakerDeadline := time.Now().Add(5 * time.Second)
	for {
		var traced QueryDoc
		if code := getDoc(t, ct.URL+"/query?q=M1&k=5&trace=1", &traced); code == http.StatusOK && traced.Trace != nil {
			if sc := findSpan(traced.Trace.Spans, "scatter"); sc != nil {
				if sh := findSpan(sc.Children, "shard shard-3"); sh != nil &&
					sh.Tags["breaker"] == "open" && sh.Tags["outcome"] == "skipped" {
					if findSpan(sh.Children, "attempt") != nil {
						t.Fatal("breaker-skipped shard still has an attempt span")
					}
					break
				}
			}
		}
		if time.Now().After(breakerDeadline) {
			t.Fatal("no trace ever annotated shard-3's open breaker")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// While shard-3's circuit is open the coordinator's health rollup must
	// read degraded with a breakers reason naming the dead shard. The breaker
	// cycles through half-open every 200ms, so keep queries flowing (each
	// failed probe re-opens it) and poll until the doc catches it open.
	healthDeadline := time.Now().Add(5 * time.Second)
	for {
		getDoc(t, ct.URL+"/query?q=M1&k=5", nil) // keep the dead shard's breaker tripping
		var hd obs.HealthDoc
		if code := getDoc(t, ct.URL+"/debug/health", &hd); code == http.StatusOK && hd.Status == obs.HealthDegraded {
			named := false
			for _, comp := range hd.Components {
				if comp.Name == "breakers" && !comp.OK && strings.Contains(comp.Reason, "shard-3") {
					named = true
				}
			}
			if !named {
				t.Fatalf("degraded coordinator health without a breaker reason naming shard-3: %+v", hd.Components)
			}
			break
		}
		if time.Now().After(healthDeadline) {
			t.Fatal("coordinator /debug/health never reported the dead shard's open breaker")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A unanimity coordinator over the same shards refuses below quorum.
	strict := New(urls, WithMinShards(nShards),
		WithRetryConfig(resilience.RetryConfig{MaxAttempts: 1}),
		WithHedgeDelay(0), WithRandSeed(1))
	sts := httptest.NewServer(strict.Handler())
	defer sts.Close()
	if code := getDoc(t, sts.URL+"/query?q=M1", nil); code != http.StatusServiceUnavailable {
		t.Errorf("below-quorum status = %d, want 503", code)
	}

	// ---- Phase 3: recovery — disarm the faults; the three surviving shards
	// keep answering and the merged ranking over them stabilizes.
	resp, err = client.Post(urls[1]+"/-/chaos?mode=off", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("disarming chaos: %v", err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var rec QueryDoc
		if code := getDoc(t, ct.URL+"/query?q=M1&k=5", &rec); code == http.StatusOK &&
			rec.Shards.OK == nShards-1 && len(rec.Failed) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never recovered to 3 healthy shards after disarm")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// ---- Phase 4: hedge tracing — stall shard-1 deterministically (120ms
	// per atomic eval, far past the 50ms hedge delay): a traced query must
	// show the straggler hedged, with both numbered attempts in the tree.
	resp, err = client.Post(urls[1]+"/-/chaos?mode=stall", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("arming stall: %v", err)
	}
	resp.Body.Close()
	hedgeDeadline := time.Now().Add(5 * time.Second)
	for {
		var traced QueryDoc
		if code := getDoc(t, ct.URL+"/query?q=M1&k=5&trace=1", &traced); code == http.StatusOK && traced.Trace != nil {
			if sc := findSpan(traced.Trace.Spans, "scatter"); sc != nil {
				// The storm may have left shard-1's breaker open; retry until
				// a query actually reaches it and hedges.
				if sh := findSpan(sc.Children, "shard shard-1"); sh != nil &&
					sh.Tags["hedged"] == "true" && sh.Tags["outcome"] == "ok" {
					attempts, hedges := 0, 0
					for _, a := range sh.Children {
						if a.Name == "attempt" {
							attempts++
							if a.Tags["hedge"] == "true" {
								hedges++
							}
						}
					}
					if attempts < 2 || hedges != 1 {
						t.Fatalf("hedged shard spans: %d attempts, %d hedges; want >=2 and exactly 1", attempts, hedges)
					}
					break
				}
			}
		}
		if time.Now().After(hedgeDeadline) {
			t.Fatal("no traced query ever hedged the stalled shard")
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err = client.Post(urls[1]+"/-/chaos?mode=off", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("disarming stall: %v", err)
	}
	resp.Body.Close()

	// No goroutine leaks once the servers wind down.
	single.Close()
	ct.Close()
	sts.Close()
	leakDeadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+10 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
