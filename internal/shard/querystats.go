package shard

// Fleet-wide workload analytics: the coordinator's /debug/queries fans out to
// every member's own /debug/queries and merges the per-plan-key aggregates
// bucketwise (querystats.Merge), so an operator sees one pg_stat_statements
// view of the whole partitioned store. Because shards hold disjoint video
// partitions and every shard compiles the same canonical formula text, the
// merged per-plan-key call counts equal what a single unsharded store would
// have recorded for the same workload: the serving layer runs one store
// query per video, and each video lives on exactly one shard.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"htlvideo/internal/obs/querystats"
)

// queryStatsTimeout bounds the /debug/queries fan-out; stats collection must
// never hang the debug surface on a dead shard.
const queryStatsTimeout = 5 * time.Second

// ShardStatsStatus reports one member's contribution to a merged
// /debug/queries document.
type ShardStatsStatus struct {
	Shard string `json:"shard"`
	// Entries is how many plan keys the shard reported; Error is set (and
	// Entries zero) when the shard could not be reached.
	Entries int    `json:"entries"`
	Error   string `json:"error,omitempty"`
}

// QueryStats collects every member's per-plan-key workload statistics and
// merges them into one snapshot. Unreachable shards are reported in the
// status slice and simply contribute nothing — analytics collection is
// best-effort and never fails the endpoint. The fan-out is plain parallel
// GETs outside the breaker/retry machinery: a read of statistics must not
// consume the query path's failure budget.
func (c *Coordinator) QueryStats(ctx context.Context) (querystats.Snapshot, []ShardStatsStatus) {
	members := c.snapshotMembers()
	snaps := make([]querystats.Snapshot, len(members))
	statuses := make([]ShardStatsStatus, len(members))
	var wg sync.WaitGroup
	for i, mb := range members {
		statuses[i].Shard = mb.name
		wg.Add(1)
		go func(i int, mb member) {
			defer wg.Done()
			snap, err := c.fetchQueryStats(ctx, mb)
			if err != nil {
				statuses[i].Error = err.Error()
				return
			}
			snaps[i] = snap
			statuses[i].Entries = len(snap.Entries)
		}(i, mb)
	}
	wg.Wait()
	return querystats.Merge(snaps...), statuses
}

// fetchQueryStats is one member's GET /debug/queries.
func (c *Coordinator) fetchQueryStats(ctx context.Context, mb member) (querystats.Snapshot, error) {
	var snap querystats.Snapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mb.url+"/debug/queries", nil)
	if err != nil {
		return snap, err
	}
	hr, err := c.client.Do(req)
	if err != nil {
		return snap, err
	}
	defer hr.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hr.Body, 16<<20))
	if err != nil {
		return snap, err
	}
	if hr.StatusCode != http.StatusOK {
		return snap, &httpError{status: hr.StatusCode, msg: http.StatusText(hr.StatusCode)}
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// queryStatsDoc is the coordinator's /debug/queries payload: the merged
// per-plan-key snapshot plus each member's contribution.
type queryStatsDoc struct {
	querystats.Snapshot
	Shards []ShardStatsStatus `json:"shards"`
}

// handleQueryStats serves the merged fleet view, honoring the same
// ?sort=calls|total|mean and ?limit=N a single store's endpoint takes.
func (c *Coordinator) handleQueryStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), queryStatsTimeout)
	defer cancel()
	merged, statuses := c.QueryStats(ctx)
	if by := r.URL.Query().Get("sort"); by != "" {
		querystats.SortEntries(merged.Entries, by)
		merged.SortedBy = by
	}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(merged.Entries) {
			merged.Entries = merged.Entries[:n]
		}
	}
	writeJSON(w, http.StatusOK, queryStatsDoc{Snapshot: merged, Shards: statuses})
}

// mergedQueryStats is the dashboard's snapshot source: a bounded best-effort
// collection (failures just shrink the view).
func (c *Coordinator) mergedQueryStats() querystats.Snapshot {
	ctx, cancel := context.WithTimeout(context.Background(), queryStatsTimeout)
	defer cancel()
	merged, _ := c.QueryStats(ctx)
	return merged
}
