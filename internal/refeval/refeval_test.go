package refeval

import (
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/picture"
)

// smallSystem: 4 segments; man#1 in 1 and 3, train#2 (moving) in 2, genre
// tags alternate.
func smallSystem(t *testing.T) *picture.System {
	t.Helper()
	v := metadata.NewVideo(1, "small", map[string]int{"shot": 2})
	v.Root.AppendChild(metadata.Seg().Obj(1, "man").Attr("genre", metadata.Str("western")).Build())
	v.Root.AppendChild(metadata.Seg().Obj(2, "train").Prop("moving").Build())
	v.Root.AppendChild(metadata.Seg().ObjC(1, "man", 0.5).Attr("genre", metadata.Str("western")).Build())
	v.Root.AppendChild(metadata.Seg().Build())
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	tax := picture.NewTaxonomy()
	tax.MustAdd("man", "person")
	sys, err := picture.NewSystem(v, 2, tax, picture.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func evalAt(t *testing.T, sys *picture.System, q string, u int) float64 {
	t.Helper()
	e := New(sys, core.DefaultOptions())
	a, err := e.SimAt(htl.MustParse(q), u, picture.Env{})
	if err != nil {
		t.Fatalf("%q at %d: %v", q, u, err)
	}
	return a
}

func TestNextSemantics(t *testing.T) {
	sys := smallSystem(t)
	q := "next (exists z . present(z) and type(z) = 'train' and moving(z))"
	if got := evalAt(t, sys, q, 1); got != 6 {
		t.Fatalf("at 1: %g", got)
	}
	if got := evalAt(t, sys, q, 2); got != 0 {
		t.Fatalf("at 2: %g", got)
	}
	// The last segment has no next.
	if got := evalAt(t, sys, q, 4); got != 0 {
		t.Fatalf("at 4: %g", got)
	}
}

func TestUntilBreaksAtThreshold(t *testing.T) {
	sys := smallSystem(t)
	// genre='western' holds at 1 (full) but not at 2; the train at 2 is
	// reachable from 1, the nothing at 4 is not.
	q := "genre = 'western' until (exists z . present(z) and moving(z))"
	if got := evalAt(t, sys, q, 1); got != 4 { // prop 2 + present 2
		t.Fatalf("at 1: %g", got)
	}
	// At 3 the train is behind us; only the partial h-credit of the lone
	// man (present 2·0.5, moving unmatched) remains.
	if got := evalAt(t, sys, q, 3); got != 1 {
		t.Fatalf("at 3: %g", got)
	}
	if got := evalAt(t, sys, q, 4); got != 0 {
		t.Fatalf("at 4: %g", got)
	}
}

func TestNotExtensionSemantics(t *testing.T) {
	sys := smallSystem(t)
	// General-HTL negation over a temporal scope: maxsim - sim.
	q := "not eventually (exists z . present(z) and moving(z))"
	if got := evalAt(t, sys, q, 1); got != 0 {
		t.Fatalf("at 1: %g", got)
	}
	// eventually from 3 keeps the man's partial credit 1; maxsim 4 - 1 = 3.
	if got := evalAt(t, sys, q, 3); got != 3 {
		t.Fatalf("at 3: %g", got)
	}
	if got := evalAt(t, sys, q, 4); got != 4 {
		t.Fatalf("at 4: %g", got)
	}
}

func TestNotOverObjectVariables(t *testing.T) {
	sys := smallSystem(t)
	// The picture layer refuses negation over object variables; the
	// reference evaluator decomposes instead (extension semantics).
	q := "exists x . not holds_gun(x)"
	if got := evalAt(t, sys, q, 1); got != 2 {
		t.Fatalf("at 1: %g", got)
	}
}

func TestFreezeUndefinedYieldsZero(t *testing.T) {
	sys := smallSystem(t)
	q := "[b <- brightness] eventually brightness >= b"
	if got := evalAt(t, sys, q, 1); got != 0 {
		t.Fatalf("undefined freeze: %g", got)
	}
}

func TestListMatchesSimAt(t *testing.T) {
	sys := smallSystem(t)
	q := htl.MustParse("eventually (exists z . present(z) and moving(z))")
	e := New(sys, core.DefaultOptions())
	l, err := e.List(q)
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= sys.Len(); u++ {
		a, err := e.SimAt(q, u, picture.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if l.At(u).Act != a {
			t.Fatalf("List and SimAt disagree at %d: %g vs %g", u, l.At(u).Act, a)
		}
	}
}

func TestAtLevelFromRoot(t *testing.T) {
	v := metadata.NewVideo(1, "deep", map[string]int{"scene": 2, "shot": 3})
	sc := v.Root.AppendChild(metadata.SegmentMeta{})
	sc.AppendChild(metadata.Seg().Obj(1, "man").Build())
	sc.AppendChild(metadata.Seg().Obj(2, "train").Prop("moving").Build())
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, err := picture.NewSystem(v, 1, picture.NewTaxonomy(), picture.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	q := "at-shot-level(eventually (exists z . present(z) and moving(z)))"
	e := New(sys, core.DefaultOptions())
	a, err := e.SimAt(htl.MustParse(q), 1, picture.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if a != 4 {
		t.Fatalf("at root: %g", a)
	}
}
