// Package refeval is the reference evaluator: a direct, brute-force
// implementation of the similarity semantics of paper §2.5 by structural
// recursion over the formula and the video hierarchy.
//
// It serves two purposes. First, it is the oracle the efficient
// similarity-list algorithms of internal/core are property-tested against —
// the two implementations share only the atomic scorer (picture.System), so
// any disagreement exposes a bug in the interval algebra or the table joins.
// Second, it covers the *full* HTL language (arbitrary negation and
// quantifier placement), which the paper leaves to future work: formulas
// outside the extended conjunctive class fall back to this evaluator, at
// O(n²)-and-worse cost.
//
// The recursion runs over compiled plans (core.CompilePlan): structurally
// identical subtrees share one plan node, and the evaluator memoizes the
// similarity of every *closed* subformula per segment — a closed subformula
// is environment-independent, so its value at a segment can be reused across
// the quantifier assignments and O(n²) temporal rescans that dominate the
// brute-force cost.
//
// Extension semantics beyond the paper: the similarity of ¬f is
// maxsim(f) − sim(f), consistent with the picture layer's treatment of
// negated terms inside atomic formulas.
package refeval

import (
	"context"
	"errors"
	"fmt"
	"time"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/picture"
	"htlvideo/internal/simlist"
)

// errorsAs wraps errors.As for readability at the call site.
func errorsAs(err error, target **picture.UnsupportedError) bool {
	return errors.As(err, target)
}

// memoKey identifies one (closed subformula, segment) evaluation.
type memoKey struct {
	n *core.PNode
	u int
}

// childKey identifies one child evaluator: the descendant sequence of
// segment u at a level.
type childKey struct {
	u   int
	ref htl.LevelRef
}

// Evaluator evaluates formulas over one proper sequence of segments.
type Evaluator struct {
	sys  *picture.System
	opts core.Options
	// ops throttles cancellation checkpoints: the brute-force recursion
	// visits a node per (subformula, segment) pair, so checking the context
	// on every call would dominate small evaluations.
	ops uint
	// memo caches the similarity of closed subformulas per segment; their
	// value cannot depend on the evaluation environment.
	memo map[memoKey]float64
	// maxSim caches core.MaxSimOf per plan node — the And/Not/Until cases
	// consult it on every visit.
	maxSim map[*core.PNode]float64
	// children caches one child evaluator per (segment, level), so repeated
	// level-modal descents reuse the child's memo instead of rebuilding it.
	children map[childKey]*Evaluator
}

// New builds an evaluator over the picture system's sequence.
func New(sys *picture.System, opts core.Options) *Evaluator {
	return &Evaluator{sys: sys, opts: opts}
}

// List computes the similarity list of a closed formula over the sequence,
// id by id.
func (e *Evaluator) List(f htl.Formula) (simlist.List, error) {
	return e.ListCtx(context.Background(), f)
}

// ListCtx is List with cooperative cancellation: the recursion checks ctx at
// every segment of the outer scan and periodically inside the O(n²) temporal
// scans, so a deadline stops a brute-force evaluation mid-video. It compiles
// f on the fly; callers evaluating one formula repeatedly should compile
// once and use ListPlanCtx.
func (e *Evaluator) ListCtx(ctx context.Context, f htl.Formula) (simlist.List, error) {
	return e.ListPlanCtx(ctx, core.CompilePlan(f))
}

// ListPlanCtx evaluates a compiled plan over the sequence, id by id.
func (e *Evaluator) ListPlanCtx(ctx context.Context, p *core.Plan) (simlist.List, error) {
	maxSim := e.maxSimOf(p.Root)
	dense := make([]float64, e.sys.Len())
	for u := 1; u <= e.sys.Len(); u++ {
		if err := ctx.Err(); err != nil {
			return simlist.List{}, err
		}
		a, err := e.simAt(ctx, p.Root, u, picture.Env{})
		if err != nil {
			return simlist.List{}, err
		}
		dense[u-1] = a
	}
	return simlist.FromDense(maxSim, dense), nil
}

// SimAt returns the actual similarity of f at segment u under env.
func (e *Evaluator) SimAt(f htl.Formula, u int, env picture.Env) (float64, error) {
	return e.simAt(context.Background(), core.CompilePlan(f).Root, u, env)
}

// maxSimOf caches core.MaxSimOf per node.
func (e *Evaluator) maxSimOf(n *core.PNode) float64 {
	if v, ok := e.maxSim[n]; ok {
		return v
	}
	v := core.MaxSimOf(e.sys, n.F)
	if e.maxSim == nil {
		e.maxSim = map[*core.PNode]float64{}
	}
	e.maxSim[n] = v
	return v
}

func (e *Evaluator) simAt(ctx context.Context, n *core.PNode, u int, env picture.Env) (float64, error) {
	if e.ops++; e.ops&0xff == 0 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	// A closed subformula's value is independent of env: memoize per
	// segment. This collapses the repeated rescans of the quantifier
	// enumeration and the O(n²) temporal loops onto one computation per
	// (subformula, segment).
	e.opts.Prof.Visit(n)
	useMemo := n.Closed
	if useMemo {
		if v, ok := e.memo[memoKey{n, u}]; ok {
			e.opts.Obs.MemoHit()
			e.opts.Prof.MemoHit(n)
			return v, nil
		}
	}
	// The brute-force recursion visits a node once per (segment, scan
	// position, assignment) — too often for always-on per-visit clock reads.
	// Count-based stats stay on; inclusive wall time is recorded only in
	// exact-attribution mode.
	var start time.Time
	exact := e.opts.Prof.Exact()
	if exact {
		start = time.Now()
	}
	v, err := e.simAtUncached(ctx, n, u, env)
	if err != nil {
		return 0, err
	}
	if exact {
		e.opts.Prof.AddTime(n, time.Since(start))
	}
	e.opts.Prof.AddSim(n)
	if useMemo {
		if e.memo == nil {
			e.memo = map[memoKey]float64{}
		}
		e.memo[memoKey{n, u}] = v
	}
	return v, nil
}

func (e *Evaluator) simAtUncached(ctx context.Context, n *core.PNode, u int, env picture.Env) (float64, error) {
	if n.NonTemporal {
		e.opts.Obs.AtomicEval()
		e.opts.Prof.AtomicEval(n)
		sim, err := e.sys.ScoreAtomicAt(n.F, u, env)
		var unsup *picture.UnsupportedError
		switch {
		case err == nil:
			return sim.Act, nil
		case errorsAs(err, &unsup):
			// Outside the picture system's atomic fragment (e.g. negation
			// over object variables): decompose structurally instead. The
			// distinct-objects rule then applies per atom rather than per
			// unit — the documented extension semantics for full HTL.
		default:
			return 0, err
		}
	}
	switch x := n.F.(type) {
	case htl.True, htl.Present, htl.Cmp, htl.Pred:
		e.opts.Obs.AtomicEval()
		e.opts.Prof.AtomicEval(n)
		sim, err := e.sys.ScoreAtomicAt(n.F, u, env)
		if err != nil {
			return 0, err
		}
		return sim.Act, nil
	case htl.And:
		a, err := e.simAt(ctx, n.Kids[0], u, env)
		if err != nil {
			return 0, err
		}
		b, err := e.simAt(ctx, n.Kids[1], u, env)
		if err != nil {
			return 0, err
		}
		if e.opts.And == core.AndMin {
			ma, mb := e.maxSimOf(n.Kids[0]), e.maxSimOf(n.Kids[1])
			if ma <= 0 || mb <= 0 {
				return 0, nil
			}
			return min(a/ma, b/mb) * (ma + mb), nil
		}
		return a + b, nil
	case htl.Not:
		a, err := e.simAt(ctx, n.Kids[0], u, env)
		if err != nil {
			return 0, err
		}
		return e.maxSimOf(n.Kids[0]) - a, nil
	case htl.Next:
		if u+1 > e.sys.Len() {
			return 0, nil
		}
		return e.simAt(ctx, n.Kids[0], u+1, env)
	case htl.Eventually:
		e.opts.Obs.Merge()
		e.opts.Prof.Merge(n)
		// ceil bounds every remaining scan position (similarity never
		// exceeds the subformula's maximum), so reaching it ends the scan
		// with the exact maximum already in hand.
		ceil := e.maxSimOf(n.Kids[0])
		best := 0.0
		for j := u; j <= e.sys.Len(); j++ {
			a, err := e.simAt(ctx, n.Kids[0], j, env)
			if err != nil {
				return 0, err
			}
			best = max(best, a)
			if best >= ceil {
				break
			}
		}
		return best, nil
	case htl.Until:
		e.opts.Obs.Merge()
		e.opts.Prof.Merge(n)
		gMax := e.maxSimOf(n.Kids[0])
		ceil := e.maxSimOf(n.Kids[1])
		best := 0.0
		for j := u; j <= e.sys.Len(); j++ {
			a, err := e.simAt(ctx, n.Kids[1], j, env)
			if err != nil {
				return 0, err
			}
			best = max(best, a)
			if best >= ceil {
				break
			}
			g, err := e.simAt(ctx, n.Kids[0], j, env)
			if err != nil {
				return 0, err
			}
			if gMax <= 0 || g/gMax < e.opts.UntilThreshold {
				break
			}
		}
		return best, nil
	case htl.Exists:
		return e.evalExists(ctx, n, u, env)
	case htl.Freeze:
		val := e.sys.AttrValueAt(x.Attr, u, env)
		if !val.Defined {
			// The §3.3 value-table join has no row where the attribute is
			// undefined, so the freeze yields similarity 0 there.
			return 0, nil
		}
		return e.simAt(ctx, n.Kids[0], u, env.WithAttr(x.Var, val))
	case htl.AtLevel:
		child, err := e.childAt(u, x.Level)
		if err != nil {
			return 0, err
		}
		if child == nil {
			return 0, nil
		}
		return child.simAt(ctx, n.Kids[0], 1, env)
	default:
		return 0, fmt.Errorf("refeval: unsupported formula node %T", n.F)
	}
}

// childAt returns (building and caching if needed) the evaluator over
// segment u's descendant sequence at the given level, or nil when there is
// none. Caching the evaluator keeps the child's memo alive across the
// repeated descents of enclosing temporal scans.
func (e *Evaluator) childAt(u int, ref htl.LevelRef) (*Evaluator, error) {
	k := childKey{u: u, ref: ref}
	if child, ok := e.children[k]; ok {
		return child, nil
	}
	src, err := e.sys.ChildSource(u, ref)
	if err != nil {
		return nil, err
	}
	var child *Evaluator
	if src != nil {
		cs, ok := src.(*picture.System)
		if !ok {
			return nil, fmt.Errorf("refeval: child source is %T, not a picture system", src)
		}
		child = New(cs, e.opts)
	}
	if e.children == nil {
		e.children = map[childKey]*Evaluator{}
	}
	e.children[k] = child
	return child, nil
}

// evalExists maximizes over assignments of the quantified variables to the
// sequence's object ids (plus the absent wildcard; objects outside the
// sequence are indistinguishable from absent ones).
func (e *Evaluator) evalExists(ctx context.Context, n *core.PNode, u int, env picture.Env) (float64, error) {
	x := n.F.(htl.Exists)
	domain := e.sys.ObjectIDs()
	best := 0.0
	var assign func(i int, cur picture.Env) error
	assign = func(i int, cur picture.Env) error {
		if i == len(x.Vars) {
			a, err := e.simAt(ctx, n.Kids[0], u, cur)
			if err != nil {
				return err
			}
			best = max(best, a)
			return nil
		}
		if err := assign(i+1, cur.WithObj(x.Vars[i], core.AnyObject)); err != nil {
			return err
		}
		for _, id := range domain {
			if err := assign(i+1, cur.WithObj(x.Vars[i], id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(0, env); err != nil {
		return 0, err
	}
	return best, nil
}
