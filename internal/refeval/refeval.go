// Package refeval is the reference evaluator: a direct, brute-force
// implementation of the similarity semantics of paper §2.5 by structural
// recursion over the formula and the video hierarchy.
//
// It serves two purposes. First, it is the oracle the efficient
// similarity-list algorithms of internal/core are property-tested against —
// the two implementations share only the atomic scorer (picture.System), so
// any disagreement exposes a bug in the interval algebra or the table joins.
// Second, it covers the *full* HTL language (arbitrary negation and
// quantifier placement), which the paper leaves to future work: formulas
// outside the extended conjunctive class fall back to this evaluator, at
// O(n²)-and-worse cost.
//
// Extension semantics beyond the paper: the similarity of ¬f is
// maxsim(f) − sim(f), consistent with the picture layer's treatment of
// negated terms inside atomic formulas.
package refeval

import (
	"context"
	"errors"
	"fmt"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/picture"
	"htlvideo/internal/simlist"
)

// errorsAs wraps errors.As for readability at the call site.
func errorsAs(err error, target **picture.UnsupportedError) bool {
	return errors.As(err, target)
}

// Evaluator evaluates formulas over one proper sequence of segments.
type Evaluator struct {
	sys  *picture.System
	opts core.Options
	// ops throttles cancellation checkpoints: the brute-force recursion
	// visits a node per (subformula, segment) pair, so checking the context
	// on every call would dominate small evaluations.
	ops uint
}

// New builds an evaluator over the picture system's sequence.
func New(sys *picture.System, opts core.Options) *Evaluator {
	return &Evaluator{sys: sys, opts: opts}
}

// List computes the similarity list of a closed formula over the sequence,
// id by id.
func (e *Evaluator) List(f htl.Formula) (simlist.List, error) {
	return e.ListCtx(context.Background(), f)
}

// ListCtx is List with cooperative cancellation: the recursion checks ctx at
// every segment of the outer scan and periodically inside the O(n²) temporal
// scans, so a deadline stops a brute-force evaluation mid-video.
func (e *Evaluator) ListCtx(ctx context.Context, f htl.Formula) (simlist.List, error) {
	maxSim := core.MaxSimOf(e.sys, f)
	dense := make([]float64, e.sys.Len())
	for u := 1; u <= e.sys.Len(); u++ {
		if err := ctx.Err(); err != nil {
			return simlist.List{}, err
		}
		a, err := e.simAt(ctx, f, u, picture.Env{})
		if err != nil {
			return simlist.List{}, err
		}
		dense[u-1] = a
	}
	return simlist.FromDense(maxSim, dense), nil
}

// SimAt returns the actual similarity of f at segment u under env.
func (e *Evaluator) SimAt(f htl.Formula, u int, env picture.Env) (float64, error) {
	return e.simAt(context.Background(), f, u, env)
}

func (e *Evaluator) simAt(ctx context.Context, f htl.Formula, u int, env picture.Env) (float64, error) {
	if e.ops++; e.ops&0xff == 0 {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if htl.NonTemporal(f) {
		e.opts.Obs.AtomicEval()
		sim, err := e.sys.ScoreAtomicAt(f, u, env)
		var unsup *picture.UnsupportedError
		switch {
		case err == nil:
			return sim.Act, nil
		case errorsAs(err, &unsup):
			// Outside the picture system's atomic fragment (e.g. negation
			// over object variables): decompose structurally instead. The
			// distinct-objects rule then applies per atom rather than per
			// unit — the documented extension semantics for full HTL.
		default:
			return 0, err
		}
	}
	switch n := f.(type) {
	case htl.True, htl.Present, htl.Cmp, htl.Pred:
		e.opts.Obs.AtomicEval()
		sim, err := e.sys.ScoreAtomicAt(f, u, env)
		if err != nil {
			return 0, err
		}
		return sim.Act, nil
	case htl.And:
		a, err := e.simAt(ctx, n.L, u, env)
		if err != nil {
			return 0, err
		}
		b, err := e.simAt(ctx, n.R, u, env)
		if err != nil {
			return 0, err
		}
		if e.opts.And == core.AndMin {
			ma, mb := core.MaxSimOf(e.sys, n.L), core.MaxSimOf(e.sys, n.R)
			if ma <= 0 || mb <= 0 {
				return 0, nil
			}
			return min(a/ma, b/mb) * (ma + mb), nil
		}
		return a + b, nil
	case htl.Not:
		a, err := e.simAt(ctx, n.F, u, env)
		if err != nil {
			return 0, err
		}
		return core.MaxSimOf(e.sys, n.F) - a, nil
	case htl.Next:
		if u+1 > e.sys.Len() {
			return 0, nil
		}
		return e.simAt(ctx, n.F, u+1, env)
	case htl.Eventually:
		e.opts.Obs.Merge()
		best := 0.0
		for j := u; j <= e.sys.Len(); j++ {
			a, err := e.simAt(ctx, n.F, j, env)
			if err != nil {
				return 0, err
			}
			best = max(best, a)
		}
		return best, nil
	case htl.Until:
		e.opts.Obs.Merge()
		gMax := core.MaxSimOf(e.sys, n.L)
		best := 0.0
		for j := u; j <= e.sys.Len(); j++ {
			a, err := e.simAt(ctx, n.R, j, env)
			if err != nil {
				return 0, err
			}
			best = max(best, a)
			g, err := e.simAt(ctx, n.L, j, env)
			if err != nil {
				return 0, err
			}
			if gMax <= 0 || g/gMax < e.opts.UntilThreshold {
				break
			}
		}
		return best, nil
	case htl.Exists:
		return e.evalExists(ctx, n, u, env)
	case htl.Freeze:
		val := e.sys.AttrValueAt(n.Attr, u, env)
		if !val.Defined {
			// The §3.3 value-table join has no row where the attribute is
			// undefined, so the freeze yields similarity 0 there.
			return 0, nil
		}
		return e.simAt(ctx, n.F, u, env.WithAttr(n.Var, val))
	case htl.AtLevel:
		src, err := e.sys.ChildSource(u, n.Level)
		if err != nil {
			return 0, err
		}
		if src == nil {
			return 0, nil
		}
		child, ok := src.(*picture.System)
		if !ok {
			return 0, fmt.Errorf("refeval: child source is %T, not a picture system", src)
		}
		return New(child, e.opts).simAt(ctx, n.F, 1, env)
	default:
		return 0, fmt.Errorf("refeval: unsupported formula node %T", f)
	}
}

// evalExists maximizes over assignments of the quantified variables to the
// sequence's object ids (plus the absent wildcard; objects outside the
// sequence are indistinguishable from absent ones).
func (e *Evaluator) evalExists(ctx context.Context, n htl.Exists, u int, env picture.Env) (float64, error) {
	domain := e.sys.ObjectIDs()
	best := 0.0
	var assign func(i int, cur picture.Env) error
	assign = func(i int, cur picture.Env) error {
		if i == len(n.Vars) {
			a, err := e.simAt(ctx, n.F, u, cur)
			if err != nil {
				return err
			}
			best = max(best, a)
			return nil
		}
		if err := assign(i+1, cur.WithObj(n.Vars[i], core.AnyObject)); err != nil {
			return err
		}
		for _, id := range domain {
			if err := assign(i+1, cur.WithObj(n.Vars[i], id)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(0, env); err != nil {
		return 0, err
	}
	return best, nil
}
