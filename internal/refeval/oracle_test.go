package refeval

import (
	"fmt"
	"math/rand"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/metadata"
	"htlvideo/internal/picture"
	"htlvideo/internal/simlist"
)

// The oracle suite: the efficient similarity-list generator (internal/core,
// the paper's §3 algorithms) must agree with this package's brute-force
// implementation of the §2.5 semantics on randomly generated videos and
// formulas of every class.

func oracleTaxonomy() *picture.Taxonomy {
	tax := picture.NewTaxonomy()
	tax.MustAdd("person", "entity")
	tax.MustAdd("man", "person")
	tax.MustAdd("woman", "person")
	tax.MustAdd("vehicle", "entity")
	tax.MustAdd("train", "vehicle")
	return tax
}

var (
	objTypes    = []string{"man", "woman", "train", "person"}
	certainties = []float64{0.25, 0.5, 0.75, 1}
	genres      = []string{"western", "news"}
)

// randomSegment fills one segment with random objects, properties,
// relationships and attributes.
func randomSegment(rng *rand.Rand) metadata.SegmentMeta {
	b := metadata.Seg()
	nObj := rng.Intn(4)
	ids := rng.Perm(6)
	var added []metadata.ObjectID
	for i := 0; i < nObj; i++ {
		id := metadata.ObjectID(ids[i] + 1)
		b.ObjC(id, objTypes[rng.Intn(len(objTypes))], certainties[rng.Intn(len(certainties))])
		added = append(added, id)
		if rng.Intn(3) == 0 {
			b.Prop("moving")
		}
		if rng.Intn(3) == 0 {
			b.Prop("holds_gun")
		}
		if rng.Intn(2) == 0 {
			b.OAttr("height", metadata.Int(int64(rng.Intn(6))))
		}
	}
	if len(added) >= 2 && rng.Intn(2) == 0 {
		b.Rel("fires_at", added[0], added[1])
	}
	if rng.Intn(2) == 0 {
		b.Attr("genre", metadata.Str(genres[rng.Intn(len(genres))]))
	}
	if rng.Intn(3) == 0 {
		b.Attr("M1", metadata.Int(1))
	}
	if rng.Intn(2) == 0 {
		b.Attr("brightness", metadata.Int(int64(rng.Intn(5))))
	}
	return b.Build()
}

// randomVideo builds a flat video (root + n segments), optionally giving
// each segment children for level-modal tests.
func randomVideo(rng *rand.Rand, n int, deep bool) *metadata.Video {
	v := metadata.NewVideo(1, "random", map[string]int{"scene": 2, "shot": 3})
	for i := 0; i < n; i++ {
		seg := v.Root.AppendChild(randomSegment(rng))
		if deep {
			for j := 0; j < 1+rng.Intn(3); j++ {
				seg.AppendChild(randomSegment(rng))
			}
		}
	}
	return v
}

// atomPool returns random non-temporal units over the free variables.
func atom(rng *rand.Rand, vars []string) string {
	// Atoms are parenthesized so that an internal `exists` cannot capture a
	// following temporal operator at composition time.
	pick := func(opts ...string) string { return "(" + opts[rng.Intn(len(opts))] + ")" }
	if len(vars) > 0 && rng.Intn(2) == 0 {
		x := vars[rng.Intn(len(vars))]
		return pick(
			fmt.Sprintf("present(%s)", x),
			fmt.Sprintf("present(%s) and type(%s) = 'man'", x, x),
			fmt.Sprintf("holds_gun(%s)", x),
			fmt.Sprintf("present(%s) and height(%s) > 2", x, x),
			fmt.Sprintf("type(%s) = 'woman'", x),
		)
	}
	return pick(
		"M1",
		"genre = 'western'",
		"not genre = 'western'",
		"brightness >= 2",
		"exists z . present(z) and type(z) = 'train' and moving(z)",
		"exists z, w . fires_at(z, w)",
		"exists z . present(z) and type(z) = 'person'",
	)
}

// randomMatrix builds a conjunctive matrix (temporal combination of units)
// over the given free variables.
func randomMatrix(rng *rand.Rand, depth int, vars []string) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		return atom(rng, vars)
	}
	switch rng.Intn(5) {
	case 0:
		return "(" + randomMatrix(rng, depth-1, vars) + " and " + randomMatrix(rng, depth-1, vars) + ")"
	case 1:
		return "(" + randomMatrix(rng, depth-1, vars) + " until " + randomMatrix(rng, depth-1, vars) + ")"
	case 2:
		return "next " + randomMatrix(rng, depth-1, vars)
	case 3:
		return "eventually " + randomMatrix(rng, depth-1, vars)
	default:
		return "(" + randomMatrix(rng, depth-1, vars) + ")"
	}
}

// randomFormula builds a closed formula of the requested flavour.
func randomFormula(rng *rand.Rand, flavour string) string {
	switch flavour {
	case "type1":
		return randomMatrix(rng, 3, nil)
	case "type2":
		nv := 1 + rng.Intn(2)
		vars := []string{"x", "y"}[:nv]
		m := randomMatrix(rng, 2, vars)
		if nv == 1 {
			return "exists x . " + m
		}
		return "exists x, y . " + m
	case "freeze":
		if rng.Intn(2) == 0 {
			return "[h <- brightness] " + "(" + randomMatrix(rng, 1, nil) + " and eventually brightness > h)"
		}
		return "exists x . present(x) and [h <- height(x)] eventually (present(x) and height(x) > h)"
	default: // level
		inner := randomMatrix(rng, 1, nil)
		switch rng.Intn(3) {
		case 0:
			return "at-next-level(" + inner + ")"
		case 1:
			return "at-shot-level(" + inner + ") and " + atom(rng, nil)
		default:
			return "eventually at-level(3, " + inner + ")"
		}
	}
}

func checkOracle(t *testing.T, seed int64, flavour string, deep bool) {
	checkOracleOpts(t, seed, flavour, deep, core.DefaultOptions())
}

func checkOracleOpts(t *testing.T, seed int64, flavour string, deep bool, opts core.Options) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v := randomVideo(rng, 4+rng.Intn(8), deep)
	if err := v.Validate(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sys, err := picture.NewSystem(v, 2, oracleTaxonomy(), picture.DefaultWeights())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	src := randomFormula(rng, flavour)
	f, err := htl.Parse(src)
	if err != nil {
		t.Fatalf("seed %d: generated unparsable %q: %v", seed, src, err)
	}
	if htl.Classify(f) == htl.ClassGeneral {
		t.Fatalf("seed %d: generator produced a general formula %q", seed, src)
	}
	fast, err := core.Eval(sys, f, opts)
	if err != nil {
		t.Fatalf("seed %d: core.Eval(%q): %v", seed, src, err)
	}
	slow, err := New(sys, opts).List(f)
	if err != nil {
		t.Fatalf("seed %d: refeval(%q): %v", seed, src, err)
	}
	// The efficient path may carry entries past the sequence end (e.g.
	// `eventually` closes down to id 1 but never up); clip for comparison.
	clipped := core.ListRestrict(fast, []interval.I{{Beg: 1, End: sys.Len()}})
	clipped.MaxSim = fast.MaxSim
	if !simlist.EqualApprox(clipped, slow, 1e-9) {
		t.Errorf("seed %d: mismatch on %q\n video: %s\n fast: %v\n slow: %v",
			seed, src, describeVideo(v), clipped, slow)
	}
}

func describeVideo(v *metadata.Video) string {
	out := ""
	for i, n := range v.Sequence(2) {
		out += fmt.Sprintf("\n  seg %d: %+v", i+1, n.Meta)
	}
	return out
}

func TestOracleType1(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		checkOracle(t, seed, "type1", false)
	}
}

func TestOracleType2(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		checkOracle(t, 1000+seed, "type2", false)
	}
}

func TestOracleFreeze(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		checkOracle(t, 2000+seed, "freeze", false)
	}
}

func TestOracleLevel(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		checkOracle(t, 3000+seed, "level", true)
	}
}

// TestOracleAndMin re-runs the type (1)/(2) oracle under the weakest-link
// conjunction semantics (§5's "other similarity functions").
func TestOracleAndMin(t *testing.T) {
	opts := core.DefaultOptions()
	opts.And = core.AndMin
	for seed := int64(0); seed < 80; seed++ {
		checkOracleOpts(t, 4000+seed, "type1", false, opts)
	}
	for seed := int64(0); seed < 80; seed++ {
		checkOracleOpts(t, 5000+seed, "type2", false, opts)
	}
}
