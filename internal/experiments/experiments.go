// Package experiments implements the paper's §4 evaluation: the Casablanca
// case study (Tables 1–4), the until worked example (Fig. 2), and the
// performance comparison between the direct interval algorithms and the
// SQL-based baseline on random data (Tables 5–6, plus the "more complex
// formulas" the paper mentions in passing).
package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"htlvideo/internal/casablanca"
	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/listio"
	"htlvideo/internal/simlist"
	"htlvideo/internal/sqlgen"
	"htlvideo/internal/workload"
)

// CasablancaTables computes the four tables of §4.1 through the real
// pipeline (picture system over the 50-shot store, then the similarity-list
// generator).
func CasablancaTables() (movingTrain, manWoman, eventually, query1 simlist.List, err error) {
	sys, err := casablanca.System()
	if err != nil {
		return
	}
	mt, err := sys.EvalAtomic(htl.MustParse(casablanca.MovingTrainQuery))
	if err != nil {
		return
	}
	movingTrain = core.ProjectMax(mt)
	mw, err := sys.EvalAtomic(htl.MustParse(casablanca.ManWomanQuery))
	if err != nil {
		return
	}
	manWoman = core.ProjectMax(mw)
	eventually = core.EventuallyList(movingTrain)
	query1, err = core.Eval(sys, htl.MustParse(casablanca.Query1), core.DefaultOptions())
	return
}

// Figure2 reproduces the worked until example of §3.1.
func Figure2() (l1, l2, out simlist.List) {
	e := func(beg, end int, act float64) simlist.Entry {
		return simlist.Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
	}
	l1 = simlist.NewList(20, e(25, 100, 15), e(200, 250, 15))
	l2 = simlist.NewList(20, e(10, 50, 10), e(55, 60, 15), e(90, 110, 12), e(125, 175, 10))
	out = core.UntilLists(l1, l2, 0.5)
	return
}

// Op identifies the formula of a performance run.
type Op string

const (
	// OpAnd is Table 5's  P1 ∧ P2.
	OpAnd Op = "P1 and P2"
	// OpUntil is Table 6's  P1 until P2.
	OpUntil Op = "P1 until P2"
	// OpComplex1 is the first of the paper's "more complex formulas".
	OpComplex1 Op = "P1 and next (P2 until P3)"
	// OpComplex2 is the second.
	OpComplex2 Op = "P1 until (P2 and eventually P3)"
)

// Formula returns the HTL text of the operation.
func (op Op) Formula() htl.Formula { return htl.MustParse(string(op)) }

// Atoms lists the predicate names the operation uses.
func (op Op) Atoms() []string {
	if op == OpAnd || op == OpUntil {
		return []string{"P1", "P2"}
	}
	return []string{"P1", "P2", "P3"}
}

// PerfInput is a prepared workload for one size.
type PerfInput struct {
	Size  int
	Lists map[string]simlist.List
}

// PrepareInput generates the §4.2 random similarity tables for one size
// (roughly a tenth of the shots satisfying each predicate).
func PrepareInput(op Op, size int, seed int64) PerfInput {
	in := PerfInput{Size: size, Lists: map[string]simlist.List{}}
	for i, name := range op.Atoms() {
		cfg := workload.DefaultConfig(size, seed+int64(i)*101)
		cfg.MaxSim = []float64{20, 20, 12}[i%3]
		in.Lists[name] = workload.Generate(cfg)
	}
	return in
}

// RunDirect evaluates the operation with the §3 interval algorithms and
// returns the elapsed time. As in the paper, the measured time includes
// sorting the input lists on their start ids (the entries arrive shuffled,
// simulating retrieval order from secondary storage).
func RunDirect(op Op, in PerfInput, tau float64, rng *rand.Rand) (simlist.List, time.Duration) {
	shuffled := map[string][]simlist.Entry{}
	maxes := map[string]float64{}
	for name, l := range in.Lists {
		es := append([]simlist.Entry(nil), l.Entries...)
		rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		shuffled[name] = es
		maxes[name] = l.MaxSim
	}
	start := time.Now()
	lists := map[string]simlist.List{}
	for name, es := range shuffled {
		sort.Slice(es, func(i, j int) bool { return es[i].Iv.Beg < es[j].Iv.Beg })
		lists[name] = simlist.List{MaxSim: maxes[name], Entries: es}
	}
	out := evalDirect(op.Formula(), lists, tau)
	return out, time.Since(start)
}

func evalDirect(f htl.Formula, atoms map[string]simlist.List, tau float64) simlist.List {
	if l, ok := atoms[f.String()]; ok {
		return l
	}
	switch n := f.(type) {
	case htl.And:
		return core.AndLists(evalDirect(n.L, atoms, tau), evalDirect(n.R, atoms, tau))
	case htl.Until:
		return core.UntilLists(evalDirect(n.L, atoms, tau), evalDirect(n.R, atoms, tau), tau)
	case htl.Next:
		return core.NextList(evalDirect(n.F, atoms, tau))
	case htl.Eventually:
		return core.EventuallyList(evalDirect(n.F, atoms, tau))
	default:
		panic(fmt.Sprintf("experiments: unsupported node %T", f))
	}
}

// EncodeInput serializes a workload's similarity lists with the binary list
// format — the "secondary storage" the paper's direct-method timings read
// from.
func EncodeInput(in PerfInput) (map[string][]byte, error) {
	out := map[string][]byte{}
	for name, l := range in.Lists {
		var buf bytes.Buffer
		if err := listio.Write(&buf, l); err != nil {
			return nil, err
		}
		out[name] = buf.Bytes()
	}
	return out, nil
}

// RunDirectStored is RunDirect with the paper's full measurement: the timed
// section decodes the similarity tables from their stored representation
// before running the interval algorithms.
func RunDirectStored(op Op, encoded map[string][]byte, tau float64) (simlist.List, time.Duration, error) {
	start := time.Now()
	lists := map[string]simlist.List{}
	for name, data := range encoded {
		l, err := listio.Read(bytes.NewReader(data))
		if err != nil {
			return simlist.List{}, 0, err
		}
		lists[name] = l
	}
	out := evalDirect(op.Formula(), lists, tau)
	return out, time.Since(start), nil
}

// PrepareSQL builds the translator and loads the atomic interval tables —
// the untimed setup of a SQL run.
func PrepareSQL(op Op, in PerfInput, tau float64) (*sqlgen.Translator, map[string]sqlgen.Atom, error) {
	tr, err := sqlgen.New(in.Size, tau)
	if err != nil {
		return nil, nil, err
	}
	atoms := map[string]sqlgen.Atom{}
	for i, name := range op.Atoms() {
		table := fmt.Sprintf("p%d", i+1)
		if err := tr.LoadAtomic(table, in.Lists[name]); err != nil {
			return nil, nil, err
		}
		atoms[name] = sqlgen.Atom{Table: table, MaxSim: in.Lists[name].MaxSim}
	}
	return tr, atoms, nil
}

// RunSQL evaluates the operation through the SQL baseline and returns the
// elapsed time of executing the generated statement sequence (the series
// relation and the atomic interval tables are loaded beforehand, matching
// the paper's measurement of "the time for executing the sequence of SQL
// queries generated on the similarity tables").
func RunSQL(op Op, in PerfInput, tau float64) (simlist.List, time.Duration, error) {
	tr, atoms, err := PrepareSQL(op, in, tau)
	if err != nil {
		return simlist.List{}, 0, err
	}
	start := time.Now()
	out, err := tr.Eval(op.Formula(), atoms)
	return out, time.Since(start), err
}

// PerfRow is one row of Table 5/6: the two approaches' times for one size.
type PerfRow struct {
	Size   int
	Direct time.Duration
	SQL    time.Duration
}

// Compare runs both systems on one size, verifies they produce identical
// similarity lists, and returns the timings.
func Compare(op Op, size int, seed int64, tau float64) (PerfRow, error) {
	in := PrepareInput(op, size, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	direct, dt := RunDirect(op, in, tau, rng)
	viaSQL, st, err := RunSQL(op, in, tau)
	if err != nil {
		return PerfRow{}, err
	}
	if !simlist.EqualApprox(direct, viaSQL, 1e-6) {
		return PerfRow{}, fmt.Errorf("experiments: direct and SQL results differ on %q size %d", op, size)
	}
	return PerfRow{Size: size, Direct: dt, SQL: st}, nil
}
