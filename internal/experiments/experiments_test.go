package experiments

import (
	"math/rand"
	"testing"

	"htlvideo/internal/interval"
	"htlvideo/internal/simlist"
)

func entry(beg, end int, act float64) simlist.Entry {
	return simlist.Entry{Iv: interval.I{Beg: beg, End: end}, Act: act}
}

func TestCasablancaTables(t *testing.T) {
	mt, mw, ev, q1, err := CasablancaTables()
	if err != nil {
		t.Fatal(err)
	}
	if !simlist.EqualApprox(mt, simlist.NewList(10, entry(9, 9, 9.787)), 1e-9) {
		t.Fatalf("table 1 = %v", mt)
	}
	if mw.Len() != 5 || mw.At(47).Act != 6.26 {
		t.Fatalf("table 2 = %v", mw)
	}
	if !simlist.EqualApprox(ev, simlist.NewList(10, entry(1, 9, 9.787)), 1e-9) {
		t.Fatalf("table 3 = %v", ev)
	}
	if q1.At(6).Act-11.047 > 1e-9 || 11.047-q1.At(6).Act > 1e-9 {
		t.Fatalf("table 4 = %v", q1)
	}
}

func TestFigure2(t *testing.T) {
	_, _, out := Figure2()
	want := simlist.NewList(20,
		entry(10, 24, 10), entry(25, 60, 15), entry(61, 110, 12), entry(125, 175, 10))
	if !simlist.Equal(out, want) {
		t.Fatalf("figure 2 = %v", out)
	}
}

func TestCompareAgreesAcrossOps(t *testing.T) {
	for _, op := range []Op{OpAnd, OpUntil, OpComplex1, OpComplex2} {
		row, err := Compare(op, 2000, 7, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if row.Direct <= 0 || row.SQL <= 0 {
			t.Fatalf("%s: timings %+v", op, row)
		}
	}
}

func TestDirectDeterministicUnderShuffle(t *testing.T) {
	in := PrepareInput(OpUntil, 5000, 3)
	a, _ := RunDirect(OpUntil, in, 0.5, rand.New(rand.NewSource(1)))
	b, _ := RunDirect(OpUntil, in, 0.5, rand.New(rand.NewSource(99)))
	if !simlist.Equal(a, b) {
		t.Fatal("shuffle order changed the result")
	}
}

func TestRunDirectStoredAgrees(t *testing.T) {
	in := PrepareInput(OpUntil, 3000, 9)
	encoded, err := EncodeInput(in)
	if err != nil {
		t.Fatal(err)
	}
	stored, _, err := RunDirectStored(OpUntil, encoded, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	memory, _ := RunDirect(OpUntil, in, 0.5, rand.New(rand.NewSource(1)))
	if !simlist.Equal(stored, memory) {
		t.Fatal("stored path disagrees with in-memory path")
	}
}

func TestPrepareInputAtoms(t *testing.T) {
	in := PrepareInput(OpComplex1, 1000, 5)
	if len(in.Lists) != 3 {
		t.Fatalf("lists = %d", len(in.Lists))
	}
	for name, l := range in.Lists {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
