package picture

import (
	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
)

// Type-constraint pruning. The underlying picture matchers [27, 2] assign
// query objects to picture objects: an object is a candidate match for a
// query variable only when its type is similar to the type the query asks
// for. Without this, `present(x) and type(x) = 'train'` would partially
// match every object in every shot through the unconstrained present term.
// We therefore extract the positive type predicates of an atomic formula and
// treat a binding of a variable to a type-incompatible object exactly like
// the absent binding (every term involving the variable scores 0).

// typeConstraints maps each object variable to the types positively asserted
// for it (type(x) = 'T' outside any negation).
func typeConstraints(f htl.Formula) map[string][]string {
	out := map[string][]string{}
	var walk func(f htl.Formula, neg bool)
	walk = func(f htl.Formula, neg bool) {
		switch n := f.(type) {
		case htl.Cmp:
			if neg || !isTypeCmp(n) {
				return
			}
			af, lit := n.L, n.R
			if _, ok := n.L.(htl.StrLit); ok {
				af, lit = n.R, n.L
			}
			v := af.(htl.AttrFn).Of
			out[v] = append(out[v], lit.(htl.StrLit).S)
		case htl.And:
			walk(n.L, neg)
			walk(n.R, neg)
		case htl.Not:
			walk(n.F, !neg)
		case htl.Exists:
			walk(n.F, neg)
		case htl.Freeze:
			walk(n.F, neg)
		}
	}
	walk(f, false)
	return out
}

// compatible reports whether an object of the given type can be assigned to
// a variable with the given positive type constraints.
func (s *System) compatible(constraints []string, objType string) bool {
	for _, want := range constraints {
		if s.tax.Sim(want, objType) <= 0 {
			return false
		}
	}
	return true
}

// pruneEnv replaces type-incompatible concrete bindings by the absent
// wildcard, making external evaluations (reference evaluator, SQL baseline)
// agree with the table builder's assignment pruning.
func (s *System) pruneEnv(f htl.Formula, id int, env Env) Env {
	cons := typeConstraints(f)
	if len(cons) == 0 || id < 1 || id > len(s.seq) {
		return env
	}
	node := s.seq[id-1]
	out := env
	copied := false
	for v, oid := range env.Obj {
		c, has := cons[v]
		if !has || oid == core.AnyObject {
			continue
		}
		o := node.Meta.FindObject(metadata.ObjectID(oid))
		if o == nil || s.compatible(c, o.Type) {
			continue
		}
		if !copied {
			out = env.withObj(v, core.AnyObject)
			copied = true
		} else {
			out.Obj[v] = core.AnyObject
		}
	}
	return out
}
