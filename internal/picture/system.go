package picture

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"htlvideo/internal/core"
	"htlvideo/internal/faultinject"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/obs"
)

// Weights assigns the per-term weights of the additive similarity model.
// The maximum similarity of a formula is the sum of its terms' weights; an
// exactly matching segment (all certainties 1, exact types) reaches it.
type Weights struct {
	// Present weights the present(x) predicate.
	Present float64
	// Type weights `type(x) = '...'` terms (scaled by taxonomy similarity).
	Type float64
	// Attr weights other comparisons on object attributes.
	Attr float64
	// Prop weights unary named predicates such as holds_gun(x).
	Prop float64
	// Rel weights binary named predicates such as fires_at(x, y).
	Rel float64
	// SegAttr weights comparisons on segment-level attributes.
	SegAttr float64
	// SegPred weights nullary named predicates (segment tags such as M1).
	SegPred float64
}

// DefaultWeights weights every term kind equally at 2.
func DefaultWeights() Weights {
	return Weights{Present: 2, Type: 2, Attr: 2, Prop: 2, Rel: 2, SegAttr: 2, SegPred: 2}
}

// System is a similarity-based picture retrieval system over one proper
// sequence of video segments (each segment playing the role of a picture,
// exactly as the paper's §4.1 feeds shots to its picture system). It builds
// inverted indices over the sequence at construction time and implements
// core.Source.
type System struct {
	video *metadata.Video
	seq   []*metadata.Node
	tax   *Taxonomy
	w     Weights

	// Inverted indices: term kind -> key -> ascending segment ids (1-based).
	byType    map[string][]int
	byProp    map[string][]int
	byRel     map[string][]int
	byObjAttr map[string][]int
	bySegAttr map[string][]int
	byTag     map[string][]int
	nonEmpty  []int // segments containing at least one object

	// childMu guards the child-source cache; level-modal evaluation asks for
	// the same descendant sequences repeatedly (and concurrently).
	childMu    sync.Mutex
	childCache map[childKey]*System
}

type childKey struct {
	id    int
	level int
}

// NewSystem builds a picture system over the proper sequence of video at the
// given level (level 2, the children of the root, matches §3's two-level
// assumption). It fails when the video has no segments at that level.
func NewSystem(video *metadata.Video, level int, tax *Taxonomy, w Weights) (*System, error) {
	return NewSystemCtx(context.Background(), video, level, tax, w)
}

// NewSystemCtx is NewSystem with a context: an injected stall (see
// internal/faultinject) or any future slow build step aborts when ctx is
// cancelled.
func NewSystemCtx(ctx context.Context, video *metadata.Video, level int, tax *Taxonomy, w Weights) (*System, error) {
	sp := obs.SpanFromContext(ctx).StartSpan("picture.build")
	defer sp.End()
	sp.SetTag("video", fmt.Sprint(video.ID))
	if err := faultinject.Fire(ctx, faultinject.SitePictureNewSystem, int64(video.ID)); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := video.Sequence(level)
	if len(seq) == 0 {
		return nil, fmt.Errorf("picture: video %d has no segments at level %d", video.ID, level)
	}
	return newSystemForSeq(video, seq, tax, w), nil
}

func newSystemForSeq(video *metadata.Video, seq []*metadata.Node, tax *Taxonomy, w Weights) *System {
	s := &System{
		video: video, seq: seq, tax: tax, w: w,
		byType:    map[string][]int{},
		byProp:    map[string][]int{},
		byRel:     map[string][]int{},
		byObjAttr: map[string][]int{},
		bySegAttr: map[string][]int{},
		byTag:     map[string][]int{},
	}
	for i, n := range seq {
		id := i + 1
		if len(n.Meta.Objects) > 0 {
			s.nonEmpty = append(s.nonEmpty, id)
		}
		for _, o := range n.Meta.Objects {
			s.byType[o.Type] = appendID(s.byType[o.Type], id)
			for p := range o.Props {
				s.byProp[p] = appendID(s.byProp[p], id)
			}
			for a := range o.Attrs {
				s.byObjAttr[a] = appendID(s.byObjAttr[a], id)
			}
		}
		for _, r := range n.Meta.Rels {
			s.byRel[r.Name] = appendID(s.byRel[r.Name], id)
		}
		for a, v := range n.Meta.Attrs {
			s.bySegAttr[a] = appendID(s.bySegAttr[a], id)
			if v == metadata.Int(1) {
				s.byTag[a] = appendID(s.byTag[a], id)
			}
		}
	}
	return s
}

// appendID appends id if it is not already the last element (segments are
// visited in order, so duplicates are always adjacent).
func appendID(ids []int, id int) []int {
	if n := len(ids); n > 0 && ids[n-1] == id {
		return ids
	}
	return append(ids, id)
}

// Len implements core.Source.
func (s *System) Len() int { return len(s.seq) }

// Node returns the idx-th (1-based) segment of the sequence; exposed for the
// reference evaluator and tests.
func (s *System) Node(id int) *metadata.Node { return s.seq[id-1] }

// ChildSource implements core.Source: the picture system over the descendant
// sequence of segment id at the level designated by ref. Child systems are
// cached per (segment, level); the cache is safe for concurrent queries.
func (s *System) ChildSource(id int, ref htl.LevelRef) (core.Source, error) {
	n := s.seq[id-1]
	target, err := s.resolveLevel(n, ref)
	if err != nil {
		return nil, err
	}
	if target <= n.Level {
		return nil, nil // no proper descendants at or above the node's level
	}
	key := childKey{id: id, level: target}
	s.childMu.Lock()
	cached, ok := s.childCache[key]
	s.childMu.Unlock()
	if ok {
		if cached == nil {
			return nil, nil
		}
		return cached, nil
	}
	seq := n.DescendantsAt(target)
	var child *System
	if len(seq) > 0 {
		child = newSystemForSeq(s.video, seq, s.tax, s.w)
	}
	s.childMu.Lock()
	if s.childCache == nil {
		s.childCache = map[childKey]*System{}
	}
	s.childCache[key] = child
	s.childMu.Unlock()
	if child == nil {
		return nil, nil
	}
	return child, nil
}

func (s *System) resolveLevel(n *metadata.Node, ref htl.LevelRef) (int, error) {
	switch {
	case ref.NextLevel:
		return n.Level + 1, nil
	case ref.Num > 0:
		return ref.Num, nil
	case ref.Name != "":
		l, ok := s.video.Level(ref.Name)
		if !ok {
			return 0, fmt.Errorf("picture: video %d has no level named %q", s.video.ID, ref.Name)
		}
		return l, nil
	default:
		return 0, fmt.Errorf("picture: invalid level reference")
	}
}

// candidates returns the sorted ids of segments where f could have a
// non-zero score, via the inverted indices; ok is false when the formula
// contains a term that cannot be pruned (negation, true), in which case all
// segments are candidates.
func (s *System) candidates(f htl.Formula) []int {
	set := map[int]bool{}
	all := false
	var add func(ids []int)
	add = func(ids []int) {
		for _, id := range ids {
			set[id] = true
		}
	}
	var walk func(htl.Formula)
	walk = func(f htl.Formula) {
		if all {
			return
		}
		switch n := f.(type) {
		case htl.True, htl.Not:
			all = true
		case htl.Present:
			add(s.nonEmpty)
		case htl.Pred:
			switch len(n.Args) {
			case 0:
				add(s.byTag[n.Name])
			case 1:
				add(s.byProp[n.Name])
			default:
				add(s.byRel[n.Name])
			}
		case htl.Cmp:
			s.addCmpCandidates(n, add)
		case htl.And:
			walk(n.L)
			walk(n.R)
		case htl.Exists:
			walk(n.F)
		case htl.Freeze:
			all = true // frozen values may make otherwise-unmatched terms true
		}
	}
	walk(f)
	if all {
		ids := make([]int, len(s.seq))
		for i := range ids {
			ids[i] = i + 1
		}
		return ids
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (s *System) addCmpCandidates(n htl.Cmp, add func([]int)) {
	handle := func(t htl.Term) {
		a, ok := t.(htl.AttrFn)
		if !ok {
			return
		}
		if a.Of == "" {
			add(s.bySegAttr[a.Attr])
			return
		}
		if a.Attr == typeAttr {
			// Expand the queried type through the taxonomy.
			if lit, ok := otherSide(n, t).(htl.StrLit); ok && n.Op == htl.OpEq {
				for _, typ := range s.tax.Related(lit.S) {
					add(s.byType[typ])
				}
				return
			}
			// type(x) != '...' and friends match almost anything.
			add(s.nonEmpty)
			return
		}
		add(s.byObjAttr[a.Attr])
	}
	handle(n.L)
	handle(n.R)
}

// otherSide returns the operand of n that is not t.
func otherSide(n htl.Cmp, t htl.Term) htl.Term {
	if n.L == t {
		return n.R
	}
	return n.L
}

// typeAttr is the reserved object attribute exposing the object's type.
const typeAttr = "type"
