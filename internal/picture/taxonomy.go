// Package picture implements the similarity-based picture-retrieval
// substrate the video system is built on (paper §1, Fig. 1; the approach of
// the authors' earlier VLDB'95/SCORE systems [25, 27, 2]).
//
// Given a non-temporal HTL formula it computes, over one proper sequence of
// video segments, a similarity table: for every evaluation of the formula's
// free object variables (and every range of its free attribute variables) a
// similarity list over the segment ids. Scoring is additive: each atomic
// term (present, type, attribute comparison, property, relationship)
// contributes its weight scaled by detection certainty and — for type
// predicates — by taxonomy similarity, so partially matching segments
// receive partial scores (e.g. the paper's two-men shots partially matching
// a Man-Woman query).
package picture

import (
	"fmt"
	"sort"
)

// Taxonomy is a rooted type hierarchy used for graded type matching: a query
// for 'woman' partially matches an object of type 'man' through their common
// ancestor 'person'.
type Taxonomy struct {
	parent map[string]string
}

// NewTaxonomy returns an empty taxonomy; unknown types only match themselves.
func NewTaxonomy() *Taxonomy { return &Taxonomy{parent: map[string]string{}} }

// Add declares child to be a subtype of parent. It fails if the edge would
// create a cycle or re-parent an existing type.
func (t *Taxonomy) Add(child, parent string) error {
	if child == parent {
		return fmt.Errorf("picture: type %q cannot be its own parent", child)
	}
	if p, ok := t.parent[child]; ok && p != parent {
		return fmt.Errorf("picture: type %q already has parent %q", child, p)
	}
	for a := parent; a != ""; a = t.parent[a] {
		if a == child {
			return fmt.Errorf("picture: edge %q -> %q would create a cycle", child, parent)
		}
	}
	t.parent[child] = parent
	return nil
}

// MustAdd is Add that panics; for statically known taxonomies.
func (t *Taxonomy) MustAdd(child, parent string) {
	if err := t.Add(child, parent); err != nil {
		panic(err)
	}
}

// depth returns the number of ancestors of typ (0 for a root or unknown
// type).
func (t *Taxonomy) depth(typ string) int {
	d := 0
	for p, ok := t.parent[typ]; ok; p, ok = t.parent[p] {
		d++
	}
	return d
}

// Sim returns the similarity of an object of type objType to a query asking
// for queryType, in [0, 1]. Equal types score 1; otherwise the Wu–Palmer
// measure on the taxonomy: 2·depth(lca) / (depth(a)+depth(b)), or 0 when the
// types share no ancestor (or are unknown).
func (t *Taxonomy) Sim(queryType, objType string) float64 {
	if queryType == objType {
		return 1
	}
	// Collect the ancestor chain of queryType with depths.
	anc := map[string]int{}
	d := 0
	for a := queryType; ; {
		anc[a] = d
		p, ok := t.parent[a]
		if !ok {
			break
		}
		a = p
		d++
	}
	dq := t.depth(queryType)
	do := t.depth(objType)
	// Walk up from objType to the first common ancestor.
	for a := objType; ; {
		if up, ok := anc[a]; ok {
			if dq+do == 0 {
				return 0
			}
			// Depth of the common ancestor measured from the root.
			lcaDepth := dq - up
			return 2 * float64(lcaDepth) / float64(dq+do)
		}
		p, ok := t.parent[a]
		if !ok {
			return 0
		}
		a = p
	}
}

// Edges returns every (child, parent) edge, sorted by child; used for
// serialization.
func (t *Taxonomy) Edges() [][2]string {
	out := make([][2]string, 0, len(t.parent))
	for c, p := range t.parent {
		out = append(out, [2]string{c, p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Related returns every type known to the taxonomy with Sim(queryType, ·) >
// 0, including queryType itself; the index layer uses it to expand a type
// query. Types never mentioned in the taxonomy only match exactly.
func (t *Taxonomy) Related(queryType string) []string {
	out := []string{queryType}
	seen := map[string]bool{queryType: true}
	visit := func(typ string) {
		if !seen[typ] && t.Sim(queryType, typ) > 0 {
			seen[typ] = true
			out = append(out, typ)
		}
	}
	for c := range t.parent {
		visit(c)
	}
	for _, p := range t.parent {
		visit(p)
	}
	return out
}
