package picture

import (
	"sort"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/interval"
	"htlvideo/internal/metadata"
	"htlvideo/internal/simlist"
)

// ValueTable implements core.Source: the §3.3 value table of an attribute
// function q over this sequence. For q(x) there is one row per (object,
// value) pair with the id intervals where the object is present carrying
// that value; for a segment attribute, one row per value. The attribute's
// type (`type(x)`) is exposed like any other attribute.
func (s *System) ValueTable(q htl.AttrFn) (*core.ValueTable, error) {
	vt := &core.ValueTable{Var: q.Of}
	if q.Of == "" {
		type key struct{ v core.AttrValue }
		runs := map[key][]interval.I{}
		var order []key
		for i, n := range s.seq {
			v, ok := n.Meta.Attrs[q.Attr]
			if !ok {
				continue
			}
			k := key{toAttrValue(v)}
			if _, seen := runs[k]; !seen {
				order = append(order, k)
			}
			runs[k] = appendIv(runs[k], i+1)
		}
		for _, k := range order {
			vt.Rows = append(vt.Rows, core.ValueRow{Value: k.v, Ivs: runs[k]})
		}
		return vt, nil
	}

	type key struct {
		obj simlist.ObjectID
		v   core.AttrValue
	}
	runs := map[key][]interval.I{}
	var order []key
	for i, n := range s.seq {
		for _, o := range n.Meta.Objects {
			var v core.AttrValue
			if q.Attr == typeAttr {
				v = core.AttrValue{Str: o.Type}
			} else {
				mv, ok := o.Attrs[q.Attr]
				if !ok {
					continue
				}
				v = toAttrValue(mv)
			}
			k := key{simlist.ObjectID(o.ID), v}
			if _, seen := runs[k]; !seen {
				order = append(order, k)
			}
			runs[k] = appendIv(runs[k], i+1)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].obj < order[b].obj })
	for _, k := range order {
		vt.Rows = append(vt.Rows, core.ValueRow{Binding: k.obj, Value: k.v, Ivs: runs[k]})
	}
	return vt, nil
}

// appendIv extends the last interval when id is adjacent to it, otherwise
// starts a new run.
func appendIv(ivs []interval.I, id int) []interval.I {
	if n := len(ivs); n > 0 && ivs[n-1].End+1 == id {
		ivs[n-1].End = id
		return ivs
	}
	return append(ivs, interval.Point(id))
}

// Ensure System satisfies the evaluator's Source contract.
var _ core.Source = (*System)(nil)

// Taxonomy returns the system's type taxonomy (shared with child sources).
func (s *System) Taxonomy() *Taxonomy { return s.tax }

// Weights returns the system's scoring weights.
func (s *System) Weights() Weights { return s.w }

// Video returns the underlying video.
func (s *System) Video() *metadata.Video { return s.video }
