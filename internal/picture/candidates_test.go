package picture

import (
	"math"
	"math/rand"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
)

// The inverted-index candidate pruning must never skip a segment that could
// score non-zero: the table built through candidates() has to agree with a
// per-segment brute-force evaluation at every id.

func randomPictureVideo(rng *rand.Rand, n int) *metadata.Video {
	types := []string{"man", "woman", "train", "person", "flag"}
	v := metadata.NewVideo(1, "rand", nil)
	for i := 0; i < n; i++ {
		b := metadata.Seg()
		var ids []metadata.ObjectID
		for o := 0; o < rng.Intn(4); o++ {
			id := metadata.ObjectID(rng.Intn(6) + 1)
			dup := false
			for _, prev := range ids {
				if prev == id {
					dup = true
				}
			}
			if dup {
				continue
			}
			ids = append(ids, id)
			b.ObjC(id, types[rng.Intn(len(types))], 0.25+0.25*float64(rng.Intn(4)))
			if rng.Intn(3) == 0 {
				b.Prop("moving")
			}
			if rng.Intn(4) == 0 {
				b.OAttr("height", metadata.Int(int64(rng.Intn(5))))
			}
		}
		if len(ids) >= 2 && rng.Intn(2) == 0 {
			b.Rel("near", ids[0], ids[1])
		}
		if rng.Intn(2) == 0 {
			b.Attr("genre", metadata.Str([]string{"western", "news"}[rng.Intn(2)]))
		}
		if rng.Intn(4) == 0 {
			b.Attr("M1", metadata.Int(1))
		}
		v.Root.AppendChild(b.Build())
	}
	return v
}

func TestCandidatePruningIsComplete(t *testing.T) {
	units := []string{
		"M1",
		"genre = 'western'",
		"not genre = 'news'",
		"exists x . present(x)",
		"exists x . present(x) and type(x) = 'man'",
		"exists x . present(x) and type(x) = 'train' and moving(x)",
		"exists x . moving(x)",
		"exists x, y . near(x, y)",
		"exists x . present(x) and height(x) >= 3",
		"exists x . present(x) and type(x) = 'woman' and genre = 'western'",
		"true",
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		v := randomPictureVideo(rng, 4+rng.Intn(8))
		if err := v.Validate(); err != nil {
			t.Fatal(err)
		}
		tax := NewTaxonomy()
		tax.MustAdd("man", "person")
		tax.MustAdd("woman", "person")
		sys, err := NewSystem(v, 2, tax, DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		f := htl.MustParse(units[int(seed)%len(units)])
		tb, err := sys.EvalAtomic(f)
		if err != nil {
			t.Fatal(err)
		}
		viaIndex := core.ProjectMax(tb)
		for id := 1; id <= sys.Len(); id++ {
			direct, err := sys.ScoreAtomicAt(f, id, Env{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(direct.Act-viaIndex.At(id).Act) > 1e-9 {
				t.Fatalf("seed %d %q id %d: index %g direct %g\nsegment %+v",
					seed, f, id, viaIndex.At(id).Act, direct.Act, sys.Node(id).Meta)
			}
		}
	}
}

// TestCandidatesActuallyPrune guards the other direction: for a selective
// predicate over a large sequence, the index must visit only the matching
// neighbourhood.
func TestCandidatesActuallyPrune(t *testing.T) {
	v := metadata.NewVideo(1, "sparse", nil)
	for i := 0; i < 500; i++ {
		if i == 250 {
			v.Root.AppendChild(metadata.Seg().Obj(1, "train").Prop("moving").Build())
			continue
		}
		v.Root.AppendChild(metadata.Seg().Attr("filler", metadata.Int(int64(i))).Build())
	}
	sys, err := NewSystem(v, 2, NewTaxonomy(), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	cands := sys.candidates(htl.MustParse("exists x . present(x) and type(x) = 'train' and moving(x)"))
	if len(cands) != 1 || cands[0] != 251 {
		t.Fatalf("candidates = %v", cands)
	}
	// True and negation disable pruning.
	if got := len(sys.candidates(htl.MustParse("true"))); got != 500 {
		t.Fatalf("true candidates = %d", got)
	}
	if got := len(sys.candidates(htl.MustParse("not M1"))); got != 500 {
		t.Fatalf("negation candidates = %d", got)
	}
}

func BenchmarkEvalAtomicSparse(b *testing.B) {
	v := metadata.NewVideo(1, "sparse", nil)
	for i := 0; i < 5000; i++ {
		if i%100 == 0 {
			v.Root.AppendChild(metadata.Seg().Obj(1, "train").Prop("moving").Build())
			continue
		}
		v.Root.AppendChild(metadata.Seg().Build())
	}
	sys, err := NewSystem(v, 2, NewTaxonomy(), DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	f := htl.MustParse("exists x . present(x) and type(x) = 'train' and moving(x)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.EvalAtomic(f); err != nil {
			b.Fatal(err)
		}
	}
}
