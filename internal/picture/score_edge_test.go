package picture

import (
	"math"
	"strings"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/simlist"
)

// Edge-case coverage for the atomic scorer: comparison operators over
// attribute variables, range merging across terms, evaluation pruning and
// the exported helpers.

func TestVarAltsAllOperators(t *testing.T) {
	s := buildSystem(t)
	// One object with height 20 at segment 2; probe each operator through a
	// frozen variable so the ranges must be generated and then selected.
	for q, wantAt2 := range map[string]float64{
		"[h <- height(x)] (present(x) and height(x) = h)":  4, // 20 = 20
		"[h <- height(x)] (present(x) and height(x) != h)": 2, // only present
		"[h <- height(x)] (present(x) and height(x) < h)":  2,
		"[h <- height(x)] (present(x) and height(x) <= h)": 4,
		"[h <- height(x)] (present(x) and height(x) > h)":  2,
		"[h <- height(x)] (present(x) and height(x) >= h)": 4,
	} {
		full := "exists x . " + q
		sim, err := s.ScoreAtomicAt(htl.MustParse(full), 2, Env{})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if math.Abs(sim.Act-wantAt2) > 1e-9 {
			t.Errorf("%s at 2 = %g, want %g", q, sim.Act, wantAt2)
		}
	}
}

func TestAttrVarRangeTable(t *testing.T) {
	s := buildSystem(t)
	// Free variable with != over an integer: two satisfied ranges plus the
	// zero-score equality row (the coverage marker; the formula has no other
	// term, so the complement really scores 0).
	f := htl.MustParse("[h <- hh] exists x . height(x) != h").(htl.Freeze).F
	tb, err := s.EvalAtomic(f)
	if err != nil {
		t.Fatal(err)
	}
	sawMarker := false
	for _, r := range tb.Rows {
		if r.List.IsEmpty() {
			sawMarker = true
		}
	}
	if !sawMarker {
		t.Fatalf("expected a zero-score coverage row:\n%v", tb)
	}
}

func TestStringAttrVarEquality(t *testing.T) {
	s := buildSystem(t)
	f := htl.MustParse("[n <- nn] exists x . present(x) and name(x) = n").(htl.Freeze).F
	tb, err := s.EvalAtomic(f)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tb.Rows {
		if r.Ranges[0].ContainsStr("John") && r.List.At(2).Act == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing string-equality row:\n%v", tb)
	}
	// Order comparisons on strings are rejected.
	bad := htl.MustParse("[n <- nn] exists x . present(x) and name(x) < n").(htl.Freeze).F
	if _, err := s.EvalAtomic(bad); err == nil || !strings.Contains(err.Error(), "only =") {
		t.Fatalf("err = %v", err)
	}
}

func TestTwoAttrVarsUnsupported(t *testing.T) {
	s := buildSystem(t)
	f := htl.MustParse("[a <- x1] [b <- x2] a = b")
	// Both operands frozen: fine (ground). Make them free instead:
	free := htl.Cmp{Op: htl.OpEq, L: htl.Var{Name: "a", Kind: htl.AttrVar}, R: htl.Var{Name: "b", Kind: htl.AttrVar}}
	if _, err := s.EvalAtomic(free); err == nil {
		t.Fatal("comparison of two free attribute variables should fail")
	}
	if _, err := s.EvalAtomic(f); err != nil {
		t.Fatalf("frozen pair: %v", err)
	}
}

func TestMergeRangesConflict(t *testing.T) {
	s := buildSystem(t)
	// Two terms constrain h to disjoint ranges: the satisfied×satisfied
	// cross product vanishes, partial rows remain.
	f := htl.MustParse("[h <- hh] (brightness > h and duration < h)")
	fr := f.(htl.Freeze).F
	tb, err := s.EvalAtomic(fr)
	if err != nil {
		t.Fatal(err)
	}
	// No segment has brightness or duration; the table may be empty but
	// must not error. Now with real attrs on a fresh system:
	v := metadata.NewVideo(1, "r", nil)
	v.Root.AppendChild(metadata.Seg().
		Attr("brightness", metadata.Int(10)).
		Attr("duration", metadata.Int(3)).
		Build())
	sys2, err := NewSystem(v, 2, NewTaxonomy(), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := sys2.EvalAtomic(fr)
	if err != nil {
		t.Fatal(err)
	}
	// brightness > h  ⇒ h <= 9 ; duration < h ⇒ h >= 4: both hold for
	// h in [4, 9] with score 4.
	best := 0.0
	for _, r := range tb2.Rows {
		if r.Ranges[0].ContainsInt(5) {
			best = math.Max(best, r.List.At(1).Act)
		}
	}
	if best != 4 {
		t.Fatalf("h=5 best = %g\n%v\n%v", best, tb, tb2)
	}
}

func TestDedupVariantsKeepBest(t *testing.T) {
	s := buildSystem(t)
	// Bind x and y to the same man; the unit must score as the best
	// keep-one variant rather than double-counting him.
	f := htl.MustParse("exists x, y . present(x) and present(y)").(htl.Exists).F
	env := Env{Obj: map[string]simlist.ObjectID{"x": 1, "y": 1}}
	sim, err := s.ScoreAtomicAt(f, 2, env)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Act != 2 { // one present(man#1, cert 1) only
		t.Fatalf("dedup score = %g", sim.Act)
	}
	// Distinct objects score both.
	env2 := Env{Obj: map[string]simlist.ObjectID{"x": 1, "y": 3}}
	sim2, err := s.ScoreAtomicAt(f, 2, env2)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Act != 3 { // 2*1.0 + 2*0.5
		t.Fatalf("distinct score = %g", sim2.Act)
	}
}

func TestPruneEnvRemapsIncompatible(t *testing.T) {
	s := buildSystem(t)
	f := htl.MustParse("exists x . present(x) and type(x) = 'train'").(htl.Exists).F
	// Binding x to a man: type-incompatible with 'train', scores as absent.
	env := Env{Obj: map[string]simlist.ObjectID{"x": 1}}
	sim, err := s.ScoreAtomicAt(f, 1, env)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Act != 0 {
		t.Fatalf("incompatible binding = %g", sim.Act)
	}
	// Binding it to the train at segment 3 scores fully.
	env2 := Env{Obj: map[string]simlist.ObjectID{"x": 4}}
	sim2, err := s.ScoreAtomicAt(f, 3, env2)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Act != 4 {
		t.Fatalf("train binding = %g", sim2.Act)
	}
}

func TestExportedHelpers(t *testing.T) {
	s := buildSystem(t)
	ids := s.ObjectIDs()
	if len(ids) != 4 || ids[0] != 1 || ids[3] != 4 {
		t.Fatalf("ObjectIDs = %v", ids)
	}
	b := s.AttrValueAt(htl.AttrFn{Attr: "height", Of: "z"}, 2,
		Env{Obj: map[string]simlist.ObjectID{"z": 1}})
	if !b.Defined || b.Val.Int != 20 {
		t.Fatalf("AttrValueAt = %+v", b)
	}
	if s.AttrValueAt(htl.AttrFn{Attr: "height", Of: "z"}, 99, Env{}).Defined {
		t.Fatal("out-of-range segment should be undefined")
	}
	if s.Taxonomy() == nil || s.Video() == nil {
		t.Fatal("accessors")
	}
	if s.Weights().Present != 2 {
		t.Fatal("weights accessor")
	}
	if s.Node(1) == nil {
		t.Fatal("node accessor")
	}
	edges := s.Taxonomy().Edges()
	if len(edges) == 0 || edges[0][0] > edges[len(edges)-1][0] {
		t.Fatalf("edges = %v", edges)
	}
	env := Env{}.WithObj("x", 5).WithAttr("h", BoundAttr{Defined: true, Val: core.AttrValue{IsInt: true, Int: 1}})
	if env.Obj["x"] != 5 || !env.Attr["h"].Defined {
		t.Fatal("env builders")
	}
}

func TestTypeNeAndCrossKind(t *testing.T) {
	s := buildSystem(t)
	// type(x) != 'man': boolean, not graded.
	l := evalList(t, s, "exists x . present(x) and type(x) != 'man'")
	if got := l.At(1).Act; math.Abs(got-3.2) > 1e-9 { // woman 0.8: 1.6+1.6
		t.Fatalf("ne at 1 = %g", got)
	}
	// Cross-kind comparison: int attr vs string literal is just unsatisfied
	// (Ne is satisfied).
	l2 := evalList(t, s, "exists x . present(x) and height(x) = 'tall'")
	if got := l2.At(2).Act; got != 2 { // present only
		t.Fatalf("cross-kind eq at 2 = %g", got)
	}
	l3 := evalList(t, s, "exists x . present(x) and height(x) != 'tall'")
	if got := l3.At(2).Act; got != 4 {
		t.Fatalf("cross-kind ne at 2 = %g", got)
	}
}
