package picture

import (
	"math"
	"strings"
	"testing"

	"htlvideo/internal/core"
	"htlvideo/internal/htl"
	"htlvideo/internal/metadata"
	"htlvideo/internal/simlist"
)

func testTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	tax := NewTaxonomy()
	tax.MustAdd("person", "entity")
	tax.MustAdd("man", "person")
	tax.MustAdd("woman", "person")
	tax.MustAdd("vehicle", "entity")
	tax.MustAdd("train", "vehicle")
	return tax
}

func TestTaxonomySim(t *testing.T) {
	tax := testTaxonomy(t)
	for _, tc := range []struct {
		a, b string
		want float64
	}{
		{"man", "man", 1},
		{"man", "woman", 0.5}, // lca person at depth 1, both depth 2
		{"man", "person", 2.0 / 3.0},
		{"man", "train", 0}, // lca entity at depth 0
		{"man", "unknown", 0},
		{"unknown", "unknown", 1},
	} {
		if got := tax.Sim(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Sim(%s, %s) = %g, want %g", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTaxonomyErrors(t *testing.T) {
	tax := NewTaxonomy()
	if err := tax.Add("a", "a"); err == nil {
		t.Fatal("self parent should fail")
	}
	tax.MustAdd("b", "a")
	if err := tax.Add("b", "c"); err == nil {
		t.Fatal("re-parenting should fail")
	}
	tax.MustAdd("c", "b")
	if err := tax.Add("a", "c"); err == nil {
		t.Fatal("cycle should fail")
	}
}

func TestTaxonomyRelated(t *testing.T) {
	tax := testTaxonomy(t)
	rel := tax.Related("man")
	set := map[string]bool{}
	for _, r := range rel {
		set[r] = true
	}
	for _, want := range []string{"man", "woman", "person"} {
		if !set[want] {
			t.Errorf("Related(man) missing %q (got %v)", want, rel)
		}
	}
	if set["train"] || set["vehicle"] {
		t.Errorf("Related(man) should not include vehicles: %v", rel)
	}
}

// buildSystem builds a small 6-shot system used across the tests.
//
//	shot 1: man#1 (0.5, holds_gun, height 10) and woman#2 (0.8)
//	shot 2: man#1 (1.0, height 20) fires_at man#3 (0.5)
//	shot 3: train#4 (1.0, moving), genre=western tag M1
//	shot 4: empty, genre=western
//	shot 5: man#1 (1.0, height 15)
//	shot 6: woman#2 (0.5, on_floor)
func buildSystem(t *testing.T) *System {
	t.Helper()
	v := metadata.NewVideo(1, "test", map[string]int{"shot": 2})
	v.Root.AppendChild(metadata.Seg().
		ObjC(1, "man", 0.5).Prop("holds_gun").OAttr("height", metadata.Int(10)).OAttr("name", metadata.Str("John")).
		ObjC(2, "woman", 0.8).
		Build())
	v.Root.AppendChild(metadata.Seg().
		ObjC(1, "man", 1.0).OAttr("height", metadata.Int(20)).OAttr("name", metadata.Str("John")).
		ObjC(3, "man", 0.5).
		Rel("fires_at", 1, 3).
		Build())
	v.Root.AppendChild(metadata.Seg().
		ObjC(4, "train", 1.0).Prop("moving").
		Attr("genre", metadata.Str("western")).
		Attr("M1", metadata.Int(1)).
		Build())
	v.Root.AppendChild(metadata.Seg().Attr("genre", metadata.Str("western")).Build())
	v.Root.AppendChild(metadata.Seg().
		ObjC(1, "man", 1.0).OAttr("height", metadata.Int(15)).
		Build())
	v.Root.AppendChild(metadata.Seg().
		ObjC(2, "woman", 0.5).Prop("on_floor").
		Build())
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(v, 2, testTaxonomy(t), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func evalList(t *testing.T, s *System, src string) simlist.List {
	t.Helper()
	tb, err := s.EvalAtomic(htl.MustParse(src))
	if err != nil {
		t.Fatalf("EvalAtomic(%q): %v", src, err)
	}
	return core.ProjectMax(tb)
}

func TestPresentAndType(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "exists x . present(x) and type(x) = 'man'")
	// max = 4; shot1: man 0.5 -> 2.0  (woman would give 0.8*2 + 0.8*2*0.5 = 2.4!)
	if l.MaxSim != 4 {
		t.Fatalf("MaxSim = %g", l.MaxSim)
	}
	wantAt := map[int]float64{1: 2.4, 2: 4, 3: 0, 4: 0, 5: 4, 6: 1.5}
	for id, want := range wantAt {
		if got := l.At(id).Act; math.Abs(got-want) > 1e-9 {
			t.Errorf("At(%d) = %g, want %g", id, got, want)
		}
	}
}

func TestTypePruningExcludesDissimilar(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "exists t . present(t) and type(t) = 'train' and moving(t)")
	// Only shot 3 has a train; the men/women never partially match a train
	// query (taxonomy similarity 0 prunes the assignment).
	if len(l.Entries) != 1 || l.Entries[0].Iv.Beg != 3 || l.Entries[0].Iv.End != 3 {
		t.Fatalf("entries = %v", l)
	}
	if math.Abs(l.At(3).Act-6) > 1e-9 { // 2 + 2 + 2 with certainty 1
		t.Fatalf("At(3) = %g", l.At(3).Act)
	}
}

func TestPropertyAndRelationship(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "exists x . holds_gun(x)")
	if got := l.At(1).Act; math.Abs(got-1) > 1e-9 { // 2 * 0.5
		t.Fatalf("holds_gun at 1 = %g", got)
	}
	if got := l.At(2).Act; got != 0 {
		t.Fatalf("holds_gun at 2 = %g", got)
	}
	l2 := evalList(t, s, "exists x, y . fires_at(x, y)")
	if got := l2.At(2).Act; math.Abs(got-1) > 1e-9 { // 2 * min(1.0, 0.5)
		t.Fatalf("fires_at at 2 = %g", got)
	}
	if got := l2.At(1).Act; got != 0 {
		t.Fatalf("fires_at at 1 = %g", got)
	}
}

func TestSegmentAttrAndTag(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "genre = 'western'")
	for id, want := range map[int]float64{3: 2, 4: 2, 1: 0} {
		if got := l.At(id).Act; got != want {
			t.Errorf("genre at %d = %g, want %g", id, got, want)
		}
	}
	l2 := evalList(t, s, "M1")
	if l2.At(3).Act != 2 || l2.At(4).Act != 0 {
		t.Fatalf("tag M1 list = %v", l2)
	}
}

func TestNegationInsideAtomic(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "not genre = 'western'")
	// max - score: satisfied shots score 0, others max (2).
	for id, want := range map[int]float64{1: 2, 2: 2, 3: 0, 4: 0, 5: 2, 6: 2} {
		if got := l.At(id).Act; got != want {
			t.Errorf("not genre at %d = %g, want %g", id, got, want)
		}
	}
}

func TestObjectAttrComparison(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "exists x . present(x) and height(x) > 12")
	// shot 2: man1 height 20 -> 2 + 2 = 4; shot 1: height 10 fails -> 1 (present only).
	for id, want := range map[int]float64{1: 1.6, 2: 4, 5: 4} {
		if got := l.At(id).Act; math.Abs(got-want) > 1e-9 {
			t.Errorf("height at %d = %g, want %g", id, got, want)
		}
	}
}

func TestNameEquality(t *testing.T) {
	s := buildSystem(t)
	l := evalList(t, s, "exists x . present(x) and name(x) = 'John'")
	if got := l.At(2).Act; math.Abs(got-4) > 1e-9 {
		t.Fatalf("name at 2 = %g", got)
	}
	// shot 6: woman has no name attribute; present contributes 0.5*2.
	if got := l.At(6).Act; math.Abs(got-1) > 1e-9 {
		t.Fatalf("name at 6 = %g", got)
	}
}

func TestAttrVarRanges(t *testing.T) {
	s := buildSystem(t)
	// Q2(z, h) = present(z) and height(z) > h  — free attribute variable h.
	f := htl.MustParse("[h <- maxheight] exists z . present(z) and height(z) > h").(htl.Freeze).F
	tb, err := s.EvalAtomic(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.AttrVars) != 1 || tb.AttrVars[0] != "h" {
		t.Fatalf("attr vars = %v", tb.AttrVars)
	}
	// Row with range h < 20 (i.e. (-inf, 19]) must cover shot 2 at full 4.
	found := false
	for _, r := range tb.Rows {
		if r.Ranges[0].ContainsInt(19) && !r.Ranges[0].ContainsInt(20) && r.List.At(2).Act == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no satisfied-range row for shot 2:\n%v", tb)
	}
}

func TestFreezeInsideAtomic(t *testing.T) {
	s := buildSystem(t)
	// Compare an object attribute against a frozen segment attribute within
	// one segment (vacuous but legal).
	l := evalList(t, s, "exists x . [h <- height(x)] (present(x) and height(x) >= h)")
	if got := l.At(2).Act; math.Abs(got-4) > 1e-9 {
		t.Fatalf("frozen cmp at 2 = %g", got)
	}
}

func TestValueTableObjectAttr(t *testing.T) {
	s := buildSystem(t)
	vt, err := s.ValueTable(htl.AttrFn{Attr: "height", Of: "z"})
	if err != nil {
		t.Fatal(err)
	}
	if vt.Var != "z" {
		t.Fatalf("Var = %q", vt.Var)
	}
	// Object 1 has heights 10@1, 20@2, 15@5 — three rows.
	var got []string
	for _, r := range vt.Rows {
		if r.Binding == 1 {
			got = append(got, r.Value.String())
		}
	}
	if len(got) != 3 {
		t.Fatalf("rows for object 1: %v", vt.Rows)
	}
}

func TestValueTableSegmentAttr(t *testing.T) {
	s := buildSystem(t)
	vt, err := s.ValueTable(htl.AttrFn{Attr: "genre"})
	if err != nil {
		t.Fatal(err)
	}
	if vt.Var != "" || len(vt.Rows) != 1 {
		t.Fatalf("vt = %+v", vt)
	}
	r := vt.Rows[0]
	if r.Value.Str != "western" || len(r.Ivs) != 1 || r.Ivs[0].Beg != 3 || r.Ivs[0].End != 4 {
		t.Fatalf("row = %+v", r)
	}
}

func TestScoreAtomicAtMatchesTable(t *testing.T) {
	s := buildSystem(t)
	f := htl.MustParse("exists x . present(x) and type(x) = 'man'")
	tb, err := s.EvalAtomic(f)
	if err != nil {
		t.Fatal(err)
	}
	list := core.ProjectMax(tb)
	for id := 1; id <= s.Len(); id++ {
		sim, err := s.ScoreAtomicAt(f, id, Env{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sim.Act-list.At(id).Act) > 1e-9 {
			t.Errorf("ScoreAtomicAt(%d) = %g, table = %g", id, sim.Act, list.At(id).Act)
		}
	}
}

func TestUnsupportedAtomics(t *testing.T) {
	s := buildSystem(t)
	for _, src := range []string{
		"exists x . present(x) until present(x)", // temporal
	} {
		if _, err := s.EvalAtomic(htl.MustParse(src)); err == nil {
			t.Errorf("EvalAtomic(%q) should fail", src)
		}
	}
	// Arity-3 predicate.
	f := htl.Pred{Name: "p", Args: []htl.Term{htl.Var{Name: "x"}, htl.Var{Name: "y"}, htl.Var{Name: "z"}}}
	wrapped := htl.Exists{Vars: []string{"x", "y", "z"}, F: f}
	if _, err := s.EvalAtomic(wrapped); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("arity-3 error = %v", err)
	}
}

func TestAtomicMaxSim(t *testing.T) {
	s := buildSystem(t)
	for src, want := range map[string]float64{
		"exists x . present(x)":                                     2,
		"exists x . present(x) and type(x) = 'man'":                 4,
		"exists t . present(t) and type(t) = 'train' and moving(t)": 6,
		"genre = 'western'":                                         2,
		"M1":                                                        2,
		"not M1":                                                    2,
		"true":                                                      1,
		"exists x, y . fires_at(x, y)":                              2,
	} {
		if got := s.AtomicMaxSim(htl.MustParse(src)); got != want {
			t.Errorf("AtomicMaxSim(%q) = %g, want %g", src, got, want)
		}
	}
}

func TestChildSource(t *testing.T) {
	v := metadata.NewVideo(1, "h", map[string]int{"scene": 2, "shot": 3})
	sc1 := v.Root.AppendChild(metadata.SegmentMeta{})
	sc1.AppendChild(metadata.Seg().Obj(1, "man").Build())
	sc1.AppendChild(metadata.Seg().Obj(2, "man").Build())
	sc2 := v.Root.AppendChild(metadata.SegmentMeta{})
	sc2.AppendChild(metadata.Seg().Obj(3, "woman").Build())
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(v, 2, testTaxonomy(t), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.ChildSource(1, htl.LevelRef{NextLevel: true})
	if err != nil || cs == nil || cs.Len() != 2 {
		t.Fatalf("ChildSource = %v, %v", cs, err)
	}
	cs2, err := s.ChildSource(2, htl.LevelRef{Name: "shot"})
	if err != nil || cs2 == nil || cs2.Len() != 1 {
		t.Fatalf("named ChildSource = %v, %v", cs2, err)
	}
	if _, err := s.ChildSource(1, htl.LevelRef{Name: "frame"}); err == nil {
		t.Fatal("unknown level name should error")
	}
	// Descending to a level at or above the node is not a descendant set.
	if cs3, err := s.ChildSource(1, htl.LevelRef{Num: 2}); err != nil || cs3 != nil {
		t.Fatalf("same-level ChildSource = %v, %v", cs3, err)
	}
}

func TestNewSystemEmptyLevel(t *testing.T) {
	v := metadata.NewVideo(1, "bare", nil)
	if _, err := NewSystem(v, 2, testTaxonomy(t), DefaultWeights()); err == nil {
		t.Fatal("no segments at level 2 should fail")
	}
}
